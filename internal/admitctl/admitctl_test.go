package admitctl

import (
	"strings"
	"testing"
	"time"

	"gage/internal/qos"
)

// cap100 is a pool that sustains exactly 100 generic requests per second on
// every resource.
func cap100() qos.Vector { return qos.GenericCost().Scale(100) }

func TestCapacityGRPSBindingResource(t *testing.T) {
	if g, b := CapacityGRPS(cap100()); g != 100 || b != "cpu" {
		t.Fatalf("balanced pool: got %v GRPS bound by %q, want 100 by cpu (tie breaks to cpu)", g, b)
	}
	// Starve one dimension at a time; the starved resource must bind.
	v := cap100()
	v.DiskTime = 10 * qos.GenericDiskTime
	if g, b := CapacityGRPS(v); g != 10 || b != "disk" {
		t.Fatalf("disk-starved pool: got %v by %q, want 10 by disk", g, b)
	}
	v = cap100()
	v.NetBytes = 5 * qos.GenericNetBytes
	if g, b := CapacityGRPS(v); g != 5 || b != "net" {
		t.Fatalf("net-starved pool: got %v by %q, want 5 by net", g, b)
	}
	if g, _ := CapacityGRPS(qos.Vector{CPUTime: -time.Second}); g != 0 {
		t.Fatalf("negative capacity: got %v, want floor at 0", g)
	}
}

func TestEvaluateAcceptsWithinCapacity(t *testing.T) {
	d := Evaluate(Config{}, 60, 40, cap100())
	if !d.Accepted || d.Code != CodeAccepted {
		t.Fatalf("exact fit rejected: %+v", d)
	}
	if d.Committed != 60 || d.Requested != 40 || d.Capacity != 100 {
		t.Fatalf("decision numbers wrong: %+v", d)
	}
}

func TestEvaluateRejectsInfeasibleWithStructuredReason(t *testing.T) {
	d := Evaluate(Config{}, 60, 41, cap100())
	if d.Accepted || d.Code != CodeInfeasible {
		t.Fatalf("over-capacity grant accepted: %+v", d)
	}
	if d.Binding != "cpu" {
		t.Fatalf("binding = %q, want cpu", d.Binding)
	}
	for _, frag := range []string{"60", "41", "cpu", "100"} {
		if !strings.Contains(d.Reason, frag) {
			t.Fatalf("reason %q omits %q — the rejected tenant cannot see which wall it hit", d.Reason, frag)
		}
	}
}

func TestEvaluateShrinksAlwaysFeasible(t *testing.T) {
	// Even against an overcommitted pool (post-crash), shedding load passes.
	d := Evaluate(Config{}, 200, -50, cap100())
	if !d.Accepted {
		t.Fatalf("shrink rejected on an overcommitted pool: %+v", d)
	}
	// Deleting more than exists is the caller's arithmetic bug, not a grant.
	d = Evaluate(Config{}, 30, -31, cap100())
	if d.Accepted || d.Code != CodeInvalid {
		t.Fatalf("impossible shrink accepted: %+v", d)
	}
}

func TestEvaluateHeadroom(t *testing.T) {
	// 80% headroom on a 100-GRPS pool commits at most 80.
	d := Evaluate(Config{Headroom: 0.8}, 70, 10, cap100())
	if !d.Accepted {
		t.Fatalf("fit under headroom rejected: %+v", d)
	}
	d = Evaluate(Config{Headroom: 0.8}, 70, 11, cap100())
	if d.Accepted {
		t.Fatalf("grant past headroom accepted: %+v", d)
	}
	if d.Capacity != 80 {
		t.Fatalf("headroom capacity = %v, want 80", d.Capacity)
	}
	// Out-of-range headroom falls back to 1.0.
	if d := Evaluate(Config{Headroom: 7}, 0, 100, cap100()); !d.Accepted {
		t.Fatalf("default headroom: %+v", d)
	}
}

func TestNodeRemovalFeasible(t *testing.T) {
	one := qos.GenericCost().Scale(50)
	pool := cap100()
	// 40 committed, removing 50 GRPS of capacity leaves 50 — fine.
	if d := NodeRemovalFeasible(Config{}, 40, pool, one); !d.Accepted {
		t.Fatalf("feasible removal rejected: %+v", d)
	}
	// 60 committed, removal leaves 50 — the guarantees no longer fit.
	d := NodeRemovalFeasible(Config{}, 60, pool, one)
	if d.Accepted || d.Code != CodeInfeasible {
		t.Fatalf("infeasible removal accepted: %+v", d)
	}
	if d.Capacity != 50 || !strings.Contains(d.Reason, "60") {
		t.Fatalf("removal decision numbers wrong: %+v", d)
	}
}
