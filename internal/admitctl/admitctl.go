// Package admitctl is the admission-control policy for online reservation
// changes: accept a new or grown guarantee only if the cluster can still
// honor every existing one.
//
// The feasibility test is the paper's capacity-planning inequality run
// online. Each enabled node contributes its capacity vector; the cluster's
// sustainable GRPS is the minimum over the three resources of
// Σ capacity_r / genericCost_r — the binding resource caps how many generic
// requests per second the pool can absorb. A change is feasible iff the
// committed reservations after the change fit under that rate, scaled by a
// configurable headroom fraction (committing 100% of physical capacity
// leaves no slack for prediction error or spare traffic, so operators may
// hold some back).
//
// The policy is pure arithmetic over snapshots the scheduler already
// maintains (core.TotalReservation, core.EnabledCapacity), so the dispatcher
// and the simulator share it verbatim, and a rejection never mutates
// anything — the caller simply declines the operation and reports the
// structured Decision.
package admitctl

import (
	"fmt"

	"gage/internal/qos"
)

// Decision codes carried by Decision.Code. Stable strings: they cross the
// admin API as JSON and land in flight-recorder annotations.
const (
	CodeAccepted   = "accepted"
	CodeInfeasible = "infeasible"
	CodeInvalid    = "invalid"
)

// Config tunes the policy. The zero value is ready to use.
type Config struct {
	// Headroom is the fraction of enabled capacity that reservations may
	// commit, in (0, 1]. 0 selects the default 1.0 — commit up to the full
	// physical rate, the paper's provisioning assumption.
	Headroom float64
}

func (c Config) withDefaults() Config {
	if c.Headroom <= 0 || c.Headroom > 1 {
		c.Headroom = 1
	}
	return c
}

// Decision is the structured outcome of one feasibility evaluation. It holds
// every number the verdict was computed from, so a rejected tenant (or an
// operator reading the audit stream) can see exactly which wall was hit.
type Decision struct {
	Accepted bool   `json:"accepted"`
	Code     string `json:"code"`
	Reason   string `json:"reason,omitempty"`

	// Requested is the reservation delta evaluated (negative for shrinks).
	Requested qos.GRPS `json:"requestedGRPS"`
	// Committed is the cluster-wide reservation total before the change.
	Committed qos.GRPS `json:"committedGRPS"`
	// Capacity is the sustainable GRPS of the enabled pool after headroom.
	Capacity qos.GRPS `json:"capacityGRPS"`
	// Binding names the resource that limits Capacity ("cpu", "disk" or
	// "net") — the dimension a rejected tenant would need more of.
	Binding string `json:"binding,omitempty"`
}

// CapacityGRPS converts an aggregate capacity vector into the sustainable
// generic-request rate and the binding resource: the minimum over resources
// of capacity_r / genericCost_r. The dual of Vector.GenericUnits — usage
// counts by its dominant resource, capacity by its scarcest.
func CapacityGRPS(capacity qos.Vector) (qos.GRPS, string) {
	cpu := float64(capacity.CPUTime) / float64(qos.GenericCPUTime)
	disk := float64(capacity.DiskTime) / float64(qos.GenericDiskTime)
	net := float64(capacity.NetBytes) / float64(qos.GenericNetBytes)
	grps, binding := cpu, "cpu"
	if disk < grps {
		grps, binding = disk, "disk"
	}
	if net < grps {
		grps, binding = net, "net"
	}
	if grps < 0 {
		grps = 0
	}
	return qos.GRPS(grps), binding
}

// Evaluate decides whether changing the committed reservation total by delta
// is feasible against the given enabled capacity. Shrinks and deletes
// (delta ≤ 0) are always feasible — giving capacity back cannot break a
// guarantee, and an already-overcommitted cluster (e.g. after a node crash)
// must still be allowed to shed load.
func Evaluate(cfg Config, committed, delta qos.GRPS, capacity qos.Vector) Decision {
	cfg = cfg.withDefaults()
	capGRPS, binding := CapacityGRPS(capacity)
	capGRPS = qos.GRPS(float64(capGRPS) * cfg.Headroom)
	d := Decision{
		Requested: delta,
		Committed: committed,
		Capacity:  capGRPS,
		Binding:   binding,
	}
	switch {
	case delta < 0 && committed+delta < 0:
		d.Code = CodeInvalid
		d.Reason = fmt.Sprintf("shrink of %v GRPS exceeds the committed total %v", -delta, committed)
	case delta <= 0:
		d.Accepted = true
		d.Code = CodeAccepted
	case committed+delta > capGRPS:
		d.Code = CodeInfeasible
		d.Reason = fmt.Sprintf(
			"committed %v GRPS + requested %v exceeds %v-bound capacity %v; honoring existing guarantees forbids the grant",
			committed, delta, binding, capGRPS)
	default:
		d.Accepted = true
		d.Code = CodeAccepted
	}
	return d
}

// NodeRemovalFeasible decides whether draining or retiring a node of the
// given capacity still leaves every committed guarantee honorable: the same
// inequality with the pool shrunk to enabled − leaving.
func NodeRemovalFeasible(cfg Config, committed qos.GRPS, enabled, leaving qos.Vector) Decision {
	cfg = cfg.withDefaults()
	capGRPS, binding := CapacityGRPS(enabled.Sub(leaving).ClampNonNegative())
	capGRPS = qos.GRPS(float64(capGRPS) * cfg.Headroom)
	d := Decision{
		Committed: committed,
		Capacity:  capGRPS,
		Binding:   binding,
	}
	if committed > capGRPS {
		d.Code = CodeInfeasible
		d.Reason = fmt.Sprintf(
			"removing the node leaves %v-bound capacity %v below the committed %v GRPS",
			binding, capGRPS, committed)
		return d
	}
	d.Accepted = true
	d.Code = CodeAccepted
	return d
}
