package cluster

import (
	"math"
	"testing"
	"time"

	"gage/internal/qos"
	"gage/internal/telemetry"
	"gage/internal/workload"
)

// TestLatencyHistogramMatchesSamples: the simulator records completion
// latencies into the same histogram type the live dispatcher exposes at
// /metrics, and the histogram's quantiles track the raw-sample statistics
// the Result rows are computed from — so simulated and measured latency
// distributions are comparable within the histogram's documented error.
func TestLatencyHistogramMatchesSamples(t *testing.T) {
	res, err := Run(Options{
		Subscribers: []qos.Subscriber{
			{ID: "a", Hosts: []string{"a.example"}, Reservation: 30},
			{ID: "b", Hosts: []string{"b.example"}, Reservation: 10},
		},
		Sources: []workload.Source{
			mustConstSource("a", "a.example", 30, qos.GenericCost()),
			mustConstSource("b", "b.example", 10, qos.GenericCost()),
		},
		NumRPNs:  2,
		Warmup:   time.Second,
		Duration: 20 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, row := range res.Rows {
		h := res.LatencyHist[row.ID]
		if h == nil {
			t.Fatalf("no latency histogram for %q", row.ID)
		}
		snap := h.Snapshot()
		if snap.Count != uint64(row.ServedReqs) {
			t.Errorf("%s: histogram count = %d, want ServedReqs %d", row.ID, snap.Count, row.ServedReqs)
		}
		if snap.Count == 0 {
			t.Fatalf("%s: no served requests — the comparison is vacuous", row.ID)
		}
		// The exact mean must agree with the raw-sample mean (the only
		// difference is float seconds vs integer nanoseconds).
		if diff := math.Abs(snap.Mean().Seconds() - row.MeanLatency.Seconds()); diff > 1e-4 {
			t.Errorf("%s: histogram mean %v vs raw mean %v", row.ID, snap.Mean(), row.MeanLatency)
		}
		// The p95 estimate must track the interpolated raw percentile within
		// the documented relative error plus the discretization between the
		// two quantile definitions (one order statistic apart).
		p95 := snap.Quantile(0.95).Seconds()
		raw := row.P95Latency.Seconds()
		tol := raw*(2*telemetry.RelativeError) + 0.005
		if math.Abs(p95-raw) > tol {
			t.Errorf("%s: histogram p95 %.6fs vs raw p95 %.6fs exceeds tolerance %.6fs",
				row.ID, p95, raw, tol)
		}
		// Extremes are exact.
		if snap.Min <= 0 || snap.Max < snap.Min {
			t.Errorf("%s: degenerate extremes min=%v max=%v", row.ID, snap.Min, snap.Max)
		}
	}
}
