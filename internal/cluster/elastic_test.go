package cluster

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"gage/internal/admitctl"
	"gage/internal/core"
	"gage/internal/flightrec"
	"gage/internal/metrics"
	"gage/internal/qos"
)

// The drill geometry lives in ElasticityDrillOptions (elastic.go) so the
// test and `gagebench elastic` run the identical scenario.
const (
	drillWarmup = ElasticityDrillWarmup
	drillDur    = ElasticityDrillDuration
)

func drillOptions(rec *flightrec.Recorder) Options { return ElasticityDrillOptions(rec) }

// TestElasticityDrill is the acceptance drill for the scripted admission
// plane: every accepted operation lands while load is flowing, the refused
// one leaves the committed total untouched, the added node ramps in
// monotonically, the drained node goes quiet, and — the headline guarantee —
// the untouched subscribers' conformance audit shows zero violation spans
// through all the churn.
func TestElasticityDrill(t *testing.T) {
	var spill bytes.Buffer
	rec := flightrec.NewRecorder(flightrec.Config{RingSize: 64, Spill: &spill})
	res, err := Run(drillOptions(rec))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertSettled(t, res)
	if got := res.DispatchedReqs + res.QueuedAtEnd + res.OrphanedReqs; got != res.AdmittedReqs {
		t.Errorf("admission books broken: admitted=%d but dispatched+queued+orphaned=%d (%d+%d+%d)",
			res.AdmittedReqs, got, res.DispatchedReqs, res.QueuedAtEnd, res.OrphanedReqs)
	}

	// The outcome log holds every scripted event in schedule order.
	if len(res.AdmissionLog) != 6 {
		t.Fatalf("admission log holds %d outcomes, want 6: %+v", len(res.AdmissionLog), res.AdmissionLog)
	}
	wantApplied := []bool{true, true, true, true, false, true}
	for i, out := range res.AdmissionLog {
		if out.Err != "" {
			t.Errorf("event %d (%v): mechanical error %q", i, out.Kind, out.Err)
		}
		if out.Applied != wantApplied[i] {
			t.Errorf("event %d (%v): applied=%v, want %v", i, out.Kind, out.Applied, wantApplied[i])
		}
	}
	if res.AdmissionAccepted != 5 || res.AdmissionRejected != 1 {
		t.Errorf("accepted/rejected = %d/%d, want 5/1", res.AdmissionAccepted, res.AdmissionRejected)
	}

	// The infeasible admission is refused with a structured reason and the
	// committed reservation total is exactly what the previous event left.
	reject := res.AdmissionLog[4]
	if reject.Decision.Code != admitctl.CodeInfeasible {
		t.Errorf("site4 decision code = %q, want %q", reject.Decision.Code, admitctl.CodeInfeasible)
	}
	if reject.Decision.Reason == "" {
		t.Error("site4 refusal carries no reason")
	}
	if reject.Decision.Binding == "" {
		t.Error("site4 refusal names no binding resource")
	}
	if before := res.AdmissionLog[3].CommittedAfter; reject.CommittedAfter != before {
		t.Errorf("refused admission moved the committed total: %v → %v", before, reject.CommittedAfter)
	}
	if reject.CommittedAfter != 160 {
		t.Errorf("committed total after refusal = %v, want 160", reject.CommittedAfter)
	}
	if _, ok := res.Row("site4"); ok {
		t.Error("refused subscriber site4 has a result row")
	}

	// site3 lived from admit to removal: it served real traffic and its row
	// is frozen at its final (resized) reservation.
	site3, ok := res.Row("site3")
	if !ok {
		t.Fatal("no row for site3")
	}
	if site3.Reservation != 60 {
		t.Errorf("site3 row reservation = %v, want the resized 60", site3.Reservation)
	}
	if site3.ServedReqs == 0 {
		t.Error("site3 served nothing between admission and removal")
	}

	// The added node enters below full weight and ramps monotonically to 1.
	addOff := 9*time.Second - drillWarmup
	var ramp []float64
	for _, s := range res.NodeWeights[3].Samples() {
		if s.T >= addOff {
			ramp = append(ramp, s.Units)
		}
	}
	if len(ramp) == 0 {
		t.Fatal("no weight samples for the added node")
	}
	if ramp[0] >= 1 {
		t.Errorf("added node's first weight sample = %v; scale-out must start below full", ramp[0])
	}
	if !metrics.MonotoneNonDecreasing(ramp, 0) {
		t.Errorf("added node's weight ramp is not monotone: %v", ramp[:min(len(ramp), 12)])
	}
	if last := ramp[len(ramp)-1]; last != 1 {
		t.Errorf("added node's final weight = %v, want 1", last)
	}
	if dispatches := res.NodeDispatches[3].Samples(); len(dispatches) == 0 {
		t.Error("added node received no dispatches")
	}

	// The drained node takes nothing new after the drain settles.
	drainOff := 11*time.Second - drillWarmup
	for _, s := range res.NodeWeights[2].Samples() {
		if s.T > drainOff && s.Units != 0 {
			t.Errorf("drained node's weight = %v at %v, want 0 from %v on", s.Units, s.T, drainOff)
			break
		}
	}
	for _, s := range res.NodeDispatches[2].Samples() {
		if s.T > drainOff+2*core.DefaultCycle {
			t.Errorf("drained node dispatched at %v, after the drain at %v", s.T, drainOff)
			break
		}
	}

	// The headline acceptance check: replay the cycle log offline and
	// require zero violation spans for the untouched subscribers through
	// the admit/resize/add/drain churn.
	if err := rec.SpillErr(); err != nil {
		t.Fatalf("spill: %v", err)
	}
	recs, err := flightrec.ReadLog(&spill)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	rep := flightrec.Replay(recs, flightrec.AuditorConfig{Skip: drillWarmup})
	for _, id := range []qos.SubscriberID{"site1", "site2"} {
		sub, ok := rep.Sub(id)
		if !ok {
			t.Fatalf("audit report has no entry for %s", id)
		}
		if sub.Violations != 0 || len(sub.Spans) != 0 {
			t.Errorf("%s: %d violation spans (%v); an untouched subscriber must audit clean",
				id, sub.Violations, sub.Spans)
		}
	}
	// Every applied operation left its mark in the audit stream, in order.
	var kinds []string
	for _, ev := range rep.Events {
		kinds = append(kinds, ev.Event.Kind)
	}
	wantKinds := []string{"sub-admit", "sub-resize", "node-add", "node-drain", "sub-remove"}
	if !reflect.DeepEqual(kinds, wantKinds) {
		t.Errorf("audit event kinds = %v, want %v", kinds, wantKinds)
	}
}

// TestElasticityDrillReplayable runs the drill twice and requires identical
// outcomes — scripted elasticity must be as deterministic as scripted faults.
func TestElasticityDrillReplayable(t *testing.T) {
	run := func() *Result {
		res, err := Run(drillOptions(nil))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.AdmissionLog, b.AdmissionLog) {
		t.Errorf("admission logs differ:\n%+v\n%+v", a.AdmissionLog, b.AdmissionLog)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Errorf("rows differ:\n%+v\n%+v", a.Rows, b.Rows)
	}
	type counters struct{ dispatched, delivered, admitted, shed, queued, orphaned int }
	ca := counters{a.DispatchedReqs, a.DeliveredReqs, a.AdmittedReqs, a.ShedReqs, a.QueuedAtEnd, a.OrphanedReqs}
	cb := counters{b.DispatchedReqs, b.DeliveredReqs, b.AdmittedReqs, b.ShedReqs, b.QueuedAtEnd, b.OrphanedReqs}
	if ca != cb {
		t.Errorf("counters differ: %+v vs %+v", ca, cb)
	}
}
