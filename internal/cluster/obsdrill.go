package cluster

import (
	"time"

	"gage/internal/faults"
	"gage/internal/flightrec"
	"gage/internal/obs"
)

// The observability acceptance drill: the elasticity scenario with a node
// crash injected mid-churn, run with the unified event bus and trace
// sampling on. Node 1 dies while three subscribers are committed against a
// two-node pool, so site1's guarantee genuinely breaks — the auditor opens
// a violation span whose exemplars resolve end-to-end through the merged
// event log, and `gagetrace explain` reconstructs the story: the crash,
// the breaker trip that detected it, the control-plane decisions taken in
// the same window, and at least one concrete request's full
// classify→queue→dispatch→settle path. Everything runs on the virtual
// clock, so two runs produce byte-identical logs and stories.
const (
	// ObsDrillTraceEvery samples every 8th arrival for span events.
	ObsDrillTraceEvery = 8
	// ObsDrillCrashAt fail-stops node 1 mid-run; ObsDrillRecoverAt restarts
	// it. Between the two, 130 GRPS of commitments lean on a single
	// 100-GRPS node — a guaranteed violation with standing demand.
	ObsDrillCrashAt   = 5 * time.Second
	ObsDrillRecoverAt = 8 * time.Second
)

// ObsDrillOptions is the deterministic drill behind the observability
// acceptance test and the EXPERIMENTS.md "explain a violation" walkthrough.
// rec and bus may each be nil (the drill then runs without that stream).
func ObsDrillOptions(rec *flightrec.Recorder, bus *obs.Bus) Options {
	o := ElasticityDrillOptions(rec)
	o.Bus = bus
	o.TraceEvery = ObsDrillTraceEvery
	o.Faults = &faults.Plan{Events: []faults.Event{
		{At: ObsDrillCrashAt, Kind: faults.NodeCrash, Node: 1},
		{At: ObsDrillRecoverAt, Kind: faults.NodeRecover, Node: 1},
	}}
	if rec != nil && bus != nil {
		// A live auditor mirrors violation spans onto the bus at their
		// exact virtual offsets, like the live dispatcher's does.
		a := flightrec.NewAuditor(rec, ObsDrillAuditConfig())
		a.SetBus(bus)
		o.Auditor = a
	}
	return o
}

// ObsDrillAuditConfig is the auditor configuration the drill's offline
// replay uses: warmup excluded, a 2-second slow window so the crash-induced
// under-delivery crosses the violation threshold well before recovery.
func ObsDrillAuditConfig() flightrec.AuditorConfig {
	return flightrec.AuditorConfig{
		Window: 2 * time.Second,
		Skip:   ElasticityDrillWarmup,
	}
}
