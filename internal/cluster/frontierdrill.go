package cluster

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"gage/internal/faults"
	"gage/internal/flightrec"
	"gage/internal/frontier"
	"gage/internal/qos"
	"gage/internal/workload"
)

// FrontierDrillOptions configures the deterministic RDN-failover drill: a
// three-instance front-end tier under steady per-partition load, one
// instance killed mid-run and recovered later. Every knob has a default so
// the zero value is the CI scenario.
type FrontierDrillOptions struct {
	// RDNCount is the tier size (default 3).
	RDNCount int
	// NumRPNs is the back-end size (default 4).
	NumRPNs int
	// Groups is the tenant-group count (default 6), PerGroup the
	// subscribers per group (default 2).
	Groups   int
	PerGroup int
	// ResPerSub is each subscriber's reservation in GRPS (default 20).
	ResPerSub qos.GRPS
	// LeaseInterval is the failover detection bound (default 400 ms);
	// heartbeats run at a quarter of it.
	LeaseInterval time.Duration
	// Warmup/Duration as in Options (defaults 1 s / 8 s).
	Warmup   time.Duration
	Duration time.Duration
	// CrashAt/RecoverAt are offsets from run start, warmup included
	// (defaults 4 s / 6.5 s).
	CrashAt   time.Duration
	RecoverAt time.Duration
	// Victim picks the instance to kill; 0 kills the owner of the first
	// tenant group.
	Victim int
}

// WithDefaults fills every unset knob.
func (o FrontierDrillOptions) WithDefaults() FrontierDrillOptions {
	if o.RDNCount <= 0 {
		o.RDNCount = 3
	}
	if o.NumRPNs <= 0 {
		o.NumRPNs = 4
	}
	if o.Groups <= 0 {
		o.Groups = 6
	}
	if o.PerGroup <= 0 {
		o.PerGroup = 2
	}
	if o.ResPerSub <= 0 {
		o.ResPerSub = 20
	}
	if o.LeaseInterval <= 0 {
		o.LeaseInterval = 400 * time.Millisecond
	}
	if o.Warmup <= 0 {
		o.Warmup = time.Second
	}
	if o.Duration <= 0 {
		o.Duration = 8 * time.Second
	}
	if o.CrashAt <= 0 {
		o.CrashAt = 4 * time.Second
	}
	if o.RecoverAt <= 0 {
		o.RecoverAt = 6500 * time.Millisecond
	}
	return o
}

// FrontierDrillReport is the drill's outcome plus enough context to assert
// (or print) the failover story: who died, which partition went dark, how
// fast a survivor adopted it, and the per-instance cycle logs for the
// offline audit.
type FrontierDrillReport struct {
	Opts   FrontierDrillOptions
	Result *FrontierResult
	// Victim is the killed instance; VictimGroups its partition at crash.
	Victim       int
	VictimGroups []string
	// SurvivorGroups are the groups owned by other instances throughout.
	SurvivorGroups []string
	// TakeoverLatency is first takeover minus crash time (0 if none).
	TakeoverLatency time.Duration
	// Records holds each instance's cycle log (index rdn−1) for gagetrace.
	Records [][]flightrec.CycleRecord
}

// drillGroup names tenant groups tier00, tier01, … matching the frontier
// partitioner's golden-test population style.
func drillGroup(i int) string { return fmt.Sprintf("tier%02d", i) }

// RDNFailoverDrill runs the deterministic kill/recover drill. Same options
// ⇒ identical report: the workload is constant-rate, the fault plan exact,
// and the whole tier runs on the virtual clock.
func RDNFailoverDrill(opts FrontierDrillOptions) (*FrontierDrillReport, error) {
	opts = opts.WithDefaults()
	part, err := frontier.NewPartitioner(opts.RDNCount)
	if err != nil {
		return nil, err
	}
	victim := opts.Victim
	if victim == 0 {
		victim = part.Owner(drillGroup(0))
	}

	var subs []qos.Subscriber
	var sources []workload.Source
	generic := qos.GenericCost()
	var victimGroups, survivorGroups []string
	for gi := 0; gi < opts.Groups; gi++ {
		g := drillGroup(gi)
		if part.Owner(g) == victim {
			victimGroups = append(victimGroups, g)
		} else {
			survivorGroups = append(survivorGroups, g)
		}
		for si := 0; si < opts.PerGroup; si++ {
			id := qos.SubscriberID(fmt.Sprintf("%s-s%d", g, si))
			host := fmt.Sprintf("%s.example", id)
			subs = append(subs, qos.Subscriber{
				ID:          id,
				Hosts:       []string{host},
				Reservation: opts.ResPerSub,
				QueueLimit:  256,
				Group:       g,
			})
			// Offered load sits at the reservation: partitions are
			// independent, so survivors must keep meeting it exactly while
			// the victim's share is dark.
			sources = append(sources, mustConstSource(id, host, float64(opts.ResPerSub), generic))
		}
	}

	recs := make([]*flightrec.Recorder, opts.RDNCount)
	for i := range recs {
		recs[i] = flightrec.NewRecorder(flightrec.Config{RingSize: 4096})
	}
	plan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.RDNCrash, RDN: victim, At: opts.CrashAt},
		{Kind: faults.RDNRecover, RDN: victim, At: opts.RecoverAt},
	}}
	res, err := RunFrontier(FrontierOptions{
		Options: Options{
			Subscribers: subs,
			Sources:     sources,
			NumRPNs:     opts.NumRPNs,
			Warmup:      opts.Warmup,
			Duration:    opts.Duration,
			Faults:      plan,
		},
		RDNCount:      opts.RDNCount,
		LeaseInterval: opts.LeaseInterval,
		Recorders:     recs,
	})
	if err != nil {
		return nil, err
	}
	rep := &FrontierDrillReport{
		Opts:           opts,
		Result:         res,
		Victim:         victim,
		VictimGroups:   victimGroups,
		SurvivorGroups: survivorGroups,
		Records:        make([][]flightrec.CycleRecord, opts.RDNCount),
	}
	for i, r := range recs {
		rep.Records[i] = r.Recent(0)
	}
	for _, ch := range res.Takeovers {
		if ch.Kind == "takeover" && ch.From == victim {
			rep.TakeoverLatency = ch.At - opts.CrashAt
			break
		}
	}
	return rep, nil
}

// MergedRecords interleaves every instance's cycle log by offset — the
// stream gagetrace audits. The merge is stable, so same-offset records keep
// instance order.
func (rep *FrontierDrillReport) MergedRecords() []flightrec.CycleRecord {
	var all []flightrec.CycleRecord
	for _, recs := range rep.Records {
		all = append(all, recs...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all
}

// Check asserts the drill's acceptance story: the takeover fired within one
// lease interval (plus heartbeat granularity), the partition came back to
// its recovered home, the settlement books close exactly, the blast radius
// stayed inside the victim's partition, and the merged cycle-log audit sees
// clean survivors plus the takeover trail.
func (rep *FrontierDrillReport) Check() error {
	r := rep.Result
	if got, want := r.AdmittedReqs, r.DispatchedReqs+r.QueuedAtEnd+r.LostQueuedReqs; got != want {
		return fmt.Errorf("admission books do not close: admitted %d != dispatched %d + queued %d + lost %d",
			r.AdmittedReqs, r.DispatchedReqs, r.QueuedAtEnd, r.LostQueuedReqs)
	}
	if got, want := r.DispatchedReqs, r.DeliveredReqs+r.ReclaimedReqs+r.FencedReqs+r.InflightAtEnd; got != want {
		return fmt.Errorf("settlement books do not close: dispatched %d != delivered %d + reclaimed %d + fenced %d + inflight %d",
			r.DispatchedReqs, r.DeliveredReqs, r.ReclaimedReqs, r.FencedReqs, r.InflightAtEnd)
	}
	if r.BalanceViolations != 0 {
		return fmt.Errorf("%d balance clamp violations", r.BalanceViolations)
	}
	var takeoverAt time.Duration
	var sawHandback bool
	for _, ch := range r.Takeovers {
		if ch.Kind == "takeover" && ch.From == rep.Victim && takeoverAt == 0 {
			takeoverAt = ch.At
		}
		if ch.Kind == "handback" && ch.To == rep.Victim && ch.At >= rep.Opts.RecoverAt {
			sawHandback = true
		}
	}
	if len(rep.VictimGroups) > 0 {
		if takeoverAt == 0 {
			return fmt.Errorf("no takeover from victim RDN %d", rep.Victim)
		}
		bound := rep.Opts.LeaseInterval + rep.Opts.LeaseInterval/2
		if lat := takeoverAt - rep.Opts.CrashAt; lat <= 0 || lat > bound {
			return fmt.Errorf("takeover latency %v outside (0, %v]", lat, bound)
		}
		if !sawHandback {
			return fmt.Errorf("no handback to recovered RDN %d", rep.Victim)
		}
		if r.RefusedDeadReqs == 0 {
			return fmt.Errorf("outage invisible: no refused requests at the dead front end")
		}
	}
	// Blast radius: only the victim's partition may drop anything.
	for _, row := range r.Rows {
		g := string(row.ID[:6])
		if slices.Contains(rep.SurvivorGroups, g) && row.DroppedReqs != 0 {
			return fmt.Errorf("survivor partition %s dropped %d requests", row.ID, row.DroppedReqs)
		}
	}
	// Offline audit over the merged per-instance logs: survivors conform
	// with zero violation spans, and the takeover trail is in the stream.
	audit := flightrec.Replay(rep.MergedRecords(), flightrec.AuditorConfig{
		Skip: rep.Opts.Warmup,
	})
	var sawEvent bool
	for _, ev := range audit.Events {
		if ev.Event.Kind == "takeover" {
			sawEvent = true
		}
	}
	if len(rep.VictimGroups) > 0 && !sawEvent {
		return fmt.Errorf("takeover missing from flight-recorder stream")
	}
	for _, sr := range audit.Subs {
		g := string(sr.ID[:6])
		if slices.Contains(rep.SurvivorGroups, g) && sr.Violations != 0 {
			return fmt.Errorf("survivor %s shows %d violation spans in audit", sr.ID, sr.Violations)
		}
	}
	return nil
}

// KneePoint is one entry of the Figure-6-style projection: with the client
// packet stream partitioned across N front ends, each instance sees 1/N of
// the packet rate, so the interrupt-overload knee — and with it the tier's
// saturation throughput — moves right by N.
type KneePoint struct {
	RDNs         int
	SatReqPerSec float64
}

// FrontierKnee projects the tier's saturation request rate for each RDN
// count under the given front-end cost model.
func FrontierKnee(m RDNModel, tiers []int) []KneePoint {
	base := saturationRate(m)
	out := make([]KneePoint, 0, len(tiers))
	for _, n := range tiers {
		if n <= 0 {
			continue
		}
		out = append(out, KneePoint{RDNs: n, SatReqPerSec: base * float64(n)})
	}
	return out
}
