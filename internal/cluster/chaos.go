package cluster

import (
	"sort"
	"time"

	"gage/internal/breaker"
	"gage/internal/core"
	"gage/internal/obs"
	"gage/internal/qos"
)

// unhealthyAfterMissedAcct is how many consecutive silent accounting cycles
// make the harness's RDN declare an RPN dead and stop dispatching to it —
// the simulator's analogue of dispatch.UnhealthyAfter on the live path.
const unhealthyAfterMissedAcct = 3

// slowStartAcctCycles is the slow-start window mirrored from the live
// dispatcher: a node leaving its breaker re-enters the scheduler at
// 1/(slowStartAcctCycles+1) of its capacity and ramps to full weight over
// that many accounting cycles, so a recovered RPN is not handed a
// thundering herd the instant its first report lands.
const slowStartAcctCycles = 4

// acctMsg is one accounting message in flight RDN-ward: the node's
// cumulative counters stamped with its incarnation and a send sequence, so
// delayed messages that arrive out of order are recognized as stale instead
// of being mistaken for a counter reset.
type acctMsg struct {
	seq   int
	epoch int
	cum   core.UsageReport
}

// chaosRun is the harness bookkeeping that makes every dispatch settle
// exactly once and turns missing feedback into failure detection. It exists
// on every run (fault plan or not) so the settlement invariant is always
// audited for free.
type chaosRun struct {
	crashed  map[core.NodeID]bool
	inflight map[core.NodeID]map[uint64]qos.SubscriberID
	// draining pins a node's scheduler weight at 0 regardless of breaker
	// state — graceful scale-in must not be undone by a healthy breaker's
	// ramp on the next accounting tick.
	draining map[core.NodeID]bool

	dispatched, delivered, reclaimed int
	balanceViolations                int

	// Accounting-feedback health per node: each RPN's breaker trips on the
	// missed-cycle streak and ramps the node back through slow start after
	// recovery. The sim only ever feeds the Poll source — there is no
	// separate request path to probe — so recovery is always "first
	// delivered report re-enables, at reduced weight".
	breakers map[core.NodeID]*breaker.Breaker

	// Cumulative-report differ state per node.
	sendSeq  map[core.NodeID]int
	lastSeq  map[core.NodeID]int
	lastEp   map[core.NodeID]int
	lastSeen map[core.NodeID]core.UsageReport

	// bus, when non-nil, receives one event per breaker state transition —
	// the failure-detection half of a crash's causal story.
	bus *obs.Bus
}

func newChaosRun(nodes []*RPN) *chaosRun {
	cs := &chaosRun{
		crashed:  make(map[core.NodeID]bool, len(nodes)),
		inflight: make(map[core.NodeID]map[uint64]qos.SubscriberID, len(nodes)),
		draining: make(map[core.NodeID]bool, len(nodes)),
		breakers: make(map[core.NodeID]*breaker.Breaker, len(nodes)),
		sendSeq:  make(map[core.NodeID]int, len(nodes)),
		lastSeq:  make(map[core.NodeID]int, len(nodes)),
		lastEp:   make(map[core.NodeID]int, len(nodes)),
		lastSeen: make(map[core.NodeID]core.UsageReport, len(nodes)),
	}
	for _, r := range nodes {
		cs.inflight[r.id] = make(map[uint64]qos.SubscriberID)
		cs.lastSeq[r.id] = -1
		cs.breakers[r.id] = breaker.New(breaker.Config{
			Threshold: unhealthyAfterMissedAcct,
			SlowStart: slowStartAcctCycles,
		})
	}
	return cs
}

// addNode registers a mid-run node. It enters through a ramping breaker —
// weight 1/(slowStart+1), climbing one step per accounting tick — so a
// scale-out joins the pool exactly like a node recovering from a breaker
// trip rather than being handed a thundering herd.
func (cs *chaosRun) addNode(r *RPN) {
	cs.inflight[r.id] = make(map[uint64]qos.SubscriberID)
	cs.lastSeq[r.id] = -1
	cs.breakers[r.id] = breaker.NewRamping(breaker.Config{
		Threshold: unhealthyAfterMissedAcct,
		SlowStart: slowStartAcctCycles,
	})
}

// drain marks a node draining and zeroes its scheduler weight; in-flight
// accounting keeps settling normally. Returns the node's estimated
// outstanding load at drain time.
func (cs *chaosRun) drain(sched *core.Scheduler, node core.NodeID) qos.Vector {
	cs.draining[node] = true
	// Known nodes cannot fail to drain.
	out, _ := sched.DrainNode(node)
	return out
}

// track records a dispatch as in flight on its node.
func (cs *chaosRun) track(node core.NodeID, reqID uint64, sub qos.SubscriberID) {
	cs.dispatched++
	cs.inflight[node][reqID] = sub
}

// complete settles one delivered request.
func (cs *chaosRun) complete(node core.NodeID, reqID uint64) {
	delete(cs.inflight[node], reqID)
	cs.delivered++
}

// reclaimOne settles one crash-lost request: its dispatch-time charge is
// released back to the scheduler so the dead node's capacity and the
// subscriber's in-flight estimate do not leak.
func (cs *chaosRun) reclaimOne(sched *core.Scheduler, node core.NodeID, reqID uint64, sub qos.SubscriberID) {
	delete(cs.inflight[node], reqID)
	cs.reclaimed++
	sched.ReleaseDispatch(sub, node, reqID)
}

// crash fail-stops a node: every request in flight there is reclaimed and
// the RPN restarts cold. The scheduler keeps dispatching to the node until
// the missed-accounting streak disables it — the RDN has no crash oracle.
func (cs *chaosRun) crash(sched *core.Scheduler, r *RPN) {
	cs.crashed[r.id] = true
	// Reclaim in request-ID order: scheduler release math clamps at zero,
	// so a deterministic order keeps chaos runs byte-replayable.
	ids := make([]uint64, 0, len(cs.inflight[r.id]))
	for reqID := range cs.inflight[r.id] {
		ids = append(ids, reqID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, reqID := range ids {
		cs.reclaimed++
		sched.ReleaseDispatch(cs.inflight[r.id][reqID], r.id, reqID)
	}
	cs.inflight[r.id] = make(map[uint64]qos.SubscriberID)
	r.Crash()
}

// recover brings a crashed node back; it resumes answering accounting
// cycles, and the first delivered report re-enables it.
func (cs *chaosRun) recover(node core.NodeID) {
	cs.crashed[node] = false
}

// missAcct records one silent accounting cycle for a node; at the streak
// threshold the breaker opens and the node's scheduler weight drops to 0.
func (cs *chaosRun) missAcct(sched *core.Scheduler, node core.NodeID, now time.Time) {
	if cs.breakers[node].Failure(breaker.Poll, now) {
		cs.publishBreaker(node)
	}
	cs.applyWeight(sched, node)
}

// ackAcct records one delivered report. A tripped breaker closes — the poll
// is its own probe — and the node rejoins the scheduler at the bottom of
// the slow-start ramp rather than at full weight.
func (cs *chaosRun) ackAcct(sched *core.Scheduler, node core.NodeID, now time.Time) {
	if cs.breakers[node].Success(breaker.Poll, now) {
		cs.publishBreaker(node)
	}
	cs.applyWeight(sched, node)
}

// tickAcct advances breaker time one accounting cycle: the slow-start ramp
// climbs one step for closed breakers.
func (cs *chaosRun) tickAcct(sched *core.Scheduler, node core.NodeID, now time.Time) {
	if cs.breakers[node].Tick(now) {
		cs.publishBreaker(node)
	}
	cs.applyWeight(sched, node)
}

// publishBreaker records one breaker state transition on the event bus.
func (cs *chaosRun) publishBreaker(node core.NodeID) {
	cs.bus.Publish(obs.Event{Kind: obs.KindBreaker, Node: int(node),
		Stage: cs.breakers[node].State().String(), Detail: breaker.Poll.String()})
}

// nodeWeight reports the node's current scheduler weight: the breaker's,
// pinned at 0 while the node drains.
func (cs *chaosRun) nodeWeight(node core.NodeID) float64 {
	if cs.draining[node] {
		return 0
	}
	return cs.breakers[node].Weight()
}

// applyWeight keeps the scheduler's admission weight in lockstep with the
// breaker — the single place health changes what the scheduler may dispatch.
func (cs *chaosRun) applyWeight(sched *core.Scheduler, node core.NodeID) {
	// Known nodes cannot fail to update.
	_ = sched.SetNodeWeight(node, cs.nodeWeight(node))
}

// deliverAcct folds one arriving accounting message into the delta the
// scheduler consumes. Stale messages (an older send overtaken by a newer
// one inside a delay window) return ok=false and must be ignored. A message
// from a new incarnation is a counter reset: the fresh cumulative IS the
// delta, mirroring the live dispatcher's report differ.
func (cs *chaosRun) deliverAcct(node core.NodeID, msg acctMsg) (core.UsageReport, bool) {
	if msg.epoch == cs.lastEp[node] && msg.seq <= cs.lastSeq[node] {
		return core.UsageReport{}, false
	}
	prev := cs.lastSeen[node]
	if msg.epoch != cs.lastEp[node] {
		prev = core.UsageReport{} // restarted: counters began again at zero
	}
	cs.lastSeq[node] = msg.seq
	cs.lastEp[node] = msg.epoch
	cs.lastSeen[node] = msg.cum
	return diffCumulative(msg.cum, prev), true
}

// inflightTotal counts requests still in flight across all nodes.
func (cs *chaosRun) inflightTotal() int {
	var n int
	for _, m := range cs.inflight {
		n += len(m)
	}
	return n
}

// diffCumulative converts a node's cumulative usage report into the delta
// since prev. Within one incarnation counters are monotone, so no negative
// handling is needed here; incarnation changes zero prev before the call.
func diffCumulative(cum, prev core.UsageReport) core.UsageReport {
	delta := core.UsageReport{
		Node:         cum.Node,
		Total:        cum.Total.Sub(prev.Total),
		BySubscriber: make(map[qos.SubscriberID]core.SubscriberUsage, len(cum.BySubscriber)),
	}
	for id, u := range cum.BySubscriber {
		p := prev.BySubscriber[id]
		d := core.SubscriberUsage{
			Usage:     u.Usage.Sub(p.Usage),
			Completed: u.Completed - p.Completed,
		}
		if d.Usage.IsZero() && d.Completed == 0 {
			continue
		}
		delta.BySubscriber[id] = d
	}
	return delta
}
