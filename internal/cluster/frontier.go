package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"gage/internal/breaker"
	"gage/internal/classify"
	"gage/internal/core"
	"gage/internal/faults"
	"gage/internal/flightrec"
	"gage/internal/frontier"
	"gage/internal/metrics"
	"gage/internal/qos"
	"gage/internal/vclock"
	"gage/internal/workload"
)

// minCapacityShare floors a front end's slice of each RPN's capacity: an
// instance that currently owns no partition must still hold a positive
// capacity so its scheduler stays constructible and can absorb a handback.
const minCapacityShare = 0.001

// FrontierOptions configures a multi-RDN front-end tier run: the base
// single-RDN experiment options plus the tier shape. Options.Recorder is
// ignored here — each front end records into its own Recorders slot.
type FrontierOptions struct {
	Options

	// RDNCount is the number of front-end instances (ids 1..RDNCount).
	// 1 degenerates to the single-RDN harness semantics.
	RDNCount int
	// LeaseInterval is how long an instance may stay silent before its lease
	// expires and its partition is taken over (default 1s).
	LeaseInterval time.Duration
	// BeatInterval is the heartbeat period (default LeaseInterval/4).
	BeatInterval time.Duration
	// Recorders, when non-nil, holds one flight recorder per RDN
	// (index rdn−1); missing or nil slots record nothing.
	Recorders []*flightrec.Recorder
}

func (o FrontierOptions) withFrontierDefaults() FrontierOptions {
	o.Options = o.Options.withDefaults()
	if o.RDNCount <= 0 {
		o.RDNCount = 1
	}
	if o.LeaseInterval <= 0 {
		o.LeaseInterval = time.Second
	}
	if o.BeatInterval <= 0 {
		o.BeatInterval = o.LeaseInterval / 4
	}
	return o
}

// TierChange is one partition ownership change the run executed, offsets
// from the start of the run (warmup included).
type TierChange struct {
	At    time.Duration
	Group string
	From  int
	To    int
	Epoch uint64
	Kind  string
}

// FrontierResult is a multi-RDN run's outcome. The settlement counters
// close the books over every admitted request even across ownership moves:
//
//	AdmittedReqs == DispatchedReqs + QueuedAtEnd + LostQueuedReqs
//	DispatchedReqs == DeliveredReqs + ReclaimedReqs + FencedReqs + InflightAtEnd
//
// A handed-off request (withdrawn from a deposed owner's queue and requeued
// on the new owner) stays inside AdmittedReqs — it settles exactly once, on
// whichever scheduler finally dispatches it.
type FrontierResult struct {
	// Rows is the per-subscriber summary in subscriber-ID order.
	Rows []SubscriberRow
	// Series holds per-subscriber completion samples (offsets from the end
	// of warmup) for per-partition deviation analysis.
	Series map[qos.SubscriberID]*metrics.Series
	// Takeovers is every ownership change in execution order.
	Takeovers []TierChange
	// RDNUtilization is each front end's CPU utilization over the window
	// (index rdn−1; zeros when no RDN model was configured).
	RDNUtilization []float64
	// ServedReqPerSec is the cluster-wide completion rate over the window.
	ServedReqPerSec float64
	// Window is the measured duration.
	Window time.Duration

	// Whole-run admission counters (warmup included).
	AdmittedReqs int
	ShedReqs     int
	// RefusedDeadReqs counts arrivals that found their partition's owner
	// crashed before takeover — connection refused at a dead front end, the
	// tier's bounded blast radius made visible.
	RefusedDeadReqs int

	// Whole-run settlement counters.
	DispatchedReqs int
	DeliveredReqs  int
	ReclaimedReqs  int
	// FencedReqs counts dispatches refused at delivery because their epoch
	// stamp belonged to a deposed owner; each charge was reclaimed.
	FencedReqs    int
	InflightAtEnd int
	// HandedOffReqs counts queued requests moved to a new owner intact.
	HandedOffReqs int
	// LostQueuedReqs counts queued requests destroyed by an RDN crash (plus
	// any handoff requeue the new owner's queue limit refused).
	LostQueuedReqs int
	QueuedAtEnd    int

	// BalanceViolations counts per-tick audits (across every live scheduler)
	// that found a balance below its clamp floor. Must be 0.
	BalanceViolations int
}

// fflight carries one frontier dispatch across its wire and service hops,
// stamped with the dispatching RDN and its grant epoch for delivery fencing.
type fflight struct {
	req       *workload.Request
	node      *RPN
	rdn       int
	grant     uint64
	epoch     int
	effective qos.Vector
}

// inflightOwner remembers who dispatched an in-flight request so an RPN
// crash reclaims the charge on the right scheduler.
type inflightOwner struct {
	sub qos.SubscriberID
	rdn int
}

// RunFrontier executes one experiment on an N-instance front-end tier:
// subscribers are partitioned across RDNs by rendezvous hash over their
// tenant groups, each instance runs its own credit scheduler over its share
// of every RPN's capacity, and a lease table (heartbeats on the virtual
// clock) detects dead instances, moves their partitions to survivors with a
// bumped fencing epoch, and hands partitions back when the preferred home
// rejoins. With RDNCount == 1 the tier degenerates to Run's semantics: one
// scheduler over full capacity, no rebalancing, a lease table that never
// moves anything.
func RunFrontier(opts FrontierOptions) (*FrontierResult, error) {
	opts = opts.withFrontierDefaults()
	if len(opts.Subscribers) == 0 {
		return nil, errors.New("cluster: at least one subscriber required")
	}
	if len(opts.Sources) == 0 && len(opts.ReplayTrace) == 0 {
		return nil, errors.New("cluster: a load source or replay trace required")
	}
	if len(opts.Recorders) > opts.RDNCount {
		return nil, fmt.Errorf("cluster: %d recorders for %d RDNs", len(opts.Recorders), opts.RDNCount)
	}

	dir, err := qos.NewDirectory(opts.Subscribers)
	if err != nil {
		return nil, err
	}
	n := opts.RDNCount

	// Group geography: member lists, aggregate reservations, subscriber→group.
	groupOf := make(map[qos.SubscriberID]string, dir.Len())
	groupSubs := make(map[string][]qos.Subscriber)
	groupRes := make(map[string]qos.GRPS)
	var totalRes qos.GRPS
	for _, sub := range opts.Subscribers {
		groupOf[sub.ID] = sub.Group
		groupSubs[sub.Group] = append(groupSubs[sub.Group], sub)
		groupRes[sub.Group] += sub.Reservation
		totalRes += sub.Reservation
	}
	groups := make([]string, 0, len(groupSubs))
	for g := range groupSubs {
		groups = append(groups, g)
	}
	sort.Strings(groups)

	tb, err := frontier.NewTable(frontier.Config{RDNs: n, LeaseInterval: opts.LeaseInterval}, groups)
	if err != nil {
		return nil, err
	}

	rpns := make([]*RPN, opts.NumRPNs)
	baseCaps := make([]qos.Vector, opts.NumRPNs)
	for i := range rpns {
		rpns[i] = NewRPN(core.NodeID(i+1), opts.RPNSpeed, opts.LinkBandwidth)
		rpns[i].SetOverhead(opts.RPNOverhead)
		rpns[i].SetCache(opts.CacheEntries)
		baseCaps[i] = rpns[i].Capacity()
	}
	byID := make(map[core.NodeID]*RPN, len(rpns))
	for _, r := range rpns {
		byID[r.id] = r
	}

	coreCfg := core.Config{
		Cycle:                opts.SchedCycle,
		CreditWindow:         opts.CreditWindow,
		OutstandingWindow:    opts.OutstandingWindow,
		Gate:                 opts.Gate,
		PredictionAlpha:      opts.SchedulerAlpha,
		DisableCapacityDrain: opts.DisableCapacityDrain,
	}

	// grant is each instance's believed ownership: group → the epoch at
	// which the lease table granted it. A deposed owner keeps its stale
	// entry (it has no way to know) — its dispatches carry the old epoch and
	// die at the delivery fence.
	grant := make([]map[string]uint64, n+1)
	procAlive := make([]bool, n+1)
	for r := 1; r <= n; r++ {
		grant[r] = make(map[string]uint64)
		procAlive[r] = true
	}
	for _, g := range groups {
		own, _ := tb.Owner(g)
		grant[own.RDN][g] = own.Epoch
	}
	partShare := func(r int) float64 {
		if totalRes <= 0 {
			return 1 / float64(n)
		}
		var res qos.GRPS
		for g := range grant[r] {
			res += groupRes[g]
		}
		share := float64(res / totalRes)
		if share < minCapacityShare {
			share = minCapacityShare
		}
		return share
	}
	nodeCfgsFor := func(share float64) []core.NodeConfig {
		cfgs := make([]core.NodeConfig, len(rpns))
		for i, r := range rpns {
			c := baseCaps[i]
			if n > 1 {
				c = c.Scale(share)
			}
			cfgs[i] = core.NodeConfig{ID: r.id, Capacity: c}
		}
		return cfgs
	}

	scheds := make([]*core.Scheduler, n+1)
	for r := 1; r <= n; r++ {
		var subs []qos.Subscriber
		for g := range grant[r] {
			subs = append(subs, groupSubs[g]...)
		}
		sort.Slice(subs, func(i, j int) bool { return subs[i].ID < subs[j].ID })
		rdir, err := qos.NewDirectory(subs)
		if err != nil {
			return nil, err
		}
		scheds[r], err = core.New(rdir, nodeCfgsFor(partShare(r)), coreCfg)
		if err != nil {
			return nil, err
		}
	}

	var inj *faults.Injector
	if opts.Faults != nil {
		if err := opts.Faults.ValidateCluster(opts.NumRPNs, n); err != nil {
			return nil, err
		}
		inj, err = faults.NewInjector(*opts.Faults)
		if err != nil {
			return nil, err
		}
	}

	classifier := classify.NewHostClassifier(dir)
	engine := vclock.NewEngine(time.Time{})
	fronts := make([]*rdn, n+1)
	for r := 1; r <= n; r++ {
		fronts[r] = &rdn{model: opts.RDN}
	}

	total := opts.Warmup + opts.Duration
	start := engine.Now()
	measureFrom := start.Add(opts.Warmup)

	recAt := func(r int) *flightrec.Recorder {
		if r >= 1 && r <= len(opts.Recorders) {
			return opts.Recorders[r-1]
		}
		return nil
	}
	for r := 1; r <= n; r++ {
		if rec := recAt(r); rec != nil {
			rec.SetClock(func() time.Duration { return engine.Now().Sub(start) })
			rec.SetRDN(r)
			scheds[r].SetRecorder(rec)
		}
	}
	lowestAliveRec := func() *flightrec.Recorder {
		for r := 1; r <= n; r++ {
			if procAlive[r] {
				if rec := recAt(r); rec != nil {
					return rec
				}
			}
		}
		return nil
	}

	// Arrival stream, exactly as Run materializes it.
	var arrivals []workload.Request
	if len(opts.ReplayTrace) > 0 {
		arrivals = workload.Merge(opts.ReplayTrace)
	} else {
		var streams [][]workload.Request
		var nextID uint64 = 1
		for _, src := range opts.Sources {
			var reqs []workload.Request
			reqs, nextID = src.Schedule(total, nextID)
			streams = append(streams, reqs)
		}
		arrivals = workload.Merge(streams...)
	}

	tp := metrics.NewThroughput()
	series := make(map[qos.SubscriberID]*metrics.Series, dir.Len())
	for _, id := range dir.IDs() {
		series[id] = &metrics.Series{}
	}
	counts := struct {
		offered, served, dropped map[qos.SubscriberID]int
	}{
		offered: make(map[qos.SubscriberID]int),
		served:  make(map[qos.SubscriberID]int),
		dropped: make(map[qos.SubscriberID]int),
	}
	latencies := make(map[qos.SubscriberID][]float64, dir.Len())
	inWindow := func(t time.Time) bool { return !t.Before(measureFrom) }
	units := func(v qos.Vector) float64 {
		if opts.UnitResource != 0 {
			return v.UnitsOf(opts.UnitResource)
		}
		return v.GenericUnits()
	}

	res := &FrontierResult{
		Series:         series,
		Window:         opts.Duration,
		RDNUtilization: make([]float64, n),
	}
	infl := make(map[core.NodeID]map[uint64]inflightOwner, len(rpns))
	crashedRPN := make(map[core.NodeID]bool, len(rpns))
	for _, r := range rpns {
		infl[r.id] = make(map[uint64]inflightOwner)
	}

	// Admission: classify, route to the partition owner's front end, charge
	// its CPU, enqueue on its scheduler after the admission delay. A dead
	// owner refuses the connection outright — that partition is dark until
	// the lease expires and a survivor takes over.
	enqueueHop := func(arg any) {
		req := arg.(*workload.Request)
		now := engine.Now()
		sub, ok := classifier.Classify(req.Host, req.Path)
		if !ok {
			return
		}
		u := units(req.Cost)
		if inWindow(now) {
			tp.Offered(sub, u)
			counts.offered[sub]++
		}
		own, found := tb.Owner(groupOf[sub])
		if !found || !procAlive[own.RDN] {
			res.RefusedDeadReqs++
			if inWindow(now) {
				tp.Dropped(sub, u)
				counts.dropped[sub]++
			}
			return
		}
		var affinity uint64
		if opts.LocalityDispatch {
			affinity = localityKey(req.Host, req.Path)
		}
		err := scheds[own.RDN].Enqueue(core.Request{ID: req.ID, Subscriber: sub, Affinity: affinity, Payload: req})
		if err != nil {
			res.ShedReqs++
			if inWindow(now) {
				tp.Dropped(sub, u)
				counts.dropped[sub]++
			}
		} else {
			res.AdmittedReqs++
		}
	}
	arrivalHop := func(arg any) {
		req := arg.(*workload.Request)
		now := engine.Now()
		sub, ok := classifier.Classify(req.Host, req.Path)
		if !ok {
			// Unclassifiable traffic still costs front-end CPU somewhere;
			// charge the lowest live instance, mirroring Run's single front.
			for r := 1; r <= n; r++ {
				if procAlive[r] {
					engine.AtArg(fronts[r].admit(now), enqueueHop, arg)
					return
				}
			}
			return
		}
		own, found := tb.Owner(groupOf[sub])
		if !found {
			return
		}
		if !procAlive[own.RDN] {
			// Connection refused at a crashed front end.
			res.RefusedDeadReqs++
			if inWindow(now) {
				u := units(req.Cost)
				tp.Offered(sub, u)
				counts.offered[sub]++
				tp.Dropped(sub, u)
				counts.dropped[sub]++
			}
			return
		}
		engine.AtArg(fronts[own.RDN].admit(now), enqueueHop, arg)
	}
	for i := range arrivals {
		engine.AtArg(start.Add(arrivals[i].Arrival), arrivalHop, &arrivals[i])
	}

	// rebalance repoints every live scheduler's believed node capacities at
	// its partition's reservation share.
	rebalance := func() {
		if n == 1 {
			return
		}
		for r := 1; r <= n; r++ {
			if !procAlive[r] {
				continue
			}
			share := partShare(r)
			for i, rp := range rpns {
				// Known nodes with positive capacity cannot fail.
				_ = scheds[r].SetNodeCapacity(rp.id, baseCaps[i].Scale(share))
			}
		}
	}

	hasGroup := func(sc *core.Scheduler, g string) bool {
		for _, have := range sc.Groups() {
			if have == g {
				return true
			}
		}
		return false
	}

	// applyChange executes one lease-table ownership change.
	applyChange := func(ch frontier.Change, off time.Duration) {
		var states []core.SubscriberState
		var orphans []core.Request
		switch ch.Kind {
		case frontier.Handback:
			// The old owner is live and cooperating: export fresh state (the
			// beat-trail snapshot is one beat stale) and drain its queues.
			if st, err := scheds[ch.From].ExportGroup(ch.Group); err == nil {
				states = st
			} else {
				states = ch.Snapshot
			}
			if o, err := scheds[ch.From].RemoveGroup(ch.Group); err == nil {
				orphans = o
			}
			delete(grant[ch.From], ch.Group)
		case frontier.Takeover:
			// The old owner is unreachable — crashed, or alive but deposed
			// (delayed heartbeats). Rebuild from its last heartbeat snapshot;
			// never touch its scheduler. A deposed survivor keeps dispatching
			// from stale queues until the delivery fence refuses each one.
			states = ch.Snapshot
			if states == nil {
				for _, sub := range groupSubs[ch.Group] {
					states = append(states, core.SubscriberState{
						ID: sub.ID, Reservation: sub.Reservation,
						QueueLimit: sub.QueueLimit, Group: sub.Group,
					})
				}
			}
		}
		// A deposed instance repossessing its home partition still holds the
		// stale copy: drop it first, keeping its queued requests.
		var stale []core.Request
		if hasGroup(scheds[ch.To], ch.Group) {
			stale, _ = scheds[ch.To].RemoveGroup(ch.Group)
		}
		for _, st := range states {
			// Cannot collide: the group was just removed if present.
			_ = scheds[ch.To].ImportSubscriberState(st)
		}
		grant[ch.To][ch.Group] = ch.Epoch
		for _, rq := range append(orphans, stale...) {
			if err := scheds[ch.To].Enqueue(rq); err != nil {
				res.LostQueuedReqs++
			} else {
				res.HandedOffReqs++
			}
		}
		if rec := recAt(ch.To); rec != nil {
			rec.Annotate(flightrec.TierEvent{
				Kind: ch.Kind.String(), Group: ch.Group,
				From: ch.From, To: ch.To, Epoch: ch.Epoch,
			})
		}
		res.Takeovers = append(res.Takeovers, TierChange{
			At: off, Group: ch.Group, From: ch.From, To: ch.To,
			Epoch: ch.Epoch, Kind: ch.Kind.String(),
		})
	}

	// RDN fault schedule. A crash destroys the instance's queued requests
	// and silences its heartbeats; its in-flight dispatches complete (the
	// RPN already holds the spliced connection). Recovery restarts the
	// instance empty — the lease table hands its home partition back with
	// full state on its next heartbeat.
	if inj != nil {
		for _, ev := range opts.Faults.Events {
			ev := ev
			switch ev.Kind {
			case faults.NodeCrash:
				engine.At(start.Add(ev.At), func() {
					id := ev.Node
					crashedRPN[id] = true
					ids := make([]uint64, 0, len(infl[id]))
					for reqID := range infl[id] {
						ids = append(ids, reqID)
					}
					sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
					for _, reqID := range ids {
						e := infl[id][reqID]
						res.ReclaimedReqs++
						if procAlive[e.rdn] {
							scheds[e.rdn].ReleaseDispatch(e.sub, id, reqID)
						}
					}
					infl[id] = make(map[uint64]inflightOwner)
					byID[id].Crash()
				})
			case faults.NodeRecover:
				engine.At(start.Add(ev.At), func() { crashedRPN[ev.Node] = false })
			case faults.RDNCrash:
				engine.At(start.Add(ev.At), func() {
					r := ev.RDN
					if !procAlive[r] {
						return
					}
					procAlive[r] = false
					gs := make([]string, 0, len(grant[r]))
					for g := range grant[r] {
						gs = append(gs, g)
					}
					sort.Strings(gs)
					for _, g := range gs {
						if orphans, err := scheds[r].RemoveGroup(g); err == nil {
							res.LostQueuedReqs += len(orphans)
						}
					}
					grant[r] = make(map[string]uint64)
					if rec := lowestAliveRec(); rec != nil {
						rec.Annotate(flightrec.TierEvent{Kind: "rdn-crash", From: r})
					}
				})
			case faults.RDNRecover:
				engine.At(start.Add(ev.At), func() {
					r := ev.RDN
					if procAlive[r] {
						return
					}
					emptyDir, err := qos.NewDirectory(nil)
					if err != nil {
						return
					}
					sc, err := core.New(emptyDir, nodeCfgsFor(minCapacityShare), coreCfg)
					if err != nil {
						return
					}
					scheds[r] = sc
					procAlive[r] = true
					if rec := recAt(r); rec != nil {
						sc.SetRecorder(rec)
						rec.Annotate(flightrec.TierEvent{Kind: "rdn-recover", To: r})
					}
				})
			}
		}
		for _, tr := range inj.Transitions() {
			tr := tr
			engine.At(start.Add(tr), func() {
				for _, r := range rpns {
					r.SetSpeedFactor(inj.Speed(r.id, tr))
					r.SetBandwidthFactor(inj.Bandwidth(r.id, tr))
				}
			})
		}
	}

	// Balance clamp floors, audited every tick on every live scheduler.
	floors := make(map[qos.SubscriberID]qos.Vector, dir.Len())
	for _, sub := range opts.Subscribers {
		floors[sub.ID] = sub.Reservation.PerCycle(opts.CreditWindow).Neg()
	}

	// Dispatch chain with pooled carriers, as in Run, plus the epoch fence:
	// a dispatch whose (rdn, grant epoch) stamp is no longer the group's
	// current ownership is refused at delivery and its charge reclaimed.
	var flightFree []*fflight
	getFlight := func() *fflight {
		if k := len(flightFree); k > 0 {
			f := flightFree[k-1]
			flightFree[k-1] = nil
			flightFree = flightFree[:k-1]
			return f
		}
		return &fflight{}
	}
	putFlight := func(f *fflight) {
		f.req, f.node = nil, nil
		flightFree = append(flightFree, f)
	}
	finishHop := func(arg any) {
		f := arg.(*fflight)
		node, req, epoch, effective := f.node, f.req, f.epoch, f.effective
		putFlight(f)
		if node.Epoch() != epoch {
			// RPN crashed mid-service; the crash handler reclaimed this one.
			return
		}
		delete(infl[node.id], req.ID)
		res.DeliveredReqs++
		node.chargeCompletion(*req, effective)
		now := engine.Now()
		if inWindow(now) {
			u := units(req.Cost)
			tp.Served(req.Subscriber, u)
			counts.served[req.Subscriber]++
			series[req.Subscriber].Record(now.Sub(measureFrom), u)
			latency := now.Sub(start.Add(req.Arrival))
			latencies[req.Subscriber] = append(latencies[req.Subscriber], latency.Seconds())
		}
	}
	deliverHop := func(arg any) {
		f := arg.(*fflight)
		if crashedRPN[f.node.id] {
			delete(infl[f.node.id], f.req.ID)
			res.ReclaimedReqs++
			if procAlive[f.rdn] {
				scheds[f.rdn].ReleaseDispatch(f.req.Subscriber, f.node.id, f.req.ID)
			}
			putFlight(f)
			return
		}
		g := groupOf[f.req.Subscriber]
		if !tb.Valid(g, f.rdn, f.grant) {
			delete(infl[f.node.id], f.req.ID)
			res.FencedReqs++
			if procAlive[f.rdn] {
				scheds[f.rdn].ReleaseDispatch(f.req.Subscriber, f.node.id, f.req.ID)
			}
			if rec := recAt(f.rdn); rec != nil {
				rec.Annotate(flightrec.TierEvent{Kind: "fence", Group: g, From: f.rdn, Epoch: f.grant})
			}
			putFlight(f)
			return
		}
		f.epoch = f.node.Epoch()
		var fin time.Time
		fin, f.effective = f.node.process(engine.Now(), *f.req)
		engine.AtArg(fin, finishHop, f)
	}
	stopSched := engine.Every(opts.SchedCycle, func() {
		for r := 1; r <= n; r++ {
			if !procAlive[r] {
				continue
			}
			for _, d := range scheds[r].Tick() {
				req, ok := d.Req.Payload.(*workload.Request)
				if !ok {
					continue
				}
				res.DispatchedReqs++
				infl[d.Node][req.ID] = inflightOwner{sub: d.Req.Subscriber, rdn: r}
				f := getFlight()
				f.req, f.node, f.rdn = req, byID[d.Node], r
				f.grant = grant[r][groupOf[d.Req.Subscriber]]
				engine.AfterArg(opts.DispatchLatency, deliverHop, f)
			}
			for id, floor := range floors {
				b, ok := scheds[r].Balance(id)
				if !ok {
					continue
				}
				slack := b.Sub(floor)
				if slack.CPUTime < -time.Microsecond || slack.DiskTime < -time.Microsecond || slack.NetBytes < -1 {
					res.BalanceViolations++
				}
			}
		}
	})
	defer stopSched()

	// Accounting: one cumulative stream per RPN, diffed at delivery by a
	// single global differ, the delta split by current partition ownership
	// so each subscriber's usage debits exactly one scheduler. Feedback
	// health (breakers, slow-start) is per RPN and applied to every live
	// scheduler's node weight.
	brk := make(map[core.NodeID]*breaker.Breaker, len(rpns))
	sendSeq := make(map[core.NodeID]int, len(rpns))
	lastSeq := make(map[core.NodeID]int, len(rpns))
	lastEp := make(map[core.NodeID]int, len(rpns))
	lastSeen := make(map[core.NodeID]core.UsageReport, len(rpns))
	for _, r := range rpns {
		brk[r.id] = breaker.New(breaker.Config{
			Threshold: unhealthyAfterMissedAcct,
			SlowStart: slowStartAcctCycles,
		})
		lastSeq[r.id] = -1
	}
	applyWeight := func(id core.NodeID) {
		w := brk[id].Weight()
		for r := 1; r <= n; r++ {
			if procAlive[r] {
				// Known nodes cannot fail to update.
				_ = scheds[r].SetNodeWeight(id, w)
			}
		}
	}
	var stops []func()
	var acctFree []*acctFlight
	acctHop := func(arg any) {
		a := arg.(*acctFlight)
		id, msg := a.node, a.msg
		a.msg = acctMsg{}
		acctFree = append(acctFree, a)
		if msg.epoch == lastEp[id] && msg.seq <= lastSeq[id] {
			return // stale: overtaken inside a delay window
		}
		prev := lastSeen[id]
		if msg.epoch != lastEp[id] {
			prev = core.UsageReport{}
		}
		lastSeq[id], lastEp[id], lastSeen[id] = msg.seq, msg.epoch, msg.cum
		delta := diffCumulative(msg.cum, prev)
		if n == 1 {
			if procAlive[1] {
				_ = scheds[1].ReportUsage(delta)
			}
		} else {
			per := make(map[int]*core.UsageReport)
			for sub, u := range delta.BySubscriber {
				own, ok := tb.Owner(groupOf[sub])
				if !ok || !procAlive[own.RDN] {
					continue // ownerless span: usage of a dead partition
				}
				rep := per[own.RDN]
				if rep == nil {
					rep = &core.UsageReport{Node: delta.Node, BySubscriber: make(map[qos.SubscriberID]core.SubscriberUsage)}
					per[own.RDN] = rep
				}
				rep.BySubscriber[sub] = u
				rep.Total = rep.Total.Add(u.Usage)
			}
			owners := make([]int, 0, len(per))
			for r := range per {
				owners = append(owners, r)
			}
			sort.Ints(owners)
			for _, r := range owners {
				_ = scheds[r].ReportUsage(*per[r])
			}
		}
		brk[id].Success(breaker.Poll, engine.Now())
		applyWeight(id)
	}
	for _, r := range rpns {
		r := r
		stops = append(stops, engine.Every(opts.AcctCycle, func() {
			now := engine.Now()
			brk[r.id].Tick(now)
			applyWeight(r.id)
			miss := func() {
				brk[r.id].Failure(breaker.Poll, now)
				applyWeight(r.id)
			}
			if crashedRPN[r.id] {
				miss()
				return
			}
			off := now.Sub(start)
			if inj != nil && (inj.DropAcct(r.id, off) || inj.DropFrame(r.id, off)) {
				miss()
				return
			}
			msg := acctMsg{seq: sendSeq[r.id], epoch: r.Epoch(), cum: r.Accountant().CumulativeReport()}
			sendSeq[r.id]++
			delay := opts.FeedbackLatency
			if inj != nil {
				delay += inj.AcctDelay(r.id, off)
			}
			var a *acctFlight
			if k := len(acctFree); k > 0 {
				a = acctFree[k-1]
				acctFree[k-1] = nil
				acctFree = acctFree[:k-1]
			} else {
				a = &acctFlight{}
			}
			a.node, a.msg = r.id, msg
			engine.AfterArg(delay, acctHop, a)
		}))
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	// Lease heartbeats: each live instance exports accounting snapshots of
	// its partition and beats the table; a LeaseDelay window stretches the
	// wire. Expiry checks run at beat arrival — a survivor's beat is what
	// discovers a dead peer's expired lease and executes the takeover.
	beatArrive := func(r int, snaps map[string][]core.SubscriberState) {
		off := engine.Now().Sub(start)
		// Unknown RDNs cannot occur: beats originate from ids 1..n.
		_ = tb.Beat(r, off, snaps)
		changes := tb.Check(off)
		for _, ch := range changes {
			applyChange(ch, off)
		}
		if len(changes) > 0 {
			rebalance()
		}
	}
	stopBeats := engine.Every(opts.BeatInterval, func() {
		for r := 1; r <= n; r++ {
			if !procAlive[r] {
				continue
			}
			r := r
			gs := make([]string, 0, len(grant[r]))
			for g := range grant[r] {
				gs = append(gs, g)
			}
			sort.Strings(gs)
			snaps := make(map[string][]core.SubscriberState, len(gs))
			for _, g := range gs {
				if st, err := scheds[r].ExportGroup(g); err == nil {
					snaps[g] = st
				}
			}
			var delay time.Duration
			if inj != nil {
				delay = inj.LeaseDelayAt(r, engine.Now().Sub(start))
			}
			engine.After(delay, func() { beatArrive(r, snaps) })
		}
	})
	defer stopBeats()

	busyAtWindowStart := make([]time.Duration, n+1)
	engine.At(measureFrom, func() {
		for r := 1; r <= n; r++ {
			busyAtWindowStart[r] = fronts[r].busy
		}
	})

	if err := engine.RunUntil(start.Add(total)); err != nil {
		return nil, err
	}

	for r := 1; r <= n; r++ {
		for _, id := range dir.IDs() {
			res.QueuedAtEnd += scheds[r].QueueLen(id)
		}
	}
	for _, m := range infl {
		res.InflightAtEnd += len(m)
	}
	sec := opts.Duration.Seconds()
	var servedReqs int
	for _, row := range tp.Rows(opts.Duration) {
		sub, err := dir.Subscriber(row.ID)
		if err != nil {
			continue
		}
		lats := latencies[row.ID]
		res.Rows = append(res.Rows, SubscriberRow{
			ID:          row.ID,
			Reservation: sub.Reservation,
			Offered:     row.OfferedRate,
			Served:      row.ServedRate,
			Dropped:     row.DroppedRate,
			OfferedReqs: counts.offered[row.ID],
			ServedReqs:  counts.served[row.ID],
			DroppedReqs: counts.dropped[row.ID],
			MeanLatency: time.Duration(metrics.Mean(lats) * float64(time.Second)),
			P95Latency:  time.Duration(metrics.Percentile(lats, 95) * float64(time.Second)),
		})
		servedReqs += counts.served[row.ID]
	}
	res.ServedReqPerSec = float64(servedReqs) / sec
	if opts.RDN != nil {
		for r := 1; r <= n; r++ {
			util := (fronts[r].busy - busyAtWindowStart[r]).Seconds() / sec
			if util > 1 {
				util = 1
			}
			res.RDNUtilization[r-1] = util
		}
	}
	return res, nil
}
