package cluster

import (
	"fmt"
	"time"

	"gage/internal/core"
	"gage/internal/qos"
	"gage/internal/workload"
)

// This file holds the preset experiment configurations that regenerate the
// paper's evaluation section (§4). Absolute capacities are configured to the
// paper's testbed scale so the printed rows are directly comparable; the
// claims under test are the shapes — reservations met, spare proportional to
// reservations, deviation growing with the accounting cycle, linear
// scalability, small QoS overhead.

// mustConstSource builds a constant-rate source of fixed-cost requests.
func mustConstSource(sub qos.SubscriberID, host string, rate float64, cost qos.Vector) workload.Source {
	arr, err := workload.NewConstantRate(rate)
	if err != nil {
		panic(fmt.Sprintf("cluster: preset rate %v: %v", rate, err))
	}
	return workload.Source{
		Subscriber: sub,
		Gen:        workload.NewFixed(host, "/index.html", cost),
		Arrivals:   arr,
	}
}

// Table1 reproduces §4.1's performance-isolation experiment: three sites
// with reservations 250/150/50 GRPS and offered loads 259.4/161.1/390.3 on a
// cluster of eight RPNs whose aggregate capacity is ≈786 GRPS. site1 and
// site2 must be served at their full offered load; site3 absorbs all spare
// capacity and drops the rest.
func Table1() (*Result, error) {
	generic := qos.GenericCost()
	return Run(Options{
		Subscribers: []qos.Subscriber{
			{ID: "site1", Hosts: []string{"www.site1.example"}, Reservation: 250, QueueLimit: 128},
			{ID: "site2", Hosts: []string{"www.site2.example"}, Reservation: 150, QueueLimit: 128},
			{ID: "site3", Hosts: []string{"www.site3.example"}, Reservation: 50, QueueLimit: 128},
		},
		Sources: []workload.Source{
			mustConstSource("site1", "www.site1.example", 259.4, generic),
			mustConstSource("site2", "www.site2.example", 161.1, generic),
			mustConstSource("site3", "www.site3.example", 390.3, generic),
		},
		NumRPNs:  8,
		RPNSpeed: 0.9825, // 8 × 98.25 GRPS ≈ 786 GRPS aggregate
		Warmup:   10 * time.Second,
		Duration: 40 * time.Second,
	})
}

// Table2 reproduces §4.1's spare-resource-allocation experiment: two sites,
// both overloaded, reservations 250/200; the spare splits in proportion to
// the reservations, and site1's share is capped by its own demand.
func Table2() (*Result, error) {
	generic := qos.GenericCost()
	return Run(Options{
		Subscribers: []qos.Subscriber{
			{ID: "site1", Hosts: []string{"www.site1.example"}, Reservation: 250, QueueLimit: 128},
			{ID: "site2", Hosts: []string{"www.site2.example"}, Reservation: 200, QueueLimit: 128},
		},
		Sources: []workload.Source{
			mustConstSource("site1", "www.site1.example", 424.6, generic),
			mustConstSource("site2", "www.site2.example", 364.5, generic),
		},
		NumRPNs:  8,
		RPNSpeed: 0.9558, // ≈765 GRPS aggregate, the paper's served total
		Warmup:   10 * time.Second,
		Duration: 40 * time.Second,
	})
}

// Figure3Point is one data point of Figure 3: the mean observed deviation
// from the ideal reservation for an accounting cycle and averaging interval.
type Figure3Point struct {
	AcctCycle time.Duration
	Interval  time.Duration
	// Deviation is a fraction: 0.08 = 8 %.
	Deviation float64
}

// Figure3Cycles are the accounting cycles the paper sweeps.
func Figure3Cycles() []time.Duration {
	return []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		500 * time.Millisecond,
		2 * time.Second,
	}
}

// Figure3Intervals are the averaging intervals on Figure 3's x-axis.
func Figure3Intervals() []time.Duration {
	return []time.Duration{
		1 * time.Second, 2 * time.Second, 4 * time.Second,
		6 * time.Second, 8 * time.Second, 10 * time.Second,
	}
}

// Figure3 reproduces the deviation-from-ideal-reservation study. For each
// accounting cycle it runs three fully subscribed sites at exactly their
// reservations and computes the deviation of the usage the RDN observes
// (through accounting messages) over each averaging interval. When
// realistic is true, the constant synthetic workload is replaced with the
// SPECweb99-like mix, reproducing the paper's trace-driven variant.
func Figure3(cycles, intervals []time.Duration, realistic bool) ([]Figure3Point, error) {
	var points []Figure3Point
	for _, cycle := range cycles {
		res, err := figure3Run(cycle, realistic)
		if err != nil {
			return nil, fmt.Errorf("cluster: figure 3 cycle %v: %w", cycle, err)
		}
		for _, iv := range intervals {
			d, err := res.MeanObservedDeviation(iv)
			if err != nil {
				return nil, fmt.Errorf("cluster: figure 3 cycle %v interval %v: %w", cycle, iv, err)
			}
			points = append(points, Figure3Point{AcctCycle: cycle, Interval: iv, Deviation: d})
		}
	}
	return points, nil
}

func figure3Run(cycle time.Duration, realistic bool) (*Result, error) {
	// Three fully subscribed sites offered slightly more than they reserve:
	// the ideal per-site usage is then exactly the reservation. Arrivals
	// are Poisson (an aggregate of independent clients), and the scheduler
	// runs with the reported-usage gate, so QoS stability genuinely depends
	// on the accounting-cycle length — the effect Figure 3 measures.
	const res = qos.GRPS(100)
	subs := []qos.Subscriber{
		{ID: "site1", Hosts: []string{"www.site1.example"}, Reservation: res, QueueLimit: 256},
		{ID: "site2", Hosts: []string{"www.site2.example"}, Reservation: res, QueueLimit: 256},
		{ID: "site3", Hosts: []string{"www.site3.example"}, Reservation: res, QueueLimit: 256},
	}
	unitRes := qos.Resource(0)
	sources := make([]workload.Source, 0, len(subs))
	for i, s := range subs {
		var gen workload.Generator
		rate := float64(res) * 1.05
		if realistic {
			// The SPECweb99-like mix is CPU-bound on the RPNs, so served
			// GRPS is measured in CPU units — the paper's request-count
			// convention — and the rate is tuned so the mean offered load
			// in those units is 1.05× the reservation.
			unitRes = qos.CPU
			mean := meanCPUUnits(workload.NewSPECWeb99(s.Hosts[0], int64(100+i)), 4096)
			rate /= mean
			gen = workload.NewSPECWeb99(s.Hosts[0], int64(100+i))
		} else {
			// The paper's constant synthetic workload: every request costs
			// one generic request (its "6 KB file" fixed workload).
			gen = workload.NewFixed(s.Hosts[0], "/fixed.html", qos.GenericCost())
		}
		arr, err := workload.NewPoisson(rate, int64(7+i))
		if err != nil {
			return nil, err
		}
		sources = append(sources, workload.Source{Subscriber: s.ID, Gen: gen, Arrivals: arr})
	}
	return Run(Options{
		Subscribers: subs,
		Sources:     sources,
		NumRPNs:     3,
		// Paper-faithful staleness: the gate and the node-capacity
		// bookkeeping both learn only from accounting messages.
		Gate:                 core.GateReported,
		DisableCapacityDrain: true,
		AcctCycle:            cycle,
		UnitResource:         unitRes,
		// A deep credit floor so a burst's debt is never forgiven by the
		// balance clamp. The outstanding window tracks the feedback period
		// (the RDN cannot manage node load tighter than it hears back) with
		// a floor that lets heavy-tailed requests pipeline.
		CreditWindow:      8 * time.Second,
		OutstandingWindow: maxDur(2*cycle, 400*time.Millisecond),
		Warmup:            5 * time.Second,
		Duration:          60 * time.Second,
	})
}

// meanCPUUnits estimates a generator's mean request cost in CPU-denominated
// generic units.
func meanCPUUnits(gen workload.Generator, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += gen.Next().Cost.UnitsOf(qos.CPU)
	}
	return sum / float64(n)
}

// ScalabilityPoint is one cluster size of the §4.3 throughput study.
type ScalabilityPoint struct {
	NumRPNs int
	// WithGage and WithoutGage are served requests/sec with the QoS layer's
	// per-request overhead enabled and disabled.
	WithGage    float64
	WithoutGage float64
}

// GagePerRequestOverhead is the QoS layer's per-request RPN cost measured in
// §4.2: second-leg connection setup (27.2 µs) plus five data-ACK packet
// pairs through the remapper (5 × (1.3+4.6) µs) = 56.7 µs.
const GagePerRequestOverhead = 56700 * time.Nanosecond

// Scalability reproduces §4.3: total throughput as the cluster grows from 1
// to maxRPNs nodes, with and without Gage's per-request overhead. The
// workload is the paper's 6 KB static page, making one nominal RPN sustain
// ≈540 requests/sec.
func Scalability(maxRPNs int) ([]ScalabilityPoint, error) {
	points := make([]ScalabilityPoint, 0, maxRPNs)
	for n := 1; n <= maxRPNs; n++ {
		with, err := scalabilityRun(n, GagePerRequestOverhead)
		if err != nil {
			return nil, fmt.Errorf("cluster: scalability n=%d with gage: %w", n, err)
		}
		without, err := scalabilityRun(n, 0)
		if err != nil {
			return nil, fmt.Errorf("cluster: scalability n=%d without gage: %w", n, err)
		}
		points = append(points, ScalabilityPoint{
			NumRPNs:     n,
			WithGage:    with.ServedReqPerSec,
			WithoutGage: without.ServedReqPerSec,
		})
	}
	return points, nil
}

func scalabilityRun(numRPNs int, overhead time.Duration) (*Result, error) {
	cost := workload.DefaultCostModel().Cost(workload.SixKBPage)
	perRPN := 1 / cost.CPUTime.Seconds() // CPU-bound capacity, ≈540/s
	offered := perRPN * float64(numRPNs) * 1.15
	return Run(Options{
		Subscribers: []qos.Subscriber{{
			ID:    "site1",
			Hosts: []string{"www.site1.example"},
			// Entitled to the whole cluster, in the workload's own units.
			Reservation: qos.GRPS(offered * cost.GenericUnits()),
			QueueLimit:  2048,
		}},
		Sources: []workload.Source{
			mustConstSource("site1", "www.site1.example", offered, cost),
		},
		NumRPNs:     numRPNs,
		RPNOverhead: overhead,
		Warmup:      5 * time.Second,
		Duration:    20 * time.Second,
	})
}

// LocalityResult contrasts content-aware dispatching with pure least-loaded
// dispatch on a disk-bound workload (§3.6's effective-capacity claim).
type LocalityResult struct {
	// ServedWith and ServedWithout are requests/sec with and without
	// content-aware (affinity) dispatch.
	ServedWith, ServedWithout float64
	// HitRateWith and HitRateWithout are the page-cache hit fractions.
	HitRateWith, HitRateWithout float64
}

// LocalityStudy quantifies §3.6's design note: dispatching URL pages in the
// same proximity to the same RPN raises the page-cache hit rate, avoiding
// disk I/O and increasing the cluster's effective processing capacity. Four
// RPNs with small caches serve a disk-bound static mix spread over many
// directories; the study runs with and without affinity dispatch.
func LocalityStudy() (*LocalityResult, error) {
	run := func(affinity bool) (*Result, error) {
		const sites = 3
		subs := make([]qos.Subscriber, 0, sites)
		sources := make([]workload.Source, 0, sites)
		// Disk-heavy pages: a miss costs 9 ms of disk channel, so one RPN
		// sustains ≈110 misses/sec but ≈950 cached requests/sec.
		cost := qos.Vector{CPUTime: time.Millisecond, DiskTime: 9 * time.Millisecond, NetBytes: 6544}
		for i := 0; i < sites; i++ {
			id := qos.SubscriberID(fmt.Sprintf("site%d", i+1))
			host := fmt.Sprintf("www.site%d.example", i+1)
			subs = append(subs, qos.Subscriber{
				ID: id, Hosts: []string{host}, Reservation: 200, QueueLimit: 256,
			})
			arr, err := workload.NewPoisson(330, int64(40+i))
			if err != nil {
				return nil, err
			}
			sources = append(sources, workload.Source{
				Subscriber: id,
				Gen:        workload.NewSPECWeb99(host, int64(50+i)),
				Arrivals:   arr,
			})
		}
		// SPECweb99 page sizes vary; pin the disk-bound cost by overriding
		// per-request costs through a fixed-cost wrapper.
		for i := range sources {
			sources[i].Gen = fixedCost{inner: sources[i].Gen, cost: cost}
		}
		return Run(Options{
			Subscribers:      subs,
			Sources:          sources,
			NumRPNs:          4,
			UnitResource:     qos.Disk,
			LocalityDispatch: affinity,
			CacheEntries:     12, // per node: far below the 108 distinct pages
			Warmup:           5 * time.Second,
			Duration:         30 * time.Second,
		})
	}
	with, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("cluster: locality with affinity: %w", err)
	}
	without, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("cluster: locality without affinity: %w", err)
	}
	return &LocalityResult{
		ServedWith:     with.ServedReqPerSec,
		ServedWithout:  without.ServedReqPerSec,
		HitRateWith:    with.CacheHitRate,
		HitRateWithout: without.CacheHitRate,
	}, nil
}

// fixedCost overrides a generator's per-request cost while keeping its
// host/path structure (the cache key space).
type fixedCost struct {
	inner workload.Generator
	cost  qos.Vector
}

func (f fixedCost) Next() workload.Request {
	r := f.inner.Next()
	r.Cost = f.cost
	return r
}

// ProjectionRow is one configuration of the §4.3 front-end capacity
// projection.
type ProjectionRow struct {
	// Config names the front-end configuration.
	Config string
	// MaxReqPerSec is the projected request rate at 100 % RDN CPU.
	MaxReqPerSec float64
	// MaxRPNs is how many ≈540-req/s back ends that rate keeps busy.
	MaxRPNs int
}

// RDNProjection reproduces the closing §4.3 estimate: what one front end
// could sustain (paper: "conservatively ... around 14,000 to 15,000
// requests/sec; alternatively up to 24 RPNs") once the interrupt overload
// is removed by an intelligent NIC, and additionally once the secondary-RDN
// tier (§3.2) takes over first-leg setup and classification.
func RDNProjection() []ProjectionRow {
	m := DefaultRDNModel()
	perRPN := 540.0
	base := m.RequestCost(0) // no interrupt overload
	rows := []ProjectionRow{
		{
			Config:       "prototype (interrupt-limited)",
			MaxReqPerSec: saturationRate(m),
		},
		{
			Config:       "intelligent NIC (no interrupt overload)",
			MaxReqPerSec: 1 / base.Seconds(),
		},
		{
			Config: "intelligent NIC + secondary RDN tier",
			// Setup and classification offloaded; the primary only bridges.
			MaxReqPerSec: 1 / (time.Duration(m.PacketsPerRequest) * m.PerPacketForward).Seconds(),
		},
	}
	for i := range rows {
		rows[i].MaxRPNs = int(rows[i].MaxReqPerSec / perRPN)
	}
	return rows
}

// saturationRate finds the request rate where the interrupt-inflated
// per-request cost saturates the front-end CPU.
func saturationRate(m RDNModel) float64 {
	lo, hi := 100.0, 1e6
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		util := mid * m.RequestCost(mid*float64(m.PacketsPerRequest)).Seconds()
		if util < 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// UtilizationPoint is one point of the §4.3 RDN CPU-utilization curve.
type UtilizationPoint struct {
	OfferedReqPerSec float64
	ServedReqPerSec  float64
	RDNUtilization   float64
}

// RDNUtilizationCurve reproduces the §4.3 front-end saturation study: RDN
// CPU utilization versus request throughput, growing close to linearly up
// to ≈4400 requests/sec and then sharply as the overloaded network
// subsystem inflates interrupt-handling time.
func RDNUtilizationCurve(rates []float64) ([]UtilizationPoint, error) {
	model := DefaultRDNModel()
	cost := workload.DefaultCostModel().Cost(workload.SixKBPage)
	var points []UtilizationPoint
	for _, rate := range rates {
		numRPNs := int(rate/500) + 2 // back-ends never the bottleneck
		res, err := Run(Options{
			Subscribers: []qos.Subscriber{{
				ID:          "site1",
				Hosts:       []string{"www.site1.example"},
				Reservation: qos.GRPS(rate * cost.GenericUnits()),
				QueueLimit:  4096,
			}},
			Sources: []workload.Source{
				mustConstSource("site1", "www.site1.example", rate, cost),
			},
			NumRPNs:  numRPNs,
			RDN:      &model,
			Warmup:   2 * time.Second,
			Duration: 10 * time.Second,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: utilization at %v req/s: %w", rate, err)
		}
		points = append(points, UtilizationPoint{
			OfferedReqPerSec: rate,
			ServedReqPerSec:  res.ServedReqPerSec,
			RDNUtilization:   res.RDNUtilization,
		})
	}
	return points, nil
}
