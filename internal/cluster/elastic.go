package cluster

import (
	"fmt"
	"time"

	"gage/internal/admitctl"
	"gage/internal/classify"
	"gage/internal/core"
	"gage/internal/flightrec"
	"gage/internal/obs"
	"gage/internal/qos"
	"gage/internal/workload"
)

// This file is the simulator's admission control plane: scripted elasticity
// events — subscriber admissions, resizes, removals and node add/drain —
// applied at exact virtual times through the same admitctl policy the live
// dispatcher's admin API uses. Same (workload, schedule) ⇒ identical
// outcome log, so elasticity drills are as replayable as fault drills.

// AdmissionKind selects the elastic operation of one scripted event.
type AdmissionKind int

const (
	// AdmitSubscriber registers Event.Subscriber if the pool has capacity.
	AdmitSubscriber AdmissionKind = iota + 1
	// ResizeSubscriber changes SubscriberID's reservation to Reservation.
	ResizeSubscriber
	// RemoveSubscriber unregisters SubscriberID; its queued requests are
	// orphaned and counted in Result.OrphanedReqs.
	RemoveSubscriber
	// AddNode grows the pool with a fresh RPN entering at the bottom of the
	// slow-start ramp, exactly like a node recovering from a breaker trip.
	AddNode
	// DrainNode stops dispatching to Node (graceful scale-in); refused when
	// the shrunk pool could no longer back the committed reservations,
	// unless Force is set.
	DrainNode
)

// String names the kind for logs and test failures.
func (k AdmissionKind) String() string {
	switch k {
	case AdmitSubscriber:
		return "admit-subscriber"
	case ResizeSubscriber:
		return "resize-subscriber"
	case RemoveSubscriber:
		return "remove-subscriber"
	case AddNode:
		return "add-node"
	case DrainNode:
		return "drain-node"
	}
	return fmt.Sprintf("admission-kind(%d)", int(k))
}

// AdmissionEvent is one scripted control-plane operation. At counts from the
// start of the run (warmup included), like request arrivals and fault events.
type AdmissionEvent struct {
	At   time.Duration
	Kind AdmissionKind

	// Subscriber is the full definition for AdmitSubscriber.
	Subscriber qos.Subscriber
	// SubscriberID targets ResizeSubscriber and RemoveSubscriber.
	SubscriberID qos.SubscriberID
	// Reservation is ResizeSubscriber's new reservation.
	Reservation qos.GRPS

	// Node targets AddNode and DrainNode.
	Node core.NodeID
	// NodeSpeed scales the added RPN's CPU/disk rate (0 → Options.RPNSpeed).
	NodeSpeed float64
	// Force applies a DrainNode even when the policy finds it infeasible.
	Force bool
}

// AdmissionOutcome records how one scripted event fared: the policy's full
// decision, whether the operation was applied, and the committed reservation
// total after the event — a rejected event must leave it unchanged.
type AdmissionOutcome struct {
	At         time.Duration
	Kind       AdmissionKind
	Subscriber qos.SubscriberID
	Node       core.NodeID

	Decision admitctl.Decision
	// Applied is true when the operation changed scheduler state (a forced
	// drain is applied even though its decision says infeasible).
	Applied bool
	// Err holds a mechanical failure (unknown subscriber, duplicate node)
	// distinct from a policy refusal, which lives in Decision.
	Err string
	// CommittedAfter is the cluster's committed reservation total after the
	// event settled.
	CommittedAfter qos.GRPS
}

// Elasticity drill geometry: two 100-GRPS RPNs (200-GRPS pool), two
// standing sites committed to 100 GRPS, and a scripted mid-run sequence —
// admit site3, resize it up, add a third node, drain node 2, refuse an
// infeasible admission, remove site3 — all on the virtual clock.
const (
	ElasticityDrillWarmup   = 2 * time.Second
	ElasticityDrillDuration = 16 * time.Second
)

// ElasticityDrillOptions is the deterministic acceptance drill for the
// scripted admission plane (`make chaos-elastic`, `gagebench elastic`).
// rec may be nil; with a recorder the cycle log audits offline via
// `gagetrace audit -warmup 2s`.
func ElasticityDrillOptions(rec *flightrec.Recorder) Options {
	generic := qos.GenericCost()
	return Options{
		Subscribers: []qos.Subscriber{
			{ID: "site1", Hosts: []string{"site1.example"}, Reservation: 60},
			{ID: "site2", Hosts: []string{"site2.example"}, Reservation: 40},
		},
		Sources: []workload.Source{
			mustConstSource("site1", "site1.example", 70, generic),
			mustConstSource("site2", "site2.example", 48, generic),
			// site3's clients are knocking before it is signed: until the
			// admit event lands its requests are unclassifiable and vanish
			// at the RDN's edge.
			mustConstSource("site3", "site3.example", 50, generic),
		},
		NumRPNs:  2,
		Recorder: rec,
		Admissions: []AdmissionEvent{
			{At: 4 * time.Second, Kind: AdmitSubscriber,
				Subscriber: qos.Subscriber{ID: "site3", Hosts: []string{"site3.example"}, Reservation: 30}},
			{At: 7 * time.Second, Kind: ResizeSubscriber, SubscriberID: "site3", Reservation: 60},
			{At: 9 * time.Second, Kind: AddNode, Node: 3},
			{At: 11 * time.Second, Kind: DrainNode, Node: 2},
			// 160 GRPS committed against a 200-GRPS enabled pool (nodes 1
			// and 3): a 500-GRPS newcomer must be refused.
			{At: 13 * time.Second, Kind: AdmitSubscriber,
				Subscriber: qos.Subscriber{ID: "site4", Hosts: []string{"site4.example"}, Reservation: 500}},
			{At: 15 * time.Second, Kind: RemoveSubscriber, SubscriberID: "site3"},
		},
		Warmup:   ElasticityDrillWarmup,
		Duration: ElasticityDrillDuration,
	}
}

// elasticState is the harness-side control plane: the shared run state each
// scripted admission event mutates. The node-add wiring and per-subscriber
// series creation stay in Run as closures — they touch the engine loops —
// and everything else is applied here.
type elasticState struct {
	cfg          admitctl.Config
	sched        *core.Scheduler
	cs           *chaosRun
	dyn          *classify.DynamicClassifier
	rec          *flightrec.Recorder
	bus          *obs.Bus
	defsNow      map[qos.SubscriberID]qos.Subscriber
	floors       map[qos.SubscriberID]qos.Vector
	creditWindow time.Duration

	ensureSub func(id qos.SubscriberID)
	addRPN    func(ev AdmissionEvent) error
	nodeByID  func(id core.NodeID) *RPN

	orphaned           int
	accepted, rejected int
	log                []AdmissionOutcome
}

func (es *elasticState) annotate(ev flightrec.TierEvent) {
	if es.rec != nil {
		es.rec.Annotate(ev)
	}
}

// apply executes one scripted event against the live run. Refusals — policy
// or mechanical — change nothing; every outcome lands in the log.
func (es *elasticState) apply(ev AdmissionEvent) {
	out := AdmissionOutcome{At: ev.At, Kind: ev.Kind, Node: ev.Node}
	switch ev.Kind {
	case AdmitSubscriber:
		sub := ev.Subscriber
		out.Subscriber = sub.ID
		d := admitctl.Evaluate(es.cfg, es.sched.TotalReservation(), sub.Reservation, es.sched.EnabledCapacity())
		out.Decision = d
		if !d.Accepted {
			break
		}
		if err := es.sched.AddSubscriber(sub); err != nil {
			out.Err = err.Error()
			break
		}
		es.dyn.Add(sub.ID, sub.Hosts...)
		es.defsNow[sub.ID] = sub
		es.floors[sub.ID] = sub.Reservation.PerCycle(es.creditWindow).Neg()
		es.ensureSub(sub.ID)
		es.annotate(flightrec.TierEvent{Kind: "sub-admit", Group: string(sub.ID), To: int(sub.Reservation)})
		out.Applied = true

	case ResizeSubscriber:
		out.Subscriber = ev.SubscriberID
		old, ok := es.sched.Reservation(ev.SubscriberID)
		if !ok {
			out.Err = fmt.Sprintf("unknown subscriber %q", ev.SubscriberID)
			break
		}
		d := admitctl.Evaluate(es.cfg, es.sched.TotalReservation(), ev.Reservation-old, es.sched.EnabledCapacity())
		out.Decision = d
		if !d.Accepted {
			break
		}
		if err := es.sched.ResizeReservation(ev.SubscriberID, ev.Reservation); err != nil {
			out.Err = err.Error()
			break
		}
		def := es.defsNow[ev.SubscriberID]
		def.Reservation = ev.Reservation
		es.defsNow[ev.SubscriberID] = def
		es.floors[ev.SubscriberID] = ev.Reservation.PerCycle(es.creditWindow).Neg()
		es.annotate(flightrec.TierEvent{Kind: "sub-resize", Group: string(ev.SubscriberID), From: int(old), To: int(ev.Reservation)})
		out.Applied = true

	case RemoveSubscriber:
		out.Subscriber = ev.SubscriberID
		old, ok := es.sched.Reservation(ev.SubscriberID)
		if !ok {
			out.Err = fmt.Sprintf("unknown subscriber %q", ev.SubscriberID)
			break
		}
		out.Decision = admitctl.Evaluate(es.cfg, es.sched.TotalReservation(), -old, es.sched.EnabledCapacity())
		orphans, err := es.sched.RemoveSubscriber(ev.SubscriberID)
		if err != nil {
			out.Err = err.Error()
			break
		}
		es.dyn.Remove(ev.SubscriberID)
		es.orphaned += len(orphans)
		delete(es.floors, ev.SubscriberID)
		// defsNow keeps the final definition so the removed subscriber's
		// result row still assembles, frozen at its last reservation.
		es.annotate(flightrec.TierEvent{Kind: "sub-remove", Group: string(ev.SubscriberID), From: int(old)})
		out.Applied = true

	case AddNode:
		if err := es.addRPN(ev); err != nil {
			out.Err = err.Error()
			break
		}
		// Growing the pool cannot break a guarantee; the zero-delta
		// evaluation records the post-add committed/capacity state.
		out.Decision = admitctl.Evaluate(es.cfg, es.sched.TotalReservation(), 0, es.sched.EnabledCapacity())
		es.annotate(flightrec.TierEvent{Kind: "node-add", To: int(ev.Node)})
		out.Applied = true

	case DrainNode:
		r := es.nodeByID(ev.Node)
		if r == nil {
			out.Err = fmt.Sprintf("unknown node %d", ev.Node)
			break
		}
		// A breaker-disabled node backs no guarantees, so draining it
		// removes nothing from the feasibility inequality.
		leaving := r.Capacity()
		if !es.sched.NodeEnabled(ev.Node) {
			leaving = qos.Vector{}
		}
		d := admitctl.NodeRemovalFeasible(es.cfg, es.sched.TotalReservation(), es.sched.EnabledCapacity(), leaving)
		out.Decision = d
		if !d.Accepted && !ev.Force {
			break
		}
		es.cs.drain(es.sched, ev.Node)
		es.annotate(flightrec.TierEvent{Kind: "node-drain", To: int(ev.Node)})
		out.Applied = true

	default:
		out.Err = fmt.Sprintf("unknown admission kind %d", int(ev.Kind))
	}
	out.CommittedAfter = es.sched.TotalReservation()
	if out.Applied {
		es.accepted++
	} else {
		es.rejected++
	}
	es.log = append(es.log, out)
	// Every scripted outcome — applied, policy-refused, or mechanically
	// failed — lands on the event bus, so a violation investigation sees the
	// control-plane decision that did (or pointedly did not) change capacity.
	code := "accepted"
	switch {
	case out.Err != "":
		code = "error"
	case !out.Applied:
		code = out.Decision.Code
	}
	es.bus.Publish(obs.Event{Kind: obs.KindAdmin, Sub: string(out.Subscriber),
		Node: int(out.Node), Detail: ev.Kind.String() + ":" + code})
}
