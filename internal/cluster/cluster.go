// Package cluster is the discrete-event simulator of a Gage web-server
// cluster: back-end RPNs with CPU / disk-channel / network-link resource
// stations and per-process accounting, a front-end RDN running the core
// scheduler with a configurable processing-cost model, and open-loop client
// load sources. It substitutes for the paper's physical testbed (8 Celeron
// RPNs, one PIII RDN, Fast Ethernet) and regenerates every table and figure
// of the evaluation section.
package cluster

import (
	"container/list"
	"time"

	"gage/internal/accounting"
	"gage/internal/core"
	"gage/internal/qos"
	"gage/internal/workload"
)

// station is a single-server FIFO resource: work admitted at time t with
// service s starts at max(t, busyUntil) and occupies the station until
// start+s. Because every request visits the stations in the same order,
// computing the whole pipeline at admission time is exact.
type station struct {
	busyUntil time.Time
}

// admit reserves the station for `service` starting no earlier than `at` and
// returns the finish time.
func (st *station) admit(at time.Time, service time.Duration) time.Time {
	start := at
	if st.busyUntil.After(start) {
		start = st.busyUntil
	}
	fin := start.Add(service)
	st.busyUntil = fin
	return fin
}

// RPN simulates one back-end request processing node: a CPU, a disk channel
// and an outbound network link in series, plus the local accountant.
type RPN struct {
	id       core.NodeID
	speed    float64       // CPU/disk speed factor relative to nominal
	bwBps    float64       // link bandwidth, bytes/sec
	overhead time.Duration // per-request CPU cost of Gage's local service manager

	// speedFactor and bwFactor are the fault injector's transient
	// multipliers (SlowNode, LinkDegrade); 1 when healthy.
	speedFactor float64
	bwFactor    float64
	// epoch counts crashes: a completion event whose node has since
	// crashed belongs to a previous incarnation and must not charge.
	epoch int
	// cacheEntries remembers the configured cache size across crashes
	// (the machine reboots with a cold cache of the same capacity).
	cacheEntries int

	cpu  station
	disk station
	link station

	acct  *accounting.Accountant
	procs map[qos.SubscriberID]accounting.ProcessID

	// cache is the node's page cache (nil = disabled): requests hitting it
	// skip their disk-channel time, the effective-capacity gain that
	// content-aware dispatching exploits (§3.6).
	cache  *pageCache
	hits   uint64
	misses uint64
}

// pageCache is a fixed-capacity LRU of page keys.
type pageCache struct {
	cap   int
	order *list.List
	byKey map[string]*list.Element
}

func newPageCache(capacity int) *pageCache {
	return &pageCache{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element, capacity)}
}

// touch reports whether key was cached, inserting it (and evicting the
// least-recently-used entry if needed) when it was not.
func (c *pageCache) touch(key string) bool {
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		return true
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(string))
	}
	c.byKey[key] = c.order.PushFront(key)
	return false
}

// NewRPN builds an RPN. speed scales CPU and disk service rates (1.0 =
// nominal: one second of resource time per wall second); bwBps is the
// outbound link bandwidth in bytes per second.
func NewRPN(id core.NodeID, speed float64, bwBps float64) *RPN {
	return &RPN{
		id:          id,
		speed:       speed,
		bwBps:       bwBps,
		speedFactor: 1,
		bwFactor:    1,
		acct:        accounting.NewAccountant(id),
		procs:       make(map[qos.SubscriberID]accounting.ProcessID),
	}
}

// Capacity returns the node's nominal per-second resource capacity as
// declared to the RDN's node scheduler.
func (r *RPN) Capacity() qos.Vector {
	return qos.Vector{
		CPUTime:  time.Duration(float64(time.Second) * r.speed),
		DiskTime: time.Duration(float64(time.Second) * r.speed),
		NetBytes: int64(r.bwBps),
	}
}

// SetOverhead configures the per-request CPU time the node spends in Gage's
// local service manager (second-leg setup + packet remapping, §4.2). It is
// system overhead: it occupies the CPU but is not charged to any subscriber.
func (r *RPN) SetOverhead(d time.Duration) { r.overhead = d }

// SetCache enables an LRU page cache of the given entry count (0 disables).
func (r *RPN) SetCache(entries int) {
	r.cacheEntries = entries
	if entries > 0 {
		r.cache = newPageCache(entries)
	} else {
		r.cache = nil
	}
}

// SetSpeedFactor applies a transient CPU/disk speed multiplier (SlowNode
// fault windows); 1 restores nominal speed. It affects only newly admitted
// work — requests already in the pipeline keep their computed finish times.
func (r *RPN) SetSpeedFactor(f float64) {
	if f <= 0 {
		f = 1
	}
	r.speedFactor = f
}

// SetBandwidthFactor applies a transient outbound-bandwidth multiplier
// (LinkDegrade fault windows); 1 restores nominal bandwidth.
func (r *RPN) SetBandwidthFactor(f float64) {
	if f <= 0 {
		f = 1
	}
	r.bwFactor = f
}

// Epoch returns the node's incarnation number (crash count).
func (r *RPN) Epoch() int { return r.epoch }

// Crash fail-stops the node: every station empties (the queued work is
// lost, not finished), the page cache goes cold, and the accountant
// restarts with zeroed counters — exactly what a reboot does to a real RPN,
// including the counter reset the dispatcher's report differ must survive.
// The epoch bump invalidates completion events already scheduled for the
// dead incarnation.
func (r *RPN) Crash() {
	r.epoch++
	r.cpu = station{}
	r.disk = station{}
	r.link = station{}
	r.acct = accounting.NewAccountant(r.id)
	r.procs = make(map[qos.SubscriberID]accounting.ProcessID)
	if r.cacheEntries > 0 {
		r.cache = newPageCache(r.cacheEntries)
	}
}

// CacheStats returns the node's cache hit and miss counts.
func (r *RPN) CacheStats() (hits, misses uint64) { return r.hits, r.misses }

// process runs one request through the node's resource pipeline starting at
// `now` and returns its completion time plus the effective resource usage
// (a page-cache hit skips the disk channel). Usage is charged in nominal
// units, so GRPS bookkeeping is speed-independent.
func (r *RPN) process(now time.Time, req workload.Request) (time.Time, qos.Vector) {
	effective := req.Cost
	if r.cache != nil {
		if r.cache.touch(req.Host + req.Path) {
			r.hits++
			effective.DiskTime = 0
		} else {
			r.misses++
		}
	}
	speed := r.speed * r.speedFactor
	cpuFin := r.cpu.admit(now, scaleDur(effective.CPUTime+r.overhead, 1/speed))
	diskFin := r.disk.admit(cpuFin, scaleDur(effective.DiskTime, 1/speed))
	xmit := time.Duration(float64(effective.NetBytes) / (r.bwBps * r.bwFactor) * float64(time.Second))
	return r.link.admit(diskFin, xmit), effective
}

// chargeCompletion attributes the finished request's effective usage to its
// subscriber's process tree.
func (r *RPN) chargeCompletion(req workload.Request, effective qos.Vector) {
	pid, ok := r.procs[req.Subscriber]
	if !ok {
		pid = r.acct.Launch(req.Subscriber)
		r.procs[req.Subscriber] = pid
	}
	// Charging cannot fail for a live, tracked process.
	_ = r.acct.Charge(pid, effective)
	_ = r.acct.CompleteRequest(pid)
}

// Accountant exposes the node's accountant (for accounting-cycle events).
func (r *RPN) Accountant() *accounting.Accountant { return r.acct }

func scaleDur(d time.Duration, k float64) time.Duration {
	return time.Duration(float64(d) * k)
}

// RDNModel is the front-end processing-cost model used for the scalability
// study (§4.3): per-connection and per-packet CPU costs, and an interrupt-
// overload term that makes per-packet cost climb once the packet rate
// exceeds the network subsystem's knee — the cause of the measured
// "exponential" utilization growth near saturation.
type RDNModel struct {
	// PerConnection is the first-leg TCP setup cost (Table 3: 29.3 µs).
	PerConnection time.Duration
	// PerClassify is the request classification cost (Table 3: 3.0 µs).
	PerClassify time.Duration
	// PerPacketForward is the bridge forwarding cost (Table 3: 7.0 µs).
	PerPacketForward time.Duration
	// PacketsPerRequest is how many client packets the RDN forwards per
	// request; the paper assumes 5 data-ACK pairs.
	PacketsPerRequest int
	// InterruptKneePPS is the packet rate (packets/sec) beyond which
	// interrupt handling time starts to climb.
	InterruptKneePPS float64
	// InterruptSlope scales the overload penalty: extra cost per packet is
	// PerPacketForward × InterruptSlope × (pps/knee − 1)² above the knee.
	InterruptSlope float64
}

// DefaultRDNModel mirrors the paper's Table 3 measurements on the PIII-450
// RDN, with the interrupt knee placed so utilization turns sharply upward
// approaching ≈4800 requests/sec as measured in §4.3.
func DefaultRDNModel() RDNModel {
	return RDNModel{
		PerConnection:     29300 * time.Nanosecond,
		PerClassify:       3000 * time.Nanosecond,
		PerPacketForward:  7000 * time.Nanosecond,
		PacketsPerRequest: 10,
		InterruptKneePPS:  42000, // ≈4200 req/s × 10 packets
		InterruptSlope:    80,
	}
}

// RequestCost returns the RDN CPU time consumed by one request at the given
// current packet rate.
func (m RDNModel) RequestCost(pps float64) time.Duration {
	if m.PacketsPerRequest <= 0 {
		m.PacketsPerRequest = 1
	}
	perPacket := m.PerPacketForward
	if m.InterruptKneePPS > 0 && pps > m.InterruptKneePPS {
		over := pps/m.InterruptKneePPS - 1
		perPacket += scaleDur(m.PerPacketForward, m.InterruptSlope*over*over)
	}
	return m.PerConnection + m.PerClassify + time.Duration(m.PacketsPerRequest)*perPacket
}

// rdn simulates the front-end: a CPU station charged per request by the
// cost model, plus a packet-rate estimator for the interrupt term.
type rdn struct {
	model   *RDNModel
	cpu     station
	lastArr time.Time
	gapEWMA float64 // seconds between requests, exponentially averaged
	busy    time.Duration
}

// admit charges the RDN for one incoming request at time `now` and returns
// when the request has been classified and enqueued.
func (f *rdn) admit(now time.Time) time.Time {
	if f.model == nil {
		return now
	}
	// Packet-rate estimate from request inter-arrival gaps. The first gap
	// initializes the average directly: decaying up from zero would fake an
	// enormous packet rate and trip the interrupt penalty spuriously.
	if !f.lastArr.IsZero() {
		gap := now.Sub(f.lastArr).Seconds()
		const alpha = 0.05
		if f.gapEWMA == 0 {
			f.gapEWMA = gap
		} else {
			f.gapEWMA = alpha*gap + (1-alpha)*f.gapEWMA
		}
	}
	f.lastArr = now
	pps := 0.0
	if f.gapEWMA > 0 {
		pps = float64(f.model.PacketsPerRequest) / f.gapEWMA
	}
	cost := f.model.RequestCost(pps)
	f.busy += cost
	return f.cpu.admit(now, cost)
}
