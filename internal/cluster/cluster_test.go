package cluster

import (
	"testing"
	"time"

	"gage/internal/qos"
	"gage/internal/workload"
)

func TestStationFIFO(t *testing.T) {
	var st station
	t0 := time.Time{}
	f1 := st.admit(t0, 10*time.Millisecond)
	if !f1.Equal(t0.Add(10 * time.Millisecond)) {
		t.Errorf("first finish = %v, want +10ms", f1)
	}
	// Admitted while busy: queues behind.
	f2 := st.admit(t0.Add(2*time.Millisecond), 5*time.Millisecond)
	if !f2.Equal(t0.Add(15 * time.Millisecond)) {
		t.Errorf("second finish = %v, want +15ms", f2)
	}
	// Admitted after idle gap: starts at its arrival.
	f3 := st.admit(t0.Add(30*time.Millisecond), 5*time.Millisecond)
	if !f3.Equal(t0.Add(35 * time.Millisecond)) {
		t.Errorf("third finish = %v, want +35ms", f3)
	}
}

func TestRPNPipelineTiming(t *testing.T) {
	r := NewRPN(1, 1.0, 1e6) // 1 MB/s link for visible transmit times
	req := workload.Request{
		Subscriber: "s",
		Cost: qos.Vector{
			CPUTime:  10 * time.Millisecond,
			DiskTime: 20 * time.Millisecond,
			NetBytes: 10_000, // 10ms at 1 MB/s
		},
	}
	fin, _ := r.process(time.Time{}, req)
	if want := (time.Time{}).Add(40 * time.Millisecond); !fin.Equal(want) {
		t.Errorf("completion = %v, want %v (cpu+disk+net in series)", fin, want)
	}
}

func TestRPNSpeedScalesServiceNotCharges(t *testing.T) {
	fast := NewRPN(1, 2.0, 12.5e6)
	req := workload.Request{Subscriber: "s", Cost: qos.GenericCost()}
	fin, _ := fast.process(time.Time{}, req)
	// CPU 10ms/2 + disk 10ms/2 + 2000B at 12.5MB/s (0.16ms).
	want := (time.Time{}).Add(10*time.Millisecond + 160*time.Microsecond)
	if !fin.Equal(want) {
		t.Errorf("completion = %v, want %v", fin, want)
	}
	fast.chargeCompletion(req, req.Cost)
	rep := fast.Accountant().Cycle()
	if got := rep.BySubscriber["s"].Usage; got != qos.GenericCost() {
		t.Errorf("charged usage = %v, want nominal generic cost", got)
	}
}

func TestRPNOverheadExtendsCPU(t *testing.T) {
	r := NewRPN(1, 1.0, 12.5e6)
	r.SetOverhead(time.Millisecond)
	req := workload.Request{Subscriber: "s", Cost: qos.Vector{CPUTime: 5 * time.Millisecond, NetBytes: 1}}
	fin, _ := r.process(time.Time{}, req)
	if fin.Sub(time.Time{}) < 6*time.Millisecond {
		t.Errorf("completion %v must include the 1ms Gage overhead", fin.Sub(time.Time{}))
	}
}

func TestRDNModelInterruptKnee(t *testing.T) {
	m := DefaultRDNModel()
	base := m.RequestCost(0)
	if base != m.PerConnection+m.PerClassify+time.Duration(m.PacketsPerRequest)*m.PerPacketForward {
		t.Errorf("base cost = %v", base)
	}
	below := m.RequestCost(m.InterruptKneePPS * 0.9)
	if below != base {
		t.Errorf("below the knee cost = %v, want base %v", below, base)
	}
	above := m.RequestCost(m.InterruptKneePPS * 1.2)
	if above <= base {
		t.Errorf("above-knee cost = %v, must exceed base %v", above, base)
	}
	higher := m.RequestCost(m.InterruptKneePPS * 1.4)
	if higher <= above {
		t.Error("interrupt penalty must grow with packet rate")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Error("empty options must be rejected")
	}
	if _, err := Run(Options{
		Subscribers: []qos.Subscriber{{ID: "a", Reservation: 1}},
	}); err == nil {
		t.Error("missing sources must be rejected")
	}
}

func TestRunSmallUnderloadedCluster(t *testing.T) {
	res, err := Run(Options{
		Subscribers: []qos.Subscriber{
			{ID: "a", Hosts: []string{"a.example"}, Reservation: 50},
		},
		Sources: []workload.Source{
			mustConstSource("a", "a.example", 30, qos.GenericCost()),
		},
		NumRPNs:  1,
		Warmup:   2 * time.Second,
		Duration: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	row, ok := res.Row("a")
	if !ok {
		t.Fatal("missing row for subscriber a")
	}
	if row.Served < 29 || row.Served > 31 {
		t.Errorf("served = %.2f GRPS, want ≈30 (everything offered)", row.Served)
	}
	if row.Dropped != 0 {
		t.Errorf("dropped = %.2f, want 0", row.Dropped)
	}
	if res.ServedReqPerSec < 29 || res.ServedReqPerSec > 31 {
		t.Errorf("cluster rate = %.2f req/s, want ≈30", res.ServedReqPerSec)
	}
	if _, ok := res.Row("ghost"); ok {
		t.Error("Row(ghost) must miss")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Run(Options{
			Subscribers: []qos.Subscriber{
				{ID: "a", Hosts: []string{"a.example"}, Reservation: 60, QueueLimit: 32},
				{ID: "b", Hosts: []string{"b.example"}, Reservation: 40, QueueLimit: 32},
			},
			Sources: []workload.Source{
				mustConstSource("a", "a.example", 80, qos.GenericCost()),
				mustConstSource("b", "b.example", 70, qos.GenericCost()),
			},
			NumRPNs:  1,
			Warmup:   time.Second,
			Duration: 10 * time.Second,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	r1, r2 := run(), run()
	for i := range r1.Rows {
		if r1.Rows[i] != r2.Rows[i] {
			t.Errorf("row %d differs across identical runs: %+v vs %+v", i, r1.Rows[i], r2.Rows[i])
		}
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	site1, _ := res.Row("site1")
	site2, _ := res.Row("site2")
	site3, _ := res.Row("site3")

	// Paper Table 1: served 259.4 / 161.1 / 365.4, dropped 0 / 0 / 24.9.
	if site1.Served < 255 || site1.Served > 263 {
		t.Errorf("site1 served = %.1f, want ≈259.4", site1.Served)
	}
	if site2.Served < 157 || site2.Served > 165 {
		t.Errorf("site2 served = %.1f, want ≈161.1", site2.Served)
	}
	if site3.Served < 355 || site3.Served > 375 {
		t.Errorf("site3 served = %.1f, want ≈365.4", site3.Served)
	}
	if site1.Dropped != 0 || site2.Dropped != 0 {
		t.Errorf("site1/site2 dropped = %.1f/%.1f, want 0/0", site1.Dropped, site2.Dropped)
	}
	if site3.Dropped < 15 || site3.Dropped > 35 {
		t.Errorf("site3 dropped = %.1f, want ≈24.9", site3.Dropped)
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2()
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	site1, _ := res.Row("site1")
	site2, _ := res.Row("site2")

	// Both must at least meet their reservations.
	if site1.Served < 250 {
		t.Errorf("site1 served = %.1f, must meet reservation 250", site1.Served)
	}
	if site2.Served < 200 {
		t.Errorf("site2 served = %.1f, must meet reservation 200", site2.Served)
	}
	// Spare split ∝ reservations (250:200 = 1.25), site1 demand-capped.
	spare1 := site1.Served - 250
	spare2 := site2.Served - 200
	if spare1 <= 0 || spare2 <= 0 {
		t.Fatalf("both must get spare; got %.1f / %.1f", spare1, spare2)
	}
	ratio := spare1 / spare2
	if ratio < 1.05 || ratio > 1.45 {
		t.Errorf("spare ratio = %.2f, want ≈1.25 (reservation-proportional)", ratio)
	}
	// Paper: served 422.2 / 342.4.
	if site1.Served < 410 || site1.Served > 430 {
		t.Errorf("site1 served = %.1f, want ≈422", site1.Served)
	}
	if site2.Served < 330 || site2.Served > 350 {
		t.Errorf("site2 served = %.1f, want ≈342", site2.Served)
	}
}

func TestFigure3Shape(t *testing.T) {
	cycles := Figure3Cycles()
	intervals := []time.Duration{time.Second, 4 * time.Second, 10 * time.Second}
	pts, err := Figure3(cycles, intervals, false)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	dev := make(map[[2]time.Duration]float64, len(pts))
	for _, p := range pts {
		dev[[2]time.Duration{p.AcctCycle, p.Interval}] = p.Deviation
	}
	// Deviation grows with the accounting cycle at a 1 s interval.
	at1s := func(c time.Duration) float64 { return dev[[2]time.Duration{c, time.Second}] }
	for i := 1; i < len(cycles); i++ {
		if at1s(cycles[i]) < at1s(cycles[i-1]) {
			t.Errorf("deviation at 1s must grow with cycle: %v=%0.3f < %v=%0.3f",
				cycles[i], at1s(cycles[i]), cycles[i-1], at1s(cycles[i-1]))
		}
	}
	// The paper's headline point: 2 s cycle, 1 s interval ⇒ ≥100 %.
	if got := at1s(2 * time.Second); got < 0.95 {
		t.Errorf("2s-cycle/1s-interval deviation = %.2f, want ≥ ≈1.0", got)
	}
	// Deviation shrinks as the averaging interval widens (per cycle).
	for _, c := range cycles {
		d1 := dev[[2]time.Duration{c, time.Second}]
		d10 := dev[[2]time.Duration{c, 10 * time.Second}]
		if d10 > d1+1e-9 {
			t.Errorf("cycle %v: deviation must shrink with interval (1s=%.3f, 10s=%.3f)", c, d1, d10)
		}
	}
	// Fast feedback keeps long-interval deviation small (paper: <8 %).
	if got := dev[[2]time.Duration{50 * time.Millisecond, 4 * time.Second}]; got > 0.08 {
		t.Errorf("50ms-cycle/4s-interval deviation = %.3f, want <0.08", got)
	}
}

func TestFigure3RealisticWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("realistic Figure 3 run skipped in -short mode")
	}
	pts, err := Figure3([]time.Duration{100 * time.Millisecond}, []time.Duration{4 * time.Second}, true)
	if err != nil {
		t.Fatalf("Figure3 realistic: %v", err)
	}
	// Paper: under the SPECweb99-like workload, deviation stays below ≈5 %
	// for intervals ≥4 s with a reasonable accounting cycle.
	if got := pts[0].Deviation; got > 0.10 {
		t.Errorf("realistic deviation = %.3f, want <0.10", got)
	}
}

func TestScalabilityLinear(t *testing.T) {
	pts, err := Scalability(4)
	if err != nil {
		t.Fatalf("Scalability: %v", err)
	}
	// Paper §4.3: throughput grows linearly from ≈540 req/s per RPN, and
	// Gage's penalty versus no-QoS stays within a few percent.
	perRPN := pts[0].WithGage
	if perRPN < 480 || perRPN > 580 {
		t.Errorf("1-RPN throughput = %.1f req/s, want ≈540", perRPN)
	}
	for _, p := range pts {
		expect := perRPN * float64(p.NumRPNs)
		if p.WithGage < expect*0.95 || p.WithGage > expect*1.05 {
			t.Errorf("n=%d throughput = %.1f, want ≈%.1f (linear)", p.NumRPNs, p.WithGage, expect)
		}
		penalty := 1 - p.WithGage/p.WithoutGage
		if penalty < 0 || penalty > 0.05 {
			t.Errorf("n=%d QoS penalty = %.3f, want small positive (<5%%)", p.NumRPNs, penalty)
		}
	}
}

func TestRDNUtilizationKnee(t *testing.T) {
	pts, err := RDNUtilizationCurve([]float64{1000, 2000, 3000, 4000, 4800})
	if err != nil {
		t.Fatalf("RDNUtilizationCurve: %v", err)
	}
	// Near-linear region: utilization per request roughly constant.
	slope1 := pts[1].RDNUtilization / pts[1].OfferedReqPerSec
	slope0 := pts[0].RDNUtilization / pts[0].OfferedReqPerSec
	if slope1 < slope0*0.8 || slope1 > slope0*1.3 {
		t.Errorf("low-rate slopes differ too much: %.3g vs %.3g", slope0, slope1)
	}
	// Above the knee the marginal utilization explodes.
	marginalLow := (pts[2].RDNUtilization - pts[1].RDNUtilization) / 1000
	marginalHigh := (pts[4].RDNUtilization - pts[3].RDNUtilization) / 800
	if marginalHigh < 3*marginalLow {
		t.Errorf("utilization knee missing: marginal %.3g vs %.3g per req/s", marginalHigh, marginalLow)
	}
	if pts[4].RDNUtilization < 0.9 {
		t.Errorf("utilization at 4800 req/s = %.2f, want near saturation", pts[4].RDNUtilization)
	}
}

func TestLatencyReflectsQueueing(t *testing.T) {
	// An underloaded site sees near-service-time latency; a site offered
	// more than its share queues at the RDN and sees far higher latency.
	res, err := Run(Options{
		Subscribers: []qos.Subscriber{
			{ID: "calm", Hosts: []string{"calm.example"}, Reservation: 60, QueueLimit: 256},
			{ID: "busy", Hosts: []string{"busy.example"}, Reservation: 40, QueueLimit: 256},
		},
		Sources: []workload.Source{
			mustConstSource("calm", "calm.example", 30, qos.GenericCost()),
			mustConstSource("busy", "busy.example", 150, qos.GenericCost()),
		},
		NumRPNs:  1,
		Warmup:   5 * time.Second,
		Duration: 20 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	calm, _ := res.Row("calm")
	busy, _ := res.Row("busy")
	if calm.MeanLatency <= 0 {
		t.Fatalf("calm latency = %v, want positive", calm.MeanLatency)
	}
	// Calm requests skip the RDN queue but still share the node's FIFO
	// pipeline (bounded by the outstanding window): sub-second latency.
	// Gage guarantees rates, not response times — §3.1 leaves latency QoS
	// as an open problem, and this asymmetry is why.
	if calm.MeanLatency > 500*time.Millisecond {
		t.Errorf("calm mean latency = %v, want bounded by the outstanding window", calm.MeanLatency)
	}
	// The busy site's excess waits in its deep RDN queue: seconds.
	if busy.MeanLatency < 4*calm.MeanLatency {
		t.Errorf("busy mean latency = %v, want ≫ calm %v", busy.MeanLatency, calm.MeanLatency)
	}
	if busy.P95Latency < busy.MeanLatency {
		t.Errorf("p95 %v must be ≥ mean %v", busy.P95Latency, busy.MeanLatency)
	}
}

func TestLocalityDispatchRaisesEffectiveCapacity(t *testing.T) {
	// §3.6: dispatching URL pages in the same proximity to the same RPN
	// exploits cache locality, avoiding disk I/O and raising the cluster's
	// effective processing capacity.
	res, err := LocalityStudy()
	if err != nil {
		t.Fatalf("LocalityStudy: %v", err)
	}
	if res.HitRateWith <= res.HitRateWithout {
		t.Errorf("affinity hit rate %.2f must exceed least-loaded %.2f",
			res.HitRateWith, res.HitRateWithout)
	}
	if res.ServedWith < res.ServedWithout*1.2 {
		t.Errorf("affinity throughput %.1f must clearly exceed least-loaded %.1f",
			res.ServedWith, res.ServedWithout)
	}
}

func TestPageCacheLRU(t *testing.T) {
	c := newPageCache(2)
	if c.touch("a") {
		t.Error("first touch of a must miss")
	}
	if c.touch("b") {
		t.Error("first touch of b must miss")
	}
	if !c.touch("a") {
		t.Error("second touch of a must hit")
	}
	// Inserting c evicts the LRU entry, which is now b.
	if c.touch("c") {
		t.Error("first touch of c must miss")
	}
	if c.touch("b") {
		t.Error("b must have been evicted by c")
	}
	// Reinserting b evicted the then-LRU entry a.
	if c.touch("a") {
		t.Error("a must have been evicted by b's reinsertion")
	}
}

func TestCapacityDrainSmoothsSlowFeedback(t *testing.T) {
	// The design-choice ablation: with a 2 s accounting cycle and the
	// paper-faithful capacity bookkeeping (node capacity reappears only at
	// accounting messages), dispatch turns bursty at the feedback period
	// and per-site service oscillates badly. The library's optimistic
	// drain model keeps service smooth under the same feedback lag.
	base := Options{
		Subscribers: []qos.Subscriber{
			{ID: "a", Hosts: []string{"a.example"}, Reservation: 100, QueueLimit: 256},
			{ID: "b", Hosts: []string{"b.example"}, Reservation: 100, QueueLimit: 256},
		},
		NumRPNs:      2,
		AcctCycle:    2 * time.Second,
		CreditWindow: 8 * time.Second,
		Warmup:       5 * time.Second,
		Duration:     40 * time.Second,
	}
	deviation := func(noDrain bool) float64 {
		opts := base
		opts.DisableCapacityDrain = noDrain
		opts.Sources = []workload.Source{
			mustConstSource("a", "a.example", 110, qos.GenericCost()),
			mustConstSource("b", "b.example", 110, qos.GenericCost()),
		}
		res, err := Run(opts)
		if err != nil {
			t.Fatalf("Run(noDrain=%v): %v", noDrain, err)
		}
		d, err := res.Deviation("a", time.Second)
		if err != nil {
			t.Fatalf("Deviation: %v", err)
		}
		return d
	}
	faithful := deviation(true)
	drained := deviation(false)
	if drained > 0.05 {
		t.Errorf("drain-model service deviation = %.3f, want smooth (<0.05)", drained)
	}
	if faithful < 2*drained {
		t.Errorf("faithful deviation %.3f must clearly exceed drain-model %.3f", faithful, drained)
	}
}
