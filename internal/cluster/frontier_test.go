package cluster

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"gage/internal/faults"
	"gage/internal/frontier"
	"gage/internal/qos"
	"gage/internal/workload"
)

// frontierTestPopulation builds a small multi-group population with
// constant-rate sources at the given multiple of each reservation.
func frontierTestPopulation(t *testing.T, groups, perGroup int, res qos.GRPS, rateMul float64) ([]qos.Subscriber, []workload.Source) {
	t.Helper()
	generic := qos.GenericCost()
	var subs []qos.Subscriber
	var sources []workload.Source
	for gi := 0; gi < groups; gi++ {
		g := drillGroup(gi)
		for si := 0; si < perGroup; si++ {
			id := qos.SubscriberID(fmt.Sprintf("%s-s%d", g, si))
			host := fmt.Sprintf("%s.example", id)
			subs = append(subs, qos.Subscriber{
				ID:          id,
				Hosts:       []string{host},
				Reservation: res,
				QueueLimit:  256,
				Group:       g,
			})
			sources = append(sources, mustConstSource(id, host, rateMul*float64(res), generic))
		}
	}
	return subs, sources
}

// TestFrontierSingleRDNMatchesRun pins the degenerate-config equivalence:
// with rdnCount=1 the tier harness must reproduce the single-RDN harness
// bit for bit — same per-subscriber rows, same whole-run counters. This is
// what lets the tier replace the old front end without re-baselining every
// golden.
func TestFrontierSingleRDNMatchesRun(t *testing.T) {
	subs, sources := frontierTestPopulation(t, 4, 2, 25, 1.0)
	opts := Options{
		Subscribers: subs,
		Sources:     sources,
		NumRPNs:     3,
		Warmup:      500 * time.Millisecond,
		Duration:    4 * time.Second,
	}
	want, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunFrontier(FrontierOptions{Options: opts, RDNCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Takeovers) != 0 {
		t.Errorf("single-RDN tier recorded %d ownership changes, want 0", len(got.Takeovers))
	}
	if got.RefusedDeadReqs != 0 || got.FencedReqs != 0 || got.HandedOffReqs != 0 || got.LostQueuedReqs != 0 {
		t.Errorf("single-RDN tier shows tier-only traffic: refused=%d fenced=%d handedoff=%d lost=%d",
			got.RefusedDeadReqs, got.FencedReqs, got.HandedOffReqs, got.LostQueuedReqs)
	}
	type pair struct {
		name      string
		got, want int
	}
	for _, p := range []pair{
		{"AdmittedReqs", got.AdmittedReqs, want.AdmittedReqs},
		{"ShedReqs", got.ShedReqs, want.ShedReqs},
		{"DispatchedReqs", got.DispatchedReqs, want.DispatchedReqs},
		{"DeliveredReqs", got.DeliveredReqs, want.DeliveredReqs},
		{"ReclaimedReqs", got.ReclaimedReqs, want.ReclaimedReqs},
		{"InflightAtEnd", got.InflightAtEnd, want.InflightAtEnd},
		{"QueuedAtEnd", got.QueuedAtEnd, want.QueuedAtEnd},
		{"BalanceViolations", got.BalanceViolations, want.BalanceViolations},
	} {
		if p.got != p.want {
			t.Errorf("%s: tier %d, single-RDN harness %d", p.name, p.got, p.want)
		}
	}
	if got.ServedReqPerSec != want.ServedReqPerSec {
		t.Errorf("ServedReqPerSec: tier %v, harness %v", got.ServedReqPerSec, want.ServedReqPerSec)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("row count: tier %d, harness %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if got.Rows[i] != want.Rows[i] {
			t.Errorf("row %s differs:\n tier    %+v\n harness %+v",
				got.Rows[i].ID, got.Rows[i], want.Rows[i])
		}
	}
}

// TestChaosRDNFailover is the CI chaos drill (make chaos-rdn): kill one of
// three front ends mid-run, recover it later, and assert the whole failover
// story — takeover within one lease interval, exactly-once settlement,
// blast radius bounded to the victim's partition, clean survivors in the
// merged flight-recorder audit — plus run-to-run determinism.
func TestChaosRDNFailover(t *testing.T) {
	rep, err := RDNFailoverDrill(FrontierDrillOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.VictimGroups) == 0 {
		t.Fatalf("victim RDN %d owns no groups; drill exercises nothing", rep.Victim)
	}
	if len(rep.SurvivorGroups) == 0 {
		t.Fatalf("victim RDN %d owns every group; no survivors to check", rep.Victim)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	t.Logf("victim=%d groups=%v takeover after %v; refused=%d handedoff=%d fenced=%d lost=%d",
		rep.Victim, rep.VictimGroups, rep.TakeoverLatency,
		rep.Result.RefusedDeadReqs, rep.Result.HandedOffReqs,
		rep.Result.FencedReqs, rep.Result.LostQueuedReqs)

	// The drill is deterministic: same options, same virtual clock, same
	// ownership timeline and books.
	rep2, err := RDNFailoverDrill(FrontierDrillOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Result.Takeovers) != len(rep.Result.Takeovers) {
		t.Fatalf("reruns disagree on ownership changes: %d vs %d",
			len(rep.Result.Takeovers), len(rep2.Result.Takeovers))
	}
	for i := range rep.Result.Takeovers {
		if rep.Result.Takeovers[i] != rep2.Result.Takeovers[i] {
			t.Errorf("ownership change %d differs across reruns:\n %+v\n %+v",
				i, rep.Result.Takeovers[i], rep2.Result.Takeovers[i])
		}
	}
	a, b := rep.Result, rep2.Result
	if a.AdmittedReqs != b.AdmittedReqs || a.DeliveredReqs != b.DeliveredReqs ||
		a.FencedReqs != b.FencedReqs || a.RefusedDeadReqs != b.RefusedDeadReqs ||
		a.HandedOffReqs != b.HandedOffReqs || a.LostQueuedReqs != b.LostQueuedReqs {
		t.Errorf("reruns disagree on counters:\n %+v\n %+v", a, b)
	}
}

// TestFrontierLeaseDelayFencing deposes a live front end: a LeaseDelay
// window stalls the victim's heartbeats past the lease interval, a survivor
// takes its partition over, and the deposed-but-alive victim keeps
// dispatching from its stale queues — every such delivery must be refused
// by the epoch fence and its charge reclaimed. When the window lifts, the
// partition hands back.
func TestFrontierLeaseDelayFencing(t *testing.T) {
	const lease = 400 * time.Millisecond
	part, err := frontier.NewPartitioner(3)
	if err != nil {
		t.Fatal(err)
	}
	victim := part.Owner(drillGroup(0))
	// Overload every partition 3×: queues are never empty, so the deposed
	// victim still has stale work to dispatch during the delay window.
	subs, sources := frontierTestPopulation(t, 6, 2, 20, 3.0)
	plan := &faults.Plan{Events: []faults.Event{{
		Kind:  faults.LeaseDelay,
		RDN:   victim,
		At:    3 * time.Second,
		Until: 5 * time.Second,
		Delay: 2 * time.Second,
	}}}
	res, err := RunFrontier(FrontierOptions{
		Options: Options{
			Subscribers: subs,
			Sources:     sources,
			NumRPNs:     4,
			Warmup:      time.Second,
			Duration:    8 * time.Second,
			Faults:      plan,
		},
		RDNCount:      3,
		LeaseInterval: lease,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.AdmittedReqs, res.DispatchedReqs+res.QueuedAtEnd+res.LostQueuedReqs; got != want {
		t.Errorf("admission books do not close: admitted %d != dispatched %d + queued %d + lost %d",
			res.AdmittedReqs, res.DispatchedReqs, res.QueuedAtEnd, res.LostQueuedReqs)
	}
	if got, want := res.DispatchedReqs, res.DeliveredReqs+res.ReclaimedReqs+res.FencedReqs+res.InflightAtEnd; got != want {
		t.Errorf("settlement books do not close: dispatched %d != delivered %d + reclaimed %d + fenced %d + inflight %d",
			res.DispatchedReqs, res.DeliveredReqs, res.ReclaimedReqs, res.FencedReqs, res.InflightAtEnd)
	}
	if res.BalanceViolations != 0 {
		t.Errorf("%d balance clamp violations", res.BalanceViolations)
	}
	if res.FencedReqs == 0 {
		t.Error("no dispatches fenced: the deposed owner's stale queue work went unchallenged")
	}
	if res.RefusedDeadReqs != 0 {
		t.Errorf("%d arrivals refused as dead, but the victim never crashed", res.RefusedDeadReqs)
	}
	var sawTakeover, sawHandback bool
	for _, ch := range res.Takeovers {
		if ch.Kind == "takeover" && ch.From == victim {
			sawTakeover = true
			if ch.At <= 3*time.Second || ch.At > 5*time.Second+lease {
				t.Errorf("takeover from deposed victim at %v, want inside the delay window", ch.At)
			}
		}
		if ch.Kind == "handback" && ch.To == victim && sawTakeover {
			sawHandback = true
		}
	}
	if !sawTakeover {
		t.Error("lease delay never cost the victim its partition")
	}
	if !sawHandback {
		t.Error("partition never handed back after the delay window lifted")
	}
	if res.HandedOffReqs == 0 {
		t.Error("no queued requests handed off: migrations shed instead of redispatching")
	}
}

// TestFrontierKnee pins the Figure-6 projection: the saturation knee moves
// right in proportion to the front-end tier size.
func TestFrontierKnee(t *testing.T) {
	m := DefaultRDNModel()
	pts := FrontierKnee(m, []int{1, 2, 4})
	if len(pts) != 3 {
		t.Fatalf("got %d knee points, want 3", len(pts))
	}
	base := pts[0].SatReqPerSec
	if base <= 0 {
		t.Fatalf("non-positive single-RDN saturation rate %v", base)
	}
	for _, p := range pts {
		want := base * float64(p.RDNs)
		if math.Abs(p.SatReqPerSec-want) > 1e-6*want {
			t.Errorf("rdns=%d: knee %v, want %v (linear in tier size)", p.RDNs, p.SatReqPerSec, want)
		}
	}
}

// TestFrontierDrillBlastRadius spot-checks the drill rows directly: every
// dropped or refused request belongs to the victim's partition.
func TestFrontierDrillBlastRadius(t *testing.T) {
	rep, err := RDNFailoverDrill(FrontierDrillOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Result.Rows {
		g, _, _ := strings.Cut(string(row.ID), "-")
		onVictim := false
		for _, vg := range rep.VictimGroups {
			if g == vg {
				onVictim = true
			}
		}
		if !onVictim && row.DroppedReqs != 0 {
			t.Errorf("survivor %s dropped %d requests", row.ID, row.DroppedReqs)
		}
	}
}
