package cluster

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"gage/internal/faults"
	"gage/internal/flightrec"
	"gage/internal/frontier"
	"gage/internal/obs"
	"gage/internal/qos"
)

// obsDrillRun executes the observability drill once and returns the raw
// spilled cycle log and event log bytes.
func obsDrillRun(t *testing.T) (cycles, events []byte) {
	t.Helper()
	var cycleSpill, eventSpill bytes.Buffer
	rec := flightrec.NewRecorder(flightrec.Config{RingSize: 64, Spill: &cycleSpill})
	bus := obs.NewBus(obs.BusConfig{RingSize: 256, Spill: &eventSpill})
	if _, err := Run(ObsDrillOptions(rec, bus)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rec.SpillErr(); err != nil {
		t.Fatalf("cycle spill: %v", err)
	}
	if err := bus.SpillErr(); err != nil {
		t.Fatalf("event spill: %v", err)
	}
	if bus.Dropped() != 0 {
		t.Fatalf("bus dropped %d events despite a healthy spill", bus.Dropped())
	}
	return cycleSpill.Bytes(), eventSpill.Bytes()
}

// TestObsDrillExplainsViolation is the tentpole acceptance drill: a fault-
// injected crash during the elasticity scenario must produce a violation
// span whose exemplars resolve end-to-end — the explain story names the
// crashed node, the breaker trip, the coinciding control-plane decisions,
// and at least one exemplar's full classify→queue→dispatch→settle path.
func TestObsDrillExplainsViolation(t *testing.T) {
	cycleBytes, eventBytes := obsDrillRun(t)
	recs, err := flightrec.ReadLog(bytes.NewReader(cycleBytes))
	if err != nil {
		t.Fatalf("read cycle log: %v", err)
	}
	evs, err := obs.ReadLog(bytes.NewReader(eventBytes))
	if err != nil {
		t.Fatalf("read event log: %v", err)
	}
	if err := obs.LintLog(evs); err != nil {
		t.Fatalf("event log fails schema lint: %v", err)
	}

	// Every event kind the drill exercises appears in the stream.
	seen := map[obs.Kind]int{}
	for _, ev := range evs {
		seen[ev.Kind]++
	}
	for _, k := range []obs.Kind{obs.KindSpan, obs.KindCycle, obs.KindTier,
		obs.KindFault, obs.KindBreaker, obs.KindAdmin, obs.KindViolation} {
		if seen[k] == 0 {
			t.Errorf("event log holds no %v events", k)
		}
	}

	// The crash must open a violation span for site1, and the span must
	// carry exemplars captured from settled traced requests.
	rep := flightrec.ReplayEvents(recs, evs, ObsDrillAuditConfig())
	site1, ok := rep.Sub("site1")
	if !ok {
		t.Fatal("audit report has no entry for site1")
	}
	if len(site1.Spans) == 0 {
		t.Fatal("crash produced no violation span for site1")
	}
	span := site1.Spans[0]
	if len(span.Exemplars) == 0 {
		t.Fatal("violation span captured no exemplars")
	}
	// Record offsets count from the run start (warmup included), so the
	// span must open after the crash and before recovery plus drain slack.
	if span.Start < ObsDrillCrashAt || span.Start > ObsDrillRecoverAt+2*time.Second {
		t.Errorf("span opens at %v, want within the crash window [%v, %v]",
			span.Start, ObsDrillCrashAt, ObsDrillRecoverAt+2*time.Second)
	}

	// Each exemplar resolves to a settled trace in the event log, settled
	// exactly once — the trace's terminal outcome is unambiguous.
	for _, ex := range span.Exemplars {
		tid, err := obs.ParseTraceID(ex)
		if err != nil {
			t.Fatalf("exemplar %q does not parse: %v", ex, err)
		}
		settles, classifies := 0, 0
		for _, ev := range evs {
			if ev.Kind != obs.KindSpan || ev.Trace != tid {
				continue
			}
			switch ev.Stage {
			case obs.StageSettle:
				settles++
			case "classify":
				classifies++
			}
		}
		if settles != 1 {
			t.Errorf("exemplar %s settled %d times, want exactly 1", ex, settles)
		}
		if classifies != 1 {
			t.Errorf("exemplar %s classified %d times, want exactly 1", ex, classifies)
		}
	}

	// The explain story names the crashed node, the breaker transition, a
	// coinciding admin decision, and a full exemplar path.
	story, err := flightrec.Explain(recs, evs, qos.SubscriberID("site1"),
		flightrec.ExplainOptions{}, ObsDrillAuditConfig())
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	for _, want := range []string{
		"violation span 1/",
		"node 1 crash",
		"breaker",
		"admin",
		"exemplar " + span.Exemplars[0],
		"classify",
		"dispatch",
		"settle",
	} {
		if !strings.Contains(story, want) {
			t.Errorf("explain story missing %q:\n%s", want, story)
		}
	}
}

// TestObsDrillByteDeterministic runs the drill twice: the spilled cycle and
// event logs, and the rendered explain story, must be byte-identical.
func TestObsDrillByteDeterministic(t *testing.T) {
	c1, e1 := obsDrillRun(t)
	c2, e2 := obsDrillRun(t)
	if !bytes.Equal(c1, c2) {
		t.Error("cycle logs differ between identical runs")
	}
	if !bytes.Equal(e1, e2) {
		t.Error("event logs differ between identical runs")
	}
	explain := func(cb, eb []byte) string {
		recs, err := flightrec.ReadLog(bytes.NewReader(cb))
		if err != nil {
			t.Fatalf("read cycle log: %v", err)
		}
		evs, err := obs.ReadLog(bytes.NewReader(eb))
		if err != nil {
			t.Fatalf("read event log: %v", err)
		}
		story, err := flightrec.Explain(recs, evs, "site1", flightrec.ExplainOptions{}, ObsDrillAuditConfig())
		if err != nil {
			t.Fatalf("Explain: %v", err)
		}
		return story
	}
	if s1, s2 := explain(c1, e1), explain(c2, e2); s1 != s2 {
		t.Errorf("explain stories differ between identical runs:\n%s\n---\n%s", s1, s2)
	}
}

// frontierEventRun executes the 3-RDN failover drill with one flight
// recorder and one event bus per instance, and returns the merged event
// stream plus its canonical JSONL bytes (obs.MergeLogs + obs.WriteLog).
func frontierEventRun(t *testing.T) ([]obs.Event, []byte) {
	t.Helper()
	const rdnCount = 3
	subs, sources := frontierTestPopulation(t, 6, 2, 20, 1.0)
	part, err := frontier.NewPartitioner(rdnCount)
	if err != nil {
		t.Fatal(err)
	}
	victim := part.Owner(drillGroup(0))
	recs := make([]*flightrec.Recorder, rdnCount)
	spills := make([]bytes.Buffer, rdnCount)
	for i := range recs {
		recs[i] = flightrec.NewRecorder(flightrec.Config{RingSize: 1024})
		bus := obs.NewBus(obs.BusConfig{RingSize: 64, Spill: &spills[i]})
		recs[i].SetBus(bus)
	}
	_, err = RunFrontier(FrontierOptions{
		Options: Options{
			Subscribers: subs,
			Sources:     sources,
			NumRPNs:     4,
			Warmup:      time.Second,
			Duration:    8 * time.Second,
			Faults: &faults.Plan{Events: []faults.Event{
				{Kind: faults.RDNCrash, RDN: victim, At: 4 * time.Second},
				{Kind: faults.RDNRecover, RDN: victim, At: 6500 * time.Millisecond},
			}},
		},
		RDNCount:      rdnCount,
		LeaseInterval: 400 * time.Millisecond,
		Recorders:     recs,
	})
	if err != nil {
		t.Fatalf("RunFrontier: %v", err)
	}
	logs := make([][]obs.Event, rdnCount)
	for i := range spills {
		if logs[i], err = obs.ReadLog(&spills[i]); err != nil {
			t.Fatalf("read rdn %d event log: %v", i+1, err)
		}
		if len(logs[i]) == 0 {
			t.Fatalf("rdn %d spilled no events", i+1)
		}
	}
	merged := obs.MergeLogs(logs...)
	var buf bytes.Buffer
	if err := obs.WriteLog(&buf, merged); err != nil {
		t.Fatalf("write merged log: %v", err)
	}
	return merged, buf.Bytes()
}

// TestFrontierEventMergeByteDeterministic is the multi-RDN merge gate:
// three per-instance event logs with interleaved takeover/crash/recover
// tier events merge into one stable, lint-clean stream whose JSONL bytes
// are identical run to run — the contract `gagetrace` relies on when it
// merges spills collected from different front ends.
func TestFrontierEventMergeByteDeterministic(t *testing.T) {
	merged, raw := frontierEventRun(t)
	if err := obs.LintLog(merged); err != nil {
		t.Fatalf("merged log fails schema lint: %v", err)
	}
	// The failover story is present and comes from more than one instance:
	// cycles from every RDN, the crash note, and the takeover annotations
	// recorded by the adopting survivor.
	cyclesBy := map[int]int{}
	tierBy := map[int]int{}
	details := map[string]int{}
	for _, ev := range merged {
		switch ev.Kind {
		case obs.KindCycle:
			cyclesBy[ev.RDN]++
		case obs.KindTier:
			tierBy[ev.RDN]++
			details[ev.Detail]++
		}
	}
	for r := 1; r <= 3; r++ {
		if cyclesBy[r] == 0 {
			t.Errorf("merged log holds no cycle events from rdn %d", r)
		}
	}
	for _, want := range []string{"takeover", "rdn-crash", "rdn-recover"} {
		if details[want] == 0 {
			t.Errorf("merged log holds no %q tier events; have %v", want, details)
		}
	}
	if len(tierBy) < 2 {
		t.Errorf("tier events come from %d instance(s), want interleaving from ≥2: %v", len(tierBy), tierBy)
	}
	// The merge keys on (At, RDN, Seq) only — stable and total for any
	// interleaving — so a second run must reproduce the bytes exactly.
	_, raw2 := frontierEventRun(t)
	if !bytes.Equal(raw, raw2) {
		t.Error("merged event logs differ between identical runs")
	}
}
