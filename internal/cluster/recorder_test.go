package cluster

import (
	"bytes"
	"math"
	"testing"
	"time"

	"gage/internal/flightrec"
	"gage/internal/qos"
	"gage/internal/workload"
)

// TestRunRecordsCycles wires a flight recorder into a simulated run and
// checks the cycle log: one record per scheduling cycle on the virtual
// clock, subscriber rows present, and the recorded usage stream consistent
// with the run's own served measurement.
func TestRunRecordsCycles(t *testing.T) {
	var spill bytes.Buffer
	rec := flightrec.NewRecorder(flightrec.Config{RingSize: 64, Spill: &spill})
	const (
		warmup = 2 * time.Second
		dur    = 8 * time.Second
	)
	res, err := Run(Options{
		Subscribers: []qos.Subscriber{
			{ID: "a", Hosts: []string{"a.example"}, Reservation: 50},
		},
		Sources: []workload.Source{
			mustConstSource("a", "a.example", 30, qos.GenericCost()),
		},
		NumRPNs:  1,
		Recorder: rec,
		Warmup:   warmup,
		Duration: dur,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rec.SpillErr(); err != nil {
		t.Fatalf("spill: %v", err)
	}
	recs, err := flightrec.ReadLog(&spill)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	// One record per 10 ms cycle over warmup+duration. The engine stops at
	// exactly the total, so the count may be off by one at the boundary.
	wantCycles := int((warmup + dur) / (10 * time.Millisecond))
	if len(recs) < wantCycles-1 || len(recs) > wantCycles+1 {
		t.Fatalf("cycle log holds %d records, want ≈%d", len(recs), wantCycles)
	}
	last := time.Duration(-1)
	var usage float64
	active := 0
	for i, cr := range recs {
		if cr.At <= last {
			t.Fatalf("record %d: At %v not after previous %v", i, cr.At, last)
		}
		last = cr.At
		// Records hold only subscribers with activity that cycle; a 30 req/s
		// arrival stream leaves some 10 ms cycles legitimately idle.
		if len(cr.Subs) > 1 || (len(cr.Subs) == 1 && cr.Subs[0].ID != "a") {
			t.Fatalf("record %d: subs = %+v, want subscriber a or none", i, cr.Subs)
		}
		if len(cr.Nodes) != 1 {
			t.Fatalf("record %d: %d nodes, want 1", i, len(cr.Nodes))
		}
		if len(cr.Subs) == 1 {
			active++
			if cr.At >= warmup {
				usage += cr.Subs[0].Usage.GenericUnits()
			}
		}
	}
	if active < len(recs)/10 {
		t.Fatalf("only %d of %d records captured the active subscriber", active, len(recs))
	}
	if last < warmup+dur-20*time.Millisecond {
		t.Errorf("last record at %v, want near %v", last, warmup+dur)
	}
	// Usage recorded after warmup tracks the run's served measurement. The
	// edges differ by up to an accounting cycle of in-flight work.
	row, _ := res.Row("a")
	served := row.Served * dur.Seconds()
	if math.Abs(usage-served) > 0.15*served {
		t.Errorf("recorded usage %.1f units vs served %.1f, want within 15%%", usage, served)
	}

	// The offline auditor agrees with the run's own Figure-3 deviation to
	// within 1% when both exclude warmup (satellite of TestConformanceGolden;
	// the full SPECweb99 version lives in cmd/gagetrace).
	rep := flightrec.Replay(recs, flightrec.AuditorConfig{Skip: warmup})
	sub, ok := rep.Sub("a")
	if !ok {
		t.Fatal("audit lost subscriber a")
	}
	if !sub.DeviationOK {
		t.Fatal("audit deviation unavailable")
	}
	want, err := res.ObservedDeviation("a", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sub.Deviation-want) > 0.01 {
		t.Errorf("audit deviation %.4f vs simulator %.4f, want within 0.01", sub.Deviation, want)
	}
}
