package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"gage/internal/faults"
	"gage/internal/flightrec"
	"gage/internal/qos"
	"gage/internal/workload"
)

// HierStressOptions configures the hierarchical Zipf stress scenario: a
// large registered population spread over tenant groups, of which only a
// small Zipf(1.1)-skewed hot set carries traffic. The scenario is the
// simulator-side companion of benchkit's HierScale sweep — benchkit pins the
// per-cycle cost at 100k/1M registered, this run proves the guarantees
// (reservations met, balances clamped, audit clean) still hold end to end
// through the full RDN/RPN pipeline with groups and skew in play.
type HierStressOptions struct {
	// Registered is the total subscriber population. Only the hot set
	// materializes scheduler state; the rest exist to prove population size
	// is irrelevant. Default 2000 — the simulator keeps per-subscriber
	// result series, so population here is bounded by harness memory, not
	// by the scheduler (benchkit covers 100k/1M).
	Registered int
	// Groups is the tenant-tier count; subscriber i joins group i%Groups.
	// Default 16.
	Groups int
	// Hot is the traffic-carrying subscriber count. Default 32.
	Hot int
	// NumRPNs is the back-end cluster size. Default 4.
	NumRPNs int
	// Utilization is the offered load as a fraction of the cluster's
	// aggregate GRPS capacity. Default 0.3 — low enough that the 1.5×-sized
	// reservations still sum under three survivors of a one-node crash, so
	// no group's guarantee may break during the chaos variant.
	Utilization float64
	// Seed fixes the Zipf draws; runs with equal options are identical.
	Seed int64
	// Warmup/Duration as in Options. Defaults 2s / 12s.
	Warmup   time.Duration
	Duration time.Duration
	// Faults optionally injects a chaos plan (offsets from run start).
	Faults *faults.Plan
	// Recorder optionally captures the per-cycle log for offline audit.
	Recorder *flightrec.Recorder
}

// WithDefaults returns the options with every unset knob filled in — the
// derived numbers callers print alongside a run.
func (o HierStressOptions) WithDefaults() HierStressOptions {
	if o.Registered <= 0 {
		o.Registered = 2000
	}
	if o.Groups <= 0 {
		o.Groups = 16
	}
	if o.Hot <= 0 {
		o.Hot = 32
	}
	if o.Hot > o.Registered {
		o.Hot = o.Registered
	}
	if o.NumRPNs <= 0 {
		o.NumRPNs = 4
	}
	if o.Utilization <= 0 {
		o.Utilization = 0.3
	}
	if o.Seed == 0 {
		o.Seed = 20030519
	}
	if o.Warmup <= 0 {
		o.Warmup = 2 * time.Second
	}
	if o.Duration <= 0 {
		o.Duration = 12 * time.Second
	}
	return o
}

// HierStressRun is a HierStress result plus the scenario's derived cast: the
// hot subscribers (with their sized reservations and group assignments) that
// the assertions and the offline audit care about.
type HierStressRun struct {
	*Result
	// Hot holds the traffic-carrying subscribers in draw order.
	Hot []qos.Subscriber
	// GroupOf maps every hot subscriber to its tenant group.
	GroupOf map[qos.SubscriberID]string
}

// HierStress builds and runs the scenario. The hot set is drawn Zipf(1.1)
// over the whole population, arrival rates are Zipf(1.1) over the hot set,
// and each hot reservation is sized 1.5× its arrival share — so every hot
// queue drains inside its reservation round and a conformance audit of the
// run must come back clean. Everyone else registers with a zero reservation
// and no traffic: pure directory weight.
func HierStress(o HierStressOptions) (*HierStressRun, error) {
	o = o.WithDefaults()

	r := rand.New(rand.NewSource(o.Seed))
	zpop := rand.NewZipf(r, 1.1, 1, uint64(o.Registered-1))
	hotIdx := make([]int, 0, o.Hot)
	seen := make(map[int]bool, o.Hot)
	for len(hotIdx) < o.Hot {
		i := int(zpop.Uint64())
		if !seen[i] {
			seen[i] = true
			hotIdx = append(hotIdx, i)
		}
	}
	// Rate shares over the hot set, from a long Zipf draw.
	const draws = 4096
	zhot := rand.NewZipf(r, 1.1, 1, uint64(o.Hot-1))
	counts := make([]int, o.Hot)
	for i := 0; i < draws; i++ {
		counts[zhot.Uint64()]++
	}
	// Aggregate offered load in GRPS (one generic request = one generic
	// unit), split by the Zipf shares with a 1 req/s floor so every hot
	// subscriber stays measurable.
	clusterGRPS := float64(o.NumRPNs) * 100
	offered := o.Utilization * clusterGRPS
	rates := make([]float64, o.Hot)
	for j := range rates {
		rates[j] = offered*float64(counts[j])/float64(draws) + 1
	}

	subs := make([]qos.Subscriber, o.Registered)
	groupNames := make([]string, o.Groups)
	for g := range groupNames {
		groupNames[g] = fmt.Sprintf("tier%02d", g)
	}
	hotRes := make(map[int]qos.GRPS, o.Hot)
	for j, i := range hotIdx {
		hotRes[i] = qos.GRPS(rates[j]*1.5) + 1
	}
	for i := range subs {
		subs[i] = qos.Subscriber{
			ID:          qos.SubscriberID(fmt.Sprintf("s%06d", i)),
			Reservation: hotRes[i], // zero for the cold population
			QueueLimit:  1024,
			Group:       groupNames[i%o.Groups],
		}
		if _, hot := hotRes[i]; hot {
			subs[i].Hosts = []string{fmt.Sprintf("s%06d.example", i)}
		}
	}

	run := &HierStressRun{
		Hot:     make([]qos.Subscriber, o.Hot),
		GroupOf: make(map[qos.SubscriberID]string, o.Hot),
	}
	sources := make([]workload.Source, o.Hot)
	for j, i := range hotIdx {
		run.Hot[j] = subs[i]
		run.GroupOf[subs[i].ID] = subs[i].Group
		sources[j] = mustConstSource(subs[i].ID, subs[i].Hosts[0], rates[j], qos.GenericCost())
	}

	res, err := Run(Options{
		Subscribers: subs,
		Sources:     sources,
		NumRPNs:     o.NumRPNs,
		Warmup:      o.Warmup,
		Duration:    o.Duration,
		Faults:      o.Faults,
		Recorder:    o.Recorder,
	})
	if err != nil {
		return nil, err
	}
	run.Result = res
	return run, nil
}
