package cluster

import (
	"bytes"
	"testing"
	"time"

	"gage/internal/faults"
	"gage/internal/flightrec"
	"gage/internal/qos"
)

// hierStressOpts sizes the scenario for test time: the full population runs
// in CI, a trimmed one under -short. The scheduler itself is population-
// independent (benchkit proves that at 100k/1M); here population only costs
// harness memory and the per-tick balance audit.
func hierStressOpts(t *testing.T) HierStressOptions {
	o := HierStressOptions{Registered: 1500, Hot: 32, Duration: 12 * time.Second}
	if testing.Short() {
		o.Registered, o.Hot, o.Duration = 600, 16, 6*time.Second
	}
	return o
}

// auditHier replays a spilled cycle log with bounded windows (unbounded
// windows can never open a violation span, which would make the zero-span
// assertions vacuous) and returns the per-subscriber report.
func auditHier(t *testing.T, spill *bytes.Buffer, warmup time.Duration) flightrec.Report {
	t.Helper()
	recs, err := flightrec.ReadLog(spill)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("cycle log is empty")
	}
	return flightrec.Replay(recs, flightrec.AuditorConfig{
		Window:     4 * time.Second,
		FastWindow: time.Second,
		Skip:       warmup,
	})
}

// TestHierStressZipfGuarantees is the healthy-path Zipf stress: a big mostly
// idle population across 16 tenant groups, 1.5×-sized hot reservations, 8
// groups' worth of skewed traffic. Everything offered must be served (no
// shedding, no starvation), the settlement and balance audits must close,
// and the offline conformance audit of the spilled cycle log must come back
// with zero violation spans.
func TestHierStressZipfGuarantees(t *testing.T) {
	var spill bytes.Buffer
	rec := flightrec.NewRecorder(flightrec.Config{RingSize: 256, Spill: &spill})
	o := hierStressOpts(t)
	o.Recorder = rec
	run, err := HierStress(o)
	if err != nil {
		t.Fatalf("HierStress: %v", err)
	}
	assertSettled(t, run.Result)
	if run.ShedReqs != 0 {
		t.Errorf("shed %d requests at 30%% utilization with 1.5× reservations, want 0", run.ShedReqs)
	}
	for _, sub := range run.Hot {
		row, ok := run.Row(sub.ID)
		if !ok {
			t.Fatalf("no result row for hot subscriber %s", sub.ID)
		}
		if row.OfferedReqs == 0 {
			t.Fatalf("hot subscriber %s offered nothing; the Zipf source wiring is broken", sub.ID)
		}
		// Underloaded relative to its reservation: everything offered is
		// served, modulo work still in the pipeline at the window edges.
		if float64(row.ServedReqs) < 0.95*float64(row.OfferedReqs) {
			t.Errorf("%s (group %s): served %d of %d offered requests",
				sub.ID, run.GroupOf[sub.ID], row.ServedReqs, row.OfferedReqs)
		}
	}
	if err := rec.SpillErr(); err != nil {
		t.Fatalf("spill: %v", err)
	}
	rep := auditHier(t, &spill, o.WithDefaults().Warmup)
	for _, sub := range run.Hot {
		sr, ok := rep.Sub(sub.ID)
		if !ok {
			t.Fatalf("audit lost hot subscriber %s", sub.ID)
		}
		if sr.Violations != 0 {
			t.Errorf("%s (group %s): %d violation spans in a healthy run: %+v",
				sub.ID, run.GroupOf[sub.ID], sr.Violations, sr.Spans)
		}
	}
}

// TestChaosHierZipfCrashSparesGroups runs the Zipf scenario under the PR-2
// crash plan (node 2 fails mid-run, recovers 4s later). Reservations total
// well under the three survivors' capacity, so no tenant group's guarantee
// may break: the settlement books still close exactly, the crash demonstrably
// reclaimed in-flight work, and the conformance audit must show zero
// violation spans in every group — including the groups whose members never
// had a request on the dead node.
func TestChaosHierZipfCrashSparesGroups(t *testing.T) {
	var spill bytes.Buffer
	rec := flightrec.NewRecorder(flightrec.Config{RingSize: 256, Spill: &spill})
	o := hierStressOpts(t)
	o.Recorder = rec
	// Fault offsets count from run start (warmup included), so pin the
	// warmup explicitly before deriving the crash window from it.
	o.Warmup = 2 * time.Second
	o.Faults = &faults.Plan{Seed: 42, Events: []faults.Event{
		{At: o.Warmup + o.Duration/3, Kind: faults.NodeCrash, Node: 2},
		{At: o.Warmup + 2*o.Duration/3, Kind: faults.NodeRecover, Node: 2},
	}}
	run, err := HierStress(o)
	if err != nil {
		t.Fatalf("HierStress: %v", err)
	}
	assertSettled(t, run.Result)
	if run.ReclaimedReqs == 0 {
		t.Error("crashing a node mid-run reclaimed nothing; in-flight requests must be released")
	}
	if run.Fault == nil {
		t.Fatal("Result.Fault is nil for a run with a fault plan")
	}
	if err := rec.SpillErr(); err != nil {
		t.Fatalf("spill: %v", err)
	}
	rep := auditHier(t, &spill, o.Warmup)
	violationsByGroup := make(map[string]uint64)
	for _, sub := range run.Hot {
		sr, ok := rep.Sub(sub.ID)
		if !ok {
			t.Fatalf("audit lost hot subscriber %s", sub.ID)
		}
		violationsByGroup[run.GroupOf[sub.ID]] += sr.Violations
		if sr.Violations != 0 {
			t.Errorf("%s (group %s): %d violation spans through the crash: %+v",
				sub.ID, run.GroupOf[sub.ID], sr.Violations, sr.Spans)
		}
	}
	for group, v := range violationsByGroup {
		if v != 0 {
			t.Errorf("group %s accumulated %d violation spans; survivors hold the aggregate reservation", group, v)
		}
	}
}

// TestHierStressDeterministic pins replayability: identical options (same
// Zipf seed, same fault plan) must yield byte-identical hot casts and result
// books, like every other chaos scenario in this package.
func TestHierStressDeterministic(t *testing.T) {
	o := HierStressOptions{Registered: 400, Hot: 12, Duration: 4 * time.Second}
	r1, err := HierStress(o)
	if err != nil {
		t.Fatalf("HierStress: %v", err)
	}
	r2, err := HierStress(o)
	if err != nil {
		t.Fatalf("HierStress: %v", err)
	}
	if len(r1.Hot) != len(r2.Hot) {
		t.Fatalf("hot casts differ in size: %d vs %d", len(r1.Hot), len(r2.Hot))
	}
	for i := range r1.Hot {
		if r1.Hot[i].ID != r2.Hot[i].ID || r1.Hot[i].Reservation != r2.Hot[i].Reservation {
			t.Fatalf("hot cast differs at %d: %+v vs %+v", i, r1.Hot[i], r2.Hot[i])
		}
	}
	if r1.DispatchedReqs != r2.DispatchedReqs || r1.AdmittedReqs != r2.AdmittedReqs ||
		r1.ShedReqs != r2.ShedReqs || r1.QueuedAtEnd != r2.QueuedAtEnd {
		t.Fatalf("books differ across identical runs: %+v vs %+v", r1.Result, r2.Result)
	}
	var ids []qos.SubscriberID
	for id := range r1.GroupOf {
		ids = append(ids, id)
	}
	for _, id := range ids {
		if r1.GroupOf[id] != r2.GroupOf[id] {
			t.Fatalf("group assignment differs for %s", id)
		}
	}
}
