package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"gage/internal/admitctl"
	"gage/internal/classify"
	"gage/internal/core"
	"gage/internal/faults"
	"gage/internal/flightrec"
	"gage/internal/metrics"
	"gage/internal/obs"
	"gage/internal/qos"
	"gage/internal/telemetry"
	"gage/internal/vclock"
	"gage/internal/workload"
)

// Options configures one simulated experiment run.
type Options struct {
	// Subscribers defines the sites and reservations.
	Subscribers []qos.Subscriber
	// Sources defines the client load, one or more per subscriber.
	Sources []workload.Source
	// ReplayTrace, when non-empty, is replayed verbatim as the arrival
	// stream and Sources is ignored — trace-driven runs, as the paper does
	// with its SPECWeb99-derived trace.
	ReplayTrace []workload.Request

	// NumRPNs is the back-end cluster size.
	NumRPNs int
	// RPNSpeed scales each RPN's CPU/disk rate (1.0 = nominal 1 resource-
	// second per second). Use it to set aggregate cluster capacity.
	RPNSpeed float64
	// LinkBandwidth is each RPN's outbound bandwidth in bytes/sec
	// (default: Fast Ethernet, 12.5 MB/s).
	LinkBandwidth float64

	// SchedCycle is the RDN scheduling cycle (default 10 ms, §3.4).
	SchedCycle time.Duration
	// AcctCycle is the accounting cycle (default 100 ms).
	AcctCycle time.Duration
	// FeedbackLatency delays accounting messages RPN→RDN (default 200 µs).
	FeedbackLatency time.Duration
	// DispatchLatency delays dispatched requests RDN→RPN (default 100 µs).
	DispatchLatency time.Duration

	// Gate selects the scheduler's reservation-gate mode.
	Gate core.GateMode
	// DisableCapacityDrain selects the paper-faithful node-capacity
	// bookkeeping (release only at accounting messages).
	DisableCapacityDrain bool
	// SchedulerAlpha overrides the usage predictor's EWMA weight (the core
	// default when zero).
	SchedulerAlpha float64
	// CreditWindow and OutstandingWindow override the scheduler windows;
	// zero derives them from the accounting cycle (2× with floors at the
	// core defaults) so feedback-paced release never throttles throughput.
	CreditWindow      time.Duration
	OutstandingWindow time.Duration

	// RDN, when non-nil, charges front-end processing per request and
	// models the interrupt-overload knee (scalability study).
	RDN *RDNModel
	// RPNOverhead is the per-request CPU time each RPN spends in Gage's
	// local service manager (splicing setup + remapping); zero disables it.
	RPNOverhead time.Duration

	// UnitResource selects how usage vectors convert to generic units in
	// the measured rates and series: a single resource dimension, or the
	// max across dimensions when zero (the default).
	UnitResource qos.Resource

	// LocalityDispatch turns on content-aware request distribution (§3.6):
	// requests for URL pages in the same directory prefer the same RPN.
	LocalityDispatch bool
	// CacheEntries gives each RPN an LRU page cache of that many entries;
	// cache hits skip the request's disk-channel time (0 disables).
	CacheEntries int

	// Recorder, when non-nil, receives one flightrec.CycleRecord per
	// scheduling cycle, stamped with virtual-time offsets from the start of
	// the run (warmup included) — the same origin convention as request
	// arrivals, so an offline audit excludes warmup with Skip=Warmup. The
	// recorder's clock is pointed at the engine's virtual clock; live and
	// simulated cycle logs then share one format and one time base.
	Recorder *flightrec.Recorder

	// Auditor, when non-nil alongside a Recorder, audits the run live: it
	// syncs from the Recorder once per accounting cycle on the virtual
	// clock, settled traced requests feed its exemplar reservoirs, and —
	// with a Bus attached via SetBus — violation spans publish as events at
	// their exact virtual offsets, just as the live dispatcher's auditor
	// does.
	Auditor *flightrec.Auditor

	// Bus, when non-nil, receives the run's unified event stream — request
	// spans for traced arrivals, fault injections, breaker transitions,
	// scripted admission outcomes, and (through the Recorder) cycle and tier
	// records — all stamped with virtual-time offsets from the start of the
	// run, the same origin as cycle records. Same run ⇒ identical stream.
	Bus *obs.Bus
	// TraceEvery samples every Nth arrival (by request ID) for span events
	// on the Bus; 0 disables span tracing. Sampling is deterministic, so a
	// replayed drill selects the same exemplar requests.
	TraceEvery uint64

	// Faults, when non-nil, is the deterministic chaos schedule executed at
	// exact virtual times: node crashes/recoveries, accounting drop/delay
	// windows, link degradation, CPU-speed dips. Same (workload, plan) ⇒
	// identical Result. Event offsets count from the start of the run
	// (warmup included), like request arrivals.
	Faults *faults.Plan

	// Admissions, when non-empty, is the deterministic elasticity schedule:
	// scripted subscriber admissions/resizes/removals and node add/drain
	// events applied at exact virtual times through the same admitctl policy
	// the live control plane runs. Event offsets count from the start of the
	// run (warmup included), like Faults. Same (workload, schedule) ⇒
	// identical Result and AdmissionLog.
	Admissions []AdmissionEvent
	// AdmitHeadroom is the fraction of enabled capacity the admission policy
	// lets reservations commit, in (0, 1]; 0 selects the policy default 1.0.
	AdmitHeadroom float64

	// Warmup is excluded from all measurements; Duration is the measured
	// window after warmup.
	Warmup   time.Duration
	Duration time.Duration
}

func (o Options) withDefaults() Options {
	if o.NumRPNs <= 0 {
		o.NumRPNs = 1
	}
	if o.RPNSpeed <= 0 {
		o.RPNSpeed = 1
	}
	if o.LinkBandwidth <= 0 {
		o.LinkBandwidth = 12.5e6
	}
	if o.SchedCycle <= 0 {
		o.SchedCycle = core.DefaultCycle
	}
	if o.AcctCycle <= 0 {
		o.AcctCycle = 100 * time.Millisecond
	}
	if o.FeedbackLatency < 0 {
		o.FeedbackLatency = 0
	} else if o.FeedbackLatency == 0 {
		o.FeedbackLatency = 200 * time.Microsecond
	}
	if o.DispatchLatency == 0 {
		o.DispatchLatency = 100 * time.Microsecond
	}
	if o.CreditWindow <= 0 {
		o.CreditWindow = maxDur(core.DefaultCreditWindow, 2*o.AcctCycle)
	}
	if o.OutstandingWindow <= 0 {
		o.OutstandingWindow = maxDur(core.DefaultOutstandingWindow, 2*o.AcctCycle)
	}
	if o.Duration <= 0 {
		o.Duration = 30 * time.Second
	}
	return o
}

// SubscriberRow is one measured line of a Table-1/Table-2-style result, all
// rates in generic requests per second over the measured window.
type SubscriberRow struct {
	ID          qos.SubscriberID
	Reservation qos.GRPS
	Offered     float64
	Served      float64
	Dropped     float64
	// Request counts (not generic units) over the window.
	OfferedReqs int
	ServedReqs  int
	DroppedReqs int
	// Response-time statistics over the window, arrival to completion
	// (§3.1 lists response time as an alternative QoS metric).
	MeanLatency time.Duration
	P95Latency  time.Duration
}

// Result carries everything an experiment needs to print its table or plot
// its figure.
type Result struct {
	// Rows is the per-subscriber summary in subscriber-ID order.
	Rows []SubscriberRow
	// Series holds per-subscriber completion samples (offsets measured from
	// the end of warmup) for deviation analysis.
	Series map[qos.SubscriberID]*metrics.Series
	// Observed holds per-subscriber usage as the RDN sees it — one sample
	// per accounting message, at its delivery time. Figure 3's deviation
	// statistic is computed over this series: with an accounting cycle
	// longer than the averaging interval, intervals see either no usage or
	// a whole cycle's worth, which is exactly the paper's ">100% at a 2 s
	// cycle under a 1 s interval" effect.
	Observed map[qos.SubscriberID]*metrics.Series
	// LatencyHist holds each subscriber's completion latencies over the
	// measurement window in the same histogram type the live dispatcher
	// exposes at /metrics, so simulated and measured quantiles are directly
	// comparable.
	LatencyHist map[qos.SubscriberID]*telemetry.Histogram
	// ServedReqPerSec is the cluster-wide request completion rate.
	ServedReqPerSec float64
	// RDNUtilization is the front end's CPU utilization over the window
	// (0 when no RDN model was configured).
	RDNUtilization float64
	// CacheHitRate is the cluster-wide page-cache hit fraction over the
	// whole run (0 when caches are disabled).
	CacheHitRate float64
	// Window is the measured duration.
	Window time.Duration

	// Settlement counters over the whole run (warmup included): every
	// dispatch the scheduler emitted settles exactly once — delivered (its
	// completion was charged), reclaimed (a crash lost it and its charge
	// was released back to the scheduler), or still in flight at run end.
	// DispatchedReqs == DeliveredReqs + ReclaimedReqs + InflightAtEnd is a
	// standing chaos invariant.
	DispatchedReqs int
	DeliveredReqs  int
	ReclaimedReqs  int
	InflightAtEnd  int
	// BalanceViolations counts per-tick audits that found a subscriber
	// balance below its clamp floor (−reservation×CreditWindow). Must be 0.
	BalanceViolations int
	// Whole-run admission counters (warmup included): every classified
	// arrival either entered a subscriber queue (AdmittedReqs) or was shed
	// at the queue limit (ShedReqs); QueuedAtEnd is what still waits in
	// queues when the run stops, and OrphanedReqs is what a scripted
	// subscriber removal dropped from its queue. Combined with the
	// settlement counters this closes the books over every offered request:
	//
	//	AdmittedReqs == DispatchedReqs + QueuedAtEnd + OrphanedReqs
	//	AdmittedReqs + ShedReqs == DeliveredReqs + ReclaimedReqs + ShedReqs +
	//	                           InflightAtEnd + QueuedAtEnd + OrphanedReqs
	AdmittedReqs int
	ShedReqs     int
	QueuedAtEnd  int
	OrphanedReqs int
	// AdmissionLog is every scripted admission event's outcome in schedule
	// order; Accepted/Rejected count applied and refused events. Empty when
	// the run had no admission schedule.
	AdmissionLog      []AdmissionOutcome
	AdmissionAccepted int
	AdmissionRejected int
	// NodeWeights samples each node's scheduler admission weight once per
	// accounting cycle (offsets from the end of warmup; warmup samples are
	// negative). The overload drill asserts a recovered node's slow-start
	// ramp is monotone on this series.
	NodeWeights map[core.NodeID]*metrics.Series
	// NodeDispatches records one unit per dispatch decision at its decision
	// time, per node — the recovered node's dispatch share over time.
	NodeDispatches map[core.NodeID]*metrics.Series
	// Fault reports the injected plan's active window relative to the
	// measured window; nil when the run had no fault plan.
	Fault *FaultReport
}

// FaultReport locates the fault plan's active span inside the measured
// window: offsets from the end of warmup, unclipped (Start may be negative
// when faults began during warmup; End may exceed Window).
type FaultReport struct {
	Start time.Duration
	End   time.Duration
}

// PhaseDeviation is one subscriber's deviation statistic split around the
// fault plan's active window. A phase too short to hold one full averaging
// interval has its OK flag false and a zero value.
type PhaseDeviation struct {
	Pre, During, Post       float64
	PreOK, DuringOK, PostOK bool
}

// PhaseDeviation computes the served-rate deviation statistic separately
// over the pre-fault, during-fault and post-recovery windows of the run —
// the instrument that shows a guarantee holding before a crash, degrading
// (or not) while it is active, and recovering afterwards. It errors when
// the run had no fault plan or the subscriber is unknown.
func (r *Result) PhaseDeviation(id qos.SubscriberID, interval time.Duration) (PhaseDeviation, error) {
	if r.Fault == nil {
		return PhaseDeviation{}, errors.New("cluster: run had no fault plan")
	}
	s, ok := r.Series[id]
	if !ok {
		return PhaseDeviation{}, fmt.Errorf("cluster: no series for subscriber %q", id)
	}
	var res qos.GRPS
	for _, row := range r.Rows {
		if row.ID == id {
			res = row.Reservation
		}
	}
	clip := func(t time.Duration) time.Duration {
		if t < 0 {
			return 0
		}
		if t > r.Window {
			return r.Window
		}
		return t
	}
	from, to := clip(r.Fault.Start), clip(r.Fault.End)
	var pd PhaseDeviation
	if d, err := s.DeviationBetween(res, 0, from, interval); err == nil {
		pd.Pre, pd.PreOK = d, true
	}
	if d, err := s.DeviationBetween(res, from, to, interval); err == nil {
		pd.During, pd.DuringOK = d, true
	}
	if d, err := s.DeviationBetween(res, to, r.Window, interval); err == nil {
		pd.Post, pd.PostOK = d, true
	}
	return pd, nil
}

// Row returns the row for a subscriber ID.
func (r *Result) Row(id qos.SubscriberID) (SubscriberRow, bool) {
	for _, row := range r.Rows {
		if row.ID == id {
			return row, true
		}
	}
	return SubscriberRow{}, false
}

// Deviation computes the deviation-from-reservation statistic over the
// subscriber's actual completion series: mean |served rate − reservation| /
// reservation across averaging intervals of the given length.
func (r *Result) Deviation(id qos.SubscriberID, interval time.Duration) (float64, error) {
	return r.deviation(r.Series, id, interval)
}

// ObservedDeviation computes the Figure-3 statistic over the usage series
// the RDN observes through accounting messages.
func (r *Result) ObservedDeviation(id qos.SubscriberID, interval time.Duration) (float64, error) {
	return r.deviation(r.Observed, id, interval)
}

func (r *Result) deviation(set map[qos.SubscriberID]*metrics.Series, id qos.SubscriberID, interval time.Duration) (float64, error) {
	s, ok := set[id]
	if !ok {
		return 0, fmt.Errorf("cluster: no series for subscriber %q", id)
	}
	var res qos.GRPS
	for _, row := range r.Rows {
		if row.ID == id {
			res = row.Reservation
		}
	}
	return s.DeviationFromReservation(res, r.Window, interval)
}

// MeanObservedDeviation averages ObservedDeviation across all subscribers —
// the "overall average among all subscribers" the paper plots.
func (r *Result) MeanObservedDeviation(interval time.Duration) (float64, error) {
	if len(r.Rows) == 0 {
		return 0, errors.New("cluster: no rows")
	}
	var sum float64
	for _, row := range r.Rows {
		d, err := r.ObservedDeviation(row.ID, interval)
		if err != nil {
			return 0, err
		}
		sum += d
	}
	return sum / float64(len(r.Rows)), nil
}

// flight carries one dispatch decision across its wire-latency and
// service-time hops. Carriers are recycled within a run so the dispatch
// chain schedules allocation-free.
type flight struct {
	req       *workload.Request
	node      *RPN
	epoch     int
	effective qos.Vector
}

// acctFlight carries one accounting message across its feedback-latency hop.
type acctFlight struct {
	node core.NodeID
	msg  acctMsg
}

// Run executes one experiment on a fresh virtual-time engine.
func Run(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if len(opts.Subscribers) == 0 {
		return nil, errors.New("cluster: at least one subscriber required")
	}
	if len(opts.Sources) == 0 && len(opts.ReplayTrace) == 0 {
		return nil, errors.New("cluster: a load source or replay trace required")
	}

	dir, err := qos.NewDirectory(opts.Subscribers)
	if err != nil {
		return nil, err
	}

	rpns := make([]*RPN, opts.NumRPNs)
	nodeCfgs := make([]core.NodeConfig, opts.NumRPNs)
	for i := range rpns {
		rpns[i] = NewRPN(core.NodeID(i+1), opts.RPNSpeed, opts.LinkBandwidth)
		rpns[i].SetOverhead(opts.RPNOverhead)
		rpns[i].SetCache(opts.CacheEntries)
		nodeCfgs[i] = core.NodeConfig{ID: rpns[i].id, Capacity: rpns[i].Capacity()}
	}
	byID := make(map[core.NodeID]*RPN, len(rpns))
	for _, r := range rpns {
		byID[r.id] = r
	}

	sched, err := core.New(dir, nodeCfgs, core.Config{
		Cycle:                opts.SchedCycle,
		CreditWindow:         opts.CreditWindow,
		OutstandingWindow:    opts.OutstandingWindow,
		Gate:                 opts.Gate,
		PredictionAlpha:      opts.SchedulerAlpha,
		DisableCapacityDrain: opts.DisableCapacityDrain,
	})
	if err != nil {
		return nil, err
	}

	var inj *faults.Injector
	if opts.Faults != nil {
		if maxNode := opts.Faults.MaxNode(); int(maxNode) > opts.NumRPNs {
			return nil, fmt.Errorf("cluster: fault plan targets node %d but cluster has %d RPNs", maxNode, opts.NumRPNs)
		}
		inj, err = faults.NewInjector(*opts.Faults)
		if err != nil {
			return nil, err
		}
	}
	cs := newChaosRun(rpns)

	// Admitted-at-runtime subscribers resolve through a dynamic classifier
	// chained after the static directory one; the chain is skipped entirely
	// when the run has no admission schedule so the steady-state classify
	// hop stays lock-free.
	dyn := classify.NewDynamicClassifier()
	var classifier classify.Classifier = classify.NewHostClassifier(dir)
	if len(opts.Admissions) > 0 {
		classifier = classify.Chain{classifier, dyn}
	}
	// defsNow tracks each subscriber's current definition through scripted
	// admissions and resizes; a removed subscriber keeps its final entry so
	// its result row still assembles.
	defsNow := make(map[qos.SubscriberID]qos.Subscriber, dir.Len())
	for _, id := range dir.IDs() {
		sub, err := dir.Subscriber(id)
		if err != nil {
			continue
		}
		defsNow[id] = sub
	}
	engine := vclock.NewEngine(time.Time{})
	front := &rdn{model: opts.RDN}

	total := opts.Warmup + opts.Duration
	start := engine.Now()
	measureFrom := start.Add(opts.Warmup)

	if opts.Recorder != nil {
		// Cycle records carry virtual-time offsets from the run start.
		opts.Recorder.SetClock(func() time.Duration { return engine.Now().Sub(start) })
		sched.SetRecorder(opts.Recorder)
	}
	bus := opts.Bus
	if bus != nil {
		// Bus events share the cycle records' time base: virtual offsets
		// from the start of the run, warmup included.
		bus.SetClock(func() time.Duration { return engine.Now().Sub(start) })
		if opts.Recorder != nil {
			opts.Recorder.SetBus(bus)
		}
	}
	cs.bus = bus
	if opts.Auditor != nil && opts.Recorder != nil {
		// The live audit ticks with the accounting cycle: violation spans
		// open and close at deterministic virtual offsets, not at whatever
		// wall-clock moment a scraper happened to sync.
		stopAudit := engine.Every(opts.AcctCycle, opts.Auditor.Sync)
		defer stopAudit()
	}
	traceEvery := opts.TraceEvery
	if bus == nil {
		traceEvery = 0
	}
	// traced selects span-sampled requests; the zero trace ID never occurs
	// (Mint offsets the RDN field) so "untraced" needs no sentinel.
	traced := func(id uint64) bool { return traceEvery != 0 && id%traceEvery == 0 }

	// Materialize all arrivals up front: deterministic and cheap.
	var arrivals []workload.Request
	if len(opts.ReplayTrace) > 0 {
		arrivals = workload.Merge(opts.ReplayTrace)
	} else {
		var streams [][]workload.Request
		var nextID uint64 = 1
		for _, src := range opts.Sources {
			var reqs []workload.Request
			reqs, nextID = src.Schedule(total, nextID)
			streams = append(streams, reqs)
		}
		arrivals = workload.Merge(streams...)
	}

	tp := metrics.NewThroughput()
	series := make(map[qos.SubscriberID]*metrics.Series, dir.Len())
	observed := make(map[qos.SubscriberID]*metrics.Series, dir.Len())
	for _, id := range dir.IDs() {
		series[id] = &metrics.Series{}
		observed[id] = &metrics.Series{}
	}
	nodeWeights := make(map[core.NodeID]*metrics.Series, len(rpns))
	nodeDispatches := make(map[core.NodeID]*metrics.Series, len(rpns))
	for _, r := range rpns {
		nodeWeights[r.id] = &metrics.Series{}
		nodeDispatches[r.id] = &metrics.Series{}
	}
	var admittedReqs, shedReqs int
	counts := struct {
		offered, served, dropped map[qos.SubscriberID]int
	}{
		offered: make(map[qos.SubscriberID]int),
		served:  make(map[qos.SubscriberID]int),
		dropped: make(map[qos.SubscriberID]int),
	}
	latencies := make(map[qos.SubscriberID][]float64, dir.Len())
	latHist := make(map[qos.SubscriberID]*telemetry.Histogram, dir.Len())
	for _, id := range dir.IDs() {
		latHist[id] = telemetry.NewHistogram()
	}
	inWindow := func(t time.Time) bool { return !t.Before(measureFrom) }
	units := func(v qos.Vector) float64 {
		if opts.UnitResource != 0 {
			return v.UnitsOf(opts.UnitResource)
		}
		return v.GenericUnits()
	}

	// Client arrivals → RDN admission (classification) → scheduler queue.
	// Both hops ride AtArg on pointers into the arrivals slice, through two
	// callbacks allocated once per run — the per-request closures this chain
	// used to allocate dominated the simulator's heap profile.
	classifyHop := func(arg any) {
		req := arg.(*workload.Request)
		now := engine.Now()
		sub, ok := classifier.Classify(req.Host, req.Path)
		if !ok {
			// Unclassifiable: the RDN has no queue for it.
			return
		}
		u := units(req.Cost)
		if inWindow(now) {
			tp.Offered(sub, u)
			counts.offered[sub]++
		}
		if traced(req.ID) {
			bus.Publish(obs.Event{Kind: obs.KindSpan, Trace: obs.Mint(0, req.ID),
				Sub: string(sub), Stage: "classify"})
		}
		var affinity uint64
		if opts.LocalityDispatch {
			affinity = localityKey(req.Host, req.Path)
		}
		err := sched.Enqueue(core.Request{ID: req.ID, Subscriber: sub, Affinity: affinity, Payload: req})
		if err != nil {
			// Queue-limit admission shed: overload control at the
			// RDN's edge, counted over the whole run so the books
			// close exactly.
			shedReqs++
			if inWindow(now) {
				tp.Dropped(sub, u)
				counts.dropped[sub]++
			}
			if traced(req.ID) {
				bus.Publish(obs.Event{Kind: obs.KindSpan, Trace: obs.Mint(0, req.ID),
					Sub: string(sub), Stage: obs.StageSettle, Detail: "shed"})
				opts.Auditor.NoteExemplar(sub, obs.Mint(0, req.ID))
			}
		} else {
			admittedReqs++
			if traced(req.ID) {
				bus.Publish(obs.Event{Kind: obs.KindSpan, Trace: obs.Mint(0, req.ID),
					Sub: string(sub), Stage: "queue"})
			}
		}
	}
	admitHop := func(arg any) {
		engine.AtArg(front.admit(engine.Now()), classifyHop, arg)
	}
	for i := range arrivals {
		engine.AtArg(start.Add(arrivals[i].Arrival), admitHop, &arrivals[i])
	}

	// Fault schedule: crash/recover events fire at their exact virtual
	// times; at every other state transition, each RPN's speed and
	// bandwidth multipliers are re-derived from the injector.
	if inj != nil {
		for _, ev := range opts.Faults.Events {
			ev := ev
			switch ev.Kind {
			case faults.NodeCrash:
				engine.At(start.Add(ev.At), func() {
					bus.Publish(obs.Event{Kind: obs.KindFault, Node: int(ev.Node), Detail: "crash"})
					cs.crash(sched, byID[ev.Node])
				})
			case faults.NodeRecover:
				engine.At(start.Add(ev.At), func() {
					bus.Publish(obs.Event{Kind: obs.KindFault, Node: int(ev.Node), Detail: "recover"})
					cs.recover(ev.Node)
				})
			}
		}
		for _, tr := range inj.Transitions() {
			tr := tr
			engine.At(start.Add(tr), func() {
				for _, r := range rpns {
					r.SetSpeedFactor(inj.Speed(r.id, tr))
					r.SetBandwidthFactor(inj.Bandwidth(r.id, tr))
				}
			})
		}
	}

	// Balance clamp floors for the per-tick audit: no balance may ever sit
	// below −reservation×CreditWindow (tiny slack for Scale rounding).
	floors := make(map[qos.SubscriberID]qos.Vector, len(defsNow))
	for id, sub := range defsNow {
		floors[id] = sub.Reservation.PerCycle(opts.CreditWindow).Neg()
	}

	// Scheduling cycle: dispatch decisions travel to their RPNs. A decision
	// that reaches a node which crashed while it was on the wire is lost;
	// its charge is reclaimed so it still settles exactly once. Each decision
	// rides a pooled flight carrier through the wire-latency and service-time
	// hops instead of a pair of fresh closures.
	var flightFree []*flight
	getFlight := func() *flight {
		if k := len(flightFree); k > 0 {
			f := flightFree[k-1]
			flightFree[k-1] = nil
			flightFree = flightFree[:k-1]
			return f
		}
		return &flight{}
	}
	putFlight := func(f *flight) {
		f.req, f.node = nil, nil
		flightFree = append(flightFree, f)
	}
	finishHop := func(arg any) {
		f := arg.(*flight)
		node, req, epoch, effective := f.node, f.req, f.epoch, f.effective
		putFlight(f)
		if node.Epoch() != epoch {
			// The node crashed mid-service; the crash handler
			// already reclaimed this request's charge.
			if traced(req.ID) {
				bus.Publish(obs.Event{Kind: obs.KindSpan, Trace: obs.Mint(0, req.ID),
					Sub: string(req.Subscriber), Node: int(node.id),
					Stage: obs.StageSettle, Detail: "reclaimed"})
				opts.Auditor.NoteExemplar(req.Subscriber, obs.Mint(0, req.ID))
			}
			return
		}
		cs.complete(node.id, req.ID)
		if traced(req.ID) {
			bus.Publish(obs.Event{Kind: obs.KindSpan, Trace: obs.Mint(0, req.ID),
				Sub: string(req.Subscriber), Node: int(node.id),
				Stage: obs.StageSettle, Detail: "served"})
			opts.Auditor.NoteExemplar(req.Subscriber, obs.Mint(0, req.ID))
		}
		node.chargeCompletion(*req, effective)
		now := engine.Now()
		if inWindow(now) {
			u := units(req.Cost)
			tp.Served(req.Subscriber, u)
			counts.served[req.Subscriber]++
			series[req.Subscriber].Record(now.Sub(measureFrom), u)
			latency := now.Sub(start.Add(req.Arrival))
			latencies[req.Subscriber] = append(latencies[req.Subscriber], latency.Seconds())
			latHist[req.Subscriber].Record(latency)
		}
	}
	deliverHop := func(arg any) {
		f := arg.(*flight)
		if cs.crashed[f.node.id] {
			if traced(f.req.ID) {
				bus.Publish(obs.Event{Kind: obs.KindSpan, Trace: obs.Mint(0, f.req.ID),
					Sub: string(f.req.Subscriber), Node: int(f.node.id),
					Stage: obs.StageSettle, Detail: "reclaimed"})
				opts.Auditor.NoteExemplar(f.req.Subscriber, obs.Mint(0, f.req.ID))
			}
			cs.reclaimOne(sched, f.node.id, f.req.ID, f.req.Subscriber)
			putFlight(f)
			return
		}
		f.epoch = f.node.Epoch()
		var fin time.Time
		fin, f.effective = f.node.process(engine.Now(), *f.req)
		engine.AtArg(fin, finishHop, f)
	}
	stopSched := engine.Every(opts.SchedCycle, func() {
		for _, d := range sched.Tick() {
			req, ok := d.Req.Payload.(*workload.Request)
			if !ok {
				continue
			}
			cs.track(d.Node, req.ID, req.Subscriber)
			if traced(req.ID) {
				bus.Publish(obs.Event{Kind: obs.KindSpan, Trace: obs.Mint(0, req.ID),
					Sub: string(req.Subscriber), Node: int(d.Node), Stage: "dispatch"})
			}
			nodeDispatches[d.Node].Record(engine.Now().Sub(measureFrom), 1)
			f := getFlight()
			f.req, f.node = req, byID[d.Node]
			engine.AfterArg(opts.DispatchLatency, deliverHop, f)
		}
		for id, floor := range floors {
			b, ok := sched.Balance(id)
			if !ok {
				continue
			}
			slack := b.Sub(floor)
			if slack.CPUTime < -time.Microsecond || slack.DiskTime < -time.Microsecond || slack.NetBytes < -1 {
				cs.balanceViolations++
			}
		}
	})
	defer stopSched()

	// Accounting cycle per RPN: cumulative counters flow back with latency
	// and are diffed at delivery (like the live dispatcher's poller), so a
	// dropped message delays feedback instead of losing usage forever. A
	// crashed node is silent; silence past the streak threshold disables
	// the node, and the first report after recovery re-enables it.
	var stops []func()
	var acctFree []*acctFlight
	acctHop := func(arg any) {
		a := arg.(*acctFlight)
		id, msg := a.node, a.msg
		a.msg = acctMsg{}
		acctFree = append(acctFree, a)
		rep, ok := cs.deliverAcct(id, msg)
		if !ok {
			return // stale: overtaken inside a delay window
		}
		// Reports for known nodes cannot fail.
		_ = sched.ReportUsage(rep)
		cs.ackAcct(sched, id, engine.Now())
		now := engine.Now()
		if !inWindow(now) {
			return
		}
		for sub, u := range rep.BySubscriber {
			if s, ok := observed[sub]; ok {
				s.Record(now.Sub(measureFrom), units(u.Usage))
			}
		}
	}
	// startAcct begins one RPN's accounting loop; nodes added mid-run get
	// theirs started at admission time (first tick one cycle later).
	startAcct := func(r *RPN) {
		stops = append(stops, engine.Every(opts.AcctCycle, func() {
			now := engine.Now()
			// Breaker time advances with the accounting cycle: slow-start
			// ramps climb here. The weight sample lands after this cycle's
			// miss/ack outcome is known.
			cs.tickAcct(sched, r.id, now)
			recordWeight := func() {
				nodeWeights[r.id].Record(engine.Now().Sub(measureFrom), cs.nodeWeight(r.id))
			}
			if cs.crashed[r.id] {
				cs.missAcct(sched, r.id, now)
				recordWeight()
				return
			}
			off := now.Sub(start)
			if inj != nil && (inj.DropAcct(r.id, off) || inj.DropFrame(r.id, off)) {
				cs.missAcct(sched, r.id, now)
				recordWeight()
				return
			}
			recordWeight()
			msg := acctMsg{seq: cs.sendSeq[r.id], epoch: r.Epoch(), cum: r.Accountant().CumulativeReport()}
			cs.sendSeq[r.id]++
			delay := opts.FeedbackLatency
			if inj != nil {
				delay += inj.AcctDelay(r.id, off)
			}
			var a *acctFlight
			if k := len(acctFree); k > 0 {
				a = acctFree[k-1]
				acctFree[k-1] = nil
				acctFree = acctFree[:k-1]
			} else {
				a = &acctFlight{}
			}
			a.node, a.msg = r.id, msg
			engine.AfterArg(delay, acctHop, a)
		}))
	}
	for _, r := range rpns {
		startAcct(r)
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	// Scripted admission events fire at their exact virtual times through
	// the same feasibility policy the live control plane runs.
	var es *elasticState
	if len(opts.Admissions) > 0 {
		es = &elasticState{
			cfg:          admitctl.Config{Headroom: opts.AdmitHeadroom},
			sched:        sched,
			cs:           cs,
			dyn:          dyn,
			rec:          opts.Recorder,
			bus:          bus,
			defsNow:      defsNow,
			floors:       floors,
			creditWindow: opts.CreditWindow,
			ensureSub: func(id qos.SubscriberID) {
				if series[id] == nil {
					series[id] = &metrics.Series{}
				}
				if observed[id] == nil {
					observed[id] = &metrics.Series{}
				}
				if latHist[id] == nil {
					latHist[id] = telemetry.NewHistogram()
				}
			},
			nodeByID: func(id core.NodeID) *RPN { return byID[id] },
		}
		es.addRPN = func(ev AdmissionEvent) error {
			if _, dup := byID[ev.Node]; dup {
				return fmt.Errorf("cluster: duplicate node %d", ev.Node)
			}
			speed := ev.NodeSpeed
			if speed <= 0 {
				speed = opts.RPNSpeed
			}
			r := NewRPN(ev.Node, speed, opts.LinkBandwidth)
			r.SetOverhead(opts.RPNOverhead)
			r.SetCache(opts.CacheEntries)
			cs.addNode(r)
			if err := sched.AddNode(core.NodeConfig{ID: r.id, Capacity: r.Capacity()}, cs.nodeWeight(r.id)); err != nil {
				return err
			}
			byID[r.id] = r
			rpns = append(rpns, r)
			nodeWeights[r.id] = &metrics.Series{}
			nodeDispatches[r.id] = &metrics.Series{}
			startAcct(r)
			return nil
		}
		for _, ev := range opts.Admissions {
			ev := ev
			engine.At(start.Add(ev.At), func() { es.apply(ev) })
		}
	}

	// Utilization is measured over the window only.
	var rdnBusyAtWindowStart time.Duration
	engine.At(measureFrom, func() { rdnBusyAtWindowStart = front.busy })

	if err := engine.RunUntil(start.Add(total)); err != nil {
		return nil, err
	}
	if opts.Auditor != nil {
		// Catch the tail: records committed after the last audit tick.
		opts.Auditor.Sync()
	}

	// Assemble results.
	var queuedAtEnd int
	for id := range defsNow {
		queuedAtEnd += sched.QueueLen(id)
	}
	res := &Result{
		Series:            series,
		Observed:          observed,
		LatencyHist:       latHist,
		Window:            opts.Duration,
		DispatchedReqs:    cs.dispatched,
		DeliveredReqs:     cs.delivered,
		ReclaimedReqs:     cs.reclaimed,
		InflightAtEnd:     cs.inflightTotal(),
		BalanceViolations: cs.balanceViolations,
		AdmittedReqs:      admittedReqs,
		ShedReqs:          shedReqs,
		QueuedAtEnd:       queuedAtEnd,
		NodeWeights:       nodeWeights,
		NodeDispatches:    nodeDispatches,
	}
	if es != nil {
		res.OrphanedReqs = es.orphaned
		res.AdmissionLog = es.log
		res.AdmissionAccepted = es.accepted
		res.AdmissionRejected = es.rejected
	}
	if opts.Faults != nil {
		if fs, fe, ok := opts.Faults.ActiveWindow(); ok {
			res.Fault = &FaultReport{Start: fs - opts.Warmup, End: fe - opts.Warmup}
		}
	}
	sec := opts.Duration.Seconds()
	var servedReqs int
	for _, row := range tp.Rows(opts.Duration) {
		sub, ok := defsNow[row.ID]
		if !ok {
			continue
		}
		lats := latencies[row.ID]
		res.Rows = append(res.Rows, SubscriberRow{
			ID:          row.ID,
			Reservation: sub.Reservation,
			Offered:     row.OfferedRate,
			Served:      row.ServedRate,
			Dropped:     row.DroppedRate,
			OfferedReqs: counts.offered[row.ID],
			ServedReqs:  counts.served[row.ID],
			DroppedReqs: counts.dropped[row.ID],
			MeanLatency: time.Duration(metrics.Mean(lats) * float64(time.Second)),
			P95Latency:  time.Duration(metrics.Percentile(lats, 95) * float64(time.Second)),
		})
		servedReqs += counts.served[row.ID]
	}
	res.ServedReqPerSec = float64(servedReqs) / sec
	var hits, misses uint64
	for _, r := range rpns {
		h, m := r.CacheStats()
		hits += h
		misses += m
	}
	if hits+misses > 0 {
		res.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	if opts.RDN != nil {
		util := (front.busy - rdnBusyAtWindowStart).Seconds() / opts.Duration.Seconds()
		if util > 1 {
			util = 1
		}
		res.RDNUtilization = util
	}
	return res, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// localityKey hashes a page's host and directory so URLs "in the same
// proximity" (§3.6) share an affinity value. Zero is reserved for
// "no affinity", so the hash is nudged off zero.
func localityKey(host, path string) uint64 {
	dir := path
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		dir = dir[:i+1]
	}
	h := fnv.New64a()
	// Hash writes cannot fail.
	_, _ = h.Write([]byte(host))
	_, _ = h.Write([]byte(dir))
	k := h.Sum64()
	if k == 0 {
		k = 1
	}
	return k
}
