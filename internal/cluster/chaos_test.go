package cluster

import (
	"reflect"
	"testing"
	"time"

	"gage/internal/core"
	"gage/internal/faults"
	"gage/internal/metrics"
	"gage/internal/qos"
	"gage/internal/workload"
)

// chaosOptions is the canonical chaos scenario: four subscribers each
// reserving a quarter of their demand's worth of capacity, on four RPNs that
// together hold 4× the total reservation — so three survivors can absorb the
// fourth node's load during a crash.
func chaosOptions(plan *faults.Plan) Options {
	return Options{
		Subscribers: []qos.Subscriber{
			{ID: "a", Hosts: []string{"a.example"}, Reservation: 25},
			{ID: "b", Hosts: []string{"b.example"}, Reservation: 25},
			{ID: "c", Hosts: []string{"c.example"}, Reservation: 25},
			{ID: "d", Hosts: []string{"d.example"}, Reservation: 25},
		},
		Sources: []workload.Source{
			mustConstSource("a", "a.example", 25, qos.GenericCost()),
			mustConstSource("b", "b.example", 25, qos.GenericCost()),
			mustConstSource("c", "c.example", 25, qos.GenericCost()),
			mustConstSource("d", "d.example", 25, qos.GenericCost()),
		},
		NumRPNs:  4,
		Faults:   plan,
		Warmup:   2 * time.Second,
		Duration: 30 * time.Second,
	}
}

// crashPlan crashes node 2 at t=10s into the run and recovers it at t=20s —
// the scripted-failure experiment from EXPERIMENTS.md.
func crashPlan() *faults.Plan {
	return &faults.Plan{Seed: 42, Events: []faults.Event{
		{At: 10 * time.Second, Kind: faults.NodeCrash, Node: 2},
		{At: 20 * time.Second, Kind: faults.NodeRecover, Node: 2},
	}}
}

// assertSettled checks the standing chaos invariants on any Result: every
// dispatch settles exactly once, and no balance ever fell below its clamp
// floor.
func assertSettled(t *testing.T, res *Result) {
	t.Helper()
	if got := res.DeliveredReqs + res.ReclaimedReqs + res.InflightAtEnd; got != res.DispatchedReqs {
		t.Errorf("settlement broken: dispatched=%d but delivered+reclaimed+inflight=%d (%d+%d+%d)",
			res.DispatchedReqs, got, res.DeliveredReqs, res.ReclaimedReqs, res.InflightAtEnd)
	}
	if res.BalanceViolations != 0 {
		t.Errorf("balance audit found %d violations below the clamp floor, want 0", res.BalanceViolations)
	}
}

func TestChaosCrashReplayable(t *testing.T) {
	run := func() *Result {
		res, err := Run(chaosOptions(crashPlan()))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	r1 := run()
	r2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("same workload seed + fault plan produced different Results; chaos runs must be byte-replayable")
	}
	assertSettled(t, r1)
	if r1.ReclaimedReqs == 0 {
		t.Error("crashing a node mid-run reclaimed nothing; in-flight requests must be released")
	}
	if r1.Fault == nil {
		t.Fatal("Result.Fault is nil for a run with a fault plan")
	}
	// Plan offsets count from run start; FaultReport offsets from warmup end.
	if r1.Fault.Start != 8*time.Second || r1.Fault.End != 18*time.Second {
		t.Errorf("FaultReport = [%v, %v], want [8s, 18s]", r1.Fault.Start, r1.Fault.End)
	}
}

func TestChaosCrashDeviationBounded(t *testing.T) {
	res, err := Run(chaosOptions(crashPlan()))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertSettled(t, res)
	// Three survivors hold 3× the total reservation, so every subscriber's
	// guarantee must hold through the crash: brief turbulence while the
	// missed-accounting detector converges (3 cycles) is acceptable, but the
	// mean deviation in each phase stays bounded.
	for _, row := range res.Rows {
		pd, err := res.PhaseDeviation(row.ID, time.Second)
		if err != nil {
			t.Fatalf("PhaseDeviation(%s): %v", row.ID, err)
		}
		if !pd.PreOK || !pd.DuringOK || !pd.PostOK {
			t.Fatalf("phase windows too short for %s: %+v", row.ID, pd)
		}
		t.Logf("%s: pre=%.3f during=%.3f post=%.3f", row.ID, pd.Pre, pd.During, pd.Post)
		if pd.Pre > 0.10 {
			t.Errorf("%s: pre-fault deviation %.3f exceeds 0.10", row.ID, pd.Pre)
		}
		if pd.During > 0.25 {
			t.Errorf("%s: during-crash deviation %.3f exceeds 0.25", row.ID, pd.During)
		}
		if pd.Post > 0.10 {
			t.Errorf("%s: post-recovery deviation %.3f exceeds 0.10", row.ID, pd.Post)
		}
	}
}

func TestChaosEmptyPlanMatchesNoPlan(t *testing.T) {
	bare, err := Run(chaosOptions(nil))
	if err != nil {
		t.Fatalf("Run without plan: %v", err)
	}
	empty, err := Run(chaosOptions(&faults.Plan{Seed: 99}))
	if err != nil {
		t.Fatalf("Run with empty plan: %v", err)
	}
	if !reflect.DeepEqual(bare, empty) {
		t.Error("an empty fault plan changed the Result; injection must be a no-op without events")
	}
	assertSettled(t, bare)
	if bare.ReclaimedReqs != 0 {
		t.Errorf("fault-free run reclaimed %d requests, want 0", bare.ReclaimedReqs)
	}
	if bare.Fault != nil {
		t.Error("Result.Fault must be nil when the plan has no events")
	}
}

func TestChaosMixedPlanDeterministic(t *testing.T) {
	plan := &faults.Plan{Seed: 1234, Events: []faults.Event{
		{At: 5 * time.Second, Kind: faults.SlowNode, Node: 1, Until: 12 * time.Second, Speed: 0.5},
		{At: 6 * time.Second, Kind: faults.LinkDegrade, Node: 3, Until: 14 * time.Second, Bandwidth: 0.25, Loss: 0.3},
		{At: 8 * time.Second, Kind: faults.DelayAccounting, Node: 2, Until: 16 * time.Second, Delay: 250 * time.Millisecond},
		{At: 10 * time.Second, Kind: faults.DropAccounting, Node: 4, Until: 13 * time.Second, Loss: 0.5},
		{At: 18 * time.Second, Kind: faults.NodeCrash, Node: 1},
		{At: 24 * time.Second, Kind: faults.NodeRecover, Node: 1},
	}}
	run := func() *Result {
		res, err := Run(chaosOptions(plan))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	r1 := run()
	r2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("mixed fault plan is not replayable; every injected decision must come from the plan's seed")
	}
	assertSettled(t, r1)
}

func TestChaosAccountingBlackoutDisablesThenRecovers(t *testing.T) {
	// A total accounting blackout on node 2 long past the streak threshold:
	// the detector must disable the node (so load shifts) and the first
	// report after the window must re-enable it. The node itself never
	// stops serving, so nothing is reclaimed and guarantees hold throughout.
	plan := &faults.Plan{Seed: 7, Events: []faults.Event{
		{At: 10 * time.Second, Kind: faults.DropAccounting, Node: 2, Until: 15 * time.Second},
	}}
	res, err := Run(chaosOptions(plan))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertSettled(t, res)
	if res.ReclaimedReqs != 0 {
		t.Errorf("blackout (no crash) reclaimed %d requests, want 0", res.ReclaimedReqs)
	}
	for _, row := range res.Rows {
		pd, err := res.PhaseDeviation(row.ID, time.Second)
		if err != nil {
			t.Fatalf("PhaseDeviation(%s): %v", row.ID, err)
		}
		t.Logf("%s: pre=%.3f during=%.3f post=%.3f", row.ID, pd.Pre, pd.During, pd.Post)
		if pd.DuringOK && pd.During > 0.25 {
			t.Errorf("%s: deviation %.3f during accounting blackout exceeds 0.25", row.ID, pd.During)
		}
	}
}

func TestChaosPlanTargetingMissingNodeRejected(t *testing.T) {
	opts := chaosOptions(&faults.Plan{Events: []faults.Event{
		{At: time.Second, Kind: faults.NodeCrash, Node: 9},
		{At: 2 * time.Second, Kind: faults.NodeRecover, Node: 9},
	}})
	if _, err := Run(opts); err == nil {
		t.Fatal("plan targeting node 9 of a 4-RPN cluster must be rejected")
	}
}

// overloadOptions is the overload-drill scenario: two reserved subscribers
// offered exactly their reservation, plus a zero-reservation site flooding
// the cluster to 3× its aggregate capacity, on four half-speed RPNs
// (≈50 GRPS each, ≈200 GRPS aggregate vs 600 GRPS offered). The flood must
// be shed at the queue limit while the reserved subscribers ride through a
// mid-run crash inside their guarantee.
func overloadOptions(plan *faults.Plan) Options {
	return Options{
		Subscribers: []qos.Subscriber{
			{ID: "gold", Hosts: []string{"gold.example"}, Reservation: 25},
			{ID: "silver", Hosts: []string{"silver.example"}, Reservation: 25},
			{ID: "free", Hosts: []string{"free.example"}, Reservation: 0, QueueLimit: 256},
		},
		Sources: []workload.Source{
			mustConstSource("gold", "gold.example", 25, qos.GenericCost()),
			mustConstSource("silver", "silver.example", 25, qos.GenericCost()),
			mustConstSource("free", "free.example", 550, qos.GenericCost()),
		},
		NumRPNs:  4,
		RPNSpeed: 0.5,
		Faults:   plan,
		Warmup:   2 * time.Second,
		Duration: 30 * time.Second,
	}
}

// TestChaosOverloadDrill is the acceptance drill for the overload-control
// layer: under 3× offered load with one backend crashing and recovering
// mid-run, reserved subscribers stay within 5% of their guarantee during the
// fault, the spare-capacity flood is shed instead of them, the recovered
// node's admission weight ramps monotonically through slow start back to
// full, and every offered request is accounted for exactly.
func TestChaosOverloadDrill(t *testing.T) {
	res, err := Run(overloadOptions(crashPlan()))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertSettled(t, res)
	if got := res.DispatchedReqs + res.QueuedAtEnd; got != res.AdmittedReqs {
		t.Errorf("admission books broken: admitted=%d but dispatched+queued=%d (%d+%d)",
			res.AdmittedReqs, got, res.DispatchedReqs, res.QueuedAtEnd)
	}

	// Shedding order: the flood is shed, reserved traffic never is.
	if res.ShedReqs == 0 {
		t.Error("3× overload shed nothing; the queue limit must bound the flood")
	}
	free, _ := res.Row("free")
	if free.DroppedReqs == 0 {
		t.Error("free subscriber saw no drops under 3× overload")
	}
	for _, id := range []qos.SubscriberID{"gold", "silver"} {
		row, ok := res.Row(id)
		if !ok {
			t.Fatalf("no row for %s", id)
		}
		if row.DroppedReqs != 0 {
			t.Errorf("%s: %d reserved requests shed; spare traffic must be shed first", id, row.DroppedReqs)
		}
		pd, err := res.PhaseDeviation(id, time.Second)
		if err != nil {
			t.Fatalf("PhaseDeviation(%s): %v", id, err)
		}
		if !pd.DuringOK {
			t.Fatalf("during-fault window too short for %s", id)
		}
		t.Logf("%s: pre=%.3f during=%.3f post=%.3f", id, pd.Pre, pd.During, pd.Post)
		if pd.During > 0.05 {
			t.Errorf("%s: during-fault deviation %.3f exceeds 0.05", id, pd.During)
		}
	}

	// Slow-start ramp: from the recovery instant on, the crashed node's
	// admission weight never moves backwards and ends at full capacity.
	recoverOff := res.Fault.End
	var ramp []float64
	for _, s := range res.NodeWeights[2].Samples() {
		if s.T >= recoverOff {
			ramp = append(ramp, s.Units)
		}
	}
	if len(ramp) == 0 {
		t.Fatal("no weight samples after recovery")
	}
	if !metrics.MonotoneNonDecreasing(ramp, 0) {
		t.Errorf("recovered node's weight ramp is not monotone: %v", ramp[:min(len(ramp), 12)])
	}
	if last := ramp[len(ramp)-1]; last != 1 {
		t.Errorf("recovered node's final weight = %v, want 1", last)
	}
	if ramp[0] >= 1 {
		t.Errorf("weight right after recovery = %v; slow start must begin below full", ramp[0])
	}

	// Dispatch share follows the ramp: nothing lands on the node between
	// failure detection and recovery, and across the slow-start window the
	// per-cycle dispatch count climbs monotonically as the weight steps up.
	const cycle = 100 * time.Millisecond // default accounting cycle
	rampBuckets := make([]float64, slowStartAcctCycles+1)
	var detectGap, afterRecovery int
	for _, s := range res.NodeDispatches[2].Samples() {
		switch {
		case s.T >= res.Fault.Start+time.Second && s.T < recoverOff:
			detectGap++
		case s.T >= recoverOff:
			afterRecovery++
			if i := int((s.T - recoverOff) / cycle); i < len(rampBuckets) {
				rampBuckets[i]++
			}
		}
	}
	if detectGap != 0 {
		t.Errorf("%d dispatches sent to the dead node after the detection window", detectGap)
	}
	if afterRecovery == 0 {
		t.Error("recovered node received no dispatches after recovery")
	}
	if rampBuckets[0] == 0 {
		t.Error("no dispatches in the first slow-start cycle; recovery must reopen traffic immediately")
	}
	if !metrics.MonotoneNonDecreasing(rampBuckets, 0) {
		t.Errorf("per-cycle dispatch share over the slow-start window is not monotone: %v", rampBuckets)
	}
}

// --- white-box unit tests for the chaosRun bookkeeping ---

func chaosFixture(t *testing.T) (*core.Scheduler, *chaosRun, []*RPN) {
	t.Helper()
	dir, err := qos.NewDirectory([]qos.Subscriber{
		{ID: "a", Hosts: []string{"a.example"}, Reservation: 10},
	})
	if err != nil {
		t.Fatalf("directory: %v", err)
	}
	rpns := []*RPN{NewRPN(1, 1, 12.5e6), NewRPN(2, 1, 12.5e6)}
	cfgs := []core.NodeConfig{
		{ID: 1, Capacity: rpns[0].Capacity()},
		{ID: 2, Capacity: rpns[1].Capacity()},
	}
	sched, err := core.New(dir, cfgs, core.Config{})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return sched, newChaosRun(rpns), rpns
}

func TestChaosRunMissedStreakDisablesAndReportReenables(t *testing.T) {
	sched, cs, _ := chaosFixture(t)
	now := time.Unix(0, 0)
	for i := 0; i < unhealthyAfterMissedAcct-1; i++ {
		cs.missAcct(sched, 1, now)
		if !sched.NodeEnabled(1) {
			t.Fatalf("node disabled after %d misses, threshold is %d", i+1, unhealthyAfterMissedAcct)
		}
	}
	cs.missAcct(sched, 1, now)
	if sched.NodeEnabled(1) {
		t.Fatal("node not disabled at the missed-accounting streak threshold")
	}
	// The first delivered report re-enables the node — but at the bottom of
	// the slow-start ramp, not at full weight.
	cs.ackAcct(sched, 1, now)
	if !sched.NodeEnabled(1) {
		t.Fatal("a delivered report must re-enable the node")
	}
	wantStart := 1.0 / float64(slowStartAcctCycles+1)
	if w, _ := sched.NodeWeight(1); w != wantStart {
		t.Errorf("weight right after recovery = %v, want slow-start %v", w, wantStart)
	}
	// One step per accounting cycle back to full capacity.
	prev := wantStart
	for i := 0; i < slowStartAcctCycles; i++ {
		cs.tickAcct(sched, 1, now)
		w, _ := sched.NodeWeight(1)
		if w < prev {
			t.Fatalf("ramp went backwards at cycle %d: %v -> %v", i+1, prev, w)
		}
		prev = w
	}
	if prev != 1 {
		t.Errorf("weight after %d cycles = %v, want 1", slowStartAcctCycles, prev)
	}
	// An untouched node never moved off full weight.
	if w, _ := sched.NodeWeight(2); w != 1 {
		t.Errorf("untouched node weight = %v, want 1", w)
	}
}

func TestChaosRunDeliverAcctStaleAndEpoch(t *testing.T) {
	_, cs, _ := chaosFixture(t)
	mk := func(seq, epoch int, cpu time.Duration) acctMsg {
		return acctMsg{seq: seq, epoch: epoch, cum: core.UsageReport{
			Node:  1,
			Total: qos.Vector{CPUTime: cpu},
			BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
				"a": {Usage: qos.Vector{CPUTime: cpu}, Completed: int(cpu / time.Millisecond)},
			},
		}}
	}

	d1, ok := cs.deliverAcct(1, mk(0, 0, 10*time.Millisecond))
	if !ok || d1.Total.CPUTime != 10*time.Millisecond {
		t.Fatalf("first delivery: delta=%v ok=%v", d1.Total, ok)
	}
	d2, ok := cs.deliverAcct(1, mk(2, 0, 30*time.Millisecond))
	if !ok || d2.Total.CPUTime != 20*time.Millisecond {
		t.Fatalf("in-order delivery: delta=%v ok=%v, want 20ms delta", d2.Total, ok)
	}
	// seq 1 was overtaken by seq 2 inside a delay window: stale, ignored.
	if _, ok := cs.deliverAcct(1, mk(1, 0, 20*time.Millisecond)); ok {
		t.Fatal("stale out-of-order message was accepted; it would double-count usage")
	}
	// New epoch: the node rebooted and counters restarted — the fresh
	// cumulative IS the delta even though it is smaller than the last seen.
	d3, ok := cs.deliverAcct(1, mk(0, 1, 5*time.Millisecond))
	if !ok || d3.Total.CPUTime != 5*time.Millisecond {
		t.Fatalf("post-crash delivery: delta=%v ok=%v, want 5ms delta", d3.Total, ok)
	}
	if d3.BySubscriber["a"].Usage.CPUTime != 5*time.Millisecond {
		t.Errorf("post-crash per-subscriber delta = %v, want 5ms", d3.BySubscriber["a"].Usage.CPUTime)
	}
}

func TestChaosRunCrashReclaimsInflight(t *testing.T) {
	sched, cs, rpns := chaosFixture(t)
	cs.track(1, 101, "a")
	cs.track(1, 102, "a")
	cs.track(2, 201, "a")
	epochBefore := rpns[0].Epoch()
	cs.crash(sched, rpns[0])
	if cs.reclaimed != 2 {
		t.Errorf("reclaimed = %d, want 2 (only node 1's in-flight work)", cs.reclaimed)
	}
	if len(cs.inflight[1]) != 0 || len(cs.inflight[2]) != 1 {
		t.Errorf("inflight after crash: node1=%d node2=%d, want 0 and 1", len(cs.inflight[1]), len(cs.inflight[2]))
	}
	if rpns[0].Epoch() != epochBefore+1 {
		t.Error("crash must bump the node's epoch")
	}
	if !cs.crashed[1] {
		t.Error("node 1 not marked crashed")
	}
	cs.recover(1)
	if cs.crashed[1] {
		t.Error("node 1 still marked crashed after recovery")
	}
	cs.complete(2, 201)
	if got := cs.delivered + cs.reclaimed + cs.inflightTotal(); got != cs.dispatched {
		t.Errorf("settlement: dispatched=%d, delivered+reclaimed+inflight=%d", cs.dispatched, got)
	}
}
