package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gage/internal/qos"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSeriesTotalAndRate(t *testing.T) {
	var s Series
	s.Record(100*time.Millisecond, 1)
	s.Record(200*time.Millisecond, 2.5)
	if got := s.Total(); !almostEqual(got, 3.5, 1e-12) {
		t.Errorf("Total = %v, want 3.5", got)
	}
	if got := s.Rate(time.Second); !almostEqual(got, 3.5, 1e-12) {
		t.Errorf("Rate = %v, want 3.5", got)
	}
	if got := s.Rate(0); got != 0 {
		t.Errorf("Rate(0) = %v, want 0", got)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestIntervalRatesBinning(t *testing.T) {
	var s Series
	// 3 units in [0,1s), 1 unit in [1s,2s), nothing in [2s,3s).
	s.Record(0, 1)
	s.Record(500*time.Millisecond, 2)
	s.Record(1500*time.Millisecond, 1)
	rates := s.IntervalRates(3*time.Second, time.Second)
	want := []float64{3, 1, 0}
	if len(rates) != len(want) {
		t.Fatalf("len(rates) = %d, want %d", len(rates), len(want))
	}
	for i := range want {
		if !almostEqual(rates[i], want[i], 1e-12) {
			t.Errorf("rates[%d] = %v, want %v", i, rates[i], want[i])
		}
	}
}

func TestIntervalRatesDiscardsPartialAndOutOfRange(t *testing.T) {
	var s Series
	s.Record(2500*time.Millisecond, 100) // in the trailing partial interval
	s.Record(-time.Second, 5)            // before the window
	rates := s.IntervalRates(2500*time.Millisecond, time.Second)
	if len(rates) != 2 {
		t.Fatalf("len(rates) = %d, want 2", len(rates))
	}
	for i, r := range rates {
		if r != 0 {
			t.Errorf("rates[%d] = %v, want 0", i, r)
		}
	}
}

func TestIntervalRatesDegenerate(t *testing.T) {
	var s Series
	s.Record(0, 1)
	if got := s.IntervalRates(time.Second, 0); got != nil {
		t.Errorf("zero interval: got %v, want nil", got)
	}
	if got := s.IntervalRates(time.Millisecond, time.Second); got != nil {
		t.Errorf("window < interval: got %v, want nil", got)
	}
}

func TestIntervalRatesUnsortedInput(t *testing.T) {
	var s Series
	s.Record(1500*time.Millisecond, 1)
	s.Record(100*time.Millisecond, 2)
	rates := s.IntervalRates(2*time.Second, time.Second)
	if !almostEqual(rates[0], 2, 1e-12) || !almostEqual(rates[1], 1, 1e-12) {
		t.Errorf("rates = %v, want [2 1]", rates)
	}
}

func TestDeviationZeroForPerfectService(t *testing.T) {
	var s Series
	// Exactly 50 units every second for 10 s.
	for i := 0; i < 10; i++ {
		s.Record(time.Duration(i)*time.Second+500*time.Millisecond, 50)
	}
	dev, err := s.DeviationFromReservation(qos.GRPS(50), 10*time.Second, time.Second)
	if err != nil {
		t.Fatalf("DeviationFromReservation: %v", err)
	}
	if !almostEqual(dev, 0, 1e-12) {
		t.Errorf("deviation = %v, want 0", dev)
	}
}

func TestDeviationAlternatingLoad(t *testing.T) {
	var s Series
	// Alternates 0 and 100 units/s around a 50-unit reservation ⇒ 100%
	// deviation at 1 s averaging, 0% at 2 s averaging. This is the paper's
	// Figure-3 explanation of the 2 s-cycle/1 s-interval data point.
	for i := 0; i < 10; i += 2 {
		s.Record(time.Duration(i)*time.Second+100*time.Millisecond, 100)
	}
	dev1, err := s.DeviationFromReservation(50, 10*time.Second, time.Second)
	if err != nil {
		t.Fatalf("dev1: %v", err)
	}
	if !almostEqual(dev1, 1.0, 1e-12) {
		t.Errorf("1s-interval deviation = %v, want 1.0", dev1)
	}
	dev2, err := s.DeviationFromReservation(50, 10*time.Second, 2*time.Second)
	if err != nil {
		t.Fatalf("dev2: %v", err)
	}
	if !almostEqual(dev2, 0, 1e-12) {
		t.Errorf("2s-interval deviation = %v, want 0", dev2)
	}
}

func TestDeviationErrors(t *testing.T) {
	var s Series
	if _, err := s.DeviationFromReservation(0, time.Second, time.Second); err == nil {
		t.Error("zero reservation must error")
	}
	if _, err := s.DeviationFromReservation(50, time.Millisecond, time.Second); err == nil {
		t.Error("window shorter than interval must error")
	}
}

// Property: widening the averaging interval by an integer factor never
// increases the deviation for a load pattern binned at the base interval
// (Jensen-type smoothing — the paper's observed monotone decrease).
func TestDeviationMonotoneUnderAggregationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s Series
		for i := 0; i < 16; i++ {
			s.Record(time.Duration(i)*time.Second+time.Millisecond, float64(r.Intn(100)))
		}
		d1, err1 := s.DeviationFromReservation(50, 16*time.Second, time.Second)
		d4, err4 := s.DeviationFromReservation(50, 16*time.Second, 4*time.Second)
		return err1 == nil && err4 == nil && d4 <= d1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestThroughputRows(t *testing.T) {
	tp := NewThroughput()
	tp.Offered("b", 100)
	tp.Served("b", 80)
	tp.Dropped("b", 20)
	tp.Offered("a", 50)
	tp.Served("a", 50)
	rows := tp.Rows(10 * time.Second)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].ID != "a" || rows[1].ID != "b" {
		t.Errorf("row order = %v,%v; want a,b", rows[0].ID, rows[1].ID)
	}
	if !almostEqual(rows[1].OfferedRate, 10, 1e-12) ||
		!almostEqual(rows[1].ServedRate, 8, 1e-12) ||
		!almostEqual(rows[1].DroppedRate, 2, 1e-12) {
		t.Errorf("row b = %+v, want 10/8/2", rows[1])
	}
}

func TestThroughputRowsZeroDuration(t *testing.T) {
	tp := NewThroughput()
	tp.Served("a", 5)
	rows := tp.Rows(0)
	if len(rows) != 1 || rows[0].ServedRate != 0 {
		t.Errorf("rows with zero duration = %+v, want zero rates", rows)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice Mean/StdDev must be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10},
		{100, 40},
		{50, 25},
		{-5, 10},
		{150, 40},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty Percentile must be 0")
	}
	// Input must not be mutated (sorted copy).
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Errorf("Percentile mutated input: %v", ys)
	}
}

func TestSamplesSortedCopy(t *testing.T) {
	s := &Series{}
	s.Record(2*time.Second, 1)
	s.Record(time.Second, 2)
	got := s.Samples()
	if len(got) != 2 || got[0].T != time.Second || got[1].T != 2*time.Second {
		t.Fatalf("Samples() = %v, want sorted by offset", got)
	}
	// Mutating the copy must not corrupt the series.
	got[0].Units = 99
	if s.Samples()[0].Units != 2 {
		t.Error("Samples() returned a view into the series, want a copy")
	}
}

func TestMonotoneNonDecreasing(t *testing.T) {
	cases := []struct {
		xs   []float64
		tol  float64
		want bool
	}{
		{nil, 0, true},
		{[]float64{1}, 0, true},
		{[]float64{0, 0.2, 0.4, 1}, 0, true},
		{[]float64{0, 0.4, 0.2}, 0, false},
		{[]float64{0, 0.4, 0.35}, 0.1, true}, // dip within tolerance
		{[]float64{1, 1, 1}, 0, true},
	}
	for i, tc := range cases {
		if got := MonotoneNonDecreasing(tc.xs, tc.tol); got != tc.want {
			t.Errorf("case %d: MonotoneNonDecreasing(%v, %v) = %v, want %v", i, tc.xs, tc.tol, got, tc.want)
		}
	}
}

// TestSeriesConcurrency races recording against every query path and the
// sliding-window trim — the shape the conformance auditor shares with scrape
// handlers. Its value is under -race: any unsynchronized access fails the
// race build.
func TestSeriesConcurrency(t *testing.T) {
	var s Series
	done := make(chan struct{})
	var wg sync.WaitGroup
	spin := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
					f(i)
				}
			}
		}()
	}
	spin(func(i int) { s.Record(time.Duration(i)*time.Millisecond, 1) })
	spin(func(i int) { s.Total(); s.Len(); s.Rate(time.Second) })
	spin(func(i int) { s.IntervalRatesBetween(0, time.Duration(i)*time.Millisecond, 100*time.Millisecond) })
	spin(func(i int) { s.DeviationFromReservation(100, time.Duration(i)*time.Millisecond, 100*time.Millisecond) })
	spin(func(i int) { s.Samples() })
	spin(func(i int) { s.DropBefore(time.Duration(i/2) * time.Millisecond) })
	time.Sleep(100 * time.Millisecond)
	close(done)
	wg.Wait()
}

func TestSeriesDropBefore(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Record(time.Duration(i)*time.Second, float64(i))
	}
	s.DropBefore(5 * time.Second)
	if got := s.Len(); got != 5 {
		t.Fatalf("Len after DropBefore = %d, want 5", got)
	}
	if got := s.Total(); !almostEqual(got, 5+6+7+8+9, 1e-12) {
		t.Errorf("Total after DropBefore = %v, want 35", got)
	}
	s.DropBefore(100 * time.Second)
	if got := s.Len(); got != 0 {
		t.Errorf("Len after dropping everything = %d, want 0", got)
	}
}
