// Package metrics collects throughput and stability measurements for Gage
// experiments: per-subscriber served/dropped counters and the
// deviation-from-reservation statistic that the paper plots in Figure 3.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"gage/internal/qos"
)

// Sample is one recorded completion: at offset t from the measurement start,
// units of work (in generic-request units) were delivered.
type Sample struct {
	// T is the offset from the start of the measurement window.
	T time.Duration
	// Units is the amount of service delivered, in generic-request units.
	Units float64
}

// Series accumulates completion samples for a single subscriber.
// The zero value is ready to use.
//
// Series is safe for concurrent use: a recorder goroutine may Record while
// another computes rates or deviations — the shape the conformance auditor
// shares with scrape handlers. A Series must not be copied after first use.
type Series struct {
	mu      sync.Mutex
	samples []Sample
}

// Record appends a sample. Offsets should be non-decreasing, but Series
// tolerates out-of-order recording (it sorts lazily when queried).
func (s *Series) Record(t time.Duration, units float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, Sample{T: t, Units: units})
}

// Len returns the number of recorded samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Total returns the sum of all recorded units.
func (s *Series) Total() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalLocked()
}

func (s *Series) totalLocked() float64 {
	var sum float64
	for _, x := range s.samples {
		sum += x.Units
	}
	return sum
}

// Rate returns the average delivery rate in units/sec over the window.
func (s *Series) Rate(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalLocked() / window.Seconds()
}

// DropBefore discards samples with offsets earlier than t — how a live
// auditor bounds a sliding-window series.
func (s *Series) DropBefore(t time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.samples[:0]
	for _, x := range s.samples {
		if x.T >= t {
			kept = append(kept, x)
		}
	}
	s.samples = kept
}

// sorted returns samples ordered by offset. Callers hold s.mu.
func (s *Series) sorted() []Sample {
	if sort.SliceIsSorted(s.samples, func(i, j int) bool { return s.samples[i].T < s.samples[j].T }) {
		return s.samples
	}
	cp := make([]Sample, len(s.samples))
	copy(cp, s.samples)
	sort.Slice(cp, func(i, j int) bool { return cp[i].T < cp[j].T })
	return cp
}

// IntervalRates bins the window [0, window) into consecutive intervals of the
// given length and returns the delivery rate (units/sec) in each complete
// interval. A trailing partial interval is discarded.
func (s *Series) IntervalRates(window, interval time.Duration) []float64 {
	return s.IntervalRatesBetween(0, window, interval)
}

// IntervalRatesBetween bins the sub-window [from, to) into consecutive
// intervals of the given length and returns the delivery rate (units/sec)
// in each complete interval; a trailing partial interval is discarded. It
// backs the fault-phase deviation split (pre-fault / during-fault /
// post-recovery windows of one run).
func (s *Series) IntervalRatesBetween(from, to, interval time.Duration) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.intervalRatesBetweenLocked(from, to, interval)
}

func (s *Series) intervalRatesBetweenLocked(from, to, interval time.Duration) []float64 {
	if interval <= 0 || to-from < interval {
		return nil
	}
	n := int((to - from) / interval)
	rates := make([]float64, n)
	for _, x := range s.sorted() {
		t := x.T - from
		if t < 0 || t >= time.Duration(n)*interval {
			continue
		}
		rates[int(t/interval)] += x.Units
	}
	sec := interval.Seconds()
	for i := range rates {
		rates[i] /= sec
	}
	return rates
}

// DeviationFromReservation computes the paper's Figure-3 statistic for this
// subscriber: the mean over complete averaging intervals of
// |measured rate − reservation| / reservation, as a fraction (0.08 = 8%).
func (s *Series) DeviationFromReservation(res qos.GRPS, window, interval time.Duration) (float64, error) {
	return s.DeviationBetween(res, 0, window, interval)
}

// DeviationBetween computes the Figure-3 deviation statistic over the
// sub-window [from, to) only — the per-phase form used to compare a
// subscriber's stability before, during and after an injected fault.
func (s *Series) DeviationBetween(res qos.GRPS, from, to, interval time.Duration) (float64, error) {
	if res <= 0 {
		return 0, fmt.Errorf("metrics: reservation must be positive, got %v", res)
	}
	s.mu.Lock()
	rates := s.intervalRatesBetweenLocked(from, to, interval)
	s.mu.Unlock()
	if len(rates) == 0 {
		return 0, fmt.Errorf("metrics: window [%v, %v) too short for interval %v", from, to, interval)
	}
	var sum float64
	for _, r := range rates {
		sum += math.Abs(r-float64(res)) / float64(res)
	}
	return sum / float64(len(rates)), nil
}

// Throughput tracks per-subscriber offered/served/dropped totals, in
// generic-request units, over one experiment run.
type Throughput struct {
	offered map[qos.SubscriberID]float64
	served  map[qos.SubscriberID]float64
	dropped map[qos.SubscriberID]float64
}

// NewThroughput returns an empty accumulator.
func NewThroughput() *Throughput {
	return &Throughput{
		offered: make(map[qos.SubscriberID]float64),
		served:  make(map[qos.SubscriberID]float64),
		dropped: make(map[qos.SubscriberID]float64),
	}
}

// Offered records units of offered load for a subscriber.
func (t *Throughput) Offered(id qos.SubscriberID, units float64) { t.offered[id] += units }

// Served records units of completed service for a subscriber.
func (t *Throughput) Served(id qos.SubscriberID, units float64) { t.served[id] += units }

// Dropped records units of dropped load for a subscriber.
func (t *Throughput) Dropped(id qos.SubscriberID, units float64) { t.dropped[id] += units }

// Row summarizes one subscriber's totals converted to rates.
type Row struct {
	ID          qos.SubscriberID
	OfferedRate float64 // units/sec
	ServedRate  float64 // units/sec
	DroppedRate float64 // units/sec
}

// Rows returns per-subscriber rates over the given run duration, ordered by
// subscriber ID for stable output.
func (t *Throughput) Rows(run time.Duration) []Row {
	ids := make([]qos.SubscriberID, 0, len(t.offered))
	seen := make(map[qos.SubscriberID]bool, len(t.offered))
	for _, m := range []map[qos.SubscriberID]float64{t.offered, t.served, t.dropped} {
		for id := range m {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sec := run.Seconds()
	rows := make([]Row, 0, len(ids))
	for _, id := range ids {
		r := Row{ID: id}
		if sec > 0 {
			r.OfferedRate = t.offered[id] / sec
			r.ServedRate = t.served[id] / sec
			r.DroppedRate = t.dropped[id] / sec
		}
		rows = append(rows, r)
	}
	return rows
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation; it returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	pos := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Samples returns a copy of the recorded samples ordered by offset, for
// shape analysis (e.g. a recovered node's slow-start weight ramp).
func (s *Series) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.sorted())
	return out
}

// MonotoneNonDecreasing reports whether xs never drops by more than tol
// between consecutive entries — the shape check the overload drill applies
// to a recovered node's slow-start ramp.
func MonotoneNonDecreasing(xs []float64, tol float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1]-tol {
			return false
		}
	}
	return true
}
