package httpwire

import (
	"bytes"
	"testing"
)

// FuzzReadRequest hunts for parser panics and round-trip breakage: any input
// must either fail cleanly or parse into a request that survives
// Write→ReadRequest with its routing-relevant fields (method, target, proto,
// host, path, body) intact — the dispatcher classifies and relays off these,
// so a lossy round trip would silently misroute.
func FuzzReadRequest(f *testing.F) {
	seeds := [][]byte{
		[]byte("GET / HTTP/1.0\r\n\r\n"),
		[]byte("GET /index.html HTTP/1.1\r\nHost: www.site1.example\r\n\r\n"),
		[]byte("GET http://site.example/a/b HTTP/1.1\r\n\r\n"),
		[]byte("POST /submit HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd"),
		// Malformed request lines.
		[]byte("garbage\r\n\r\n"),
		[]byte("GET\r\n\r\n"),
		[]byte("GET  HTTP/1.1\r\n\r\n"),
		[]byte("GET / NOTHTTP\r\n\r\n"),
		[]byte(" / HTTP/1.1\r\n\r\n"),
		// Split / odd Host headers.
		[]byte("GET / HTTP/1.1\r\nHost\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nHost:\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nHost: a\r\nHost: b\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nhOsT:   spaced.example   \r\n\r\n"),
		[]byte("GET http://url.example/ HTTP/1.1\r\nHost: header.example\r\n\r\n"),
		// Content-Length abuse: oversized, negative, non-numeric, short body.
		[]byte("GET / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nContent-Length: 17000000\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nContent-Length: 0x10\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
		// Bare LF line endings and stray CRs.
		[]byte("GET / HTTP/1.1\nHost: lf.example\n\n"),
		[]byte("GET /a\rb HTTP/1.1\r\n\r\n"),
		[]byte("\r\n\r\n"),
		{},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			return // rejected cleanly
		}
		path := req.Path()
		var buf bytes.Buffer
		if err := req.Write(&buf); err != nil {
			t.Fatalf("Write of parsed request failed: %v", err)
		}
		got, err := ParseRequest(buf.Bytes())
		if err != nil {
			t.Fatalf("re-parse of written request failed: %v\nwire: %q", err, buf.Bytes())
		}
		if got.Method != req.Method || got.Target != req.Target || got.Proto != req.Proto {
			t.Fatalf("request line changed: %q %q %q -> %q %q %q",
				req.Method, req.Target, req.Proto, got.Method, got.Target, got.Proto)
		}
		if got.Host != req.Host {
			t.Fatalf("host changed: %q -> %q", req.Host, got.Host)
		}
		if got.Path() != path {
			t.Fatalf("path changed: %q -> %q", path, got.Path())
		}
		if !bytes.Equal(got.Body, req.Body) {
			t.Fatalf("body changed: %q -> %q", req.Body, got.Body)
		}
	})
}
