// Package httpwire implements the minimal HTTP/1.x wire subset Gage needs:
// parsing a request head (request line + headers + optional Content-Length
// body) to extract the Host and path for classification, and writing
// well-formed requests and responses. It is intentionally small — the
// dispatcher only routes bytes; origin-server semantics live in the
// backends.
package httpwire

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/textproto"
	"strconv"
	"strings"
)

// Parse errors.
var (
	// ErrMalformedRequest reports an unparseable request head.
	ErrMalformedRequest = errors.New("httpwire: malformed request")
	// ErrMalformedResponse reports an unparseable response head.
	ErrMalformedResponse = errors.New("httpwire: malformed response")
	// ErrBodyTooLarge reports a Content-Length beyond the configured cap.
	ErrBodyTooLarge = errors.New("httpwire: body too large")
)

// MaxBodyBytes caps bodies read into memory.
const MaxBodyBytes = 16 << 20

// Request is a parsed HTTP request.
type Request struct {
	Method string
	// Target is the request-target as sent (path or absolute URL).
	Target string
	Proto  string
	// Host is resolved from an absolute request-target or the Host header.
	Host   string
	Header map[string]string
	Body   []byte
}

// Path returns the path component of the request target.
func (r *Request) Path() string {
	t := r.Target
	if strings.HasPrefix(t, "http://") || strings.HasPrefix(t, "https://") {
		rest := t[strings.Index(t, "//")+2:]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			return rest[i:]
		}
		return "/"
	}
	return t
}

// ReadRequest parses one request (head and Content-Length body) from r.
func ReadRequest(r *bufio.Reader) (*Request, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformedRequest, line)
	}
	req := &Request{
		Method: parts[0],
		Target: parts[1],
		Proto:  parts[2],
		Header: make(map[string]string),
	}
	if !strings.HasPrefix(req.Proto, "HTTP/") {
		return nil, fmt.Errorf("%w: protocol %q", ErrMalformedRequest, req.Proto)
	}
	if err := readHeaders(r, req.Header); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedRequest, err)
	}
	req.Host = hostOf(req.Target, req.Header)
	body, err := readBody(r, req.Header)
	if err != nil {
		return nil, err
	}
	req.Body = body
	return req, nil
}

// ParseRequest parses a request from a byte slice (the splicer's URL-packet
// payload). A request head that is complete but has a short body is still
// an error: the splicer only dispatches whole requests.
func ParseRequest(b []byte) (*Request, error) {
	return ReadRequest(bufio.NewReader(bytes.NewReader(b)))
}

// Write serializes the request, normalizing Host into a header.
func (r *Request) Write(w io.Writer) error {
	var buf bytes.Buffer
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.0"
	}
	fmt.Fprintf(&buf, "%s %s %s\r\n", r.Method, r.Target, proto)
	if r.Host != "" {
		fmt.Fprintf(&buf, "Host: %s\r\n", r.Host)
	}
	writeHeaders(&buf, r.Header, len(r.Body), "Host")
	buf.Write(r.Body)
	_, err := w.Write(buf.Bytes())
	return err
}

// Response is a parsed HTTP response.
type Response struct {
	Proto      string
	StatusCode int
	Status     string
	Header     map[string]string
	Body       []byte
}

// ReadResponse parses one response from r.
func ReadResponse(r *bufio.Reader) (*Response, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformedResponse, line)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: status code %q", ErrMalformedResponse, parts[1])
	}
	resp := &Response{
		Proto:      parts[0],
		StatusCode: code,
		Header:     make(map[string]string),
	}
	if len(parts) == 3 {
		resp.Status = parts[2]
	}
	if err := readHeaders(r, resp.Header); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedResponse, err)
	}
	body, err := readBody(r, resp.Header)
	if err != nil {
		return nil, err
	}
	resp.Body = body
	return resp, nil
}

// Write serializes the response with a correct Content-Length.
func (r *Response) Write(w io.Writer) error {
	var buf bytes.Buffer
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.0"
	}
	status := r.Status
	if status == "" {
		status = StatusText(r.StatusCode)
	}
	fmt.Fprintf(&buf, "%s %d %s\r\n", proto, r.StatusCode, status)
	writeHeaders(&buf, r.Header, len(r.Body))
	buf.Write(r.Body)
	_, err := w.Write(buf.Bytes())
	return err
}

// StatusText returns standard reason phrases for the codes Gage emits.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	default:
		return "Status " + strconv.Itoa(code)
	}
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func readHeaders(r *bufio.Reader, into map[string]string) error {
	for {
		line, err := readLine(r)
		if err != nil {
			return err
		}
		if line == "" {
			return nil
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return fmt.Errorf("header line %q", line)
		}
		into[textproto.CanonicalMIMEHeaderKey(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
}

func readBody(r *bufio.Reader, header map[string]string) ([]byte, error) {
	cl, ok := header["Content-Length"]
	if !ok {
		return nil, nil
	}
	n, err := strconv.ParseInt(cl, 10, 64)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: content-length %q", ErrMalformedRequest, cl)
	}
	if n > MaxBodyBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrBodyTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("httpwire: short body: %w", err)
	}
	return body, nil
}

func writeHeaders(buf *bytes.Buffer, header map[string]string, bodyLen int, skip ...string) {
	keys := make([]string, 0, len(header))
outer:
	for k := range header {
		for _, s := range skip {
			if k == s {
				continue outer
			}
		}
		if k == "Content-Length" {
			continue
		}
		keys = append(keys, k)
	}
	// Deterministic header order.
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		fmt.Fprintf(buf, "%s: %s\r\n", k, header[k])
	}
	if bodyLen > 0 || header["Content-Length"] != "" {
		fmt.Fprintf(buf, "Content-Length: %d\r\n", bodyLen)
	}
	buf.WriteString("\r\n")
}

func hostOf(target string, header map[string]string) string {
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		rest := target[strings.Index(target, "//")+2:]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			return rest[:i]
		}
		return rest
	}
	return header["Host"]
}
