package httpwire

import (
	"bufio"
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadRequestBasic(t *testing.T) {
	raw := "GET /index.html HTTP/1.1\r\nHost: www.example.com\r\nX-Test: 1\r\n\r\n"
	req, err := ParseRequest([]byte(raw))
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if req.Method != "GET" || req.Target != "/index.html" || req.Proto != "HTTP/1.1" {
		t.Errorf("request line parsed as %q %q %q", req.Method, req.Target, req.Proto)
	}
	if req.Host != "www.example.com" {
		t.Errorf("Host = %q", req.Host)
	}
	if req.Header["X-Test"] != "1" {
		t.Errorf("X-Test = %q", req.Header["X-Test"])
	}
	if req.Path() != "/index.html" {
		t.Errorf("Path = %q", req.Path())
	}
	if len(req.Body) != 0 {
		t.Errorf("body = %q, want empty", req.Body)
	}
}

func TestReadRequestAbsoluteTarget(t *testing.T) {
	raw := "GET http://www.example.com/a/b?q=1 HTTP/1.0\r\n\r\n"
	req, err := ParseRequest([]byte(raw))
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if req.Host != "www.example.com" {
		t.Errorf("Host = %q", req.Host)
	}
	if req.Path() != "/a/b?q=1" {
		t.Errorf("Path = %q", req.Path())
	}
}

func TestReadRequestAbsoluteTargetNoPath(t *testing.T) {
	req, err := ParseRequest([]byte("GET http://h.example HTTP/1.0\r\n\r\n"))
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if req.Host != "h.example" || req.Path() != "/" {
		t.Errorf("host/path = %q %q", req.Host, req.Path())
	}
}

func TestReadRequestWithBody(t *testing.T) {
	raw := "POST /submit HTTP/1.0\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello"
	req, err := ParseRequest([]byte(raw))
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if string(req.Body) != "hello" {
		t.Errorf("body = %q", req.Body)
	}
}

func TestReadRequestHeaderCanonicalization(t *testing.T) {
	raw := "GET / HTTP/1.0\r\nhOsT: h.example\r\ncontent-type:text/html\r\n\r\n"
	req, err := ParseRequest([]byte(raw))
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if req.Host != "h.example" {
		t.Errorf("Host = %q", req.Host)
	}
	if req.Header["Content-Type"] != "text/html" {
		t.Errorf("Content-Type = %q", req.Header["Content-Type"])
	}
}

func TestReadRequestErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"empty", ""},
		{"no protocol", "GET /\r\n\r\n"},
		{"bad protocol", "GET / FTP/1.0\r\n\r\n"},
		{"bad header", "GET / HTTP/1.0\r\nbroken\r\n\r\n"},
		{"bad content length", "GET / HTTP/1.0\r\nContent-Length: x\r\n\r\n"},
		{"negative content length", "GET / HTTP/1.0\r\nContent-Length: -4\r\n\r\n"},
		{"short body", "POST / HTTP/1.0\r\nContent-Length: 10\r\n\r\nhi"},
		{"truncated head", "GET / HTTP/1.0\r\nHost: h"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseRequest([]byte(tt.give)); err == nil {
				t.Errorf("ParseRequest(%q) must fail", tt.give)
			}
		})
	}
}

func TestBodyTooLarge(t *testing.T) {
	raw := "POST / HTTP/1.0\r\nContent-Length: 999999999999\r\n\r\n"
	_, err := ParseRequest([]byte(raw))
	if !errors.Is(err, ErrBodyTooLarge) {
		t.Errorf("err = %v, want ErrBodyTooLarge", err)
	}
}

func TestRequestWriteRoundTrip(t *testing.T) {
	req := &Request{
		Method: "POST",
		Target: "/api",
		Proto:  "HTTP/1.1",
		Host:   "h.example",
		Header: map[string]string{"X-A": "1", "X-B": "2"},
		Body:   []byte("payload"),
	}
	var buf bytes.Buffer
	if err := req.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	if got.Method != req.Method || got.Target != req.Target || got.Host != req.Host {
		t.Errorf("round trip head = %+v", got)
	}
	if string(got.Body) != "payload" {
		t.Errorf("round trip body = %q", got.Body)
	}
	if got.Header["X-A"] != "1" || got.Header["X-B"] != "2" {
		t.Errorf("round trip headers = %v", got.Header)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{
		StatusCode: 200,
		Header:     map[string]string{"Content-Type": "text/html"},
		Body:       []byte("<html></html>"),
	}
	var buf bytes.Buffer
	if err := resp.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	if got.StatusCode != 200 || got.Status != "OK" {
		t.Errorf("status = %d %q", got.StatusCode, got.Status)
	}
	if string(got.Body) != "<html></html>" {
		t.Errorf("body = %q", got.Body)
	}
	if got.Header["Content-Type"] != "text/html" {
		t.Errorf("headers = %v", got.Header)
	}
}

func TestReadResponseErrors(t *testing.T) {
	tests := []string{
		"",
		"BANANA\r\n\r\n",
		"HTTP/1.0 abc OK\r\n\r\n",
	}
	for _, raw := range tests {
		if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("ReadResponse(%q) must fail", raw)
		}
	}
}

func TestStatusText(t *testing.T) {
	tests := []struct {
		code int
		want string
	}{
		{200, "OK"},
		{503, "Service Unavailable"},
		{418, "Status 418"},
	}
	for _, tt := range tests {
		if got := StatusText(tt.code); got != tt.want {
			t.Errorf("StatusText(%d) = %q, want %q", tt.code, got, tt.want)
		}
	}
}

// Property: any request built from sane components survives a write/read
// round trip with its body intact.
func TestRequestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		body := make([]byte, rng.Intn(2048))
		rng.Read(body)
		req := &Request{
			Method: []string{"GET", "POST", "HEAD"}[rng.Intn(3)],
			Target: "/p" + strings.Repeat("x", rng.Intn(30)),
			Proto:  "HTTP/1.0",
			Host:   "host.example",
			Header: map[string]string{"X-Seed": "s"},
			Body:   body,
		}
		var buf bytes.Buffer
		if err := req.Write(&buf); err != nil {
			return false
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return got.Method == req.Method && got.Target == req.Target &&
			got.Host == req.Host && reflect.DeepEqual(got.Body, body) ||
			len(body) == 0 && len(got.Body) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
