package splice

import (
	"fmt"

	"gage/internal/classify"
	"gage/internal/conntrack"
	"gage/internal/httpwire"
	"gage/internal/netsim"
	"gage/internal/qos"
)

// Binding is the connection table's value: the MAC of the RPN servicing a
// spliced connection.
type Binding struct {
	MAC netsim.MAC
}

// PendingRequest is a classified URL request waiting in the scheduler. It
// carries the spliced-connection state the LSM will need.
type PendingRequest struct {
	// Subscriber is the charging entity the request classified to.
	Subscriber qos.SubscriberID
	// Host and Path identify the resource for the back-end web server.
	Host, Path string
	// URLPayload is the raw first payload packet (the HTTP request head).
	URLPayload []byte

	flow      netsim.FlowKey
	clientMAC netsim.MAC
	clientISN uint32
	rdnISN    uint32
}

// Stats counts the RDN's packet classification outcomes (§3.3's three
// categories plus drops).
type Stats struct {
	// Handshakes counts first-leg SYNs emulated.
	Handshakes uint64
	// Requests counts URL packets classified and queued.
	Requests uint64
	// Forwarded counts packets bridged through the connection table.
	Forwarded uint64
	// Unclassified counts URL packets with no matching subscriber.
	Unclassified uint64
	// Dropped counts packets with no half-connection or table entry.
	Dropped uint64
}

// halfConn is the emulated first-leg connection state between SYN and
// dispatch.
type halfConn struct {
	clientMAC  netsim.MAC
	clientISN  uint32
	rdnISN     uint32
	dispatched bool
}

// RDN is the front-end request distribution node on the simulated network.
// It owns the cluster IP; every client packet reaches it first. It is not a
// TCP endpoint — it emulates the three-way handshake itself (§3.3) so the
// first-leg setup stays cheap, and bridges post-dispatch packets at Layer 2.
type RDN struct {
	netw       *netsim.Network
	mac        netsim.MAC
	clusterIP  netsim.IPAddr
	classifier classify.Classifier

	table   *conntrack.Table[Binding]
	half    map[netsim.FlowKey]*halfConn
	nextISN uint32

	// secondaries, when non-empty, receive delegated first-leg work (the
	// asymmetric RDN cluster of §3.2): SYNs and pre-dispatch packets of a
	// connection are forwarded to one secondary round-robin, which emulates
	// the handshake and returns the classified request by control message.
	secondaries []netsim.MAC
	delegated   map[netsim.FlowKey]netsim.MAC
	nextSec     int

	// onRequest receives classified URL requests (the scheduler enqueues).
	onRequest func(*PendingRequest)

	stats Stats
}

// NewRDN attaches a front end to the network at mac, owning clusterIP.
// onRequest is invoked for every classified URL request.
func NewRDN(netw *netsim.Network, mac netsim.MAC, clusterIP netsim.IPAddr,
	classifier classify.Classifier, onRequest func(*PendingRequest)) (*RDN, error) {
	r := &RDN{
		netw:       netw,
		mac:        mac,
		clusterIP:  clusterIP,
		classifier: classifier,
		table:      conntrack.New[Binding](),
		half:       make(map[netsim.FlowKey]*halfConn),
		delegated:  make(map[netsim.FlowKey]netsim.MAC),
		nextISN:    77000,
		onRequest:  onRequest,
	}
	if err := netw.Attach(mac, r); err != nil {
		return nil, err
	}
	if err := netw.RegisterIP(clusterIP, mac); err != nil {
		return nil, err
	}
	return r, nil
}

var _ netsim.Receiver = (*RDN)(nil)

// Stats returns a copy of the packet counters.
func (r *RDN) Stats() Stats { return r.stats }

// Table exposes the connection table (for expiry policies and tests).
func (r *RDN) Table() *conntrack.Table[Binding] { return r.table }

// AddSecondary registers a secondary RDN; once any is registered, all
// first-leg handshake and classification work is delegated.
func (r *RDN) AddSecondary(mac netsim.MAC) {
	r.secondaries = append(r.secondaries, mac)
}

// Receive implements the §3.3 packet classification: (1) handshake packets
// are handled by the emulator (or delegated to a secondary RDN), (2) URL
// packets are classified and queued, (3) everything else is bridged through
// the connection table.
func (r *RDN) Receive(pkt netsim.Packet) {
	// Classified-request hand-backs from secondary RDNs.
	if pkt.DstPort == ControlPort && pkt.Flags.Has(netsim.PSH) {
		r.handleClassified(pkt)
		return
	}
	flow := pkt.Flow()

	// Category 1: first-leg handshake emulation, possibly delegated.
	if pkt.Flags.Has(netsim.SYN) && !pkt.Flags.Has(netsim.ACK) {
		if len(r.secondaries) > 0 {
			sec := r.secondaries[r.nextSec%len(r.secondaries)]
			r.nextSec++
			r.delegated[flow] = sec
			r.stats.Handshakes++
			// Preserve the client's SrcMAC so the secondary can answer it.
			pkt.DstMAC = sec
			r.netw.Send(pkt)
			return
		}
		r.handleSYN(pkt, flow)
		return
	}
	// Pre-dispatch packets of a delegated connection go to its secondary.
	if sec, ok := r.delegated[flow]; ok {
		pkt.DstMAC = sec
		r.stats.Forwarded++
		r.netw.Send(pkt)
		return
	}
	if hc, ok := r.half[flow]; ok && !hc.dispatched {
		if len(pkt.Payload) == 0 {
			// The client's handshake-completing ACK: nothing to do, the
			// emulated connection is already primed.
			return
		}
		// Category 2: the URL packet.
		r.handleURL(pkt, flow, hc)
		return
	}

	// Category 3: bridge through the connection table.
	if b, ok := r.table.Lookup(fourTuple(flow)); ok {
		pkt.SrcMAC = r.mac
		pkt.DstMAC = b.MAC
		r.stats.Forwarded++
		r.netw.Send(pkt)
		return
	}
	r.stats.Dropped++
}

// handleSYN emulates the server side of the first-leg three-way handshake.
func (r *RDN) handleSYN(pkt netsim.Packet, flow netsim.FlowKey) {
	hc := &halfConn{
		clientMAC: pkt.SrcMAC,
		clientISN: pkt.Seq,
		rdnISN:    r.allocISN(),
	}
	r.half[flow] = hc
	r.stats.Handshakes++
	r.netw.Send(netsim.Packet{
		SrcMAC:  r.mac,
		DstMAC:  pkt.SrcMAC,
		SrcIP:   r.clusterIP,
		DstIP:   pkt.SrcIP,
		SrcPort: pkt.DstPort,
		DstPort: pkt.SrcPort,
		Seq:     hc.rdnISN,
		Ack:     pkt.Seq + 1,
		Flags:   netsim.SYN | netsim.ACK,
	})
}

// handleURL classifies the first payload packet by the host part of its URL
// and hands the request to the scheduler. Unclassifiable connections are
// torn down: the half-connection state is dropped, so the client's
// retransmissions die quietly and its Go-Back-N sender eventually gives up.
func (r *RDN) handleURL(pkt netsim.Packet, flow netsim.FlowKey, hc *halfConn) {
	req, err := httpwire.ParseRequest(pkt.Payload)
	if err != nil {
		r.stats.Unclassified++
		delete(r.half, flow)
		return
	}
	sub, ok := r.classifier.Classify(req.Host, req.Path())
	if !ok {
		r.stats.Unclassified++
		delete(r.half, flow)
		return
	}
	hc.dispatched = true
	r.stats.Requests++
	r.onRequest(&PendingRequest{
		Subscriber: sub,
		Host:       req.Host,
		Path:       req.Path(),
		URLPayload: pkt.Payload,
		flow:       flow,
		clientMAC:  hc.clientMAC,
		clientISN:  hc.clientISN,
		rdnISN:     hc.rdnISN,
	})
}

// handleClassified ingests a classified-request control message from a
// secondary RDN: it resolves the subscriber and queues the pending request
// exactly as the primary's own classifier path would.
func (r *RDN) handleClassified(pkt netsim.Packet) {
	msg, err := decodeControl(pkt.Payload)
	if err != nil {
		r.stats.Dropped++
		return
	}
	flow := netsim.FlowKey{
		SrcIP:   msg.ClientIP,
		DstIP:   r.clusterIP,
		SrcPort: msg.ClientPort,
		DstPort: WebPort,
	}
	delete(r.delegated, flow)
	req, err := httpwire.ParseRequest(msg.URL)
	if err != nil {
		r.stats.Unclassified++
		return
	}
	sub, ok := r.classifier.Classify(req.Host, req.Path())
	if !ok {
		r.stats.Unclassified++
		return
	}
	r.stats.Requests++
	r.onRequest(&PendingRequest{
		Subscriber: sub,
		Host:       req.Host,
		Path:       req.Path(),
		URLPayload: msg.URL,
		flow:       flow,
		clientMAC:  msg.ClientMAC,
		clientISN:  msg.ClientISN,
		rdnISN:     msg.RDNISN,
	})
}

// Dispatch sends a scheduled request to the chosen RPN's local service
// manager and installs the connection-table entry that bridges all of the
// client's subsequent packets to that RPN.
func (r *RDN) Dispatch(req *PendingRequest, rpnMAC netsim.MAC) error {
	if req == nil {
		return fmt.Errorf("splice: nil request")
	}
	r.table.Insert(fourTuple(req.flow), Binding{MAC: rpnMAC}, r.netw.Now())
	delete(r.half, req.flow)
	msg := controlMsg{
		ClientIP:   req.flow.SrcIP,
		ClientPort: req.flow.SrcPort,
		ClientMAC:  req.clientMAC,
		ClientISN:  req.clientISN,
		RDNISN:     req.rdnISN,
		URL:        req.URLPayload,
	}
	r.netw.Send(netsim.Packet{
		SrcMAC:  r.mac,
		DstMAC:  rpnMAC,
		SrcIP:   r.clusterIP,
		DstIP:   req.flow.DstIP,
		SrcPort: ControlPort,
		DstPort: ControlPort,
		Flags:   netsim.PSH,
		Payload: msg.encode(),
	})
	return nil
}

func (r *RDN) allocISN() uint32 {
	isn := r.nextISN
	r.nextISN += 98765
	return isn
}

// fourTuple converts a netsim flow key into the conntrack key.
func fourTuple(f netsim.FlowKey) conntrack.FourTuple {
	return conntrack.FourTuple{
		SrcIP:   f.SrcIP,
		DstIP:   f.DstIP,
		SrcPort: f.SrcPort,
		DstPort: f.DstPort,
	}
}
