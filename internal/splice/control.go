package splice

import (
	"encoding/binary"
	"errors"
	"fmt"

	"gage/internal/netsim"
)

// controlHeaderLen is the fixed-size prefix of a dispatched-request message.
const controlHeaderLen = 4 + 2 + 8 + 4 + 4

// ErrBadControl reports an undecodable dispatched-request message.
var ErrBadControl = errors.New("splice: malformed control message")

// controlMsg is the connection state the RDN hands to an RPN's local
// service manager when dispatching a request (the "Dispatched Request"
// arrow of Figure 1): everything the LSM needs to splice the client's
// first-leg connection onto a fresh local connection.
type controlMsg struct {
	ClientIP   netsim.IPAddr
	ClientPort uint16
	ClientMAC  netsim.MAC
	ClientISN  uint32 // sequence number of the client's SYN
	RDNISN     uint32 // ISN the RDN chose for the emulated first leg
	URL        []byte // the first payload packet, carrying the HTTP request
}

// encode serializes the message into a control-packet payload.
func (m controlMsg) encode() []byte {
	buf := make([]byte, controlHeaderLen+len(m.URL))
	copy(buf[0:4], m.ClientIP[:])
	binary.BigEndian.PutUint16(buf[4:6], m.ClientPort)
	binary.BigEndian.PutUint64(buf[6:14], uint64(m.ClientMAC))
	binary.BigEndian.PutUint32(buf[14:18], m.ClientISN)
	binary.BigEndian.PutUint32(buf[18:22], m.RDNISN)
	copy(buf[controlHeaderLen:], m.URL)
	return buf
}

// decodeControl parses a control-packet payload.
func decodeControl(b []byte) (controlMsg, error) {
	if len(b) < controlHeaderLen {
		return controlMsg{}, fmt.Errorf("%w: %d bytes", ErrBadControl, len(b))
	}
	var m controlMsg
	copy(m.ClientIP[:], b[0:4])
	m.ClientPort = binary.BigEndian.Uint16(b[4:6])
	m.ClientMAC = netsim.MAC(binary.BigEndian.Uint64(b[6:14]))
	m.ClientISN = binary.BigEndian.Uint32(b[14:18])
	m.RDNISN = binary.BigEndian.Uint32(b[18:22])
	m.URL = b[controlHeaderLen:]
	return m, nil
}
