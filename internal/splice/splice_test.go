package splice

import (
	"strings"
	"testing"
	"time"

	"gage/internal/httpwire"
	"gage/internal/netsim"
	"gage/internal/qos"
)

func testSystem(t *testing.T, numRPNs int) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{
		Subscribers: []qos.Subscriber{
			{ID: "site1", Hosts: []string{"www.site1.example"}, Reservation: 100},
			{ID: "site2", Hosts: []string{"www.site2.example"}, Reservation: 50},
		},
		NumRPNs: numRPNs,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestControlMessageRoundTrip(t *testing.T) {
	msg := controlMsg{
		ClientIP:   netsim.IPAddr{10, 0, 2, 1},
		ClientPort: 49152,
		ClientMAC:  1000,
		ClientISN:  12345,
		RDNISN:     77000,
		URL:        []byte("GET / HTTP/1.0\r\nHost: h\r\n\r\n"),
	}
	got, err := decodeControl(msg.encode())
	if err != nil {
		t.Fatalf("decodeControl: %v", err)
	}
	if got.ClientIP != msg.ClientIP || got.ClientPort != msg.ClientPort ||
		got.ClientMAC != msg.ClientMAC || got.ClientISN != msg.ClientISN ||
		got.RDNISN != msg.RDNISN || string(got.URL) != string(msg.URL) {
		t.Errorf("round trip = %+v, want %+v", got, msg)
	}
}

func TestControlMessageTooShort(t *testing.T) {
	if _, err := decodeControl([]byte{1, 2, 3}); err == nil {
		t.Error("short control message must fail")
	}
}

func TestRemapInbound(t *testing.T) {
	pkt := netsim.Packet{
		DstIP: netsim.IPAddr{10, 0, 0, 1},
		Ack:   1000,
		Flags: netsim.ACK,
	}
	RemapInbound(&pkt, netsim.IPAddr{10, 0, 1, 1}, 500)
	if pkt.DstIP != (netsim.IPAddr{10, 0, 1, 1}) {
		t.Errorf("DstIP = %v", pkt.DstIP)
	}
	if pkt.Ack != 1500 {
		t.Errorf("Ack = %d, want 1500", pkt.Ack)
	}
	// Non-ACK packets keep their ack field untouched.
	syn := netsim.Packet{Flags: netsim.SYN, Ack: 7}
	RemapInbound(&syn, netsim.IPAddr{10, 0, 1, 1}, 500)
	if syn.Ack != 7 {
		t.Errorf("SYN ack remapped to %d, want 7", syn.Ack)
	}
}

func TestRemapOutbound(t *testing.T) {
	pkt := netsim.Packet{
		SrcIP: netsim.IPAddr{10, 0, 1, 1},
		Seq:   2000,
	}
	RemapOutbound(&pkt, netsim.IPAddr{10, 0, 0, 1}, 5, 9, 500)
	if pkt.SrcIP != (netsim.IPAddr{10, 0, 0, 1}) {
		t.Errorf("SrcIP = %v", pkt.SrcIP)
	}
	if pkt.Seq != 1500 {
		t.Errorf("Seq = %d, want 1500", pkt.Seq)
	}
	if pkt.SrcMAC != 5 || pkt.DstMAC != 9 {
		t.Errorf("MACs = %d→%d, want 5→9", pkt.SrcMAC, pkt.DstMAC)
	}
}

func TestRemapRoundTripProperty(t *testing.T) {
	// delta wrap-around: remapping out then accounting back in is identity
	// on the sequence space even across uint32 wrap.
	for _, delta := range []uint32{0, 1, 500, 1 << 31, ^uint32(0)} {
		out := netsim.Packet{Seq: 42, Flags: netsim.ACK, Ack: 42}
		RemapOutbound(&out, netsim.IPAddr{}, 0, 0, delta)
		in := netsim.Packet{Ack: out.Seq, Flags: netsim.ACK}
		RemapInbound(&in, netsim.IPAddr{}, delta)
		if in.Ack != 42 {
			t.Errorf("delta %d: round trip ack = %d, want 42", delta, in.Ack)
		}
	}
}

func TestEndToEndRequestThroughSplicedCluster(t *testing.T) {
	sys := testSystem(t, 2)
	client, err := sys.NewClient(0)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	var resp *httpwire.Response
	err = client.Get("www.site1.example", "/hello.html", func(r *httpwire.Response) { resp = r })
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := sys.Engine.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if resp == nil {
		t.Fatal("no response received")
	}
	if resp.StatusCode != 200 {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(resp.Body), "/hello.html") {
		t.Errorf("body = %q, must echo the path", resp.Body)
	}
	if got := sys.RDN.Stats().Requests; got != 1 {
		t.Errorf("RDN classified %d requests, want 1", got)
	}
}

func TestResponseBypassesRDN(t *testing.T) {
	// The point of distributed splicing: response data flows RPN→client
	// directly; the RDN only ever forwards client→RPN packets.
	sys := testSystem(t, 1)
	client, err := sys.NewClient(0)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	var rdnSawResponseData bool
	sys.Net.Tap(func(p netsim.Packet) {
		if p.DstMAC == rdnMAC && len(p.Payload) > 0 && p.SrcPort == WebPort {
			rdnSawResponseData = true
		}
	})
	done := false
	if err := client.Get("www.site1.example", "/x", func(*httpwire.Response) { done = true }); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := sys.Engine.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if !done {
		t.Fatal("request did not complete")
	}
	if rdnSawResponseData {
		t.Error("response data must not traverse the RDN")
	}
}

func TestClientSeesConsistentSequenceSpace(t *testing.T) {
	// The client's stack verifies sequence continuity implicitly: data
	// whose seq does not match rcvNxt is never delivered. A successful
	// multi-segment transfer therefore proves the remapping is seamless.
	sys, err := NewSystem(SystemConfig{
		Subscribers: []qos.Subscriber{
			{ID: "site1", Hosts: []string{"www.site1.example"}, Reservation: 100},
		},
		NumRPNs: 1,
		App: func(req *httpwire.Request) *httpwire.Response {
			return &httpwire.Response{
				StatusCode: 200,
				Header:     map[string]string{},
				Body:       make([]byte, 5*netsim.MSS+77), // forces 6 segments
			}
		},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	client, err := sys.NewClient(0)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	var resp *httpwire.Response
	if err := client.Get("www.site1.example", "/big", func(r *httpwire.Response) { resp = r }); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := sys.Engine.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if resp == nil {
		t.Fatal("large response not fully received")
	}
	if len(resp.Body) != 5*netsim.MSS+77 {
		t.Errorf("body = %d bytes, want %d", len(resp.Body), 5*netsim.MSS+77)
	}
	lsm := sys.LSM(1)
	st := lsm.Stats()
	if st.Spliced != 1 {
		t.Errorf("splices = %d, want 1", st.Spliced)
	}
	if st.RemappedOut < 6 {
		t.Errorf("outbound remaps = %d, want ≥6 (one per data segment)", st.RemappedOut)
	}
	if st.RemappedIn < 1 {
		t.Errorf("inbound remaps = %d, want ≥1 (client ACKs bridged)", st.RemappedIn)
	}
}

func TestManyClientsAcrossSubscribersAndRPNs(t *testing.T) {
	sys := testSystem(t, 4)
	const n = 20
	responses := 0
	for i := 0; i < n; i++ {
		client, err := sys.NewClient(i)
		if err != nil {
			t.Fatalf("NewClient(%d): %v", i, err)
		}
		host := "www.site1.example"
		if i%2 == 1 {
			host = "www.site2.example"
		}
		if err := client.Get(host, "/p", func(*httpwire.Response) { responses++ }); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	if err := sys.Engine.RunFor(2 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if responses != n {
		t.Errorf("responses = %d, want %d", responses, n)
	}
	if got := sys.Enqueued(); got != n {
		t.Errorf("enqueued = %d, want %d", got, n)
	}
	if got := sys.Rejected(); got != 0 {
		t.Errorf("rejected = %d, want 0", got)
	}
}

func TestUnknownHostNotServed(t *testing.T) {
	sys := testSystem(t, 1)
	client, err := sys.NewClient(0)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	served := false
	if err := client.Get("www.unknown.example", "/x", func(*httpwire.Response) { served = true }); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := sys.Engine.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if served {
		t.Error("unclassifiable request must not be served")
	}
	if got := sys.RDN.Stats().Unclassified; got != 1 {
		t.Errorf("unclassified = %d, want 1", got)
	}
}

func TestAccountingFlowsBackToScheduler(t *testing.T) {
	sys := testSystem(t, 1)
	client, err := sys.NewClient(0)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if err := client.Get("www.site1.example", "/x", nil); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := sys.Engine.RunFor(500 * time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	// After at least one accounting cycle, the scheduler's predictor for
	// site1 reflects the configured per-request cost (generic).
	predicted, ok := sys.Sched.Predicted("site1")
	if !ok {
		t.Fatal("predictor missing for site1")
	}
	if predicted != qos.GenericCost() {
		t.Errorf("predicted = %v, want generic (exact feedback)", predicted)
	}
	out, _ := sys.Sched.Outstanding(1)
	if !out.IsZero() {
		t.Errorf("outstanding after completion = %v, want zero", out)
	}
}

func TestFigure2MessageSequence(t *testing.T) {
	// Trace the wire and check the canonical splicing exchange in order:
	// SYN → SYNACK → ACK → URL → (dispatch) → response direct to client.
	sys := testSystem(t, 1)
	client, err := sys.NewClient(0)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	var trace []string
	sys.Net.Tap(func(p netsim.Packet) {
		switch {
		case p.Flags.Has(netsim.SYN) && !p.Flags.Has(netsim.ACK):
			trace = append(trace, "SYN")
		case p.Flags.Has(netsim.SYN | netsim.ACK):
			trace = append(trace, "SYNACK")
		case p.DstPort == ControlPort:
			trace = append(trace, "DISPATCH")
		case len(p.Payload) > 0 && p.DstMAC == rdnMAC:
			trace = append(trace, "URL")
		case len(p.Payload) > 0 && p.SrcPort == WebPort:
			trace = append(trace, "RESPONSE")
		}
	})
	if err := client.Get("www.site1.example", "/x", nil); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := sys.Engine.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	got := strings.Join(trace, " ")
	want := "SYN SYNACK URL DISPATCH RESPONSE"
	if got != want {
		t.Errorf("message sequence = %q, want %q", got, want)
	}
}

func TestSplicingSurvivesPacketLoss(t *testing.T) {
	// A lossy LAN: retransmitted handshakes, URLs and response segments all
	// traverse the splicing path (remapped consistently) and the request
	// still completes. Dispatch control frames are exempt, as the paper's
	// RDN→RPN dispatch channel is internal to the cluster fabric.
	sys, err := NewSystem(SystemConfig{
		Subscribers: []qos.Subscriber{
			{ID: "site1", Hosts: []string{"www.site1.example"}, Reservation: 100},
		},
		NumRPNs: 1,
		App: func(req *httpwire.Request) *httpwire.Response {
			return &httpwire.Response{
				StatusCode: 200,
				Header:     map[string]string{},
				Body:       make([]byte, 3*netsim.MSS),
			}
		},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	sys.Net.SetLoss(0.10, 7)
	sys.Net.LossExempt = func(p netsim.Packet) bool { return p.DstPort == ControlPort }

	client, err := sys.NewClient(0)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	var resp *httpwire.Response
	if err := client.Get("www.site1.example", "/big", func(r *httpwire.Response) { resp = r }); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := sys.Engine.RunFor(20 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if resp == nil {
		t.Fatal("request did not survive the lossy network")
	}
	if len(resp.Body) != 3*netsim.MSS {
		t.Errorf("body = %d bytes, want %d intact", len(resp.Body), 3*netsim.MSS)
	}
	if sys.Net.Dropped() == 0 {
		t.Error("the lossy network should have dropped frames")
	}
}

func TestTeardownRetiresSpliceAndTableState(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Subscribers: []qos.Subscriber{
			{ID: "site1", Hosts: []string{"www.site1.example"}, Reservation: 100},
		},
		NumRPNs: 1,
		ConnTTL: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	client, err := sys.NewClient(0)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	done := false
	if err := client.Get("www.site1.example", "/x", func(*httpwire.Response) { done = true }); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := sys.Engine.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if !done {
		t.Fatal("request did not complete")
	}
	// The server's FIN plus the client's final ACK retire the LSM state.
	if got := sys.LSM(1).ActiveSplices(); got != 0 {
		t.Errorf("active splices after teardown = %d, want 0", got)
	}
	// The RDN's connection-table entry ages out after the TTL.
	if got := sys.RDN.Table().Len(); got != 1 {
		t.Fatalf("table before expiry = %d entries, want 1", got)
	}
	if err := sys.Engine.RunFor(4 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := sys.RDN.Table().Len(); got != 0 {
		t.Errorf("table after TTL = %d entries, want 0", got)
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(SystemConfig{NumRPNs: 0}); err == nil {
		t.Error("zero RPNs must be rejected")
	}
	if _, err := NewSystem(SystemConfig{NumRPNs: 1}); err == nil {
		t.Error("no subscribers must be rejected")
	}
}
