package splice

import (
	"gage/internal/netsim"
)

// SecondaryRDN is one node of the asymmetric RDN cluster (§3.2, Figure 1):
// it shoulders the time-consuming first-leg work — TCP handshake emulation
// and URL classification — while the primary RDN keeps all queueing and
// scheduling decisions. The primary forwards a new connection's packets to
// a secondary until the URL is classified; the secondary then hands the
// pending request back to the primary as a control message.
type SecondaryRDN struct {
	netw      *netsim.Network
	mac       netsim.MAC
	clusterIP netsim.IPAddr
	primary   netsim.MAC

	half    map[netsim.FlowKey]*halfConn
	nextISN uint32

	stats Stats
}

// NewSecondaryRDN attaches a secondary front end at mac, answering for
// clusterIP on connections the primary delegates to it.
func NewSecondaryRDN(netw *netsim.Network, mac netsim.MAC, clusterIP netsim.IPAddr, primary netsim.MAC) (*SecondaryRDN, error) {
	s := &SecondaryRDN{
		netw:      netw,
		mac:       mac,
		clusterIP: clusterIP,
		primary:   primary,
		half:      make(map[netsim.FlowKey]*halfConn),
		nextISN:   41000,
	}
	if err := netw.Attach(mac, s); err != nil {
		return nil, err
	}
	return s, nil
}

var _ netsim.Receiver = (*SecondaryRDN)(nil)

// Stats returns a copy of the secondary's counters.
func (s *SecondaryRDN) Stats() Stats { return s.stats }

// Receive handles connection packets the primary delegated: SYNs get an
// emulated SYNACK straight to the client; the URL packet is parsed and
// returned to the primary as a classified-request control message.
func (s *SecondaryRDN) Receive(pkt netsim.Packet) {
	flow := pkt.Flow()
	if pkt.Flags.Has(netsim.SYN) && !pkt.Flags.Has(netsim.ACK) {
		hc := &halfConn{
			clientMAC: originMAC(pkt),
			clientISN: pkt.Seq,
			rdnISN:    s.allocISN(),
		}
		s.half[flow] = hc
		s.stats.Handshakes++
		s.netw.Send(netsim.Packet{
			SrcMAC:  s.mac,
			DstMAC:  hc.clientMAC,
			SrcIP:   s.clusterIP,
			DstIP:   pkt.SrcIP,
			SrcPort: pkt.DstPort,
			DstPort: pkt.SrcPort,
			Seq:     hc.rdnISN,
			Ack:     pkt.Seq + 1,
			Flags:   netsim.SYN | netsim.ACK,
		})
		return
	}
	hc, ok := s.half[flow]
	if !ok {
		s.stats.Dropped++
		return
	}
	if len(pkt.Payload) == 0 {
		return // the handshake-completing ACK
	}
	// The URL packet: hand the connection state plus URL to the primary,
	// whose scheduler owns the queueing decision.
	delete(s.half, flow)
	s.stats.Requests++
	msg := controlMsg{
		ClientIP:   flow.SrcIP,
		ClientPort: flow.SrcPort,
		ClientMAC:  hc.clientMAC,
		ClientISN:  hc.clientISN,
		RDNISN:     hc.rdnISN,
		URL:        pkt.Payload,
	}
	s.netw.Send(netsim.Packet{
		SrcMAC:  s.mac,
		DstMAC:  s.primary,
		SrcIP:   flow.SrcIP,
		DstIP:   flow.DstIP,
		SrcPort: ControlPort,
		DstPort: ControlPort,
		Flags:   netsim.PSH,
		Payload: msg.encode(),
	})
}

func (s *SecondaryRDN) allocISN() uint32 {
	isn := s.nextISN
	s.nextISN += 86243
	return isn
}

// originMAC recovers the client's MAC from a delegated frame: the primary
// rewrites SrcMAC when it bridges, so it stamps the original into the frame
// before delegating. For simplicity the primary preserves the client MAC in
// SrcMAC on delegated frames.
func originMAC(pkt netsim.Packet) netsim.MAC { return pkt.SrcMAC }
