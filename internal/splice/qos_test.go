package splice

import (
	"testing"
	"time"

	"gage/internal/httpwire"
	"gage/internal/qos"
)

// TestQoSIsolationOverSplicedCluster runs a miniature Table-1 experiment
// through the full packet-level stack: real TCP-lite handshakes, splicing,
// per-packet remapping, accounting messages — not the resource-station
// simulator. A hog site floods the cluster; the vip site must still be
// served at its offered rate, and the hog must be throttled to its
// guarantee plus the spare.
func TestQoSIsolationOverSplicedCluster(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Subscribers: []qos.Subscriber{
			{ID: "vip", Hosts: []string{"vip.example"}, Reservation: 70, QueueLimit: 64},
			{ID: "hog", Hosts: []string{"hog.example"}, Reservation: 10, QueueLimit: 64},
		},
		NumRPNs: 1, // one 100-GRPS node: the cluster is the bottleneck
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}

	// A few client hosts, each issuing many requests (one connection per
	// request, distinct ephemeral ports).
	clients := make([]*Client, 4)
	for i := range clients {
		clients[i], err = sys.NewClient(i)
		if err != nil {
			t.Fatalf("NewClient(%d): %v", i, err)
		}
	}

	const (
		run     = 12 * time.Second
		measure = 10 * time.Second // skip the first 2 s of warmup
	)
	served := map[string]int{}
	issue := func(host, site string, rate float64, client *Client) {
		gap := time.Duration(float64(time.Second) / rate)
		n := int(run / gap)
		for i := 0; i < n; i++ {
			at := time.Duration(i+1) * gap
			sys.Engine.At((time.Time{}).Add(at), func() {
				// Connection setup over the simulated LAN cannot fail.
				_ = client.Get(host, "/index.html", func(r *httpwire.Response) {
					if r.StatusCode == 200 && sys.Engine.Now().Sub(time.Time{}) >= run-measure {
						served[site]++
					}
				})
			})
		}
	}
	issue("vip.example", "vip", 60, clients[0])
	issue("hog.example", "hog", 100, clients[1])
	issue("hog.example", "hog", 100, clients[2])

	if err := sys.Engine.RunFor(run + time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}

	vipRate := float64(served["vip"]) / measure.Seconds()
	hogRate := float64(served["hog"]) / measure.Seconds()
	t.Logf("vip %.1f req/s, hog %.1f req/s, rejected %d", vipRate, hogRate, sys.Rejected())

	// vip offered 60 < its 70 reservation: everything must be served.
	if vipRate < 55 || vipRate > 63 {
		t.Errorf("vip served = %.1f req/s, want ≈60 despite the hog's 200 req/s flood", vipRate)
	}
	// hog gets its 10 plus the ≈30 spare, nowhere near its 200 offered.
	if hogRate < 20 || hogRate > 55 {
		t.Errorf("hog served = %.1f req/s, want ≈40 (guarantee + spare)", hogRate)
	}
	// The hog's excess must be rejected at the queue.
	if sys.Rejected() == 0 {
		t.Error("hog overload must cause queue rejections")
	}
}
