// Package splice implements Gage's distributed TCP connection splicing
// (§3.2–§3.3) over the netsim substrate: the front-end RDN emulates the
// first-leg three-way handshake, classifies URL packets, and bridges
// subsequent packets through a connection table; each back-end RPN's local
// service manager sets up the second-leg connection with its local TCP
// stack and rewrites sequence numbers and addresses on every packet in both
// directions, so responses flow from the RPN straight to the client without
// revisiting the front end.
package splice

import (
	"gage/internal/netsim"
)

// Well-known ports on the simulated cluster.
const (
	// WebPort is the service port the cluster exposes.
	WebPort = 80
	// ControlPort carries dispatched-request messages RDN→LSM.
	ControlPort = 9
)

// RemapInbound rewrites a bridged client packet for the RPN's local stack:
// the destination address becomes the RPN's own IP (the client addressed
// the cluster IP) and the acknowledgement number moves from the RDN's
// first-leg sequence space into the local server's space by delta = s − r,
// where s is the server ISN and r the RDN ISN. This is the per-packet
// incoming cost of Table 3 (1.3 µs in the paper).
func RemapInbound(pkt *netsim.Packet, rpnIP netsim.IPAddr, delta uint32) {
	pkt.DstIP = rpnIP
	if pkt.Flags.Has(netsim.ACK) {
		pkt.Ack += delta
	}
}

// RemapOutbound rewrites a server packet for the client: the source address
// becomes the cluster IP, the sequence number moves back into the RDN's
// first-leg space (seq − delta), and the frame is re-addressed directly to
// the client's MAC so the response bypasses the front end. This is the
// per-packet outgoing cost of Table 3 (4.6 µs in the paper).
func RemapOutbound(pkt *netsim.Packet, clusterIP netsim.IPAddr, srcMAC, dstMAC netsim.MAC, delta uint32) {
	pkt.SrcIP = clusterIP
	pkt.Seq -= delta
	pkt.SrcMAC = srcMAC
	pkt.DstMAC = dstMAC
}
