package splice

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"time"

	"gage/internal/accounting"
	"gage/internal/classify"
	"gage/internal/core"
	"gage/internal/httpwire"
	"gage/internal/netsim"
	"gage/internal/qos"
	"gage/internal/vclock"
)

// WebApp produces the back-end web server's response to a request.
type WebApp func(req *httpwire.Request) *httpwire.Response

// DefaultWebApp serves a fixed HTML page for any request.
func DefaultWebApp(req *httpwire.Request) *httpwire.Response {
	body := fmt.Sprintf("<html><body>%s%s</body></html>", req.Host, req.Path())
	return &httpwire.Response{
		StatusCode: 200,
		Header:     map[string]string{"Content-Type": "text/html"},
		Body:       []byte(body),
	}
}

// SystemConfig assembles a full simulated Gage cluster on netsim.
type SystemConfig struct {
	// Subscribers defines sites, hosts and reservations.
	Subscribers []qos.Subscriber
	// NumRPNs is the back-end count.
	NumRPNs int
	// NumSecondaryRDNs adds an asymmetric front-end tier (§3.2): secondary
	// RDNs take over first-leg handshakes and URL classification while the
	// primary keeps all scheduling decisions. Zero means the primary does
	// everything, as in the paper's evaluated prototype.
	NumSecondaryRDNs int
	// App handles requests at every RPN (DefaultWebApp when nil).
	App WebApp
	// RequestCost is charged per completed request (generic when zero).
	RequestCost qos.Vector
	// NodeCapacity is each RPN's declared capacity (100 GRPS when zero).
	NodeCapacity qos.Vector
	// SchedCycle and AcctCycle default to 10 ms and 100 ms.
	SchedCycle, AcctCycle time.Duration
	// Latency is the per-hop network latency (50 µs when zero).
	Latency time.Duration
	// ConnTTL expires idle connection-table entries (default 60 s).
	ConnTTL time.Duration
}

// System is a complete spliced Gage cluster on a virtual-clock network:
// front-end RDN, core scheduler, and NumRPNs back ends each with a local
// service manager, a TCP stack, a web application and an accountant.
type System struct {
	Engine *vclock.Engine
	Net    *netsim.Network
	RDN    *RDN
	Sched  *core.Scheduler

	lsms        map[core.NodeID]*LSM
	secondaries []*SecondaryRDN
	busy        map[core.NodeID]*time.Time // each RPN's service-station horizon
	accts       map[core.NodeID]*accounting.Accountant
	procs       map[core.NodeID]map[qos.SubscriberID]accounting.ProcessID
	dir         *qos.Directory
	classifier  classify.Classifier
	cfg         SystemConfig
	nextID      uint64
	stops       []func()
	enqueued    uint64
	rejected    uint64
}

// ClusterIP is the cluster's public address on the simulated segment.
var ClusterIP = netsim.IPAddr{10, 0, 0, 1}

const (
	rdnMAC      netsim.MAC = 1
	secMACBase  netsim.MAC = 50
	rpnMACBase  netsim.MAC = 100
	clientBase  netsim.MAC = 1000
	rpnIPPrefix            = 1 // 10.0.1.x
)

// NewSystem builds and starts the cluster's periodic machinery on a fresh
// engine. Call Engine.RunFor to advance the world.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.NumRPNs <= 0 {
		return nil, errors.New("splice: at least one RPN required")
	}
	if cfg.App == nil {
		cfg.App = DefaultWebApp
	}
	if cfg.RequestCost.IsZero() {
		cfg.RequestCost = qos.GenericCost()
	}
	if cfg.NodeCapacity.IsZero() {
		cfg.NodeCapacity = qos.Vector{
			CPUTime:  time.Second,
			DiskTime: time.Second,
			NetBytes: 12_500_000,
		}
	}
	if cfg.SchedCycle <= 0 {
		cfg.SchedCycle = core.DefaultCycle
	}
	if cfg.AcctCycle <= 0 {
		cfg.AcctCycle = 100 * time.Millisecond
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 50 * time.Microsecond
	}
	if cfg.ConnTTL <= 0 {
		cfg.ConnTTL = 60 * time.Second
	}

	// core.New tolerates an empty directory for recovering front ends, but
	// a simulated system with no subscribers is a misconfiguration.
	if len(cfg.Subscribers) == 0 {
		return nil, errors.New("splice: at least one subscriber required")
	}
	dir, err := qos.NewDirectory(cfg.Subscribers)
	if err != nil {
		return nil, err
	}
	engine := vclock.NewEngine(time.Time{})
	netw := netsim.NewNetwork(engine, cfg.Latency)

	sys := &System{
		Engine: engine,
		Net:    netw,
		lsms:   make(map[core.NodeID]*LSM, cfg.NumRPNs),
		busy:   make(map[core.NodeID]*time.Time, cfg.NumRPNs),
		accts:  make(map[core.NodeID]*accounting.Accountant, cfg.NumRPNs),
		procs:  make(map[core.NodeID]map[qos.SubscriberID]accounting.ProcessID, cfg.NumRPNs),
		dir:    dir,
		cfg:    cfg,
	}

	classifier := classify.NewHostClassifier(dir)
	sys.classifier = classifier
	sys.RDN, err = NewRDN(netw, rdnMAC, ClusterIP, classifier, sys.enqueue)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.NumSecondaryRDNs; i++ {
		mac := secMACBase + netsim.MAC(i)
		sec, err := NewSecondaryRDN(netw, mac, ClusterIP, rdnMAC)
		if err != nil {
			return nil, err
		}
		sys.secondaries = append(sys.secondaries, sec)
		sys.RDN.AddSecondary(mac)
	}

	nodeCfgs := make([]core.NodeConfig, 0, cfg.NumRPNs)
	for i := 1; i <= cfg.NumRPNs; i++ {
		id := core.NodeID(i)
		mac := rpnMACBase + netsim.MAC(i)
		ip := netsim.IPAddr{10, 0, rpnIPPrefix, byte(i)}
		lsm, err := NewLSM(netw, mac, ip, ClusterIP)
		if err != nil {
			return nil, err
		}
		sys.lsms[id] = lsm
		sys.busy[id] = &time.Time{}
		sys.accts[id] = accounting.NewAccountant(id)
		sys.procs[id] = make(map[qos.SubscriberID]accounting.ProcessID)
		nodeCfgs = append(nodeCfgs, core.NodeConfig{ID: id, Capacity: cfg.NodeCapacity})
		if err := sys.serveWeb(id, lsm); err != nil {
			return nil, err
		}
	}

	sys.Sched, err = core.New(dir, nodeCfgs, core.Config{Cycle: cfg.SchedCycle})
	if err != nil {
		return nil, err
	}

	// Scheduling cycle: dispatch decisions travel to their LSMs.
	sys.stops = append(sys.stops, engine.Every(cfg.SchedCycle, func() {
		for _, d := range sys.Sched.Tick() {
			req, ok := d.Req.Payload.(*PendingRequest)
			if !ok {
				continue
			}
			// Dispatch to a known node cannot fail.
			_ = sys.RDN.Dispatch(req, rpnMACBase+netsim.MAC(d.Node))
		}
	}))
	// Connection-table expiry: stale spliced-connection entries age out.
	sys.stops = append(sys.stops, engine.Every(cfg.ConnTTL/2, func() {
		sys.RDN.Table().Expire(engine.Now().Add(-cfg.ConnTTL))
	}))
	// Accounting cycle per RPN.
	for id := range sys.lsms {
		id := id
		sys.stops = append(sys.stops, engine.Every(cfg.AcctCycle, func() {
			// Reports from known nodes cannot fail.
			_ = sys.Sched.ReportUsage(sys.accts[id].Cycle())
		}))
	}
	return sys, nil
}

// Stop halts the periodic machinery.
func (s *System) Stop() {
	for _, stop := range s.stops {
		stop()
	}
}

// LSM returns a node's local service manager.
func (s *System) LSM(id core.NodeID) *LSM { return s.lsms[id] }

// Secondaries returns the secondary RDN tier (empty without one).
func (s *System) Secondaries() []*SecondaryRDN { return s.secondaries }

// Enqueued returns how many classified requests entered the scheduler.
func (s *System) Enqueued() uint64 { return s.enqueued }

// Rejected returns how many classified requests the scheduler refused
// (queue overflow).
func (s *System) Rejected() uint64 { return s.rejected }

// enqueue is the RDN's onRequest hook: classified requests enter the
// scheduler's per-subscriber queues.
func (s *System) enqueue(req *PendingRequest) {
	s.nextID++
	err := s.Sched.Enqueue(core.Request{
		ID:         s.nextID,
		Subscriber: req.Subscriber,
		Payload:    req,
	})
	if err != nil {
		s.rejected++
		return
	}
	s.enqueued++
}

// serveWeb runs the web application on an RPN's local stack: each request
// occupies the node's service station for its modeled service time (its
// cost against the node capacity), then the response is sent and the
// accountant charged. This makes a node's real throughput match its
// declared capacity, so the QoS guarantees are load-bearing end to end.
func (s *System) serveWeb(id core.NodeID, lsm *LSM) error {
	return lsm.Stack().Listen(WebPort, func(c *netsim.Conn) {
		var buf bytes.Buffer
		c.OnData = func(conn *netsim.Conn, data []byte) {
			buf.Write(data)
			req, err := httpwire.ParseRequest(buf.Bytes())
			if err != nil {
				return // incomplete request head; wait for more data
			}
			buf.Reset()
			// FIFO service station: start when the node frees up.
			now := s.Engine.Now()
			start := now
			if s.busy[id].After(start) {
				start = *s.busy[id]
			}
			fin := start.Add(serviceTime(s.cfg.RequestCost, s.cfg.NodeCapacity))
			*s.busy[id] = fin
			s.Engine.At(fin, func() {
				resp := s.cfg.App(req)
				var out bytes.Buffer
				// Serialization of a well-formed response cannot fail.
				_ = resp.Write(&out)
				conn.Send(out.Bytes())
				// HTTP/1.0: one request per connection; the FIN also
				// retires the splice state at the LSM.
				conn.Close()
				s.charge(id, req.Host, req.Path())
			})
		}
	})
}

// serviceTime is how long a request of the given cost occupies a node of
// the given per-second capacity: its bottleneck resource's share.
func serviceTime(cost, capacity qos.Vector) time.Duration {
	d := ratioDur(float64(cost.CPUTime), float64(capacity.CPUTime))
	if disk := ratioDur(float64(cost.DiskTime), float64(capacity.DiskTime)); disk > d {
		d = disk
	}
	if net := ratioDur(float64(cost.NetBytes), float64(capacity.NetBytes)); net > d {
		d = net
	}
	return d
}

func ratioDur(cost, capPerSecond float64) time.Duration {
	if capPerSecond <= 0 {
		return 0
	}
	return time.Duration(cost / capPerSecond * float64(time.Second))
}

// charge attributes one completed request to its subscriber's process.
func (s *System) charge(id core.NodeID, host, path string) {
	sub, ok := s.classifier.Classify(host, path)
	if !ok {
		return
	}
	acct := s.accts[id]
	pid, ok := s.procs[id][sub]
	if !ok {
		pid = acct.Launch(sub)
		s.procs[id][sub] = pid
	}
	// Charging a live process cannot fail.
	_ = acct.Charge(pid, s.cfg.RequestCost)
	_ = acct.CompleteRequest(pid)
}

// Client is a simulated web client on the cluster's network.
type Client struct {
	sys   *System
	stack *netsim.Stack
}

// NewClient attaches a client host to the network. Index keeps MACs and IPs
// unique; use 0,1,2,...
func (s *System) NewClient(index int) (*Client, error) {
	mac := clientBase + netsim.MAC(index)
	ip := netsim.IPAddr{10, 0, 2, byte(index + 1)}
	stack, err := netsim.NewStack(s.Net, mac, ip)
	if err != nil {
		return nil, err
	}
	return &Client{sys: s, stack: stack}, nil
}

// Get issues an HTTP GET through the cluster. onDone fires with the parsed
// response once it fully arrives (in virtual time).
func (c *Client) Get(host, path string, onDone func(*httpwire.Response)) error {
	conn, err := c.stack.Connect(ClusterIP, WebPort)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	conn.OnEstablished = func(conn *netsim.Conn) {
		req := &httpwire.Request{Method: "GET", Target: path, Proto: "HTTP/1.0", Host: host}
		var out bytes.Buffer
		// Serialization of a well-formed request cannot fail.
		_ = req.Write(&out)
		conn.Send(out.Bytes())
	}
	conn.OnData = func(conn *netsim.Conn, data []byte) {
		buf.Write(data)
		resp, err := httpwire.ReadResponse(bufio.NewReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			return // incomplete
		}
		if onDone != nil {
			onDone(resp)
		}
	}
	return nil
}
