package splice

import (
	"testing"
	"time"

	"gage/internal/httpwire"
	"gage/internal/netsim"
	"gage/internal/qos"
	"gage/internal/vclock"
)

func secondarySystem(t *testing.T, numSecondaries int) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{
		Subscribers: []qos.Subscriber{
			{ID: "site1", Hosts: []string{"www.site1.example"}, Reservation: 100},
		},
		NumRPNs:          2,
		NumSecondaryRDNs: numSecondaries,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestSecondaryRDNEndToEnd(t *testing.T) {
	sys := secondarySystem(t, 2)
	client, err := sys.NewClient(0)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	var resp *httpwire.Response
	if err := client.Get("www.site1.example", "/x", func(r *httpwire.Response) { resp = r }); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := sys.Engine.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if resp == nil {
		t.Fatal("no response through the secondary-RDN path")
	}
	if resp.StatusCode != 200 {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
}

func TestSecondaryHandlesHandshakeNotPrimary(t *testing.T) {
	sys := secondarySystem(t, 1)
	client, err := sys.NewClient(0)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	var synackFrom netsim.MAC
	sys.Net.Tap(func(p netsim.Packet) {
		if p.Flags.Has(netsim.SYN | netsim.ACK) {
			synackFrom = p.SrcMAC
		}
	})
	done := false
	if err := client.Get("www.site1.example", "/x", func(*httpwire.Response) { done = true }); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := sys.Engine.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if !done {
		t.Fatal("request did not complete")
	}
	if synackFrom != secMACBase {
		t.Errorf("SYNACK sent by MAC %d, want secondary %d", synackFrom, secMACBase)
	}
	sec := sys.Secondaries()[0]
	if got := sec.Stats().Handshakes; got != 1 {
		t.Errorf("secondary handshakes = %d, want 1", got)
	}
	if got := sec.Stats().Requests; got != 1 {
		t.Errorf("secondary classified requests = %d, want 1", got)
	}
	// The primary still made the scheduling decision and owns the table.
	if got := sys.RDN.Stats().Requests; got != 1 {
		t.Errorf("primary queued requests = %d, want 1", got)
	}
	if got := sys.RDN.Table().Len(); got != 1 {
		t.Errorf("primary connection table = %d entries, want 1", got)
	}
}

func TestSecondariesRoundRobin(t *testing.T) {
	sys := secondarySystem(t, 2)
	const n = 6
	responses := 0
	for i := 0; i < n; i++ {
		client, err := sys.NewClient(i)
		if err != nil {
			t.Fatalf("NewClient(%d): %v", i, err)
		}
		if err := client.Get("www.site1.example", "/p", func(*httpwire.Response) { responses++ }); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	if err := sys.Engine.RunFor(2 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if responses != n {
		t.Fatalf("responses = %d, want %d", responses, n)
	}
	secs := sys.Secondaries()
	h0 := secs[0].Stats().Handshakes
	h1 := secs[1].Stats().Handshakes
	if h0 != n/2 || h1 != n/2 {
		t.Errorf("handshake split = %d/%d, want %d/%d", h0, h1, n/2, n/2)
	}
}

func TestSecondaryDropsStrayPackets(t *testing.T) {
	engine := vclock.NewEngine(time.Time{})
	netw := netsim.NewNetwork(engine, 0)
	sec, err := NewSecondaryRDN(netw, 50, netsim.IPAddr{10, 0, 0, 1}, 1)
	if err != nil {
		t.Fatalf("NewSecondaryRDN: %v", err)
	}
	// A non-SYN packet for an unknown flow is dropped.
	sec.Receive(netsim.Packet{Flags: netsim.ACK, SrcIP: netsim.IPAddr{9, 9, 9, 9}})
	if got := sec.Stats().Dropped; got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
}
