package splice

import (
	"gage/internal/netsim"
)

// spliceState is one spliced connection's remapping state at an RPN.
type spliceState struct {
	phase     splicePhase
	clientMAC netsim.MAC
	clientIP  netsim.IPAddr
	clientPt  uint16
	clientISN uint32
	rdnISN    uint32
	delta     uint32 // server ISN − RDN ISN; valid once phase == phaseSpliced
	url       []byte
	closing   bool   // the server sent its FIN
	sentEnd   uint32 // highest server-space sequence end sent to the client
}

type splicePhase int

const (
	phaseSynSent splicePhase = iota + 1
	phaseSpliced
)

// LSM is an RPN's local service manager: the thin layer between the node's
// NIC and its TCP/IP stack (§3.2). It terminates dispatched-request control
// messages from the RDN by synthesizing the second-leg connection with the
// local web server, and remaps the sequence number and address of every
// packet in both directions so the client and the server each believe they
// are talking to the cluster IP and to the client respectively.
type LSM struct {
	netw      *netsim.Network
	mac       netsim.MAC
	ip        netsim.IPAddr // the RPN's own address
	clusterIP netsim.IPAddr

	server  *netsim.Stack
	splices map[spliceKey]*spliceState

	// onSpliced, when set, fires after a second-leg connection is fully
	// established and the URL injected (for tests/metrics).
	onSpliced func(clientIP netsim.IPAddr, clientPort uint16)

	stats LSMStats
}

// LSMStats counts the LSM's packet work.
type LSMStats struct {
	// Spliced counts completed second-leg setups.
	Spliced uint64
	// RemappedIn counts inbound client packets rewritten for the stack.
	RemappedIn uint64
	// RemappedOut counts outbound server packets rewritten for the client.
	RemappedOut uint64
	// Dropped counts packets with no splice state.
	Dropped uint64
}

// spliceKey identifies a spliced connection by its client endpoint.
type spliceKey struct {
	ip   netsim.IPAddr
	port uint16
}

// NewLSM attaches a local service manager to the network at the RPN's MAC
// and interposes it around a fresh local TCP stack, which is returned via
// Stack() for the web server application to Listen on.
func NewLSM(netw *netsim.Network, mac netsim.MAC, rpnIP, clusterIP netsim.IPAddr) (*LSM, error) {
	l := &LSM{
		netw:      netw,
		mac:       mac,
		ip:        rpnIP,
		clusterIP: clusterIP,
		splices:   make(map[spliceKey]*spliceState),
	}
	l.server = netsim.NewDetachedStack(netw, mac, rpnIP)
	l.server.SetEgress(l.egress)
	if err := netw.Attach(mac, l); err != nil {
		return nil, err
	}
	return l, nil
}

var _ netsim.Receiver = (*LSM)(nil)

// Stack returns the RPN's local TCP stack (behind the LSM).
func (l *LSM) Stack() *netsim.Stack { return l.server }

// Stats returns a copy of the LSM counters.
func (l *LSM) Stats() LSMStats { return l.stats }

// SetOnSpliced registers a hook fired when a splice completes.
func (l *LSM) SetOnSpliced(fn func(clientIP netsim.IPAddr, clientPort uint16)) {
	l.onSpliced = fn
}

// Receive implements Receiver: control messages establish new splices;
// bridged client packets are remapped into the local stack.
func (l *LSM) Receive(pkt netsim.Packet) {
	if pkt.DstPort == ControlPort && pkt.Flags.Has(netsim.PSH) {
		l.handleControl(pkt)
		return
	}
	st, ok := l.splices[spliceKey{ip: pkt.SrcIP, port: pkt.SrcPort}]
	if !ok || st.phase != phaseSpliced {
		l.stats.Dropped++
		return
	}
	// A bridged client packet: rewrite destination and ACK space, then hand
	// it to the local stack as if the client had addressed this RPN.
	RemapInbound(&pkt, l.ip, st.delta)
	l.stats.RemappedIn++
	l.server.Receive(pkt)
	// Teardown: once the server has sent its FIN *and* the client has
	// acknowledged everything up to and including it, the splice state is
	// safe to retire — earlier would strand retransmissions of lost
	// response segments.
	if st.closing && pkt.Flags.Has(netsim.ACK) && seqLE(st.sentEnd, pkt.Ack) {
		delete(l.splices, spliceKey{ip: st.clientIP, port: st.clientPt})
	}
}

// seqLE compares sequence numbers modulo 2³².
func seqLE(a, b uint32) bool { return int32(b-a) >= 0 }

// ActiveSplices returns the number of live spliced connections.
func (l *LSM) ActiveSplices() int { return len(l.splices) }

// handleControl performs the distributed part of TCP splicing: it sets up
// the second-leg connection between the (impersonated) client and the local
// web server by synthesizing the three-way handshake against the local
// stack, then injects the URL packet (steps 5–9 of Figure 2).
func (l *LSM) handleControl(pkt netsim.Packet) {
	msg, err := decodeControl(pkt.Payload)
	if err != nil {
		l.stats.Dropped++
		return
	}
	st := &spliceState{
		phase:     phaseSynSent,
		clientMAC: msg.ClientMAC,
		clientIP:  msg.ClientIP,
		clientPt:  msg.ClientPort,
		clientISN: msg.ClientISN,
		rdnISN:    msg.RDNISN,
		url:       msg.URL,
	}
	l.splices[spliceKey{ip: msg.ClientIP, port: msg.ClientPort}] = st
	// Step 6: synthesized SYN, impersonating the client. The local stack's
	// SYNACK comes back through egress, which completes the splice.
	l.server.Receive(netsim.Packet{
		SrcMAC:  l.mac,
		DstMAC:  l.mac,
		SrcIP:   msg.ClientIP,
		DstIP:   l.ip,
		SrcPort: msg.ClientPort,
		DstPort: WebPort,
		Seq:     msg.ClientISN,
		Flags:   netsim.SYN,
	})
}

// egress intercepts every frame the local stack emits. During second-leg
// setup it swallows the SYNACK (step 7) and answers it locally (steps 8–9);
// afterwards it remaps outgoing packets into the client's sequence space and
// sends them straight to the client (step 10).
func (l *LSM) egress(pkt netsim.Packet) {
	st, ok := l.splices[spliceKey{ip: pkt.DstIP, port: pkt.DstPort}]
	if !ok {
		// Traffic for a non-spliced peer (none in Gage): deliver as-is.
		l.netw.Send(pkt)
		return
	}
	if st.phase == phaseSynSent && pkt.Flags.Has(netsim.SYN|netsim.ACK) {
		st.delta = pkt.Seq - st.rdnISN
		st.phase = phaseSpliced
		l.stats.Spliced++
		// Step 8: complete the local handshake on the client's behalf.
		l.server.Receive(netsim.Packet{
			SrcMAC:  l.mac,
			DstMAC:  l.mac,
			SrcIP:   st.clientIP,
			DstIP:   l.ip,
			SrcPort: st.clientPt,
			DstPort: WebPort,
			Seq:     st.clientISN + 1,
			Ack:     pkt.Seq + 1,
			Flags:   netsim.ACK,
		})
		// Step 9: inject the URL packet the client already sent to the RDN.
		l.server.Receive(netsim.Packet{
			SrcMAC:  l.mac,
			DstMAC:  l.mac,
			SrcIP:   st.clientIP,
			DstIP:   l.ip,
			SrcPort: st.clientPt,
			DstPort: WebPort,
			Seq:     st.clientISN + 1,
			Ack:     pkt.Seq + 1,
			Flags:   netsim.ACK | netsim.PSH,
			Payload: st.url,
		})
		if l.onSpliced != nil {
			l.onSpliced(st.clientIP, st.clientPt)
		}
		return
	}
	// Step 10: response traffic, remapped and sent directly to the client.
	if pkt.Flags.Has(netsim.FIN) {
		st.closing = true
	}
	if end := segEnd(pkt); seqLE(st.sentEnd, end) {
		st.sentEnd = end
	}
	RemapOutbound(&pkt, l.clusterIP, l.mac, st.clientMAC, st.delta)
	l.stats.RemappedOut++
	l.netw.Send(pkt)
}

// segEnd returns the sequence number just past a segment (SYN and FIN each
// occupy one slot).
func segEnd(pkt netsim.Packet) uint32 {
	end := pkt.Seq + uint32(len(pkt.Payload))
	if pkt.Flags.Has(netsim.SYN) || pkt.Flags.Has(netsim.FIN) {
		end++
	}
	return end
}
