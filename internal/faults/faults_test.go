package faults

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name    string
		plan    Plan
		wantErr bool
	}{
		{"empty", Plan{}, false},
		{"crash-recover", Plan{Events: []Event{
			{At: time.Second, Kind: NodeCrash, Node: 2},
			{At: 2 * time.Second, Kind: NodeRecover, Node: 2},
		}}, false},
		{"recover-first", Plan{Events: []Event{
			{At: time.Second, Kind: NodeRecover, Node: 2},
		}}, true},
		{"double-crash", Plan{Events: []Event{
			{At: time.Second, Kind: NodeCrash, Node: 2},
			{At: 2 * time.Second, Kind: NodeCrash, Node: 2},
		}}, true},
		{"crash-all-nodes", Plan{Events: []Event{
			{At: time.Second, Kind: NodeCrash, Node: 0},
		}}, true},
		{"empty-window", Plan{Events: []Event{
			{At: time.Second, Kind: SlowNode, Node: 1, Until: time.Second, Speed: 0.5},
		}}, true},
		{"bad-speed", Plan{Events: []Event{
			{At: time.Second, Kind: SlowNode, Node: 1, Until: 2 * time.Second, Speed: 1.5},
		}}, true},
		{"bad-loss", Plan{Events: []Event{
			{At: time.Second, Kind: DropAccounting, Node: 1, Until: 2 * time.Second, Loss: 1.5},
		}}, true},
		{"negative-time", Plan{Events: []Event{
			{At: -time.Second, Kind: NodeCrash, Node: 1},
		}}, true},
		{"windows-ok", Plan{Events: []Event{
			{At: time.Second, Kind: DropAccounting, Node: 0, Until: 2 * time.Second},
			{At: time.Second, Kind: DelayAccounting, Node: 1, Until: 3 * time.Second, Delay: time.Millisecond},
			{At: time.Second, Kind: LinkDegrade, Node: 1, Until: 3 * time.Second, Bandwidth: 0.5, Loss: 0.1},
			{At: time.Second, Kind: SlowNode, Node: 1, Until: 3 * time.Second, Speed: 0.25},
		}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

func TestPlanValidateRDNEvents(t *testing.T) {
	cases := []struct {
		name    string
		plan    Plan
		wantErr bool
	}{
		{"rdn-crash-recover", Plan{Events: []Event{
			{At: time.Second, Kind: RDNCrash, RDN: 2},
			{At: 3 * time.Second, Kind: RDNRecover, RDN: 2},
		}}, false},
		{"rdn-crash-without-id", Plan{Events: []Event{
			{At: time.Second, Kind: RDNCrash},
		}}, true},
		{"rdn-recover-first", Plan{Events: []Event{
			{At: time.Second, Kind: RDNRecover, RDN: 1},
		}}, true},
		{"rdn-double-crash", Plan{Events: []Event{
			{At: time.Second, Kind: RDNCrash, RDN: 1},
			{At: 2 * time.Second, Kind: RDNCrash, RDN: 1},
		}}, true},
		{"rdn-event-with-node", Plan{Events: []Event{
			{At: time.Second, Kind: RDNCrash, RDN: 1, Node: 2},
		}}, true},
		{"node-event-with-rdn", Plan{Events: []Event{
			{At: time.Second, Kind: NodeCrash, Node: 1, RDN: 2},
		}}, true},
		{"lease-delay-ok", Plan{Events: []Event{
			{At: time.Second, Kind: LeaseDelay, RDN: 1, Until: 2 * time.Second, Delay: 300 * time.Millisecond},
		}}, false},
		{"lease-delay-empty-window", Plan{Events: []Event{
			{At: time.Second, Kind: LeaseDelay, RDN: 1, Until: time.Second, Delay: time.Millisecond},
		}}, true},
		{"lease-delay-no-delay", Plan{Events: []Event{
			{At: time.Second, Kind: LeaseDelay, RDN: 1, Until: 2 * time.Second},
		}}, true},
		{"lease-delay-overlap-same-rdn", Plan{Events: []Event{
			{At: time.Second, Kind: LeaseDelay, RDN: 1, Until: 3 * time.Second, Delay: time.Millisecond},
			{At: 2 * time.Second, Kind: LeaseDelay, RDN: 1, Until: 4 * time.Second, Delay: time.Millisecond},
		}}, true},
		{"lease-delay-touching-windows", Plan{Events: []Event{
			{At: time.Second, Kind: LeaseDelay, RDN: 1, Until: 2 * time.Second, Delay: time.Millisecond},
			{At: 2 * time.Second, Kind: LeaseDelay, RDN: 1, Until: 3 * time.Second, Delay: time.Millisecond},
		}}, false},
		{"lease-delay-overlap-different-rdn", Plan{Events: []Event{
			{At: time.Second, Kind: LeaseDelay, RDN: 1, Until: 3 * time.Second, Delay: time.Millisecond},
			{At: 2 * time.Second, Kind: LeaseDelay, RDN: 2, Until: 4 * time.Second, Delay: time.Millisecond},
		}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

func TestPlanValidateCluster(t *testing.T) {
	plan := Plan{Events: []Event{
		{At: time.Second, Kind: NodeCrash, Node: 3},
		{At: time.Second, Kind: RDNCrash, RDN: 2},
		{At: 2 * time.Second, Kind: RDNRecover, RDN: 2},
	}}
	cases := []struct {
		name           string
		rpns, rdns     int
		wantErr        bool
		wantErrMention string
	}{
		{"fits", 4, 3, false, ""},
		{"exact", 3, 2, false, ""},
		{"unknown-node", 2, 3, true, "node 3"},
		{"unknown-rdn", 4, 1, true, "rdn 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := plan.ValidateCluster(tc.rpns, tc.rdns)
			if (err != nil) != tc.wantErr {
				t.Fatalf("ValidateCluster(%d, %d) = %v, wantErr=%v", tc.rpns, tc.rdns, err, tc.wantErr)
			}
			if err != nil && tc.wantErrMention != "" && !strings.Contains(err.Error(), tc.wantErrMention) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErrMention)
			}
		})
	}
	if got := plan.MaxRDN(); got != 2 {
		t.Fatalf("MaxRDN = %d, want 2", got)
	}
}

func TestInjectorRDNQueries(t *testing.T) {
	plan := Plan{Events: []Event{
		{At: 10 * time.Second, Kind: RDNCrash, RDN: 2},
		{At: 20 * time.Second, Kind: RDNRecover, RDN: 2},
		{At: 5 * time.Second, Kind: LeaseDelay, RDN: 1, Until: 8 * time.Second, Delay: 700 * time.Millisecond},
	}}
	in, err := NewInjector(plan)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if in.RDNCrashed(2, 9*time.Second) {
		t.Fatalf("rdn 2 down before crash")
	}
	if !in.RDNCrashed(2, 15*time.Second) {
		t.Fatalf("rdn 2 up inside crash span")
	}
	if in.RDNCrashed(2, 25*time.Second) {
		t.Fatalf("rdn 2 down after recover")
	}
	if in.RDNCrashed(1, 15*time.Second) {
		t.Fatalf("rdn 1 down; only rdn 2 crashed")
	}
	if d := in.LeaseDelayAt(1, 6*time.Second); d != 700*time.Millisecond {
		t.Fatalf("LeaseDelayAt inside window = %v", d)
	}
	if d := in.LeaseDelayAt(1, 9*time.Second); d != 0 {
		t.Fatalf("LeaseDelayAt outside window = %v", d)
	}
	if d := in.LeaseDelayAt(2, 6*time.Second); d != 0 {
		t.Fatalf("LeaseDelayAt wrong rdn = %v", d)
	}
}

func TestInjectorStateQueries(t *testing.T) {
	plan := Plan{Events: []Event{
		{At: 10 * time.Second, Kind: NodeCrash, Node: 2},
		{At: 20 * time.Second, Kind: NodeRecover, Node: 2},
		{At: 5 * time.Second, Kind: SlowNode, Node: 1, Until: 8 * time.Second, Speed: 0.5},
		{At: 6 * time.Second, Kind: SlowNode, Node: 0, Until: 7 * time.Second, Speed: 0.5},
		{At: 4 * time.Second, Kind: DelayAccounting, Node: 3, Until: 9 * time.Second, Delay: 2 * time.Millisecond},
		{At: 4 * time.Second, Kind: LinkDegrade, Node: 3, Until: 9 * time.Second, Bandwidth: 0.25},
	}}
	in, err := NewInjector(plan)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}

	if in.Crashed(2, 9*time.Second) {
		t.Error("node 2 crashed before its crash event")
	}
	if !in.Crashed(2, 10*time.Second) || !in.Crashed(2, 19*time.Second) {
		t.Error("node 2 not crashed inside [10s, 20s)")
	}
	if in.Crashed(2, 20*time.Second) {
		t.Error("node 2 still crashed after recovery")
	}
	if in.Crashed(1, 15*time.Second) {
		t.Error("node 1 never crashes")
	}

	if got := in.Speed(1, 4*time.Second); got != 1 {
		t.Errorf("Speed before window = %v, want 1", got)
	}
	if got := in.Speed(1, 5*time.Second); got != 0.5 {
		t.Errorf("Speed inside window = %v, want 0.5", got)
	}
	// Node-0 window overlaps the node-1 window: factors compound.
	if got := in.Speed(1, 6500*time.Millisecond); got != 0.25 {
		t.Errorf("Speed in overlapping windows = %v, want 0.25", got)
	}
	if got := in.Speed(2, 6500*time.Millisecond); got != 0.5 {
		t.Errorf("Speed under all-nodes window = %v, want 0.5", got)
	}
	if got := in.Speed(1, 8*time.Second); got != 1 {
		t.Errorf("Speed after window = %v, want 1 (Until exclusive)", got)
	}

	if got := in.AcctDelay(3, 5*time.Second); got != 2*time.Millisecond {
		t.Errorf("AcctDelay = %v, want 2ms", got)
	}
	if got := in.AcctDelay(1, 5*time.Second); got != 0 {
		t.Errorf("AcctDelay wrong node = %v, want 0", got)
	}
	if got := in.Bandwidth(3, 5*time.Second); got != 0.25 {
		t.Errorf("Bandwidth = %v, want 0.25", got)
	}

	wantTrans := []time.Duration{4 * time.Second, 5 * time.Second, 6 * time.Second,
		7 * time.Second, 8 * time.Second, 9 * time.Second, 10 * time.Second, 20 * time.Second}
	got := in.Transitions()
	if len(got) != len(wantTrans) {
		t.Fatalf("Transitions = %v, want %v", got, wantTrans)
	}
	for i := range got {
		if got[i] != wantTrans[i] {
			t.Fatalf("Transitions = %v, want %v", got, wantTrans)
		}
	}
}

func TestInjectorDropDeterminism(t *testing.T) {
	plan := Plan{Seed: 7, Events: []Event{
		{At: 0, Kind: DropAccounting, Node: 1, Until: 10 * time.Second, Loss: 0.5},
		{At: 0, Kind: LinkDegrade, Node: 1, Until: 10 * time.Second, Loss: 0.3},
	}}
	draw := func() ([]bool, []bool) {
		in, err := NewInjector(plan)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		var acct, frames []bool
		for i := 0; i < 200; i++ {
			at := time.Duration(i) * 50 * time.Millisecond
			acct = append(acct, in.DropAcct(1, at))
			frames = append(frames, in.DropFrame(1, at))
		}
		return acct, frames
	}
	a1, f1 := draw()
	a2, f2 := draw()
	for i := range a1 {
		if a1[i] != a2[i] || f1[i] != f2[i] {
			t.Fatalf("draw %d differs between identical injectors", i)
		}
	}
	// A blackout window (Loss zero-valued ⇒ 1.0) drops everything without
	// consuming randomness.
	in, _ := NewInjector(Plan{Events: []Event{
		{At: 0, Kind: DropAccounting, Node: 2, Until: time.Second},
	}})
	for i := 0; i < 5; i++ {
		if !in.DropAcct(2, time.Duration(i)*100*time.Millisecond) {
			t.Fatal("blackout window failed to drop")
		}
	}
	if in.DropAcct(2, 2*time.Second) {
		t.Error("drop outside window")
	}
	if in.DropAcct(1, 500*time.Millisecond) {
		t.Error("drop for untargeted node")
	}
}

func TestPlanActiveWindow(t *testing.T) {
	plan := Plan{Events: []Event{
		{At: 10 * time.Second, Kind: NodeCrash, Node: 1},
		{At: 20 * time.Second, Kind: NodeRecover, Node: 1},
		{At: 5 * time.Second, Kind: SlowNode, Node: 2, Until: 25 * time.Second, Speed: 0.5},
	}}
	start, end, ok := plan.ActiveWindow()
	if !ok || start != 5*time.Second || end != 25*time.Second {
		t.Fatalf("ActiveWindow = %v, %v, %v; want 5s, 25s, true", start, end, ok)
	}
	if _, _, ok := (Plan{}).ActiveWindow(); ok {
		t.Error("empty plan reported an active window")
	}
}

// echoServe accepts connections on ln and echoes one line per connection.
func echoServe(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			line, err := bufio.NewReader(c).ReadString('\n')
			if err != nil {
				return
			}
			_, _ = io.WriteString(c, line)
		}(conn)
	}
}

func TestChaosDialCrashRecover(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer inner.Close()
	chaos := NewChaos()
	ln := chaos.Listener(inner)
	go echoServe(ln)
	addr := inner.Addr().String()

	roundTrip := func() error {
		conn, err := chaos.Dial("tcp", addr, time.Second)
		if err != nil {
			return err
		}
		defer conn.Close()
		_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := io.WriteString(conn, "ping\n"); err != nil {
			return err
		}
		_, err = bufio.NewReader(conn).ReadString('\n')
		return err
	}

	if err := roundTrip(); err != nil {
		t.Fatalf("healthy round trip: %v", err)
	}
	chaos.Crash(addr)
	err = roundTrip()
	if err == nil {
		t.Fatal("dial to crashed endpoint succeeded")
	}
	if !errors.Is(err, ErrDown) {
		t.Fatalf("crash dial error = %v, want ErrDown", err)
	}
	chaos.Recover(addr)
	if err := roundTrip(); err != nil {
		t.Fatalf("post-recovery round trip: %v", err)
	}
}

func TestChaosCrashSeversLiveConns(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer inner.Close()
	chaos := NewChaos()
	ln := chaos.Listener(inner)
	addr := inner.Addr().String()

	// Server accepts and then blocks reading; the crash must unblock it.
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()

	conn, err := chaos.Dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	srv := <-accepted
	defer srv.Close()

	chaos.Crash(addr)
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read on severed connection succeeded")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("severed connection timed out instead of closing")
	}
}

func TestChaosListenerGateWhileDown(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer inner.Close()
	chaos := NewChaos()
	ln := chaos.Listener(inner)
	go echoServe(ln)
	addr := inner.Addr().String()

	chaos.Crash(addr)
	// Dial the inner listener directly (bypassing the chaos dialer, as a
	// stray client would): the TCP connect lands in the accept queue but
	// the gate cuts it, so the exchange dies.
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	_, _ = io.WriteString(conn, "ping\n")
	if _, err := bufio.NewReader(conn).ReadString('\n'); err == nil {
		t.Fatal("exchange with crashed endpoint succeeded")
	}
}
