// Package faults is Gage's deterministic fault-injection vocabulary: a
// Plan of timed events — node crashes and recoveries, accounting-message
// drop/delay windows, link-degradation windows, CPU-speed dips — plus the
// Injector that answers "what is broken at virtual time t" queries for the
// discrete-event cluster simulator, and a live-path Chaos switchboard that
// scripts the same event kinds against real TCP backends.
//
// Everything is replayable: windowed probabilistic loss draws come from one
// seeded generator consumed in simulation-event order, so a chaos run is
// fully determined by (workload seed, fault plan). The paper's guarantee —
// per-subscriber GRPS "regardless of total input load" — is only credible
// if it survives partial failure; this package is the instrument that lets
// every experiment ask that question on schedule.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"gage/internal/core"
)

// Kind enumerates the fault-event vocabulary.
type Kind int

const (
	// NodeCrash fail-stops an RPN at an instant: in-flight requests are
	// lost (the harness reclaims their scheduler charges), its stations
	// and accountant reset, and it answers nothing until NodeRecover.
	NodeCrash Kind = iota + 1
	// NodeRecover restarts a crashed RPN with cold caches and fresh
	// (reset-to-zero) accounting counters, as a rebooted machine would.
	NodeRecover
	// DropAccounting is a window during which the node's accounting
	// messages are lost with probability Loss (1.0 when zero — a total
	// feedback blackout).
	DropAccounting
	// DelayAccounting is a window adding Delay to the node's accounting
	// feedback latency (a congested or degraded control path).
	DelayAccounting
	// LinkDegrade is a window scaling the node's outbound bandwidth by
	// Bandwidth (0 < f ≤ 1) and dropping its frames with probability Loss.
	LinkDegrade
	// SlowNode is a window scaling the node's CPU/disk speed by Speed
	// (0 < f ≤ 1) — thermal throttling, a co-located batch job.
	SlowNode
	// RDNCrash fail-stops a front-end RDN instance at an instant: its
	// scheduler stops ticking, its queued requests are lost, and its lease
	// heartbeats cease — lease expiry then hands its partition to a
	// surviving RDN.
	RDNCrash
	// RDNRecover restarts a crashed RDN empty: it rejoins the lease table
	// and reclaims its home partition by graceful handback.
	RDNRecover
	// LeaseDelay is a window adding Delay to an RDN's lease heartbeats — a
	// partitioned or GC-stalled front end. A delay longer than the lease
	// produces the deposed-but-alive scenario epoch fencing exists for:
	// the partition is taken over while the old owner still dispatches.
	LeaseDelay
)

// String names the kind for plan dumps and test failures.
func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "NodeCrash"
	case NodeRecover:
		return "NodeRecover"
	case DropAccounting:
		return "DropAccounting"
	case DelayAccounting:
		return "DelayAccounting"
	case LinkDegrade:
		return "LinkDegrade"
	case SlowNode:
		return "SlowNode"
	case RDNCrash:
		return "RDNCrash"
	case RDNRecover:
		return "RDNRecover"
	case LeaseDelay:
		return "LeaseDelay"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// windowed reports whether the kind spans [At, Until) rather than firing at
// an instant.
func (k Kind) windowed() bool {
	switch k {
	case DropAccounting, DelayAccounting, LinkDegrade, SlowNode, LeaseDelay:
		return true
	}
	return false
}

// rdnKind reports whether the kind targets a front-end RDN instance rather
// than a back-end node.
func (k Kind) rdnKind() bool {
	switch k {
	case RDNCrash, RDNRecover, LeaseDelay:
		return true
	}
	return false
}

// Event is one scheduled fault. Instant kinds (NodeCrash, NodeRecover) fire
// at At; windowed kinds are active over [At, Until).
type Event struct {
	// At is the event's virtual-time offset from the start of the run
	// (warmup included), matching workload.Request.Arrival.
	At time.Duration
	// Kind selects the fault.
	Kind Kind
	// Node is the target RPN; 0 targets every node (windowed kinds only).
	Node core.NodeID
	// RDN is the target front-end instance for the RDN kinds (RDNCrash,
	// RDNRecover, LeaseDelay); those kinds require an explicit id ≥ 1.
	RDN int
	// Until ends a windowed event (exclusive). Ignored for instant kinds.
	Until time.Duration

	// Delay is DelayAccounting's added feedback latency.
	Delay time.Duration
	// Loss is the drop probability for DropAccounting (default 1.0) and
	// LinkDegrade (default 0).
	Loss float64
	// Bandwidth is LinkDegrade's bandwidth multiplier (default 1.0).
	Bandwidth float64
	// Speed is SlowNode's CPU/disk speed multiplier.
	Speed float64
}

// Plan is a deterministic fault schedule: a seed for the loss draws plus the
// event list. The zero Plan injects nothing.
type Plan struct {
	// Seed feeds the injector's loss generator; runs with equal
	// (workload, Seed, Events) are byte-identical.
	Seed int64
	// Events is the schedule; order is irrelevant (normalized by time).
	Events []Event
}

// Validate checks the plan's internal consistency: known kinds, sane
// windows and factors, crash/recover pairing per node and per RDN, and
// non-overlapping LeaseDelay windows per RDN (overlap would make the
// effective heartbeat delay depend on event-list order, breaking replay).
func (p Plan) Validate() error {
	crashed := map[core.NodeID]bool{}
	rdnCrashed := map[int]bool{}
	leaseDelayUntil := map[int]time.Duration{}
	for i, ev := range sortedEvents(p.Events) {
		prefix := fmt.Sprintf("faults: event %d (%s, node %d)", i, ev.Kind, ev.Node)
		if ev.Kind.rdnKind() {
			prefix = fmt.Sprintf("faults: event %d (%s, rdn %d)", i, ev.Kind, ev.RDN)
		}
		if ev.At < 0 {
			return fmt.Errorf("%s: negative time %v", prefix, ev.At)
		}
		if ev.Kind.rdnKind() {
			if ev.RDN <= 0 {
				return fmt.Errorf("%s: RDN events need an explicit rdn id >= 1", prefix)
			}
			if ev.Node != 0 {
				return fmt.Errorf("%s: RDN events target front ends, not node %d", prefix, ev.Node)
			}
		} else if ev.RDN != 0 {
			return fmt.Errorf("%s: rdn %d set on a node-level kind", prefix, ev.RDN)
		}
		switch ev.Kind {
		case NodeCrash, NodeRecover:
			if ev.Node == 0 {
				return fmt.Errorf("%s: crash/recover needs an explicit node", prefix)
			}
			want := ev.Kind == NodeRecover
			if crashed[ev.Node] != want {
				if want {
					return fmt.Errorf("%s: recover without a preceding crash", prefix)
				}
				return fmt.Errorf("%s: node already crashed", prefix)
			}
			crashed[ev.Node] = ev.Kind == NodeCrash
		case RDNCrash, RDNRecover:
			want := ev.Kind == RDNRecover
			if rdnCrashed[ev.RDN] != want {
				if want {
					return fmt.Errorf("%s: recover without a preceding crash", prefix)
				}
				return fmt.Errorf("%s: rdn already crashed", prefix)
			}
			rdnCrashed[ev.RDN] = ev.Kind == RDNCrash
		case DropAccounting, DelayAccounting, LinkDegrade, SlowNode:
			if ev.Until <= ev.At {
				return fmt.Errorf("%s: window [%v, %v) is empty", prefix, ev.At, ev.Until)
			}
		case LeaseDelay:
			if ev.Until <= ev.At {
				return fmt.Errorf("%s: window [%v, %v) is empty", prefix, ev.At, ev.Until)
			}
			if ev.Delay <= 0 {
				return fmt.Errorf("%s: LeaseDelay needs a positive delay", prefix)
			}
			if prev, ok := leaseDelayUntil[ev.RDN]; ok && ev.At < prev {
				return fmt.Errorf("%s: LeaseDelay window [%v, %v) overlaps an earlier window ending %v", prefix, ev.At, ev.Until, prev)
			}
			if ev.Until > leaseDelayUntil[ev.RDN] {
				leaseDelayUntil[ev.RDN] = ev.Until
			}
		default:
			return fmt.Errorf("%s: unknown kind", prefix)
		}
		if ev.Loss < 0 || ev.Loss > 1 {
			return fmt.Errorf("%s: loss %v outside [0, 1]", prefix, ev.Loss)
		}
		if ev.Kind == LinkDegrade && (ev.Bandwidth < 0 || ev.Bandwidth > 1) {
			return fmt.Errorf("%s: bandwidth factor %v outside [0, 1]", prefix, ev.Bandwidth)
		}
		if ev.Kind == SlowNode && (ev.Speed <= 0 || ev.Speed > 1) {
			return fmt.Errorf("%s: speed factor %v outside (0, 1]", prefix, ev.Speed)
		}
	}
	return nil
}

// MaxNode returns the highest node ID any event targets, so a harness can
// reject plans that script nodes the cluster does not have.
func (p Plan) MaxNode() core.NodeID {
	var m core.NodeID
	for _, ev := range p.Events {
		if ev.Node > m {
			m = ev.Node
		}
	}
	return m
}

// MaxRDN returns the highest front-end RDN id any event targets, so a
// multi-RDN harness can reject plans that script front ends the tier does
// not have.
func (p Plan) MaxRDN() int {
	var m int
	for _, ev := range p.Events {
		if ev.RDN > m {
			m = ev.RDN
		}
	}
	return m
}

// ValidateCluster runs Validate plus topology bounds: every node-targeted
// event must name a node the cluster has (1..numRPNs) and every RDN event a
// front end the tier has (1..numRDNs). This is the harness-facing entry
// point — a plan can be structurally sound yet reference an unknown RDN id.
func (p Plan) ValidateCluster(numRPNs, numRDNs int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if maxNode := p.MaxNode(); int(maxNode) > numRPNs {
		return fmt.Errorf("faults: plan targets node %d but cluster has %d RPNs", maxNode, numRPNs)
	}
	if maxRDN := p.MaxRDN(); maxRDN > numRDNs {
		return fmt.Errorf("faults: plan targets rdn %d but tier has %d RDNs", maxRDN, numRDNs)
	}
	return nil
}

// ActiveWindow returns the span from the first event to the last event end
// (Until for windows, At for instants) — the "during-fault" phase a Result
// splits its deviation report around. ok is false for an empty plan.
func (p Plan) ActiveWindow() (start, end time.Duration, ok bool) {
	for i, ev := range p.Events {
		evEnd := ev.At
		if ev.Kind.windowed() {
			evEnd = ev.Until
		}
		if i == 0 {
			start, end = ev.At, evEnd
			continue
		}
		if ev.At < start {
			start = ev.At
		}
		if evEnd > end {
			end = evEnd
		}
	}
	return start, end, len(p.Events) > 0
}

// sortedEvents returns the events ordered by time (stable on ties), leaving
// the input untouched.
func sortedEvents(evs []Event) []Event {
	out := make([]Event, len(evs))
	copy(out, evs)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Injector answers fault-state queries at exact virtual times. It is not
// safe for concurrent use: like the vclock engine that drives it, it belongs
// to the single simulation goroutine, and its loss draws must happen in
// event order to stay replayable.
type Injector struct {
	events []Event // time-sorted
	rng    *rand.Rand
}

// NewInjector validates the plan and builds its injector.
func NewInjector(p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		events: sortedEvents(p.Events),
		rng:    rand.New(rand.NewSource(p.Seed)),
	}, nil
}

// Transitions returns every instant at which some fault state changes
// (event starts and window ends), deduplicated and sorted — the exact times
// a harness must re-evaluate node state.
func (in *Injector) Transitions() []time.Duration {
	seen := map[time.Duration]bool{}
	var out []time.Duration
	for _, ev := range in.events {
		for _, t := range []time.Duration{ev.At, ev.Until} {
			if t == ev.Until && !ev.Kind.windowed() {
				continue
			}
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// matches reports whether a windowed event targets node (0 = all) and is
// active at offset at.
func (ev Event) activeOn(node core.NodeID, at time.Duration) bool {
	if ev.Node != 0 && ev.Node != node {
		return false
	}
	return at >= ev.At && at < ev.Until
}

// Crashed reports whether the node is down at offset at: the most recent
// crash/recover event at or before at decides.
func (in *Injector) Crashed(node core.NodeID, at time.Duration) bool {
	down := false
	for _, ev := range in.events {
		if ev.At > at || ev.Node != node {
			continue
		}
		switch ev.Kind {
		case NodeCrash:
			down = true
		case NodeRecover:
			down = false
		}
	}
	return down
}

// RDNCrashed reports whether the front-end RDN is down at offset at: the
// most recent RDNCrash/RDNRecover event at or before at decides.
func (in *Injector) RDNCrashed(rdn int, at time.Duration) bool {
	down := false
	for _, ev := range in.events {
		if ev.At > at || ev.RDN != rdn {
			continue
		}
		switch ev.Kind {
		case RDNCrash:
			down = true
		case RDNRecover:
			down = false
		}
	}
	return down
}

// LeaseDelayAt returns the extra heartbeat latency for an RDN at offset at.
// Validate rejects overlapping windows per RDN, so at most one applies.
func (in *Injector) LeaseDelayAt(rdn int, at time.Duration) time.Duration {
	for _, ev := range in.events {
		if ev.Kind == LeaseDelay && ev.RDN == rdn && at >= ev.At && at < ev.Until {
			return ev.Delay
		}
	}
	return 0
}

// Speed returns the node's CPU/disk speed multiplier at offset at:
// overlapping SlowNode windows compound.
func (in *Injector) Speed(node core.NodeID, at time.Duration) float64 {
	f := 1.0
	for _, ev := range in.events {
		if ev.Kind == SlowNode && ev.activeOn(node, at) {
			f *= ev.Speed
		}
	}
	return f
}

// Bandwidth returns the node's outbound-bandwidth multiplier at offset at:
// overlapping LinkDegrade windows compound. A window with a zero Bandwidth
// field means "loss only" and leaves bandwidth at 1.
func (in *Injector) Bandwidth(node core.NodeID, at time.Duration) float64 {
	f := 1.0
	for _, ev := range in.events {
		if ev.Kind == LinkDegrade && ev.activeOn(node, at) && ev.Bandwidth > 0 {
			f *= ev.Bandwidth
		}
	}
	return f
}

// AcctDelay returns the extra accounting-feedback latency at offset at
// (overlapping DelayAccounting windows add).
func (in *Injector) AcctDelay(node core.NodeID, at time.Duration) time.Duration {
	var d time.Duration
	for _, ev := range in.events {
		if ev.Kind == DelayAccounting && ev.activeOn(node, at) {
			d += ev.Delay
		}
	}
	return d
}

// DropAcct decides the fate of one accounting message sent by node at
// offset at. It consumes one loss draw per probabilistic window the message
// falls inside, so calls must happen in simulation-event order.
func (in *Injector) DropAcct(node core.NodeID, at time.Duration) bool {
	drop := false
	for _, ev := range in.events {
		if ev.Kind != DropAccounting || !ev.activeOn(node, at) {
			continue
		}
		p := ev.Loss
		if p == 0 {
			p = 1 // an unqualified drop window is a blackout
		}
		if p >= 1 || in.rng.Float64() < p {
			drop = true
		}
	}
	return drop
}

// DropFrame decides the fate of one outbound frame of node at offset at
// under active LinkDegrade loss windows, consuming one draw per window with
// 0 < Loss < 1. Calls must happen in simulation-event order.
func (in *Injector) DropFrame(node core.NodeID, at time.Duration) bool {
	drop := false
	for _, ev := range in.events {
		if ev.Kind != LinkDegrade || ev.Loss == 0 || !ev.activeOn(node, at) {
			continue
		}
		if ev.Loss >= 1 || in.rng.Float64() < ev.Loss {
			drop = true
		}
	}
	return drop
}
