package faults

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrDown is the dial error a crashed endpoint produces.
var ErrDown = errors.New("faults: endpoint down")

// Chaos scripts the fault vocabulary against live TCP endpoints, keyed by
// address. The dispatcher's injectable dialer and a listener wrapper around
// a backend both consult it, so a test can crash an RPN mid-run — new dials
// fail, in-flight connections die, accepted connections are cut — and
// recover it later, exercising the dispatcher's retry/redispatch/unhealthy-
// streak machinery against scripted failures instead of hand-rolled fakes.
// It is safe for concurrent use.
type Chaos struct {
	mu    sync.Mutex
	down  map[string]bool
	delay map[string]time.Duration
	conns map[string]map[net.Conn]struct{}
}

// NewChaos returns an empty switchboard: every endpoint healthy.
func NewChaos() *Chaos {
	return &Chaos{
		down:  make(map[string]bool),
		delay: make(map[string]time.Duration),
		conns: make(map[string]map[net.Conn]struct{}),
	}
}

// Crash fail-stops an address: subsequent dials to it fail with ErrDown,
// its listener wrapper cuts accepted connections, and every tracked live
// connection is closed immediately (in-flight requests die mid-exchange,
// exactly as with a seized machine).
func (c *Chaos) Crash(addr string) {
	c.mu.Lock()
	c.down[addr] = true
	victims := c.conns[addr]
	delete(c.conns, addr)
	c.mu.Unlock()
	for conn := range victims {
		_ = conn.Close()
	}
}

// Recover brings a crashed address back.
func (c *Chaos) Recover(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.down, addr)
}

// Down reports whether the address is currently crashed.
func (c *Chaos) Down(addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[addr]
}

// SetDelay adds fixed latency to every subsequent dial of addr (a degraded
// link); zero removes it.
func (c *Chaos) SetDelay(addr string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		delete(c.delay, addr)
	} else {
		c.delay[addr] = d
	}
}

// Dial is a drop-in for the dispatcher's backend dialer (dispatch
// Config.Dial): it fails crashed addresses, applies scripted dial latency,
// and tracks the resulting connection so a later Crash severs it.
func (c *Chaos) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	c.mu.Lock()
	down := c.down[addr]
	delay := c.delay[addr]
	c.mu.Unlock()
	if down {
		return nil, &net.OpError{Op: "dial", Net: network, Err: ErrDown}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return c.track(addr, conn), nil
}

// Listener wraps a backend's listener: while the address is crashed,
// accepted connections are closed before the backend sees them (the peer
// observes an immediate hang-up), and accepted connections are tracked so a
// Crash severs in-flight exchanges. The address key is the listener's own
// address.
func (c *Chaos) Listener(ln net.Listener) net.Listener {
	return &chaosListener{Listener: ln, chaos: c, addr: ln.Addr().String()}
}

type chaosListener struct {
	net.Listener
	chaos *Chaos
	addr  string
}

// Accept implements net.Listener with the crash gate applied.
func (l *chaosListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.chaos.Down(l.addr) {
			_ = conn.Close()
			continue
		}
		return l.chaos.track(l.addr, conn), nil
	}
}

// track registers a connection under addr and wraps it so closing untracks.
func (c *Chaos) track(addr string, conn net.Conn) net.Conn {
	c.mu.Lock()
	set, ok := c.conns[addr]
	if !ok {
		set = make(map[net.Conn]struct{})
		c.conns[addr] = set
	}
	set[conn] = struct{}{}
	c.mu.Unlock()
	return &trackedConn{Conn: conn, chaos: c, addr: addr}
}

// untrack forgets a connection (it closed on its own).
func (c *Chaos) untrack(addr string, conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if set, ok := c.conns[addr]; ok {
		delete(set, conn)
	}
}

type trackedConn struct {
	net.Conn
	chaos *Chaos
	addr  string
	once  sync.Once
}

// Close implements net.Conn, untracking exactly once.
func (t *trackedConn) Close() error {
	t.once.Do(func() { t.chaos.untrack(t.addr, t.Conn) })
	return t.Conn.Close()
}
