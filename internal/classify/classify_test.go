package classify

import (
	"testing"

	"gage/internal/qos"
)

func testDirectory(t *testing.T) *qos.Directory {
	t.Helper()
	d, err := qos.NewDirectory([]qos.Subscriber{
		{ID: "site1", Hosts: []string{"www.one.example"}, Reservation: 250},
		{ID: "site2", Hosts: []string{"www.two.example", "two.example"}, Reservation: 150},
	})
	if err != nil {
		t.Fatalf("NewDirectory: %v", err)
	}
	return d
}

func TestHostClassifier(t *testing.T) {
	c := NewHostClassifier(testDirectory(t))
	tests := []struct {
		name     string
		giveHost string
		wantID   qos.SubscriberID
		wantOK   bool
	}{
		{"exact", "www.one.example", "site1", true},
		{"second host alias", "two.example", "site2", true},
		{"case-insensitive", "WWW.One.Example", "site1", true},
		{"port stripped", "www.two.example:8080", "site2", true},
		{"trailing dot", "www.one.example.", "site1", true},
		{"whitespace", "  www.one.example ", "site1", true},
		{"unknown", "www.three.example", "", false},
		{"empty", "", "", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			id, ok := c.Classify(tt.giveHost, "/any")
			if ok != tt.wantOK || id != tt.wantID {
				t.Errorf("Classify(%q) = (%q, %v), want (%q, %v)", tt.giveHost, id, ok, tt.wantID, tt.wantOK)
			}
		})
	}
}

func TestNormalizeHost(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{"Example.COM", "example.com"},
		{"example.com:80", "example.com"},
		{"example.com.", "example.com"},
		{"[::1]:8080", "[::1]"},
		{"[::1]", "[::1]"},
		{"[bad", "[bad"},
	}
	for _, tt := range tests {
		if got := NormalizeHost(tt.give); got != tt.want {
			t.Errorf("NormalizeHost(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestUserIDClassifier(t *testing.T) {
	c := NewUserIDClassifier(map[string]qos.SubscriberID{
		"alice": "site1",
		"bob":   "site2",
	})
	tests := []struct {
		name     string
		givePath string
		wantID   qos.SubscriberID
		wantOK   bool
	}{
		{"simple uid", "/login?uid=alice", "site1", true},
		{"uid among params", "/app?x=1&uid=bob&y=2", "site2", true},
		{"unknown uid", "/app?uid=carol", "", false},
		{"no query", "/app", "", false},
		{"no uid param", "/app?user=alice", "", false},
		{"uid without value maps empty", "/app?uid=", "", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			id, ok := c.Classify("ignored", tt.givePath)
			if ok != tt.wantOK || id != tt.wantID {
				t.Errorf("Classify(%q) = (%q, %v), want (%q, %v)", tt.givePath, id, ok, tt.wantID, tt.wantOK)
			}
		})
	}
}

func TestUserIDClassifierCopiesTable(t *testing.T) {
	users := map[string]qos.SubscriberID{"alice": "site1"}
	c := NewUserIDClassifier(users)
	users["alice"] = "evil"
	if id, ok := c.Classify("", "/x?uid=alice"); !ok || id != "site1" {
		t.Errorf("classifier must copy its table; got (%q, %v)", id, ok)
	}
}

func TestChain(t *testing.T) {
	host := NewHostClassifier(testDirectory(t))
	uid := NewUserIDClassifier(map[string]qos.SubscriberID{"alice": "site2"})
	chain := Chain{uid, host}

	// User-ID override wins when present.
	if id, ok := chain.Classify("www.one.example", "/x?uid=alice"); !ok || id != "site2" {
		t.Errorf("chain uid override = (%q, %v), want (site2, true)", id, ok)
	}
	// Falls through to host classification.
	if id, ok := chain.Classify("www.one.example", "/x"); !ok || id != "site1" {
		t.Errorf("chain host fallback = (%q, %v), want (site1, true)", id, ok)
	}
	// No match anywhere.
	if _, ok := chain.Classify("unknown.example", "/x"); ok {
		t.Error("chain must miss for unmatched requests")
	}
	// Empty chain misses.
	if _, ok := (Chain{}).Classify("www.one.example", "/x"); ok {
		t.Error("empty chain must miss")
	}
}
