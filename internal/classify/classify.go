// Package classify implements Gage's request-classification component
// (§3.3): mapping an incoming URL request to the subscriber queue it belongs
// to. Classification is the service-specific part of the framework — for web
// hosting it keys on the host-name part of the URL; for other Internet
// services it can key on anything in the application-layer header (§3.6),
// which is why the Classifier interface is pluggable.
package classify

import (
	"strings"
	"sync"

	"gage/internal/qos"
)

// Classifier maps a request's application-layer identity to a subscriber.
type Classifier interface {
	// Classify returns the subscriber a request belongs to, and whether the
	// request matched any subscriber at all.
	Classify(host, path string) (qos.SubscriberID, bool)
}

// HostClassifier classifies by the host-name part of the URL, the web-access
// policy the Gage prototype uses.
type HostClassifier struct {
	dir *qos.Directory
}

// NewHostClassifier returns a classifier over the subscriber directory.
func NewHostClassifier(dir *qos.Directory) *HostClassifier {
	return &HostClassifier{dir: dir}
}

var _ Classifier = (*HostClassifier)(nil)

// Classify implements Classifier. The host is normalized by lower-casing and
// stripping any port suffix before lookup.
func (c *HostClassifier) Classify(host, _ string) (qos.SubscriberID, bool) {
	return c.dir.ByHost(NormalizeHost(host))
}

// NormalizeHost lower-cases a host name, removes a trailing :port, and drops
// a trailing dot. Bracketed IPv6 literals keep their brackets.
func NormalizeHost(host string) string {
	host = strings.ToLower(strings.TrimSpace(host))
	if strings.HasPrefix(host, "[") {
		if i := strings.IndexByte(host, ']'); i >= 0 {
			return host[:i+1]
		}
		return host
	}
	if i := strings.LastIndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	return strings.TrimSuffix(host, ".")
}

// UserIDClassifier demonstrates §3.6's point that a different Internet
// service can classify on a user ID embedded in the application-layer
// protocol: it matches a "uid" query parameter in the path.
type UserIDClassifier struct {
	users map[string]qos.SubscriberID
}

// NewUserIDClassifier builds a classifier over a user→subscriber table.
func NewUserIDClassifier(users map[string]qos.SubscriberID) *UserIDClassifier {
	cp := make(map[string]qos.SubscriberID, len(users))
	for k, v := range users {
		cp[k] = v
	}
	return &UserIDClassifier{users: cp}
}

var _ Classifier = (*UserIDClassifier)(nil)

// Classify implements Classifier by extracting uid=<user> from the path's
// query string.
func (c *UserIDClassifier) Classify(_, path string) (qos.SubscriberID, bool) {
	_, query, ok := strings.Cut(path, "?")
	if !ok {
		return "", false
	}
	for _, kv := range strings.Split(query, "&") {
		k, v, ok := strings.Cut(kv, "=")
		if ok && k == "uid" {
			id, found := c.users[v]
			return id, found
		}
	}
	return "", false
}

// Chain tries classifiers in order and returns the first match, letting a
// deployment mix policies (e.g. host-based with a user-ID override).
type Chain []Classifier

var _ Classifier = Chain(nil)

// Classify implements Classifier.
func (cs Chain) Classify(host, path string) (qos.SubscriberID, bool) {
	for _, c := range cs {
		if id, ok := c.Classify(host, path); ok {
			return id, true
		}
	}
	return "", false
}

// DynamicClassifier is a mutable host→subscriber table for elastic
// deployments: the admin control plane adds a mapping when a tenant is
// signed and removes it on delete, without rebuilding the directory the rest
// of the stack reads. Safe for concurrent use; lookups take a read lock
// only. Typically chained after a HostClassifier so static subscribers keep
// resolving through the directory.
type DynamicClassifier struct {
	mu    sync.RWMutex
	hosts map[string]qos.SubscriberID
}

// NewDynamicClassifier returns an empty mutable classifier.
func NewDynamicClassifier() *DynamicClassifier {
	return &DynamicClassifier{hosts: make(map[string]qos.SubscriberID)}
}

var _ Classifier = (*DynamicClassifier)(nil)

// Classify implements Classifier with the same host normalization the
// directory-backed classifier applies.
func (c *DynamicClassifier) Classify(host, _ string) (qos.SubscriberID, bool) {
	c.mu.RLock()
	id, ok := c.hosts[NormalizeHost(host)]
	c.mu.RUnlock()
	return id, ok
}

// Add maps each host to the subscriber, replacing prior claims.
func (c *DynamicClassifier) Add(id qos.SubscriberID, hosts ...string) {
	c.mu.Lock()
	for _, h := range hosts {
		c.hosts[NormalizeHost(h)] = id
	}
	c.mu.Unlock()
}

// Remove drops every mapping owned by the subscriber.
func (c *DynamicClassifier) Remove(id qos.SubscriberID) {
	c.mu.Lock()
	for h, owner := range c.hosts {
		if owner == id {
			delete(c.hosts, h)
		}
	}
	c.mu.Unlock()
}
