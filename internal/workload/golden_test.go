package workload

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// goldenSource is the pinned workload for the regression trace: the
// SPECweb99-like mix under Poisson arrivals, both seeded. Any change to the
// generator's draw order, the cost model, or the trace encoding shows up as
// a byte diff against the checked-in golden file.
func goldenSource() Source {
	arr, err := NewPoisson(50, 7)
	if err != nil {
		panic(err)
	}
	return Source{
		Subscriber: "spec",
		Gen:        NewSPECWeb99("spec.example", 99),
		Arrivals:   arr,
	}
}

func TestSPECWeb99GoldenTrace(t *testing.T) {
	reqs, next := goldenSource().Schedule(2*time.Second, 1)
	if len(reqs) == 0 {
		t.Fatal("golden schedule produced no requests")
	}
	if next != uint64(len(reqs))+1 {
		t.Fatalf("next ID = %d, want %d", next, len(reqs)+1)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, reqs); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}

	golden := filepath.Join("testdata", "specweb99_seed99.trace")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		gl := bytes.Split(buf.Bytes(), []byte("\n"))
		wl := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("trace is not byte-identical to golden; first diff at line %d:\n got %s\nwant %s",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("trace length changed: got %d lines, golden %d lines", len(gl), len(wl))
	}

	// Record/replay parity: reading the trace back yields exactly the
	// requests that were scheduled, so a trace-driven run replays the same
	// arrival stream the live generator produced.
	back, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(back, reqs) {
		t.Error("trace round trip lost information; replayed requests differ from scheduled ones")
	}
}
