// Package workload generates the request streams used to drive Gage: the
// paper's constant synthetic workload (fixed-size pages), a SPECweb99-like
// realistic workload (the paper's trace substitute), and CGI-style mixes
// with heterogeneous per-request resource costs.
//
// Generators are deterministic given a seed, so experiments are exactly
// reproducible. Load generation follows the open-loop constant-rate model of
// Banga & Druschel that the paper cites: clients issue requests at a fixed
// rate regardless of completions.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"gage/internal/qos"
)

// Request is one web access as seen by the cluster: its classification key
// (host, path) and its true resource cost. The true cost is known to the
// simulator but *not* to the RDN, which must predict it from accounting
// feedback — exactly the information asymmetry the paper studies.
type Request struct {
	// ID is a unique request identifier assigned by the arrival process.
	ID uint64
	// Subscriber is the charging entity the request belongs to.
	Subscriber qos.SubscriberID
	// Host is the virtual-host part of the URL used for classification.
	Host string
	// Path is the URL path.
	Path string
	// Cost is the true resource consumption of serving this request.
	Cost qos.Vector
	// Arrival is the request's arrival offset from the start of the run.
	Arrival time.Duration
}

// GenericUnits returns the request's cost in generic-request units.
func (r Request) GenericUnits() float64 { return r.Cost.GenericUnits() }

// Generator produces a stream of request templates (host, path, cost).
type Generator interface {
	// Next returns the next request template. Implementations fill Host,
	// Path and Cost; the arrival process assigns ID, Subscriber and Arrival.
	Next() Request
}

// Fixed emits identical requests — the paper's constant synthetic workload.
type Fixed struct {
	host string
	path string
	cost qos.Vector
}

// NewFixed returns a generator emitting one fixed request shape.
func NewFixed(host, path string, cost qos.Vector) *Fixed {
	return &Fixed{host: host, path: path, cost: cost}
}

var _ Generator = (*Fixed)(nil)

// Next implements Generator.
func (f *Fixed) Next() Request {
	return Request{Host: f.host, Path: f.path, Cost: f.cost}
}

// NewGeneric returns a Fixed generator whose every request costs exactly one
// generic request unit (10 ms CPU, 10 ms disk, 2,000 bytes).
func NewGeneric(host string) *Fixed {
	return NewFixed(host, "/index.html", qos.GenericCost())
}

// CostModel maps a page size to a resource-cost vector. The defaults are
// calibrated so that a 6 KB static page — the paper's synthetic workload —
// costs ≈1.85 ms of CPU, making a single simulated RPN sustain ≈540
// requests/sec, the capacity the paper measures in §4.3.
type CostModel struct {
	// CPUFixed is per-request CPU time independent of size.
	CPUFixed time.Duration
	// CPUPerKB is additional CPU time per KB of page size.
	CPUPerKB time.Duration
	// DiskFixed is per-request disk-channel time (seek + metadata).
	DiskFixed time.Duration
	// DiskPerKB is disk transfer time per KB.
	DiskPerKB time.Duration
	// HeaderBytes is protocol overhead added to the page size on the wire.
	HeaderBytes int64
}

// DefaultCostModel returns the calibrated static-content cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		CPUFixed:    1 * time.Millisecond,
		CPUPerKB:    141 * time.Microsecond,
		DiskFixed:   200 * time.Microsecond,
		DiskPerKB:   100 * time.Microsecond,
		HeaderBytes: 400,
	}
}

// Cost returns the resource vector for serving a page of the given size.
func (m CostModel) Cost(pageBytes int64) qos.Vector {
	kb := float64(pageBytes) / 1024
	return qos.Vector{
		CPUTime:  m.CPUFixed + time.Duration(kb*float64(m.CPUPerKB)),
		DiskTime: m.DiskFixed + time.Duration(kb*float64(m.DiskPerKB)),
		NetBytes: pageBytes + m.HeaderBytes,
	}
}

// SixKBPage is the page size of the paper's constant synthetic workload.
const SixKBPage = 6 * 1024

// NewStaticPage returns a Fixed generator for a static page of the given
// size, costed with the default model.
func NewStaticPage(host string, pageBytes int64) *Fixed {
	return NewFixed(host, fmt.Sprintf("/static/%d.html", pageBytes), DefaultCostModel().Cost(pageBytes))
}

// SPECweb99 class structure: four file classes spanning 100 B – 900 KB with
// the published access frequencies, nine discrete sizes per class.
var (
	specClassProb = [4]float64{0.35, 0.50, 0.14, 0.01}
	specClassBase = [4]int64{100, 1_000, 10_000, 100_000}
)

// SPECWeb99 generates a SPECweb99-like static-content mix: file sizes are
// drawn from the benchmark's four classes (35 % / 50 % / 14 % / 1 %), nine
// sizes per class, with a mild within-class popularity skew. It substitutes
// for the paper's SPECWeb99-derived trace.
type SPECWeb99 struct {
	host  string
	rng   *rand.Rand
	model CostModel
}

// NewSPECWeb99 returns a seeded SPECweb99-like generator for one host.
func NewSPECWeb99(host string, seed int64) *SPECWeb99 {
	return &SPECWeb99{host: host, rng: rand.New(rand.NewSource(seed)), model: DefaultCostModel()}
}

var _ Generator = (*SPECWeb99)(nil)

// Next implements Generator.
func (s *SPECWeb99) Next() Request {
	class := 3
	p := s.rng.Float64()
	acc := 0.0
	for i, cp := range specClassProb {
		acc += cp
		if p < acc {
			class = i
			break
		}
	}
	// Within a class, SPECweb99 accesses file index 1..9 with a peak around
	// the middle sizes; approximate with a triangular distribution.
	idx := 1 + (s.rng.Intn(9)+s.rng.Intn(9))/2
	size := specClassBase[class] * int64(idx)
	return Request{
		Host: s.host,
		Path: fmt.Sprintf("/class%d/file%d.html", class, idx),
		Cost: s.model.Cost(size),
	}
}

// CGIMix mixes cheap static pages with expensive dynamic (CGI) requests,
// exercising the accounting model's claim (§3.5) that per-process accounting
// handles CGI programs with no extra mechanism, and stressing the RDN's
// per-request cost prediction with high variance.
type CGIMix struct {
	host        string
	rng         *rand.Rand
	cgiFraction float64
	static      qos.Vector
	cgi         qos.Vector
}

// NewCGIMix returns a seeded mix generator. cgiFraction is the probability
// that a request is dynamic.
func NewCGIMix(host string, seed int64, cgiFraction float64, static, cgi qos.Vector) *CGIMix {
	return &CGIMix{
		host:        host,
		rng:         rand.New(rand.NewSource(seed)),
		cgiFraction: cgiFraction,
		static:      static,
		cgi:         cgi,
	}
}

var _ Generator = (*CGIMix)(nil)

// Next implements Generator.
func (c *CGIMix) Next() Request {
	if c.rng.Float64() < c.cgiFraction {
		return Request{Host: c.host, Path: "/cgi-bin/app", Cost: c.cgi}
	}
	return Request{Host: c.host, Path: "/static/page.html", Cost: c.static}
}

// Arrivals produces arrival instants for an open-loop load source.
type Arrivals interface {
	// NextGap returns the time until the next arrival.
	NextGap() time.Duration
}

// ConstantRate spaces arrivals exactly 1/rate apart — the paper's client
// model ("issue requests to Gage at a constant rate").
type ConstantRate struct {
	gap time.Duration
}

// NewConstantRate returns a constant-rate arrival process of rate req/sec.
func NewConstantRate(perSecond float64) (*ConstantRate, error) {
	if perSecond <= 0 {
		return nil, fmt.Errorf("workload: rate must be positive, got %v", perSecond)
	}
	return &ConstantRate{gap: time.Duration(float64(time.Second) / perSecond)}, nil
}

var _ Arrivals = (*ConstantRate)(nil)

// NextGap implements Arrivals.
func (c *ConstantRate) NextGap() time.Duration { return c.gap }

// Poisson spaces arrivals with exponential gaps of the given mean rate.
type Poisson struct {
	mean float64 // mean gap in seconds
	rng  *rand.Rand
}

// NewPoisson returns a seeded Poisson arrival process of rate req/sec.
func NewPoisson(perSecond float64, seed int64) (*Poisson, error) {
	if perSecond <= 0 {
		return nil, fmt.Errorf("workload: rate must be positive, got %v", perSecond)
	}
	return &Poisson{mean: 1 / perSecond, rng: rand.New(rand.NewSource(seed))}, nil
}

var _ Arrivals = (*Poisson)(nil)

// NextGap implements Arrivals.
func (p *Poisson) NextGap() time.Duration {
	return time.Duration(p.rng.ExpFloat64() * p.mean * float64(time.Second))
}

// Source couples a subscriber, a request generator and an arrival process:
// one client load stream.
type Source struct {
	// Subscriber is the target charging entity.
	Subscriber qos.SubscriberID
	// Gen produces request shapes.
	Gen Generator
	// Arrivals paces the stream.
	Arrivals Arrivals
}

// Schedule materializes the source's arrivals over [0, run) as a slice of
// requests with IDs and arrival stamps assigned, starting from firstID.
// It returns the requests and the next free ID.
func (s Source) Schedule(run time.Duration, firstID uint64) ([]Request, uint64) {
	var out []Request
	id := firstID
	for t := s.Arrivals.NextGap(); t < run; t += s.Arrivals.NextGap() {
		r := s.Gen.Next()
		r.ID = id
		r.Subscriber = s.Subscriber
		r.Arrival = t
		out = append(out, r)
		id++
	}
	return out, id
}
