package workload_test

import (
	"fmt"
	"time"

	"gage/internal/workload"
)

// A constant-rate source materializes an arrival-stamped request stream.
func ExampleSource_Schedule() {
	arr, err := workload.NewConstantRate(100) // 100 req/s
	if err != nil {
		fmt.Println(err)
		return
	}
	src := workload.Source{
		Subscriber: "gold",
		Gen:        workload.NewGeneric("gold.example"),
		Arrivals:   arr,
	}
	reqs, _ := src.Schedule(50*time.Millisecond, 1)
	for _, r := range reqs {
		fmt.Printf("%v %s%s\n", r.Arrival, r.Host, r.Path)
	}
	// Output:
	// 10ms gold.example/index.html
	// 20ms gold.example/index.html
	// 30ms gold.example/index.html
	// 40ms gold.example/index.html
}

// The default cost model prices a 6 KB page so one nominal RPN sustains
// ≈540 requests/sec — the paper's measured per-node capacity.
func ExampleCostModel_Cost() {
	cost := workload.DefaultCostModel().Cost(workload.SixKBPage)
	fmt.Printf("%.0f req/s per node\n", 1/cost.CPUTime.Seconds())
	// Output: 542 req/s per node
}
