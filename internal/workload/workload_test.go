package workload

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"gage/internal/qos"
)

func TestFixedGenerator(t *testing.T) {
	cost := qos.Vector{CPUTime: time.Millisecond, DiskTime: 2 * time.Millisecond, NetBytes: 512}
	g := NewFixed("www.a.example", "/p", cost)
	for i := 0; i < 3; i++ {
		r := g.Next()
		if r.Host != "www.a.example" || r.Path != "/p" || r.Cost != cost {
			t.Fatalf("Next() = %+v, want fixed shape", r)
		}
	}
}

func TestNewGenericCostsOneUnit(t *testing.T) {
	r := NewGeneric("h").Next()
	if got := r.GenericUnits(); math.Abs(got-1) > 1e-9 {
		t.Errorf("generic request units = %v, want 1", got)
	}
}

func TestCostModelMonotoneInSize(t *testing.T) {
	m := DefaultCostModel()
	small, big := m.Cost(1024), m.Cost(64*1024)
	if !big.Dominates(small) {
		t.Errorf("larger pages must cost at least as much: %v vs %v", big, small)
	}
	if big == small {
		t.Error("cost must grow with size")
	}
}

func TestCostModelCalibration(t *testing.T) {
	// A 6 KB page must cost ≈1.85 ms CPU so a single simulated RPN
	// sustains ≈540 req/s, the per-RPN capacity measured in §4.3.
	c := DefaultCostModel().Cost(SixKBPage)
	perRPN := 1 / c.CPUTime.Seconds()
	if perRPN < 500 || perRPN > 580 {
		t.Errorf("6KB-page RPN capacity = %.1f req/s, want ≈540", perRPN)
	}
	if c.NetBytes != SixKBPage+400 {
		t.Errorf("6KB wire bytes = %d, want %d", c.NetBytes, SixKBPage+400)
	}
}

func TestSPECWeb99Deterministic(t *testing.T) {
	a, b := NewSPECWeb99("h", 7), NewSPECWeb99("h", 7)
	for i := 0; i < 100; i++ {
		ra, rb := a.Next(), b.Next()
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("same-seed generators diverged at %d: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestSPECWeb99ClassMix(t *testing.T) {
	g := NewSPECWeb99("h", 42)
	const n = 20000
	classCount := make(map[int]int)
	for i := 0; i < n; i++ {
		r := g.Next()
		var class, idx int
		if _, err := fmt.Sscanf(r.Path, "/class%d/file%d.html", &class, &idx); err != nil {
			t.Fatalf("unexpected path %q: %v", r.Path, err)
		}
		classCount[class]++
		if idx < 1 || idx > 9 {
			t.Fatalf("file index %d out of range in %q", idx, r.Path)
		}
		if !r.Cost.AllNonNegative() || r.Cost.IsZero() {
			t.Fatalf("invalid cost %v", r.Cost)
		}
	}
	// Published SPECweb99 class frequencies: 35%, 50%, 14%, 1%.
	want := []float64{0.35, 0.50, 0.14, 0.01}
	for class, w := range want {
		got := float64(classCount[class]) / n
		if math.Abs(got-w) > 0.02 {
			t.Errorf("class %d frequency = %.3f, want ≈%.2f", class, got, w)
		}
	}
}

func TestCGIMixFractions(t *testing.T) {
	static := qos.Vector{CPUTime: time.Millisecond, DiskTime: time.Millisecond, NetBytes: 1000}
	cgi := qos.Vector{CPUTime: 50 * time.Millisecond, DiskTime: 5 * time.Millisecond, NetBytes: 3000}
	g := NewCGIMix("h", 3, 0.25, static, cgi)
	const n = 20000
	var cgiCount int
	for i := 0; i < n; i++ {
		r := g.Next()
		switch r.Cost {
		case cgi:
			cgiCount++
		case static:
		default:
			t.Fatalf("unexpected cost %v", r.Cost)
		}
	}
	if got := float64(cgiCount) / n; math.Abs(got-0.25) > 0.02 {
		t.Errorf("CGI fraction = %.3f, want ≈0.25", got)
	}
}

func TestConstantRate(t *testing.T) {
	c, err := NewConstantRate(100)
	if err != nil {
		t.Fatalf("NewConstantRate: %v", err)
	}
	if got := c.NextGap(); got != 10*time.Millisecond {
		t.Errorf("gap = %v, want 10ms", got)
	}
	if _, err := NewConstantRate(0); err == nil {
		t.Error("zero rate must be rejected")
	}
	if _, err := NewConstantRate(-5); err == nil {
		t.Error("negative rate must be rejected")
	}
}

func TestPoissonMeanGap(t *testing.T) {
	p, err := NewPoisson(200, 11)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	const n = 50000
	var sum time.Duration
	for i := 0; i < n; i++ {
		g := p.NextGap()
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		sum += g
	}
	mean := sum.Seconds() / n
	if math.Abs(mean-0.005) > 0.0005 {
		t.Errorf("mean gap = %vs, want ≈0.005s", mean)
	}
	if _, err := NewPoisson(0, 1); err == nil {
		t.Error("zero rate must be rejected")
	}
}

func TestSourceSchedule(t *testing.T) {
	arr, err := NewConstantRate(100)
	if err != nil {
		t.Fatalf("NewConstantRate: %v", err)
	}
	src := Source{Subscriber: "site1", Gen: NewGeneric("h"), Arrivals: arr}
	reqs, next := src.Schedule(time.Second, 10)
	// Arrivals at 10ms, 20ms, ..., 990ms → 99 requests strictly inside [0,1s).
	if len(reqs) != 99 {
		t.Fatalf("scheduled %d requests, want 99", len(reqs))
	}
	if next != 10+99 {
		t.Errorf("next ID = %d, want %d", next, 10+99)
	}
	for i, r := range reqs {
		if r.ID != 10+uint64(i) {
			t.Errorf("req %d ID = %d, want %d", i, r.ID, 10+uint64(i))
		}
		if r.Subscriber != "site1" {
			t.Errorf("req %d subscriber = %q", i, r.Subscriber)
		}
		if want := time.Duration(i+1) * 10 * time.Millisecond; r.Arrival != want {
			t.Errorf("req %d arrival = %v, want %v", i, r.Arrival, want)
		}
	}
}

func TestScheduleRateProperty(t *testing.T) {
	f := func(rate uint8) bool {
		r := float64(rate%200) + 1
		arr, err := NewConstantRate(r)
		if err != nil {
			return false
		}
		src := Source{Subscriber: "s", Gen: NewGeneric("h"), Arrivals: arr}
		reqs, _ := src.Schedule(2*time.Second, 0)
		// Expect ≈ 2r arrivals (within rounding of the open interval).
		return math.Abs(float64(len(reqs))-2*r) <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	arr, err := NewConstantRate(50)
	if err != nil {
		t.Fatalf("NewConstantRate: %v", err)
	}
	src := Source{Subscriber: "site1", Gen: NewSPECWeb99("h", 5), Arrivals: arr}
	reqs, _ := src.Schedule(time.Second, 0)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, reqs); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Errorf("trace round-trip mismatch: got %d reqs, want %d", len(got), len(reqs))
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewBufferString("{not json")); err == nil {
		t.Error("garbage trace must fail to parse")
	}
}

func TestMergeOrdersByArrival(t *testing.T) {
	a := []Request{{ID: 1, Arrival: 30 * time.Millisecond}, {ID: 2, Arrival: 50 * time.Millisecond}}
	b := []Request{{ID: 3, Arrival: 10 * time.Millisecond}, {ID: 4, Arrival: 30 * time.Millisecond}}
	got := Merge(a, b)
	wantIDs := []uint64{3, 1, 4, 2}
	if len(got) != len(wantIDs) {
		t.Fatalf("merged %d, want %d", len(got), len(wantIDs))
	}
	for i, id := range wantIDs {
		if got[i].ID != id {
			t.Errorf("merge[%d].ID = %d, want %d (tie-break by ID)", i, got[i].ID, id)
		}
	}
}
