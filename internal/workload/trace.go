package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"gage/internal/qos"
)

// traceRecord is the on-disk form of one request. Durations are serialized
// in nanoseconds with explicit unit-bearing names.
type traceRecord struct {
	ID         uint64 `json:"id"`
	Subscriber string `json:"subscriber"`
	Host       string `json:"host"`
	Path       string `json:"path"`
	CPUNanos   int64  `json:"cpuNanos"`
	DiskNanos  int64  `json:"diskNanos"`
	NetBytes   int64  `json:"netBytes"`
	ArrivalNs  int64  `json:"arrivalNanos"`
}

// WriteTrace serializes requests as JSON lines, one request per line —
// the same record/replay role SPECWeb99 trace files play in the paper.
func WriteTrace(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range reqs {
		rec := traceRecord{
			ID:         r.ID,
			Subscriber: string(r.Subscriber),
			Host:       r.Host,
			Path:       r.Path,
			CPUNanos:   int64(r.Cost.CPUTime),
			DiskNanos:  int64(r.Cost.DiskTime),
			NetBytes:   r.Cost.NetBytes,
			ArrivalNs:  int64(r.Arrival),
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("workload: encode trace record %d: %w", r.ID, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSON-lines trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Request, error) {
	var out []Request
	dec := json.NewDecoder(r)
	for {
		var rec traceRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("workload: decode trace record: %w", err)
		}
		out = append(out, Request{
			ID:         rec.ID,
			Subscriber: qos.SubscriberID(rec.Subscriber),
			Host:       rec.Host,
			Path:       rec.Path,
			Cost: qos.Vector{
				CPUTime:  time.Duration(rec.CPUNanos),
				DiskTime: time.Duration(rec.DiskNanos),
				NetBytes: rec.NetBytes,
			},
			Arrival: time.Duration(rec.ArrivalNs),
		})
	}
	return out, nil
}

// Merge combines several per-source request streams into one arrival-ordered
// stream, as the RDN would observe it on the wire. Ordering ties break by
// request ID for determinism.
func Merge(streams ...[]Request) []Request {
	var total int
	for _, s := range streams {
		total += len(s)
	}
	out := make([]Request, 0, total)
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Arrival != out[j].Arrival {
			return out[i].Arrival < out[j].Arrival
		}
		return out[i].ID < out[j].ID
	})
	return out
}
