package dispatch

import (
	"sort"

	"gage/internal/flightrec"
	"gage/internal/qos"
)

// This file is the dispatcher's side of a partition migration in the
// multi-RDN tier. When a tenant group moves to another front end — a
// graceful handback after recovery, or this instance shutting down after
// being deposed — the requests still queued for that group must not be
// dispatched here (the fence would refuse each one after charging it) and
// must not be counted as shed (they are not lost): they are withdrawn
// through the same pendingConn CAS the abandon path uses and handed back as
// a redispatchable backlog the partition's new owner replays.

// Handoff is one withdrawn request: enough to redispatch it on the
// partition's new owner.
type Handoff struct {
	// ID is the scheduler request id the deposed owner had assigned.
	ID         uint64           `json:"id"`
	Subscriber qos.SubscriberID `json:"subscriber"`
	Group      string           `json:"group"`
	Method     string           `json:"method"`
	Target     string           `json:"target"`
	Host       string           `json:"host"`
}

// SetMigrating marks tenant groups as migrating away from this front end.
// Close's drain treats their still-queued requests as handoffs — withdrawn
// and recorded for the new owner — rather than dispatching or shedding
// them. Call it when the lease table moves a partition, before Close.
func (s *Server) SetMigrating(groups ...string) {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	for _, g := range groups {
		s.migrating[g] = struct{}{}
	}
}

// Handoffs returns the withdrawn redispatchable backlog collected by Close,
// in withdrawal order.
func (s *Server) Handoffs() []Handoff {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	out := make([]Handoff, len(s.handoffs))
	copy(out, s.handoffs)
	return out
}

// handoffMigrating withdraws every still-queued request of the migrating
// groups. It runs once, at the start of Close, while the scheduling loop is
// still live: RemoveGroup pulls the group's queues out of the scheduler
// atomically, so the tick loop can no longer dispatch what it returns, and
// the pendingConn CAS settles each request's race against its own serving
// goroutine — a request the tick loop already claimed relays (and meets the
// fence); one the client already abandoned stays abandoned; everything else
// becomes a Handoff.
func (s *Server) handoffMigrating() {
	s.migMu.Lock()
	groups := make([]string, 0, len(s.migrating))
	for g := range s.migrating {
		groups = append(groups, g)
	}
	s.migMu.Unlock()
	sort.Strings(groups)
	for _, g := range groups {
		orphans, err := s.sched.RemoveGroup(g)
		if err != nil {
			s.logger.Printf("dispatch: handoff group %q: %v", g, err)
			continue
		}
		for _, r := range orphans {
			pc, ok := r.Payload.(*pendingConn)
			if !ok {
				continue
			}
			if !pc.state.CompareAndSwap(pcWaiting, pcHandedOff) {
				continue
			}
			s.migMu.Lock()
			s.handoffs = append(s.handoffs, Handoff{
				ID:         pc.id,
				Subscriber: pc.sub,
				Group:      g,
				Method:     pc.req.Method,
				Target:     pc.req.Target,
				Host:       pc.req.Host,
			})
			s.migMu.Unlock()
			s.handedOff.Add(1)
			if s.rec != nil {
				s.rec.Annotate(flightrec.TierEvent{Kind: "handback", Group: g})
			}
			// Wake the serving goroutine; the zero node is never read — the
			// pcHandedOff state routes it to the handoff reply.
			pc.node <- 0
		}
	}
}
