package dispatch

import (
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gage/internal/backend"
	"gage/internal/core"
	"gage/internal/qos"
)

// tierSubs is a two-group population for partition tests.
func tierSubs() []qos.Subscriber {
	return []qos.Subscriber{
		{ID: "a1", Hosts: []string{"a1.example"}, Reservation: 100, QueueLimit: 64, Group: "tierA"},
		{ID: "b1", Hosts: []string{"b1.example"}, Reservation: 100, QueueLimit: 64, Group: "tierB"},
	}
}

// frontierCluster is cluster() with a Config hook, for wiring Owns/Fence
// and starved backends.
func frontierCluster(t *testing.T, n int, subs []qos.Subscriber, mutate func(*Config)) (string, *Server) {
	t.Helper()
	backends := make([]Backend, 0, n)
	for i := 1; i <= n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("backend listen: %v", err)
		}
		be := backend.New(backend.Config{Node: core.NodeID(i)})
		go func() { _ = be.Serve(ln) }()
		t.Cleanup(func() { _ = be.Close() })
		backends = append(backends, Backend{ID: core.NodeID(i), Addr: ln.Addr().String()})
	}
	cfg := Config{
		Subscribers: subs,
		Backends:    backends,
		AcctCycle:   50 * time.Millisecond,
		Logger:      log.New(io.Discard, "", 0),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("dispatcher listen: %v", err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String(), srv
}

func TestOwnsRefusesForeignGroups(t *testing.T) {
	addr, srv := frontierCluster(t, 1, tierSubs(), func(cfg *Config) {
		cfg.Owns = func(group string) bool { return group == "tierA" }
	})
	resp, err := get(t, addr, "b1.example", "/static/64.html")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 503 {
		t.Fatalf("foreign-group status = %d, want 503", resp.StatusCode)
	}
	resp, err = get(t, addr, "a1.example", "/static/64.html")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("owned-group status = %d, want 200", resp.StatusCode)
	}
	st := srv.Stats()
	if st.NotOwned != 1 {
		t.Fatalf("notOwned = %d, want 1", st.NotOwned)
	}
	if st.Served != 1 {
		t.Fatalf("served = %d, want 1", st.Served)
	}
	// Refused requests never touched the scheduler.
	if qlen := srv.Scheduler().QueueLen("b1"); qlen != 0 {
		t.Fatalf("foreign subscriber queued %d requests on a non-owner", qlen)
	}
}

func TestFenceRefusesDeposedDispatchAndReclaimsCharge(t *testing.T) {
	var deposed atomic.Bool
	addr, srv := frontierCluster(t, 1, tierSubs(), func(cfg *Config) {
		cfg.Fence = func(group string) bool { return !deposed.Load() }
	})

	deposed.Store(true)
	resp, err := get(t, addr, "a1.example", "/static/64.html")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 503 {
		t.Fatalf("deposed status = %d, want 503", resp.StatusCode)
	}
	if st := srv.Stats(); st.Fenced != 1 || st.Served != 0 {
		t.Fatalf("stats after fence = %+v, want fenced=1 served=0", st)
	}
	// The fenced dispatch's charge was reclaimed: the node carries no
	// outstanding load, so an un-deposed front end serves immediately.
	if out, ok := srv.Scheduler().Outstanding(1); !ok || !out.IsZero() {
		t.Fatalf("outstanding after fence = %v (ok=%v), want zero", out, ok)
	}
	deposed.Store(false)
	resp, err = get(t, addr, "a1.example", "/static/64.html")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("post-recovery status = %d, want 200", resp.StatusCode)
	}
}

// TestCloseHandsBackMigratingQueued is the takeover-drain regression test:
// requests still queued for a migrating partition at Close are withdrawn
// through the pendingConn CAS and returned from Handoffs as redispatchable,
// not dispatched from the deposed owner and not counted shed or abandoned.
func TestCloseHandsBackMigratingQueued(t *testing.T) {
	// A starved backend (nanoseconds of capacity) keeps every request
	// queued: the admission bound rejects all dispatch, so the queue holds
	// until Close.
	addr, srv := frontierCluster(t, 1, tierSubs(), func(cfg *Config) {
		cfg.Backends[0].Capacity = qos.Vector{CPUTime: time.Nanosecond}
		cfg.QueueTimeout = 30 * time.Second
		cfg.DrainTimeout = 200 * time.Millisecond
	})

	const n = 4
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := get(t, addr, "a1.example", "/static/64.html")
			if err == nil {
				codes[i] = resp.StatusCode
			}
		}(i)
	}
	// Wait for all requests to be queued in the scheduler.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Scheduler().QueueLen("a1") < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests queued", srv.Scheduler().QueueLen("a1"), n)
		}
		time.Sleep(5 * time.Millisecond)
	}

	srv.SetMigrating("tierA")
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()

	handoffs := srv.Handoffs()
	if len(handoffs) != n {
		t.Fatalf("handoffs = %d, want %d", len(handoffs), n)
	}
	seen := make(map[uint64]bool, n)
	for _, h := range handoffs {
		if h.Group != "tierA" || h.Subscriber != "a1" {
			t.Fatalf("handoff %+v, want group tierA subscriber a1", h)
		}
		if h.Method != "GET" || h.Target != "/static/64.html" || h.Host != "a1.example" {
			t.Fatalf("handoff lost request identity: %+v", h)
		}
		if seen[h.ID] {
			t.Fatalf("request %d handed off twice", h.ID)
		}
		seen[h.ID] = true
	}
	st := srv.Stats()
	if st.HandedOff != n {
		t.Fatalf("handedOff = %d, want %d", st.HandedOff, n)
	}
	if st.Shed != 0 || st.Abandoned != 0 {
		t.Fatalf("migrating backlog leaked into shed=%d abandoned=%d", st.Shed, st.Abandoned)
	}
	for i, code := range codes {
		if code != 503 {
			t.Fatalf("client %d got status %d, want 503", i, code)
		}
	}
}

// TestCloseWithoutMigrationKeepsDrainBehaviour pins the degenerate path: no
// SetMigrating call means Close drains exactly as before — queued requests
// of every group are abandoned, none handed off.
func TestCloseWithoutMigrationKeepsDrainBehaviour(t *testing.T) {
	addr, srv := frontierCluster(t, 1, tierSubs(), func(cfg *Config) {
		cfg.Backends[0].Capacity = qos.Vector{CPUTime: time.Nanosecond}
		cfg.QueueTimeout = 30 * time.Second
		cfg.DrainTimeout = 100 * time.Millisecond
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = get(t, addr, "a1.example", "/static/64.html")
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Scheduler().QueueLen("a1") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("request never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	st := srv.Stats()
	if st.HandedOff != 0 || len(srv.Handoffs()) != 0 {
		t.Fatalf("unmigrated close handed off %d requests", st.HandedOff)
	}
	if st.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", st.Abandoned)
	}
}
