package dispatch

import (
	"encoding/json"
	"net"
	"time"

	"gage/internal/flightrec"
	"gage/internal/httpwire"
	"gage/internal/telemetry"
)

// CyclesPath dumps the flight recorder's retained cycle records as JSON —
// the last ring's worth of per-cycle scheduler state (balances, credits,
// queue lengths, dispatch rounds, node load). 404 when recording is off.
const CyclesPath = "/_gage/cycles"

// DefaultConformanceWindow is the auditor's slow sliding window when
// Config.ConformanceWindow is zero: long enough to smooth accounting-cycle
// granularity, short enough that a violated guarantee surfaces within
// seconds.
const DefaultConformanceWindow = 10 * time.Second

// cyclesJSON is the wire form of the cycles endpoint.
type cyclesJSON struct {
	// RingSize is the retention capacity; Seq counts cycles ever recorded.
	RingSize int    `json:"ringSize"`
	Seq      uint64 `json:"seq"`
	// SpillError reports a failed cycle-log write, empty when healthy.
	SpillError string `json:"spillError,omitempty"`
	// Records is the retained window, oldest first.
	Records []flightrec.CycleRecord `json:"records"`
}

// serveCycles answers the flight-recorder dump endpoint.
func (s *Server) serveCycles(conn net.Conn) {
	if s.rec == nil {
		s.respondError(conn, 404)
		return
	}
	out := cyclesJSON{
		RingSize: s.rec.RingSize(),
		Seq:      s.rec.Seq(),
		Records:  s.rec.Recent(0),
	}
	if err := s.rec.SpillErr(); err != nil {
		out.SpillError = err.Error()
	}
	if out.Records == nil {
		out.Records = []flightrec.CycleRecord{}
	}
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		s.respondError(conn, 500)
		return
	}
	resp := &httpwire.Response{
		StatusCode: 200,
		Header:     map[string]string{"Content-Type": "application/json"},
		Body:       body,
	}
	// The poller may be gone; nothing else to do.
	_ = resp.Write(conn)
}

// addConformance appends the guarantee-conformance families to a scrape:
// delivered-versus-reserved ratios per burn-rate window, the Figure-3
// deviation statistic, violation spans, and spare-share gauges. No-op when
// recording is off.
func (s *Server) addConformance(e *telemetry.Exposition) {
	if s.auditor == nil {
		return
	}
	s.auditor.Sync()
	rep := s.auditor.Report()

	e.Family("gage_cycle_records_total", "counter", "Scheduler cycles ingested by the conformance auditor.")
	e.Add("gage_cycle_records_total", nil, float64(rep.Records))
	e.Family("gage_cycle_records_dropped_total", "counter", "Cycle records the auditor missed because the ring lapped between scrapes.")
	e.Add("gage_cycle_records_dropped_total", nil, float64(rep.Dropped))

	subLabel := func(id string) []telemetry.Label {
		return []telemetry.Label{{Name: "subscriber", Value: id}}
	}
	winLabel := func(id, win string) []telemetry.Label {
		return []telemetry.Label{
			{Name: "subscriber", Value: id},
			{Name: "window", Value: win},
		}
	}
	// A family with HELP/TYPE but no samples fails the exposition lint, so
	// per-subscriber families wait for the first ingested cycle, and the
	// deviation family for the first subscriber with a computable statistic
	// (at least one complete averaging interval).
	if len(rep.Subs) == 0 {
		return
	}
	e.Family("gage_conformance_ratio", "gauge", "Delivered/reserved GRPS per burn-rate window (fast and slow); 0 for zero reservations.")
	for _, sub := range rep.Subs {
		e.Add("gage_conformance_ratio", winLabel(string(sub.ID), "fast"), sub.FastRatio)
		e.Add("gage_conformance_ratio", winLabel(string(sub.ID), "slow"), sub.SlowRatio)
	}
	haveDeviation := false
	for _, sub := range rep.Subs {
		if sub.DeviationOK {
			haveDeviation = true
		}
	}
	if haveDeviation {
		e.Family("gage_deviation", "gauge", "Figure-3 deviation from reservation over the audit window (mean |rate-res|/res per interval).")
		for _, sub := range rep.Subs {
			if sub.DeviationOK {
				e.Add("gage_deviation", subLabel(string(sub.ID)), sub.Deviation)
			}
		}
	}
	e.Family("gage_violation_total", "counter", "Guarantee-violation spans opened per subscriber (fast and slow windows below threshold with standing demand).")
	for _, sub := range rep.Subs {
		e.Add("gage_violation_total", subLabel(string(sub.ID)), float64(sub.Violations))
	}
	e.Family("gage_violation_active", "gauge", "1 while a subscriber's guarantee violation is in progress.")
	for _, sub := range rep.Subs {
		active := 0.0
		if sub.Violating {
			active = 1
		}
		e.Add("gage_violation_active", subLabel(string(sub.ID)), active)
	}
	e.Family("gage_spare_share", "gauge", "Subscriber's fraction of spare-round dispatches in the audit window.")
	for _, sub := range rep.Subs {
		e.Add("gage_spare_share", subLabel(string(sub.ID)), sub.SpareShare)
	}
	e.Family("gage_backlogged_fraction", "gauge", "Fraction of fast-window cycles ending with queued requests (the violation demand gate).")
	for _, sub := range rep.Subs {
		e.Add("gage_backlogged_fraction", subLabel(string(sub.ID)), sub.Backlogged)
	}
}

// Recorder exposes the flight recorder, nil when recording is off.
func (s *Server) Recorder() *flightrec.Recorder { return s.rec }

// Auditor exposes the conformance auditor, nil when recording is off.
func (s *Server) Auditor() *flightrec.Auditor { return s.auditor }
