// Events endpoint: the unified observability bus over HTTP. GET
// /_gage/events dumps the in-memory event ring — the most recent
// schema-versioned events from every publisher (request spans, recorder
// cycles, tier transitions, breaker flips, admin decisions, guarantee
// violations) in causal order, plus the bus counters needed to judge how
// much history the ring still holds. Spilled logs on disk are the durable
// record; this endpoint is the live window an operator or gagetrace merge
// reads without touching the filesystem.
package dispatch

import (
	"encoding/json"
	"net"

	"gage/internal/httpwire"
	"gage/internal/obs"
)

// EventsPath is the HTTP path serving the unified event bus ring.
const EventsPath = "/_gage/events"

// eventDumpJSON is the wire shape of the events endpoint.
type eventDumpJSON struct {
	Schema    int         `json:"schema"`
	RingSize  int         `json:"ringSize"`
	Published uint64      `json:"published"`
	Dropped   uint64      `json:"dropped"`
	Events    []obs.Event `json:"events"`
}

// serveEvents dumps the event ring. A server configured without a bus
// (EventRingSize zero and no EventLog) answers 404 — the endpoint's
// absence signals that observability is off, the same contract as the
// flight recorder's cycle endpoint.
func (s *Server) serveEvents(conn net.Conn) {
	if s.bus == nil {
		s.respondError(conn, 404)
		return
	}
	out := eventDumpJSON{
		Schema:    obs.SchemaVersion,
		RingSize:  s.bus.RingSize(),
		Published: s.bus.Seq(),
		Dropped:   s.bus.Dropped(),
		Events:    s.bus.Events(),
	}
	if out.Events == nil {
		out.Events = []obs.Event{}
	}
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		s.respondError(conn, 500)
		return
	}
	resp := &httpwire.Response{
		StatusCode: 200,
		Header:     map[string]string{"Content-Type": "application/json"},
		Body:       body,
	}
	// The poller may be gone; nothing else to do.
	_ = resp.Write(conn)
}

// Bus exposes the unified event bus (tests, embedding binaries). Nil when
// the server was configured without one.
func (s *Server) Bus() *obs.Bus { return s.bus }
