package dispatch

import (
	"bufio"
	"io"
	"log"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"gage/internal/backend"
	"gage/internal/breaker"
	"gage/internal/core"
	"gage/internal/faults"
	"gage/internal/httpwire"
	"gage/internal/metrics"
)

// flakyBackend answers the accounting report path like a healthy node but
// slams the door on every relayed request until healed — the failure mode the
// old binary health streak could not see: poll successes kept re-enabling a
// node that failed every real request.
func flakyBackend(t *testing.T, id core.NodeID) (addr string, heal func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var healthy atomic.Bool
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				req, err := httpwire.ReadRequest(bufio.NewReader(c))
				if err != nil {
					return
				}
				if req.Path() == backend.ReportPath {
					resp := &httpwire.Response{
						StatusCode: 200,
						Header:     map[string]string{"Content-Type": "application/json"},
						Body:       []byte(`{"node":` + string(rune('0'+id)) + `}`),
					}
					_ = resp.Write(c)
					return
				}
				if healthy.Load() {
					resp := &httpwire.Response{StatusCode: 200, Header: map[string]string{}, Body: []byte("ok")}
					_ = resp.Write(c)
					return
				}
				// Unhealthy request path: hang up mid-exchange.
			}(c)
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return ln.Addr().String(), func() { healthy.Store(true) }
}

// TestChaosHealthFlapRequiresRelayRecovery is the flap regression: a backend
// whose accounting endpoint stays healthy while its request path fails every
// exchange must trip its breaker on the relay streak and STAY tripped through
// any number of poll successes. Recovery happens only the half-open way — a
// cooled-down trial relay succeeding — and then the node ramps back through
// slow start.
func TestChaosHealthFlapRequiresRelayRecovery(t *testing.T) {
	flakyAddr, heal := flakyBackend(t, 1)
	addr, srv := startServer(t, Config{
		Subscribers: defaultSubs(),
		Backends: []Backend{
			{ID: 1, Addr: flakyAddr},
			{ID: 2, Addr: liveBackend(t, 2)},
		},
		AcctCycle: 25 * time.Millisecond,
		Breaker:   breaker.Config{Threshold: 3, Cooldown: 1500 * time.Millisecond, SlowStart: 4},
	})

	// Drive traffic until node 1's relay streak trips its breaker. Requests
	// landing on the flaky node come back 502; the healthy node's answers are
	// 200 — both outcomes are fine here.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap, _ := srv.BreakerSnapshot(1); snap.State == breaker.Open {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flaky node's breaker never opened on relay failures")
		}
		_, _ = get(t, addr, "www.site1.example", "/static/512.html")
	}

	// The flap window: ~20 successful polls land while the breaker cools
	// down. Before the fix each one re-enabled the node; now the relay trip
	// holds until a trial request proves the path.
	time.Sleep(500 * time.Millisecond)
	if snap, _ := srv.BreakerSnapshot(1); snap.State != breaker.Open {
		t.Fatalf("breaker %v after poll successes; relay trip must hold until a trial relay", snap.State)
	}
	if srv.Scheduler().NodeEnabled(1) {
		t.Fatal("scheduler still dispatches to the relay-dead node")
	}

	// Heal the request path and wait out the cooldown: the half-open trial
	// relay must close the breaker.
	heal()
	deadline = time.Now().Add(8 * time.Second)
	for {
		if snap, _ := srv.BreakerSnapshot(1); snap.State == breaker.Closed {
			break
		}
		if time.Now().After(deadline) {
			snap, _ := srv.BreakerSnapshot(1)
			t.Fatalf("breaker stuck %v; the healed node's trial relay must close it", snap.State)
		}
		_, _ = get(t, addr, "www.site1.example", "/static/512.html")
	}

	// Slow start: the recovered node's scheduler weight climbs monotonically
	// from a fraction to full capacity, one accounting cycle at a time.
	var ramp []float64
	deadline = time.Now().Add(3 * time.Second)
	for {
		w, ok := srv.Scheduler().NodeWeight(1)
		if !ok {
			t.Fatal("node 1 unknown to the scheduler")
		}
		ramp = append(ramp, w)
		if w == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("weight never ramped to 1; last %v", w)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ramp[0] >= 1 {
		t.Errorf("first observed post-recovery weight = %v; slow start must begin below full", ramp[0])
	}
	if !metrics.MonotoneNonDecreasing(ramp, 0) {
		t.Errorf("weight ramp is not monotone: %v", ramp)
	}
}

func TestMaxConnsShedsFastAndRecovers(t *testing.T) {
	addr, srv := startServer(t, Config{
		Subscribers: defaultSubs(),
		Backends:    []Backend{{ID: 1, Addr: liveBackend(t, 1)}},
		AcctCycle:   50 * time.Millisecond,
		MaxConns:    2,
	})

	// Two idle clients squat the connection cap.
	hold := make([]net.Conn, 2)
	for i := range hold {
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Fatalf("hold dial %d: %v", i, err)
		}
		defer c.Close()
		hold[i] = c
	}
	// Wait for both to be accepted and tracked.
	waitFor(t, time.Second, func() bool { return srv.Stats().Accepted >= 2 })

	// The next connection is shed with a fast 503 — no queueing, no backend.
	resp, err := get(t, addr, "www.site1.example", "/static/512.html")
	if err != nil {
		t.Fatalf("shed get: %v", err)
	}
	if resp.StatusCode != 503 {
		t.Fatalf("status past MaxConns = %d, want 503", resp.StatusCode)
	}
	if st := srv.Stats(); st.ShedConns == 0 {
		t.Errorf("ShedConns = 0 after over-cap connection, stats %+v", st)
	}

	// Freeing a slot restores service.
	hold[0].Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := get(t, addr, "www.site1.example", "/static/512.html")
		if err == nil && resp.StatusCode == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never recovered after a slot freed (last resp %v err %v)", resp, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// slowBackend answers the report path immediately but holds every relayed
// request for delay before responding 200 — in-flight work for drain tests.
func slowBackend(t *testing.T, delay time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				req, err := httpwire.ReadRequest(bufio.NewReader(c))
				if err != nil {
					return
				}
				if req.Path() == backend.ReportPath {
					resp := &httpwire.Response{
						StatusCode: 200,
						Header:     map[string]string{"Content-Type": "application/json"},
						Body:       []byte(`{"node":1}`),
					}
					_ = resp.Write(c)
					return
				}
				time.Sleep(delay)
				resp := &httpwire.Response{StatusCode: 200, Header: map[string]string{}, Body: []byte("slow but done")}
				_ = resp.Write(c)
			}(c)
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return ln.Addr().String()
}

// TestChaosDrainLetsInflightFinish: Close must not axe a request already at a
// backend — the drain phase lets it complete and the client still gets its
// 200 while the listener is already gone.
func TestChaosDrainLetsInflightFinish(t *testing.T) {
	addr, srv := startServer(t, Config{
		Subscribers:  defaultSubs(),
		Backends:     []Backend{{ID: 1, Addr: slowBackend(t, 400*time.Millisecond)}},
		AcctCycle:    50 * time.Millisecond,
		DrainTimeout: 5 * time.Second,
	})
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	req := &httpwire.Request{Method: "GET", Target: "/x", Proto: "HTTP/1.0", Host: "www.site1.example"}
	if err := req.Write(conn); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Let the request reach the slow backend, then shut down around it.
	time.Sleep(150 * time.Millisecond)
	closed := make(chan error, 1)
	start := time.Now()
	go func() { closed <- srv.Close() }()

	resp, err := httpwire.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("read during drain: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status during drain = %d, want 200", resp.StatusCode)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if el := time.Since(start); el >= 5*time.Second {
		t.Errorf("Close took %v; drain must end when work ends, not at the timeout", el)
	}
}

// TestChaosDrainUnparksIdleKeepAlive: an idle persistent connection must not
// hold Close hostage for DrainTimeout — the read-deadline zap unparks its
// handler immediately.
func TestChaosDrainUnparksIdleKeepAlive(t *testing.T) {
	addr, srv := startServer(t, Config{
		Subscribers:  defaultSubs(),
		Backends:     []Backend{{ID: 1, Addr: liveBackend(t, 1)}},
		AcctCycle:    50 * time.Millisecond,
		DrainTimeout: 5 * time.Second,
	})
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	req := &httpwire.Request{Method: "GET", Target: "/static/512.html", Proto: "HTTP/1.1", Host: "www.site1.example"}
	if err := req.Write(conn); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err := httpwire.ReadResponse(bufio.NewReader(conn))
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("keep-alive request: resp=%v err=%v", resp, err)
	}

	// The connection now sits idle in ReadRequest.
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if el := time.Since(start); el >= 2*time.Second {
		t.Errorf("Close took %v with one idle keep-alive connection; want prompt drain", el)
	}
}

// TestChaosCloseInterruptsRetryBackoff: a relay sleeping in its retry backoff
// when shutdown lands must wake on the abort instead of running the backoff
// out — before the fix this was a bare time.Sleep that pinned Close for the
// full backoff.
func TestChaosCloseInterruptsRetryBackoff(t *testing.T) {
	chaos := faults.NewChaos()
	be1, be2 := liveBackend(t, 1), liveBackend(t, 2)
	srv, err := New(Config{
		Subscribers: defaultSubs(),
		Backends:    []Backend{{ID: 1, Addr: be1}, {ID: 2, Addr: be2}},
		// No accounting polls during the test: the dial failures must come
		// from the relay path, with both breakers still closed.
		AcctCycle:    time.Hour,
		RetryBackoff: 30 * time.Second,
		DrainTimeout: 200 * time.Millisecond,
		Dial:         chaos.Dial,
		Logger:       log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	// Both backends unreachable: the first dial fails, the relay redispatches
	// and parks in its 30 s backoff.
	chaos.Crash(be1)
	chaos.Crash(be2)
	go func() {
		c, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
		if err != nil {
			return
		}
		defer c.Close()
		_ = c.SetDeadline(time.Now().Add(10 * time.Second))
		req := &httpwire.Request{Method: "GET", Target: "/x", Proto: "HTTP/1.0", Host: "www.site1.example"}
		_ = req.Write(c)
		_, _ = httpwire.ReadResponse(bufio.NewReader(c))
	}()
	waitFor(t, 5*time.Second, func() bool { return srv.Stats().Retried >= 1 })

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if el := time.Since(start); el >= 5*time.Second {
		t.Errorf("Close took %v; the shutdown abort must interrupt the 30s retry backoff", el)
	}
}

// waitFor polls cond until true or the deadline, failing the test on timeout.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
