// Package dispatch is the live-network Gage front end: a TCP listener that
// classifies incoming HTTP requests by virtual host, queues them in the core
// scheduler's per-subscriber queues, dispatches them to back-end servers
// under the credit-based QoS discipline, and feeds the back ends' accounting
// reports into the scheduler's balances.
//
// It plays the RDN's role over real sockets. The first-leg handshake and
// URL read happen here; the second leg is a fresh connection to the chosen
// backend and the response is relayed to the client — application-level
// splicing, the deployable stand-in for the kernel-level packet remapping
// that internal/splice models packet by packet.
package dispatch

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gage/internal/backend"
	"gage/internal/breaker"
	"gage/internal/classify"
	"gage/internal/core"
	"gage/internal/flightrec"
	"gage/internal/httpwire"
	"gage/internal/obs"
	"gage/internal/qos"
	"gage/internal/telemetry"
)

// Backend declares one back-end server to the dispatcher.
type Backend struct {
	// ID is the node identity used by the scheduler and in reports.
	ID core.NodeID
	// Addr is the host:port the backend listens on.
	Addr string
	// Capacity is the node's per-second resource capacity.
	Capacity qos.Vector
}

// Config assembles a dispatcher.
type Config struct {
	// Subscribers defines sites, hosts, reservations.
	Subscribers []qos.Subscriber
	// Backends lists the back-end pool (at least one).
	Backends []Backend
	// Scheduler tunes the core scheduler (defaults apply).
	Scheduler core.Config
	// AcctCycle is how often backends are polled for usage (default 100 ms).
	AcctCycle time.Duration
	// DialTimeout bounds backend dials (default 2 s).
	DialTimeout time.Duration
	// QueueTimeout bounds how long an accepted request may wait for a
	// dispatch decision before it is abandoned with a 503 (default 30 s).
	QueueTimeout time.Duration
	// RetryBackoff is the pause before the relay's single retry against an
	// alternate backend after a dial failure (default 25 ms).
	RetryBackoff time.Duration
	// MaxConns caps concurrently accepted client connections; connections
	// past the cap are shed with a fast 503. It also sizes the
	// per-subscriber in-flight request quotas (proportional to
	// reservations) that shed spare-capacity traffic first under
	// saturation. 0 means unlimited (admission control off).
	MaxConns int
	// ShardCount is how many ways the per-subscriber admission state is
	// sharded by subscriber-ID hash; concurrent accepts, releases, and
	// stats scrapes contend only within a shard. Rounded up to a power of
	// two; 0 means DefaultShardCount.
	ShardCount int
	// DrainTimeout bounds Close's drain phase: how long in-flight requests
	// may keep finishing after the listener stops accepting, before they
	// are abandoned (default 5 s).
	DrainTimeout time.Duration
	// ClientIdleTimeout bounds each request's client-side read/write on a
	// persistent connection (default 60 s).
	ClientIdleTimeout time.Duration
	// BackendTimeout bounds the whole backend exchange of one relay
	// (default 60 s).
	BackendTimeout time.Duration
	// Breaker tunes the per-backend circuit breakers (defaults apply; see
	// package breaker).
	Breaker breaker.Config
	// TraceSampleEvery samples every Nth request's lifecycle trace
	// deterministically (request IDs divisible by N). 1 traces everything,
	// 0 (the default) disables tracing; unsampled requests pay no
	// allocation. Sampled traces are retained in a ring served at
	// TracePath.
	TraceSampleEvery int
	// TraceBuffer is the completed-trace ring capacity (default 256).
	TraceBuffer int
	// CycleRingSize enables the scheduler's flight recorder with a ring
	// retaining that many cycle records, served at CyclesPath and audited
	// for guarantee conformance at MetricsPath. 0 leaves recording off
	// (the scheduler's hot path then pays one nil check per tick) unless
	// CycleLog is set, in which case the default ring size applies.
	CycleRingSize int
	// CycleLog, when non-nil, receives every committed cycle record as one
	// JSON line — a flight log `gagetrace audit` replays offline. Implies
	// recording even when CycleRingSize is 0.
	CycleLog io.Writer
	// ConformanceWindow is the conformance auditor's slow sliding window
	// (default 10 s); the fast burn-rate window derives as one tenth of
	// it. Only meaningful with recording enabled.
	ConformanceWindow time.Duration
	// RDN is this front end's instance id: it salts every minted trace ID
	// (obs.Mint) and stamps bus events, so merged multi-RDN logs stay
	// attributable. Zero is the single-RDN pipeline.
	RDN int
	// EventRingSize enables the unified observability event bus with a ring
	// retaining that many events, served at EventsPath. Lifecycle spans of
	// sampled traces, cycle commits, tier events, breaker transitions,
	// admin decisions and conformance violations all publish into it. 0
	// leaves the bus off unless EventLog is set, in which case the default
	// ring size applies.
	EventRingSize int
	// EventLog, when non-nil, receives every bus event as one JSON line —
	// the stream `gagetrace explain` and `gagetrace lint` consume.
	EventLog io.Writer
	// ExemplarsPerSpan is how many recent sampled trace IDs the conformance
	// auditor attaches to each violation span it opens (default 4, negative
	// disables). Only meaningful with recording enabled.
	ExemplarsPerSpan int
	// Owns reports whether this front end currently owns a tenant group —
	// the multi-RDN tier's partition-aware admission. When set, requests
	// whose subscriber's group is homed on another RDN are refused with 503
	// at classification (counted in Stats.NotOwned) instead of being queued
	// on a scheduler that must not accrue their state. Nil owns everything
	// (the single-RDN pipeline).
	Owns func(group string) bool
	// Fence validates this front end's claim on a group immediately before
	// a relay: a false verdict means the front end was deposed — its lease
	// epoch superseded — between the scheduling decision and the splice.
	// The dispatch charge is reclaimed and the request refused with 503
	// (counted in Stats.Fenced), so a deposed RDN's in-flight decisions
	// never reach a backend twice-owned. Nil disables fencing.
	Fence func(group string) bool
	// AdmitHeadroom is the fraction of enabled capacity the admin control
	// plane lets reservations commit, in (0, 1]. 0 means 1.0 — commit up to
	// the full physical rate (see package admitctl).
	AdmitHeadroom float64
	// Dial opens backend connections; nil means net.DialTimeout. Fault
	// drills swap in a chaos dialer here to script backend outages without
	// touching real processes.
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)
	// Logger receives operational errors (default: standard logger).
	Logger *log.Logger
}

// Stats counts dispatcher outcomes.
type Stats struct {
	// Accepted is connections accepted.
	Accepted uint64
	// Served is requests relayed successfully.
	Served uint64
	// Rejected is requests refused with 503 (queue overflow).
	Rejected uint64
	// Unclassified is requests with no matching subscriber (404).
	Unclassified uint64
	// Errors is backend dial/relay failures (502).
	Errors uint64
	// Retried is relays re-dispatched to an alternate backend after a
	// dial failure.
	Retried uint64
	// Abandoned is requests withdrawn after enqueue (wait timeout, client
	// hang-up, shutdown) whose scheduler charge was reclaimed.
	Abandoned uint64
	// ShedConns is connections refused with a fast 503 past MaxConns.
	ShedConns uint64
	// Shed is requests refused by per-subscriber admission control (spare
	// traffic beyond quota while the in-flight cap is saturated).
	Shed uint64
	// NotOwned is requests refused because their tenant group is homed on
	// another front end (Config.Owns).
	NotOwned uint64
	// Fenced is dispatches refused at relay because this front end was
	// deposed between decision and splice (Config.Fence); their scheduler
	// charges were reclaimed.
	Fenced uint64
	// HandedOff is queued requests withdrawn at Close because their group
	// migrated to another front end — redispatchable there, not shed.
	HandedOff uint64
}

// topology is the dispatcher's elastic membership state: the subscriber
// directory and classifier on one side, the backend pool's addresses,
// breakers, accounting-poll slots, and latency histograms on the other.
// A published topology is immutable — hot paths read it with one atomic
// load and index its maps lock-free, exactly as they read the fixed maps
// before the control plane existed. Admin mutations build a modified copy
// under Server.adminMu and swap the pointer (copy-on-write), carrying the
// per-node and per-subscriber stateful objects across by pointer so their
// streaks, snapshots, and histograms survive the swap.
type topology struct {
	dir        *qos.Directory
	classifier classify.Classifier
	// groupOf caches each subscriber's tenant group for the partition
	// admission and fencing checks.
	groupOf map[qos.SubscriberID]string
	// reqLat and relayLat are the latency histograms behind MetricsPath:
	// end-to-end served latency per subscriber, backend-exchange latency
	// per node. The histograms themselves are concurrency-safe.
	reqLat   map[qos.SubscriberID]*telemetry.Histogram
	relayLat map[core.NodeID]*telemetry.Histogram
	addrs    map[core.NodeID]string
	// breakers gate each backend's health: accounting-poll and relay
	// failures feed per-source streaks, and the scheduler's node weight
	// follows the breaker's slow-start ramp.
	breakers map[core.NodeID]*breaker.Breaker
	// acct holds each backend's accounting-poll state under its own mutex,
	// so concurrent polls of different nodes never serialize on a global
	// lock.
	acct map[core.NodeID]*nodeAcct
	// draining marks nodes being gracefully retired: applyWeight pins their
	// scheduler weight at 0 regardless of breaker health, so the per-cycle
	// breaker tick cannot ramp a drained node back into the rotation.
	draining map[core.NodeID]bool
}

// clone copies the topology's maps (shallow: the per-node and
// per-subscriber objects carry across by pointer) so an admin mutation can
// edit the copy and publish it atomically.
func (t *topology) clone() *topology {
	cp := &topology{
		dir:        t.dir,
		classifier: t.classifier,
		groupOf:    make(map[qos.SubscriberID]string, len(t.groupOf)),
		reqLat:     make(map[qos.SubscriberID]*telemetry.Histogram, len(t.reqLat)),
		relayLat:   make(map[core.NodeID]*telemetry.Histogram, len(t.relayLat)),
		addrs:      make(map[core.NodeID]string, len(t.addrs)),
		breakers:   make(map[core.NodeID]*breaker.Breaker, len(t.breakers)),
		acct:       make(map[core.NodeID]*nodeAcct, len(t.acct)),
		draining:   make(map[core.NodeID]bool, len(t.draining)),
	}
	for k, v := range t.groupOf {
		cp.groupOf[k] = v
	}
	for k, v := range t.reqLat {
		cp.reqLat[k] = v
	}
	for k, v := range t.relayLat {
		cp.relayLat[k] = v
	}
	for k, v := range t.addrs {
		cp.addrs[k] = v
	}
	for k, v := range t.breakers {
		cp.breakers[k] = v
	}
	for k, v := range t.acct {
		cp.acct[k] = v
	}
	for k, v := range t.draining {
		cp.draining[k] = v
	}
	return cp
}

// Server is a running dispatcher.
type Server struct {
	cfg    Config
	sched  *core.Scheduler
	logger *log.Logger

	// topo is the elastic membership state (see topology). Read with
	// s.top(); replaced only by admin mutations holding adminMu.
	topo atomic.Pointer[topology]
	// adminMu serializes control-plane mutations: topology swaps, scheduler
	// membership calls, and admission-quota rebalances form one atomic
	// admin operation under it.
	adminMu sync.Mutex

	accepted     atomic.Uint64
	served       atomic.Uint64
	rejected     atomic.Uint64
	unclassified atomic.Uint64
	errs         atomic.Uint64
	retried      atomic.Uint64
	abandoned    atomic.Uint64
	shedConns    atomic.Uint64
	shedReqs     atomic.Uint64
	notOwned     atomic.Uint64
	fenced       atomic.Uint64
	handedOff    atomic.Uint64

	mu sync.Mutex
	ln net.Listener
	// adminLn is the optional private control-plane listener (ServeAdmin),
	// closed alongside ln.
	adminLn net.Listener
	closed  bool
	// stopCh aborts everything: queue waits, retry backoffs, the tick and
	// accounting loops. It closes only after the drain phase.
	stopCh chan struct{}
	// drainCh closes first on shutdown: stop accepting requests, but let
	// the loops keep dispatching what is already in flight.
	drainCh chan struct{}
	// connWG tracks client-connection handlers — the work Close drains.
	connWG sync.WaitGroup
	// loopWG tracks the tick/accounting loops and pollers, which must
	// outlive the drain so queued requests still dispatch during it.
	loopWG sync.WaitGroup

	// conns tracks accepted client connections, both to enforce MaxConns
	// and so Close can nudge idle keep-alive readers (deadline zap) and
	// later force-close stragglers. Guarded by connMu.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	// adminConns tracks ServeAdmin's control-plane connections separately so
	// Close's deadline zap and force-close sweeps reach them too (an idle
	// keep-alive admin connection must not stall connWG.Wait) without the
	// operator surface counting against the client MaxConns cap. Guarded by
	// connMu.
	adminConns map[net.Conn]struct{}

	// beConns tracks live backend connections so the post-drain abort can
	// cut hung exchanges instead of waiting out BackendTimeout. Guarded by
	// beMu.
	beMu    sync.Mutex
	beConns map[net.Conn]struct{}

	// admission is the reservation-aware in-flight limiter (MaxConns).
	admission *admission

	// tracer samples per-request lifecycle traces (Config.TraceSampleEvery).
	tracer *telemetry.Tracer

	// bus is the unified observability event ring (Config.EventRingSize),
	// nil when the bus is off — every publisher is nil-safe.
	bus *obs.Bus

	// rec is the scheduler's flight recorder and auditor its conformance
	// view, both nil when Config left recording off (CyclesPath then 404s
	// and MetricsPath omits the conformance families).
	rec     *flightrec.Recorder
	auditor *flightrec.Auditor

	// migMu guards the migrating-group set and the handoff backlog Close
	// collects from them (see frontier.go).
	migMu     sync.Mutex
	migrating map[string]struct{}
	handoffs  []Handoff
}

// top returns the current topology. The pointer is immutable; callers may
// index its maps freely without further synchronization.
func (s *Server) top() *topology { return s.topo.Load() }

// UnhealthyAfter is the default consecutive-failure threshold that trips a
// backend's breaker (Config.Breaker.Threshold overrides it).
const UnhealthyAfter = 3

// defaultBackendCapacity is the per-second capacity assumed for a backend
// that declares none: one CPU, one disk arm, 100 Mbit of network.
var defaultBackendCapacity = qos.Vector{CPUTime: time.Second, DiskTime: time.Second, NetBytes: 12_500_000}

// nodeAcct is one backend's accounting-poll state.
type nodeAcct struct {
	mu sync.Mutex
	// lastSeen holds the backend's previous cumulative report, so usage
	// deltas survive lost polls.
	lastSeen core.UsageReport
	// polling marks a poll currently in flight, so a dead node
	// slow-failing at DialTimeout accumulates one blocked probe, not one
	// per accounting cycle.
	polling bool
	// deltaScratch and spareReport recycle the accounting maps: each poll
	// decodes into the map retired from lastSeen on the previous cycle and
	// diffs into the scratch map, so steady-state polling allocates only
	// what the JSON unmarshal itself needs. The polling slot serializes
	// polls per node, making the reuse safe.
	deltaScratch map[qos.SubscriberID]core.SubscriberUsage
	spareReport  map[qos.SubscriberID]core.SubscriberUsage
}

// pendingConn lifecycle states: the dispatch/abandon handshake. Exactly one
// side wins the CAS from pcWaiting, so a dispatch decision is either
// delivered to the serving goroutine or its charge is reclaimed — never
// both, never neither.
const (
	pcWaiting    int32 = iota // queued or in flight, serving goroutine waiting
	pcDispatched              // claimed by the dispatcher; node sent on the channel
	pcAbandoned               // withdrawn by the serving goroutine; never relay
	pcHandedOff               // withdrawn at Close for a migrating partition; redispatchable elsewhere
)

// pendingConn is the scheduler payload for a waiting client connection.
type pendingConn struct {
	// id is the scheduler request ID, the key for cancel/release.
	id   uint64
	conn net.Conn
	req  *httpwire.Request
	sub  qos.SubscriberID
	// group is the subscriber's tenant group, the fencing unit.
	group string
	// node receives the dispatch decision (buffered; sent only after a
	// successful CAS to pcDispatched).
	node chan core.NodeID
	// state is the pcWaiting/pcDispatched/pcAbandoned handshake word.
	state atomic.Int32
	// start is when the request was classified; end-to-end latency for the
	// per-subscriber histogram measures from here to the response write.
	start time.Time
	// trace is the sampled lifecycle trace, nil for unsampled requests
	// (every Trace method is nil-safe).
	trace *telemetry.Trace
	// tid is the tier-wide trace identity minted at classify time and
	// injected into the relayed request's X-Gage-Trace header; every
	// request carries one even when its lifecycle trace is unsampled.
	tid obs.TraceID
}

// New builds a dispatcher.
func New(cfg Config) (*Server, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("dispatch: at least one backend required")
	}
	if cfg.AcctCycle <= 0 {
		cfg.AcctCycle = 100 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 30 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.ClientIdleTimeout <= 0 {
		cfg.ClientIdleTimeout = 60 * time.Second
	}
	if cfg.BackendTimeout <= 0 {
		cfg.BackendTimeout = 60 * time.Second
	}
	if cfg.Breaker.Threshold <= 0 {
		cfg.Breaker.Threshold = UnhealthyAfter
	}
	if cfg.Logger == nil {
		cfg.Logger = log.Default()
	}
	if cfg.Dial == nil {
		cfg.Dial = net.DialTimeout
	}
	// The core scheduler accepts an empty directory (a recovering front end
	// starts that way), but a dispatcher configured with no subscribers can
	// never classify anything — reject it here.
	if len(cfg.Subscribers) == 0 {
		return nil, errors.New("dispatch: at least one subscriber required")
	}
	dir, err := qos.NewDirectory(cfg.Subscribers)
	if err != nil {
		return nil, err
	}
	nodes := make([]core.NodeConfig, 0, len(cfg.Backends))
	addrs := make(map[core.NodeID]string, len(cfg.Backends))
	for _, b := range cfg.Backends {
		cap := b.Capacity
		if cap.IsZero() {
			cap = defaultBackendCapacity
		}
		nodes = append(nodes, core.NodeConfig{ID: b.ID, Capacity: cap})
		addrs[b.ID] = b.Addr
	}
	sched, err := core.New(dir, nodes, cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	var bus *obs.Bus
	if cfg.EventRingSize > 0 || cfg.EventLog != nil {
		bus = obs.NewBus(obs.BusConfig{
			RingSize: cfg.EventRingSize,
			Spill:    cfg.EventLog,
			RDN:      cfg.RDN,
		})
	}
	var rec *flightrec.Recorder
	var auditor *flightrec.Auditor
	if cfg.CycleRingSize > 0 || cfg.CycleLog != nil {
		rec = flightrec.NewRecorder(flightrec.Config{
			RingSize: cfg.CycleRingSize,
			Spill:    cfg.CycleLog,
		})
		rec.SetRDN(cfg.RDN)
		rec.SetBus(bus)
		sched.SetRecorder(rec)
		window := cfg.ConformanceWindow
		if window <= 0 {
			window = DefaultConformanceWindow
		}
		auditor = flightrec.NewAuditor(rec, flightrec.AuditorConfig{
			Window:           window,
			ExemplarsPerSpan: cfg.ExemplarsPerSpan,
		})
		auditor.SetBus(bus)
	}
	breakers := make(map[core.NodeID]*breaker.Breaker, len(addrs))
	for id := range addrs {
		breakers[id] = breaker.New(cfg.Breaker)
	}
	reqLat := make(map[qos.SubscriberID]*telemetry.Histogram, dir.Len())
	for _, id := range dir.IDs() {
		reqLat[id] = telemetry.NewHistogram()
	}
	relayLat := make(map[core.NodeID]*telemetry.Histogram, len(addrs))
	for id := range addrs {
		relayLat[id] = telemetry.NewHistogram()
	}
	acct := make(map[core.NodeID]*nodeAcct, len(addrs))
	for id := range addrs {
		acct[id] = &nodeAcct{}
	}
	groupOf := make(map[qos.SubscriberID]string, dir.Len())
	for _, id := range dir.IDs() {
		if sub, err := dir.Subscriber(id); err == nil {
			groupOf[id] = sub.Group
		}
	}
	srv := &Server{
		cfg:        cfg,
		sched:      sched,
		logger:     cfg.Logger,
		stopCh:     make(chan struct{}),
		drainCh:    make(chan struct{}),
		conns:      make(map[net.Conn]struct{}),
		adminConns: make(map[net.Conn]struct{}),
		beConns:    make(map[net.Conn]struct{}),
		admission:  newAdmission(cfg.MaxConns, cfg.Subscribers, cfg.ShardCount),
		tracer: telemetry.NewTracer(telemetry.TracerConfig{
			SampleEvery: cfg.TraceSampleEvery,
			Buffer:      cfg.TraceBuffer,
		}),
		bus:       bus,
		rec:       rec,
		auditor:   auditor,
		migrating: make(map[string]struct{}),
	}
	srv.tracer.SetBus(bus)
	srv.topo.Store(&topology{
		dir:        dir,
		classifier: classify.NewHostClassifier(dir),
		groupOf:    groupOf,
		reqLat:     reqLat,
		relayLat:   relayLat,
		addrs:      addrs,
		breakers:   breakers,
		acct:       acct,
		draining:   make(map[core.NodeID]bool),
	})
	return srv, nil
}

// Scheduler exposes the core scheduler for inspection.
func (s *Server) Scheduler() *core.Scheduler { return s.sched }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:     s.accepted.Load(),
		Served:       s.served.Load(),
		Rejected:     s.rejected.Load(),
		Unclassified: s.unclassified.Load(),
		Errors:       s.errs.Load(),
		Retried:      s.retried.Load(),
		Abandoned:    s.abandoned.Load(),
		ShedConns:    s.shedConns.Load(),
		Shed:         s.shedReqs.Load(),
		NotOwned:     s.notOwned.Load(),
		Fenced:       s.fenced.Load(),
		HandedOff:    s.handedOff.Load(),
	}
}

// Serve runs the dispatcher on the listener until Close. It starts the
// scheduling ticker and the accounting poller.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dispatch: server closed")
	}
	s.ln = ln
	s.mu.Unlock()

	s.loopWG.Add(2)
	go s.tickLoop()
	go s.acctLoop()

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.drainCh:
				return nil
			default:
				return fmt.Errorf("dispatch: accept: %w", err)
			}
		}
		s.accepted.Add(1)
		if !s.trackConn(conn) {
			// Past MaxConns (or already draining): shed fast. The 503 is
			// written off the accept path so a slow client cannot stall
			// new accepts.
			s.shedConns.Add(1)
			s.connWG.Add(1)
			go func() {
				defer s.connWG.Done()
				s.respondError(conn, 503)
				conn.Close()
			}()
			continue
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer s.untrackConn(conn)
			s.handle(conn)
		}()
	}
}

// trackConn registers an accepted connection, refusing past MaxConns.
func (s *Server) trackConn(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrackConn(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// trackAdminConn registers a control-plane connection for Close's deadline
// zap and force-close sweeps. Unlike trackConn it never refuses: MaxConns
// bounds subscriber traffic, and a saturated data plane must not lock the
// operator out of the very surface that can shed it.
func (s *Server) trackAdminConn(conn net.Conn) {
	s.connMu.Lock()
	s.adminConns[conn] = struct{}{}
	s.connMu.Unlock()
}

func (s *Server) untrackAdminConn(conn net.Conn) {
	s.connMu.Lock()
	delete(s.adminConns, conn)
	s.connMu.Unlock()
}

// Close stops the dispatcher gracefully: it stops accepting, lets in-flight
// requests finish for up to DrainTimeout (the scheduling and accounting
// loops keep running through the drain so queued requests still dispatch),
// then aborts whatever remains and waits for every goroutine.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.drainCh)
	ln := s.ln
	adminLn := s.adminLn
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	if adminLn != nil {
		_ = adminLn.Close()
	}
	// Withdraw still-queued requests of migrating partitions before the
	// drain: letting them dispatch here would splice them from a deposed
	// owner (the fence would refuse each one the hard way), and counting
	// them shed would lose them — the partition's new owner redispatches
	// them instead (see SetMigrating/Handoffs).
	s.handoffMigrating()
	// Nudge idle keep-alive readers: expiring the read deadline unblocks
	// handlers parked in ReadRequest without disturbing in-flight response
	// writes.
	s.connMu.Lock()
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	for c := range s.adminConns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.connMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
	}

	// Drain is over: abort queue waits and retry backoffs, cut hung client
	// and backend sockets, and stop the loops.
	close(s.stopCh)
	s.connMu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	for c := range s.adminConns {
		_ = c.Close()
	}
	s.connMu.Unlock()
	s.beMu.Lock()
	for c := range s.beConns {
		_ = c.Close()
	}
	s.beMu.Unlock()
	<-done
	s.loopWG.Wait()
	return err
}

// trackBackend registers a live backend connection for the shutdown sweep.
// If the abort already happened the connection is cut immediately so the
// caller's exchange fails fast instead of waiting out BackendTimeout.
func (s *Server) trackBackend(c net.Conn) func() {
	s.beMu.Lock()
	defer s.beMu.Unlock()
	select {
	case <-s.stopCh:
		_ = c.Close()
		return func() {}
	default:
	}
	s.beConns[c] = struct{}{}
	return func() {
		s.beMu.Lock()
		delete(s.beConns, c)
		s.beMu.Unlock()
	}
}

// tickLoop runs the scheduling cycle against wall time.
func (s *Server) tickLoop() {
	defer s.loopWG.Done()
	ticker := time.NewTicker(s.sched.Cycle())
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			for _, d := range s.sched.Tick() {
				s.deliver(d)
			}
		}
	}
}

// deliver hands one dispatch decision to its waiting connection goroutine —
// unless that goroutine already abandoned the request (wait timeout, client
// hang-up, shutdown). An abandoned dispatch is never relayed, so the backend
// will never complete it; its charge must be reclaimed here or it leaks from
// the node's capacity forever.
func (s *Server) deliver(d core.Dispatch) {
	pc, ok := d.Req.Payload.(*pendingConn)
	if !ok {
		return
	}
	if pc.state.CompareAndSwap(pcWaiting, pcDispatched) {
		pc.node <- d.Node
	} else {
		s.sched.ReleaseDispatch(pc.sub, d.Node, d.Req.ID)
	}
}

// acctLoop polls every backend for its accounting report each cycle. Polls
// run concurrently, one goroutine per backend, each bounded by DialTimeout:
// a dead or hung backend costs itself its deadline but never delays the
// other nodes' feedback — sequential polling would stretch every node's
// accounting cycle by DialTimeout per dead peer, exactly the feedback lag
// Figure 3 shows destabilizes the guarantee. A node whose previous poll is
// still in flight is skipped this cycle rather than probed again.
func (s *Server) acctLoop() {
	defer s.loopWG.Done()
	ticker := time.NewTicker(s.cfg.AcctCycle)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			// One topology for the whole cycle: a node added or retired
			// mid-cycle joins the rotation on the next tick.
			t := s.top()
			// Advance breaker time first: cooldowns elapse and slow-start
			// ramps climb one step per accounting cycle.
			now := time.Now()
			for id, b := range t.breakers {
				if b.Tick(now) {
					s.logger.Printf("dispatch: node %d breaker %v", id, b.State())
				}
				s.applyWeight(id, b)
			}
			for id, addr := range t.addrs {
				na := t.acct[id]
				na.mu.Lock()
				busy := na.polling
				if !busy {
					na.polling = true
				}
				na.mu.Unlock()
				if busy {
					continue
				}
				s.loopWG.Add(1)
				go s.pollOne(id, addr, na)
			}
		}
	}
}

// pollOne fetches one backend's report and folds the usage delta into the
// scheduler. It owns the node's polling slot for its duration; the slot is
// passed in from the topology the accounting cycle read, so a concurrent
// topology swap cannot hand two pollers different slots for one node.
func (s *Server) pollOne(id core.NodeID, addr string, na *nodeAcct) {
	defer s.loopWG.Done()
	defer func() {
		na.mu.Lock()
		na.polling = false
		na.mu.Unlock()
	}()
	na.mu.Lock()
	reuse := na.spareReport
	na.spareReport = nil
	na.mu.Unlock()
	cum, err := s.pollReport(id, addr, reuse)
	if err != nil {
		s.logger.Printf("dispatch: poll %v: %v", addr, err)
		s.noteBreaker(id, breaker.Poll, false)
		return
	}
	s.noteBreaker(id, breaker.Poll, true)
	na.mu.Lock()
	prev := na.lastSeen
	delta := diffReportsInto(cum, prev, na.deltaScratch)
	na.deltaScratch = delta.BySubscriber
	na.lastSeen = cum
	// The displaced snapshot's map becomes the next poll's decode target.
	na.spareReport = prev.BySubscriber
	na.mu.Unlock()
	if err := s.sched.ReportUsage(delta); err != nil {
		s.logger.Printf("dispatch: report usage: %v", err)
	}
}

// pollReport fetches one backend's usage report, decoding the subscriber
// usage into the caller's reused map (nil allocates fresh).
func (s *Server) pollReport(id core.NodeID, addr string, reuse map[qos.SubscriberID]core.SubscriberUsage) (core.UsageReport, error) {
	conn, err := s.cfg.Dial("tcp", addr, s.cfg.DialTimeout)
	if err != nil {
		return core.UsageReport{}, err
	}
	defer conn.Close()
	// A hung backend must not wedge the accounting loop.
	_ = conn.SetDeadline(time.Now().Add(s.cfg.DialTimeout))
	req := &httpwire.Request{Method: "GET", Target: backend.ReportPath, Proto: "HTTP/1.0"}
	if err := req.Write(conn); err != nil {
		return core.UsageReport{}, err
	}
	br := getReader(conn)
	resp, err := httpwire.ReadResponse(br)
	putReader(br)
	if err != nil {
		return core.UsageReport{}, err
	}
	if resp.StatusCode != 200 {
		return core.UsageReport{}, fmt.Errorf("report status %d", resp.StatusCode)
	}
	rep, err := backend.DecodeReportInto(resp.Body, reuse)
	if err != nil {
		return core.UsageReport{}, err
	}
	rep.Node = id // trust our own pool identity, not the backend's claim
	return rep, nil
}

// diffReports converts a backend's cumulative report into the delta since
// the previous snapshot. A backend restart (counters going backwards) is
// treated as a fresh start: the new cumulative IS the delta.
func diffReports(cum, prev core.UsageReport) core.UsageReport {
	return diffReportsInto(cum, prev, nil)
}

// diffReportsInto is diffReports writing the per-subscriber deltas into the
// caller's reused map (cleared first; nil allocates fresh).
func diffReportsInto(cum, prev core.UsageReport, scratch map[qos.SubscriberID]core.SubscriberUsage) core.UsageReport {
	if scratch == nil {
		scratch = make(map[qos.SubscriberID]core.SubscriberUsage, len(cum.BySubscriber))
	} else {
		clear(scratch)
	}
	delta := core.UsageReport{
		Node:         cum.Node,
		Total:        cum.Total.Sub(prev.Total),
		BySubscriber: scratch,
	}
	if delta.Total.AnyNegative() {
		delta.Total = cum.Total
		prev = core.UsageReport{}
	}
	for id, u := range cum.BySubscriber {
		p := prev.BySubscriber[id]
		d := core.SubscriberUsage{
			Usage:     u.Usage.Sub(p.Usage),
			Completed: u.Completed - p.Completed,
		}
		if d.Usage.AnyNegative() || d.Completed < 0 {
			d = u // restarted backend: take the fresh cumulative
		}
		if d.Usage.IsZero() && d.Completed == 0 {
			continue
		}
		delta.BySubscriber[id] = d
	}
	return delta
}

var reqIDs atomic.Uint64

// retryTimerPool recycles backoff timers across retries; a timer goes back
// stopped and drained, so a pooled timer is never live.
var retryTimerPool sync.Pool

func getRetryTimer(d time.Duration) *time.Timer {
	if t, _ := retryTimerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putRetryTimer returns a timer to the pool; fired says its channel was
// already received from, otherwise the timer is stopped and, if it fired
// concurrently, drained.
func putRetryTimer(t *time.Timer, fired bool) {
	if !fired && !t.Stop() {
		<-t.C
	}
	retryTimerPool.Put(t)
}

// readerPool recycles bufio readers for the relay and accounting-poll paths;
// both fully materialize what they parse before the reader is released.
var readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 4096) }}

func getReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

func putReader(br *bufio.Reader) {
	br.Reset(nil) // drop the connection reference
	readerPool.Put(br)
}

// handle serves one client connection. HTTP/1.1 connections are persistent
// (P-HTTP): each request on the connection is classified, queued and
// scheduled independently — consecutive requests may be relayed to
// different back ends, just as the paper's splicing handles one request per
// spliced connection.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := getReader(conn)
	defer putReader(br)
	for {
		// A draining server reads no further requests, even on persistent
		// connections.
		select {
		case <-s.drainCh:
			return
		default:
		}
		// Stuck clients must not pin handler goroutines forever; the
		// deadline renews per request on persistent connections.
		_ = conn.SetDeadline(time.Now().Add(s.cfg.ClientIdleTimeout))
		req, err := httpwire.ReadRequest(br)
		if err != nil {
			select {
			case <-s.drainCh:
				// Close zapped the read deadline to unpark this idle
				// keep-alive connection; quit silently.
				return
			default:
			}
			if err != io.EOF {
				s.respondError(conn, 400)
			}
			return
		}
		if !s.serveOne(conn, req) {
			return
		}
		if !wantKeepAlive(req) {
			return
		}
	}
}

// serveOne processes a single parsed request on the connection; it reports
// whether the connection is still usable for another request.
func (s *Server) serveOne(conn net.Conn, req *httpwire.Request) bool {
	switch req.Path() {
	case StatsPath:
		s.serveStats(conn)
		return true
	case MetricsPath:
		s.serveMetrics(conn)
		return true
	case TracePath:
		s.serveTrace(conn)
		return true
	case CyclesPath:
		s.serveCycles(conn)
		return true
	case EventsPath:
		s.serveEvents(conn)
		return true
	}
	if strings.HasPrefix(req.Path(), AdminPrefix) {
		// The mutation surface is served only by ServeAdmin's dedicated
		// listener (gaged's adminListen knob); a client that can reach the
		// data-plane port must never be able to sign, resize, or retire
		// subscribers, so the control-plane routes answer 404 here.
		s.respondError(conn, 404)
		return true
	}
	// The request ID doubles as the trace-sampling key, so it is drawn
	// before classification: every client request — even one that never
	// reaches the scheduler — is a sampling candidate.
	id := reqIDs.Add(1)
	start := time.Now()
	tid := obs.Mint(s.cfg.RDN, id)
	tr := s.tracer.Sample(id)
	tr.SetID(tid)
	t := s.top()
	sub, ok := t.classifier.Classify(req.Host, req.Path())
	if !ok {
		tr.Add(telemetry.StageClassify, 0, "")
		tr.Settle(telemetry.OutcomeUnclassified)
		s.unclassified.Add(1)
		s.respondError(conn, 404)
		return true
	}
	tr.SetSubscriber(string(sub))
	tr.Add(telemetry.StageClassify, 0, string(sub))
	if tr != nil && s.auditor != nil {
		// Feed the conformance auditor's exemplar reservoir once this
		// sampled request settles, whichever path it takes — a violation
		// span opening for sub snapshots the last few IDs.
		defer s.auditor.NoteExemplar(sub, tid)
	}
	group := t.groupOf[sub]
	if s.cfg.Owns != nil && !s.cfg.Owns(group) {
		// Partition admission: this group is homed on another front end.
		// Queuing it here would grow scheduler state the owner cannot see;
		// refuse instead, bounding a takeover's blast radius to the groups
		// that actually moved.
		tr.Settle(telemetry.OutcomeNotOwned)
		s.notOwned.Add(1)
		s.respondError(conn, 503)
		return true
	}
	if !s.admission.admit(sub) {
		// Admission shed: this subscriber is past its guaranteed in-flight
		// quota and the only free slots are idle reserved ones. Drop the
		// connection too — under saturation a persistent connection must
		// not squat an accept slot while being refused work.
		tr.Settle(telemetry.OutcomeShed)
		s.shedReqs.Add(1)
		s.respondError(conn, 503)
		return false
	}
	defer s.admission.release(sub)
	pc := &pendingConn{
		id:    id,
		conn:  conn,
		req:   req,
		sub:   sub,
		group: group,
		node:  make(chan core.NodeID, 1),
		start: start,
		trace: tr,
		tid:   tid,
	}
	err := s.sched.Enqueue(core.Request{
		ID:         pc.id,
		Subscriber: sub,
		Payload:    pc,
	})
	if err != nil {
		tr.Settle(telemetry.OutcomeRejected)
		s.rejected.Add(1)
		s.respondError(conn, 503)
		return true
	}
	tr.Add(telemetry.StageQueue, 0, "")
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case node := <-pc.node:
		if pc.state.Load() == pcAbandoned {
			// An admin delete removed this request's subscriber while it was
			// queued; its scheduler state is already gone. Refuse, never relay.
			tr.Settle(telemetry.OutcomeRejected)
			s.rejected.Add(1)
			s.respondError(conn, 503)
			return true
		}
		if pc.state.Load() == pcHandedOff {
			// Close withdrew this request because its group migrated; the
			// new owner redispatches it (see Handoffs). The client retries
			// there — this is not a shed.
			tr.Settle(telemetry.OutcomeHandedOff)
			s.respondError(conn, 503)
			return false
		}
		tr.Add(telemetry.StageDispatch, int64(node), "")
		return s.relay(pc, node)
	case <-s.stopCh:
		s.abandon(pc)
		tr.Settle(telemetry.OutcomeDrainAbort)
		s.respondError(conn, 503)
		return false
	case <-timer.C:
		// The scheduler never dispatched us (sustained overload). Withdraw
		// the request before moving on: once we answer 503 and keep reading
		// the connection, a late dispatch must never relay onto it.
		s.abandon(pc)
		tr.Settle(telemetry.OutcomeQueueTimeout)
		s.rejected.Add(1)
		s.respondError(conn, 503)
		return true
	}
}

// abandon withdraws a request that will never be relayed. Wherever the
// request currently is — still queued, mid-dispatch in the tick loop, or
// already charged to a node — its scheduler charge is reclaimed, and the
// dispatch decision (if any) is consumed so relay can never run against a
// connection that has moved on to its next request.
func (s *Server) abandon(pc *pendingConn) {
	if !pc.state.CompareAndSwap(pcWaiting, pcAbandoned) {
		switch pc.state.Load() {
		case pcHandedOff:
			// The migration sweep won: the request was withdrawn from the
			// scheduler and recorded for the partition's new owner. There is
			// no charge left to reclaim and it is not an abandonment — the
			// new owner redispatches it.
			return
		case pcAbandoned:
			// An admin delete of the subscriber won: it already reclaimed the
			// scheduler state and sent the wake-up sentinel on pc.node. There
			// was no dispatch, so there is no charge to release — consuming
			// the sentinel and calling ReleaseDispatch here would invent one.
			return
		}
		// The tick loop won the race: the node is already (or imminently)
		// in the channel. Take it and release the charge.
		s.abandoned.Add(1)
		node := <-pc.node
		s.sched.ReleaseDispatch(pc.sub, node, pc.id)
		return
	}
	// We won the CAS, so the dispatch decision can no longer reach us. If
	// the request still sits in its FIFO, remove it here; if the scheduler
	// popped it but the tick loop has not reached its CAS yet, that failed
	// CAS releases the charge instead.
	s.abandoned.Add(1)
	s.sched.CancelQueued(pc.sub, pc.id)
}

// wantKeepAlive implements the HTTP/1.x persistence rules: 1.1 defaults to
// keep-alive unless "Connection: close"; 1.0 requires an explicit opt-in.
func wantKeepAlive(req *httpwire.Request) bool {
	c := req.Header["Connection"]
	if req.Proto == "HTTP/1.1" {
		return !strings.EqualFold(c, "close")
	}
	return strings.EqualFold(c, "keep-alive")
}

// relay forwards the request to the chosen backend and the parsed response
// to the client — the application-level splice. A backend that fails the
// dial (or whose breaker refuses the relay) gets one retry: the charge is
// re-dispatched through the scheduler to an alternate node after a short
// backoff, so a node dying between dispatch and dial degrades to extra
// latency instead of a 502. The backoff and the whole path select on stopCh
// so Close never blocks on a sleeping retry. It reports whether the client
// connection remains usable.
func (s *Server) relay(pc *pendingConn, node core.NodeID) bool {
	tr := pc.trace
	if s.cfg.Fence != nil && !s.cfg.Fence(pc.group) {
		// Deposed between dispatch and relay: the group's lease epoch moved
		// on, so this decision must not reach a backend — the new owner is
		// already scheduling the partition against its own capacity share.
		// Reclaim the charge and refuse.
		s.sched.ReleaseDispatch(pc.sub, node, pc.id)
		s.fenced.Add(1)
		if s.rec != nil {
			s.rec.Annotate(flightrec.TierEvent{Kind: "fence", Group: pc.group})
		}
		tr.Settle(telemetry.OutcomeFenced)
		s.respondError(pc.conn, 503)
		return true
	}
	tr.Add(telemetry.StageRelay, int64(node), "")
	attempt := time.Now()
	be, untrack, err := s.sendRequest(pc, node)
	if err != nil {
		alt, ok := s.sched.Redispatch(pc.sub, pc.id, node)
		if !ok {
			// No alternate has room; the charge is already released.
			tr.Settle(telemetry.OutcomeError)
			s.errs.Add(1)
			s.respondError(pc.conn, 502)
			return true
		}
		s.retried.Add(1)
		// The retry hop is marked whether the first attempt failed at dial
		// time or after a partial request write — the settled trace must
		// name every node the request was aimed at.
		tr.Add(telemetry.StageRetry, int64(alt), "relay failed, redispatched")
		// A pooled timer, stopped and drained on the abort path: time.After
		// here stranded a live timer until expiry for every shutdown-aborted
		// retry, pinning its channel and callback for the full backoff.
		bt := getRetryTimer(s.cfg.RetryBackoff)
		select {
		case <-bt.C:
			putRetryTimer(bt, true)
		case <-s.stopCh:
			putRetryTimer(bt, false)
			// Shutdown abort: reclaim the alternate's charge and give up.
			s.sched.ReleaseDispatch(pc.sub, alt, pc.id)
			tr.Settle(telemetry.OutcomeDrainAbort)
			s.respondError(pc.conn, 503)
			return false
		}
		// The relay latency histogram measures the exchange against the
		// node that actually served; restart the clock for the alternate.
		attempt = time.Now()
		be, untrack, err = s.sendRequest(pc, alt)
		if err != nil {
			// The retry hop is already in the trace; exactly one terminal
			// outcome settles it here.
			s.sched.ReleaseDispatch(pc.sub, alt, pc.id)
			tr.Settle(telemetry.OutcomeError)
			s.errs.Add(1)
			s.respondError(pc.conn, 502)
			return true
		}
		node = alt
	}
	defer untrack()
	defer be.Close()
	// Parse the response so the client connection's framing survives for
	// the next request; usage accounting arrives separately via the
	// periodic report poll.
	rbr := getReader(be)
	resp, err := httpwire.ReadResponse(rbr)
	putReader(rbr)
	if err != nil {
		tr.Settle(telemetry.OutcomeError)
		s.errs.Add(1)
		s.noteBreaker(node, breaker.Relay, false)
		s.respondError(pc.conn, 502)
		return true
	}
	// Only a complete exchange counts as relay success: a backend that
	// accepts TCP but fails every request must still trip its breaker, so
	// success is noted here rather than at dial time.
	s.noteBreaker(node, breaker.Relay, true)
	if h := s.top().relayLat[node]; h != nil {
		h.Record(time.Since(attempt))
	}
	if err := resp.Write(pc.conn); err != nil {
		tr.Settle(telemetry.OutcomeClientGone)
		s.errs.Add(1)
		return false
	}
	s.served.Add(1)
	if h := s.top().reqLat[pc.sub]; h != nil {
		h.Record(time.Since(pc.start))
	}
	tr.Settle(telemetry.OutcomeServed)
	return true
}

// sendRequest performs one full request transmission toward a backend:
// breaker admission, dial, deadline, and the request write, with the
// charging-entity and trace headers applied. Any failure — refusal, dial
// error, or a partially written request — tears the attempt down (breaker
// failure noted, connection untracked and closed) and returns the error so
// the caller can redispatch. A write that fails mid-request must reach the
// retry path exactly like a failed dial: the backend may or may not have
// seen the bytes, but the client has seen nothing, so the exchange is safe
// to re-aim at an alternate.
func (s *Server) sendRequest(pc *pendingConn, node core.NodeID) (net.Conn, func(), error) {
	if !s.breakerAllow(node) {
		return nil, nil, errBreakerRefused
	}
	be, err := s.cfg.Dial("tcp", s.top().addrs[node], s.cfg.DialTimeout)
	if err != nil {
		s.noteBreaker(node, breaker.Relay, false)
		return nil, nil, err
	}
	untrack := s.trackBackend(be)
	// Bound the whole backend exchange.
	_ = be.SetDeadline(time.Now().Add(s.cfg.BackendTimeout))
	// Tag the request with its charging entity for backend accounting, and
	// with its trace ID so the backend can echo it back for attribution.
	if pc.req.Header == nil {
		pc.req.Header = make(map[string]string)
	}
	pc.req.Header[backend.SubscriberHeader] = string(pc.sub)
	if pc.tid != 0 {
		pc.req.Header[obs.TraceHeader] = pc.tid.String()
	}
	if err := pc.req.Write(be); err != nil {
		untrack()
		be.Close()
		s.noteBreaker(node, breaker.Relay, false)
		return nil, nil, err
	}
	return be, untrack, nil
}

// errBreakerRefused marks a relay skipped because the target's breaker is
// open or its half-open probe slot is already claimed.
var errBreakerRefused = errors.New("dispatch: breaker refused relay")

// breakerAllow asks a node's breaker to admit one relay.
func (s *Server) breakerAllow(id core.NodeID) bool {
	b, ok := s.top().breakers[id]
	if !ok {
		return true
	}
	return b.Allow(time.Now())
}

// noteBreaker feeds one poll/relay outcome into a node's breaker and keeps
// the scheduler's node weight in lockstep with the breaker's verdict — the
// single place health events change what the scheduler may dispatch.
func (s *Server) noteBreaker(id core.NodeID, src breaker.Source, success bool) {
	b, ok := s.top().breakers[id]
	if !ok {
		return
	}
	var changed bool
	if success {
		changed = b.Success(src, time.Now())
	} else {
		changed = b.Failure(src, time.Now())
	}
	if changed {
		s.logger.Printf("dispatch: node %d breaker %v after %v %s", id, b.State(), src,
			map[bool]string{true: "success", false: "failure"}[success])
		s.bus.Publish(obs.Event{Kind: obs.KindBreaker, Node: int(id),
			Stage: b.State().String(), Detail: src.String()})
	}
	s.applyWeight(id, b)
}

// applyWeight pushes a breaker's current weight into the scheduler. A
// draining node is pinned at weight zero regardless of breaker health —
// otherwise the accounting loop's per-cycle re-apply would ramp a drained
// node straight back into rotation.
func (s *Server) applyWeight(id core.NodeID, b *breaker.Breaker) {
	w := b.Weight()
	if s.top().draining[id] {
		w = 0
	}
	if err := s.sched.SetNodeWeight(id, w); err != nil {
		s.logger.Printf("dispatch: set node %d weight: %v", id, err)
	}
}

// BreakerSnapshot exposes one node's breaker view (tests, stats).
func (s *Server) BreakerSnapshot(id core.NodeID) (breaker.Snapshot, bool) {
	b, ok := s.top().breakers[id]
	if !ok {
		return breaker.Snapshot{}, false
	}
	return b.Snapshot(), true
}

// StatsPath serves the dispatcher's operational state as JSON.
const StatsPath = "/_gage/stats"

// statsJSON is the wire form of the stats endpoint.
type statsJSON struct {
	Accepted     uint64                    `json:"accepted"`
	Served       uint64                    `json:"served"`
	Rejected     uint64                    `json:"rejected"`
	Unclassified uint64                    `json:"unclassified"`
	Errors       uint64                    `json:"errors"`
	Retried      uint64                    `json:"retried"`
	Abandoned    uint64                    `json:"abandoned"`
	ShedConns    uint64                    `json:"shedConns"`
	Shed         uint64                    `json:"shed"`
	Subscribers  map[string]subscriberJSON `json:"subscribers"`
	Nodes        map[string]nodeJSON       `json:"nodes"`
}

type subscriberJSON struct {
	ReservationGRPS float64 `json:"reservationGRPS"`
	QueueLen        int     `json:"queueLen"`
	Dropped         uint64  `json:"dropped"`
	PredictedCPU    int64   `json:"predictedCpuNanos"`
	PredictedDisk   int64   `json:"predictedDiskNanos"`
	PredictedNet    int64   `json:"predictedNetBytes"`
	AdmissionQuota  int     `json:"admissionQuota"`
	Inflight        int     `json:"inflight"`
	Shed            uint64  `json:"shed"`
}

type nodeJSON struct {
	Addr            string  `json:"addr"`
	OutstandingCPU  int64   `json:"outstandingCpuNanos"`
	OutstandingDisk int64   `json:"outstandingDiskNanos"`
	OutstandingNet  int64   `json:"outstandingNetBytes"`
	Breaker         string  `json:"breaker"`
	Weight          float64 `json:"weight"`
	PollStreak      int     `json:"pollStreak"`
	RelayStreak     int     `json:"relayStreak"`
}

// serveStats answers the operational-stats endpoint.
func (s *Server) serveStats(conn net.Conn) {
	st := s.Stats()
	t := s.top()
	out := statsJSON{
		Accepted:     st.Accepted,
		Served:       st.Served,
		Rejected:     st.Rejected,
		Unclassified: st.Unclassified,
		Errors:       st.Errors,
		Retried:      st.Retried,
		Abandoned:    st.Abandoned,
		ShedConns:    st.ShedConns,
		Shed:         st.Shed,
		Subscribers:  make(map[string]subscriberJSON, t.dir.Len()),
		Nodes:        make(map[string]nodeJSON, len(t.addrs)),
	}
	for _, id := range t.dir.IDs() {
		sub, err := t.dir.Subscriber(id)
		if err != nil {
			continue
		}
		pred, _ := s.sched.Predicted(id)
		quota, inflight, shed := s.admission.subSnapshot(id)
		out.Subscribers[string(id)] = subscriberJSON{
			ReservationGRPS: float64(sub.Reservation),
			QueueLen:        s.sched.QueueLen(id),
			Dropped:         s.sched.Dropped(id),
			PredictedCPU:    pred.CPUTime.Nanoseconds(),
			PredictedDisk:   pred.DiskTime.Nanoseconds(),
			PredictedNet:    pred.NetBytes,
			AdmissionQuota:  quota,
			Inflight:        inflight,
			Shed:            shed,
		}
	}
	for _, nodeID := range s.sched.Nodes() {
		outst, _ := s.sched.Outstanding(nodeID)
		nj := nodeJSON{
			Addr:            t.addrs[nodeID],
			OutstandingCPU:  outst.CPUTime.Nanoseconds(),
			OutstandingDisk: outst.DiskTime.Nanoseconds(),
			OutstandingNet:  outst.NetBytes,
		}
		if snap, ok := s.BreakerSnapshot(nodeID); ok {
			nj.Breaker = snap.State.String()
			// A draining node's scheduler weight is pinned at zero whatever
			// its breaker says; report the effective weight the operator is
			// polling for.
			nj.Weight = snap.Weight
			if t.draining[nodeID] {
				nj.Weight = 0
			}
			nj.PollStreak = snap.PollStreak
			nj.RelayStreak = snap.RelayStreak
		}
		out.Nodes[fmt.Sprintf("%d", nodeID)] = nj
	}
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		s.respondError(conn, 500)
		return
	}
	resp := &httpwire.Response{
		StatusCode: 200,
		Header:     map[string]string{"Content-Type": "application/json"},
		Body:       body,
	}
	// The poller may be gone; nothing else to do.
	_ = resp.Write(conn)
}

func (s *Server) respondError(conn net.Conn, code int) {
	resp := &httpwire.Response{StatusCode: code, Header: map[string]string{}}
	// The client may already be gone; nothing more to do.
	_ = resp.Write(conn)
}
