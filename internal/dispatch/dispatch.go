// Package dispatch is the live-network Gage front end: a TCP listener that
// classifies incoming HTTP requests by virtual host, queues them in the core
// scheduler's per-subscriber queues, dispatches them to back-end servers
// under the credit-based QoS discipline, and feeds the back ends' accounting
// reports into the scheduler's balances.
//
// It plays the RDN's role over real sockets. The first-leg handshake and
// URL read happen here; the second leg is a fresh connection to the chosen
// backend and the response is relayed to the client — application-level
// splicing, the deployable stand-in for the kernel-level packet remapping
// that internal/splice models packet by packet.
package dispatch

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gage/internal/backend"
	"gage/internal/classify"
	"gage/internal/core"
	"gage/internal/httpwire"
	"gage/internal/qos"
)

// Backend declares one back-end server to the dispatcher.
type Backend struct {
	// ID is the node identity used by the scheduler and in reports.
	ID core.NodeID
	// Addr is the host:port the backend listens on.
	Addr string
	// Capacity is the node's per-second resource capacity.
	Capacity qos.Vector
}

// Config assembles a dispatcher.
type Config struct {
	// Subscribers defines sites, hosts, reservations.
	Subscribers []qos.Subscriber
	// Backends lists the back-end pool (at least one).
	Backends []Backend
	// Scheduler tunes the core scheduler (defaults apply).
	Scheduler core.Config
	// AcctCycle is how often backends are polled for usage (default 100 ms).
	AcctCycle time.Duration
	// DialTimeout bounds backend dials (default 2 s).
	DialTimeout time.Duration
	// QueueTimeout bounds how long an accepted request may wait for a
	// dispatch decision before it is abandoned with a 503 (default 30 s).
	QueueTimeout time.Duration
	// RetryBackoff is the pause before the relay's single retry against an
	// alternate backend after a dial failure (default 25 ms).
	RetryBackoff time.Duration
	// Dial opens backend connections; nil means net.DialTimeout. Fault
	// drills swap in a chaos dialer here to script backend outages without
	// touching real processes.
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)
	// Logger receives operational errors (default: standard logger).
	Logger *log.Logger
}

// Stats counts dispatcher outcomes.
type Stats struct {
	// Accepted is connections accepted.
	Accepted uint64
	// Served is requests relayed successfully.
	Served uint64
	// Rejected is requests refused with 503 (queue overflow).
	Rejected uint64
	// Unclassified is requests with no matching subscriber (404).
	Unclassified uint64
	// Errors is backend dial/relay failures (502).
	Errors uint64
	// Retried is relays re-dispatched to an alternate backend after a
	// dial failure.
	Retried uint64
	// Abandoned is requests withdrawn after enqueue (wait timeout, client
	// hang-up, shutdown) whose scheduler charge was reclaimed.
	Abandoned uint64
}

// Server is a running dispatcher.
type Server struct {
	cfg        Config
	dir        *qos.Directory
	classifier classify.Classifier
	sched      *core.Scheduler
	addrs      map[core.NodeID]string
	logger     *log.Logger

	accepted     atomic.Uint64
	served       atomic.Uint64
	rejected     atomic.Uint64
	unclassified atomic.Uint64
	errs         atomic.Uint64
	retried      atomic.Uint64
	abandoned    atomic.Uint64

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	stopCh chan struct{}
	wg     sync.WaitGroup

	// lastSeen holds each backend's previous cumulative report, so usage
	// deltas survive lost polls. Guarded by acctMu: polls run concurrently.
	acctMu   sync.Mutex
	lastSeen map[core.NodeID]core.UsageReport

	// polling marks backends with a poll currently in flight, so a dead
	// node slow-failing at DialTimeout accumulates one blocked probe, not
	// one per accounting cycle. Guarded by acctMu.
	polling map[core.NodeID]bool

	// failures counts consecutive poll/relay failures per node; at
	// UnhealthyAfter the node is disabled until a poll or relay succeeds
	// again.
	failMu   sync.Mutex
	failures map[core.NodeID]int
}

// UnhealthyAfter is how many consecutive backend failures disable a node.
const UnhealthyAfter = 3

// pendingConn lifecycle states: the dispatch/abandon handshake. Exactly one
// side wins the CAS from pcWaiting, so a dispatch decision is either
// delivered to the serving goroutine or its charge is reclaimed — never
// both, never neither.
const (
	pcWaiting    int32 = iota // queued or in flight, serving goroutine waiting
	pcDispatched              // claimed by the dispatcher; node sent on the channel
	pcAbandoned               // withdrawn by the serving goroutine; never relay
)

// pendingConn is the scheduler payload for a waiting client connection.
type pendingConn struct {
	// id is the scheduler request ID, the key for cancel/release.
	id   uint64
	conn net.Conn
	req  *httpwire.Request
	sub  qos.SubscriberID
	// node receives the dispatch decision (buffered; sent only after a
	// successful CAS to pcDispatched).
	node chan core.NodeID
	// state is the pcWaiting/pcDispatched/pcAbandoned handshake word.
	state atomic.Int32
}

// New builds a dispatcher.
func New(cfg Config) (*Server, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("dispatch: at least one backend required")
	}
	if cfg.AcctCycle <= 0 {
		cfg.AcctCycle = 100 * time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 30 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = log.Default()
	}
	if cfg.Dial == nil {
		cfg.Dial = net.DialTimeout
	}
	dir, err := qos.NewDirectory(cfg.Subscribers)
	if err != nil {
		return nil, err
	}
	nodes := make([]core.NodeConfig, 0, len(cfg.Backends))
	addrs := make(map[core.NodeID]string, len(cfg.Backends))
	for _, b := range cfg.Backends {
		cap := b.Capacity
		if cap.IsZero() {
			cap = qos.Vector{CPUTime: time.Second, DiskTime: time.Second, NetBytes: 12_500_000}
		}
		nodes = append(nodes, core.NodeConfig{ID: b.ID, Capacity: cap})
		addrs[b.ID] = b.Addr
	}
	sched, err := core.New(dir, nodes, cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:        cfg,
		dir:        dir,
		classifier: classify.NewHostClassifier(dir),
		sched:      sched,
		addrs:      addrs,
		logger:     cfg.Logger,
		stopCh:     make(chan struct{}),
		lastSeen:   make(map[core.NodeID]core.UsageReport, len(addrs)),
		polling:    make(map[core.NodeID]bool, len(addrs)),
		failures:   make(map[core.NodeID]int, len(addrs)),
	}, nil
}

// Scheduler exposes the core scheduler for inspection.
func (s *Server) Scheduler() *core.Scheduler { return s.sched }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:     s.accepted.Load(),
		Served:       s.served.Load(),
		Rejected:     s.rejected.Load(),
		Unclassified: s.unclassified.Load(),
		Errors:       s.errs.Load(),
		Retried:      s.retried.Load(),
		Abandoned:    s.abandoned.Load(),
	}
}

// Serve runs the dispatcher on the listener until Close. It starts the
// scheduling ticker and the accounting poller.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dispatch: server closed")
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(2)
	go s.tickLoop()
	go s.acctLoop()

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stopCh:
				return nil
			default:
				return fmt.Errorf("dispatch: accept: %w", err)
			}
		}
		s.accepted.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the dispatcher and waits for in-flight work.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stopCh)
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// tickLoop runs the scheduling cycle against wall time.
func (s *Server) tickLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.sched.Cycle())
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			for _, d := range s.sched.Tick() {
				s.deliver(d)
			}
		}
	}
}

// deliver hands one dispatch decision to its waiting connection goroutine —
// unless that goroutine already abandoned the request (wait timeout, client
// hang-up, shutdown). An abandoned dispatch is never relayed, so the backend
// will never complete it; its charge must be reclaimed here or it leaks from
// the node's capacity forever.
func (s *Server) deliver(d core.Dispatch) {
	pc, ok := d.Req.Payload.(*pendingConn)
	if !ok {
		return
	}
	if pc.state.CompareAndSwap(pcWaiting, pcDispatched) {
		pc.node <- d.Node
	} else {
		s.sched.ReleaseDispatch(pc.sub, d.Node, d.Req.ID)
	}
}

// acctLoop polls every backend for its accounting report each cycle. Polls
// run concurrently, one goroutine per backend, each bounded by DialTimeout:
// a dead or hung backend costs itself its deadline but never delays the
// other nodes' feedback — sequential polling would stretch every node's
// accounting cycle by DialTimeout per dead peer, exactly the feedback lag
// Figure 3 shows destabilizes the guarantee. A node whose previous poll is
// still in flight is skipped this cycle rather than probed again.
func (s *Server) acctLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.AcctCycle)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			for id, addr := range s.addrs {
				s.acctMu.Lock()
				busy := s.polling[id]
				if !busy {
					s.polling[id] = true
				}
				s.acctMu.Unlock()
				if busy {
					continue
				}
				s.wg.Add(1)
				go s.pollOne(id, addr)
			}
		}
	}
}

// pollOne fetches one backend's report and folds the usage delta into the
// scheduler. It owns the node's polling slot for its duration.
func (s *Server) pollOne(id core.NodeID, addr string) {
	defer s.wg.Done()
	defer func() {
		s.acctMu.Lock()
		s.polling[id] = false
		s.acctMu.Unlock()
	}()
	cum, err := s.pollReport(id, addr)
	if err != nil {
		s.logger.Printf("dispatch: poll %v: %v", addr, err)
		s.noteFailure(id)
		return
	}
	s.noteSuccess(id)
	s.acctMu.Lock()
	delta := diffReports(cum, s.lastSeen[id])
	s.lastSeen[id] = cum
	s.acctMu.Unlock()
	if err := s.sched.ReportUsage(delta); err != nil {
		s.logger.Printf("dispatch: report usage: %v", err)
	}
}

// pollReport fetches one backend's usage report.
func (s *Server) pollReport(id core.NodeID, addr string) (core.UsageReport, error) {
	conn, err := s.cfg.Dial("tcp", addr, s.cfg.DialTimeout)
	if err != nil {
		return core.UsageReport{}, err
	}
	defer conn.Close()
	// A hung backend must not wedge the accounting loop.
	_ = conn.SetDeadline(time.Now().Add(s.cfg.DialTimeout))
	req := &httpwire.Request{Method: "GET", Target: backend.ReportPath, Proto: "HTTP/1.0"}
	if err := req.Write(conn); err != nil {
		return core.UsageReport{}, err
	}
	resp, err := httpwire.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return core.UsageReport{}, err
	}
	if resp.StatusCode != 200 {
		return core.UsageReport{}, fmt.Errorf("report status %d", resp.StatusCode)
	}
	rep, err := backend.DecodeReport(resp.Body)
	if err != nil {
		return core.UsageReport{}, err
	}
	rep.Node = id // trust our own pool identity, not the backend's claim
	return rep, nil
}

// diffReports converts a backend's cumulative report into the delta since
// the previous snapshot. A backend restart (counters going backwards) is
// treated as a fresh start: the new cumulative IS the delta.
func diffReports(cum, prev core.UsageReport) core.UsageReport {
	delta := core.UsageReport{
		Node:         cum.Node,
		Total:        cum.Total.Sub(prev.Total),
		BySubscriber: make(map[qos.SubscriberID]core.SubscriberUsage, len(cum.BySubscriber)),
	}
	if delta.Total.AnyNegative() {
		delta.Total = cum.Total
		prev = core.UsageReport{}
	}
	for id, u := range cum.BySubscriber {
		p := prev.BySubscriber[id]
		d := core.SubscriberUsage{
			Usage:     u.Usage.Sub(p.Usage),
			Completed: u.Completed - p.Completed,
		}
		if d.Usage.AnyNegative() || d.Completed < 0 {
			d = u // restarted backend: take the fresh cumulative
		}
		if d.Usage.IsZero() && d.Completed == 0 {
			continue
		}
		delta.BySubscriber[id] = d
	}
	return delta
}

var reqIDs atomic.Uint64

// handle serves one client connection. HTTP/1.1 connections are persistent
// (P-HTTP): each request on the connection is classified, queued and
// scheduled independently — consecutive requests may be relayed to
// different back ends, just as the paper's splicing handles one request per
// spliced connection.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		// Stuck clients must not pin handler goroutines forever; the
		// deadline renews per request on persistent connections.
		_ = conn.SetDeadline(time.Now().Add(60 * time.Second))
		req, err := httpwire.ReadRequest(br)
		if err != nil {
			if err != io.EOF {
				s.respondError(conn, 400)
			}
			return
		}
		if !s.serveOne(conn, req) {
			return
		}
		if !wantKeepAlive(req) {
			return
		}
	}
}

// serveOne processes a single parsed request on the connection; it reports
// whether the connection is still usable for another request.
func (s *Server) serveOne(conn net.Conn, req *httpwire.Request) bool {
	if req.Path() == StatsPath {
		s.serveStats(conn)
		return true
	}
	sub, ok := s.classifier.Classify(req.Host, req.Path())
	if !ok {
		s.unclassified.Add(1)
		s.respondError(conn, 404)
		return true
	}
	pc := &pendingConn{
		id:   reqIDs.Add(1),
		conn: conn,
		req:  req,
		sub:  sub,
		node: make(chan core.NodeID, 1),
	}
	err := s.sched.Enqueue(core.Request{
		ID:         pc.id,
		Subscriber: sub,
		Payload:    pc,
	})
	if err != nil {
		s.rejected.Add(1)
		s.respondError(conn, 503)
		return true
	}
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case node := <-pc.node:
		return s.relay(pc, node)
	case <-s.stopCh:
		s.abandon(pc)
		s.respondError(conn, 503)
		return false
	case <-timer.C:
		// The scheduler never dispatched us (sustained overload). Withdraw
		// the request before moving on: once we answer 503 and keep reading
		// the connection, a late dispatch must never relay onto it.
		s.abandon(pc)
		s.rejected.Add(1)
		s.respondError(conn, 503)
		return true
	}
}

// abandon withdraws a request that will never be relayed. Wherever the
// request currently is — still queued, mid-dispatch in the tick loop, or
// already charged to a node — its scheduler charge is reclaimed, and the
// dispatch decision (if any) is consumed so relay can never run against a
// connection that has moved on to its next request.
func (s *Server) abandon(pc *pendingConn) {
	s.abandoned.Add(1)
	if !pc.state.CompareAndSwap(pcWaiting, pcAbandoned) {
		// The tick loop won the race: the node is already (or imminently)
		// in the channel. Take it and release the charge.
		node := <-pc.node
		s.sched.ReleaseDispatch(pc.sub, node, pc.id)
		return
	}
	// We won the CAS, so the dispatch decision can no longer reach us. If
	// the request still sits in its FIFO, remove it here; if the scheduler
	// popped it but the tick loop has not reached its CAS yet, that failed
	// CAS releases the charge instead.
	s.sched.CancelQueued(pc.sub, pc.id)
}

// wantKeepAlive implements the HTTP/1.x persistence rules: 1.1 defaults to
// keep-alive unless "Connection: close"; 1.0 requires an explicit opt-in.
func wantKeepAlive(req *httpwire.Request) bool {
	c := req.Header["Connection"]
	if req.Proto == "HTTP/1.1" {
		return !strings.EqualFold(c, "close")
	}
	return strings.EqualFold(c, "keep-alive")
}

// relay forwards the request to the chosen backend and the parsed response
// to the client — the application-level splice. A backend that fails the
// dial gets one retry: the charge is re-dispatched through the scheduler to
// an alternate node after a short backoff, so a node dying between dispatch
// and dial degrades to extra latency instead of a 502. It reports whether
// the client connection remains usable.
func (s *Server) relay(pc *pendingConn, node core.NodeID) bool {
	be, err := s.cfg.Dial("tcp", s.addrs[node], s.cfg.DialTimeout)
	if err != nil {
		s.noteFailure(node)
		alt, ok := s.sched.Redispatch(pc.sub, pc.id, node)
		if !ok {
			// No alternate has room; the charge is already released.
			s.errs.Add(1)
			s.respondError(pc.conn, 502)
			return true
		}
		s.retried.Add(1)
		time.Sleep(s.cfg.RetryBackoff)
		be, err = s.cfg.Dial("tcp", s.addrs[alt], s.cfg.DialTimeout)
		if err != nil {
			s.noteFailure(alt)
			s.sched.ReleaseDispatch(pc.sub, alt, pc.id)
			s.errs.Add(1)
			s.respondError(pc.conn, 502)
			return true
		}
		node = alt
	}
	defer be.Close()
	// Bound the whole backend exchange.
	_ = be.SetDeadline(time.Now().Add(60 * time.Second))

	// Tag the request with its charging entity for backend accounting.
	if pc.req.Header == nil {
		pc.req.Header = make(map[string]string)
	}
	pc.req.Header[backend.SubscriberHeader] = string(pc.sub)
	if err := pc.req.Write(be); err != nil {
		s.errs.Add(1)
		s.noteFailure(node)
		s.respondError(pc.conn, 502)
		return true
	}
	// Parse the response so the client connection's framing survives for
	// the next request; usage accounting arrives separately via the
	// periodic report poll.
	resp, err := httpwire.ReadResponse(bufio.NewReader(be))
	if err != nil {
		s.errs.Add(1)
		s.noteFailure(node)
		s.respondError(pc.conn, 502)
		return true
	}
	// Only a complete exchange clears the node's failure streak: a backend
	// that accepts TCP but fails every request must still cross
	// UnhealthyAfter and be disabled, so success is noted here rather than
	// at dial time.
	s.noteSuccess(node)
	if err := resp.Write(pc.conn); err != nil {
		s.errs.Add(1)
		return false
	}
	s.served.Add(1)
	return true
}

// noteFailure records one consecutive failure against a node, disabling it
// at the threshold so the scheduler stops sending work its way.
func (s *Server) noteFailure(id core.NodeID) {
	s.failMu.Lock()
	s.failures[id]++
	n := s.failures[id]
	s.failMu.Unlock()
	if n == UnhealthyAfter {
		s.logger.Printf("dispatch: node %d unhealthy after %d failures; disabling", id, n)
		if err := s.sched.SetNodeEnabled(id, false); err != nil {
			s.logger.Printf("dispatch: disable node %d: %v", id, err)
		}
	}
}

// noteSuccess clears a node's failure streak, re-enabling it if needed.
func (s *Server) noteSuccess(id core.NodeID) {
	s.failMu.Lock()
	wasUnhealthy := s.failures[id] >= UnhealthyAfter
	s.failures[id] = 0
	s.failMu.Unlock()
	if wasUnhealthy {
		s.logger.Printf("dispatch: node %d healthy again; enabling", id)
		if err := s.sched.SetNodeEnabled(id, true); err != nil {
			s.logger.Printf("dispatch: enable node %d: %v", id, err)
		}
	}
}

// StatsPath serves the dispatcher's operational state as JSON.
const StatsPath = "/_gage/stats"

// statsJSON is the wire form of the stats endpoint.
type statsJSON struct {
	Accepted     uint64                    `json:"accepted"`
	Served       uint64                    `json:"served"`
	Rejected     uint64                    `json:"rejected"`
	Unclassified uint64                    `json:"unclassified"`
	Errors       uint64                    `json:"errors"`
	Retried      uint64                    `json:"retried"`
	Abandoned    uint64                    `json:"abandoned"`
	Subscribers  map[string]subscriberJSON `json:"subscribers"`
	Nodes        map[string]nodeJSON       `json:"nodes"`
}

type subscriberJSON struct {
	ReservationGRPS float64 `json:"reservationGRPS"`
	QueueLen        int     `json:"queueLen"`
	Dropped         uint64  `json:"dropped"`
	PredictedCPU    int64   `json:"predictedCpuNanos"`
	PredictedDisk   int64   `json:"predictedDiskNanos"`
	PredictedNet    int64   `json:"predictedNetBytes"`
}

type nodeJSON struct {
	Addr            string `json:"addr"`
	OutstandingCPU  int64  `json:"outstandingCpuNanos"`
	OutstandingDisk int64  `json:"outstandingDiskNanos"`
	OutstandingNet  int64  `json:"outstandingNetBytes"`
}

// serveStats answers the operational-stats endpoint.
func (s *Server) serveStats(conn net.Conn) {
	st := s.Stats()
	out := statsJSON{
		Accepted:     st.Accepted,
		Served:       st.Served,
		Rejected:     st.Rejected,
		Unclassified: st.Unclassified,
		Errors:       st.Errors,
		Retried:      st.Retried,
		Abandoned:    st.Abandoned,
		Subscribers:  make(map[string]subscriberJSON, s.dir.Len()),
		Nodes:        make(map[string]nodeJSON, len(s.addrs)),
	}
	for _, id := range s.dir.IDs() {
		sub, err := s.dir.Subscriber(id)
		if err != nil {
			continue
		}
		pred, _ := s.sched.Predicted(id)
		out.Subscribers[string(id)] = subscriberJSON{
			ReservationGRPS: float64(sub.Reservation),
			QueueLen:        s.sched.QueueLen(id),
			Dropped:         s.sched.Dropped(id),
			PredictedCPU:    pred.CPUTime.Nanoseconds(),
			PredictedDisk:   pred.DiskTime.Nanoseconds(),
			PredictedNet:    pred.NetBytes,
		}
	}
	for _, nodeID := range s.sched.Nodes() {
		outst, _ := s.sched.Outstanding(nodeID)
		out.Nodes[fmt.Sprintf("%d", nodeID)] = nodeJSON{
			Addr:            s.addrs[nodeID],
			OutstandingCPU:  outst.CPUTime.Nanoseconds(),
			OutstandingDisk: outst.DiskTime.Nanoseconds(),
			OutstandingNet:  outst.NetBytes,
		}
	}
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		s.respondError(conn, 500)
		return
	}
	resp := &httpwire.Response{
		StatusCode: 200,
		Header:     map[string]string{"Content-Type": "application/json"},
		Body:       body,
	}
	// The poller may be gone; nothing else to do.
	_ = resp.Write(conn)
}

func (s *Server) respondError(conn net.Conn, code int) {
	resp := &httpwire.Response{StatusCode: code, Header: map[string]string{}}
	// The client may already be gone; nothing more to do.
	_ = resp.Write(conn)
}
