package dispatch

import (
	"sync"
	"sync/atomic"

	"gage/internal/qos"
)

// admission is the request-level admission controller: it decides, before a
// request is ever queued, whether accepting it would let spare-capacity
// traffic exhaust the handler slots that reserved traffic is entitled to.
//
// Each subscriber gets a quota of guaranteed in-flight slots proportional to
// its reservation: quota_i = floor(MaxConns × res_i / Σres). A request is
// "reserved" while its subscriber is below quota and always admitted — the
// controller maintains the invariant
//
//	total + reservedIdle ≤ max
//
// where reservedIdle is the number of unclaimed guaranteed slots, so a
// reserved request always finds room. A request beyond its subscriber's
// quota is spare-capacity traffic and is admitted only if it leaves every
// idle guaranteed slot intact: spare is shed first, reserved traffic is
// protected last, mirroring the scheduler's reservation-round/spare-round
// split at the connection-accept edge.
//
// State is sharded by subscriber-ID hash so concurrent accepts, releases,
// and stats scrapes on different subscribers contend only on their own
// shard's mutex. The two global counters live packed in one atomic word
// (total in the high half, reservedIdle in the low half) and move by
// compare-and-swap, so every transition observes both counters at once and
// the invariant holds exactly — split atomics would admit an interleaving
// that overshoots the cap by one.
type admission struct {
	// max is the in-flight request cap; 0 disables admission control.
	max int
	// mask is shardCount−1; shardCount is forced to a power of two so the
	// shard pick is one AND.
	mask   uint32
	shards []admissionShard
	// packed is total<<32 | reservedIdle: total is Σ inflight, reservedIdle
	// is Σ max(0, quota−inflight) — guaranteed slots nobody is using right
	// now, which spare admissions must not consume.
	packed atomic.Uint64
}

// admissionShard holds the per-subscriber admission state for one hash
// shard. Each subscriber's entries live in exactly one shard, so its
// quota−inflight contribution to the global reservedIdle changes only under
// this mutex.
type admissionShard struct {
	mu sync.Mutex
	// quota is each subscriber's guaranteed in-flight slot count; zero
	// quotas are not stored.
	quota map[qos.SubscriberID]int
	// inflight is each subscriber's admitted-and-unreleased request count.
	inflight map[qos.SubscriberID]int
	// shed counts refusals per subscriber.
	shed map[qos.SubscriberID]uint64
}

// DefaultShardCount is the admission/accounting shard count used when the
// dispatcher Config does not specify one.
const DefaultShardCount = 16

// normalizeShardCount clamps a configured shard count to the next
// power of two at or above it, defaulting when unset.
func normalizeShardCount(n int) int {
	if n <= 0 {
		n = DefaultShardCount
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func packCounts(total, reservedIdle int) uint64 {
	return uint64(uint32(total))<<32 | uint64(uint32(reservedIdle))
}

func unpackCounts(p uint64) (total, reservedIdle int) {
	return int(uint32(p >> 32)), int(uint32(p))
}

func newAdmission(max int, subs []qos.Subscriber, shardCount int) *admission {
	n := normalizeShardCount(shardCount)
	a := &admission{
		max:    max,
		mask:   uint32(n - 1),
		shards: make([]admissionShard, n),
	}
	per := len(subs)/n + 1
	for i := range a.shards {
		sh := &a.shards[i]
		sh.quota = make(map[qos.SubscriberID]int, per)
		sh.inflight = make(map[qos.SubscriberID]int, per)
		sh.shed = make(map[qos.SubscriberID]uint64)
	}
	if max <= 0 {
		return a
	}
	var totalRes float64
	for _, s := range subs {
		totalRes += float64(s.Reservation)
	}
	if totalRes <= 0 {
		return a
	}
	reservedIdle := 0
	for _, s := range subs {
		q := int(float64(max) * float64(s.Reservation) / totalRes)
		if q > 0 {
			a.shardFor(s.ID).quota[s.ID] = q
			reservedIdle += q
		}
	}
	a.packed.Store(packCounts(0, reservedIdle))
	return a
}

// shardFor hashes the subscriber ID (FNV-1a) onto its shard; the hash walks
// the string bytes directly, so the pick allocates nothing.
func (a *admission) shardFor(sub qos.SubscriberID) *admissionShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(sub); i++ {
		h ^= uint32(sub[i])
		h *= prime32
	}
	return &a.shards[h&a.mask]
}

// admit claims an in-flight slot for sub, reporting whether the request may
// proceed. Every true return must be paired with exactly one release.
func (a *admission) admit(sub qos.SubscriberID) bool {
	if a.max <= 0 {
		return true
	}
	sh := a.shardFor(sub)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	in := sh.inflight[sub]
	if in >= sh.quota[sub] {
		// Spare traffic: it must fit without touching idle reserved slots.
		// Check and increment commit in one CAS so a concurrent transition
		// on another shard cannot be half-observed.
		for {
			p := a.packed.Load()
			total, idle := unpackCounts(p)
			if total+idle >= a.max {
				sh.shed[sub]++
				return false
			}
			if a.packed.CompareAndSwap(p, packCounts(total+1, idle)) {
				break
			}
		}
	} else {
		// Reserved traffic consumes one of its own guaranteed slots. Under
		// the shard lock this subscriber alone contributes quota−in ≥ 1
		// unclaimed slots to reservedIdle, so the decrement cannot drive it
		// negative.
		for {
			p := a.packed.Load()
			total, idle := unpackCounts(p)
			if a.packed.CompareAndSwap(p, packCounts(total+1, idle-1)) {
				break
			}
		}
	}
	sh.inflight[sub] = in + 1
	return true
}

// release returns sub's slot. If the subscriber drops back below quota the
// freed slot re-joins the guaranteed pool, atomically with the total
// decrement.
func (a *admission) release(sub qos.SubscriberID) {
	if a.max <= 0 {
		return
	}
	sh := a.shardFor(sub)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	in := sh.inflight[sub] - 1
	sh.inflight[sub] = in
	rejoin := in < sh.quota[sub]
	for {
		p := a.packed.Load()
		total, idle := unpackCounts(p)
		if rejoin {
			idle++
		}
		if a.packed.CompareAndSwap(p, packCounts(total-1, idle)) {
			return
		}
	}
}

// subSnapshot reports one subscriber's admission view for the stats
// endpoint, touching only that subscriber's shard.
func (a *admission) subSnapshot(sub qos.SubscriberID) (quota, inflight int, shed uint64) {
	sh := a.shardFor(sub)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.quota[sub], sh.inflight[sub], sh.shed[sub]
}

// setQuota installs sub's guaranteed in-flight slot count at runtime. The
// global reservedIdle moves by the change in this subscriber's idle
// contribution max(0, quota−inflight), under the shard lock that freezes
// that contribution, so the packed cap invariant total+reservedIdle ≤ max
// is preserved exactly — provided the caller keeps Σ quotas ≤ max (see
// rebalance for the ordering that guarantees it mid-update).
func (a *admission) setQuota(sub qos.SubscriberID, quota int) {
	if a.max <= 0 {
		return
	}
	if quota < 0 {
		quota = 0
	}
	sh := a.shardFor(sub)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old := sh.quota[sub]
	if quota == old {
		return
	}
	if quota == 0 {
		delete(sh.quota, sub)
	} else {
		sh.quota[sub] = quota
	}
	in := sh.inflight[sub]
	d := max(0, quota-in) - max(0, old-in)
	for d != 0 {
		p := a.packed.Load()
		total, idle := unpackCounts(p)
		if a.packed.CompareAndSwap(p, packCounts(total, idle+d)) {
			return
		}
	}
}

// rebalance re-derives every subscriber's guaranteed-slot quota from the
// given reservation set — quota_i = floor(max × res_i / Σres), the same
// split newAdmission computes at startup — after the admin control plane
// creates, resizes, or deletes a reservation. Subscribers absent from subs
// lose their quota. Shrinks apply before grows so Σ quotas never transiently
// exceeds max: an overshoot would let reserved admissions (which skip the
// cap check, trusting the quota sum) push total past the cap.
func (a *admission) rebalance(subs []qos.Subscriber) {
	if a.max <= 0 {
		return
	}
	var totalRes float64
	for _, s := range subs {
		totalRes += float64(s.Reservation)
	}
	want := make(map[qos.SubscriberID]int, len(subs))
	if totalRes > 0 {
		for _, s := range subs {
			if q := int(float64(a.max) * float64(s.Reservation) / totalRes); q > 0 {
				want[s.ID] = q
			}
		}
	}
	// Pass 1: shrinks and removals for current holders above target.
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		holders := make([]qos.SubscriberID, 0, len(sh.quota))
		for id := range sh.quota {
			holders = append(holders, id)
		}
		sh.mu.Unlock()
		for _, id := range holders {
			if cur, _, _ := a.subSnapshot(id); want[id] < cur {
				a.setQuota(id, want[id])
			}
		}
	}
	// Pass 2: grows and brand-new holders (setQuota no-ops when unchanged).
	for id, q := range want {
		a.setQuota(id, q)
	}
}
