package dispatch

import (
	"sync"

	"gage/internal/qos"
)

// admission is the request-level admission controller: it decides, before a
// request is ever queued, whether accepting it would let spare-capacity
// traffic exhaust the handler slots that reserved traffic is entitled to.
//
// Each subscriber gets a quota of guaranteed in-flight slots proportional to
// its reservation: quota_i = floor(MaxConns × res_i / Σres). A request is
// "reserved" while its subscriber is below quota and always admitted — the
// controller maintains the invariant
//
//	total + reservedIdle ≤ max
//
// where reservedIdle is the number of unclaimed guaranteed slots, so a
// reserved request always finds room. A request beyond its subscriber's
// quota is spare-capacity traffic and is admitted only if it leaves every
// idle guaranteed slot intact: spare is shed first, reserved traffic is
// protected last, mirroring the scheduler's reservation-round/spare-round
// split at the connection-accept edge.
type admission struct {
	mu sync.Mutex
	// max is the in-flight request cap; 0 disables admission control.
	max int
	// quota is each subscriber's guaranteed in-flight slot count.
	quota map[qos.SubscriberID]int
	// inflight is each subscriber's admitted-and-unreleased request count.
	inflight map[qos.SubscriberID]int
	// shed counts refusals per subscriber.
	shed map[qos.SubscriberID]uint64
	// total is Σ inflight.
	total int
	// reservedIdle is Σ max(0, quota−inflight): guaranteed slots nobody
	// is using right now, which spare admissions must not consume.
	reservedIdle int
}

func newAdmission(max int, subs []qos.Subscriber) *admission {
	a := &admission{
		max:      max,
		quota:    make(map[qos.SubscriberID]int, len(subs)),
		inflight: make(map[qos.SubscriberID]int, len(subs)),
		shed:     make(map[qos.SubscriberID]uint64, len(subs)),
	}
	if max <= 0 {
		return a
	}
	var totalRes float64
	for _, s := range subs {
		totalRes += float64(s.Reservation)
	}
	if totalRes <= 0 {
		return a
	}
	for _, s := range subs {
		q := int(float64(max) * float64(s.Reservation) / totalRes)
		a.quota[s.ID] = q
		a.reservedIdle += q
	}
	return a
}

// admit claims an in-flight slot for sub, reporting whether the request may
// proceed. Every true return must be paired with exactly one release.
func (a *admission) admit(sub qos.SubscriberID) bool {
	if a.max <= 0 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	in := a.inflight[sub]
	if in >= a.quota[sub] {
		// Spare traffic: it must fit without touching idle reserved slots.
		if a.total+a.reservedIdle >= a.max {
			a.shed[sub]++
			return false
		}
	} else {
		// Reserved traffic consumes one of its own guaranteed slots; the
		// invariant total+reservedIdle ≤ max proves the slot exists.
		a.reservedIdle--
	}
	a.inflight[sub] = in + 1
	a.total++
	return true
}

// release returns sub's slot. If the subscriber drops back below quota the
// freed slot re-joins the guaranteed pool.
func (a *admission) release(sub qos.SubscriberID) {
	if a.max <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inflight[sub]--
	a.total--
	if a.inflight[sub] < a.quota[sub] {
		a.reservedIdle++
	}
}

// subSnapshot reports one subscriber's admission view for the stats
// endpoint.
func (a *admission) subSnapshot(sub qos.SubscriberID) (quota, inflight int, shed uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.quota[sub], a.inflight[sub], a.shed[sub]
}
