package dispatch

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"gage/internal/flightrec"
	"gage/internal/telemetry"
)

// lockedBuffer is an io.Writer safe to read after the server closes while
// the recorder may still be committing.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestCyclesEndpointOff: with recording left off, the cycles endpoint 404s,
// the conformance families stay out of the exposition, and the accessors
// return nil.
func TestCyclesEndpointOff(t *testing.T) {
	addr, srv := startTB(t, Config{
		Subscribers: defaultSubs(),
		Backends:    []Backend{{ID: 1, Addr: liveBackend(t, 1)}},
	})
	if srv.Recorder() != nil || srv.Auditor() != nil {
		t.Fatal("recorder/auditor non-nil with recording off")
	}
	if resp := scrape(t, addr, CyclesPath); resp.StatusCode != 404 {
		t.Fatalf("cycles endpoint = %d with recording off, want 404", resp.StatusCode)
	}
	body := scrape(t, addr, MetricsPath).Body
	if bytes.Contains(body, []byte("gage_conformance_ratio")) {
		t.Error("conformance families present with recording off")
	}
}

// TestCyclesEndpointAndConformanceMetrics drives traffic through a recording
// dispatcher and checks all three tentpole surfaces: the cycle-record dump,
// the conformance families in the exposition, and the JSONL cycle log.
func TestCyclesEndpointAndConformanceMetrics(t *testing.T) {
	spill := &lockedBuffer{}
	addr, srv := startTB(t, Config{
		Subscribers:       defaultSubs(),
		Backends:          []Backend{{ID: 1, Addr: liveBackend(t, 1)}, {ID: 2, Addr: liveBackend(t, 2)}},
		MaxConns:          64,
		CycleRingSize:     512,
		CycleLog:          spill,
		ConformanceWindow: 5 * time.Second,
	})
	metricsWorkload(t, addr, srv)
	// Wait for the accounting poll to deliver the served requests'
	// completions into the cycle records (one poll cycle behind serving).
	recorded := func() int {
		total := 0
		for _, cr := range srv.Recorder().Recent(0) {
			for _, sub := range cr.Subs {
				total += sub.Completed
			}
		}
		return total
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Recorder().Seq() < 10 || recorded() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("after %d cycles only %d completions recorded", srv.Recorder().Seq(), recorded())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp := scrape(t, addr, CyclesPath)
	if resp.StatusCode != 200 {
		t.Fatalf("cycles endpoint = %d, want 200", resp.StatusCode)
	}
	var dump struct {
		RingSize   int                     `json:"ringSize"`
		Seq        uint64                  `json:"seq"`
		SpillError string                  `json:"spillError"`
		Records    []flightrec.CycleRecord `json:"records"`
	}
	if err := json.Unmarshal(resp.Body, &dump); err != nil {
		t.Fatalf("cycles json: %v", err)
	}
	if dump.RingSize != 512 {
		t.Errorf("ringSize = %d, want 512", dump.RingSize)
	}
	if dump.SpillError != "" {
		t.Errorf("spill error: %s", dump.SpillError)
	}
	if uint64(len(dump.Records)) != dump.Seq && len(dump.Records) != dump.RingSize {
		t.Errorf("%d records with seq %d and ring 512", len(dump.Records), dump.Seq)
	}
	if len(dump.Records) == 0 {
		t.Fatal("no records in the dump")
	}
	last := dump.Records[len(dump.Records)-1]
	if len(last.Subs) != 2 {
		t.Fatalf("last record has %d subscriber rows, want 2", len(last.Subs))
	}
	var served int
	for _, cr := range dump.Records {
		for _, sub := range cr.Subs {
			served += sub.Completed
		}
	}
	if served < 4 {
		t.Errorf("records account %d completions, want >= the 4 served requests", served)
	}

	series, err := telemetry.Parse(scrape(t, addr, MetricsPath).Body)
	if err != nil {
		t.Fatalf("exposition fails lint: %v", err)
	}
	if got := series["gage_cycle_records_total"].Value; got < 10 {
		t.Errorf("gage_cycle_records_total = %v, want >= 10", got)
	}
	for _, key := range []string{
		`gage_conformance_ratio{subscriber="site1",window="fast"}`,
		`gage_conformance_ratio{subscriber="site1",window="slow"}`,
		`gage_conformance_ratio{subscriber="site2",window="fast"}`,
		`gage_spare_share{subscriber="site1"}`,
		`gage_backlogged_fraction{subscriber="site1"}`,
	} {
		if _, ok := series[key]; !ok {
			t.Errorf("series %s missing from the exposition", key)
		}
	}
	for _, id := range []string{"site1", "site2"} {
		key := `gage_violation_total{subscriber="` + id + `"}`
		s, ok := series[key]
		if !ok {
			t.Errorf("series %s missing", key)
			continue
		}
		if s.Value != 0 {
			t.Errorf("%s = %v, want 0 (no guarantee violated by a light workload)", key, s.Value)
		}
	}

	// The spilled JSONL log replays offline into the same record stream.
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	recs, err := flightrec.ReadLog(bytes.NewReader(spill.bytes()))
	if err != nil {
		t.Fatalf("ReadLog(spill): %v", err)
	}
	if uint64(len(recs)) != srv.Recorder().Seq() {
		t.Errorf("spill holds %d records, recorder committed %d", len(recs), srv.Recorder().Seq())
	}
	rep := flightrec.Replay(recs, flightrec.AuditorConfig{})
	if _, ok := rep.Sub("site1"); !ok {
		t.Error("offline replay of the live cycle log lost site1")
	}
}
