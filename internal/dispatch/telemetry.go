package dispatch

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"

	"gage/internal/core"
	"gage/internal/httpwire"
	"gage/internal/qos"
	"gage/internal/telemetry"
)

// MetricsPath serves the dispatcher's state in Prometheus text format: the
// Stats counters, per-subscriber scheduler and admission state, per-node
// breaker state, and the latency summaries.
const MetricsPath = "/metrics"

// TracePath dumps the tracer's retained request-lifecycle traces as JSON.
const TracePath = "/_gage/trace"

// latencyQuantiles are the summary quantiles exposed at MetricsPath.
var latencyQuantiles = []float64{0.5, 0.9, 0.99}

// buildExposition renders one scrape. Families and series are emitted in a
// fixed order (counters first, then per-subscriber, per-node, latency
// summaries; subscribers and nodes sorted by ID) so successive scrapes are
// comparable line by line.
func (s *Server) buildExposition() ([]byte, error) {
	st := s.Stats()
	e := telemetry.NewExposition()

	counters := []struct {
		name, help string
		value      uint64
	}{
		{"gage_connections_accepted_total", "Client connections accepted.", st.Accepted},
		{"gage_requests_served_total", "Requests relayed successfully.", st.Served},
		{"gage_requests_rejected_total", "Requests refused with 503 (queue overflow or queue timeout).", st.Rejected},
		{"gage_requests_unclassified_total", "Requests with no matching subscriber (404).", st.Unclassified},
		{"gage_relay_errors_total", "Backend dial/relay failures (502).", st.Errors},
		{"gage_relays_retried_total", "Relays re-dispatched to an alternate backend after a dial failure.", st.Retried},
		{"gage_requests_abandoned_total", "Requests withdrawn after enqueue with their scheduler charge reclaimed.", st.Abandoned},
		{"gage_connections_shed_total", "Connections refused with a fast 503 past MaxConns.", st.ShedConns},
		{"gage_requests_shed_total", "Requests refused by per-subscriber admission control.", st.Shed},
	}
	seen, sampled, settled := s.tracer.Counts()
	counters = append(counters, []struct {
		name, help string
		value      uint64
	}{
		{"gage_traces_seen_total", "Requests considered for trace sampling.", seen},
		{"gage_traces_sampled_total", "Requests selected for lifecycle tracing.", sampled},
		{"gage_traces_settled_total", "Sampled traces that reached a terminal outcome.", settled},
		{"gage_trace_dropped_total", "Completed traces evicted from the retention ring before being read.", s.tracer.Dropped()},
		{"gage_event_dropped_total", "Bus events overwritten in the ring before being spilled or read.", s.bus.Dropped()},
	}...)
	for _, c := range counters {
		e.Family(c.name, "counter", c.help)
		e.Add(c.name, nil, float64(c.value))
	}

	e.Family("gage_trace_sample_period", "gauge", "Every Nth request is traced; 0 means tracing is off.")
	e.Add("gage_trace_sample_period", nil, float64(s.tracer.SampleEvery()))

	t := s.top()
	subIDs := t.dir.IDs() // already sorted
	subLabel := func(id string) []telemetry.Label {
		return []telemetry.Label{{Name: "subscriber", Value: id}}
	}
	e.Family("gage_subscriber_queue_length", "gauge", "Queued (undispatched) requests per subscriber.")
	for _, id := range subIDs {
		e.Add("gage_subscriber_queue_length", subLabel(string(id)), float64(s.sched.QueueLen(id)))
	}
	e.Family("gage_subscriber_queue_dropped_total", "counter", "Requests dropped at enqueue due to queue overflow.")
	for _, id := range subIDs {
		e.Add("gage_subscriber_queue_dropped_total", subLabel(string(id)), float64(s.sched.Dropped(id)))
	}
	e.Family("gage_subscriber_dispatched_total", "counter", "Scheduler dispatch decisions per subscriber.")
	for _, id := range subIDs {
		e.Add("gage_subscriber_dispatched_total", subLabel(string(id)), float64(s.sched.Dispatched(id)))
	}
	e.Family("gage_subscriber_inflight", "gauge", "Admitted in-flight requests per subscriber.")
	for _, id := range subIDs {
		_, inflight, _ := s.admission.subSnapshot(id)
		e.Add("gage_subscriber_inflight", subLabel(string(id)), float64(inflight))
	}
	e.Family("gage_subscriber_admission_quota", "gauge", "Guaranteed in-flight slots per subscriber (0 when admission control is off).")
	for _, id := range subIDs {
		quota, _, _ := s.admission.subSnapshot(id)
		e.Add("gage_subscriber_admission_quota", subLabel(string(id)), float64(quota))
	}
	e.Family("gage_subscriber_shed_total", "counter", "Admission-control refusals per subscriber.")
	for _, id := range subIDs {
		_, _, shed := s.admission.subSnapshot(id)
		e.Add("gage_subscriber_shed_total", subLabel(string(id)), float64(shed))
	}

	nodeIDs := s.sched.Nodes()
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })
	nodeLabel := func(id core.NodeID) []telemetry.Label {
		return []telemetry.Label{{Name: "node", Value: fmt.Sprintf("%d", id)}}
	}
	e.Family("gage_node_weight", "gauge", "Fraction of the node's capacity the scheduler may use (breaker slow-start ramp; 0 while draining).")
	draining := s.top().draining
	for _, id := range nodeIDs {
		if snap, ok := s.BreakerSnapshot(id); ok {
			w := snap.Weight
			if draining[id] {
				w = 0
			}
			e.Add("gage_node_weight", nodeLabel(id), w)
		}
	}
	e.Family("gage_node_breaker_state", "gauge", "Breaker state per node: 0 closed, 1 open, 2 half-open.")
	for _, id := range nodeIDs {
		if snap, ok := s.BreakerSnapshot(id); ok {
			e.Add("gage_node_breaker_state", nodeLabel(id), float64(snap.State))
		}
	}
	e.Family("gage_node_breaker_opens_total", "counter", "Breaker transitions into Open per node.")
	for _, id := range nodeIDs {
		if snap, ok := s.BreakerSnapshot(id); ok {
			e.Add("gage_node_breaker_opens_total", nodeLabel(id), float64(snap.Opens))
		}
	}

	e.Family("gage_request_latency_seconds", "summary", "End-to-end latency of served requests, classify to response write.")
	for _, id := range subIDs {
		if h := t.reqLat[id]; h != nil {
			e.Summary("gage_request_latency_seconds", subLabel(string(id)), h.Snapshot(), latencyQuantiles)
		}
	}
	e.Family("gage_relay_latency_seconds", "summary", "Backend exchange latency of successful relays, dial to response read.")
	for _, id := range nodeIDs {
		if h := t.relayLat[id]; h != nil {
			e.Summary("gage_relay_latency_seconds", nodeLabel(id), h.Snapshot(), latencyQuantiles)
		}
	}
	s.addConformance(e)
	return e.Bytes()
}

// serveMetrics answers the Prometheus exposition endpoint.
func (s *Server) serveMetrics(conn net.Conn) {
	body, err := s.buildExposition()
	if err != nil {
		// A build error is a bug (malformed family layout), not a client
		// problem; surface it loudly.
		s.logger.Printf("dispatch: metrics exposition: %v", err)
		s.respondError(conn, 500)
		return
	}
	resp := &httpwire.Response{
		StatusCode: 200,
		Header:     map[string]string{"Content-Type": telemetry.ContentType},
		Body:       body,
	}
	// The scraper may be gone; nothing else to do.
	_ = resp.Write(conn)
}

// traceDumpJSON is the wire form of the trace endpoint.
type traceDumpJSON struct {
	// SampleEvery is the tracing period (0 when tracing is off).
	SampleEvery uint64 `json:"sampleEvery"`
	// Seen, Sampled and Settled are the tracer's lifetime counts.
	Seen    uint64 `json:"seen"`
	Sampled uint64 `json:"sampled"`
	Settled uint64 `json:"settled"`
	// Traces is the ring of retained completed traces, oldest first.
	Traces []telemetry.Trace `json:"traces"`
}

// serveTrace answers the trace-dump endpoint.
func (s *Server) serveTrace(conn net.Conn) {
	seen, sampled, settled := s.tracer.Counts()
	out := traceDumpJSON{
		SampleEvery: s.tracer.SampleEvery(),
		Seen:        seen,
		Sampled:     sampled,
		Settled:     settled,
		Traces:      s.tracer.Traces(),
	}
	if out.Traces == nil {
		out.Traces = []telemetry.Trace{}
	}
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		s.respondError(conn, 500)
		return
	}
	resp := &httpwire.Response{
		StatusCode: 200,
		Header:     map[string]string{"Content-Type": "application/json"},
		Body:       body,
	}
	// The poller may be gone; nothing else to do.
	_ = resp.Write(conn)
}

// Tracer exposes the request tracer (tests, embedding binaries).
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// RequestLatency returns a subscriber's end-to-end served-latency
// histogram, or nil for unknown subscribers.
func (s *Server) RequestLatency(id qos.SubscriberID) *telemetry.Histogram { return s.top().reqLat[id] }

// RelayLatency returns a node's backend-exchange latency histogram, or nil
// for unknown nodes.
func (s *Server) RelayLatency(id core.NodeID) *telemetry.Histogram { return s.top().relayLat[id] }
