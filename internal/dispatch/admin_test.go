package dispatch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"reflect"
	"sort"
	"testing"
	"time"

	"gage/internal/backend"
	"gage/internal/core"
	"gage/internal/httpwire"
	"gage/internal/qos"
)

// adminCluster builds a cluster plus the dedicated control-plane listener —
// the only surface that serves /_gage/admin/* (gaged's adminListen shape).
// It returns the client address, the admin address, and the server.
func adminCluster(t *testing.T, n int, subs []qos.Subscriber, sched core.Config) (string, string, *Server) {
	t.Helper()
	addr, srv := cluster(t, n, subs, sched)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("admin listen: %v", err)
	}
	go func() { _ = srv.ServeAdmin(ln) }()
	return addr, ln.Addr().String(), srv
}

// adminReq issues one control-plane request against addr and decodes the
// adminResult body.
func adminReq(t *testing.T, addr, method, path string, body []byte) (int, adminResult) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	req := &httpwire.Request{Method: method, Target: path, Proto: "HTTP/1.0", Host: "admin", Body: body}
	if err := req.Write(conn); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err := httpwire.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var res adminResult
	if len(resp.Body) > 0 {
		if err := json.Unmarshal(resp.Body, &res); err != nil {
			t.Fatalf("decode %q: %v", resp.Body, err)
		}
	}
	return resp.StatusCode, res
}

// spawnBackend starts one backend process and returns its address.
func spawnBackend(t *testing.T, id core.NodeID) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("backend listen: %v", err)
	}
	be := backend.New(backend.Config{Node: id})
	go func() { _ = be.Serve(ln) }()
	t.Cleanup(func() { _ = be.Close() })
	return ln.Addr().String()
}

// schedSnapshot captures the scheduler state an infeasible request must not
// disturb.
type schedSnapshot struct {
	Total      qos.GRPS
	Registered int
	Nodes      []core.NodeID
	Dir        []qos.Subscriber
}

func snapshotScheduler(s *Server) schedSnapshot {
	nodes := s.sched.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return schedSnapshot{
		Total:      s.sched.TotalReservation(),
		Registered: s.sched.Registered(),
		Nodes:      nodes,
		Dir:        directorySubs(s.top().dir),
	}
}

// feasibleSubs commits well under the two-default-backend pool's 200 GRPS,
// leaving room for admin-plane grows.
func feasibleSubs() []qos.Subscriber {
	return []qos.Subscriber{
		{ID: "site1", Hosts: []string{"www.site1.example"}, Reservation: 50},
		{ID: "site2", Hosts: []string{"www.site2.example"}, Reservation: 20},
	}
}

func TestAdminSubscriberLifecycle(t *testing.T) {
	addr, adminAddr, srv := adminCluster(t, 2, feasibleSubs(), core.Config{})

	// Before signing: the new host classifies nowhere.
	if resp, err := get(t, addr, "www.site3.example", "/static/512.html"); err != nil || resp.StatusCode != 404 {
		t.Fatalf("pre-create status = %v err = %v, want 404", resp.StatusCode, err)
	}

	body := []byte(`{"id":"site3","hosts":["www.site3.example"],"reservationGRPS":50}`)
	code, res := adminReq(t, adminAddr, "POST", AdminPrefix+"subscribers", body)
	if code != 200 || !res.Accepted {
		t.Fatalf("create = %d %+v, want 200 accepted", code, res)
	}
	if got := srv.sched.TotalReservation(); got != 120 {
		t.Fatalf("total reservation = %v, want 120", got)
	}

	// The signed subscriber serves traffic end to end through the live
	// classifier and scheduler.
	resp, err := get(t, addr, "www.site3.example", "/static/512.html")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("post-create get = %v err = %v, want 200", resp.StatusCode, err)
	}

	// Resize up and verify the scheduler tracks it.
	code, res = adminReq(t, adminAddr, "PUT", AdminPrefix+"subscribers/site3", []byte(`{"reservationGRPS":120}`))
	if code != 200 || !res.Accepted {
		t.Fatalf("resize = %d %+v", code, res)
	}
	if r, ok := srv.sched.Reservation("site3"); !ok || r != 120 {
		t.Fatalf("reservation after resize = %v %v, want 120", r, ok)
	}
	if sub, err := srv.top().dir.Subscriber("site3"); err != nil || sub.Reservation != 120 {
		t.Fatalf("directory after resize = %+v %v, want reservation 120", sub, err)
	}

	// Delete: host stops classifying, scheduler forgets the subscriber.
	code, _ = adminReq(t, adminAddr, "DELETE", AdminPrefix+"subscribers/site3", nil)
	if code != 200 {
		t.Fatalf("delete = %d, want 200", code)
	}
	if _, ok := srv.sched.Reservation("site3"); ok {
		t.Fatal("subscriber survived delete in the scheduler")
	}
	if resp, err := get(t, addr, "www.site3.example", "/static/512.html"); err != nil || resp.StatusCode != 404 {
		t.Fatalf("post-delete status = %v err = %v, want 404", resp.StatusCode, err)
	}
	if code, _ := adminReq(t, adminAddr, "DELETE", AdminPrefix+"subscribers/site3", nil); code != 404 {
		t.Fatalf("second delete = %d, want 404", code)
	}
}

func TestAdminInfeasibleRejectionLeavesStateUnchanged(t *testing.T) {
	// Two default backends sustain 200 GRPS total (2× one CPU-second/s at
	// 10 ms per generic request); defaultSubs commits 700 already, so the
	// pool is overcommitted and ANY grow must be refused.
	_, adminAddr, srv := adminCluster(t, 2, defaultSubs(), core.Config{})
	before := snapshotScheduler(srv)

	code, res := adminReq(t, adminAddr, "POST", AdminPrefix+"subscribers",
		[]byte(`{"id":"greedy","hosts":["g.example"],"reservationGRPS":1000}`))
	if code != 409 {
		t.Fatalf("infeasible create = %d %+v, want 409", code, res)
	}
	if res.Accepted || res.Code != "infeasible" || res.Reason == "" || res.Binding == "" {
		t.Fatalf("decision not structured: %+v", res)
	}

	// Resize of an existing subscriber past capacity must also bounce.
	if code, res = adminReq(t, adminAddr, "PUT", AdminPrefix+"subscribers/site1", []byte(`{"reservationGRPS":5000}`)); code != 409 {
		t.Fatalf("infeasible resize = %d %+v, want 409", code, res)
	}

	after := snapshotScheduler(srv)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("rejected requests mutated scheduler state:\nbefore %+v\nafter  %+v", before, after)
	}
	if _, ok := srv.top().classifier.Classify("g.example", "/"); ok {
		t.Fatal("rejected subscriber classifies")
	}
}

func TestAdminNodeAddAndDrain(t *testing.T) {
	_, adminAddr, srv := adminCluster(t, 2, defaultSubs(), core.Config{})
	beAddr := spawnBackend(t, 3)

	code, res := adminReq(t, adminAddr, "POST", AdminPrefix+"nodes/3/add",
		[]byte(fmt.Sprintf(`{"addr":%q}`, beAddr)))
	if code != 200 || !res.Accepted {
		t.Fatalf("node add = %d %+v", code, res)
	}
	nodes := srv.sched.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	if !reflect.DeepEqual(nodes, []core.NodeID{1, 2, 3}) {
		t.Fatalf("nodes = %v, want [1 2 3]", nodes)
	}
	snap, ok := srv.BreakerSnapshot(3)
	if !ok {
		t.Fatal("no breaker for added node")
	}
	if snap.Weight >= 1 {
		t.Fatalf("added node starts at weight %v, want slow-start bottom < 1", snap.Weight)
	}
	// The accounting loop ticks the breaker each cycle; the weight must ramp
	// to full.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap, _ = srv.BreakerSnapshot(3); snap.Weight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("weight stuck at %v, want ramp to 1", snap.Weight)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, _ := adminReq(t, adminAddr, "POST", AdminPrefix+"nodes/3/add", []byte(fmt.Sprintf(`{"addr":%q}`, beAddr))); code != 409 {
		t.Fatalf("duplicate add = %d, want 409", code)
	}

	// Drain 3: with 700 GRPS committed against a 300-capacity pool the
	// feasibility check refuses, so force it (the drill for graceful
	// scale-in under overcommit).
	code, res = adminReq(t, adminAddr, "POST", AdminPrefix+"nodes/3/drain", nil)
	if code != 409 || res.Accepted {
		t.Fatalf("drain of needed capacity = %d %+v, want 409", code, res)
	}
	code, res = adminReq(t, adminAddr, "POST", AdminPrefix+"nodes/3/drain", []byte(`{"force":true}`))
	if code != 200 {
		t.Fatalf("forced drain = %d %+v", code, res)
	}
	if srv.sched.NodeEnabled(3) {
		t.Fatal("drained node still enabled")
	}
	// The per-cycle breaker tick must NOT ramp the drained node back up:
	// applyWeight pins draining nodes at zero.
	time.Sleep(200 * time.Millisecond)
	if srv.sched.NodeEnabled(3) {
		t.Fatal("drained node ramped back into rotation")
	}
	if code, _ := adminReq(t, adminAddr, "POST", AdminPrefix+"nodes/9/drain", nil); code != 404 {
		t.Fatalf("drain unknown node = %d, want 404", code)
	}
}

func TestAdminDecoderRejections(t *testing.T) {
	_, adminAddr, srv := adminCluster(t, 1, defaultSubs(), core.Config{})
	before := snapshotScheduler(srv)
	cases := []struct {
		name, method, path string
		body               string
		want               int
	}{
		{"malformed json", "POST", AdminPrefix + "subscribers", `{"id":`, 400},
		{"unknown field", "POST", AdminPrefix + "subscribers", `{"id":"x","hosts":["h"],"reservation":5}`, 400},
		{"empty id", "POST", AdminPrefix + "subscribers", `{"hosts":["h"],"reservationGRPS":5}`, 400},
		{"no hosts", "POST", AdminPrefix + "subscribers", `{"id":"x","reservationGRPS":5}`, 400},
		{"negative reservation", "POST", AdminPrefix + "subscribers", `{"id":"x","hosts":["h"],"reservationGRPS":-1}`, 400},
		{"oversized reservation", "POST", AdminPrefix + "subscribers", `{"id":"x","hosts":["h"],"reservationGRPS":1e12}`, 400},
		{"duplicate id", "POST", AdminPrefix + "subscribers", `{"id":"site1","hosts":["other.example"],"reservationGRPS":1}`, 409},
		{"duplicate host", "POST", AdminPrefix + "subscribers", `{"id":"x","hosts":["www.site1.example"],"reservationGRPS":1}`, 409},
		{"resize bad body", "PUT", AdminPrefix + "subscribers/site1", `nope`, 400},
		{"resize unknown sub", "PUT", AdminPrefix + "subscribers/ghost", `{"reservationGRPS":1}`, 404},
		{"node add no addr", "POST", AdminPrefix + "nodes/5/add", `{}`, 400},
		{"node add both capacities", "POST", AdminPrefix + "nodes/5/add", `{"addr":"x","capacityGRPS":5,"cpuMillisPerSec":100}`, 400},
		{"node bad id", "POST", AdminPrefix + "nodes/abc/add", `{"addr":"x"}`, 400},
		{"unknown route", "POST", AdminPrefix + "frobnicate", ``, 404},
	}
	for _, tc := range cases {
		if code, res := adminReq(t, adminAddr, tc.method, tc.path, []byte(tc.body)); code != tc.want {
			t.Errorf("%s: status = %d %+v, want %d", tc.name, code, res, tc.want)
		}
	}
	if after := snapshotScheduler(srv); !reflect.DeepEqual(before, after) {
		t.Fatalf("rejected requests mutated state:\nbefore %+v\nafter  %+v", before, after)
	}
}

func TestServeAdminSeparateListener(t *testing.T) {
	addr, adminAddr, srv := adminCluster(t, 2, feasibleSubs(), core.Config{})

	code, res := adminReq(t, adminAddr, "POST", AdminPrefix+"subscribers",
		[]byte(`{"id":"via-admin","hosts":["va.example"],"reservationGRPS":1}`))
	if code != 200 || !res.Accepted {
		t.Fatalf("create via admin listener = %d %+v", code, res)
	}
	if resp, err := get(t, adminAddr, "admin", StatsPath); err != nil || resp.StatusCode != 200 {
		t.Fatalf("stats via admin listener = %v err = %v, want 200", resp.StatusCode, err)
	}
	// Client traffic must not relay through the control-plane listener.
	if resp, err := get(t, adminAddr, "www.site1.example", "/static/512.html"); err != nil || resp.StatusCode != 404 {
		t.Fatalf("relay via admin listener = %v err = %v, want 404", resp.StatusCode, err)
	}
	// And the mutation surface must never answer on the data-plane port: a
	// subscriber's client reaching /_gage/admin/* gets a 404, not a control
	// plane.
	code, res = adminReq(t, addr, "DELETE", AdminPrefix+"subscribers/via-admin", nil)
	if code != 404 {
		t.Fatalf("admin op via client listener = %d %+v, want 404", code, res)
	}
	if _, ok := srv.sched.Reservation("via-admin"); !ok {
		t.Fatal("client-port admin request mutated scheduler state")
	}
	if code, _ := adminReq(t, addr, "POST", AdminPrefix+"subscribers", []byte(`{"id":"sneak","hosts":["s.example"],"reservationGRPS":1}`)); code != 404 {
		t.Fatalf("admin create via client listener = %d, want 404", code)
	}
}

// TestCloseUnblocksIdleAdminConnection pins the shutdown path: an idle
// keep-alive control-plane connection must be nudged (deadline zap) and, if
// need be, force-closed by Close like any client connection — not sat out
// for ClientIdleTimeout.
func TestCloseUnblocksIdleAdminConnection(t *testing.T) {
	_, adminAddr, srv := adminCluster(t, 1, feasibleSubs(), core.Config{})
	conn, err := net.DialTimeout("tcp", adminAddr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	req := &httpwire.Request{Method: "GET", Target: StatsPath, Proto: "HTTP/1.1", Host: "admin"}
	if err := req.Write(conn); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := httpwire.ReadResponse(bufio.NewReader(conn)); err != nil {
		t.Fatalf("read: %v", err)
	}
	// The connection now idles in the admin keep-alive loop.
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("Close hung on an idle admin keep-alive connection")
	}
}

// FuzzAdminDecoders hunts for panics and validation escapes in the admin
// API's JSON request decoders: any input must either fail cleanly or produce
// a value that passes the same validation the apply path trusts.
func FuzzAdminDecoders(f *testing.F) {
	seeds := []string{
		`{"id":"site9","hosts":["www.site9.example"],"reservationGRPS":25,"queueLimit":64,"group":"gold"}`,
		`{"reservationGRPS":120}`,
		`{"addr":"127.0.0.1:9000","capacityGRPS":100}`,
		`{"addr":"be1:80","cpuMillisPerSec":1000,"diskMillisPerSec":1000,"netBytesPerSec":12500000}`,
		`{"force":true}`,
		`{}`,
		``,
		`{"id":""}`,
		`{"id":"dup","hosts":["h","h"],"reservationGRPS":1}`,
		`{"id":"x","hosts":[],"reservationGRPS":1}`,
		`{"id":"x","hosts":["h"],"reservationGRPS":-5}`,
		`{"id":"x","hosts":["h"],"reservationGRPS":1e300}`,
		`{"id":"x","hosts":["h"],"reservationGRPS":5,"queueLimit":-1}`,
		`{"id":"x","hosts":[":80"],"reservationGRPS":5}`,
		`{"reservationGRPS":"NaN"}`,
		`{"addr":"","capacityGRPS":5}`,
		`{"addr":"x","capacityGRPS":5,"cpuMillisPerSec":100}`,
		`{"unknown":1}`,
		`[1,2,3]`,
		`{"id":"x","hosts":["h"],"reservationGRPS":5}{"id":"y"}`,
		"{\"id\":\"\\u0000\",\"hosts\":[\"h\"],\"reservationGRPS\":1}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if sub, err := decodeSubscriberCreate(data); err == nil {
			if verr := sub.Validate(); verr != nil {
				t.Fatalf("decoder accepted a subscriber Validate rejects: %+v: %v", sub, verr)
			}
			if len(sub.Hosts) == 0 {
				t.Fatalf("decoder accepted a hostless subscriber: %+v", sub)
			}
			if sub.Reservation < 0 || sub.Reservation > MaxReservationGRPS {
				t.Fatalf("decoder accepted out-of-range reservation %v", sub.Reservation)
			}
		}
		if res, err := decodeSubscriberResize(data); err == nil {
			if res < 0 || res > MaxReservationGRPS {
				t.Fatalf("resize decoder accepted out-of-range reservation %v", res)
			}
		}
		if addr, capacity, _, err := decodeNodeAdd(data); err == nil {
			if addr == "" {
				t.Fatal("node-add decoder accepted empty addr")
			}
			if capacity.AnyNegative() || capacity.IsZero() {
				t.Fatalf("node-add decoder accepted non-positive capacity %+v", capacity)
			}
		}
		_, _ = decodeNodeDrain(data)
	})
}
