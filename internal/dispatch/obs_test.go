package dispatch

import (
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"gage/internal/obs"
	"gage/internal/telemetry"
)

// partialWriteConn fails every Write after pushing only half the bytes:
// the deterministic stand-in for a backend that died mid-request, after
// the dial already succeeded.
type partialWriteConn struct {
	net.Conn
}

func (c *partialWriteConn) Write(b []byte) (int, error) {
	n := len(b) / 2
	if n > 0 {
		_, _ = c.Conn.Write(b[:n])
	}
	return n, errors.New("connection reset mid-request")
}

// TestTracePartialWriteRetriedThenServed: a request write that fails
// part-way into a successfully dialed backend connection must take the
// same redispatch path as a failed dial — the settled trace carries the
// retry hop aimed at the alternate node and exactly one terminal settle.
// Regression: this used to 502 without marking retry, leaving traces whose
// relay span pointed at a node that never saw a complete request.
func TestTracePartialWriteRetriedThenServed(t *testing.T) {
	good := liveBackend(t, 2)
	// Node 1 accepts connections (so the dial itself succeeds) but every
	// relayed request write is cut off half-way by the wrapper below.
	poisonLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = poisonLn.Close() })
	go func() {
		for {
			c, err := poisonLn.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	poison := poisonLn.Addr().String()
	addr, srv := startTB(t, Config{
		Subscribers: defaultSubs(),
		Backends:    []Backend{{ID: 1, Addr: poison}, {ID: 2, Addr: good}},
		// Keep accounting polls (which also dial node 1) out of the window.
		AcctCycle:        time.Minute,
		RetryBackoff:     5 * time.Millisecond,
		TraceSampleEvery: 1,
		Dial: func(network, target string, timeout time.Duration) (net.Conn, error) {
			c, err := net.DialTimeout(network, target, timeout)
			if err != nil || target != poison {
				return c, err
			}
			return &partialWriteConn{Conn: c}, nil
		},
	})
	resp, err := rawGet(t, addr, "www.site1.example", "/static/512.html")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	tr := waitTrace(t, srv, telemetry.OutcomeServed)
	assertStages(t, tr,
		telemetry.StageClassify, telemetry.StageQueue, telemetry.StageDispatch,
		telemetry.StageRelay, telemetry.StageRetry, telemetry.StageSettle)
	settles := 0
	for _, sp := range tr.Spans {
		switch sp.Stage {
		case telemetry.StageRetry:
			if sp.Node != 2 {
				t.Errorf("retry span node = %d, want alternate 2", sp.Node)
			}
			if sp.Note != "relay failed, redispatched" {
				t.Errorf("retry span note = %q", sp.Note)
			}
		case telemetry.StageSettle:
			settles++
		}
	}
	if settles != 1 {
		t.Errorf("trace settled %d times, want exactly 1", settles)
	}
	if srv.Stats().Retried != 1 {
		t.Errorf("retried = %d, want 1", srv.Stats().Retried)
	}
}

// TestEventsEndpointOff: a server configured without a bus answers 404 on
// the events path, the same off-switch contract as the cycles endpoint.
func TestEventsEndpointOff(t *testing.T) {
	addr, _ := startTB(t, Config{
		Subscribers: defaultSubs(),
		Backends:    []Backend{{ID: 1, Addr: liveBackend(t, 1)}},
	})
	if resp := scrape(t, addr, EventsPath); resp.StatusCode != 404 {
		t.Errorf("events without a bus: status = %d, want 404", resp.StatusCode)
	}
}

// TestEventsEndpointAndTraceEcho: with the bus on, a served request (a)
// carries its minted trace ID back to the client in the response header,
// and (b) leaves a lint-clean span sequence — classify through exactly one
// settle — in the events dump under that same ID. The metrics endpoint
// exports both drop counters at zero.
func TestEventsEndpointAndTraceEcho(t *testing.T) {
	addr, srv := startTB(t, Config{
		Subscribers:      defaultSubs(),
		Backends:         []Backend{{ID: 1, Addr: liveBackend(t, 1)}},
		TraceSampleEvery: 1,
		EventRingSize:    256,
	})
	resp, err := rawGet(t, addr, "www.site1.example", "/static/512.html")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	echoed := resp.Header[obs.TraceHeader]
	if echoed == "" {
		t.Fatalf("response carries no %s header", obs.TraceHeader)
	}
	tid, err := obs.ParseTraceID(echoed)
	if err != nil {
		t.Fatalf("echoed trace ID %q does not parse: %v", echoed, err)
	}
	tr := waitTrace(t, srv, telemetry.OutcomeServed)
	if tr.ID != tid {
		t.Errorf("settled trace ID %v != echoed %v", tr.ID, tid)
	}

	ev := scrape(t, addr, EventsPath)
	if ev.StatusCode != 200 {
		t.Fatalf("events status = %d", ev.StatusCode)
	}
	var dump eventDumpJSON
	if err := json.Unmarshal(ev.Body, &dump); err != nil {
		t.Fatalf("events json: %v\n%s", err, ev.Body)
	}
	if dump.Schema != obs.SchemaVersion {
		t.Errorf("schema = %d, want %d", dump.Schema, obs.SchemaVersion)
	}
	if dump.RingSize != 256 {
		t.Errorf("ringSize = %d, want 256", dump.RingSize)
	}
	if dump.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", dump.Dropped)
	}
	if uint64(len(dump.Events)) != dump.Published {
		t.Errorf("dump holds %d events, published = %d", len(dump.Events), dump.Published)
	}
	if err := obs.LintLog(dump.Events); err != nil {
		t.Errorf("events dump fails schema lint: %v", err)
	}
	stages := map[string]int{}
	for _, e := range dump.Events {
		if e.Kind == obs.KindSpan && e.Trace == tid {
			stages[e.Stage]++
		}
	}
	for _, want := range []string{"classify", "queue", "dispatch", "relay"} {
		if stages[want] != 1 {
			t.Errorf("trace %v has %d %s events, want 1", tid, stages[want], want)
		}
	}
	if stages[obs.StageSettle] != 1 {
		t.Errorf("trace %v settled %d times in the event log, want exactly 1",
			tid, stages[obs.StageSettle])
	}

	series, err := telemetry.Parse(scrape(t, addr, MetricsPath).Body)
	if err != nil {
		t.Fatalf("metrics scrape fails lint: %v", err)
	}
	for _, name := range []string{"gage_trace_dropped_total", "gage_event_dropped_total"} {
		s, ok := series[name]
		if !ok {
			t.Errorf("metrics missing %s", name)
			continue
		}
		if s.Value != 0 {
			t.Errorf("%s = %v, want 0", name, s.Value)
		}
	}
}
