package dispatch

import (
	"testing"

	"gage/internal/qos"
)

func admSubs() []qos.Subscriber {
	return []qos.Subscriber{
		{ID: "gold", Reservation: 30},
		{ID: "silver", Reservation: 10},
		{ID: "free", Reservation: 0},
	}
}

func TestAdmissionQuotasProportionalToReservations(t *testing.T) {
	a := newAdmission(8, admSubs(), 0)
	cases := map[qos.SubscriberID]int{"gold": 6, "silver": 2, "free": 0}
	for id, want := range cases {
		if q, _, _ := a.subSnapshot(id); q != want {
			t.Errorf("quota[%s] = %d, want %d", id, q, want)
		}
	}
}

func TestAdmissionShedsSpareTrafficFirst(t *testing.T) {
	// max 8: gold holds 6 guaranteed slots, silver 2, free none. The free
	// subscriber may only use slots nobody is guaranteed — with every quota
	// idle there are none, so free is shed while both reserved subscribers
	// still fill their full quotas.
	a := newAdmission(8, admSubs(), 0)
	if a.admit("free") {
		t.Fatal("free admitted while every slot is reserved for quota holders")
	}
	for i := 0; i < 6; i++ {
		if !a.admit("gold") {
			t.Fatalf("gold refused at in-flight %d, quota 6", i)
		}
	}
	for i := 0; i < 2; i++ {
		if !a.admit("silver") {
			t.Fatalf("silver refused at in-flight %d, quota 2", i)
		}
	}
	// Saturated: even reserved subscribers are spare past their quota.
	if a.admit("gold") {
		t.Error("gold admitted past quota at full saturation")
	}
	_, _, shed := a.subSnapshot("free")
	if shed != 1 {
		t.Errorf("free shed counter = %d, want 1", shed)
	}
}

func TestAdmissionReleaseRestoresGuaranteedSlot(t *testing.T) {
	a := newAdmission(4, []qos.Subscriber{
		{ID: "res", Reservation: 10},
		{ID: "free", Reservation: 0},
	}, 0)
	// quota[res] = 4: the whole cap is guaranteed. Burn two slots, release
	// one — the freed slot must rejoin the guaranteed pool, so free traffic
	// still cannot squeeze in.
	if !a.admit("res") || !a.admit("res") {
		t.Fatal("reserved admissions under quota refused")
	}
	a.release("res")
	if a.admit("free") {
		t.Error("free admitted into a released guaranteed slot")
	}
	if !a.admit("res") {
		t.Error("reserved refused its released slot back")
	}
}

func TestAdmissionSpareUsesTrulySpareSlots(t *testing.T) {
	// max 5 but only 4 slots are guaranteed (2+2 after floor rounding): the
	// remainder slot is genuinely spare and free traffic may take it — but
	// only it.
	a := newAdmission(5, []qos.Subscriber{
		{ID: "x", Reservation: 1},
		{ID: "y", Reservation: 1},
		{ID: "free", Reservation: 0},
	}, 0)
	if !a.admit("free") {
		t.Fatal("free refused the unreserved remainder slot")
	}
	if a.admit("free") {
		t.Error("free admitted into the guaranteed pool")
	}
	// The guarantee is intact: both quota holders still get their slot.
	if !a.admit("x") || !a.admit("y") {
		t.Error("quota holder refused its guaranteed slot while spare traffic is saturated")
	}
}

// TestAdmissionShardedAllocFree pins the accept-edge hot path: once a
// subscriber's shard entries exist, an admit/release round trip must not
// allocate — the shard pick is an FNV hash over the ID bytes, the counters
// move by CAS, and the per-shard maps are only read and written, never
// grown.
func TestAdmissionShardedAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	a := newAdmission(64, admSubs(), 4)
	// Warm the shard entries: inflight keys materialize on first admit,
	// shed keys on first refusal (free holds no quota and the whole cap is
	// reserved, so its admit is always refused).
	for _, id := range []qos.SubscriberID{"gold", "silver", "free"} {
		if a.admit(id) {
			a.release(id)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if !a.admit("gold") {
			t.Fatal("gold refused under quota")
		}
		a.release("gold")
		if a.admit("free") { // exercises the spare refusal + shed counting
			t.Fatal("free admitted while every slot is reserved")
		}
	}); n != 0 {
		t.Errorf("admit/release round trip allocates %.1f times, want 0", n)
	}
}

func TestAdmissionDisabledWhenNoCap(t *testing.T) {
	a := newAdmission(0, admSubs(), 0)
	for i := 0; i < 100; i++ {
		if !a.admit("free") {
			t.Fatal("admission refused with MaxConns=0; control must be off")
		}
	}
}
