package dispatch

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"gage/internal/httpwire"
	"gage/internal/qos"
	"gage/internal/telemetry"
)

// raceGet is rawGet without tb.Fatalf, safe to call from worker goroutines:
// every failure comes back as an error for the test goroutine to judge.
func raceGet(addr, host, path string) (*httpwire.Response, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return nil, err
	}
	req := &httpwire.Request{Method: "GET", Target: path, Proto: "HTTP/1.0", Host: host}
	if err := req.Write(conn); err != nil {
		return nil, err
	}
	return httpwire.ReadResponse(bufio.NewReader(conn))
}

// TestScrapeUnderShardedLoad hammers a recording, sharded dispatcher from
// every side at once: request traffic spread across subscribers in different
// admission shards, /metrics and /_gage/cycles and /_gage/stats scrapes, and
// direct Stats() reads — while the accounting poller relays usage in the
// background. The test's real assertion is the race detector (make race runs
// this package with -race); on top of that every scrape must stay well-formed
// mid-churn and the books must be sane afterwards.
func TestScrapeUnderShardedLoad(t *testing.T) {
	subs := make([]qos.Subscriber, 6)
	hosts := make([]string, len(subs))
	for i := range subs {
		id := fmt.Sprintf("site%d", i+1)
		hosts[i] = fmt.Sprintf("www.%s.example", id)
		subs[i] = qos.Subscriber{
			ID:          qos.SubscriberID(id),
			Hosts:       []string{hosts[i]},
			Reservation: qos.GRPS(50 * (i + 1)),
		}
	}
	addr, srv := startTB(t, Config{
		Subscribers:       subs,
		Backends:          []Backend{{ID: 1, Addr: liveBackend(t, 1)}, {ID: 2, Addr: liveBackend(t, 2)}},
		MaxConns:          64,
		ShardCount:        4,
		CycleRingSize:     128,
		CycleLog:          &lockedBuffer{},
		ConformanceWindow: 2 * time.Second,
	})

	const rounds = 20
	errc := make(chan error, 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				host := hosts[(w+i)%len(hosts)]
				resp, err := raceGet(addr, host, "/static/512.html")
				if err != nil {
					errc <- fmt.Errorf("get %s: %w", host, err)
					return
				}
				// 503 is a legitimate shed under the connection cap; anything
				// else non-200 is a wiring failure.
				if resp.StatusCode != 200 && resp.StatusCode != 503 {
					errc <- fmt.Errorf("get %s: status %d", host, resp.StatusCode)
					return
				}
			}
		}()
	}
	for _, path := range []string{MetricsPath, CyclesPath, StatsPath} {
		path := path
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := raceGet(addr, "scrape.internal", path)
				if err != nil {
					errc <- fmt.Errorf("scrape %s: %w", path, err)
					return
				}
				if resp.StatusCode != 200 {
					errc <- fmt.Errorf("scrape %s: status %d", path, resp.StatusCode)
					return
				}
				if path == MetricsPath {
					if _, err := telemetry.Parse(resp.Body); err != nil {
						errc <- fmt.Errorf("mid-churn exposition fails lint: %w", err)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*4; i++ {
			_ = srv.Stats()
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	st := srv.Stats()
	if st.Served == 0 {
		t.Fatal("no request served through the churn")
	}
	if st.Served+st.Shed+st.Rejected+st.Unclassified < 4*rounds {
		t.Errorf("books short: %+v accounts fewer than the %d issued requests", st, 4*rounds)
	}
}
