package dispatch

import (
	"bufio"
	"encoding/json"
	"flag"
	"io"
	"log"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gage/internal/core"
	"gage/internal/httpwire"
	"gage/internal/qos"
	"gage/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// startTB is startServer for both tests and benchmarks.
func startTB(tb testing.TB, cfg Config) (string, *Server) {
	tb.Helper()
	cfg.Logger = log.New(io.Discard, "", 0)
	srv, err := New(cfg)
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve(ln) }()
	tb.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String(), srv
}

// rawGet issues one HTTP/1.0 request and returns the response.
func rawGet(tb testing.TB, addr, host, path string) (*httpwire.Response, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		tb.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		tb.Fatalf("deadline: %v", err)
	}
	req := &httpwire.Request{Method: "GET", Target: path, Proto: "HTTP/1.0", Host: host}
	if err := req.Write(conn); err != nil {
		return nil, err
	}
	return httpwire.ReadResponse(bufio.NewReader(conn))
}

// scrape fetches an internal endpoint (routing ignores the Host header).
func scrape(tb testing.TB, addr, path string) *httpwire.Response {
	tb.Helper()
	resp, err := rawGet(tb, addr, "scrape.internal", path)
	if err != nil {
		tb.Fatalf("scrape %s: %v", path, err)
	}
	return resp
}

// waitTrace polls the tracer until a settled trace with the outcome shows up.
func waitTrace(tb testing.TB, srv *Server, outcome telemetry.Outcome) telemetry.Trace {
	tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, tr := range srv.Tracer().Traces() {
			if telemetry.SettledOutcome(tr) == outcome {
				return tr
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	var got []telemetry.Outcome
	for _, tr := range srv.Tracer().Traces() {
		got = append(got, telemetry.SettledOutcome(tr))
	}
	tb.Fatalf("no trace settled %q; have %v", outcome, got)
	return telemetry.Trace{}
}

// assertStages checks a trace's exact stage sequence and validity.
func assertStages(tb testing.TB, tr telemetry.Trace, want ...telemetry.Stage) {
	tb.Helper()
	if err := telemetry.Validate(tr); err != nil {
		tb.Errorf("trace %d invalid: %v", tr.ReqID, err)
	}
	got := telemetry.Stages(tr)
	if len(got) != len(want) {
		tb.Fatalf("trace %d stages = %v, want %v", tr.ReqID, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			tb.Fatalf("trace %d stages = %v, want %v", tr.ReqID, got, want)
		}
	}
}

// TestTraceServed: the happy path leaves a complete ordered trace —
// classify, queue, dispatch, relay, one terminal settle — labeled with the
// subscriber and the serving node.
func TestTraceServed(t *testing.T) {
	addr, srv := startTB(t, Config{
		Subscribers:      defaultSubs(),
		Backends:         []Backend{{ID: 1, Addr: liveBackend(t, 1)}},
		TraceSampleEvery: 1,
	})
	resp, err := rawGet(t, addr, "www.site1.example", "/static/512.html")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	tr := waitTrace(t, srv, telemetry.OutcomeServed)
	assertStages(t, tr,
		telemetry.StageClassify, telemetry.StageQueue, telemetry.StageDispatch,
		telemetry.StageRelay, telemetry.StageSettle)
	if tr.Subscriber != "site1" {
		t.Errorf("subscriber = %q, want site1", tr.Subscriber)
	}
	for _, sp := range tr.Spans {
		if (sp.Stage == telemetry.StageDispatch || sp.Stage == telemetry.StageRelay) && sp.Node != 1 {
			t.Errorf("%v span node = %d, want 1", sp.Stage, sp.Node)
		}
	}
	// Served latency was recorded for the subscriber.
	if snap := srv.RequestLatency("site1").Snapshot(); snap.Count != 1 {
		t.Errorf("request latency count = %d, want 1", snap.Count)
	}
	if snap := srv.RelayLatency(1).Snapshot(); snap.Count != 1 {
		t.Errorf("relay latency count = %d, want 1", snap.Count)
	}
}

// TestTraceRetriedThenServed: a dial failure against the first dispatched
// node adds a retry span with the alternate node, and the trace still ends
// served.
func TestTraceRetriedThenServed(t *testing.T) {
	good := liveBackend(t, 2)
	// Node 1's address accepts nothing: the scheduler's first dispatch (the
	// rotating tie-break starts at node 1) fails at dial and redispatches.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	dead := deadLn.Addr().String()
	deadLn.Close()
	addr, srv := startTB(t, Config{
		Subscribers: defaultSubs(),
		Backends:    []Backend{{ID: 1, Addr: dead}, {ID: 2, Addr: good}},
		// Accounting polls also dial node 1 and fail; keep them (and the
		// breaker trips they would cause) out of this test's window.
		AcctCycle:        time.Minute,
		RetryBackoff:     5 * time.Millisecond,
		TraceSampleEvery: 1,
	})
	resp, err := rawGet(t, addr, "www.site1.example", "/static/512.html")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	tr := waitTrace(t, srv, telemetry.OutcomeServed)
	assertStages(t, tr,
		telemetry.StageClassify, telemetry.StageQueue, telemetry.StageDispatch,
		telemetry.StageRelay, telemetry.StageRetry, telemetry.StageSettle)
	for _, sp := range tr.Spans {
		if sp.Stage == telemetry.StageRetry && sp.Node != 2 {
			t.Errorf("retry span node = %d, want alternate 2", sp.Node)
		}
	}
	if srv.Stats().Retried != 1 {
		t.Errorf("retried = %d, want 1", srv.Stats().Retried)
	}
}

// TestTraceQueueTimeout: a request the scheduler never dispatches settles
// queue-timeout after classify and queue — no dispatch or relay spans.
func TestTraceQueueTimeout(t *testing.T) {
	addr, srv := startTB(t, Config{
		Subscribers:      defaultSubs(),
		Backends:         []Backend{{ID: 1, Addr: liveBackend(t, 1)}},
		Scheduler:        core.Config{Cycle: 500 * time.Millisecond},
		QueueTimeout:     40 * time.Millisecond,
		TraceSampleEvery: 1,
	})
	resp, err := rawGet(t, addr, "www.site1.example", "/static/512.html")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	tr := waitTrace(t, srv, telemetry.OutcomeQueueTimeout)
	assertStages(t, tr, telemetry.StageClassify, telemetry.StageQueue, telemetry.StageSettle)
}

// TestTraceRejectedAndUnclassified: a queue-overflow 503 settles rejected
// right after classify; an unknown host settles unclassified.
func TestTraceRejectedAndUnclassified(t *testing.T) {
	subs := []qos.Subscriber{
		{ID: "tiny", Hosts: []string{"tiny.example"}, Reservation: 1, QueueLimit: 1},
	}
	addr, srv := startTB(t, Config{
		Subscribers:      subs,
		Backends:         []Backend{{ID: 1, Addr: liveBackend(t, 1)}},
		Scheduler:        core.Config{Cycle: time.Second},
		QueueTimeout:     2 * time.Second,
		TraceSampleEvery: 1,
	})
	// First request fills the queue (limit 1) and waits out the slow cycle.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = rawGet(t, addr, "tiny.example", "/x")
	}()
	// Second request overflows the queue once the first is parked in it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := rawGet(t, addr, "tiny.example", "/x")
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if resp.StatusCode == 503 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr := waitTrace(t, srv, telemetry.OutcomeRejected)
	assertStages(t, tr, telemetry.StageClassify, telemetry.StageSettle)
	if tr.Subscriber != "tiny" {
		t.Errorf("subscriber = %q, want tiny", tr.Subscriber)
	}

	if resp, err := rawGet(t, addr, "www.nope.example", "/x"); err != nil || resp.StatusCode != 404 {
		t.Fatalf("unclassified get: resp=%+v err=%v", resp, err)
	}
	tr = waitTrace(t, srv, telemetry.OutcomeUnclassified)
	assertStages(t, tr, telemetry.StageClassify, telemetry.StageSettle)
	wg.Wait()
}

// TestTraceShed: an admission-control refusal settles shed after classify —
// the request never touches the scheduler.
func TestTraceShed(t *testing.T) {
	// MaxConns 2 with reservations 500/200 gives site1 one guaranteed slot
	// and site2 none: any site2 request is spare, and a second one while
	// the first is still queued must be shed to protect site1's idle slot.
	addr, srv := startTB(t, Config{
		Subscribers:      defaultSubs(),
		Backends:         []Backend{{ID: 1, Addr: liveBackend(t, 1)}},
		Scheduler:        core.Config{Cycle: 500 * time.Millisecond},
		QueueTimeout:     2 * time.Second,
		MaxConns:         2,
		TraceSampleEvery: 1,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = rawGet(t, addr, "www.site2.example", "/static/512.html")
	}()
	// Either this loop's request or the background one gets shed —
	// whichever was admitted second; the stats counter is the signal.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Shed == 0 {
		if _, err := rawGet(t, addr, "www.site2.example", "/static/512.html"); err != nil {
			t.Fatalf("get: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no admission shed; stats=%+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr := waitTrace(t, srv, telemetry.OutcomeShed)
	assertStages(t, tr, telemetry.StageClassify, telemetry.StageSettle)
	if tr.Subscriber != "site2" {
		t.Errorf("subscriber = %q, want site2", tr.Subscriber)
	}
	wg.Wait()
}

// TestTraceDrainAbort: shutdown while a request waits in the queue settles
// it drain-abort once the drain window closes.
func TestTraceDrainAbort(t *testing.T) {
	addr, srv := startTB(t, Config{
		Subscribers:      defaultSubs(),
		Backends:         []Backend{{ID: 1, Addr: liveBackend(t, 1)}},
		Scheduler:        core.Config{Cycle: 10 * time.Second},
		QueueTimeout:     10 * time.Second,
		DrainTimeout:     50 * time.Millisecond,
		TraceSampleEvery: 1,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = rawGet(t, addr, "www.site1.example", "/static/512.html")
	}()
	// Let the request reach the queue before closing.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Scheduler().QueueLen("site1") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = srv.Close()
	wg.Wait()
	tr := waitTrace(t, srv, telemetry.OutcomeDrainAbort)
	assertStages(t, tr, telemetry.StageClassify, telemetry.StageQueue, telemetry.StageSettle)
}

// metricsWorkload drives a small deterministic mix of outcomes and waits
// until the counters have settled.
func metricsWorkload(t *testing.T, addr string, srv *Server) {
	t.Helper()
	for i := 0; i < 3; i++ {
		if resp, err := rawGet(t, addr, "www.site1.example", "/static/512.html"); err != nil || resp.StatusCode != 200 {
			t.Fatalf("get: resp=%+v err=%v", resp, err)
		}
	}
	if resp, err := rawGet(t, addr, "www.site2.example", "/static/512.html"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("get: resp=%+v err=%v", resp, err)
	}
	if resp, err := rawGet(t, addr, "www.nope.example", "/x"); err != nil || resp.StatusCode != 404 {
		t.Fatalf("get: resp=%+v err=%v", resp, err)
	}
	// served increments after the response write; wait for the counters.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Served < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("stats never settled: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsEndpoint: the exposition parses under the package's own strict
// lint, counters agree with the JSON stats endpoint, and every counter is
// monotone across scrapes.
func TestMetricsEndpoint(t *testing.T) {
	addr, srv := startTB(t, Config{
		Subscribers:      defaultSubs(),
		Backends:         []Backend{{ID: 1, Addr: liveBackend(t, 1)}, {ID: 2, Addr: liveBackend(t, 2)}},
		MaxConns:         64,
		TraceSampleEvery: 2,
	})
	metricsWorkload(t, addr, srv)

	stats := scrape(t, addr, StatsPath)
	var js struct {
		Accepted     uint64 `json:"accepted"`
		Served       uint64 `json:"served"`
		Rejected     uint64 `json:"rejected"`
		Unclassified uint64 `json:"unclassified"`
		Shed         uint64 `json:"shed"`
	}
	if err := json.Unmarshal(stats.Body, &js); err != nil {
		t.Fatalf("stats json: %v", err)
	}

	m1 := scrape(t, addr, MetricsPath)
	if ct := m1.Header["Content-Type"]; ct != telemetry.ContentType {
		t.Errorf("content type = %q, want %q", ct, telemetry.ContentType)
	}
	series1, err := telemetry.Parse(m1.Body)
	if err != nil {
		t.Fatalf("first scrape fails lint: %v\n%s", err, m1.Body)
	}

	// Counters the scrapes themselves cannot move must match the JSON
	// stats; accepted moved by exactly the metrics scrape's own connection.
	same := map[string]uint64{
		"gage_requests_served_total":       js.Served,
		"gage_requests_rejected_total":     js.Rejected,
		"gage_requests_unclassified_total": js.Unclassified,
		"gage_requests_shed_total":         js.Shed,
	}
	for name, want := range same {
		if got := series1[name].Value; got != float64(want) {
			t.Errorf("%s = %v, want %d (stats JSON)", name, got, want)
		}
	}
	if got := series1["gage_connections_accepted_total"].Value; got != float64(js.Accepted+1) {
		t.Errorf("accepted = %v, want %d (stats value + the metrics scrape itself)", got, js.Accepted+1)
	}
	if got := series1[`gage_request_latency_seconds_count{subscriber="site1"}`].Value; got != 3 {
		t.Errorf("site1 latency count = %v, want 3", got)
	}
	if got := series1[`gage_request_latency_seconds_count{subscriber="site2"}`].Value; got != 1 {
		t.Errorf("site2 latency count = %v, want 1", got)
	}
	relayCount := series1[`gage_relay_latency_seconds_count{node="1"}`].Value +
		series1[`gage_relay_latency_seconds_count{node="2"}`].Value
	if relayCount != 4 {
		t.Errorf("relay latency counts sum to %v, want 4", relayCount)
	}

	// More traffic, then a second scrape: every *_total series must exist
	// in both and never decrease.
	if resp, err := rawGet(t, addr, "www.site1.example", "/static/512.html"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("get: resp=%+v err=%v", resp, err)
	}
	m2 := scrape(t, addr, MetricsPath)
	series2, err := telemetry.Parse(m2.Body)
	if err != nil {
		t.Fatalf("second scrape fails lint: %v", err)
	}
	for key, s1 := range series1 {
		if !strings.Contains(s1.Name, "_total") {
			continue
		}
		s2, ok := series2[key]
		if !ok {
			t.Errorf("counter %s vanished from the second scrape", key)
			continue
		}
		if s2.Value < s1.Value {
			t.Errorf("counter %s went backwards: %v then %v", key, s1.Value, s2.Value)
		}
	}
}

// TestMetricsGolden pins the exposition's shape — the exact HELP/TYPE lines
// and series keys, values stripped — so accidental renames, dropped labels
// or reordered families fail loudly. Regenerate with -update.
func TestMetricsGolden(t *testing.T) {
	addr, srv := startTB(t, Config{
		Subscribers:      defaultSubs(),
		Backends:         []Backend{{ID: 1, Addr: liveBackend(t, 1)}, {ID: 2, Addr: liveBackend(t, 2)}},
		MaxConns:         64,
		TraceSampleEvery: 2,
	})
	metricsWorkload(t, addr, srv)
	body := scrape(t, addr, MetricsPath).Body

	var shape strings.Builder
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			shape.WriteString(line)
		} else if i := strings.LastIndexByte(line, ' '); i >= 0 {
			shape.WriteString(line[:i])
		}
		shape.WriteByte('\n')
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(shape.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if shape.String() != string(want) {
		t.Errorf("metrics shape drifted from %s (run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s",
			golden, shape.String(), want)
	}
}

// TestTraceEndpoint: the JSON dump round-trips, reports the sampling
// config, and every retained trace is structurally valid.
func TestTraceEndpoint(t *testing.T) {
	addr, srv := startTB(t, Config{
		Subscribers:      defaultSubs(),
		Backends:         []Backend{{ID: 1, Addr: liveBackend(t, 1)}},
		TraceSampleEvery: 2,
		TraceBuffer:      8,
	})
	for i := 0; i < 6; i++ {
		if resp, err := rawGet(t, addr, "www.site1.example", "/static/512.html"); err != nil || resp.StatusCode != 200 {
			t.Fatalf("get: resp=%+v err=%v", resp, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, settled := srv.Tracer().Counts()
		if settled >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("traces never settled")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp := scrape(t, addr, TracePath)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var dump struct {
		SampleEvery uint64            `json:"sampleEvery"`
		Seen        uint64            `json:"seen"`
		Sampled     uint64            `json:"sampled"`
		Settled     uint64            `json:"settled"`
		Traces      []telemetry.Trace `json:"traces"`
	}
	if err := json.Unmarshal(resp.Body, &dump); err != nil {
		t.Fatalf("trace json: %v\n%s", err, resp.Body)
	}
	if dump.SampleEvery != 2 {
		t.Errorf("sampleEvery = %d, want 2", dump.SampleEvery)
	}
	if dump.Seen != 6 || dump.Sampled != 3 {
		t.Errorf("seen/sampled = %d/%d, want 6/3 (deterministic: every 2nd ID)", dump.Seen, dump.Sampled)
	}
	if len(dump.Traces) != 3 {
		t.Fatalf("dump holds %d traces, want 3", len(dump.Traces))
	}
	for _, tr := range dump.Traces {
		if err := telemetry.Validate(tr); err != nil {
			t.Errorf("dumped trace invalid after round-trip: %v", err)
		}
		if out := telemetry.SettledOutcome(tr); out != telemetry.OutcomeServed {
			t.Errorf("trace %d outcome = %q, want served", tr.ReqID, out)
		}
		if tr.ReqID%2 != 0 {
			t.Errorf("trace %d sampled with period 2", tr.ReqID)
		}
	}
}

// TestTelemetryScrapeRace hammers the serving path and all three
// introspection endpoints concurrently — the -race gate for the dispatcher's
// telemetry wiring.
func TestTelemetryScrapeRace(t *testing.T) {
	addr, srv := startTB(t, Config{
		Subscribers:      defaultSubs(),
		Backends:         []Backend{{ID: 1, Addr: liveBackend(t, 1)}, {ID: 2, Addr: liveBackend(t, 2)}},
		MaxConns:         128,
		TraceSampleEvery: 3,
	})
	hosts := []string{"www.site1.example", "www.site2.example", "www.nope.example"}
	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_, _ = rawGet(t, addr, hosts[(g+i)%len(hosts)], "/static/512.html")
			}
		}(g)
	}
	var scrapeWG sync.WaitGroup
	for _, path := range []string{MetricsPath, TracePath, StatsPath} {
		scrapeWG.Add(1)
		go func(path string) {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp := scrape(t, addr, path)
				if resp.StatusCode != 200 {
					t.Errorf("%s status = %d", path, resp.StatusCode)
					return
				}
				if path == MetricsPath {
					if err := telemetry.Lint(resp.Body); err != nil {
						t.Errorf("mid-load scrape fails lint: %v", err)
						return
					}
				}
			}
		}(path)
	}
	wg.Wait()
	close(done)
	scrapeWG.Wait()

	body := scrape(t, addr, MetricsPath).Body
	series, err := telemetry.Parse(body)
	if err != nil {
		t.Fatalf("final scrape fails lint: %v", err)
	}
	st := srv.Stats()
	if got := series["gage_requests_served_total"].Value; got != float64(st.Served) {
		t.Errorf("served = %v, want %d", got, st.Served)
	}
	for _, tr := range srv.Tracer().Traces() {
		if err := telemetry.Validate(tr); err != nil {
			t.Errorf("trace invalid: %v", err)
		}
	}
}

// benchmarkServe measures one end-to-end request per iteration; the
// tracing-off and tracing-on variants bound the telemetry overhead on the
// serving path.
func benchmarkServe(b *testing.B, sampleEvery int) {
	addr, _ := startTB(b, Config{
		Subscribers:      defaultSubs(),
		Backends:         []Backend{{ID: 1, Addr: liveBackend(b, 1)}},
		Scheduler:        core.Config{Cycle: time.Millisecond},
		TraceSampleEvery: sampleEvery,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := benchGet(addr)
		if err != nil {
			b.Fatalf("get: %v", err)
		}
		if resp.StatusCode != 200 {
			b.Fatalf("status = %d", resp.StatusCode)
		}
	}
}

func benchGet(addr string) (*httpwire.Response, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return nil, err
	}
	req := &httpwire.Request{Method: "GET", Target: "/static/512.html", Proto: "HTTP/1.0", Host: "www.site1.example"}
	if err := req.Write(conn); err != nil {
		return nil, err
	}
	return httpwire.ReadResponse(bufio.NewReader(conn))
}

func BenchmarkServeTracingOff(b *testing.B)      { benchmarkServe(b, 0) }
func BenchmarkServeTracingEvery1(b *testing.B)   { benchmarkServe(b, 1) }
func BenchmarkServeTracingEvery100(b *testing.B) { benchmarkServe(b, 100) }
