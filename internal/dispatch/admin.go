package dispatch

// The dispatcher's online admission control plane: REST endpoints that sign,
// resize, and retire subscribers and grow or drain the backend pool against
// the LIVE scheduler — ROADMAP item 4. Every mutation is gated by the
// admitctl feasibility policy (accept a change only if every existing
// guarantee still fits under the enabled pool's generic-request rate),
// applied to the scheduler through its elasticity surface, published to the
// hot paths by a copy-on-write topology swap, reflected into the
// reservation-proportional admission quotas, and annotated onto the flight
// recorder so `gagetrace audit` sees control-plane events inline with the
// cycles they shaped. A rejected request mutates nothing and answers with
// the structured admitctl.Decision naming the wall it hit.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"time"

	"gage/internal/admitctl"
	"gage/internal/breaker"
	"gage/internal/classify"
	"gage/internal/core"
	"gage/internal/flightrec"
	"gage/internal/httpwire"
	"gage/internal/obs"
	"gage/internal/qos"
	"gage/internal/telemetry"
)

// AdminPrefix roots the control-plane endpoints:
//
//	POST   /_gage/admin/subscribers          sign a subscriber (JSON body)
//	PUT    /_gage/admin/subscribers/{id}     resize its reservation
//	DELETE /_gage/admin/subscribers/{id}     retire it
//	POST   /_gage/admin/nodes/{id}/add       grow the pool (JSON body)
//	POST   /_gage/admin/nodes/{id}/drain     gracefully retire a node
const AdminPrefix = "/_gage/admin/"

// MaxReservationGRPS bounds a single admin-granted reservation; anything
// larger is a fat-fingered request, not a tenant.
const MaxReservationGRPS = 1e9

// subscriberCreateBody is the POST /subscribers wire form.
type subscriberCreateBody struct {
	ID              string   `json:"id"`
	Hosts           []string `json:"hosts"`
	ReservationGRPS float64  `json:"reservationGRPS"`
	QueueLimit      int      `json:"queueLimit"`
	Group           string   `json:"group"`
}

// subscriberResizeBody is the PUT /subscribers/{id} wire form.
type subscriberResizeBody struct {
	ReservationGRPS float64 `json:"reservationGRPS"`
}

// nodeAddBody is the POST /nodes/{id}/add wire form. A zero capacity selects
// the same default vector Config.Backends applies.
type nodeAddBody struct {
	Addr           string  `json:"addr"`
	CPUMillis      int64   `json:"cpuMillisPerSec"`
	DiskMillis     int64   `json:"diskMillisPerSec"`
	NetBytesPerSec int64   `json:"netBytesPerSec"`
	CapacityGRPS   float64 `json:"capacityGRPS"`
	RampFromTop    bool    `json:"rampFromTop"`
}

// nodeDrainBody is the POST /nodes/{id}/drain wire form.
type nodeDrainBody struct {
	// Force drains even when the feasibility check says the remaining pool
	// cannot honor the committed guarantees (emergency scale-in).
	Force bool `json:"force"`
}

// adminResult is the wire form of every admin response, success or refusal:
// the feasibility decision plus operation identity, so an operator's log of
// response bodies replays the control plane's reasoning.
type adminResult struct {
	admitctl.Decision
	Op         string `json:"op"`
	Subscriber string `json:"subscriber,omitempty"`
	// Node is a pointer so node ID 0 — a valid core.NodeID — still
	// serializes on node operations; subscriber operations omit the field.
	Node  *int   `json:"node,omitempty"`
	Error string `json:"error,omitempty"`
	// OutstandingGeneric is the drained node's estimated in-flight load in
	// generic units at drain time; poll /_gage/stats for it to reach zero
	// before retiring the node.
	OutstandingGeneric float64 `json:"outstandingGeneric,omitempty"`
}

// nodeRef boxes a node ID for adminResult.Node, which is a pointer so that
// node 0 survives omitempty.
func nodeRef(id core.NodeID) *int {
	n := int(id)
	return &n
}

// checkReservation validates a wire-form reservation value.
func checkReservation(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return errors.New("reservationGRPS must be a finite number")
	}
	if v < 0 {
		return fmt.Errorf("reservationGRPS must not be negative, got %v", v)
	}
	if v > MaxReservationGRPS {
		return fmt.Errorf("reservationGRPS %v exceeds the %v cap", v, float64(MaxReservationGRPS))
	}
	return nil
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing data —
// an admin request with a typoed key must fail loudly, not silently default.
func strictUnmarshal(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// decodeSubscriberCreate parses and validates a POST /subscribers body.
// Standalone (no Server state) so the fuzz harness can drive it directly.
func decodeSubscriberCreate(body []byte) (qos.Subscriber, error) {
	var b subscriberCreateBody
	if err := strictUnmarshal(body, &b); err != nil {
		return qos.Subscriber{}, err
	}
	if b.ID == "" {
		return qos.Subscriber{}, errors.New("id must be non-empty")
	}
	if len(b.Hosts) == 0 {
		return qos.Subscriber{}, errors.New("at least one host required (nothing would classify to the subscriber)")
	}
	for _, h := range b.Hosts {
		if classify.NormalizeHost(h) == "" {
			return qos.Subscriber{}, fmt.Errorf("host %q normalizes to empty", h)
		}
	}
	if err := checkReservation(b.ReservationGRPS); err != nil {
		return qos.Subscriber{}, err
	}
	if b.QueueLimit < 0 {
		return qos.Subscriber{}, fmt.Errorf("queueLimit must not be negative, got %d", b.QueueLimit)
	}
	sub := qos.Subscriber{
		ID:          qos.SubscriberID(b.ID),
		Hosts:       b.Hosts,
		Reservation: qos.GRPS(b.ReservationGRPS),
		QueueLimit:  b.QueueLimit,
		Group:       b.Group,
	}
	return sub, sub.Validate()
}

// decodeSubscriberResize parses and validates a PUT /subscribers/{id} body.
func decodeSubscriberResize(body []byte) (qos.GRPS, error) {
	var b subscriberResizeBody
	if err := strictUnmarshal(body, &b); err != nil {
		return 0, err
	}
	if err := checkReservation(b.ReservationGRPS); err != nil {
		return 0, err
	}
	return qos.GRPS(b.ReservationGRPS), nil
}

// decodeNodeAdd parses and validates a POST /nodes/{id}/add body. Capacity
// may be given either as an explicit per-resource vector or as a generic
// rate (capacityGRPS, scaled through the generic cost vector); both absent
// selects the default backend capacity.
func decodeNodeAdd(body []byte) (addr string, capacity qos.Vector, rampFromTop bool, err error) {
	var b nodeAddBody
	if err = strictUnmarshal(body, &b); err != nil {
		return "", qos.Vector{}, false, err
	}
	if b.Addr == "" {
		return "", qos.Vector{}, false, errors.New("addr must be non-empty")
	}
	if b.CPUMillis < 0 || b.DiskMillis < 0 || b.NetBytesPerSec < 0 {
		return "", qos.Vector{}, false, errors.New("capacity components must not be negative")
	}
	if math.IsNaN(b.CapacityGRPS) || math.IsInf(b.CapacityGRPS, 0) || b.CapacityGRPS < 0 {
		return "", qos.Vector{}, false, errors.New("capacityGRPS must be a finite non-negative number")
	}
	explicit := b.CPUMillis > 0 || b.DiskMillis > 0 || b.NetBytesPerSec > 0
	switch {
	case explicit && b.CapacityGRPS > 0:
		return "", qos.Vector{}, false, errors.New("give capacityGRPS or an explicit capacity vector, not both")
	case explicit:
		capacity = qos.Vector{
			CPUTime:  time.Duration(b.CPUMillis) * time.Millisecond,
			DiskTime: time.Duration(b.DiskMillis) * time.Millisecond,
			NetBytes: b.NetBytesPerSec,
		}
		if capacity.AnyNegative() || capacity.IsZero() {
			return "", qos.Vector{}, false, errors.New("explicit capacity must be positive")
		}
	case b.CapacityGRPS > 0:
		capacity = qos.GenericCost().Scale(b.CapacityGRPS)
	default:
		capacity = defaultBackendCapacity
	}
	return b.Addr, capacity, b.RampFromTop, nil
}

// decodeNodeDrain parses a POST /nodes/{id}/drain body (empty means no
// force).
func decodeNodeDrain(body []byte) (force bool, err error) {
	if len(bytes.TrimSpace(body)) == 0 {
		return false, nil
	}
	var b nodeDrainBody
	if err := strictUnmarshal(body, &b); err != nil {
		return false, err
	}
	return b.Force, nil
}

// admitCfg builds the feasibility-policy config from the dispatcher config.
func (s *Server) admitCfg() admitctl.Config {
	return admitctl.Config{Headroom: s.cfg.AdmitHeadroom}
}

// respondJSON writes a JSON response body with the given status.
func (s *Server) respondJSON(conn net.Conn, code int, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		s.respondError(conn, 500)
		return
	}
	resp := &httpwire.Response{
		StatusCode: code,
		Header:     map[string]string{"Content-Type": "application/json"},
		Body:       body,
	}
	// The operator's client may be gone; nothing more to do.
	_ = resp.Write(conn)
}

// publishAdmin mirrors one control-plane decision onto the event bus, so a
// merged event log shows the operator's request next to the cycles and tier
// transitions it caused — or, for a refusal, the wall it hit.
func (s *Server) publishAdmin(res adminResult) {
	code := res.Code
	if code == "" {
		if res.Error != "" {
			code = "error"
		} else {
			code = "accepted"
		}
	}
	ev := obs.Event{Kind: obs.KindAdmin, Sub: res.Subscriber, Detail: res.Op + ":" + code}
	if res.Node != nil {
		ev.Node = *res.Node
	}
	s.bus.Publish(ev)
}

// respondAdmin answers an accepted admin request and records the decision
// on the event bus.
func (s *Server) respondAdmin(conn net.Conn, res adminResult) {
	s.publishAdmin(res)
	s.respondJSON(conn, 200, res)
}

// respondAdminError answers a refused admin request without mutating
// anything; the refusal still lands on the event bus — a denied scale-up is
// exactly the kind of context a violation investigation needs.
func (s *Server) respondAdminError(conn net.Conn, code int, res adminResult) {
	s.publishAdmin(res)
	s.respondJSON(conn, code, res)
}

// decisionStatus maps a refused feasibility decision to its HTTP status.
func decisionStatus(d admitctl.Decision) int {
	if d.Code == admitctl.CodeInvalid {
		return 400
	}
	return 409 // infeasible: conflicts with the committed guarantees
}

// serveAdmin routes one control-plane request.
func (s *Server) serveAdmin(conn net.Conn, req *httpwire.Request) {
	rest := strings.Trim(strings.TrimPrefix(req.Path(), AdminPrefix), "/")
	seg := strings.Split(rest, "/")
	switch {
	case len(seg) == 1 && seg[0] == "subscribers" && req.Method == "POST":
		s.adminCreateSubscriber(conn, req.Body)
		return
	case len(seg) == 2 && seg[0] == "subscribers":
		id := qos.SubscriberID(seg[1])
		switch req.Method {
		case "PUT":
			s.adminResizeSubscriber(conn, id, req.Body)
			return
		case "DELETE":
			s.adminDeleteSubscriber(conn, id)
			return
		}
	case len(seg) == 3 && seg[0] == "nodes" && req.Method == "POST":
		id, err := strconv.ParseInt(seg[1], 10, 32)
		if err != nil || id < 0 {
			s.respondAdminError(conn, 400, adminResult{Op: seg[2], Error: fmt.Sprintf("bad node id %q", seg[1])})
			return
		}
		switch seg[2] {
		case "add":
			s.adminAddNode(conn, core.NodeID(id), req.Body)
			return
		case "drain":
			s.adminDrainNode(conn, core.NodeID(id), req.Body)
			return
		}
	}
	s.respondError(conn, 404)
}

// directorySubs lists a directory's full subscriber definitions in ID order.
func directorySubs(dir *qos.Directory) []qos.Subscriber {
	ids := dir.IDs()
	subs := make([]qos.Subscriber, 0, len(ids))
	for _, id := range ids {
		if sub, err := dir.Subscriber(id); err == nil {
			subs = append(subs, sub)
		}
	}
	return subs
}

// annotate queues a control-plane tier event on the flight recorder, if one
// is running.
func (s *Server) annotate(ev flightrec.TierEvent) {
	if s.rec != nil {
		s.rec.Annotate(ev)
	}
}

// adminCreateSubscriber signs a new subscriber: feasibility gate, scheduler
// registration, directory/classifier rebuild, topology swap, quota
// rebalance, audit annotation — one atomic operation under adminMu.
func (s *Server) adminCreateSubscriber(conn net.Conn, body []byte) {
	sub, err := decodeSubscriberCreate(body)
	if err != nil {
		s.respondAdminError(conn, 400, adminResult{Op: "subscriber-create", Error: err.Error()})
		return
	}
	res := adminResult{Op: "subscriber-create", Subscriber: string(sub.ID)}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	res.Decision = admitctl.Evaluate(s.admitCfg(), s.sched.TotalReservation(), sub.Reservation, s.sched.EnabledCapacity())
	if !res.Accepted {
		s.respondAdminError(conn, decisionStatus(res.Decision), res)
		return
	}
	// Build the new directory before touching the scheduler: a duplicate ID
	// or host fails here and nothing has changed.
	t := s.top()
	newDir, err := qos.NewDirectory(append(directorySubs(t.dir), sub))
	if err != nil {
		res.Error = err.Error()
		s.respondAdminError(conn, 409, res)
		return
	}
	if err := s.sched.AddSubscriber(sub); err != nil {
		res.Error = err.Error()
		s.respondAdminError(conn, 409, res)
		return
	}
	cp := t.clone()
	cp.dir = newDir
	cp.classifier = classify.NewHostClassifier(newDir)
	cp.groupOf[sub.ID] = sub.Group
	cp.reqLat[sub.ID] = telemetry.NewHistogram()
	s.topo.Store(cp)
	s.admission.rebalance(directorySubs(newDir))
	s.annotate(flightrec.TierEvent{Kind: "sub-admit", Group: string(sub.ID), To: int(sub.Reservation)})
	s.respondAdmin(conn, res)
}

// adminResizeSubscriber changes a live reservation, gated on the delta.
func (s *Server) adminResizeSubscriber(conn net.Conn, id qos.SubscriberID, body []byte) {
	newRes, err := decodeSubscriberResize(body)
	if err != nil {
		s.respondAdminError(conn, 400, adminResult{Op: "subscriber-resize", Subscriber: string(id), Error: err.Error()})
		return
	}
	res := adminResult{Op: "subscriber-resize", Subscriber: string(id)}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	old, ok := s.sched.Reservation(id)
	if !ok {
		res.Error = "unknown subscriber"
		s.respondAdminError(conn, 404, res)
		return
	}
	res.Decision = admitctl.Evaluate(s.admitCfg(), s.sched.TotalReservation(), newRes-old, s.sched.EnabledCapacity())
	if !res.Accepted {
		s.respondAdminError(conn, decisionStatus(res.Decision), res)
		return
	}
	if err := s.sched.ResizeReservation(id, newRes); err != nil {
		res.Error = err.Error()
		s.respondAdminError(conn, 400, res)
		return
	}
	// Rebuild the directory so stats and future quota splits see the new
	// reservation. Same IDs and hosts, so this cannot fail; if it somehow
	// does, the scheduler reservation has already changed and silently
	// keeping the stale topology would let stats and quota splits diverge
	// from it — answer 500 so the operator knows the swap did not land.
	t := s.top()
	subs := directorySubs(t.dir)
	for i := range subs {
		if subs[i].ID == id {
			subs[i].Reservation = newRes
		}
	}
	newDir, err := qos.NewDirectory(subs)
	if err != nil {
		s.logger.Printf("dispatch: admin resize %s: scheduler resized to %v but directory rebuild failed, topology/quota state is stale: %v", id, newRes, err)
		res.Error = fmt.Sprintf("directory rebuild failed after scheduler resize: %v", err)
		s.respondAdminError(conn, 500, res)
		return
	}
	cp := t.clone()
	cp.dir = newDir
	cp.classifier = classify.NewHostClassifier(newDir)
	s.topo.Store(cp)
	s.admission.rebalance(subs)
	s.annotate(flightrec.TierEvent{Kind: "sub-resize", Group: string(id), From: int(old), To: int(newRes)})
	s.respondAdmin(conn, res)
}

// adminDeleteSubscriber retires a subscriber: its queued requests are
// withdrawn (their waiting connections answer 503), its scheduler state and
// classifier mappings vanish, and its guaranteed slots return to the pool.
func (s *Server) adminDeleteSubscriber(conn net.Conn, id qos.SubscriberID) {
	res := adminResult{Op: "subscriber-delete", Subscriber: string(id)}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	old, ok := s.sched.Reservation(id)
	if !ok {
		res.Error = "unknown subscriber"
		s.respondAdminError(conn, 404, res)
		return
	}
	res.Decision = admitctl.Evaluate(s.admitCfg(), s.sched.TotalReservation(), -old, s.sched.EnabledCapacity())
	orphans, err := s.sched.RemoveSubscriber(id)
	if err != nil {
		res.Error = err.Error()
		s.respondAdminError(conn, 404, res)
		return
	}
	// Wake every connection still waiting on a withdrawn request. The CAS
	// makes us the single sender on the buffered channel; serveOne sees
	// pcAbandoned and refuses without relaying.
	for _, o := range orphans {
		if pc, ok := o.Payload.(*pendingConn); ok {
			if pc.state.CompareAndSwap(pcWaiting, pcAbandoned) {
				pc.node <- 0
			}
		}
	}
	t := s.top()
	subs := directorySubs(t.dir)
	for i, sub := range subs {
		if sub.ID == id {
			subs = append(subs[:i], subs[i+1:]...)
			break
		}
	}
	// Shrinking the directory cannot fail (same entries minus one); if it
	// somehow does, the scheduler state is already gone while the classifier
	// still routes the retired hosts — surface that instead of hiding it.
	newDir, err := qos.NewDirectory(subs)
	if err != nil {
		s.logger.Printf("dispatch: admin delete %s: scheduler state removed but directory rebuild failed, classifier still maps its hosts: %v", id, err)
		res.Error = fmt.Sprintf("directory rebuild failed after scheduler removal: %v", err)
		s.respondAdminError(conn, 500, res)
		return
	}
	cp := t.clone()
	cp.dir = newDir
	cp.classifier = classify.NewHostClassifier(newDir)
	delete(cp.groupOf, id)
	delete(cp.reqLat, id)
	s.topo.Store(cp)
	s.admission.rebalance(subs)
	s.annotate(flightrec.TierEvent{Kind: "sub-remove", Group: string(id), From: int(old)})
	s.respondAdmin(conn, res)
}

// adminAddNode grows the backend pool. The node joins at the bottom of a
// slow-start ramp (breaker.NewRamping) so scale-out capacity absorbs load
// one weight step per accounting cycle instead of taking a thundering herd;
// rampFromTop skips the ramp for pre-warmed replacements.
func (s *Server) adminAddNode(conn net.Conn, id core.NodeID, body []byte) {
	addr, capacity, rampFromTop, err := decodeNodeAdd(body)
	if err != nil {
		s.respondAdminError(conn, 400, adminResult{Op: "node-add", Node: nodeRef(id), Error: err.Error()})
		return
	}
	res := adminResult{Op: "node-add", Node: nodeRef(id)}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	t := s.top()
	if _, dup := t.addrs[id]; dup {
		res.Error = fmt.Sprintf("node %d already exists", id)
		s.respondAdminError(conn, 409, res)
		return
	}
	var b *breaker.Breaker
	if rampFromTop {
		b = breaker.New(s.cfg.Breaker)
	} else {
		b = breaker.NewRamping(s.cfg.Breaker)
	}
	if err := s.sched.AddNode(core.NodeConfig{ID: id, Capacity: capacity}, b.Weight()); err != nil {
		res.Error = err.Error()
		s.respondAdminError(conn, 409, res)
		return
	}
	cp := t.clone()
	cp.addrs[id] = addr
	cp.breakers[id] = b
	cp.acct[id] = &nodeAcct{}
	cp.relayLat[id] = telemetry.NewHistogram()
	s.topo.Store(cp)
	// Growing the pool cannot break a guarantee; the zero-delta evaluation
	// records the post-add committed/capacity state for the operator's log.
	res.Decision = admitctl.Evaluate(s.admitCfg(), s.sched.TotalReservation(), 0, s.sched.EnabledCapacity())
	s.annotate(flightrec.TierEvent{Kind: "node-add", To: int(id)})
	s.respondAdmin(conn, res)
}

// adminDrainNode gracefully retires a node: feasibility-gated (the remaining
// pool must still cover the committed guarantees, unless forced), weight
// pinned to zero, in-flight accounting left to settle. The response carries
// the node's outstanding load so the operator can poll for drain completion.
func (s *Server) adminDrainNode(conn net.Conn, id core.NodeID, body []byte) {
	force, err := decodeNodeDrain(body)
	if err != nil {
		s.respondAdminError(conn, 400, adminResult{Op: "node-drain", Node: nodeRef(id), Error: err.Error()})
		return
	}
	res := adminResult{Op: "node-drain", Node: nodeRef(id)}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	t := s.top()
	if _, ok := t.addrs[id]; !ok {
		res.Error = fmt.Sprintf("unknown node %d", id)
		s.respondAdminError(conn, 404, res)
		return
	}
	capacity, _ := s.sched.NodeCapacity(id)
	// A breaker-disabled node already contributes nothing to the enabled
	// pool; subtracting its capacity again would double-count the loss.
	leaving := capacity
	if !s.sched.NodeEnabled(id) {
		leaving = qos.Vector{}
	}
	res.Decision = admitctl.NodeRemovalFeasible(s.admitCfg(), s.sched.TotalReservation(), s.sched.EnabledCapacity(), leaving)
	if !res.Accepted && !force {
		s.respondAdminError(conn, decisionStatus(res.Decision), res)
		return
	}
	// Publish the draining mark before dropping the weight: applyWeight
	// consults the current topology, so once the swap lands no breaker tick
	// can ramp the node back up; DrainNode then forces the weight to zero,
	// closing the race with any applyWeight that loaded the old topology.
	cp := t.clone()
	cp.draining[id] = true
	s.topo.Store(cp)
	outst, err := s.sched.DrainNode(id)
	if err != nil {
		res.Error = err.Error()
		s.respondAdminError(conn, 404, res)
		return
	}
	res.OutstandingGeneric = outst.GenericUnits()
	s.annotate(flightrec.TierEvent{Kind: "node-drain", To: int(id)})
	s.respondAdmin(conn, res)
}

// ServeAdmin runs a control-plane-only listener until Close: the admin
// endpoints plus the read-only operational ones (stats, metrics, trace,
// cycles), and nothing else — client traffic cannot be proxied through it.
// Deployments bind it to a private address (gaged's adminListen knob) so the
// mutation surface never shares a port with subscriber traffic.
func (s *Server) ServeAdmin(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dispatch: server closed")
	}
	s.adminLn = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.drainCh:
				return nil
			default:
				return fmt.Errorf("dispatch: admin accept: %w", err)
			}
		}
		s.trackAdminConn(conn)
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer s.untrackAdminConn(conn)
			defer conn.Close()
			br := getReader(conn)
			defer putReader(br)
			for {
				// A draining server reads no further admin requests either —
				// a mutation mid-shutdown would race the teardown.
				select {
				case <-s.drainCh:
					return
				default:
				}
				_ = conn.SetReadDeadline(time.Now().Add(s.cfg.ClientIdleTimeout))
				req, err := httpwire.ReadRequest(br)
				if err != nil {
					return
				}
				switch {
				case strings.HasPrefix(req.Path(), AdminPrefix):
					s.serveAdmin(conn, req)
				case req.Path() == StatsPath:
					s.serveStats(conn)
				case req.Path() == MetricsPath:
					s.serveMetrics(conn)
				case req.Path() == TracePath:
					s.serveTrace(conn)
				case req.Path() == CyclesPath:
					s.serveCycles(conn)
				default:
					s.respondError(conn, 404)
				}
				if !wantKeepAlive(req) {
					return
				}
			}
		}()
	}
}
