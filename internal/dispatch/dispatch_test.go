package dispatch

import (
	"bufio"
	"encoding/json"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gage/internal/backend"
	"gage/internal/core"
	"gage/internal/httpwire"
	"gage/internal/qos"
)

// cluster spins up n backends plus a dispatcher on loopback and returns the
// dispatcher's address.
func cluster(t *testing.T, n int, subs []qos.Subscriber, sched core.Config) (string, *Server) {
	t.Helper()
	backends := make([]Backend, 0, n)
	for i := 1; i <= n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("backend listen: %v", err)
		}
		be := backend.New(backend.Config{Node: core.NodeID(i)})
		go func() { _ = be.Serve(ln) }()
		t.Cleanup(func() { _ = be.Close() })
		backends = append(backends, Backend{ID: core.NodeID(i), Addr: ln.Addr().String()})
	}
	srv, err := New(Config{
		Subscribers: subs,
		Backends:    backends,
		Scheduler:   sched,
		AcctCycle:   50 * time.Millisecond,
		Logger:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("dispatcher listen: %v", err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String(), srv
}

func defaultSubs() []qos.Subscriber {
	return []qos.Subscriber{
		{ID: "site1", Hosts: []string{"www.site1.example"}, Reservation: 500},
		{ID: "site2", Hosts: []string{"www.site2.example"}, Reservation: 200},
	}
}

// get issues one request through the dispatcher.
func get(t *testing.T, addr, host, path string) (*httpwire.Response, error) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Dispatcher queueing can hold a request across scheduling cycles.
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	req := &httpwire.Request{Method: "GET", Target: path, Proto: "HTTP/1.0", Host: host}
	if err := req.Write(conn); err != nil {
		t.Fatalf("write: %v", err)
	}
	return httpwire.ReadResponse(bufio.NewReader(conn))
}

func TestRelayEndToEnd(t *testing.T) {
	addr, srv := cluster(t, 2, defaultSubs(), core.Config{})
	resp, err := get(t, addr, "www.site1.example", "/static/2048.html")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(resp.Body) != 2048 {
		t.Errorf("body = %d bytes, want 2048", len(resp.Body))
	}
	st := srv.Stats()
	if st.Served != 1 || st.Accepted != 1 {
		t.Errorf("stats = %+v, want served=1", st)
	}
}

func TestUnknownHost404(t *testing.T) {
	addr, srv := cluster(t, 1, defaultSubs(), core.Config{})
	resp, err := get(t, addr, "www.nope.example", "/x")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 404 {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
	if srv.Stats().Unclassified != 1 {
		t.Errorf("unclassified = %d, want 1", srv.Stats().Unclassified)
	}
}

func TestMalformedRequest400(t *testing.T) {
	addr, _ := cluster(t, 1, defaultSubs(), core.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("garbage\r\n\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err := httpwire.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if resp.StatusCode != 400 {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestOverflow503(t *testing.T) {
	subs := []qos.Subscriber{
		{ID: "tiny", Hosts: []string{"tiny.example"}, Reservation: 1, QueueLimit: 1},
	}
	// A slow cycle so queued requests cannot drain between arrivals.
	addr, srv := cluster(t, 1, subs, core.Config{Cycle: 200 * time.Millisecond})

	const n = 12
	var (
		mu     sync.Mutex
		counts = map[int]int{}
		wg     sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := get(t, addr, "tiny.example", "/x")
			if err != nil {
				return
			}
			mu.Lock()
			counts[resp.StatusCode]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if counts[503] == 0 {
		t.Errorf("responses = %v, want some 503s under overflow", counts)
	}
	if srv.Stats().Rejected == 0 {
		t.Error("rejected counter must be non-zero")
	}
}

func TestBackendDown502(t *testing.T) {
	// One backend that is immediately closed: dials fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	srv, err := New(Config{
		Subscribers: defaultSubs(),
		Backends:    []Backend{{ID: 1, Addr: deadAddr}},
		Logger:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve(dln) }()
	t.Cleanup(func() { _ = srv.Close() })

	resp, err := get(t, dln.Addr().String(), "www.site1.example", "/x")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 502 {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
	if srv.Stats().Errors == 0 {
		t.Error("errors counter must be non-zero")
	}
}

func TestAccountingFeedsScheduler(t *testing.T) {
	addr, srv := cluster(t, 1, defaultSubs(), core.Config{})
	for i := 0; i < 5; i++ {
		if _, err := get(t, addr, "www.site1.example", "/static/6144.html"); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	// Wait for at least one accounting poll.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		pred, ok := srv.Scheduler().Predicted("site1")
		if ok && pred != qos.GenericCost() {
			// Predictor moved off its 2000-byte prior toward the measured
			// 6544 bytes (one EWMA step: 0.3×6544 + 0.7×2000 ≈ 3363).
			if pred.NetBytes <= 2000 {
				t.Errorf("predicted net = %d, must move above the 2000-byte prior", pred.NetBytes)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Error("scheduler predictor never updated from backend reports")
}

func TestManyConcurrentRequestsSpreadAcrossBackends(t *testing.T) {
	addr, srv := cluster(t, 3, defaultSubs(), core.Config{})
	const n = 30
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := get(t, addr, "www.site2.example", "/static/512.html")
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != 200 || len(resp.Body) != 512 {
				errs <- io.ErrUnexpectedEOF
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("request failed: %v", err)
	}
	if got := srv.Stats().Served; got != n {
		t.Errorf("served = %d, want %d", got, n)
	}
}

func TestPersistentConnectionServesMultipleRequests(t *testing.T) {
	// P-HTTP: an HTTP/1.1 client reuses one connection for several
	// requests, each scheduled independently.
	addr, srv := cluster(t, 2, defaultSubs(), core.Config{})
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	br := bufio.NewReader(conn)
	for i := 0; i < 3; i++ {
		req := &httpwire.Request{
			Method: "GET",
			Target: "/static/512.html",
			Proto:  "HTTP/1.1",
			Host:   "www.site1.example",
		}
		if err := req.Write(conn); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		resp, err := httpwire.ReadResponse(br)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if resp.StatusCode != 200 || len(resp.Body) != 512 {
			t.Fatalf("request %d: status %d, %d bytes", i, resp.StatusCode, len(resp.Body))
		}
	}
	if got := srv.Stats().Served; got != 3 {
		t.Errorf("served = %d, want 3 on one connection", got)
	}
	if got := srv.Stats().Accepted; got != 1 {
		t.Errorf("accepted = %d, want 1 connection", got)
	}
}

func TestWantKeepAlive(t *testing.T) {
	tests := []struct {
		proto, connection string
		want              bool
	}{
		{"HTTP/1.1", "", true},
		{"HTTP/1.1", "keep-alive", true},
		{"HTTP/1.1", "close", false},
		{"HTTP/1.1", "Close", false},
		{"HTTP/1.0", "", false},
		{"HTTP/1.0", "keep-alive", true},
		{"HTTP/1.0", "Keep-Alive", true},
	}
	for _, tt := range tests {
		req := &httpwire.Request{Proto: tt.proto, Header: map[string]string{}}
		if tt.connection != "" {
			req.Header["Connection"] = tt.connection
		}
		if got := wantKeepAlive(req); got != tt.want {
			t.Errorf("wantKeepAlive(%s, %q) = %v, want %v", tt.proto, tt.connection, got, tt.want)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	addr, _ := cluster(t, 2, defaultSubs(), core.Config{})
	if _, err := get(t, addr, "www.site1.example", "/static/100.html"); err != nil {
		t.Fatalf("get: %v", err)
	}
	resp, err := get(t, addr, "", StatsPath)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var out statsJSON
	if err := json.Unmarshal(resp.Body, &out); err != nil {
		t.Fatalf("stats body: %v\n%s", err, resp.Body)
	}
	if out.Served != 1 {
		t.Errorf("served = %d, want 1", out.Served)
	}
	s1, ok := out.Subscribers["site1"]
	if !ok {
		t.Fatalf("stats missing site1: %+v", out.Subscribers)
	}
	if s1.ReservationGRPS != 500 {
		t.Errorf("site1 reservation = %v, want 500", s1.ReservationGRPS)
	}
	if len(out.Nodes) != 2 {
		t.Errorf("nodes = %d, want 2", len(out.Nodes))
	}
}

func TestAccountingSurvivesLostPolls(t *testing.T) {
	// Two requests, then a poll; the backend serves cumulative counters, so
	// even if earlier polls were lost, the dispatcher's delta accounts for
	// everything since its last successful poll.
	addr, srv := cluster(t, 1, defaultSubs(), core.Config{})
	for i := 0; i < 3; i++ {
		if _, err := get(t, addr, "www.site1.example", "/static/1000.html"); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if out, ok := srv.Scheduler().Outstanding(1); ok && out.IsZero() && srv.Stats().Served == 3 {
			return // all usage accounted: outstanding fully released
		}
		time.Sleep(20 * time.Millisecond)
	}
	out, _ := srv.Scheduler().Outstanding(1)
	t.Errorf("outstanding after all completions = %v, want zero", out)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Subscribers: defaultSubs()}); err == nil {
		t.Error("missing backends must be rejected")
	}
	if _, err := New(Config{Backends: []Backend{{ID: 1, Addr: "x"}}}); err == nil {
		t.Error("missing subscribers must be rejected")
	}
}

func TestUnhealthyBackendDisabledThenRecovered(t *testing.T) {
	// One live backend and one dead address. After the health threshold,
	// the scheduler must stop picking the dead node so requests stop
	// hitting 502s.
	liveLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	be := backend.New(backend.Config{Node: 1})
	go func() { _ = be.Serve(liveLn) }()
	t.Cleanup(func() { _ = be.Close() })

	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()

	srv, err := New(Config{
		Subscribers: defaultSubs(),
		Backends: []Backend{
			{ID: 1, Addr: liveLn.Addr().String()},
			{ID: 2, Addr: deadAddr},
		},
		AcctCycle: 30 * time.Millisecond,
		Logger:    log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	// The accounting poller hits the dead backend every 30 ms: within a few
	// cycles it crosses the failure threshold and disables node 2.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && srv.Scheduler().NodeEnabled(2) {
		time.Sleep(20 * time.Millisecond)
	}
	if srv.Scheduler().NodeEnabled(2) {
		t.Fatal("dead node 2 was never disabled")
	}
	// All requests now succeed via the healthy node.
	for i := 0; i < 6; i++ {
		resp, err := get(t, ln.Addr().String(), "www.site1.example", "/static/256.html")
		if err != nil {
			t.Fatalf("get after disable: %v", err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("status after disable = %d, want 200", resp.StatusCode)
		}
	}
	if srv.Scheduler().NodeEnabled(2) {
		t.Error("node 2 must stay disabled while unreachable")
	}
}

func TestCloseIdempotent(t *testing.T) {
	_, srv := cluster(t, 1, defaultSubs(), core.Config{})
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// countingListener counts accepted connections — a probe for poll cadence.
type countingListener struct {
	net.Listener
	hits atomic.Int64
}

func (cl *countingListener) Accept() (net.Conn, error) {
	c, err := cl.Listener.Accept()
	if err == nil {
		cl.hits.Add(1)
	}
	return c, err
}

// hangingBackend accepts TCP connections and never answers — the worst kind
// of dead node: dials succeed and every exchange runs out its full deadline.
func hangingBackend(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var (
		mu    sync.Mutex
		conns []net.Conn
	)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	})
	return ln.Addr().String()
}

// brokenBackend accepts TCP connections and immediately closes them: the
// dial succeeds but every request fails at the exchange.
func brokenBackend(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// startServer runs a dispatcher for a prebuilt config and returns its address.
func startServer(t *testing.T, cfg Config) (string, *Server) {
	t.Helper()
	cfg.Logger = log.New(io.Discard, "", 0)
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String(), srv
}

// liveBackend starts one real backend and returns its address.
func liveBackend(t testing.TB, id core.NodeID) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("backend listen: %v", err)
	}
	be := backend.New(backend.Config{Node: id})
	go func() { _ = be.Serve(ln) }()
	t.Cleanup(func() { _ = be.Close() })
	return ln.Addr().String()
}

// TestAbandonedRequestReleasesCharge is the lifecycle regression test: a
// request whose client gave up (queue-wait timeout) is later dispatched by
// the scheduler, but the relay never runs — before the lifecycle fix the
// predicted usage stayed in the node's outstanding load forever, shrinking
// its capacity with every abandoned request.
func TestAbandonedRequestReleasesCharge(t *testing.T) {
	addr, srv := startServer(t, Config{
		Subscribers: defaultSubs(),
		Backends:    []Backend{{ID: 1, Addr: liveBackend(t, 1)}},
		// The first scheduling tick lands well after the queue timeout, so
		// the client abandons while its request is still queued; the tick
		// then dispatches the stale request.
		Scheduler:    core.Config{Cycle: 200 * time.Millisecond},
		QueueTimeout: 40 * time.Millisecond,
		AcctCycle:    50 * time.Millisecond,
	})
	resp, err := get(t, addr, "www.site1.example", "/static/512.html")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503 (abandoned before dispatch)", resp.StatusCode)
	}
	// Whether the abandonment canceled the queued request or the tick loop
	// reclaimed the dispatched charge, all accounting must return to zero.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		out, _ := srv.Scheduler().Outstanding(1)
		if out.IsZero() && srv.Scheduler().QueueLen("site1") == 0 {
			if got := srv.Stats().Abandoned; got != 1 {
				t.Errorf("abandoned = %d, want 1", got)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	out, _ := srv.Scheduler().Outstanding(1)
	t.Errorf("abandoned request leaked: outstanding = %v, queued = %d, want zero",
		out, srv.Scheduler().QueueLen("site1"))
}

// TestAbandonDispatchHandshake drives both interleavings of the
// dispatch/abandon race deterministically against the handshake primitives.
func TestAbandonDispatchHandshake(t *testing.T) {
	newSrv := func() (*Server, *pendingConn) {
		srv, err := New(Config{
			Subscribers: defaultSubs(),
			Backends:    []Backend{{ID: 1, Addr: "127.0.0.1:1"}},
			Logger:      log.New(io.Discard, "", 0),
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		pc := &pendingConn{id: 1, sub: "site1", node: make(chan core.NodeID, 1)}
		if err := srv.sched.Enqueue(core.Request{ID: 1, Subscriber: "site1", Payload: pc}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
		return srv, pc
	}

	// Abandon wins: the request was popped by Tick but not yet delivered.
	// deliver's failed CAS must reclaim the charge.
	srv, pc := newSrv()
	ds := srv.sched.Tick()
	if len(ds) != 1 {
		t.Fatalf("dispatched %d, want 1", len(ds))
	}
	srv.abandon(pc)
	srv.deliver(ds[0])
	if out, _ := srv.sched.Outstanding(1); !out.IsZero() {
		t.Errorf("abandon-then-deliver: outstanding = %v, want zero", out)
	}
	select {
	case n := <-pc.node:
		t.Errorf("abandoned request must not receive a node, got %d", n)
	default:
	}

	// Dispatcher wins: the node is already in the channel when the client
	// abandons. abandon must consume it and release the charge, so a stale
	// relay can never run against the moved-on connection.
	srv, pc = newSrv()
	ds = srv.sched.Tick()
	if len(ds) != 1 {
		t.Fatalf("dispatched %d, want 1", len(ds))
	}
	srv.deliver(ds[0])
	srv.abandon(pc)
	if out, _ := srv.sched.Outstanding(1); !out.IsZero() {
		t.Errorf("deliver-then-abandon: outstanding = %v, want zero", out)
	}
	select {
	case n := <-pc.node:
		t.Errorf("abandon must consume the dispatch decision, got %d", n)
	default:
	}
}

// TestTimedOutKeepAliveConnStaysUsable: after a queue-wait timeout answers
// 503, the persistent connection keeps serving subsequent requests with
// clean framing — the abandoned request can never write to it.
func TestTimedOutKeepAliveConnStaysUsable(t *testing.T) {
	addr, srv := startServer(t, Config{
		Subscribers:  defaultSubs(),
		Backends:     []Backend{{ID: 1, Addr: liveBackend(t, 1)}},
		Scheduler:    core.Config{Cycle: 300 * time.Millisecond},
		QueueTimeout: 50 * time.Millisecond,
		AcctCycle:    50 * time.Millisecond,
	})
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	br := bufio.NewReader(conn)
	for i := 0; i < 2; i++ {
		req := &httpwire.Request{
			Method: "GET",
			Target: "/static/512.html",
			Proto:  "HTTP/1.1",
			Host:   "www.site1.example",
		}
		if err := req.Write(conn); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		resp, err := httpwire.ReadResponse(br)
		if err != nil {
			t.Fatalf("read %d: %v (framing corrupted?)", i, err)
		}
		if resp.StatusCode != 503 {
			t.Fatalf("request %d: status = %d, want 503 (queue timeout)", i, resp.StatusCode)
		}
	}
	if got := srv.Stats().Abandoned; got != 2 {
		t.Errorf("abandoned = %d, want 2", got)
	}
	if got := srv.Stats().Served; got != 0 {
		t.Errorf("served = %d, want 0", got)
	}
}

// TestRelayRetriesAlternateNode: with one dead and one live backend every
// request succeeds — a dial failure re-dispatches the charge through the
// scheduler to the other node instead of answering 502.
func TestRelayRetriesAlternateNode(t *testing.T) {
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()

	addr, srv := startServer(t, Config{
		Subscribers: defaultSubs(),
		Backends: []Backend{
			{ID: 1, Addr: deadAddr},
			{ID: 2, Addr: liveBackend(t, 2)},
		},
		// Keep accounting polls out of the way so only relay dials count
		// toward node health and the dead node stays dispatched-to at first.
		AcctCycle:    time.Hour,
		RetryBackoff: 5 * time.Millisecond,
	})
	const n = 10
	for i := 0; i < n; i++ {
		resp, err := get(t, addr, "www.site1.example", "/static/256.html")
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status = %d, want 200 (retry must route around the dead node)", i, resp.StatusCode)
		}
	}
	st := srv.Stats()
	if st.Served != n {
		t.Errorf("served = %d, want %d", st.Served, n)
	}
	if st.Retried == 0 {
		t.Error("retried = 0: the dead node was never dialed — test did not exercise the retry path")
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d, want 0 (no request may 502)", st.Errors)
	}
	if srv.Scheduler().NodeEnabled(1) {
		t.Error("dead node must be disabled after repeated dial failures")
	}
	// Every retried charge moved off the dead node: it must carry nothing.
	// (Node 2's outstanding settles via accounting reports, which this test
	// deliberately suppresses.)
	if o1, _ := srv.Scheduler().Outstanding(1); !o1.IsZero() {
		t.Errorf("dead node outstanding = %v, want zero (charge stuck on unreachable node)", o1)
	}
}

// TestRequestLevelFailuresDisableBackend: a backend that accepts TCP but
// fails every exchange must still cross UnhealthyAfter — before the fix only
// dial failures counted, and the successful dial even reset the streak.
func TestRequestLevelFailuresDisableBackend(t *testing.T) {
	addr, srv := startServer(t, Config{
		Subscribers: defaultSubs(),
		Backends: []Backend{
			{ID: 1, Addr: brokenBackend(t)},
			{ID: 2, Addr: liveBackend(t, 2)},
		},
		AcctCycle: time.Hour, // only relay outcomes drive health here
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && srv.Scheduler().NodeEnabled(1) {
		if _, err := get(t, addr, "www.site1.example", "/static/128.html"); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	if srv.Scheduler().NodeEnabled(1) {
		t.Fatal("request-level relay failures never disabled the broken node")
	}
	// With the broken node out of rotation, service is clean again.
	for i := 0; i < 5; i++ {
		resp, err := get(t, addr, "www.site1.example", "/static/128.html")
		if err != nil {
			t.Fatalf("get after disable: %v", err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("status after disable = %d, want 200", resp.StatusCode)
		}
	}
}

// TestConcurrentAcctPollsSurviveDeadBackend: one hung backend (accepts, then
// stalls for the full per-node deadline) must not stretch the other nodes'
// accounting cadence — polls run concurrently, so live nodes keep their
// AcctCycle feedback loop.
func TestConcurrentAcctPollsSurviveDeadBackend(t *testing.T) {
	const acct = 50 * time.Millisecond
	makeCounted := func(id core.NodeID) (*countingListener, string) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		cl := &countingListener{Listener: ln}
		be := backend.New(backend.Config{Node: id})
		go func() { _ = be.Serve(cl) }()
		t.Cleanup(func() { _ = be.Close() })
		return cl, ln.Addr().String()
	}
	cl1, addr1 := makeCounted(1)
	cl2, addr2 := makeCounted(2)

	_, srv := startServer(t, Config{
		Subscribers: defaultSubs(),
		Backends: []Backend{
			{ID: 1, Addr: addr1},
			{ID: 2, Addr: addr2},
			{ID: 3, Addr: hangingBackend(t)},
		},
		AcctCycle: acct,
		// The hung node burns its full deadline on every probe; with
		// sequential polling this would stall every round for 400 ms.
		DialTimeout: 400 * time.Millisecond,
	})
	const window = 1500 * time.Millisecond
	time.Sleep(window)
	// Each live backend must have been polled at least once per 2×AcctCycle
	// over the window (generous slack for scheduling jitter).
	minPolls := int64(window / (2 * acct) / 2)
	if got := cl1.hits.Load(); got < minPolls {
		t.Errorf("node 1 polled %d times in %v, want ≥ %d (cadence within 2×AcctCycle)", got, window, minPolls)
	}
	if got := cl2.hits.Load(); got < minPolls {
		t.Errorf("node 2 polled %d times in %v, want ≥ %d (cadence within 2×AcctCycle)", got, window, minPolls)
	}
	// The hung node crosses the failure threshold (one slow failure per
	// DialTimeout, serialized by the in-flight guard) and leaves rotation.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && srv.Scheduler().NodeEnabled(3) {
		time.Sleep(20 * time.Millisecond)
	}
	if srv.Scheduler().NodeEnabled(3) {
		t.Error("hung node 3 must be disabled")
	}
}

// TestDiffReportsPerSubscriberRestart: one subscriber's counters jump
// backwards (its worker restarted) while another's advance — the restarted
// one contributes its fresh cumulative, the healthy one its normal delta.
func TestDiffReportsPerSubscriberRestart(t *testing.T) {
	usage := func(cpu int64, completed int) core.SubscriberUsage {
		return core.SubscriberUsage{
			Usage:     qos.Vector{CPUTime: time.Duration(cpu)},
			Completed: completed,
		}
	}
	prev := core.UsageReport{
		Node:  1,
		Total: qos.Vector{CPUTime: 300},
		BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
			"steady":    usage(200, 20),
			"restarted": usage(100, 10),
		},
	}
	cum := core.UsageReport{
		Node:  1,
		Total: qos.Vector{CPUTime: 330}, // total still advances
		BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
			"steady":    usage(310, 31),
			"restarted": usage(20, 2), // went backwards: fresh start
		},
	}
	delta := diffReports(cum, prev)
	if got := delta.BySubscriber["steady"]; got != usage(110, 11) {
		t.Errorf("steady delta = %+v, want 110/11", got)
	}
	if got := delta.BySubscriber["restarted"]; got != usage(20, 2) {
		t.Errorf("restarted delta = %+v, want fresh cumulative 20/2", got)
	}
	if delta.Total != (qos.Vector{CPUTime: 30}) {
		t.Errorf("delta total = %v, want 30", delta.Total)
	}
}
