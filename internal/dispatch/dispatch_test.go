package dispatch

import (
	"bufio"
	"encoding/json"
	"io"
	"log"
	"net"
	"sync"
	"testing"
	"time"

	"gage/internal/backend"
	"gage/internal/core"
	"gage/internal/httpwire"
	"gage/internal/qos"
)

// cluster spins up n backends plus a dispatcher on loopback and returns the
// dispatcher's address.
func cluster(t *testing.T, n int, subs []qos.Subscriber, sched core.Config) (string, *Server) {
	t.Helper()
	backends := make([]Backend, 0, n)
	for i := 1; i <= n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("backend listen: %v", err)
		}
		be := backend.New(backend.Config{Node: core.NodeID(i)})
		go func() { _ = be.Serve(ln) }()
		t.Cleanup(func() { _ = be.Close() })
		backends = append(backends, Backend{ID: core.NodeID(i), Addr: ln.Addr().String()})
	}
	srv, err := New(Config{
		Subscribers: subs,
		Backends:    backends,
		Scheduler:   sched,
		AcctCycle:   50 * time.Millisecond,
		Logger:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("dispatcher listen: %v", err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String(), srv
}

func defaultSubs() []qos.Subscriber {
	return []qos.Subscriber{
		{ID: "site1", Hosts: []string{"www.site1.example"}, Reservation: 500},
		{ID: "site2", Hosts: []string{"www.site2.example"}, Reservation: 200},
	}
}

// get issues one request through the dispatcher.
func get(t *testing.T, addr, host, path string) (*httpwire.Response, error) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Dispatcher queueing can hold a request across scheduling cycles.
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	req := &httpwire.Request{Method: "GET", Target: path, Proto: "HTTP/1.0", Host: host}
	if err := req.Write(conn); err != nil {
		t.Fatalf("write: %v", err)
	}
	return httpwire.ReadResponse(bufio.NewReader(conn))
}

func TestRelayEndToEnd(t *testing.T) {
	addr, srv := cluster(t, 2, defaultSubs(), core.Config{})
	resp, err := get(t, addr, "www.site1.example", "/static/2048.html")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(resp.Body) != 2048 {
		t.Errorf("body = %d bytes, want 2048", len(resp.Body))
	}
	st := srv.Stats()
	if st.Served != 1 || st.Accepted != 1 {
		t.Errorf("stats = %+v, want served=1", st)
	}
}

func TestUnknownHost404(t *testing.T) {
	addr, srv := cluster(t, 1, defaultSubs(), core.Config{})
	resp, err := get(t, addr, "www.nope.example", "/x")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 404 {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
	if srv.Stats().Unclassified != 1 {
		t.Errorf("unclassified = %d, want 1", srv.Stats().Unclassified)
	}
}

func TestMalformedRequest400(t *testing.T) {
	addr, _ := cluster(t, 1, defaultSubs(), core.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("garbage\r\n\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err := httpwire.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if resp.StatusCode != 400 {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestOverflow503(t *testing.T) {
	subs := []qos.Subscriber{
		{ID: "tiny", Hosts: []string{"tiny.example"}, Reservation: 1, QueueLimit: 1},
	}
	// A slow cycle so queued requests cannot drain between arrivals.
	addr, srv := cluster(t, 1, subs, core.Config{Cycle: 200 * time.Millisecond})

	const n = 12
	var (
		mu     sync.Mutex
		counts = map[int]int{}
		wg     sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := get(t, addr, "tiny.example", "/x")
			if err != nil {
				return
			}
			mu.Lock()
			counts[resp.StatusCode]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if counts[503] == 0 {
		t.Errorf("responses = %v, want some 503s under overflow", counts)
	}
	if srv.Stats().Rejected == 0 {
		t.Error("rejected counter must be non-zero")
	}
}

func TestBackendDown502(t *testing.T) {
	// One backend that is immediately closed: dials fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	srv, err := New(Config{
		Subscribers: defaultSubs(),
		Backends:    []Backend{{ID: 1, Addr: deadAddr}},
		Logger:      log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve(dln) }()
	t.Cleanup(func() { _ = srv.Close() })

	resp, err := get(t, dln.Addr().String(), "www.site1.example", "/x")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if resp.StatusCode != 502 {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
	if srv.Stats().Errors == 0 {
		t.Error("errors counter must be non-zero")
	}
}

func TestAccountingFeedsScheduler(t *testing.T) {
	addr, srv := cluster(t, 1, defaultSubs(), core.Config{})
	for i := 0; i < 5; i++ {
		if _, err := get(t, addr, "www.site1.example", "/static/6144.html"); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	// Wait for at least one accounting poll.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		pred, ok := srv.Scheduler().Predicted("site1")
		if ok && pred != qos.GenericCost() {
			// Predictor moved off its 2000-byte prior toward the measured
			// 6544 bytes (one EWMA step: 0.3×6544 + 0.7×2000 ≈ 3363).
			if pred.NetBytes <= 2000 {
				t.Errorf("predicted net = %d, must move above the 2000-byte prior", pred.NetBytes)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Error("scheduler predictor never updated from backend reports")
}

func TestManyConcurrentRequestsSpreadAcrossBackends(t *testing.T) {
	addr, srv := cluster(t, 3, defaultSubs(), core.Config{})
	const n = 30
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := get(t, addr, "www.site2.example", "/static/512.html")
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != 200 || len(resp.Body) != 512 {
				errs <- io.ErrUnexpectedEOF
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("request failed: %v", err)
	}
	if got := srv.Stats().Served; got != n {
		t.Errorf("served = %d, want %d", got, n)
	}
}

func TestPersistentConnectionServesMultipleRequests(t *testing.T) {
	// P-HTTP: an HTTP/1.1 client reuses one connection for several
	// requests, each scheduled independently.
	addr, srv := cluster(t, 2, defaultSubs(), core.Config{})
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	br := bufio.NewReader(conn)
	for i := 0; i < 3; i++ {
		req := &httpwire.Request{
			Method: "GET",
			Target: "/static/512.html",
			Proto:  "HTTP/1.1",
			Host:   "www.site1.example",
		}
		if err := req.Write(conn); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		resp, err := httpwire.ReadResponse(br)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if resp.StatusCode != 200 || len(resp.Body) != 512 {
			t.Fatalf("request %d: status %d, %d bytes", i, resp.StatusCode, len(resp.Body))
		}
	}
	if got := srv.Stats().Served; got != 3 {
		t.Errorf("served = %d, want 3 on one connection", got)
	}
	if got := srv.Stats().Accepted; got != 1 {
		t.Errorf("accepted = %d, want 1 connection", got)
	}
}

func TestWantKeepAlive(t *testing.T) {
	tests := []struct {
		proto, connection string
		want              bool
	}{
		{"HTTP/1.1", "", true},
		{"HTTP/1.1", "keep-alive", true},
		{"HTTP/1.1", "close", false},
		{"HTTP/1.1", "Close", false},
		{"HTTP/1.0", "", false},
		{"HTTP/1.0", "keep-alive", true},
		{"HTTP/1.0", "Keep-Alive", true},
	}
	for _, tt := range tests {
		req := &httpwire.Request{Proto: tt.proto, Header: map[string]string{}}
		if tt.connection != "" {
			req.Header["Connection"] = tt.connection
		}
		if got := wantKeepAlive(req); got != tt.want {
			t.Errorf("wantKeepAlive(%s, %q) = %v, want %v", tt.proto, tt.connection, got, tt.want)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	addr, _ := cluster(t, 2, defaultSubs(), core.Config{})
	if _, err := get(t, addr, "www.site1.example", "/static/100.html"); err != nil {
		t.Fatalf("get: %v", err)
	}
	resp, err := get(t, addr, "", StatsPath)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var out statsJSON
	if err := json.Unmarshal(resp.Body, &out); err != nil {
		t.Fatalf("stats body: %v\n%s", err, resp.Body)
	}
	if out.Served != 1 {
		t.Errorf("served = %d, want 1", out.Served)
	}
	s1, ok := out.Subscribers["site1"]
	if !ok {
		t.Fatalf("stats missing site1: %+v", out.Subscribers)
	}
	if s1.ReservationGRPS != 500 {
		t.Errorf("site1 reservation = %v, want 500", s1.ReservationGRPS)
	}
	if len(out.Nodes) != 2 {
		t.Errorf("nodes = %d, want 2", len(out.Nodes))
	}
}

func TestDiffReports(t *testing.T) {
	usage := func(cpu int64, completed int) core.SubscriberUsage {
		return core.SubscriberUsage{
			Usage:     qos.Vector{CPUTime: time.Duration(cpu)},
			Completed: completed,
		}
	}
	prev := core.UsageReport{
		Node:  1,
		Total: qos.Vector{CPUTime: 100},
		BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
			"a": usage(100, 10),
		},
	}
	cum := core.UsageReport{
		Node:  1,
		Total: qos.Vector{CPUTime: 130},
		BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
			"a": usage(120, 12),
			"b": usage(10, 1),
		},
	}
	delta := diffReports(cum, prev)
	if delta.Total != (qos.Vector{CPUTime: 30}) {
		t.Errorf("delta total = %v, want 30", delta.Total)
	}
	if got := delta.BySubscriber["a"]; got != usage(20, 2) {
		t.Errorf("delta a = %+v, want 20/2", got)
	}
	if got := delta.BySubscriber["b"]; got != usage(10, 1) {
		t.Errorf("delta b = %+v (new subscriber keeps full value)", got)
	}
	// Unchanged subscribers are omitted.
	same := diffReports(cum, cum)
	if len(same.BySubscriber) != 0 || !same.Total.IsZero() {
		t.Errorf("identical snapshots must produce an empty delta: %+v", same)
	}
	// A restarted backend (counters going backwards) resets the baseline.
	restarted := diffReports(prev, cum)
	if restarted.Total != prev.Total {
		t.Errorf("restart delta total = %v, want fresh cumulative %v", restarted.Total, prev.Total)
	}
	if got := restarted.BySubscriber["a"]; got != usage(100, 10) {
		t.Errorf("restart delta a = %+v, want fresh cumulative", got)
	}
}

func TestAccountingSurvivesLostPolls(t *testing.T) {
	// Two requests, then a poll; the backend serves cumulative counters, so
	// even if earlier polls were lost, the dispatcher's delta accounts for
	// everything since its last successful poll.
	addr, srv := cluster(t, 1, defaultSubs(), core.Config{})
	for i := 0; i < 3; i++ {
		if _, err := get(t, addr, "www.site1.example", "/static/1000.html"); err != nil {
			t.Fatalf("get: %v", err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if out, ok := srv.Scheduler().Outstanding(1); ok && out.IsZero() && srv.Stats().Served == 3 {
			return // all usage accounted: outstanding fully released
		}
		time.Sleep(20 * time.Millisecond)
	}
	out, _ := srv.Scheduler().Outstanding(1)
	t.Errorf("outstanding after all completions = %v, want zero", out)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Subscribers: defaultSubs()}); err == nil {
		t.Error("missing backends must be rejected")
	}
	if _, err := New(Config{Backends: []Backend{{ID: 1, Addr: "x"}}}); err == nil {
		t.Error("missing subscribers must be rejected")
	}
}

func TestUnhealthyBackendDisabledThenRecovered(t *testing.T) {
	// One live backend and one dead address. After the health threshold,
	// the scheduler must stop picking the dead node so requests stop
	// hitting 502s.
	liveLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	be := backend.New(backend.Config{Node: 1})
	go func() { _ = be.Serve(liveLn) }()
	t.Cleanup(func() { _ = be.Close() })

	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()

	srv, err := New(Config{
		Subscribers: defaultSubs(),
		Backends: []Backend{
			{ID: 1, Addr: liveLn.Addr().String()},
			{ID: 2, Addr: deadAddr},
		},
		AcctCycle: 30 * time.Millisecond,
		Logger:    log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	// The accounting poller hits the dead backend every 30 ms: within a few
	// cycles it crosses the failure threshold and disables node 2.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && srv.Scheduler().NodeEnabled(2) {
		time.Sleep(20 * time.Millisecond)
	}
	if srv.Scheduler().NodeEnabled(2) {
		t.Fatal("dead node 2 was never disabled")
	}
	// All requests now succeed via the healthy node.
	for i := 0; i < 6; i++ {
		resp, err := get(t, ln.Addr().String(), "www.site1.example", "/static/256.html")
		if err != nil {
			t.Fatalf("get after disable: %v", err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("status after disable = %d, want 200", resp.StatusCode)
		}
	}
	if srv.Scheduler().NodeEnabled(2) {
		t.Error("node 2 must stay disabled while unreachable")
	}
}

func TestCloseIdempotent(t *testing.T) {
	_, srv := cluster(t, 1, defaultSubs(), core.Config{})
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
