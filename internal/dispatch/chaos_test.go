package dispatch

import (
	"io"
	"log"
	"net"
	"reflect"
	"testing"
	"time"

	"gage/internal/backend"
	"gage/internal/core"
	"gage/internal/faults"
	"gage/internal/qos"
)

func TestDiffReports(t *testing.T) {
	vec := func(cpu time.Duration, bytes int64) qos.Vector {
		return qos.Vector{CPUTime: cpu, NetBytes: bytes}
	}
	cases := []struct {
		name      string
		cum, prev core.UsageReport
		want      core.UsageReport
	}{
		{
			name: "first-report",
			cum: core.UsageReport{Node: 1, Total: vec(10*time.Millisecond, 100),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
					"a": {Usage: vec(10*time.Millisecond, 100), Completed: 2},
				}},
			prev: core.UsageReport{},
			want: core.UsageReport{Node: 1, Total: vec(10*time.Millisecond, 100),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
					"a": {Usage: vec(10*time.Millisecond, 100), Completed: 2},
				}},
		},
		{
			name: "steady-delta",
			cum: core.UsageReport{Node: 1, Total: vec(30*time.Millisecond, 300),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
					"a": {Usage: vec(30*time.Millisecond, 300), Completed: 6},
				}},
			prev: core.UsageReport{Node: 1, Total: vec(10*time.Millisecond, 100),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
					"a": {Usage: vec(10*time.Millisecond, 100), Completed: 2},
				}},
			want: core.UsageReport{Node: 1, Total: vec(20*time.Millisecond, 200),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
					"a": {Usage: vec(20*time.Millisecond, 200), Completed: 4},
				}},
		},
		{
			name: "zero-delta-cycle-drops-idle-subscribers",
			cum: core.UsageReport{Node: 1, Total: vec(10*time.Millisecond, 100),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
					"a": {Usage: vec(10*time.Millisecond, 100), Completed: 2},
				}},
			prev: core.UsageReport{Node: 1, Total: vec(10*time.Millisecond, 100),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
					"a": {Usage: vec(10*time.Millisecond, 100), Completed: 2},
				}},
			want: core.UsageReport{Node: 1, Total: vec(0, 0),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{}},
		},
		{
			name: "backend-restart-resets-counters",
			cum: core.UsageReport{Node: 1, Total: vec(5*time.Millisecond, 50),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
					"a": {Usage: vec(5*time.Millisecond, 50), Completed: 1},
				}},
			prev: core.UsageReport{Node: 1, Total: vec(30*time.Millisecond, 300),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
					"a": {Usage: vec(30*time.Millisecond, 300), Completed: 6},
				}},
			// Counters went backwards: the fresh cumulative IS the delta.
			want: core.UsageReport{Node: 1, Total: vec(5*time.Millisecond, 50),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
					"a": {Usage: vec(5*time.Millisecond, 50), Completed: 1},
				}},
		},
		{
			name: "per-subscriber-reset-without-total-reset",
			// Totals still look monotone (another subscriber grew enough),
			// but one subscriber's counters went backwards — its fresh
			// cumulative is taken rather than a negative delta.
			cum: core.UsageReport{Node: 1, Total: vec(50*time.Millisecond, 500),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
					"a": {Usage: vec(2*time.Millisecond, 20), Completed: 1},
					"b": {Usage: vec(48*time.Millisecond, 480), Completed: 9},
				}},
			prev: core.UsageReport{Node: 1, Total: vec(40*time.Millisecond, 400),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
					"a": {Usage: vec(10*time.Millisecond, 100), Completed: 3},
					"b": {Usage: vec(30*time.Millisecond, 300), Completed: 6},
				}},
			want: core.UsageReport{Node: 1, Total: vec(10*time.Millisecond, 100),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
					"a": {Usage: vec(2*time.Millisecond, 20), Completed: 1},
					"b": {Usage: vec(18*time.Millisecond, 180), Completed: 3},
				}},
		},
		{
			name: "subscriber-vanishes-after-restart",
			cum: core.UsageReport{Node: 1, Total: vec(0, 0),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{}},
			prev: core.UsageReport{Node: 1, Total: vec(30*time.Millisecond, 300),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
					"a": {Usage: vec(30*time.Millisecond, 300), Completed: 6},
				}},
			// Restart with nothing served yet: delta is the (empty) fresh
			// cumulative; the vanished subscriber contributes nothing.
			want: core.UsageReport{Node: 1, Total: vec(0, 0),
				BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := diffReports(tc.cum, tc.prev)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("diffReports:\n got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}

// chaosCluster is like cluster but routes every backend dial through a
// faults.Chaos switchboard and gates each backend's listener behind it, so a
// test can fail-stop a backend by address without touching the process.
func chaosCluster(t *testing.T, n int, subs []qos.Subscriber) (string, *Server, *faults.Chaos, []string) {
	t.Helper()
	chaos := faults.NewChaos()
	backends := make([]Backend, 0, n)
	addrs := make([]string, 0, n)
	for i := 1; i <= n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("backend listen: %v", err)
		}
		be := backend.New(backend.Config{Node: core.NodeID(i)})
		go func() { _ = be.Serve(chaos.Listener(ln)) }()
		t.Cleanup(func() { _ = be.Close() })
		backends = append(backends, Backend{ID: core.NodeID(i), Addr: ln.Addr().String()})
		addrs = append(addrs, ln.Addr().String())
	}
	srv, err := New(Config{
		Subscribers:  subs,
		Backends:     backends,
		AcctCycle:    50 * time.Millisecond,
		RetryBackoff: 5 * time.Millisecond,
		Dial:         chaos.Dial,
		Logger:       log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("dispatcher listen: %v", err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String(), srv, chaos, addrs
}

// waitNodeEnabled polls until the scheduler's view of the node matches want.
func waitNodeEnabled(t *testing.T, srv *Server, id core.NodeID, want bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Scheduler().NodeEnabled(id) == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("node %d never reached enabled=%v", id, want)
}

func TestChaosScriptedBackendCrashAndRecovery(t *testing.T) {
	addr, srv, chaos, beAddrs := chaosCluster(t, 2, defaultSubs())

	// Healthy baseline.
	resp, err := get(t, addr, "www.site1.example", "/static/1024.html")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthy get: resp=%v err=%v", resp, err)
	}

	// Fail-stop backend 1. The accounting poller's dials now fail, so the
	// failure streak must cross UnhealthyAfter and disable the node.
	chaos.Crash(beAddrs[0])
	waitNodeEnabled(t, srv, 1, false)

	// While node 1 is down every request must still be served — either
	// dispatched straight to node 2, or redispatched there after a failed
	// dial — and never answered 502.
	for i := 0; i < 10; i++ {
		resp, err := get(t, addr, "www.site1.example", "/static/1024.html")
		if err != nil {
			t.Fatalf("get %d during crash: %v", i, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("get %d during crash: status %d, want 200", i, resp.StatusCode)
		}
	}
	if st := srv.Stats(); st.Errors != 0 {
		t.Errorf("errors = %d during single-node crash with a healthy alternate, want 0", st.Errors)
	}

	// Recovery: the first successful poll clears the streak and re-enables
	// the node, and requests flow again.
	chaos.Recover(beAddrs[0])
	waitNodeEnabled(t, srv, 1, true)
	resp, err = get(t, addr, "www.site1.example", "/static/1024.html")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("post-recovery get: resp=%v err=%v", resp, err)
	}
}

func TestChaosRelayRetriesOntoSurvivor(t *testing.T) {
	addr, srv, chaos, beAddrs := chaosCluster(t, 2, defaultSubs())

	// Crash node 1 and immediately drive requests, before the poller's
	// failure streak can disable it: dispatch decisions for node 1 hit the
	// dead dial and must be redispatched to node 2.
	chaos.Crash(beAddrs[0])
	served := 0
	for i := 0; i < 20; i++ {
		resp, err := get(t, addr, "www.site1.example", "/static/1024.html")
		if err == nil && resp.StatusCode == 200 {
			served++
		}
	}
	st := srv.Stats()
	if served != 20 {
		t.Errorf("served %d/20 requests during un-detected crash (stats %+v)", served, st)
	}
	if st.Retried == 0 {
		t.Error("no relay ever retried onto the survivor; dead-node dispatches were expected")
	}
}
