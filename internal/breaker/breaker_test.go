package breaker

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Unix(1_000_000, 0)

func at(d time.Duration) time.Time { return t0.Add(d) }

// trip drives src failures until the breaker opens.
func trip(t *testing.T, b *Breaker, src Source, now time.Time) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if b.Failure(src, now) {
			return
		}
	}
	t.Fatalf("breaker never opened after 100 %v failures", src)
}

func TestClosedOpensAtThreshold(t *testing.T) {
	b := New(Config{Threshold: 3})
	if b.State() != Closed || b.Weight() != 1.0 {
		t.Fatalf("new breaker: state=%v weight=%v, want closed at weight 1", b.State(), b.Weight())
	}
	if b.Failure(Relay, t0) || b.Failure(Relay, t0) {
		t.Fatal("breaker opened before the threshold")
	}
	if b.State() != Closed {
		t.Fatalf("state=%v after 2/3 failures, want closed", b.State())
	}
	if !b.Failure(Relay, t0) {
		t.Fatal("third failure did not report a state change")
	}
	if b.State() != Open || b.Weight() != 0 {
		t.Fatalf("state=%v weight=%v after threshold, want open at weight 0", b.State(), b.Weight())
	}
	if b.Allow(t0) {
		t.Fatal("open breaker admitted a relay")
	}
}

func TestSuccessBelowThresholdResetsStreak(t *testing.T) {
	b := New(Config{Threshold: 3})
	b.Failure(Relay, t0)
	b.Failure(Relay, t0)
	b.Success(Relay, t0)
	// The streak restarted: two more failures must not trip.
	if b.Failure(Relay, t0) || b.Failure(Relay, t0) {
		t.Fatal("breaker opened although the streak was reset")
	}
	if b.State() != Closed {
		t.Fatalf("state=%v, want closed", b.State())
	}
}

// TestPollSuccessDoesNotClearRelayTrip is the flap regression: a node whose
// report endpoint answers while its request path is dead must stay open.
func TestPollSuccessDoesNotClearRelayTrip(t *testing.T) {
	b := New(Config{Threshold: 3})
	trip(t, b, Relay, t0)
	for i := 0; i < 10; i++ {
		if b.Success(Poll, at(time.Duration(i)*time.Millisecond)) {
			t.Fatal("poll success closed a relay-tripped breaker")
		}
	}
	if b.State() != Open {
		t.Fatalf("state=%v after poll successes, want open", b.State())
	}
	if b.Allow(t0) {
		t.Fatal("relay admitted to a relay-tripped node on poll health alone")
	}
}

// TestPollTripClearsOnPollSuccess: a breaker tripped only by the accounting
// path recovers on the first poll success — the poll is its own probe.
func TestPollTripClearsOnPollSuccess(t *testing.T) {
	b := New(Config{Threshold: 3, SlowStart: 4})
	trip(t, b, Poll, t0)
	// Cooldown cannot move a poll-tripped breaker to half-open.
	if b.Tick(at(time.Hour)) {
		t.Fatal("poll-tripped breaker entered half-open via cooldown")
	}
	if !b.Success(Poll, at(time.Second)) {
		t.Fatal("poll success did not close a poll-tripped breaker")
	}
	if b.State() != Closed {
		t.Fatalf("state=%v, want closed", b.State())
	}
	if w := b.Weight(); w != 1.0/5.0 {
		t.Fatalf("weight=%v right after close, want slow-start start 0.2", w)
	}
}

func TestHalfOpenAfterCooldownThenCloses(t *testing.T) {
	b := New(Config{Threshold: 3, Cooldown: time.Second, SlowStart: 4})
	trip(t, b, Relay, t0)
	if b.Tick(at(999 * time.Millisecond)) {
		t.Fatal("breaker left open before the cooldown elapsed")
	}
	if !b.Tick(at(time.Second)) {
		t.Fatal("breaker did not go half-open after the cooldown")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	// Exactly one probe is admitted.
	if !b.Allow(at(time.Second)) {
		t.Fatal("half-open breaker refused the trial request")
	}
	if b.Allow(at(time.Second)) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// The trial succeeds: closed, in slow start.
	if !b.Success(Relay, at(1100*time.Millisecond)) {
		t.Fatal("trial success did not close the breaker")
	}
	if b.State() != Closed {
		t.Fatalf("state=%v, want closed", b.State())
	}
	if !b.Allow(at(1100 * time.Millisecond)) {
		t.Fatal("closed breaker refused a relay")
	}
}

func TestHalfOpenReopensOnTrialFailure(t *testing.T) {
	b := New(Config{Threshold: 3, Cooldown: time.Second})
	trip(t, b, Relay, t0)
	b.Tick(at(time.Second))
	if !b.Allow(at(time.Second)) {
		t.Fatal("no trial admitted")
	}
	if !b.Failure(Relay, at(1100*time.Millisecond)) {
		t.Fatal("trial failure did not reopen the breaker")
	}
	if b.State() != Open {
		t.Fatalf("state=%v, want open", b.State())
	}
	// The cooldown restarted at the reopen time.
	if b.Tick(at(2 * time.Second)) {
		t.Fatal("breaker went half-open before the restarted cooldown elapsed")
	}
	if !b.Tick(at(2100 * time.Millisecond)) {
		t.Fatal("breaker did not go half-open after the restarted cooldown")
	}
}

func TestSlowStartRampIsExact(t *testing.T) {
	b := New(Config{Threshold: 1, Cooldown: time.Second, SlowStart: 4})
	trip(t, b, Relay, t0)
	b.Tick(at(time.Second))
	b.Allow(at(time.Second))
	b.Success(Relay, at(time.Second))
	want := []float64{1.0 / 5, 2.0 / 5, 3.0 / 5, 4.0 / 5, 1.0, 1.0}
	got := []float64{b.Weight()}
	for i := 0; i < 5; i++ {
		b.Tick(at(time.Duration(2+i) * time.Second))
		got = append(got, b.Weight())
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ramp step %d: weight=%v, want %v (full ramp %v)", i, got[i], want[i], got)
		}
	}
}

func TestReclosedBreakerGetsFreshStreakGrace(t *testing.T) {
	b := New(Config{Threshold: 3, Cooldown: time.Second})
	trip(t, b, Relay, t0)
	b.Tick(at(time.Second))
	b.Allow(at(time.Second))
	b.Success(Relay, at(time.Second))
	// After re-closing, a single failure must not re-trip: the streak was
	// reset along with the trip flags.
	if b.Failure(Relay, at(2*time.Second)) || b.Failure(Relay, at(2*time.Second)) {
		t.Fatal("re-closed breaker tripped below the threshold")
	}
	if b.State() != Closed {
		t.Fatalf("state=%v, want closed", b.State())
	}
}

func TestDoubleTripNeedsBothSourcesHealthy(t *testing.T) {
	b := New(Config{Threshold: 2, Cooldown: time.Second})
	// Both paths dead — the crash case.
	trip(t, b, Relay, t0)
	b.Failure(Poll, t0)
	b.Failure(Poll, t0)
	// Poll recovers first; relay is still tripped, so the breaker stays
	// open and waits for the half-open trial.
	if b.Success(Poll, at(time.Second)) {
		t.Fatal("poll success closed a breaker with a tripped relay path")
	}
	if b.State() != Open {
		t.Fatalf("state=%v, want open", b.State())
	}
	if !b.Tick(at(2 * time.Second)) {
		t.Fatal("cooldown did not move the breaker to half-open once poll health returned")
	}
	if !b.Allow(at(2 * time.Second)) {
		t.Fatal("no trial admitted")
	}
	if !b.Success(Relay, at(2*time.Second)) {
		t.Fatal("trial success did not close the breaker")
	}
}

func TestSnapshotReportsStreaks(t *testing.T) {
	b := New(Config{Threshold: 5})
	b.Failure(Poll, t0)
	b.Failure(Relay, t0)
	b.Failure(Relay, t0)
	snap := b.Snapshot()
	if snap.State != Closed || snap.PollStreak != 1 || snap.RelayStreak != 2 {
		t.Fatalf("snapshot=%+v, want closed with streaks 1/2", snap)
	}
	if snap.Weight != 1.0 {
		t.Fatalf("snapshot weight=%v, want 1", snap.Weight)
	}
}

// TestNewRampingJoinsAtRampBottom is the scale-out contract: a node added to
// a live pool starts Closed at the first slow-start step and climbs one step
// per Tick to full weight — never 0 (it must take some traffic immediately)
// and never 1 (no thundering herd on join).
func TestNewRampingJoinsAtRampBottom(t *testing.T) {
	b := NewRamping(Config{SlowStart: 4})
	if b.State() != Closed {
		t.Fatalf("state=%v, want closed", b.State())
	}
	if !b.Allow(t0) {
		t.Fatal("ramping breaker refused a relay")
	}
	want := 1.0 / 5.0
	for step := 0; step <= 6; step++ {
		if w := b.Weight(); math.Abs(w-want) > 1e-12 {
			t.Fatalf("tick %d: weight=%v, want %v", step, w, want)
		}
		b.Tick(at(time.Duration(step) * time.Second))
		if want < 1 {
			want += 1.0 / 5.0
		}
		if want > 1 {
			want = 1
		}
	}
	if w := b.Weight(); w != 1 {
		t.Fatalf("weight=%v after ramp, want 1", w)
	}
	// Ramping breakers share the normal trip machinery.
	trip(t, b, Relay, t0)
	if b.State() != Open {
		t.Fatalf("state=%v after relay trip, want open", b.State())
	}
}
