// Package breaker implements a per-node circuit breaker with slow-start
// recovery, shared by the live dispatcher and the cluster simulator.
//
// Each back-end node gets one Breaker fed from two independent failure
// sources: the accounting path (Poll — the periodic /_gage/report fetch) and
// the request path (Relay — actual client work forwarded to the node). The
// sources keep separate consecutive-failure streaks and separate tripped
// flags, so a node whose report endpoint answers happily while its request
// path is dead stays open: a poll success never clears a relay trip. That
// asymmetry is the whole point — the predecessor design kept one shared
// streak and flapped between enabled and disabled every accounting cycle.
//
// The state machine is the classic three states:
//
//	Closed    — healthy; traffic flows. Consecutive failures from either
//	            source trip it to Open at Config.Threshold.
//	Open      — no traffic. A relay-tripped breaker transitions to HalfOpen
//	            after Config.Cooldown (measured in Tick calls, which the
//	            owner invokes once per accounting cycle). A poll-tripped
//	            breaker stays Open until a poll succeeds again: the poll
//	            itself is the probe, no trial request is needed.
//	HalfOpen  — exactly one trial relay is admitted (Allow). Success closes
//	            the breaker; failure reopens it and restarts the cooldown.
//
// Leaving Open or HalfOpen re-enters Closed in slow start: Weight ramps from
// 1/(SlowStart+1) to 1 over SlowStart Ticks, so a rejoining node is handed a
// growing fraction of its capacity instead of a thundering herd.
//
// The clock is explicit — every mutating method takes `now` — so the
// deterministic simulator can drive a Breaker on virtual time and the live
// dispatcher on wall time, and unit tests never sleep.
package breaker

import (
	"sync"
	"time"
)

// State is the breaker's position.
type State int

const (
	// Closed means the node is healthy and receives traffic.
	Closed State = iota
	// Open means the node receives no traffic.
	Open
	// HalfOpen means exactly one trial request may probe the node.
	HalfOpen
)

// String names the state for logs and the stats endpoint.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Source identifies which path observed a success or failure.
type Source int

const (
	// Poll is the accounting path: the periodic usage-report fetch.
	Poll Source = iota
	// Relay is the request path: real client work forwarded to the node.
	Relay

	numSources
)

// String names the source for logs.
func (src Source) String() string {
	if src == Poll {
		return "poll"
	}
	return "relay"
}

// Config tunes a Breaker. Zero values select the defaults.
type Config struct {
	// Threshold is how many consecutive failures from one source trip the
	// breaker (default 3).
	Threshold int
	// Cooldown is how long a relay-tripped breaker stays Open before
	// admitting the half-open trial request (default 1s). It is evaluated
	// on Tick, so the effective granularity is the owner's accounting
	// cycle.
	Cooldown time.Duration
	// SlowStart is how many Ticks (accounting cycles) a re-closed breaker
	// takes to ramp from its initial fraction back to full weight
	// (default 4). Zero after explicit defaulting means "no ramp".
	SlowStart int
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.SlowStart < 0 {
		c.SlowStart = 0
	} else if c.SlowStart == 0 {
		c.SlowStart = 4
	}
	return c
}

// Snapshot is a point-in-time view of a breaker for stats endpoints.
type Snapshot struct {
	State  State
	Weight float64
	// PollStreak and RelayStreak are the current consecutive-failure
	// counts per source.
	PollStreak  int
	RelayStreak int
	// Opens counts transitions into Open since creation.
	Opens uint64
}

// Breaker is one node's health gate. Safe for concurrent use.
type Breaker struct {
	mu  sync.Mutex
	cfg Config

	state    State
	streak   [numSources]int
	tripped  [numSources]bool
	openedAt time.Time
	// probing marks the half-open trial slot as taken.
	probing bool
	// ramp counts completed slow-start Ticks since the breaker last
	// closed; weight is (ramp+1)/(SlowStart+1).
	ramp int
	// opens counts transitions into Open since creation (monitoring).
	opens uint64
}

// New builds a closed breaker at full weight.
func New(cfg Config) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, state: Closed, ramp: cfg.SlowStart}
}

// NewRamping builds a closed breaker at the bottom of its slow-start ramp —
// weight 1/(SlowStart+1), climbing one step per Tick to full. A node added to
// a live pool joins through this constructor so scale-out hands it a growing
// fraction of its capacity instead of a thundering herd, exactly as if it had
// just recovered.
func NewRamping(cfg Config) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), state: Closed}
}

// State returns the current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Weight returns the fraction of the node's capacity the scheduler should
// use: 0 while Open, the first ramp step while HalfOpen (the probe must be
// admittable), and (ramp+1)/(SlowStart+1) while Closed — 1.0 once the ramp
// completes.
func (b *Breaker) Weight() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.weightLocked()
}

func (b *Breaker) weightLocked() float64 {
	switch b.state {
	case Open:
		return 0
	case HalfOpen:
		return 1 / float64(b.cfg.SlowStart+1)
	default:
		return float64(b.ramp+1) / float64(b.cfg.SlowStart+1)
	}
}

// Snapshot returns the state, weight and streaks in one consistent read.
func (b *Breaker) Snapshot() Snapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Snapshot{
		State:       b.state,
		Weight:      b.weightLocked(),
		PollStreak:  b.streak[Poll],
		RelayStreak: b.streak[Relay],
		Opens:       b.opens,
	}
}

// Failure records one failure from src. Returns true if the call changed
// the state (tripped Open or reopened from HalfOpen), so callers can log
// transitions without diffing snapshots.
func (b *Breaker) Failure(src Source, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.streak[src]++
	switch b.state {
	case Closed:
		if b.streak[src] >= b.cfg.Threshold {
			b.tripped[src] = true
			b.openLocked(now)
			return true
		}
	case HalfOpen:
		// Any failure while probing reopens immediately — the trial
		// request answered the question.
		b.tripped[src] = true
		b.openLocked(now)
		return true
	case Open:
		if b.streak[src] >= b.cfg.Threshold {
			b.tripped[src] = true
		}
	}
	return false
}

// Success records one success from src. The source's streak and trip clear;
// the breaker closes only when no source remains tripped — this is the flap
// fix: a healthy accounting poll cannot re-enable a node whose relay path
// tripped the breaker. Returns true if the call closed the breaker.
func (b *Breaker) Success(src Source, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.streak[src] = 0
	b.tripped[src] = false
	if b.state == Closed {
		return false
	}
	if b.tripped[Poll] || b.tripped[Relay] {
		return false
	}
	b.closeLocked()
	return true
}

// Allow reports whether a relay may target this node right now. Closed
// always admits; Open never does; HalfOpen admits exactly one caller — the
// trial request — until its outcome arrives via Success or Failure.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return false
	}
}

// Tick advances breaker time by one accounting cycle: a Closed breaker
// ramps its slow-start weight one step; a relay-tripped Open breaker whose
// cooldown has elapsed moves to HalfOpen (poll-tripped breakers wait for a
// poll success instead — the poll is its own probe). Returns true if the
// call changed the state.
func (b *Breaker) Tick(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if b.ramp < b.cfg.SlowStart {
			b.ramp++
		}
	case Open:
		if b.tripped[Relay] && !b.tripped[Poll] && now.Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = HalfOpen
			b.probing = false
			return true
		}
	}
	return false
}

// openLocked moves to Open and restarts the cooldown clock.
func (b *Breaker) openLocked(now time.Time) {
	b.state = Open
	b.openedAt = now
	b.probing = false
	b.opens++
}

// closeLocked moves to Closed in slow start with a clean slate: streaks
// reset so the node gets a full Threshold of grace before re-tripping.
func (b *Breaker) closeLocked() {
	b.state = Closed
	b.ramp = 0
	b.probing = false
	for i := range b.streak {
		b.streak[i] = 0
	}
}
