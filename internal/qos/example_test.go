package qos_test

import (
	"fmt"
	"time"

	"gage/internal/qos"
)

// A reservation of 50 GRPS entitles a subscriber to 500 ms of CPU, 500 ms
// of disk-channel time and 100 KB of network bandwidth every second — the
// paper's own worked example (§3.1).
func ExampleGRPS_Vector() {
	v := qos.GRPS(50).Vector()
	fmt.Println(v)
	// Output: {cpu=500ms disk=500ms net=100000B}
}

// Costs convert to generic-request units by their dominant resource.
func ExampleVector_GenericUnits() {
	cgi := qos.Vector{
		CPUTime:  30 * time.Millisecond, // 3× a generic request's CPU
		DiskTime: 5 * time.Millisecond,
		NetBytes: 2000,
	}
	fmt.Printf("%.1f generic units\n", cgi.GenericUnits())
	// Output: 3.0 generic units
}

// Directories resolve virtual hosts to subscribers for classification.
func ExampleDirectory_ByHost() {
	dir, err := qos.NewDirectory([]qos.Subscriber{
		{ID: "gold", Hosts: []string{"gold.example", "www.gold.example"}, Reservation: 400},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	id, ok := dir.ByHost("www.gold.example")
	fmt.Println(id, ok)
	// Output: gold true
}
