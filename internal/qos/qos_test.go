package qos

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// genVector yields bounded random vectors so duration arithmetic cannot
// overflow during property tests.
func genVector(r *rand.Rand) Vector {
	return Vector{
		CPUTime:  time.Duration(r.Int63n(int64(time.Hour))) - 30*time.Minute,
		DiskTime: time.Duration(r.Int63n(int64(time.Hour))) - 30*time.Minute,
		NetBytes: r.Int63n(1<<40) - 1<<39,
	}
}

type vecPair struct{ A, B Vector }

func (vecPair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(vecPair{A: genVector(r), B: genVector(r)})
}

func TestGenericCost(t *testing.T) {
	g := GenericCost()
	if g.CPUTime != 10*time.Millisecond {
		t.Errorf("generic CPU cost = %v, want 10ms", g.CPUTime)
	}
	if g.DiskTime != 10*time.Millisecond {
		t.Errorf("generic disk cost = %v, want 10ms", g.DiskTime)
	}
	if g.NetBytes != 2000 {
		t.Errorf("generic net cost = %d, want 2000", g.NetBytes)
	}
}

func TestResourceString(t *testing.T) {
	tests := []struct {
		give Resource
		want string
	}{
		{CPU, "cpu"},
		{Disk, "disk"},
		{Net, "net"},
		{Resource(42), "resource(42)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Resource(%d).String() = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

func TestResourcesCanonicalOrder(t *testing.T) {
	want := [NumResources]Resource{CPU, Disk, Net}
	if got := Resources(); got != want {
		t.Errorf("Resources() = %v, want %v", got, want)
	}
}

func TestVectorAddSub(t *testing.T) {
	a := Vector{CPUTime: 5 * time.Millisecond, DiskTime: 2 * time.Millisecond, NetBytes: 100}
	b := Vector{CPUTime: 3 * time.Millisecond, DiskTime: 7 * time.Millisecond, NetBytes: 50}
	sum := a.Add(b)
	want := Vector{CPUTime: 8 * time.Millisecond, DiskTime: 9 * time.Millisecond, NetBytes: 150}
	if sum != want {
		t.Errorf("Add = %v, want %v", sum, want)
	}
	if diff := sum.Sub(b); diff != a {
		t.Errorf("Sub round-trip = %v, want %v", diff, a)
	}
}

func TestVectorAddSubRoundTripProperty(t *testing.T) {
	f := func(p vecPair) bool {
		return p.A.Add(p.B).Sub(p.B) == p.A
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorAddCommutativeProperty(t *testing.T) {
	f := func(p vecPair) bool {
		return p.A.Add(p.B) == p.B.Add(p.A)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorMinMaxProperty(t *testing.T) {
	f := func(p vecPair) bool {
		lo, hi := p.A.Min(p.B), p.A.Max(p.B)
		return hi.Dominates(lo) && hi.Dominates(p.A.Min(p.B)) &&
			lo.Add(hi) == p.A.Add(p.B)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorNegProperty(t *testing.T) {
	f := func(p vecPair) bool {
		return p.A.Neg().Neg() == p.A && p.A.Add(p.A.Neg()).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorScale(t *testing.T) {
	v := Vector{CPUTime: 10 * time.Millisecond, DiskTime: 20 * time.Millisecond, NetBytes: 1000}
	half := v.Scale(0.5)
	want := Vector{CPUTime: 5 * time.Millisecond, DiskTime: 10 * time.Millisecond, NetBytes: 500}
	if half != want {
		t.Errorf("Scale(0.5) = %v, want %v", half, want)
	}
	if got := v.Scale(0); !got.IsZero() {
		t.Errorf("Scale(0) = %v, want zero", got)
	}
}

func TestVectorPredicates(t *testing.T) {
	tests := []struct {
		name       string
		give       Vector
		wantNonNeg bool
		wantAnyNeg bool
		wantZero   bool
	}{
		{"zero", Vector{}, true, false, true},
		{"positive", Vector{CPUTime: 1, DiskTime: 1, NetBytes: 1}, true, false, false},
		{"cpu negative", Vector{CPUTime: -1, DiskTime: 1, NetBytes: 1}, false, true, false},
		{"disk negative", Vector{CPUTime: 1, DiskTime: -1, NetBytes: 1}, false, true, false},
		{"net negative", Vector{CPUTime: 1, DiskTime: 1, NetBytes: -1}, false, true, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.AllNonNegative(); got != tt.wantNonNeg {
				t.Errorf("AllNonNegative = %v, want %v", got, tt.wantNonNeg)
			}
			if got := tt.give.AnyNegative(); got != tt.wantAnyNeg {
				t.Errorf("AnyNegative = %v, want %v", got, tt.wantAnyNeg)
			}
			if got := tt.give.IsZero(); got != tt.wantZero {
				t.Errorf("IsZero = %v, want %v", got, tt.wantZero)
			}
		})
	}
}

func TestAnyNegativeIsNotAllNonNegativeProperty(t *testing.T) {
	f := func(p vecPair) bool {
		return p.A.AnyNegative() == !p.A.AllNonNegative()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampNonNegative(t *testing.T) {
	v := Vector{CPUTime: -5, DiskTime: 7, NetBytes: -3}
	got := v.ClampNonNegative()
	want := Vector{CPUTime: 0, DiskTime: 7, NetBytes: 0}
	if got != want {
		t.Errorf("ClampNonNegative = %v, want %v", got, want)
	}
	if !got.AllNonNegative() {
		t.Error("clamped vector must be non-negative")
	}
}

func TestGenericUnits(t *testing.T) {
	if got := GenericCost().GenericUnits(); math.Abs(got-1) > 1e-9 {
		t.Errorf("GenericUnits(generic) = %v, want 1", got)
	}
	// A CPU-dominant request counts by its CPU usage.
	v := Vector{CPUTime: 30 * time.Millisecond, DiskTime: 10 * time.Millisecond, NetBytes: 2000}
	if got := v.GenericUnits(); math.Abs(got-3) > 1e-9 {
		t.Errorf("GenericUnits(cpu-heavy) = %v, want 3", got)
	}
	if got := (Vector{}).GenericUnits(); got != 0 {
		t.Errorf("GenericUnits(zero) = %v, want 0", got)
	}
}

func TestGRPSVector(t *testing.T) {
	// Paper example: 50 GRPS ⇒ 500 ms CPU, 500 ms disk, 100 KB per second.
	v := GRPS(50).Vector()
	want := Vector{CPUTime: 500 * time.Millisecond, DiskTime: 500 * time.Millisecond, NetBytes: 100_000}
	if v != want {
		t.Errorf("GRPS(50).Vector() = %v, want %v", v, want)
	}
}

func TestGRPSPerCycle(t *testing.T) {
	// 100 GRPS over a 10 ms cycle is one generic request of entitlement.
	v := GRPS(100).PerCycle(10 * time.Millisecond)
	if v != GenericCost() {
		t.Errorf("GRPS(100).PerCycle(10ms) = %v, want %v", v, GenericCost())
	}
}

func TestSubscriberValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Subscriber
		wantErr bool
	}{
		{"valid", Subscriber{ID: "site1", Reservation: 100}, false},
		{"empty id", Subscriber{Reservation: 100}, true},
		{"negative reservation", Subscriber{ID: "s", Reservation: -1}, true},
		{"negative queue limit", Subscriber{ID: "s", QueueLimit: -2}, true},
		{"zero reservation ok", Subscriber{ID: "s"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEffectiveQueueLimit(t *testing.T) {
	if got := (Subscriber{ID: "s"}).EffectiveQueueLimit(); got != DefaultQueueLimit {
		t.Errorf("default queue limit = %d, want %d", got, DefaultQueueLimit)
	}
	if got := (Subscriber{ID: "s", QueueLimit: 7}).EffectiveQueueLimit(); got != 7 {
		t.Errorf("explicit queue limit = %d, want 7", got)
	}
}

func TestDirectoryLookup(t *testing.T) {
	d, err := NewDirectory([]Subscriber{
		{ID: "site1", Hosts: []string{"www.one.example"}, Reservation: 250},
		{ID: "site2", Hosts: []string{"www.two.example", "two.example"}, Reservation: 150},
	})
	if err != nil {
		t.Fatalf("NewDirectory: %v", err)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	s, err := d.Subscriber("site1")
	if err != nil || s.Reservation != 250 {
		t.Errorf("Subscriber(site1) = %+v, %v", s, err)
	}
	if _, err := d.Subscriber("nope"); err == nil {
		t.Error("Subscriber(nope) should fail")
	}
	id, ok := d.ByHost("two.example")
	if !ok || id != "site2" {
		t.Errorf("ByHost(two.example) = %q, %v", id, ok)
	}
	if _, ok := d.ByHost("unknown.example"); ok {
		t.Error("ByHost(unknown) should miss")
	}
	if got := d.TotalReservation(); got != 400 {
		t.Errorf("TotalReservation = %v, want 400", got)
	}
}

func TestDirectoryRejectsDuplicates(t *testing.T) {
	if _, err := NewDirectory([]Subscriber{{ID: "a"}, {ID: "a"}}); err == nil {
		t.Error("duplicate subscriber IDs must be rejected")
	}
	_, err := NewDirectory([]Subscriber{
		{ID: "a", Hosts: []string{"h"}},
		{ID: "b", Hosts: []string{"h"}},
	})
	if err == nil {
		t.Error("duplicate hosts must be rejected")
	}
}

func TestDirectoryIDsSortedAndCopied(t *testing.T) {
	d, err := NewDirectory([]Subscriber{{ID: "z"}, {ID: "a"}, {ID: "m"}})
	if err != nil {
		t.Fatalf("NewDirectory: %v", err)
	}
	ids := d.IDs()
	want := []SubscriberID{"a", "m", "z"}
	if !reflect.DeepEqual(ids, want) {
		t.Errorf("IDs() = %v, want %v", ids, want)
	}
	ids[0] = "mutated"
	if got := d.IDs()[0]; got != "a" {
		t.Errorf("IDs() must return a copy; got %q after mutation", got)
	}
}
