package qos

import (
	"errors"
	"fmt"
	"sort"
)

// SubscriberID identifies a hosting-service subscriber (one logical web
// site / charging entity).
type SubscriberID string

// ErrDuplicateSubscriber is returned when a subscriber ID is registered twice.
var ErrDuplicateSubscriber = errors.New("qos: duplicate subscriber")

// ErrUnknownSubscriber is returned for lookups of unregistered subscribers.
var ErrUnknownSubscriber = errors.New("qos: unknown subscriber")

// Subscriber describes one service subscriber and its static reservation.
type Subscriber struct {
	// ID is the unique subscriber identifier.
	ID SubscriberID
	// Hosts are the virtual-host names that classify requests to this
	// subscriber (the host-name part of the URL, §3.3).
	Hosts []string
	// Reservation is the guaranteed service rate in generic requests/sec.
	Reservation GRPS
	// QueueLimit bounds the subscriber's request queue; arrivals beyond it
	// are dropped. Zero means DefaultQueueLimit.
	QueueLimit int
	// Group names the subscriber group (tenant tier) this subscriber
	// belongs to. The scheduler schedules groups against each other by
	// aggregate reservation and round-robins members within a group, so
	// per-cycle cost is independent of the total population. Empty means
	// the default group.
	Group string
}

// DefaultQueueLimit is the per-subscriber queue bound used when a Subscriber
// does not specify one.
const DefaultQueueLimit = 512

// Validate checks the subscriber definition for internal consistency.
func (s Subscriber) Validate() error {
	if s.ID == "" {
		return errors.New("qos: subscriber ID must be non-empty")
	}
	if s.Reservation < 0 {
		return fmt.Errorf("qos: subscriber %q: negative reservation %v", s.ID, s.Reservation)
	}
	if s.QueueLimit < 0 {
		return fmt.Errorf("qos: subscriber %q: negative queue limit %d", s.ID, s.QueueLimit)
	}
	return nil
}

// EffectiveQueueLimit returns the queue bound, defaulting when unset.
func (s Subscriber) EffectiveQueueLimit() int {
	if s.QueueLimit == 0 {
		return DefaultQueueLimit
	}
	return s.QueueLimit
}

// Directory is an immutable registry of subscribers with host-based lookup.
type Directory struct {
	byID   map[SubscriberID]Subscriber
	byHost map[string]SubscriberID
	ids    []SubscriberID
}

// NewDirectory builds a Directory from subscriber definitions. Host names
// must be unique across subscribers.
func NewDirectory(subs []Subscriber) (*Directory, error) {
	d := &Directory{
		byID:   make(map[SubscriberID]Subscriber, len(subs)),
		byHost: make(map[string]SubscriberID),
	}
	for _, s := range subs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if _, ok := d.byID[s.ID]; ok {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateSubscriber, s.ID)
		}
		d.byID[s.ID] = s
		d.ids = append(d.ids, s.ID)
		for _, h := range s.Hosts {
			if prev, ok := d.byHost[h]; ok {
				return nil, fmt.Errorf("qos: host %q claimed by both %q and %q", h, prev, s.ID)
			}
			d.byHost[h] = s.ID
		}
	}
	sort.Slice(d.ids, func(i, j int) bool { return d.ids[i] < d.ids[j] })
	return d, nil
}

// Subscriber returns the definition for id.
func (d *Directory) Subscriber(id SubscriberID) (Subscriber, error) {
	s, ok := d.byID[id]
	if !ok {
		return Subscriber{}, fmt.Errorf("%w: %q", ErrUnknownSubscriber, id)
	}
	return s, nil
}

// ByHost resolves a virtual-host name to a subscriber ID.
func (d *Directory) ByHost(host string) (SubscriberID, bool) {
	id, ok := d.byHost[host]
	return id, ok
}

// IDs returns all subscriber IDs in deterministic (sorted) order.
func (d *Directory) IDs() []SubscriberID {
	out := make([]SubscriberID, len(d.ids))
	copy(out, d.ids)
	return out
}

// Len returns the number of registered subscribers.
func (d *Directory) Len() int { return len(d.ids) }

// TotalReservation sums all subscribers' reservations.
func (d *Directory) TotalReservation() GRPS {
	var total GRPS
	for _, s := range d.byID {
		total += s.Reservation
	}
	return total
}
