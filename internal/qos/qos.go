// Package qos defines the resource-vector arithmetic and quality-of-service
// units used throughout Gage.
//
// Gage expresses guarantees in generic URL requests per second (GRPS). One
// generic request represents an average web-site access and is defined by the
// paper to cost 10 ms of CPU time, 10 ms of disk-channel time, and 2,000
// bytes of outgoing network bandwidth. A subscriber reservation of R GRPS
// therefore entitles the subscriber's requests to R×10 ms of CPU, R×10 ms of
// disk time, and R×2,000 bytes of network bandwidth every second.
package qos

import (
	"fmt"
	"time"
)

// Generic-request cost constants (paper §3.1).
const (
	// GenericCPUTime is the CPU time consumed by one generic request.
	GenericCPUTime = 10 * time.Millisecond
	// GenericDiskTime is the disk-channel time consumed by one generic request.
	GenericDiskTime = 10 * time.Millisecond
	// GenericNetBytes is the network bandwidth consumed by one generic request.
	GenericNetBytes = 2000
)

// Resource identifies one of the three resources Gage accounts for.
type Resource int

// The three managed resources.
const (
	CPU Resource = iota + 1
	Disk
	Net
)

// NumResources is the number of managed resource dimensions.
const NumResources = 3

// String returns the lower-case resource name.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "cpu"
	case Disk:
		return "disk"
	case Net:
		return "net"
	default:
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// Resources lists the managed resources in canonical order.
func Resources() [NumResources]Resource {
	return [NumResources]Resource{CPU, Disk, Net}
}

// Vector is a resource-usage vector: CPU time, disk-channel time, and bytes
// of network bandwidth. The zero Vector is "no usage" and ready to use.
//
// Vectors represent request costs, queue balances, reservations-per-cycle,
// and accounting-report quantities. Balances may go negative.
type Vector struct {
	// CPUTime is processor time consumed.
	CPUTime time.Duration
	// DiskTime is disk-channel occupancy time.
	DiskTime time.Duration
	// NetBytes is bytes transferred on the outgoing link.
	NetBytes int64
}

// GenericCost is the cost vector of one generic request.
func GenericCost() Vector {
	return Vector{
		CPUTime:  GenericCPUTime,
		DiskTime: GenericDiskTime,
		NetBytes: GenericNetBytes,
	}
}

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	return Vector{
		CPUTime:  v.CPUTime + w.CPUTime,
		DiskTime: v.DiskTime + w.DiskTime,
		NetBytes: v.NetBytes + w.NetBytes,
	}
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) Vector {
	return Vector{
		CPUTime:  v.CPUTime - w.CPUTime,
		DiskTime: v.DiskTime - w.DiskTime,
		NetBytes: v.NetBytes - w.NetBytes,
	}
}

// Scale returns v scaled by k.
func (v Vector) Scale(k float64) Vector {
	return Vector{
		CPUTime:  time.Duration(float64(v.CPUTime) * k),
		DiskTime: time.Duration(float64(v.DiskTime) * k),
		NetBytes: int64(float64(v.NetBytes) * k),
	}
}

// Neg returns -v.
func (v Vector) Neg() Vector {
	return Vector{CPUTime: -v.CPUTime, DiskTime: -v.DiskTime, NetBytes: -v.NetBytes}
}

// IsZero reports whether all components are zero.
func (v Vector) IsZero() bool {
	return v.CPUTime == 0 && v.DiskTime == 0 && v.NetBytes == 0
}

// AllNonNegative reports whether every component is >= 0. A dispatch is
// admissible while the post-dispatch balance stays AllNonNegative.
func (v Vector) AllNonNegative() bool {
	return v.CPUTime >= 0 && v.DiskTime >= 0 && v.NetBytes >= 0
}

// AnyNegative reports whether at least one component is < 0. Per §3.5 the
// scheduler stops dispatching from a queue when one of the three balances
// becomes negative.
func (v Vector) AnyNegative() bool {
	return v.CPUTime < 0 || v.DiskTime < 0 || v.NetBytes < 0
}

// Dominates reports whether v >= w component-wise.
func (v Vector) Dominates(w Vector) bool {
	return v.CPUTime >= w.CPUTime && v.DiskTime >= w.DiskTime && v.NetBytes >= w.NetBytes
}

// Min returns the component-wise minimum of v and w.
func (v Vector) Min(w Vector) Vector {
	return Vector{
		CPUTime:  minDur(v.CPUTime, w.CPUTime),
		DiskTime: minDur(v.DiskTime, w.DiskTime),
		NetBytes: minI64(v.NetBytes, w.NetBytes),
	}
}

// Max returns the component-wise maximum of v and w.
func (v Vector) Max(w Vector) Vector {
	return Vector{
		CPUTime:  maxDur(v.CPUTime, w.CPUTime),
		DiskTime: maxDur(v.DiskTime, w.DiskTime),
		NetBytes: maxI64(v.NetBytes, w.NetBytes),
	}
}

// ClampNonNegative returns v with negative components replaced by zero.
func (v Vector) ClampNonNegative() Vector {
	return v.Max(Vector{})
}

// GenericUnits converts a usage vector into generic-request units: the number
// of generic requests whose aggregate cost the vector represents. The
// conversion uses the maximum across resource dimensions, so a request that
// is CPU-heavy but disk-light still counts by its dominant resource — the
// same convention the paper uses when it reports served GRPS.
func (v Vector) GenericUnits() float64 {
	g := GenericCost()
	cpu := float64(v.CPUTime) / float64(g.CPUTime)
	disk := float64(v.DiskTime) / float64(g.DiskTime)
	net := float64(v.NetBytes) / float64(g.NetBytes)
	return max(cpu, max(disk, net))
}

// UnitsOf converts the vector to generic-request units along a single
// resource dimension: usage of that resource divided by the generic
// request's usage of it. Experiments on CPU-bound workloads measure served
// GRPS this way, matching the paper's request-count convention.
func (v Vector) UnitsOf(r Resource) float64 {
	g := GenericCost()
	switch r {
	case CPU:
		return float64(v.CPUTime) / float64(g.CPUTime)
	case Disk:
		return float64(v.DiskTime) / float64(g.DiskTime)
	case Net:
		return float64(v.NetBytes) / float64(g.NetBytes)
	default:
		return v.GenericUnits()
	}
}

// String formats the vector for logs and test failures.
func (v Vector) String() string {
	return fmt.Sprintf("{cpu=%v disk=%v net=%dB}", v.CPUTime, v.DiskTime, v.NetBytes)
}

// GRPS is a rate of generic requests per second.
type GRPS float64

// PerCycle returns the resource entitlement that a reservation of g GRPS
// accrues over one scheduling cycle: g × cycle-fraction generic costs.
func (g GRPS) PerCycle(cycle time.Duration) Vector {
	return GenericCost().Scale(float64(g) * cycle.Seconds())
}

// Vector returns the per-second entitlement of the reservation, e.g. 50 GRPS
// ⇒ 500 ms CPU, 500 ms disk, 100,000 bytes every second.
func (g GRPS) Vector() Vector {
	return g.PerCycle(time.Second)
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
