package frontier

import (
	"fmt"
	"reflect"
	"testing"
)

func tierGroups(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tier%02d", i)
	}
	return out
}

// TestPartitionGoldenDistribution pins the exact partition map for the
// canonical 32-group / 3-RDN configuration (the hierarchical stress cast) and
// asserts the balance bound the salt was tuned for: no RDN deviates from the
// ideal share by more than 5% of the population. Changing partitionSalt (or
// the hash) reshuffles every deployment's partition map, so it must show up
// here as a conscious golden update.
func TestPartitionGoldenDistribution(t *testing.T) {
	p, err := NewPartitioner(3)
	if err != nil {
		t.Fatalf("NewPartitioner: %v", err)
	}
	got := p.Assign(tierGroups(32))
	want := map[int][]string{
		1: {"tier02", "tier04", "tier07", "tier11", "tier14", "tier15", "tier19", "tier20", "tier25", "tier28", "tier31"},
		2: {"tier00", "tier01", "tier03", "tier05", "tier10", "tier16", "tier17", "tier22", "tier24", "tier27", "tier29"},
		3: {"tier06", "tier08", "tier09", "tier12", "tier13", "tier18", "tier21", "tier23", "tier26", "tier30"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("partition map changed:\n got  %v\n want %v", got, want)
	}
	ideal := 32.0 / 3.0
	for r, gs := range got {
		if dev := float64(len(gs)) - ideal; dev > 1.6 || dev < -1.6 {
			t.Fatalf("RDN %d owns %d of 32 groups; imbalance %.1f%% exceeds 5%%",
				r, len(gs), 100*(dev/32))
		}
	}
}

// TestPartitionRemovalMovesOnlyOwnedGroups checks the rendezvous-hash
// minimal-disruption property the failover protocol depends on: dropping one
// RDN from the candidate set re-homes exactly the groups it owned. Every
// other group keeps its owner, so a takeover's blast radius is the dead
// front end's partition and nothing else.
func TestPartitionRemovalMovesOnlyOwnedGroups(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		p, err := NewPartitioner(n)
		if err != nil {
			t.Fatalf("NewPartitioner(%d): %v", n, err)
		}
		groups := tierGroups(64)
		for dead := 1; dead <= n; dead++ {
			live := make([]int, 0, n-1)
			for _, r := range p.RDNs() {
				if r != dead {
					live = append(live, r)
				}
			}
			for _, g := range groups {
				owner := p.Owner(g)
				after := p.OwnerAmong(g, live)
				if owner != dead && after != owner {
					t.Fatalf("n=%d kill=%d: group %s moved %d→%d though its owner survived",
						n, dead, g, owner, after)
				}
				if owner == dead && after == dead {
					t.Fatalf("n=%d kill=%d: group %s still assigned to the dead RDN", n, dead, g)
				}
			}
		}
	}
}

func TestPartitionOwnerDeterministicAndTotal(t *testing.T) {
	p, err := NewPartitioner(4)
	if err != nil {
		t.Fatalf("NewPartitioner: %v", err)
	}
	for _, g := range tierGroups(40) {
		first := p.Owner(g)
		if first < 1 || first > 4 {
			t.Fatalf("Owner(%s) = %d, outside 1..4", g, first)
		}
		for i := 0; i < 3; i++ {
			if got := p.Owner(g); got != first {
				t.Fatalf("Owner(%s) not deterministic: %d then %d", g, first, got)
			}
		}
		if got := p.OwnerAmong(g, p.RDNs()); got != first {
			t.Fatalf("OwnerAmong(all) = %d, Owner = %d", got, first)
		}
	}
	if got := p.OwnerAmong("tier00", nil); got != 0 {
		t.Fatalf("OwnerAmong(empty live set) = %d, want 0", got)
	}
	if _, err := NewPartitioner(0); err == nil {
		t.Fatalf("NewPartitioner(0) succeeded")
	}
	if _, err := NewPartitioner(-2); err == nil {
		t.Fatalf("NewPartitioner(-2) succeeded")
	}
	// Degenerate single-RDN tier: everything homes to RDN 1 — the
	// configuration whose goldens must match the pre-frontier pipeline.
	solo, err := NewPartitioner(1)
	if err != nil {
		t.Fatalf("NewPartitioner(1): %v", err)
	}
	for _, g := range tierGroups(16) {
		if got := solo.Owner(g); got != 1 {
			t.Fatalf("single-RDN Owner(%s) = %d, want 1", g, got)
		}
	}
}
