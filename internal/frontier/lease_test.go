package frontier

import (
	"testing"
	"time"

	"gage/internal/core"
	"gage/internal/qos"
)

func mustTable(t *testing.T, rdns int, lease time.Duration, groups []string) *Table {
	t.Helper()
	tb, err := NewTable(Config{RDNs: rdns, LeaseInterval: lease}, groups)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tb
}

func beatAll(t *testing.T, tb *Table, rdns []int, now time.Duration) {
	t.Helper()
	for _, r := range rdns {
		if err := tb.Beat(r, now, nil); err != nil {
			t.Fatalf("Beat(%d, %v): %v", r, now, err)
		}
	}
}

func TestLeaseExpiryTriggersTakeoverToSurvivingCandidate(t *testing.T) {
	groups := tierGroups(32)
	tb := mustTable(t, 3, 100*time.Millisecond, groups)
	victim := 2
	victimGroups := tb.Partition(victim)
	if len(victimGroups) == 0 {
		t.Fatalf("victim owns no groups")
	}

	// Everyone beats at t=50ms; the victim goes silent afterwards.
	beatAll(t, tb, []int{1, 3}, 250*time.Millisecond)
	if err := tb.Beat(victim, 50*time.Millisecond, nil); err != nil {
		t.Fatalf("Beat: %v", err)
	}

	changes := tb.Check(250 * time.Millisecond)
	if len(changes) != len(victimGroups) {
		t.Fatalf("takeover moved %d groups, victim owned %d", len(changes), len(victimGroups))
	}
	for _, ch := range changes {
		if ch.From != victim {
			t.Fatalf("group %s moved from %d; only RDN %d died", ch.Group, ch.From, victim)
		}
		if ch.Kind != Takeover {
			t.Fatalf("group %s: kind %v, want takeover", ch.Group, ch.Kind)
		}
		if want := tb.Partitioner().OwnerAmong(ch.Group, []int{1, 3}); ch.To != want {
			t.Fatalf("group %s adopted by %d, rendezvous successor is %d", ch.Group, ch.To, want)
		}
		if ch.Epoch != 2 {
			t.Fatalf("group %s: epoch %d after first move, want 2", ch.Group, ch.Epoch)
		}
		if own, _ := tb.Owner(ch.Group); own.RDN != ch.To || own.Epoch != ch.Epoch {
			t.Fatalf("table ownership %+v disagrees with change %+v", own, ch)
		}
	}
	// Untouched partitions did not move and a second check is quiescent.
	for _, r := range []int{1, 3} {
		for _, g := range tb.Partition(r) {
			if own, _ := tb.Owner(g); own.RDN == victim {
				t.Fatalf("group %s still maps to the dead RDN", g)
			}
		}
	}
	if again := tb.Check(251 * time.Millisecond); len(again) != 0 {
		t.Fatalf("second check produced %d changes, want 0", len(again))
	}
}

func TestRecoveryHandsGroupsBackWithBumpedEpoch(t *testing.T) {
	groups := tierGroups(32)
	tb := mustTable(t, 3, 100*time.Millisecond, groups)
	victimGroups := tb.Partition(2)

	beatAll(t, tb, []int{1, 3}, 200*time.Millisecond)
	taken := tb.Check(200 * time.Millisecond)
	if len(taken) != len(victimGroups) {
		t.Fatalf("takeover moved %d groups, want %d", len(taken), len(victimGroups))
	}

	// The victim rejoins: every one of its groups returns as a handback at
	// epoch 3 — exactly the groups that moved, nothing else.
	beatAll(t, tb, []int{1, 2, 3}, 300*time.Millisecond)
	back := tb.Check(300 * time.Millisecond)
	if len(back) != len(victimGroups) {
		t.Fatalf("handback moved %d groups, want %d", len(back), len(victimGroups))
	}
	for _, ch := range back {
		if ch.To != 2 || ch.Kind != Handback || ch.Epoch != 3 {
			t.Fatalf("handback change %+v; want To=2 kind=handback epoch=3", ch)
		}
	}
}

func TestBeatSnapshotsRideOnlyWithOwnership(t *testing.T) {
	groups := tierGroups(8)
	tb := mustTable(t, 2, 100*time.Millisecond, groups)
	g := tb.Partition(1)[0]
	snap := []core.SubscriberState{{ID: "s1", Reservation: 10, QueueLimit: 8, Group: g,
		Balance: qos.Vector{CPUTime: time.Millisecond}}}

	// Owner's snapshot is stored and travels with the takeover.
	if err := tb.Beat(1, 10*time.Millisecond, map[string][]core.SubscriberState{g: snap}); err != nil {
		t.Fatalf("Beat: %v", err)
	}
	// A non-owner's snapshot for the same group is refused silently.
	bogus := []core.SubscriberState{{ID: "intruder", Reservation: 1, Group: g}}
	if err := tb.Beat(2, 20*time.Millisecond, map[string][]core.SubscriberState{g: bogus}); err != nil {
		t.Fatalf("Beat: %v", err)
	}

	if err := tb.Beat(2, 500*time.Millisecond, nil); err != nil {
		t.Fatalf("Beat: %v", err)
	}
	changes := tb.Check(500 * time.Millisecond)
	var got *Change
	for i := range changes {
		if changes[i].Group == g {
			got = &changes[i]
		}
	}
	if got == nil {
		t.Fatalf("group %s did not move on owner death", g)
	}
	if len(got.Snapshot) != 1 || got.Snapshot[0].ID != "s1" {
		t.Fatalf("takeover snapshot = %+v, want the owner's beat payload", got.Snapshot)
	}
}

func TestLeaseValidFencesDeposedEpochs(t *testing.T) {
	groups := tierGroups(16)
	tb := mustTable(t, 3, 100*time.Millisecond, groups)
	g := tb.Partition(2)[0]
	if !tb.Valid(g, 2, 1) {
		t.Fatalf("current owner at current epoch rejected")
	}
	beatAll(t, tb, []int{1, 3}, 400*time.Millisecond)
	tb.Check(400 * time.Millisecond)
	own, _ := tb.Owner(g)
	if tb.Valid(g, 2, 1) {
		t.Fatalf("deposed (rdn=2, epoch=1) still valid after takeover")
	}
	if tb.Valid(g, own.RDN, own.Epoch-1) {
		t.Fatalf("stale epoch accepted for the new owner")
	}
	if !tb.Valid(g, own.RDN, own.Epoch) {
		t.Fatalf("new owner at new epoch rejected")
	}
	if tb.Valid("no-such-group", 1, 1) {
		t.Fatalf("unknown group validated")
	}
}

func TestTableRejectsBadConfigAndUnknownRDN(t *testing.T) {
	if _, err := NewTable(Config{RDNs: 0, LeaseInterval: time.Second}, tierGroups(4)); err == nil {
		t.Fatalf("zero RDNs accepted")
	}
	if _, err := NewTable(Config{RDNs: 2, LeaseInterval: 0}, tierGroups(4)); err == nil {
		t.Fatalf("zero lease interval accepted")
	}
	if _, err := NewTable(Config{RDNs: 2, LeaseInterval: time.Second}, nil); err == nil {
		t.Fatalf("empty group set accepted")
	}
	if _, err := NewTable(Config{RDNs: 2, LeaseInterval: time.Second},
		[]string{"a", "a"}); err == nil {
		t.Fatalf("duplicate groups accepted")
	}
	tb := mustTable(t, 2, time.Second, tierGroups(4))
	if err := tb.Beat(7, 0, nil); err == nil {
		t.Fatalf("unknown RDN heartbeat accepted")
	}
	// Stale (out-of-order) beats don't rewind the lease.
	if err := tb.Beat(1, 500*time.Millisecond, nil); err != nil {
		t.Fatalf("Beat: %v", err)
	}
	if err := tb.Beat(1, 100*time.Millisecond, nil); err != nil {
		t.Fatalf("Beat: %v", err)
	}
	live := tb.Live(1400 * time.Millisecond)
	found := false
	for _, r := range live {
		if r == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale beat rewound RDN 1's lease: live=%v", live)
	}
}
