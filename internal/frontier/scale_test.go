// Black-box tier-scale suite: the per-cycle cost benchmark behind
// BENCH_frontier.json and its allocation gate. It lives in package
// frontier_test so it can share the benchkit.FrontierScale fixture with the
// gagebench CLI — both drive the identical steady-state tier cycle.
package frontier_test

import (
	"fmt"
	"testing"

	"gage/internal/benchkit"
)

// BenchmarkFrontierCycle measures one steady-state tier-wide scheduling
// cycle over the fixed 32-group population as the front-end tier widens
// 1→3 instances. Tier-wide cost must stay flat: rendezvous partitioning
// splits the work without adding per-instance overhead, so each RDN's
// share of the cycle is ~1/N of the single-RDN baseline.
func BenchmarkFrontierCycle(b *testing.B) {
	for _, rdns := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("rdns=%d", rdns), func(b *testing.B) {
			sc, err := benchkit.NewFrontierScale(rdns)
			if err != nil {
				b.Fatal(err)
			}
			sc.Warm()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Cycle()
			}
		})
	}
}

// TestFrontierCycleAllocFree gates the partitioned hot path: after warm-up
// a tier-wide cycle at 3 instances — routing, per-instance Tick, and
// accounting feedback — must not allocate.
func TestFrontierCycleAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	sc, err := benchkit.NewFrontierScale(3)
	if err != nil {
		t.Fatal(err)
	}
	sc.Warm()
	if allocs := testing.AllocsPerRun(100, sc.Cycle); allocs != 0 {
		t.Errorf("steady-state tier cycle allocated %.0f objects per run, want 0", allocs)
	}
}
