//go:build !race

package frontier_test

// raceEnabled reports whether the race detector is compiled in; allocation
// gates skip under it because instrumentation changes allocation counts.
const raceEnabled = false
