package frontier

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"gage/internal/core"
)

// The live deployment hosts the lease table behind a loopback TCP service:
// gaged runs one Server next to RDN 1, and every front end (including RDN 1
// itself) talks to it through a Client. The protocol is newline-delimited
// JSON — one request object per line, one response object back — because
// the payloads are tiny (heartbeats plus per-group accounting snapshots)
// and a human can watch the channel with nc during a drill.
//
// The server stamps time itself (offset since Serve started), so clients
// never exchange clocks: the table's lease arithmetic sees one monotonic
// timeline exactly as it does under the simulator's virtual clock.

type leaseRequest struct {
	Op    string                            `json:"op"` // beat | check | owner | live | partition
	RDN   int                               `json:"rdn,omitempty"`
	Group string                            `json:"group,omitempty"`
	Snaps map[string][]core.SubscriberState `json:"snaps,omitempty"`
}

type leaseResponse struct {
	OK      bool      `json:"ok"`
	Err     string    `json:"err,omitempty"`
	Changes []Change  `json:"changes,omitempty"`
	Owner   Ownership `json:"owner,omitempty"`
	Live    []int     `json:"live,omitempty"`
	Groups  []string  `json:"groups,omitempty"`
}

// Server hosts a lease Table on a listener.
type Server struct {
	tb    *Table
	start time.Time

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a table for network service. Serve must be called to
// accept connections.
func NewServer(tb *Table) *Server {
	return &Server{tb: tb, start: time.Now()}
}

// Serve accepts connections on l until Close. It blocks; run it in a
// goroutine. Each connection handles requests sequentially.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("frontier: server closed")
	}
	s.ln = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req leaseRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.dispatch(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req leaseRequest) leaseResponse {
	now := time.Since(s.start)
	switch req.Op {
	case "beat":
		if err := s.tb.Beat(req.RDN, now, req.Snaps); err != nil {
			return leaseResponse{Err: err.Error()}
		}
		return leaseResponse{OK: true}
	case "check":
		return leaseResponse{OK: true, Changes: s.tb.Check(now)}
	case "owner":
		own, ok := s.tb.Owner(req.Group)
		if !ok {
			return leaseResponse{Err: fmt.Sprintf("frontier: unknown group %q", req.Group)}
		}
		return leaseResponse{OK: true, Owner: own}
	case "live":
		return leaseResponse{OK: true, Live: s.tb.Live(now)}
	case "partition":
		return leaseResponse{OK: true, Groups: s.tb.Partition(req.RDN)}
	default:
		return leaseResponse{Err: fmt.Sprintf("frontier: unknown op %q", req.Op)}
	}
}

// Client is one front end's connection to the lease service. Methods are
// safe for concurrent use; requests serialize on the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a lease server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req leaseRequest) (leaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return leaseResponse{}, err
	}
	var resp leaseResponse
	if err := c.dec.Decode(&resp); err != nil {
		return leaseResponse{}, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("%s", resp.Err)
	}
	return resp, nil
}

// Beat renews the client RDN's lease, carrying accounting snapshots for the
// groups it owns.
func (c *Client) Beat(rdn int, snaps map[string][]core.SubscriberState) error {
	_, err := c.roundTrip(leaseRequest{Op: "beat", RDN: rdn, Snaps: snaps})
	return err
}

// Check runs lease expiry on the server and returns any ownership changes.
func (c *Client) Check() ([]Change, error) {
	resp, err := c.roundTrip(leaseRequest{Op: "check"})
	return resp.Changes, err
}

// Owner returns a group's current ownership.
func (c *Client) Owner(group string) (Ownership, error) {
	resp, err := c.roundTrip(leaseRequest{Op: "owner", Group: group})
	return resp.Owner, err
}

// Live returns the RDNs with current leases.
func (c *Client) Live() ([]int, error) {
	resp, err := c.roundTrip(leaseRequest{Op: "live"})
	return resp.Live, err
}

// Partition returns the groups an RDN currently owns.
func (c *Client) Partition(rdn int) ([]string, error) {
	resp, err := c.roundTrip(leaseRequest{Op: "partition", RDN: rdn})
	return resp.Groups, err
}
