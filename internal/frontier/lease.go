package frontier

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gage/internal/core"
)

// Config sizes the front-end tier.
type Config struct {
	// RDNs is the number of front-end instances (ids 1..RDNs).
	RDNs int
	// LeaseInterval is how long an RDN may go without a heartbeat before its
	// lease expires and its partition is taken over.
	LeaseInterval time.Duration
}

func (c Config) validate() error {
	if c.RDNs <= 0 {
		return fmt.Errorf("frontier: RDN count must be positive, got %d", c.RDNs)
	}
	if c.LeaseInterval <= 0 {
		return fmt.Errorf("frontier: lease interval must be positive, got %v", c.LeaseInterval)
	}
	return nil
}

// Ownership is a group's current home: the owning RDN and the fencing epoch.
// The epoch increments on every ownership change; a dispatch stamped with an
// older epoch belongs to a deposed owner and is refused at delivery.
type Ownership struct {
	RDN   int
	Epoch uint64
}

// ChangeKind says why a group moved.
type ChangeKind int

const (
	// Takeover: the previous owner's lease expired; a survivor adopts the
	// group and rebuilds scheduler state from the last accounting snapshot.
	Takeover ChangeKind = iota
	// Handback: the previous owner is alive but the group's preferred home
	// (by rendezvous hash) has rejoined; ownership returns gracefully.
	Handback
)

func (k ChangeKind) String() string {
	switch k {
	case Takeover:
		return "takeover"
	case Handback:
		return "handback"
	default:
		return fmt.Sprintf("ChangeKind(%d)", int(k))
	}
}

// Change is one group changing hands. Snapshot is the group's last
// heartbeat-carried accounting state (nil if the old owner never reported);
// the new owner imports it so reclaimed charges settle exactly once.
type Change struct {
	Group    string
	From, To int
	Epoch    uint64
	Kind     ChangeKind
	Snapshot []core.SubscriberState
}

// Table is the tier's lease table: who owns which tenant group, at what
// epoch, and which RDNs are live. One Table is authoritative for the tier —
// the simulator holds it directly, the live path hosts it behind the
// loopback TCP lease service (see net.go). Time is an explicit offset from
// the tier's start, so the same state machine runs on the virtual clock and
// on wall time.
//
// The protocol is deliberately small:
//
//   - Beat(rdn, now, snaps) renews rdn's lease and records accounting
//     snapshots for the groups it owns.
//   - Check(now) expires leases and reassigns groups: every group whose
//     owner is dead — or whose preferred home has rejoined — moves to its
//     highest-scoring live candidate with a bumped epoch.
//   - Valid(group, rdn, epoch) is the fencing read: delivery refuses work
//     stamped by a deposed (rdn, epoch) pair.
type Table struct {
	mu       sync.Mutex
	cfg      Config
	part     *Partitioner
	groups   []string
	lastBeat map[int]time.Duration
	own      map[string]Ownership
	snap     map[string][]core.SubscriberState
}

// NewTable builds the lease table for a fixed group population. Every RDN
// starts live (lease granted at offset zero) and every group homes to its
// rendezvous owner at epoch 1.
func NewTable(cfg Config, groups []string) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("frontier: no tenant groups")
	}
	part, err := NewPartitioner(cfg.RDNs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		cfg:      cfg,
		part:     part,
		groups:   make([]string, len(groups)),
		lastBeat: make(map[int]time.Duration, cfg.RDNs),
		own:      make(map[string]Ownership, len(groups)),
		snap:     make(map[string][]core.SubscriberState, len(groups)),
	}
	copy(t.groups, groups)
	sort.Strings(t.groups)
	for i := 1; i < len(t.groups); i++ {
		if t.groups[i] == t.groups[i-1] {
			return nil, fmt.Errorf("frontier: duplicate group %q", t.groups[i])
		}
	}
	for _, r := range part.RDNs() {
		t.lastBeat[r] = 0
	}
	for _, g := range t.groups {
		t.own[g] = Ownership{RDN: part.Owner(g), Epoch: 1}
	}
	return t, nil
}

// Beat renews an RDN's lease at the given offset and stores the accounting
// snapshots it carries. Snapshots are only accepted for groups the RDN
// currently owns: a deposed front end's stale state must not overwrite the
// snapshot trail of the group's new owner.
func (t *Table) Beat(rdn int, now time.Duration, snaps map[string][]core.SubscriberState) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.lastBeat[rdn]; !ok {
		return fmt.Errorf("frontier: unknown rdn %d", rdn)
	}
	if prev := t.lastBeat[rdn]; now > prev {
		t.lastBeat[rdn] = now
	}
	for g, snap := range snaps {
		if own, ok := t.own[g]; ok && own.RDN == rdn {
			cp := make([]core.SubscriberState, len(snap))
			copy(cp, snap)
			t.snap[g] = cp
		}
	}
	return nil
}

// Live returns the RDNs whose leases are current at the given offset, in
// ascending id order.
func (t *Table) Live(now time.Duration) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.liveLocked(now)
}

func (t *Table) liveLocked(now time.Duration) []int {
	live := make([]int, 0, t.cfg.RDNs)
	for _, r := range t.part.RDNs() {
		if now-t.lastBeat[r] <= t.cfg.LeaseInterval {
			live = append(live, r)
		}
	}
	return live
}

// Check expires leases and recomputes ownership at the given offset. Each
// group whose owner is no longer its highest-scoring live candidate moves:
// a Takeover if the old owner's lease expired, a Handback if the old owner
// is alive but the group's preferred home rejoined. Changes are returned in
// sorted group order with the epoch already bumped; if no RDN is live,
// ownership is left untouched (there is nobody to fence against).
func (t *Table) Check(now time.Duration) []Change {
	t.mu.Lock()
	defer t.mu.Unlock()
	live := t.liveLocked(now)
	if len(live) == 0 {
		return nil
	}
	liveSet := make(map[int]bool, len(live))
	for _, r := range live {
		liveSet[r] = true
	}
	var changes []Change
	for _, g := range t.groups {
		cur := t.own[g]
		want := t.part.OwnerAmong(g, live)
		if want == cur.RDN {
			continue
		}
		kind := Takeover
		if liveSet[cur.RDN] {
			kind = Handback
		}
		next := Ownership{RDN: want, Epoch: cur.Epoch + 1}
		t.own[g] = next
		changes = append(changes, Change{
			Group:    g,
			From:     cur.RDN,
			To:       want,
			Epoch:    next.Epoch,
			Kind:     kind,
			Snapshot: t.snap[g],
		})
	}
	return changes
}

// Owner returns a group's current ownership.
func (t *Table) Owner(group string) (Ownership, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	own, ok := t.own[group]
	return own, ok
}

// Valid is the fencing read: it reports whether (rdn, epoch) is the group's
// current owner at its current epoch. Work stamped by any other pair was
// issued by a deposed owner and must be refused.
func (t *Table) Valid(group string, rdn int, epoch uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	own, ok := t.own[group]
	return ok && own.RDN == rdn && own.Epoch == epoch
}

// Partition returns the groups an RDN currently owns, sorted.
func (t *Table) Partition(rdn int) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for _, g := range t.groups {
		if t.own[g].RDN == rdn {
			out = append(out, g)
		}
	}
	return out
}

// Groups returns all tenant groups in the tier, sorted.
func (t *Table) Groups() []string {
	out := make([]string, len(t.groups))
	copy(out, t.groups)
	return out
}

// Partitioner exposes the tier's group→RDN hash for callers that must agree
// with the table's placement (admission routing, capacity sharing).
func (t *Table) Partitioner() *Partitioner {
	return t.part
}
