// Package frontier is Gage's multi-RDN front-end tier: it partitions the
// subscriber population across N front-end instances by consistent hashing
// over tenant groups (a group's hierarchical scheduling state never
// straddles two RDNs), and coordinates the instances through a lease table
// with epoch-stamped heartbeats — lease expiry hands a dead front end's
// partition to a survivor, and per-group epochs fence the deposed owner's
// in-flight dispatches.
//
// The package is pure coordination logic on an explicit clock: the
// discrete-event simulator drives it from virtual time and the live path
// (frontier's loopback TCP lease service) from wall time, so takeover
// behaviour is tested deterministically and deployed unchanged.
package frontier

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// partitionSalt seasons the rendezvous hash. The value is fixed by the
// golden distribution snapshot in partition_test.go: equal-weight tenant
// groups must spread near-uniformly even at small group counts (≤5%
// imbalance at 32 groups over 3 RDNs), which plain FNV achieves only for
// some seasonings. Changing it reshuffles every partition map.
const partitionSalt = "gage-frontier-v23"

// Partitioner assigns tenant groups to front-end RDN instances by
// rendezvous (highest-random-weight) hashing: a group's owner is the RDN
// with the highest hash score for that group. Rendezvous hashing has the
// minimal-disruption property the tier's failover leans on: removing one
// RDN from the candidate set changes the assignment of exactly the groups
// that RDN owned — every other group keeps its top-scoring candidate.
//
// The zero Partitioner is not usable; build one with NewPartitioner. A
// Partitioner is immutable and safe for concurrent use.
type Partitioner struct {
	rdns []int
}

// NewPartitioner builds a partitioner over RDN ids 1..n.
func NewPartitioner(n int) (*Partitioner, error) {
	if n <= 0 {
		return nil, fmt.Errorf("frontier: RDN count must be positive, got %d", n)
	}
	p := &Partitioner{rdns: make([]int, n)}
	for i := range p.rdns {
		p.rdns[i] = i + 1
	}
	return p, nil
}

// RDNs returns the candidate RDN ids in ascending order.
func (p *Partitioner) RDNs() []int {
	out := make([]int, len(p.rdns))
	copy(out, p.rdns)
	return out
}

// score is the rendezvous hash of (group, rdn): FNV-1a over the salted
// group name and the candidate id. Ties are broken toward the lower RDN id
// (strict > below), so the assignment is total and deterministic.
func score(group string, rdn int) uint64 {
	h := fnv.New64a()
	// Hash writes cannot fail.
	_, _ = h.Write([]byte(partitionSalt))
	_, _ = h.Write([]byte(group))
	var buf [8]byte
	v := uint64(rdn) * 0x9e3779b97f4a7c15
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return h.Sum64()
}

// Owner returns the RDN that homes a group: the highest-scoring candidate
// among all RDNs.
func (p *Partitioner) Owner(group string) int {
	return ownerAmong(group, p.rdns)
}

// OwnerAmong returns the highest-scoring candidate among the given live RDN
// set — the takeover rule: when an RDN dies, each of its groups re-homes to
// its best surviving candidate, and no other group moves. It returns 0 when
// live is empty.
func (p *Partitioner) OwnerAmong(group string, live []int) int {
	return ownerAmong(group, live)
}

func ownerAmong(group string, live []int) int {
	best, bestScore := 0, uint64(0)
	for _, r := range live {
		if s := score(group, r); best == 0 || s > bestScore || (s == bestScore && r < best) {
			best, bestScore = r, s
		}
	}
	return best
}

// Assign maps every group to its home RDN and returns the partition map in
// deterministic (ascending RDN, sorted group) order.
func (p *Partitioner) Assign(groups []string) map[int][]string {
	out := make(map[int][]string, len(p.rdns))
	sorted := make([]string, len(groups))
	copy(sorted, groups)
	sort.Strings(sorted)
	for _, g := range sorted {
		r := p.Owner(g)
		out[r] = append(out[r], g)
	}
	return out
}
