package frontier

import (
	"net"
	"sync"
	"testing"
	"time"

	"gage/internal/core"
)

// TestLeaseServiceLoopback drives the lease protocol over a real loopback
// TCP connection: heartbeats with snapshot payloads, a takeover observed by
// a second client, and fencing reads — the live-path twin of the virtual
// clock tests in lease_test.go.
func TestLeaseServiceLoopback(t *testing.T) {
	tb := mustTable(t, 2, 50*time.Millisecond, tierGroups(8))
	srv := NewServer(tb)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()
	defer func() {
		_ = srv.Close()
		wg.Wait()
	}()

	c1, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c1.Close()
	c2, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c2.Close()

	g := tb.Partition(1)[0]
	snap := []core.SubscriberState{{ID: "x", Reservation: 5, QueueLimit: 4, Group: g}}
	if err := c1.Beat(1, map[string][]core.SubscriberState{g: snap}); err != nil {
		t.Fatalf("Beat: %v", err)
	}
	if err := c2.Beat(2, nil); err != nil {
		t.Fatalf("Beat: %v", err)
	}
	live, err := c2.Live()
	if err != nil {
		t.Fatalf("Live: %v", err)
	}
	if len(live) != 2 {
		t.Fatalf("live = %v, want both RDNs", live)
	}
	own, err := c2.Owner(g)
	if err != nil {
		t.Fatalf("Owner: %v", err)
	}
	if own.RDN != 1 || own.Epoch != 1 {
		t.Fatalf("owner = %+v, want RDN 1 epoch 1", own)
	}
	if _, err := c2.Owner("no-such-group"); err == nil {
		t.Fatalf("Owner(unknown) succeeded")
	}
	if err := c1.Beat(9, nil); err == nil {
		t.Fatalf("Beat(unknown rdn) succeeded")
	}

	// RDN 1 goes silent past the lease; RDN 2 keeps beating and then runs
	// the expiry check. Its client must see the takeover with the snapshot
	// RDN 1 last reported.
	deadline := time.Now().Add(5 * time.Second)
	var changes []Change
	for time.Now().Before(deadline) {
		if err := c2.Beat(2, nil); err != nil {
			t.Fatalf("Beat: %v", err)
		}
		changes, err = c2.Check()
		if err != nil {
			t.Fatalf("Check: %v", err)
		}
		if len(changes) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if want := len(tb.Partition(2)) - len(mustPartitionOf(t, tb, 2, changes)); len(changes) == 0 {
		t.Fatalf("no takeover observed before deadline (want %d groups to move)", want)
	}
	for _, ch := range changes {
		if ch.From != 1 || ch.To != 2 || ch.Kind != Takeover || ch.Epoch != 2 {
			t.Fatalf("change %+v; want From=1 To=2 takeover epoch=2", ch)
		}
		if ch.Group == g {
			if len(ch.Snapshot) != 1 || ch.Snapshot[0].ID != "x" {
				t.Fatalf("takeover snapshot = %+v, want heartbeat payload", ch.Snapshot)
			}
		}
	}
	groups, err := c2.Partition(2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	if len(groups) != 8 {
		t.Fatalf("after takeover RDN 2 owns %d of 8 groups", len(groups))
	}
}

// mustPartitionOf exists only to keep the failure message above honest; it
// returns the groups among changes that moved to rdn.
func mustPartitionOf(t *testing.T, tb *Table, rdn int, changes []Change) []string {
	t.Helper()
	var out []string
	for _, ch := range changes {
		if ch.To == rdn {
			out = append(out, ch.Group)
		}
	}
	return out
}
