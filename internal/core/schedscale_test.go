// Black-box scheduler scale suite: the per-cycle cost benchmark behind
// BENCH_sched.json, the allocation regression gates for Tick, and the
// round-one fairness property under membership churn. It lives in package
// core_test so it can share the benchkit.SchedScale fixture with the
// gagebench CLI — both drive the identical steady-state cycle.
package core_test

import (
	"fmt"
	"testing"
	"time"

	"gage/internal/benchkit"
	"gage/internal/core"
	"gage/internal/qos"
)

func onOff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}

// BenchmarkSchedCycle measures one steady-state scheduling cycle (the
// cycle's arrivals, one Tick, and per-node accounting feedback) with a
// fixed 64-subscriber working set while the directory size sweeps
// 1k→100k. Per-cycle cost must stay flat across the sweep: the hot path
// touches only backlogged queues, never the directory.
func BenchmarkSchedCycle(b *testing.B) {
	for _, total := range []int{1_000, 10_000, 100_000} {
		for _, rec := range []bool{false, true} {
			b.Run(fmt.Sprintf("subs=%d/rec=%s", total, onOff(rec)), func(b *testing.B) {
				sc, err := benchkit.NewSchedScale(total, rec)
				if err != nil {
					b.Fatal(err)
				}
				sc.Warm()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sc.Cycle()
				}
			})
		}
	}
}

// TestTickAllocFreeAt10k is the allocation regression gate for the
// scheduling hot path: after warm-up, a full cycle at 10k registered
// subscribers — Enqueue, Tick, and accounting feedback, with the flight
// recorder both off and on — must not allocate at all.
func TestTickAllocFreeAt10k(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	for _, rec := range []bool{false, true} {
		t.Run("rec="+onOff(rec), func(t *testing.T) {
			sc, err := benchkit.NewSchedScale(10_000, rec)
			if err != nil {
				t.Fatal(err)
			}
			sc.Warm()
			if allocs := testing.AllocsPerRun(100, sc.Cycle); allocs != 0 {
				t.Errorf("steady-state scheduling cycle allocated %.0f objects per run, want 0", allocs)
			}
		})
	}
}

// TestRoundOneFairnessUnderChurn pins the reservation round's long-run
// fairness across membership churn. One node whose outstanding bound is
// exactly one generic unit serves exactly one request per tick, so the
// rotating round-one start alone decides who it goes to; zero reservations
// clamp every balance to zero, which passes the non-negative gate every
// visit. Over any phase the per-subscriber service counts must stay within
// ±1 — including phases right after removing a member mid-rotation and
// inserting a newcomer whose ID sorts into the middle of the rotation
// order, the skew the old fixed rotation pointer produced.
func TestRoundOneFairnessUnderChurn(t *testing.T) {
	const k = 7
	const lapsPerPhase = 10
	mk := func(id string) qos.Subscriber {
		return qos.Subscriber{ID: qos.SubscriberID(id), Reservation: 0, QueueLimit: 1024}
	}
	subs := make([]qos.Subscriber, 0, k)
	for i := 0; i < k; i++ {
		// Even IDs c00,c02,…: churn inserts the odd ones between them.
		subs = append(subs, mk(fmt.Sprintf("c%02d", 2*i)))
	}
	dir, err := qos.NewDirectory(subs)
	if err != nil {
		t.Fatalf("NewDirectory: %v", err)
	}
	// 100 GRPS capacity with a one-cycle outstanding window: the admission
	// bound is exactly one generic unit, i.e. one in-flight request.
	sched, err := core.New(dir,
		[]core.NodeConfig{{ID: 1, Capacity: qos.GenericCost().Scale(100)}},
		core.Config{OutstandingWindow: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	var nextID uint64
	fill := func(id qos.SubscriberID, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			nextID++
			if err := sched.Enqueue(core.Request{ID: nextID, Subscriber: id}); err != nil {
				t.Fatalf("Enqueue(%s): %v", id, err)
			}
		}
	}
	members := make([]qos.SubscriberID, 0, k)
	for _, s := range subs {
		members = append(members, s.ID)
		fill(s.ID, 600) // deep backlog: never drains within the test
	}

	rep := core.UsageReport{Node: 1, BySubscriber: make(map[qos.SubscriberID]core.SubscriberUsage, 1)}
	runPhase := func(ticks int) map[qos.SubscriberID]int {
		t.Helper()
		counts := make(map[qos.SubscriberID]int, k)
		for i := 0; i < ticks; i++ {
			disp := sched.Tick()
			if len(disp) != 1 {
				t.Fatalf("tick dispatched %d requests, want exactly 1 (one-unit bound)", len(disp))
			}
			d := disp[0]
			counts[d.Req.Subscriber]++
			// Complete it immediately so the next tick has room for one.
			clear(rep.BySubscriber)
			rep.Total = d.Predicted
			rep.BySubscriber[d.Req.Subscriber] = core.SubscriberUsage{Usage: d.Predicted, Completed: 1}
			if err := sched.ReportUsage(rep); err != nil {
				t.Fatalf("ReportUsage: %v", err)
			}
		}
		return counts
	}

	for round := 0; round < 4; round++ {
		counts := runPhase(lapsPerPhase * len(members))
		if len(counts) > len(members) {
			t.Fatalf("round %d: dispatched to %d subscribers, only %d registered: %v",
				round, len(counts), len(members), counts)
		}
		lo, hi := counts[members[0]], counts[members[0]]
		for _, id := range members[1:] {
			if c := counts[id]; c < lo {
				lo = c
			} else if c > hi {
				hi = c
			}
		}
		if hi-lo > 1 {
			t.Fatalf("round %d: visit counts spread %d (min %d, max %d): %v",
				round, hi-lo, lo, hi, counts)
		}

		// Churn: drop a member at a rotating position and insert a newcomer
		// mid-rotation-order; the next phase must be just as fair.
		victim := members[(round*3)%len(members)]
		if _, err := sched.RemoveSubscriber(victim); err != nil {
			t.Fatalf("RemoveSubscriber(%s): %v", victim, err)
		}
		for i, id := range members {
			if id == victim {
				members = append(members[:i], members[i+1:]...)
				break
			}
		}
		newcomer := fmt.Sprintf("c%02d", 2*round+1)
		if err := sched.AddSubscriber(mk(newcomer)); err != nil {
			t.Fatalf("AddSubscriber(%s): %v", newcomer, err)
		}
		members = append(members, qos.SubscriberID(newcomer))
		fill(qos.SubscriberID(newcomer), 600)
	}
}
