// Black-box hierarchical-scale suite: the per-cycle cost benchmark behind
// BENCH_hier.json, the allocation regression gate for the two-level
// reservation round, the group-level visit-fairness property, and the
// smooth-WRR table-restart regression for weight changes. It lives in
// package core_test so it can share the benchkit.HierScale fixture with the
// gagebench CLI — both drive the identical steady-state cycle.
package core_test

import (
	"fmt"
	"testing"
	"time"

	"gage/internal/benchkit"
	"gage/internal/core"
	"gage/internal/qos"
)

// BenchmarkHierCycle measures one steady-state scheduling cycle with a fixed
// 100-subscriber Zipf(1.1)-skewed hot set across 32 groups while the
// registered population sweeps 1k→1M. Per-cycle cost must stay flat across
// the sweep: the hot path touches only active groups and their backlogged
// members, and idle subscribers are never even materialized.
func BenchmarkHierCycle(b *testing.B) {
	for _, total := range []int{1_000, 10_000, 100_000, 1_000_000} {
		for _, rec := range []bool{false, true} {
			b.Run(fmt.Sprintf("subs=%d/rec=%s", total, onOff(rec)), func(b *testing.B) {
				sc, err := benchkit.NewHierScale(total, rec)
				if err != nil {
					b.Fatal(err)
				}
				sc.Warm()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sc.Cycle()
				}
			})
		}
	}
}

// TestHierTickAllocFree is the allocation regression gate for the
// hierarchical hot path: after warm-up, a full cycle at 10k registered
// subscribers with ~100 active across 32 groups — Enqueue, Tick, and
// accounting feedback, flight recorder off and on — must not allocate.
func TestHierTickAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	for _, rec := range []bool{false, true} {
		t.Run("rec="+onOff(rec), func(t *testing.T) {
			sc, err := benchkit.NewHierScale(10_000, rec)
			if err != nil {
				t.Fatal(err)
			}
			sc.Warm()
			if allocs := testing.AllocsPerRun(100, sc.Cycle); allocs != 0 {
				t.Errorf("steady-state hierarchical cycle allocated %.0f objects per run, want 0", allocs)
			}
		})
	}
}

// TestHierLazyMaterialization pins the population-independence mechanism
// itself: after warm-up only the hot set (plus nothing else) carries full
// scheduling state, no matter how many subscribers are registered.
func TestHierLazyMaterialization(t *testing.T) {
	sc, err := benchkit.NewHierScale(10_000, false)
	if err != nil {
		t.Fatal(err)
	}
	sc.Warm()
	if reg := sc.Sched.Registered(); reg != 10_000 {
		t.Errorf("Registered() = %d, want 10000", reg)
	}
	if mat := sc.Sched.Materialized(); mat > 100 {
		t.Errorf("Materialized() = %d, want ≤ 100 (the hot set)", mat)
	}
}

// TestGroupRoundOneFairness pins the group level of the reservation round.
// Five groups with equal aggregate reservations compete for a node whose
// outstanding bound is exactly one generic unit, so exactly one request
// dispatches per tick and the smooth-WRR group order alone decides which
// group it goes to. Over any phase the per-group service counts must stay
// within ±1 — including phases right after a zero-reservation member
// migrates between groups, which must not disturb the weight rotation.
func TestGroupRoundOneFairness(t *testing.T) {
	const groups = 5
	const lapsPerPhase = 12
	subs := make([]qos.Subscriber, 0, 2*groups)
	groupOf := make(map[qos.SubscriberID]string, 2*groups+1)
	for g := 0; g < groups; g++ {
		name := fmt.Sprintf("g%d", g)
		// Each group: one anchor carrying the whole group weight, one
		// zero-reservation member along for the ride.
		anchor := qos.Subscriber{
			ID: qos.SubscriberID(fmt.Sprintf("a%d", g)), Reservation: 100,
			QueueLimit: 4096, Group: name,
		}
		rider := qos.Subscriber{
			ID: qos.SubscriberID(fmt.Sprintf("r%d", g)), Reservation: 0,
			QueueLimit: 4096, Group: name,
		}
		subs = append(subs, anchor, rider)
		groupOf[anchor.ID] = name
		groupOf[rider.ID] = name
	}
	dir, err := qos.NewDirectory(subs)
	if err != nil {
		t.Fatalf("NewDirectory: %v", err)
	}
	// 100 GRPS capacity with a one-cycle outstanding window: the admission
	// bound is exactly one generic unit, i.e. one in-flight request.
	sched, err := core.New(dir,
		[]core.NodeConfig{{ID: 1, Capacity: qos.GenericCost().Scale(100)}},
		core.Config{OutstandingWindow: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	var nextID uint64
	for _, s := range subs {
		for i := 0; i < 600; i++ {
			nextID++
			if err := sched.Enqueue(core.Request{ID: nextID, Subscriber: s.ID}); err != nil {
				t.Fatalf("Enqueue(%s): %v", s.ID, err)
			}
		}
	}

	rep := core.UsageReport{Node: 1, BySubscriber: make(map[qos.SubscriberID]core.SubscriberUsage, 1)}
	runPhase := func(ticks int) map[string]int {
		t.Helper()
		counts := make(map[string]int, groups)
		for i := 0; i < ticks; i++ {
			disp := sched.Tick()
			if len(disp) != 1 {
				t.Fatalf("tick dispatched %d requests, want exactly 1 (one-unit bound)", len(disp))
			}
			d := disp[0]
			counts[groupOf[d.Req.Subscriber]]++
			// Complete it immediately so the next tick has room for one.
			clear(rep.BySubscriber)
			rep.Total = d.Predicted
			rep.BySubscriber[d.Req.Subscriber] = core.SubscriberUsage{Usage: d.Predicted, Completed: 1}
			if err := sched.ReportUsage(rep); err != nil {
				t.Fatalf("ReportUsage: %v", err)
			}
		}
		return counts
	}

	for round := 0; round < 4; round++ {
		counts := runPhase(lapsPerPhase * groups)
		lo, hi := counts["g0"], counts["g0"]
		for g := 1; g < groups; g++ {
			c := counts[fmt.Sprintf("g%d", g)]
			if c < lo {
				lo = c
			} else if c > hi {
				hi = c
			}
		}
		if hi-lo > 1 {
			t.Fatalf("round %d: per-group service spread %d (min %d, max %d): %v",
				round, hi-lo, lo, hi, counts)
		}
		// Churn: migrate a zero-reservation rider to the next group (weights
		// unchanged) — the next phase must be just as fair.
		rider := qos.SubscriberID(fmt.Sprintf("r%d", round%groups))
		dst := fmt.Sprintf("g%d", (round+1)%groups)
		if err := sched.MigrateSubscriber(rider, dst); err != nil {
			t.Fatalf("MigrateSubscriber(%s, %s): %v", rider, dst, err)
		}
		groupOf[rider] = dst
	}
}

// TestWeightChangeRestartsWRRTable is the regression test for the smooth-WRR
// cursor: recompiling the pick table after SetNodeWeight must restart the
// cursor, not carry a mid-sequence position from the old table into the new
// one — a stale cursor serves picks biased toward whichever nodes the old
// interleaving front-loaded. After flipping node 1 to half weight between
// ticks, the very next picks must follow the canonical smooth-WRR sequence
// for weights (1, ½), which is node 0, node 1, node 0.
func TestWeightChangeRestartsWRRTable(t *testing.T) {
	dir, err := qos.NewDirectory([]qos.Subscriber{
		// 600 GRPS: exactly 6 generic units of credit per 10 ms cycle.
		{ID: "a", Reservation: 600, QueueLimit: 4096},
	})
	if err != nil {
		t.Fatalf("NewDirectory: %v", err)
	}
	// Generous bounds: the node pick is decided by the WRR table alone,
	// never by admission-room skips.
	sched, err := core.New(dir, []core.NodeConfig{
		{ID: 0, Capacity: qos.GenericCost().Scale(1000)},
		{ID: 1, Capacity: qos.GenericCost().Scale(1000)},
	}, core.Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var nextID uint64
	fill := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			nextID++
			if err := sched.Enqueue(core.Request{ID: nextID, Subscriber: "a"}); err != nil {
				t.Fatalf("Enqueue: %v", err)
			}
		}
	}
	nodeSeq := func(disp []core.Dispatch) []core.NodeID {
		out := make([]core.NodeID, len(disp))
		for i, d := range disp {
			out[i] = d.Node
		}
		return out
	}

	// Equal weights compile to the plain alternation 0,1. Five requests —
	// an odd count — leave the cursor mid-table, the state the recompile
	// must not carry over.
	fill(5)
	first := nodeSeq(sched.Tick())
	wantFirst := []core.NodeID{0, 1, 0, 1, 0}
	if len(first) != len(wantFirst) {
		t.Fatalf("first tick dispatched %d, want %d", len(first), len(wantFirst))
	}
	for i, w := range wantFirst {
		if first[i] != w {
			t.Fatalf("equal-weight picks = %v, want %v", first, wantFirst)
		}
	}

	// Flip node 1 to half weight between ticks. Weights (64, 32) reduce to
	// (2, 1), whose smooth-WRR table is [0, 1, 0]; the next tick's picks
	// must start at the table's beginning regardless of where the previous
	// tick's cursor stopped.
	if err := sched.SetNodeWeight(1, 0.5); err != nil {
		t.Fatalf("SetNodeWeight: %v", err)
	}
	fill(3)
	second := nodeSeq(sched.Tick())
	want := []core.NodeID{0, 1, 0}
	if len(second) != len(want) {
		t.Fatalf("second tick dispatched %d, want %d", len(second), len(want))
	}
	for i, w := range want {
		if second[i] != w {
			t.Fatalf("picks after weight change = %v, want %v (stale WRR cursor)", second, want)
		}
	}
}
