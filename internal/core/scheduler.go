// Package core implements Gage's request-scheduling brain (§3.4–§3.5): the
// per-subscriber queues, the credit-based weighted-round-robin request
// scheduler with a reservation round and a reservation-proportional spare
// round, the per-request resource-usage predictor, and the weighted
// round-robin node scheduler. It is pure scheduling logic — both the
// discrete-event cluster simulator and the live TCP dispatcher drive the same
// Scheduler, one on a virtual clock and one on wall time.
//
// The hot path is allocation-free and O(active) per cycle: idle subscribers
// cost nothing (their credit settles lazily from a cycle counter), the spare
// round pops its next dispatch from a min-heap keyed on the SFQ start tag,
// and the node pick consumes a smooth weighted-round-robin table precompiled
// from the node weights.
//
// Scheduling is hierarchical: subscribers belong to groups (tenant tiers).
// The reservation round schedules active groups against each other by smooth
// weighted round-robin over aggregate reservations, and round-robins the
// backlogged members within each group, so per-cycle work is O(active groups
// + active members + dispatches) — independent of the registered population.
// Registered-but-idle subscribers are not even materialized: their full
// scheduling state is created lazily on first enqueue, so a directory of a
// million signed tenants costs one lightweight definition record each and
// nothing per cycle.
package core

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"gage/internal/flightrec"
	"gage/internal/qos"
)

// NodeID identifies a back-end request processing node (RPN).
type NodeID int

// Request is one classified web access waiting for dispatch. Payload carries
// the caller's request object (a simulator request, a live connection, ...)
// opaquely through the scheduler.
type Request struct {
	// ID is the caller-assigned unique request identifier.
	ID uint64
	// Subscriber is the charging entity the request was classified to.
	Subscriber qos.SubscriberID
	// Affinity, when non-zero, requests content-aware dispatch (§3.6): all
	// requests sharing an affinity value prefer the same node, so URL pages
	// in the same proximity hit one RPN's cache. The preference yields to
	// load: a full preferred node falls back to the round-robin pick.
	Affinity uint64
	// Payload is opaque caller context returned with the dispatch decision.
	Payload any
}

// Dispatch is one scheduling decision: send Req to Node. Predicted is the
// resource usage the scheduler charged against the subscriber's balance and
// the node's outstanding load at dispatch time.
type Dispatch struct {
	Req       Request
	Node      NodeID
	Predicted qos.Vector
}

// SubscriberUsage is a subscriber's actual consumption on one RPN during one
// accounting cycle.
type SubscriberUsage struct {
	// Usage is the resources consumed by the subscriber's completed work.
	Usage qos.Vector
	// Completed is how many of the subscriber's requests finished.
	Completed int
}

// UsageReport is one accounting message from an RPN (§3.5): the node's total
// resource usage in the last accounting cycle plus the per-subscriber split.
type UsageReport struct {
	Node         NodeID
	Total        qos.Vector
	BySubscriber map[qos.SubscriberID]SubscriberUsage
}

// NodeConfig declares one RPN's capacity to the node scheduler.
type NodeConfig struct {
	// ID is the node's identity in dispatches and usage reports.
	ID NodeID
	// Capacity is the node's resource budget per second: how much CPU time,
	// disk-channel time and network bytes it can deliver each second.
	Capacity qos.Vector
}

// GateMode selects how the reservation round decides a queue has used up its
// entitlement.
type GateMode int

const (
	// GateSelfClocked (default) subtracts the predicted usage of in-flight
	// requests from the balance at dispatch time, so the gate is exact even
	// when accounting messages are infrequent. This is the library's
	// improved design.
	GateSelfClocked GateMode = iota
	// GateReported gates on the balance as known from accounting messages
	// alone — the dispatch itself does not debit the gate. QoS stability
	// then depends on the accounting-cycle length exactly as the paper's
	// Figure 3 measures: long cycles make service oscillate between zero
	// and about twice the reservation.
	GateReported
)

// Config tunes the scheduler.
type Config struct {
	// Cycle is the scheduling cycle; the paper uses 10 ms for responsiveness.
	Cycle time.Duration
	// CreditWindow caps accumulated balance at ±reservation×CreditWindow so
	// idle subscribers cannot hoard unbounded credit and overloaded ones
	// recover their guarantee within one window of load returning to normal.
	CreditWindow time.Duration
	// OutstandingWindow bounds each node's estimated outstanding load at
	// capacity×OutstandingWindow. It must cover a few scheduling cycles so
	// nodes never idle between ticks.
	OutstandingWindow time.Duration
	// PredictionAlpha is the weight of the newest sample in the per-request
	// usage estimate (exponentially weighted moving average).
	PredictionAlpha float64
	// Gate selects the reservation-round gating mode.
	Gate GateMode
	// DisableCapacityDrain turns off the optimistic between-report drain of
	// node outstanding load (the paper-faithful behaviour: node capacity
	// "reappears" only when accounting messages arrive, so dispatch turns
	// bursty at the accounting period — the instability Figure 3 measures).
	// The default drain model keeps dispatch smooth under slow feedback.
	DisableCapacityDrain bool
}

// Defaults mirroring the paper's prototype settings.
const (
	DefaultCycle             = 10 * time.Millisecond
	DefaultCreditWindow      = time.Second
	DefaultOutstandingWindow = 50 * time.Millisecond
	DefaultPredictionAlpha   = 0.3
)

func (c Config) withDefaults() Config {
	if c.Cycle <= 0 {
		c.Cycle = DefaultCycle
	}
	if c.CreditWindow <= 0 {
		c.CreditWindow = DefaultCreditWindow
	}
	if c.OutstandingWindow <= 0 {
		c.OutstandingWindow = DefaultOutstandingWindow
	}
	if c.PredictionAlpha <= 0 || c.PredictionAlpha > 1 {
		c.PredictionAlpha = DefaultPredictionAlpha
	}
	return c
}

// Scheduler errors.
var (
	// ErrQueueFull reports a drop: the subscriber's queue is at its limit.
	ErrQueueFull = errors.New("core: subscriber queue full")
	// ErrUnknownSubscriber reports a request for an unregistered subscriber.
	ErrUnknownSubscriber = errors.New("core: unknown subscriber")
	// ErrUnknownNode reports a usage message from an unregistered node.
	ErrUnknownNode = errors.New("core: unknown node")
)

// pendingDispatch is one in-flight request's charged prediction. The request
// ID keys the lifecycle API: an abandoned dispatch is released by ID, not by
// completion count.
type pendingDispatch struct {
	reqID     uint64
	predicted qos.Vector
	spare     bool
}

// pendQ is a head-indexed FIFO of in-flight predictions for one (subscriber,
// node) pair. Accounting releases pop from the head without reslicing the
// backing array away, so steady-state settle cycles allocate nothing.
type pendQ struct {
	items []pendingDispatch
	head  int
}

func (p *pendQ) size() int                 { return len(p.items) - p.head }
func (p *pendQ) at(i int) *pendingDispatch { return &p.items[p.head+i] }
func (p *pendQ) push(pd pendingDispatch)   { p.items = append(p.items, pd) }

// release drops the first k entries (completed work, matched by count).
func (p *pendQ) release(k int) {
	for i := p.head; i < p.head+k; i++ {
		p.items[i] = pendingDispatch{}
	}
	p.head += k
	if p.head > 64 && p.head*2 >= len(p.items) {
		p.items = append(p.items[:0], p.items[p.head:]...)
		p.head = 0
	}
}

// remove deletes entry i (relative to head), preserving dispatch order and
// zeroing the vacated tail slot. Order must be preserved — accounting
// messages release a completion-count *prefix* of this queue, so a
// swap-with-tail removal would hand later count-based releases the wrong
// predictions. The old reslicing shift also left a live duplicate of the
// tail entry beyond the slice length; the explicit zero fixes that.
func (p *pendQ) remove(i int) {
	last := len(p.items) - 1
	copy(p.items[p.head+i:], p.items[p.head+i+1:])
	p.items[last] = pendingDispatch{}
	p.items = p.items[:last]
}

// subDef is one subscriber's lightweight registration record: reservation,
// queue bound, group membership, and the cycle it registered on. The full
// scheduling state (queueState) is materialized lazily on first enqueue, with
// lastCredit set to regCycle — because crediting k cycles at once and
// clamping equals k iterations of credit-then-clamp, the lazy subscriber's
// balance is bit-identical to one that carried state from registration. A
// registered-but-never-active subscriber therefore costs one map entry and
// nothing per cycle.
type subDef struct {
	res      qos.GRPS
	limit    int
	grp      *groupState
	regCycle uint64
}

// groupState is one subscriber group (tenant tier): the unit the reservation
// round's top level schedules. Active groups compete by smooth weighted
// round-robin over aggregate reservation; backlogged members within a group
// are visited round-robin off the group's active list. A group with no
// backlogged member parks entirely off the hot path.
type groupState struct {
	name string

	// aggRes is the sum of all registered members' reservations — the
	// group's scheduling weight. Maintained incrementally on
	// register/remove/migrate; members counts registrations, and a group
	// whose last member leaves is deleted.
	aggRes  qos.GRPS
	members int

	// active lists the group's backlogged queues, sorted by subscriber ID;
	// astart rotates the member round-robin's first visit exactly as the
	// pre-hierarchy scheduler rotated its single flat list. Membership
	// changes keep astart pointing at the same queue.
	active []*queueState
	astart int

	// wcur is the group's smooth-WRR credit: each tick every active group
	// gains its weight and the tick's first-visited group pays back the
	// total, so first claim on scarce node room rotates in proportion to
	// aggregate reservations. Reset on activation so an idle spell cannot
	// bank priority; bounded by ±total active weight thereafter.
	wcur float64

	// inActive marks membership in Scheduler.activeGroups.
	inActive bool
}

// weight is the group's smooth-WRR weight: its aggregate reservation, with
// non-positive aggregates contributing nothing.
func (g *groupState) weight() float64 {
	if g.aggRes <= 0 {
		return 0
	}
	return float64(g.aggRes)
}

// queueState is the per-subscriber scheduling state.
type queueState struct {
	id    qos.SubscriberID
	res   qos.GRPS
	limit int

	// grp is the subscriber's group; while backlogged the queue rotates in
	// grp.active.
	grp *groupState

	fifo []Request
	head int

	// balance is the reserved-resource account: credited reservation×cycle
	// per tick, debited with actual usage from accounting messages, and
	// pre-compensated for spare-round dispatches so it tracks only
	// reservation-funded consumption. Clamped to ±res×CreditWindow.
	//
	// Crediting is lazy: lastCredit records the cycle the balance was last
	// settled to, and settleCredit folds in the missed cycles in one step.
	// Because the per-cycle credit is non-negative and the clamp band is
	// fixed, crediting k cycles at once and clamping equals k iterations of
	// credit-then-clamp, so idle subscribers cost nothing per tick.
	balance    qos.Vector
	lastCredit uint64

	// creditPerCycle and clampLim cache res.PerCycle(Cycle) and
	// res.PerCycle(CreditWindow) so settling does no float math per tick.
	creditPerCycle qos.Vector
	clampLim       qos.Vector

	// estimated[i] is the predicted usage of this subscriber's in-flight
	// requests on the node at dense index i — the paper's "estimated
	// resource usage array". estTotal caches the sum across nodes so the
	// self-clocked gate does not re-sum per dispatch decision. Both the
	// estimated slice and the pending queues are allocated on first
	// dispatch, so idle subscribers carry no per-node state.
	estimated []qos.Vector
	estTotal  qos.Vector

	// pending[i] holds the per-dispatch predictions backing estimated[i],
	// in dispatch order. Accounting messages release exactly these values
	// (matched by completion count), so prediction error can never
	// accumulate as phantom outstanding load. Spare-funded dispatches are
	// flagged: their usage is compensated back into the balance at release
	// time, atomically with the actual-usage debit.
	pending []pendQ

	// predicted is the EWMA per-request usage estimate.
	predicted qos.Vector

	// vstart is the queue's start-time-fair-queueing tag for the spare
	// round, in virtual time (generic units divided by reservation weight).
	vstart float64

	// inActive marks membership in the scheduler's active list (backlogged
	// queues); empty queues leave the list at the end of the tick that
	// drained them.
	inActive bool

	dropped uint64

	// dispatched counts this subscriber's dispatch decisions since creation
	// (monitoring; the per-scheduler total lives on Scheduler.dispatched).
	dispatched uint64

	// Per-cycle flight-recorder accumulators, maintained only while a
	// recorder is attached and reset as each cycle record is committed:
	// dispatch counts by funding round, the effective credit granted this
	// cycle, and the usage/completions reported since the previous record.
	// recTouched marks membership in the cycle's to-record list.
	recTouched   bool
	cycReserved  int
	cycSpare     int
	cycCompleted int
	cycUsage     qos.Vector
	cycCredited  qos.Vector
}

func (q *queueState) qlen() int { return len(q.fifo) - q.head }

func (q *queueState) push(r Request) {
	q.fifo = append(q.fifo, r)
}

func (q *queueState) pop() Request {
	r := q.fifo[q.head]
	q.fifo[q.head] = Request{} // release payload for GC
	q.head++
	if q.head > 64 && q.head*2 >= len(q.fifo) {
		q.fifo = append(q.fifo[:0], q.fifo[q.head:]...)
		q.head = 0
	}
	return r
}

// nodeState is the per-RPN scheduling state.
type nodeState struct {
	id       NodeID
	idx      int        // dense index into Scheduler.nodeList
	capacity qos.Vector // per second
	bound    qos.Vector // capacity × OutstandingWindow
	perCycle qos.Vector // capacity × Cycle, the optimistic per-tick drain

	// outstanding is the predicted usage of all pending requests dispatched
	// to this node and not yet reported complete.
	outstanding qos.Vector

	// weight scales the node's admission bound: 1 is full capacity, 0
	// receives no dispatches (health management), and fractions in between
	// implement slow-start recovery — a node rejoining after an outage is
	// offered a growing slice of its bound instead of a thundering herd.
	// In-flight accounting settles normally at any weight. The weight also
	// sets the node's share of the smooth-WRR pick table.
	weight float64

	// weightedBound caches bound × weight so admission checks do no float
	// math per dispatch decision.
	weightedBound qos.Vector

	// drained is the optimistic estimate of how much of outstanding the
	// node has already served but not yet reported: it grows at the node's
	// known capacity every scheduling cycle and is reconciled downward when
	// accounting messages release completed work. Without it, node capacity
	// would only "reappear" in accounting-cycle-sized batches, making
	// dispatch bursty at exactly the feedback period. (The paper's RDN
	// similarly tracks each RPN's capacity between messages, §3.5.)
	drained qos.Vector
}

// effective returns the node's believed backlog: outstanding minus the
// optimistic drain.
func (nd *nodeState) effective() qos.Vector {
	return nd.outstanding.Sub(nd.drained).ClampNonNegative()
}

// hasRoom reports whether the node may accept one more request of the
// predicted size under its weight-scaled admission bound.
func (nd *nodeState) hasRoom(predicted qos.Vector) bool {
	if nd.weight <= 0 {
		return false
	}
	return nd.weightedBound.Dominates(nd.effective().Add(predicted))
}

// Scheduler is the RDN request+node scheduler. It is safe for concurrent
// use; the live dispatcher calls Enqueue from connection goroutines while a
// ticker goroutine calls Tick.
type Scheduler struct {
	mu sync.Mutex

	cfg Config

	// defs records every registered subscriber; subs holds the materialized
	// scheduling state of those that have ever been enqueued. The split is
	// what lets a directory of a million signed tenants cost one small
	// record each: queues, balances, and per-node arrays exist only for
	// subscribers that have carried traffic.
	defs map[qos.SubscriberID]*subDef
	subs map[qos.SubscriberID]*queueState

	// groups indexes the subscriber groups by name. activeGroups lists the
	// groups with backlogged members, sorted by name; grpOrder is the
	// per-tick visit-order scratch (sorted by smooth-WRR credit), retained
	// across cycles so ordering allocates nothing.
	groups       map[string]*groupState
	activeGroups []*groupState
	grpOrder     []*groupState

	// cycleNum counts Ticks; queueState.lastCredit settles against it.
	cycleNum uint64

	nodes    map[NodeID]*nodeState
	nodeList []*nodeState // sorted by NodeID; nodeState.idx indexes it

	// wrrTable is the precompiled smooth weighted-round-robin pick sequence
	// over node weights (nginx-style), recompiled only when a weight or the
	// membership changes; wrrPos is the cursor. An empty table means no
	// node accepts work.
	wrrTable []int32
	wrrPos   int
	wrrCur   []int // compile scratch
	wrrWts   []int // compile scratch

	// vtime is the spare round's global virtual time: the start tag of the
	// most recent spare dispatch. Queues re-activating after idleness join
	// at vtime so they cannot bank spare credit.
	vtime float64

	// spareHeap is the spare round's min-heap scratch, keyed (vstart, id);
	// dispatchBuf is the reused Tick result slice. Both retain capacity
	// across cycles so the hot path allocates nothing in steady state.
	spareHeap   []*queueState
	dispatchBuf []Dispatch

	// recTouched lists the queues with activity to record this cycle
	// (visited by the reservation round or named in a usage report);
	// maintained only while a recorder is attached.
	recTouched []*queueState

	dispatched uint64

	// rec, when non-nil, receives one CycleRecord per tick. The hot path
	// pays a single nil check when no recorder is attached.
	rec *flightrec.Recorder
}

// New builds a scheduler for the given subscribers and nodes. An empty
// directory is allowed: a recovered front end starts with no partition and
// receives its subscribers through ImportSubscriberState when the lease
// table hands groups back. An empty node pool is allowed too — a scheduler
// born before its cluster dispatches nothing (the smooth-WRR table is empty)
// until AddNode grows the pool; a scheduler started empty and populated
// entirely through AddSubscriber/AddNode produces cycle records identical to
// one seeded at construction.
func New(dir *qos.Directory, nodes []NodeConfig, cfg Config) (*Scheduler, error) {
	if dir == nil {
		return nil, errors.New("core: subscriber directory required")
	}
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:    cfg,
		defs:   make(map[qos.SubscriberID]*subDef, dir.Len()),
		subs:   make(map[qos.SubscriberID]*queueState),
		groups: make(map[string]*groupState),
		nodes:  make(map[NodeID]*nodeState, len(nodes)),
	}
	for _, id := range dir.IDs() {
		sub, err := dir.Subscriber(id)
		if err != nil {
			return nil, err
		}
		s.register(sub)
	}
	for _, nc := range nodes {
		if _, dup := s.nodes[nc.ID]; dup {
			return nil, fmt.Errorf("core: duplicate node %d", nc.ID)
		}
		if nc.Capacity.AnyNegative() || nc.Capacity.IsZero() {
			return nil, fmt.Errorf("core: node %d: capacity must be positive, got %v", nc.ID, nc.Capacity)
		}
		nd := &nodeState{
			id:       nc.ID,
			capacity: nc.Capacity,
			bound:    nc.Capacity.Scale(cfg.OutstandingWindow.Seconds()),
			perCycle: nc.Capacity.Scale(cfg.Cycle.Seconds()),
			weight:   1,
		}
		nd.weightedBound = nd.bound
		s.nodes[nc.ID] = nd
		s.nodeList = append(s.nodeList, nd)
	}
	slices.SortFunc(s.nodeList, func(a, b *nodeState) int { return cmp.Compare(a.id, b.id) })
	for i, nd := range s.nodeList {
		nd.idx = i
	}
	s.compileWRR()
	return s, nil
}

// register records a subscriber definition, creating its group on demand and
// folding its reservation into the group's aggregate. Callers hold s.mu (or
// run before the scheduler is shared).
func (s *Scheduler) register(sub qos.Subscriber) {
	g := s.groups[sub.Group]
	if g == nil {
		g = &groupState{name: sub.Group}
		s.groups[sub.Group] = g
	}
	g.aggRes += sub.Reservation
	g.members++
	s.defs[sub.ID] = &subDef{
		res:      sub.Reservation,
		limit:    sub.EffectiveQueueLimit(),
		grp:      g,
		regCycle: s.cycleNum,
	}
}

// materialize builds the full scheduling state for a registered subscriber on
// its first enqueue. lastCredit starts at the registration cycle, so the
// first settlement folds in the whole idle span — the balance is identical to
// what eager per-tick crediting would have produced. Callers hold s.mu.
func (s *Scheduler) materialize(id qos.SubscriberID, def *subDef) *queueState {
	q := &queueState{
		id:             id,
		res:            def.res,
		limit:          def.limit,
		grp:            def.grp,
		creditPerCycle: def.res.PerCycle(s.cfg.Cycle),
		clampLim:       def.res.PerCycle(s.cfg.CreditWindow),
		predicted:      qos.GenericCost(), // prior until feedback arrives
		lastCredit:     def.regCycle,
		vstart:         s.vtime,
	}
	s.subs[id] = q
	return q
}

// Cycle returns the configured scheduling cycle.
func (s *Scheduler) Cycle() time.Duration { return s.cfg.Cycle }

// settleCredit folds the cycles elapsed since the queue's last settlement
// into its balance, clamped to the credit band. Callers hold s.mu.
func (s *Scheduler) settleCredit(q *queueState) {
	k := s.cycleNum - q.lastCredit
	if k == 0 {
		return
	}
	q.lastCredit = s.cycleNum
	credit := q.creditPerCycle
	if k > 1 {
		credit = credit.Scale(float64(k))
	}
	q.balance = s.clampBalance(q, q.balance.Add(credit))
}

// activate inserts q into its group's active list at its sorted position,
// keeping the group's rotation pointer on the queue it pointed at, and wakes
// the group if this is its first backlogged member. Callers hold s.mu.
func (s *Scheduler) activate(q *queueState) {
	if q.inActive {
		return
	}
	q.inActive = true
	g := q.grp
	i, _ := slices.BinarySearchFunc(g.active, q, func(a, b *queueState) int {
		return cmp.Compare(a.id, b.id)
	})
	g.active = append(g.active, nil)
	copy(g.active[i+1:], g.active[i:])
	g.active[i] = q
	if i < g.astart {
		g.astart++
	}
	s.activateGroup(g)
}

// deactivate removes q from its group's active list, adjusting the group's
// rotation pointer relative to the removed index so no member's turn is
// skipped, and parks the group if its list emptied. Callers hold s.mu.
func (s *Scheduler) deactivate(q *queueState) {
	if !q.inActive {
		return
	}
	q.inActive = false
	g := q.grp
	i, ok := slices.BinarySearchFunc(g.active, q, func(a, b *queueState) int {
		return cmp.Compare(a.id, b.id)
	})
	if !ok {
		return
	}
	copy(g.active[i:], g.active[i+1:])
	g.active[len(g.active)-1] = nil
	g.active = g.active[:len(g.active)-1]
	if i < g.astart {
		g.astart--
	}
	if g.astart >= len(g.active) {
		g.astart = 0
	}
	if len(g.active) == 0 {
		s.deactivateGroup(g)
	}
}

// activateGroup adds g to the active-group list (sorted by name) when its
// first member backlogs. The smooth-WRR credit resets so a group returning
// from idleness joins the weighted rotation at parity instead of replaying
// banked priority — the group-level analogue of the SFQ vstart catch-up.
// Callers hold s.mu.
func (s *Scheduler) activateGroup(g *groupState) {
	if g.inActive {
		return
	}
	g.inActive = true
	g.wcur = 0
	i, _ := slices.BinarySearchFunc(s.activeGroups, g, func(a, b *groupState) int {
		return cmp.Compare(a.name, b.name)
	})
	s.activeGroups = append(s.activeGroups, nil)
	copy(s.activeGroups[i+1:], s.activeGroups[i:])
	s.activeGroups[i] = g
}

// deactivateGroup removes g from the active-group list. Callers hold s.mu.
func (s *Scheduler) deactivateGroup(g *groupState) {
	if !g.inActive {
		return
	}
	g.inActive = false
	i, ok := slices.BinarySearchFunc(s.activeGroups, g, func(a, b *groupState) int {
		return cmp.Compare(a.name, b.name)
	})
	if !ok {
		return
	}
	copy(s.activeGroups[i:], s.activeGroups[i+1:])
	s.activeGroups[len(s.activeGroups)-1] = nil
	s.activeGroups = s.activeGroups[:len(s.activeGroups)-1]
}

// touch adds q to the cycle's to-record list. Callers hold s.mu and have
// checked s.rec != nil.
func (s *Scheduler) touch(q *queueState) {
	if q.recTouched {
		return
	}
	q.recTouched = true
	s.recTouched = append(s.recTouched, q)
}

// Enqueue classifies nothing — the caller already did — it appends the
// request to its subscriber's FIFO queue. It returns ErrQueueFull on a drop
// and ErrUnknownSubscriber for unregistered subscribers.
func (s *Scheduler) Enqueue(req Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.subs[req.Subscriber]
	if !ok {
		def, registered := s.defs[req.Subscriber]
		if !registered {
			return fmt.Errorf("%w: %q", ErrUnknownSubscriber, req.Subscriber)
		}
		q = s.materialize(req.Subscriber, def)
	}
	if q.qlen() >= q.limit {
		q.dropped++
		return fmt.Errorf("%w: %q at limit %d", ErrQueueFull, req.Subscriber, q.limit)
	}
	if q.qlen() == 0 {
		if q.vstart < s.vtime {
			// SFQ activation: a queue returning from idleness joins the spare
			// round at the current virtual time instead of replaying the past.
			q.vstart = s.vtime
		}
		s.activate(q)
	}
	q.push(req)
	return nil
}

// Tick runs one scheduling cycle and returns the dispatch decisions in
// order. The caller delivers each dispatch to its node before the next Tick:
// the returned slice is reused by the following call.
func (s *Scheduler) Tick() []Dispatch {
	s.mu.Lock()
	defer s.mu.Unlock()

	s.cycleNum++

	// Reuse the dispatch buffer; clear the previous cycle's entries first so
	// stale payload references do not outlive their requests.
	for i := range s.dispatchBuf {
		s.dispatchBuf[i] = Dispatch{}
	}
	out := s.dispatchBuf[:0]

	// Advance each node's optimistic drain by one cycle of its capacity:
	// between accounting messages the RDN assumes a busy node keeps serving
	// at its known rate.
	if !s.cfg.DisableCapacityDrain {
		for _, nd := range s.nodeList {
			nd.drained = nd.drained.Add(nd.perCycle).Min(nd.outstanding)
		}
	}

	// Round 1 — reservation round, two levels. Active groups are ordered by
	// smooth weighted round-robin over aggregate reservations: each tick
	// every active group gains its weight, groups are visited in descending
	// credit order (name tie-break keeps it deterministic), and the first
	// visited group pays back the total — so first claim on scarce node
	// room rotates in proportion to reservations. Within a group, the
	// backlogged members are visited cyclically (rotating start for
	// long-run fairness): settle each queue's credit, dispatch while the
	// effective balance stays non-negative. Idle queues and idle groups are
	// not visited; credit settles lazily when observed. With a single group
	// this reduces exactly to the flat rotating scan it replaced.
	if len(s.activeGroups) > 0 {
		order := append(s.grpOrder[:0], s.activeGroups...)
		var totalW float64
		for _, g := range order {
			w := g.weight()
			g.wcur += w
			totalW += w
		}
		slices.SortFunc(order, func(a, b *groupState) int {
			if a.wcur != b.wcur {
				if a.wcur > b.wcur {
					return -1
				}
				return 1
			}
			return cmp.Compare(a.name, b.name)
		})
		if totalW > 0 {
			order[0].wcur -= totalW
		}
		for _, g := range order {
			m := len(g.active)
			for i := 0; i < m; i++ {
				q := g.active[(g.astart+i)%m]
				before := q.balance
				s.settleCredit(q)
				if s.rec != nil {
					// The effective credit: the balance delta after clamping.
					q.cycCredited = q.balance.Sub(before)
					s.touch(q)
				}
				for q.qlen() > 0 {
					effective := q.balance
					if s.cfg.Gate == GateSelfClocked {
						effective = effective.Sub(q.estTotal)
					}
					if effective.AnyNegative() {
						break
					}
					d, ok := s.dispatchOne(q, false /* reservation-funded */)
					if !ok {
						break // no node has room; leave queued
					}
					out = append(out, d)
				}
			}
			if m > 0 {
				g.astart = (g.astart + 1) % m
			}
		}
		for i := range order {
			order[i] = nil
		}
		s.grpOrder = order[:0]
	}

	// Round 2 — spare round. Remaining node capacity is shared among still
	// backlogged queues in proportion to their reservations ("higher
	// reservation gets larger share of spare", §4.1) using start-time fair
	// queueing: each backlogged queue carries a virtual start tag advanced
	// by cost/weight per dispatch, and a min-heap keyed (vstart, id) yields
	// the smallest tag in O(log active) instead of a full rescan. Within a
	// tick node load only grows (the drain advances once, up front), so a
	// queue no node can take is discarded for the rest of the cycle — the
	// heap shrinks monotonically and the sweep terminates. The scheme is
	// work-conserving: an otherwise idle cluster serves any backlog
	// regardless of reservations. Spare dispatches pre-compensate the
	// balance so the later actual-usage debit does not consume reserved
	// credit.
	// The heap is global across groups: spare capacity is shared by
	// individual reservation weight, so the group layer gates only the
	// reservation round. (vstart, id) is a total order, so building from
	// group-ordered iteration yields the same pop sequence a flat list did.
	h := s.spareHeap[:0]
	for _, g := range s.activeGroups {
		for _, q := range g.active {
			if q.qlen() > 0 {
				h = append(h, q)
			}
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		spareSiftDown(h, i)
	}
	for len(h) > 0 {
		q := h[0]
		d, ok := s.dispatchOne(q, true /* spare-funded */)
		if !ok {
			// No node can take this queue's predicted size for the rest of
			// the tick; drop it from the heap.
			h = sparePop(h)
			continue
		}
		s.vtime = q.vstart
		need := q.predicted.GenericUnits()
		if need <= 0 {
			need = 1e-9
		}
		weight := float64(q.res)
		if weight <= 0 {
			// Zero-reservation subscribers receive spare only at a token
			// weight, after everyone with a real reservation.
			weight = 1e-3
		}
		q.vstart += need / weight
		out = append(out, d)
		if q.qlen() == 0 {
			h = sparePop(h)
		} else {
			spareSiftDown(h, 0)
		}
	}
	s.spareHeap = h[:0]

	// Drop drained queues from each group's active list (one
	// order-preserving compaction pass per group, keeping the rotation
	// pointer on its queue), then park the groups whose lists emptied with
	// a compaction of the active-group list itself.
	if len(s.activeGroups) > 0 {
		gw := 0
		for _, g := range s.activeGroups {
			w := 0
			start := g.astart
			for i, q := range g.active {
				if q.qlen() > 0 {
					g.active[w] = q
					w++
					continue
				}
				q.inActive = false
				if i < g.astart {
					start--
				}
			}
			for i := w; i < len(g.active); i++ {
				g.active[i] = nil
			}
			g.active = g.active[:w]
			g.astart = start
			if g.astart >= w || g.astart < 0 {
				g.astart = 0
			}
			if w > 0 {
				s.activeGroups[gw] = g
				gw++
			} else {
				g.inActive = false
			}
		}
		for i := gw; i < len(s.activeGroups); i++ {
			s.activeGroups[i] = nil
		}
		s.activeGroups = s.activeGroups[:gw]
	}

	if s.rec != nil {
		s.recordCycle()
	}
	s.dispatchBuf = out
	return out
}

// spareLess orders the spare heap by (vstart, id); the ID tie-break keeps
// dispatch sequences deterministic.
func spareLess(a, b *queueState) bool {
	return a.vstart < b.vstart || (a.vstart == b.vstart && a.id < b.id)
}

func spareSiftDown(h []*queueState, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && spareLess(h[r], h[l]) {
			m = r
		}
		if !spareLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// sparePop removes the heap's root, releasing the vacated tail slot.
func sparePop(h []*queueState) []*queueState {
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	if n > 1 {
		spareSiftDown(h, 0)
	}
	return h
}

// recordCycle commits one flight-recorder record of the cycle that just ran
// and resets the per-cycle accumulators. Only subscribers with activity this
// cycle — visited by the reservation round or named in a usage report —
// appear in the record; idle subscribers are omitted so recording stays
// O(active). Callers hold s.mu and have checked s.rec != nil. Steady state
// allocates nothing: the record's slices retain their capacity across
// cycles.
func (s *Scheduler) recordCycle() {
	slices.SortFunc(s.recTouched, func(a, b *queueState) int { return cmp.Compare(a.id, b.id) })
	cr := s.rec.Begin()
	for _, q := range s.recTouched {
		cr.Subs = append(cr.Subs, flightrec.SubRecord{
			ID:          q.id,
			Reservation: q.res,
			Balance:     q.balance,
			Predicted:   q.predicted,
			Credited:    q.cycCredited,
			Usage:       q.cycUsage,
			QueueLen:    q.qlen(),
			Reserved:    q.cycReserved,
			Spare:       q.cycSpare,
			Completed:   q.cycCompleted,
			Dropped:     q.dropped,
		})
		q.recTouched = false
		q.cycReserved, q.cycSpare, q.cycCompleted = 0, 0, 0
		q.cycUsage, q.cycCredited = qos.Vector{}, qos.Vector{}
	}
	for _, nd := range s.nodeList {
		cr.Nodes = append(cr.Nodes, flightrec.NodeRecord{
			ID:          int(nd.id),
			Outstanding: nd.outstanding,
			Drained:     nd.drained,
			Weight:      nd.weight,
		})
	}
	s.rec.Commit()
	for i := range s.recTouched {
		s.recTouched[i] = nil
	}
	s.recTouched = s.recTouched[:0]
}

// SetRecorder attaches (or, with nil, detaches) a flight recorder. Each Tick
// then commits one CycleRecord; per-cycle accumulators start fresh from the
// next cycle.
func (s *Scheduler) SetRecorder(rec *flightrec.Recorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec = rec
	for _, q := range s.subs {
		q.recTouched = false
		q.cycReserved, q.cycSpare, q.cycCompleted = 0, 0, 0
		q.cycUsage, q.cycCredited = qos.Vector{}, qos.Vector{}
	}
	for i := range s.recTouched {
		s.recTouched[i] = nil
	}
	s.recTouched = s.recTouched[:0]
}

// Recorder returns the attached flight recorder, or nil.
func (s *Scheduler) Recorder() *flightrec.Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// ensureNodeSlots sizes the queue's per-node arrays on first dispatch.
func (s *Scheduler) ensureNodeSlots(q *queueState) {
	if q.estimated == nil {
		q.estimated = make([]qos.Vector, len(s.nodeList))
		q.pending = make([]pendQ, len(s.nodeList))
	}
}

// dispatchOne pops the head request of q and assigns it to the next node in
// the weighted-round-robin order with room. It updates the in-flight
// estimates. It reports false — without popping — when no node can take the
// request. Spare-funded dispatches are flagged so their usage is refunded to
// the balance when the accounting message releases them.
func (s *Scheduler) dispatchOne(q *queueState, spare bool) (Dispatch, bool) {
	affinity := q.fifo[q.head].Affinity
	node := s.pickNodeAffine(q.predicted, affinity)
	if node == nil {
		return Dispatch{}, false
	}
	req := q.pop()
	node.outstanding = node.outstanding.Add(q.predicted)
	s.ensureNodeSlots(q)
	q.estimated[node.idx] = q.estimated[node.idx].Add(q.predicted)
	q.estTotal = q.estTotal.Add(q.predicted)
	q.pending[node.idx].push(pendingDispatch{reqID: req.ID, predicted: q.predicted, spare: spare})
	s.dispatched++
	q.dispatched++
	if s.rec != nil {
		if spare {
			q.cycSpare++
		} else {
			q.cycReserved++
		}
	}
	return Dispatch{Req: req, Node: node.id, Predicted: q.predicted}, true
}

// pickNodeAffine prefers the affinity-designated node when it has room,
// falling back to the round-robin pick — content-aware request distribution
// (§3.6) that trades perfect balance for cache locality.
func (s *Scheduler) pickNodeAffine(predicted qos.Vector, affinity uint64) *nodeState {
	if affinity != 0 && len(s.nodeList) > 0 {
		nd := s.nodeList[affinity%uint64(len(s.nodeList))]
		if nd.hasRoom(predicted) {
			return nd
		}
	}
	return s.pickNodeExcept(predicted, nil)
}

// pickNode returns the next node in the precompiled smooth-WRR order that
// has room for the predicted usage, or nil. The table embodies the weighted
// interleaving, so the pick is O(1) plus skipped-full entries (bounded by
// the table length, a function of node count — never of subscriber count).
func (s *Scheduler) pickNode(predicted qos.Vector) *nodeState {
	return s.pickNodeExcept(predicted, nil)
}

// pickNodeExcept is pickNode with one node ruled out — the redispatch path
// must never hand a request back to the node that just failed it.
func (s *Scheduler) pickNodeExcept(predicted qos.Vector, except *nodeState) *nodeState {
	n := len(s.wrrTable)
	for i := 0; i < n; i++ {
		pos := s.wrrPos + i
		if pos >= n {
			pos -= n
		}
		nd := s.nodeList[s.wrrTable[pos]]
		if nd == except || !nd.hasRoom(predicted) {
			continue
		}
		s.wrrPos = pos + 1
		if s.wrrPos >= n {
			s.wrrPos = 0
		}
		return nd
	}
	return nil
}

// compileWRR rebuilds the smooth weighted-round-robin pick table from the
// node weights. It runs only on construction and weight/membership changes,
// never on the dispatch path. Weights are scaled to 1/64 granularity and
// reduced by their GCD, so equal-weight clusters compile to one entry per
// node (plain round-robin) and the table stays small.
func (s *Scheduler) compileWRR() {
	const granularity = 64
	wts := s.wrrWts[:0]
	total := 0
	for _, nd := range s.nodeList {
		w := 0
		if nd.weight > 0 {
			w = int(nd.weight*granularity + 0.5)
			if w == 0 {
				w = 1
			}
		}
		wts = append(wts, w)
		total += w
	}
	s.wrrWts = wts
	if total == 0 {
		s.wrrTable = s.wrrTable[:0]
		s.wrrPos = 0
		return
	}
	g := 0
	for _, w := range wts {
		g = gcd(g, w)
	}
	if g > 1 {
		total = 0
		for i := range wts {
			wts[i] /= g
			total += wts[i]
		}
	}
	cur := s.wrrCur
	if cap(cur) < len(wts) {
		cur = make([]int, len(wts))
	}
	cur = cur[:len(wts)]
	for i := range cur {
		cur[i] = 0
	}
	s.wrrCur = cur
	table := s.wrrTable[:0]
	// nginx-style smooth WRR: each step every candidate gains its weight,
	// the largest current value wins (lowest index on ties, keeping the
	// sequence deterministic), and the winner pays back the total.
	for step := 0; step < total; step++ {
		best := -1
		for i, w := range wts {
			if w == 0 {
				continue
			}
			cur[i] += w
			if best < 0 || cur[i] > cur[best] {
				best = i
			}
		}
		cur[best] -= total
		table = append(table, int32(best))
	}
	s.wrrTable = table
	// Restart the cursor: the old position indexes the old interleaving,
	// and carrying it into the new table would serve a stale smooth-WRR
	// pick — a mid-sequence offset biased toward whichever nodes the old
	// table front-loaded. The new table always begins with the canonical
	// smooth-WRR sequence for the new weights.
	s.wrrPos = 0
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ReportUsage ingests an accounting message: it releases the node's
// outstanding load, releases per-subscriber in-flight estimates, debits
// balances with actual usage, and refreshes the per-request predictors.
func (s *Scheduler) ReportUsage(rep UsageReport) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	nd, ok := s.nodes[rep.Node]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, rep.Node)
	}
	for id, u := range rep.BySubscriber {
		q, ok := s.subs[id]
		if !ok {
			def, registered := s.defs[id]
			if !registered {
				continue // subscriber removed or unknown; skip
			}
			// A usage report names this subscriber, so it now carries real
			// accounting state: materialize it.
			q = s.materialize(id, def)
		}
		// Settle outstanding credit first so the debit applies to the
		// up-to-date balance — the same order the eager per-tick crediting
		// produced.
		s.settleCredit(q)
		// Release the predictions charged at dispatch time for the
		// completed requests — exactly those, so prediction error never
		// lingers as phantom estimated load. Spare-funded dispatches are
		// refunded here, atomically with the actual-usage debit, so the
		// reservation balance pays only for reservation-round work and the
		// clamp can never eat a compensation.
		var released, refund qos.Vector
		if q.pending != nil {
			pq := &q.pending[nd.idx]
			k := u.Completed
			if k > pq.size() {
				k = pq.size()
			}
			for i := 0; i < k; i++ {
				pd := pq.at(i)
				released = released.Add(pd.predicted)
				if pd.spare {
					refund = refund.Add(pd.predicted)
				}
			}
			pq.release(k)
		}
		q.balance = s.clampBalance(q, q.balance.Sub(u.Usage).Add(refund))
		if s.rec != nil {
			q.cycUsage = q.cycUsage.Add(u.Usage)
			q.cycCompleted += u.Completed
			s.touch(q)
		}
		nd.outstanding = nd.outstanding.Sub(released).ClampNonNegative()
		// Reconcile the optimistic drain: the released work was (mostly)
		// the work we assumed was draining.
		nd.drained = nd.drained.Sub(released).ClampNonNegative().Min(nd.outstanding)
		if q.estimated != nil {
			est := q.estimated[nd.idx]
			newEst := est.Sub(released).ClampNonNegative()
			q.estimated[nd.idx] = newEst
			q.estTotal = q.estTotal.Sub(est.Sub(newEst))
		}
		if u.Completed > 0 {
			sample := u.Usage.Scale(1 / float64(u.Completed))
			a := s.cfg.PredictionAlpha
			q.predicted = sample.Scale(a).Add(q.predicted.Scale(1 - a))
		}
	}
	return nil
}

// CancelQueued removes a not-yet-dispatched request from its subscriber's
// FIFO queue, reporting whether it was found. A caller abandoning a request
// (client hang-up, wait timeout, shutdown) calls this first; a false return
// means the scheduler already dispatched the request and the caller must
// settle the charge with ReleaseDispatch instead.
func (s *Scheduler) CancelQueued(sub qos.SubscriberID, reqID uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.subs[sub]
	if !ok {
		return false
	}
	for i := q.head; i < len(q.fifo); i++ {
		if q.fifo[i].ID == reqID {
			copy(q.fifo[i:], q.fifo[i+1:])
			q.fifo[len(q.fifo)-1] = Request{} // release payload for GC
			q.fifo = q.fifo[:len(q.fifo)-1]
			return true
		}
	}
	return false
}

// ReleaseDispatch returns the charge of a dispatched-but-abandoned request:
// the prediction charged at dispatch time is removed from the node's
// outstanding load and the subscriber's in-flight estimate, atomically, as
// if an accounting message had released it — but without a usage debit,
// because the request never ran. Without this, an abandoned dispatch (the
// relay never executed, so the backend never completes it) would shrink the
// node's capacity forever. It reports whether the (subscriber, node, request)
// charge was found.
func (s *Scheduler) ReleaseDispatch(sub qos.SubscriberID, node NodeID, reqID uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.subs[sub]
	if !ok {
		return false
	}
	nd, ok := s.nodes[node]
	if !ok {
		return false
	}
	pd, ok := s.takePending(q, nd, reqID)
	if !ok {
		return false
	}
	s.releaseCharge(q, nd, pd.predicted)
	return true
}

// Redispatch moves an in-flight charge off a failed node: it releases the
// request's prediction from `from` and charges the next enabled node other
// than `from` instead, atomically. It returns the new node, or false when no
// alternate has room — in which case the charge has still been released and
// the caller should fail the request. This backs the dispatcher's relay
// retry: a backend that dies between dispatch and dial costs one extra round
// trip instead of a 502.
func (s *Scheduler) Redispatch(sub qos.SubscriberID, reqID uint64, from NodeID) (NodeID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.subs[sub]
	if !ok {
		return 0, false
	}
	fromNode, ok := s.nodes[from]
	if !ok {
		return 0, false
	}
	pd, ok := s.takePending(q, fromNode, reqID)
	if !ok {
		return 0, false
	}
	s.releaseCharge(q, fromNode, pd.predicted)
	alt := s.pickNodeExcept(pd.predicted, fromNode)
	if alt == nil {
		return 0, false
	}
	alt.outstanding = alt.outstanding.Add(pd.predicted)
	q.estimated[alt.idx] = q.estimated[alt.idx].Add(pd.predicted)
	q.estTotal = q.estTotal.Add(pd.predicted)
	q.pending[alt.idx].push(pendingDispatch{reqID: reqID, predicted: pd.predicted, spare: pd.spare})
	return alt.id, true
}

// takePending removes and returns the pending-prediction entry for reqID on
// the node, if present. Callers hold s.mu.
func (s *Scheduler) takePending(q *queueState, nd *nodeState, reqID uint64) (pendingDispatch, bool) {
	if q.pending == nil {
		return pendingDispatch{}, false
	}
	pq := &q.pending[nd.idx]
	for i := 0; i < pq.size(); i++ {
		if pq.at(i).reqID == reqID {
			pd := *pq.at(i)
			pq.remove(i)
			return pd, true
		}
	}
	return pendingDispatch{}, false
}

// releaseCharge backs out one dispatch-time prediction from a node's
// outstanding load and a subscriber's estimate. Callers hold s.mu.
func (s *Scheduler) releaseCharge(q *queueState, nd *nodeState, predicted qos.Vector) {
	nd.outstanding = nd.outstanding.Sub(predicted).ClampNonNegative()
	nd.drained = nd.drained.Min(nd.outstanding)
	if q.estimated != nil {
		est := q.estimated[nd.idx]
		newEst := est.Sub(predicted).ClampNonNegative()
		q.estimated[nd.idx] = newEst
		q.estTotal = q.estTotal.Sub(est.Sub(newEst))
	}
}

// clampBalance bounds a balance to ±reservation×CreditWindow.
func (s *Scheduler) clampBalance(q *queueState, b qos.Vector) qos.Vector {
	return b.Min(q.clampLim).Max(q.clampLim.Neg())
}

// QueueLen returns the number of queued (undispatched) requests for a
// subscriber, or 0 for unknown subscribers.
func (s *Scheduler) QueueLen(id qos.SubscriberID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.subs[id]; ok {
		return q.qlen()
	}
	return 0
}

// Dropped returns how many requests have been dropped for a subscriber due
// to queue overflow.
func (s *Scheduler) Dropped(id qos.SubscriberID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.subs[id]; ok {
		return q.dropped
	}
	return 0
}

// Dispatched returns how many dispatch decisions a subscriber has received
// since creation, or 0 for unknown subscribers.
func (s *Scheduler) Dispatched(id qos.SubscriberID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.subs[id]; ok {
		return q.dispatched
	}
	return 0
}

// Balance returns a subscriber's current reserved-resource balance. The
// balance is clamped to ±reservation×CreditWindow; tests and monitoring use
// this to observe the credit cap. Reading settles any lazily accrued credit
// first, so idle subscribers observe the same balance the eager per-tick
// crediting produced.
func (s *Scheduler) Balance(id qos.SubscriberID) (qos.Vector, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.subs[id]; ok {
		s.settleCredit(q)
		return q.balance, true
	}
	if def, ok := s.defs[id]; ok {
		// Never materialized: the balance is pure accrued credit, computed
		// directly — the same scale-then-clamp settleCredit would apply.
		k := s.cycleNum - def.regCycle
		if k == 0 {
			return qos.Vector{}, true
		}
		credit := def.res.PerCycle(s.cfg.Cycle)
		if k > 1 {
			credit = credit.Scale(float64(k))
		}
		lim := def.res.PerCycle(s.cfg.CreditWindow)
		return credit.Min(lim).Max(lim.Neg()), true
	}
	return qos.Vector{}, false
}

// Predicted returns the current per-request usage estimate for a subscriber.
func (s *Scheduler) Predicted(id qos.SubscriberID) (qos.Vector, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.subs[id]; ok {
		return q.predicted, true
	}
	if _, ok := s.defs[id]; ok {
		// Never materialized: still carrying the generic-cost prior.
		return qos.GenericCost(), true
	}
	return qos.Vector{}, false
}

// Outstanding returns a node's estimated outstanding load.
func (s *Scheduler) Outstanding(id NodeID) (qos.Vector, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if nd, ok := s.nodes[id]; ok {
		return nd.outstanding, true
	}
	return qos.Vector{}, false
}

// TotalDispatched returns the number of dispatches since creation.
func (s *Scheduler) TotalDispatched() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dispatched
}

// SetNodeWeight scales a node's admission bound to the fraction w of its
// capacity, clamped to [0, 1]. Weight 0 disables dispatching entirely
// (health management: a node that stops answering should stop receiving
// work); fractional weights implement slow-start recovery. In-flight
// accounting on a down-weighted node still settles normally, and its
// optimistic drain still runs at full physical capacity — the weight limits
// what we offer the node, not what we believe it can finish. Changing a
// weight recompiles the smooth-WRR pick table.
func (s *Scheduler) SetNodeWeight(id NodeID, w float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	nd, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if w < 0 {
		w = 0
	} else if w > 1 {
		w = 1
	}
	if nd.weight != w {
		nd.weight = w
		nd.weightedBound = nd.bound.Scale(w)
		s.compileWRR()
	}
	return nil
}

// NodeWeight returns a node's current admission weight.
func (s *Scheduler) NodeWeight(id NodeID) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nd, ok := s.nodes[id]
	if !ok {
		return 0, false
	}
	return nd.weight, true
}

// SetNodeEnabled enables (weight 1) or disables (weight 0) dispatching to a
// node — the pre-slow-start health interface, kept for callers that only
// need the binary form.
func (s *Scheduler) SetNodeEnabled(id NodeID, enabled bool) error {
	w := 0.0
	if enabled {
		w = 1.0
	}
	return s.SetNodeWeight(id, w)
}

// NodeEnabled reports whether a node currently receives any dispatches.
func (s *Scheduler) NodeEnabled(id NodeID) bool {
	w, ok := s.NodeWeight(id)
	return ok && w > 0
}

// AddSubscriber registers a new subscriber at runtime — hosting providers
// sign customers while the cluster is live. It fails on duplicates and
// invalid definitions. The caller must also update its classifier so the
// new subscriber's requests resolve.
func (s *Scheduler) AddSubscriber(sub qos.Subscriber) error {
	if err := sub.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.defs[sub.ID]; dup {
		return fmt.Errorf("core: subscriber %q already registered", sub.ID)
	}
	s.register(sub)
	return nil
}

// RemoveSubscriber unregisters a subscriber. Queued requests are dropped
// and returned so the caller can fail them; in-flight accounting state is
// discarded (its node outstanding still settles via reports of other
// subscribers' completions only — the node's remaining share drains). The
// reservation leaves its group's aggregate, and a group losing its last
// member is deleted.
func (s *Scheduler) RemoveSubscriber(id qos.SubscriberID) ([]Request, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	def, ok := s.defs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSubscriber, id)
	}
	var orphans []Request
	if q, ok := s.subs[id]; ok {
		for q.qlen() > 0 {
			orphans = append(orphans, q.pop())
		}
		// Release the subscriber's in-flight estimates from its nodes so the
		// capacity does not leak.
		for idx, est := range q.estimated {
			if est.IsZero() {
				continue
			}
			nd := s.nodeList[idx]
			nd.outstanding = nd.outstanding.Sub(est).ClampNonNegative()
			nd.drained = nd.drained.Min(nd.outstanding)
		}
		q.estTotal = qos.Vector{}
		s.deactivate(q)
		delete(s.subs, id)
	}
	g := def.grp
	g.aggRes -= def.res
	g.members--
	if g.members <= 0 {
		s.deactivateGroup(g)
		delete(s.groups, g.name)
	} else if g.aggRes < 0 {
		g.aggRes = 0 // float cancellation floor
	}
	delete(s.defs, id)
	return orphans, nil
}

// MigrateSubscriber moves a subscriber to another group, creating it on
// demand. Balance, queued requests, and in-flight charges ride along
// untouched: migration changes only which aggregate the reservation counts
// toward and which round-robin list the queue rotates in, so the member's
// own guarantee is unaffected. The vacated group is deleted when the last
// member leaves it.
func (s *Scheduler) MigrateSubscriber(id qos.SubscriberID, group string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	def, ok := s.defs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSubscriber, id)
	}
	s.migrateLocked(id, def, group)
	return nil
}

// migrateLocked is MigrateSubscriber's body. Callers hold s.mu.
func (s *Scheduler) migrateLocked(id qos.SubscriberID, def *subDef, group string) {
	old := def.grp
	if old.name == group {
		return
	}
	ng := s.groups[group]
	if ng == nil {
		ng = &groupState{name: group}
		s.groups[group] = ng
	}
	q := s.subs[id]
	wasActive := q != nil && q.inActive
	if wasActive {
		s.deactivate(q)
	}
	old.aggRes -= def.res
	old.members--
	if old.members <= 0 {
		s.deactivateGroup(old)
		delete(s.groups, old.name)
	} else if old.aggRes < 0 {
		old.aggRes = 0 // float cancellation floor
	}
	ng.aggRes += def.res
	ng.members++
	def.grp = ng
	if q != nil {
		q.grp = ng
		if wasActive {
			s.activate(q)
		}
	}
}

// MergeGroups migrates every member of src into dst (created on demand),
// deleting src. Guarantees compose: dst's aggregate reservation becomes the
// sum of both groups', so the merged group's reservation-round entitlement is
// exactly what its members held before — no member's guarantee changes. The
// walk over the registered population makes this O(registered), a
// control-plane operation that never runs on the dispatch path.
func (s *Scheduler) MergeGroups(src, dst string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.groups[src]; !ok {
		return fmt.Errorf("core: unknown group %q", src)
	}
	if src == dst {
		return nil
	}
	var members []qos.SubscriberID
	for id, def := range s.defs {
		if def.grp.name == src {
			members = append(members, id)
		}
	}
	slices.Sort(members)
	for _, id := range members {
		s.migrateLocked(id, s.defs[id], dst)
	}
	return nil
}

// Groups returns the registered group names in sorted order.
func (s *Scheduler) Groups() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.groups))
	for name := range s.groups {
		out = append(out, name)
	}
	slices.Sort(out)
	return out
}

// GroupOf returns the group a subscriber belongs to.
func (s *Scheduler) GroupOf(id qos.SubscriberID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	def, ok := s.defs[id]
	if !ok {
		return "", false
	}
	return def.grp.name, true
}

// GroupReservation returns a group's aggregate reservation.
func (s *Scheduler) GroupReservation(name string) (qos.GRPS, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[name]
	if !ok {
		return 0, false
	}
	return g.aggRes, true
}

// GroupMembers returns a group's registered member count.
func (s *Scheduler) GroupMembers(name string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[name]
	if !ok {
		return 0, false
	}
	return g.members, true
}

// Registered returns the registered subscriber population size.
func (s *Scheduler) Registered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.defs)
}

// Materialized returns how many subscribers carry full scheduling state —
// those that have ever been enqueued. The gap to Registered is the lazy
// layer's win: the rest cost one definition record each.
func (s *Scheduler) Materialized() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Nodes returns the node IDs in deterministic order.
func (s *Scheduler) Nodes() []NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]NodeID, len(s.nodeList))
	for i, nd := range s.nodeList {
		out[i] = nd.id
	}
	return out
}
