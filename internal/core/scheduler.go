// Package core implements Gage's request-scheduling brain (§3.4–§3.5): the
// per-subscriber queues, the credit-based weighted-round-robin request
// scheduler with a reservation round and a reservation-proportional spare
// round, the per-request resource-usage predictor, and the least-loaded node
// scheduler. It is pure scheduling logic — both the discrete-event cluster
// simulator and the live TCP dispatcher drive the same Scheduler, one on a
// virtual clock and one on wall time.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gage/internal/flightrec"
	"gage/internal/qos"
)

// NodeID identifies a back-end request processing node (RPN).
type NodeID int

// Request is one classified web access waiting for dispatch. Payload carries
// the caller's request object (a simulator request, a live connection, ...)
// opaquely through the scheduler.
type Request struct {
	// ID is the caller-assigned unique request identifier.
	ID uint64
	// Subscriber is the charging entity the request was classified to.
	Subscriber qos.SubscriberID
	// Affinity, when non-zero, requests content-aware dispatch (§3.6): all
	// requests sharing an affinity value prefer the same node, so URL pages
	// in the same proximity hit one RPN's cache. The preference yields to
	// load: a full preferred node falls back to least-loaded dispatch.
	Affinity uint64
	// Payload is opaque caller context returned with the dispatch decision.
	Payload any
}

// Dispatch is one scheduling decision: send Req to Node. Predicted is the
// resource usage the scheduler charged against the subscriber's balance and
// the node's outstanding load at dispatch time.
type Dispatch struct {
	Req       Request
	Node      NodeID
	Predicted qos.Vector
}

// SubscriberUsage is a subscriber's actual consumption on one RPN during one
// accounting cycle.
type SubscriberUsage struct {
	// Usage is the resources consumed by the subscriber's completed work.
	Usage qos.Vector
	// Completed is how many of the subscriber's requests finished.
	Completed int
}

// UsageReport is one accounting message from an RPN (§3.5): the node's total
// resource usage in the last accounting cycle plus the per-subscriber split.
type UsageReport struct {
	Node         NodeID
	Total        qos.Vector
	BySubscriber map[qos.SubscriberID]SubscriberUsage
}

// NodeConfig declares one RPN's capacity to the node scheduler.
type NodeConfig struct {
	// ID is the node's identity in dispatches and usage reports.
	ID NodeID
	// Capacity is the node's resource budget per second: how much CPU time,
	// disk-channel time and network bytes it can deliver each second.
	Capacity qos.Vector
}

// GateMode selects how the reservation round decides a queue has used up its
// entitlement.
type GateMode int

const (
	// GateSelfClocked (default) subtracts the predicted usage of in-flight
	// requests from the balance at dispatch time, so the gate is exact even
	// when accounting messages are infrequent. This is the library's
	// improved design.
	GateSelfClocked GateMode = iota
	// GateReported gates on the balance as known from accounting messages
	// alone — the dispatch itself does not debit the gate. QoS stability
	// then depends on the accounting-cycle length exactly as the paper's
	// Figure 3 measures: long cycles make service oscillate between zero
	// and about twice the reservation.
	GateReported
)

// Config tunes the scheduler.
type Config struct {
	// Cycle is the scheduling cycle; the paper uses 10 ms for responsiveness.
	Cycle time.Duration
	// CreditWindow caps accumulated balance at ±reservation×CreditWindow so
	// idle subscribers cannot hoard unbounded credit and overloaded ones
	// recover their guarantee within one window of load returning to normal.
	CreditWindow time.Duration
	// OutstandingWindow bounds each node's estimated outstanding load at
	// capacity×OutstandingWindow. It must cover a few scheduling cycles so
	// nodes never idle between ticks.
	OutstandingWindow time.Duration
	// PredictionAlpha is the weight of the newest sample in the per-request
	// usage estimate (exponentially weighted moving average).
	PredictionAlpha float64
	// Gate selects the reservation-round gating mode.
	Gate GateMode
	// DisableCapacityDrain turns off the optimistic between-report drain of
	// node outstanding load (the paper-faithful behaviour: node capacity
	// "reappears" only when accounting messages arrive, so dispatch turns
	// bursty at the accounting period — the instability Figure 3 measures).
	// The default drain model keeps dispatch smooth under slow feedback.
	DisableCapacityDrain bool
}

// Defaults mirroring the paper's prototype settings.
const (
	DefaultCycle             = 10 * time.Millisecond
	DefaultCreditWindow      = time.Second
	DefaultOutstandingWindow = 50 * time.Millisecond
	DefaultPredictionAlpha   = 0.3
)

func (c Config) withDefaults() Config {
	if c.Cycle <= 0 {
		c.Cycle = DefaultCycle
	}
	if c.CreditWindow <= 0 {
		c.CreditWindow = DefaultCreditWindow
	}
	if c.OutstandingWindow <= 0 {
		c.OutstandingWindow = DefaultOutstandingWindow
	}
	if c.PredictionAlpha <= 0 || c.PredictionAlpha > 1 {
		c.PredictionAlpha = DefaultPredictionAlpha
	}
	return c
}

// Scheduler errors.
var (
	// ErrQueueFull reports a drop: the subscriber's queue is at its limit.
	ErrQueueFull = errors.New("core: subscriber queue full")
	// ErrUnknownSubscriber reports a request for an unregistered subscriber.
	ErrUnknownSubscriber = errors.New("core: unknown subscriber")
	// ErrUnknownNode reports a usage message from an unregistered node.
	ErrUnknownNode = errors.New("core: unknown node")
)

// queueState is the per-subscriber scheduling state.
type queueState struct {
	id    qos.SubscriberID
	res   qos.GRPS
	limit int

	fifo []Request
	head int

	// balance is the reserved-resource account: credited reservation×cycle
	// each tick, debited with actual usage from accounting messages, and
	// pre-compensated for spare-round dispatches so it tracks only
	// reservation-funded consumption. Clamped to ±res×CreditWindow.
	balance qos.Vector

	// estimated[n] is the predicted usage of this subscriber's in-flight
	// requests on node n — the paper's "estimated resource usage array".
	estimated map[NodeID]qos.Vector

	// pending[n] holds the per-dispatch predictions backing estimated[n],
	// in dispatch order. Accounting messages release exactly these values
	// (matched by completion count), so prediction error can never
	// accumulate as phantom outstanding load. Spare-funded dispatches are
	// flagged: their usage is compensated back into the balance at release
	// time, atomically with the actual-usage debit.
	pending map[NodeID][]pendingDispatch

	// predicted is the EWMA per-request usage estimate.
	predicted qos.Vector

	// vstart is the queue's start-time-fair-queueing tag for the spare
	// round, in virtual time (generic units divided by reservation weight).
	vstart float64

	dropped uint64

	// dispatched counts this subscriber's dispatch decisions since creation
	// (monitoring; the per-scheduler total lives on Scheduler.dispatched).
	dispatched uint64

	// Per-cycle flight-recorder accumulators, maintained only while a
	// recorder is attached and reset as each cycle record is committed:
	// dispatch counts by funding round, the effective credit granted this
	// cycle, and the usage/completions reported since the previous record.
	cycReserved  int
	cycSpare     int
	cycCompleted int
	cycUsage     qos.Vector
	cycCredited  qos.Vector
}

func (q *queueState) qlen() int { return len(q.fifo) - q.head }

func (q *queueState) push(r Request) {
	q.fifo = append(q.fifo, r)
}

func (q *queueState) pop() Request {
	r := q.fifo[q.head]
	q.fifo[q.head] = Request{} // release payload for GC
	q.head++
	if q.head > 64 && q.head*2 >= len(q.fifo) {
		q.fifo = append(q.fifo[:0], q.fifo[q.head:]...)
		q.head = 0
	}
	return r
}

// estimatedTotal sums the in-flight estimates across nodes.
func (q *queueState) estimatedTotal() qos.Vector {
	var sum qos.Vector
	for _, v := range q.estimated {
		sum = sum.Add(v)
	}
	return sum
}

// pendingDispatch is one in-flight request's charged prediction. The request
// ID keys the lifecycle API: an abandoned dispatch is released by ID, not by
// completion count.
type pendingDispatch struct {
	reqID     uint64
	predicted qos.Vector
	spare     bool
}

// nodeState is the per-RPN scheduling state.
type nodeState struct {
	id       NodeID
	capacity qos.Vector // per second
	bound    qos.Vector // capacity × OutstandingWindow

	// outstanding is the predicted usage of all pending requests dispatched
	// to this node and not yet reported complete.
	outstanding qos.Vector

	// weight scales the node's admission bound: 1 is full capacity, 0
	// receives no dispatches (health management), and fractions in between
	// implement slow-start recovery — a node rejoining after an outage is
	// offered a growing slice of its bound instead of a thundering herd.
	// In-flight accounting settles normally at any weight.
	weight float64

	// drained is the optimistic estimate of how much of outstanding the
	// node has already served but not yet reported: it grows at the node's
	// known capacity every scheduling cycle and is reconciled downward when
	// accounting messages release completed work. Without it, node capacity
	// would only "reappear" in accounting-cycle-sized batches, making
	// dispatch bursty at exactly the feedback period. (The paper's RDN
	// similarly tracks each RPN's capacity between messages, §3.5.)
	drained qos.Vector
}

// effective returns the node's believed backlog: outstanding minus the
// optimistic drain.
func (nd *nodeState) effective() qos.Vector {
	return nd.outstanding.Sub(nd.drained).ClampNonNegative()
}

// hasRoom reports whether the node may accept one more request of the
// predicted size under its weight-scaled admission bound.
func (nd *nodeState) hasRoom(predicted qos.Vector) bool {
	if nd.weight <= 0 {
		return false
	}
	return nd.bound.Scale(nd.weight).Dominates(nd.effective().Add(predicted))
}

// Scheduler is the RDN request+node scheduler. It is safe for concurrent
// use; the live dispatcher calls Enqueue from connection goroutines while a
// ticker goroutine calls Tick.
type Scheduler struct {
	mu sync.Mutex

	cfg   Config
	dir   *qos.Directory
	subs  map[qos.SubscriberID]*queueState
	order []qos.SubscriberID // fixed visit order; start rotates per tick
	start int

	nodes     map[NodeID]*nodeState
	nodeOrder []NodeID
	nodeStart int

	// vtime is the spare round's global virtual time: the start tag of the
	// most recent spare dispatch. Queues re-activating after idleness join
	// at vtime so they cannot bank spare credit.
	vtime float64

	dispatched uint64

	// rec, when non-nil, receives one CycleRecord per tick. The hot path
	// pays a single nil check when no recorder is attached.
	rec *flightrec.Recorder
}

// New builds a scheduler for the given subscribers and nodes.
func New(dir *qos.Directory, nodes []NodeConfig, cfg Config) (*Scheduler, error) {
	if dir == nil || dir.Len() == 0 {
		return nil, errors.New("core: at least one subscriber required")
	}
	if len(nodes) == 0 {
		return nil, errors.New("core: at least one node required")
	}
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:   cfg,
		dir:   dir,
		subs:  make(map[qos.SubscriberID]*queueState, dir.Len()),
		nodes: make(map[NodeID]*nodeState, len(nodes)),
	}
	for _, id := range dir.IDs() {
		sub, err := dir.Subscriber(id)
		if err != nil {
			return nil, err
		}
		s.subs[id] = &queueState{
			id:        id,
			res:       sub.Reservation,
			limit:     sub.EffectiveQueueLimit(),
			estimated: make(map[NodeID]qos.Vector),
			pending:   make(map[NodeID][]pendingDispatch),
			predicted: qos.GenericCost(), // prior until feedback arrives
		}
		s.order = append(s.order, id)
	}
	for _, nc := range nodes {
		if _, dup := s.nodes[nc.ID]; dup {
			return nil, fmt.Errorf("core: duplicate node %d", nc.ID)
		}
		if nc.Capacity.AnyNegative() || nc.Capacity.IsZero() {
			return nil, fmt.Errorf("core: node %d: capacity must be positive, got %v", nc.ID, nc.Capacity)
		}
		s.nodes[nc.ID] = &nodeState{
			id:       nc.ID,
			capacity: nc.Capacity,
			bound:    nc.Capacity.Scale(cfg.OutstandingWindow.Seconds()),
			weight:   1,
		}
		s.nodeOrder = append(s.nodeOrder, nc.ID)
	}
	sort.Slice(s.nodeOrder, func(i, j int) bool { return s.nodeOrder[i] < s.nodeOrder[j] })
	return s, nil
}

// Cycle returns the configured scheduling cycle.
func (s *Scheduler) Cycle() time.Duration { return s.cfg.Cycle }

// Enqueue classifies nothing — the caller already did — it appends the
// request to its subscriber's FIFO queue. It returns ErrQueueFull on a drop
// and ErrUnknownSubscriber for unregistered subscribers.
func (s *Scheduler) Enqueue(req Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.subs[req.Subscriber]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSubscriber, req.Subscriber)
	}
	if q.qlen() >= q.limit {
		q.dropped++
		return fmt.Errorf("%w: %q at limit %d", ErrQueueFull, req.Subscriber, q.limit)
	}
	if q.qlen() == 0 && q.vstart < s.vtime {
		// SFQ activation: a queue returning from idleness joins the spare
		// round at the current virtual time instead of replaying the past.
		q.vstart = s.vtime
	}
	q.push(req)
	return nil
}

// Tick runs one scheduling cycle and returns the dispatch decisions in
// order. The caller delivers each dispatch to its node.
func (s *Scheduler) Tick() []Dispatch {
	s.mu.Lock()
	defer s.mu.Unlock()

	var out []Dispatch

	// Advance each node's optimistic drain by one cycle of its capacity:
	// between accounting messages the RDN assumes a busy node keeps serving
	// at its known rate.
	if !s.cfg.DisableCapacityDrain {
		for _, id := range s.nodeOrder {
			nd := s.nodes[id]
			nd.drained = nd.drained.Add(nd.capacity.Scale(s.cfg.Cycle.Seconds())).Min(nd.outstanding)
		}
	}

	// Round 1 — reservation round. Visit queues cyclically (rotating start
	// for long-run fairness), credit each queue its per-cycle entitlement,
	// and dispatch while the effective balance stays non-negative.
	n := len(s.order)
	for i := 0; i < n; i++ {
		q := s.subs[s.order[(s.start+i)%n]]
		before := q.balance
		q.balance = s.clampBalance(q, q.balance.Add(q.res.PerCycle(s.cfg.Cycle)))
		if s.rec != nil {
			// The effective credit: the balance delta after clamping.
			q.cycCredited = q.balance.Sub(before)
		}
		for q.qlen() > 0 {
			effective := q.balance
			if s.cfg.Gate == GateSelfClocked {
				effective = effective.Sub(q.estimatedTotal())
			}
			if effective.AnyNegative() {
				break
			}
			d, ok := s.dispatchOne(q, false /* reservation-funded */)
			if !ok {
				break // no node has room; leave queued
			}
			out = append(out, d)
		}
	}
	if n > 0 {
		s.start = (s.start + 1) % n
	}

	// Round 2 — spare round. Remaining node capacity is shared among still
	// backlogged queues in proportion to their reservations ("higher
	// reservation gets larger share of spare", §4.1) using start-time fair
	// queueing: each backlogged queue carries a virtual start tag advanced
	// by cost/weight per dispatch, and the smallest tag dispatches next.
	// Node capacity bounds terminate the sweep; the scheme is
	// work-conserving, so an otherwise idle cluster serves any backlog
	// regardless of reservations. Spare dispatches pre-compensate the
	// balance so the later actual-usage debit does not consume reserved
	// credit.
	for {
		var best *queueState
		for i := 0; i < n; i++ {
			q := s.subs[s.order[(s.start+i)%n]]
			if q.qlen() == 0 {
				continue
			}
			if s.pickNode(q.predicted) == nil {
				continue
			}
			if best == nil || q.vstart < best.vstart {
				best = q
			}
		}
		if best == nil {
			break
		}
		need := best.predicted.GenericUnits()
		if need <= 0 {
			need = 1e-9
		}
		d, ok := s.dispatchOne(best, true /* spare-funded */)
		if !ok {
			break // capacity raced away; re-check next tick
		}
		s.vtime = best.vstart
		weight := float64(best.res)
		if weight <= 0 {
			// Zero-reservation subscribers receive spare only at a token
			// weight, after everyone with a real reservation.
			weight = 1e-3
		}
		best.vstart += need / weight
		out = append(out, d)
	}
	if s.rec != nil {
		s.recordCycle()
	}
	return out
}

// recordCycle commits one flight-recorder record of the cycle that just ran
// and resets the per-cycle accumulators. Callers hold s.mu and have checked
// s.rec != nil. Steady state allocates nothing: the record's slices retain
// their capacity across cycles.
func (s *Scheduler) recordCycle() {
	cr := s.rec.Begin()
	for _, id := range s.order {
		q := s.subs[id]
		cr.Subs = append(cr.Subs, flightrec.SubRecord{
			ID:          q.id,
			Reservation: q.res,
			Balance:     q.balance,
			Predicted:   q.predicted,
			Credited:    q.cycCredited,
			Usage:       q.cycUsage,
			QueueLen:    q.qlen(),
			Reserved:    q.cycReserved,
			Spare:       q.cycSpare,
			Completed:   q.cycCompleted,
			Dropped:     q.dropped,
		})
		q.cycReserved, q.cycSpare, q.cycCompleted = 0, 0, 0
		q.cycUsage, q.cycCredited = qos.Vector{}, qos.Vector{}
	}
	for _, id := range s.nodeOrder {
		nd := s.nodes[id]
		cr.Nodes = append(cr.Nodes, flightrec.NodeRecord{
			ID:          int(nd.id),
			Outstanding: nd.outstanding,
			Drained:     nd.drained,
			Weight:      nd.weight,
		})
	}
	s.rec.Commit()
}

// SetRecorder attaches (or, with nil, detaches) a flight recorder. Each Tick
// then commits one CycleRecord; per-cycle accumulators start fresh from the
// next cycle.
func (s *Scheduler) SetRecorder(rec *flightrec.Recorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec = rec
	for _, q := range s.subs {
		q.cycReserved, q.cycSpare, q.cycCompleted = 0, 0, 0
		q.cycUsage, q.cycCredited = qos.Vector{}, qos.Vector{}
	}
}

// Recorder returns the attached flight recorder, or nil.
func (s *Scheduler) Recorder() *flightrec.Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// dispatchOne pops the head request of q and assigns it to the least-loaded
// node with room. It updates the in-flight estimates. It reports false —
// without popping — when no node can take the request. Spare-funded
// dispatches are flagged so their usage is refunded to the balance when the
// accounting message releases them.
func (s *Scheduler) dispatchOne(q *queueState, spare bool) (Dispatch, bool) {
	affinity := q.fifo[q.head].Affinity
	node := s.pickNodeAffine(q.predicted, affinity)
	if node == nil {
		return Dispatch{}, false
	}
	req := q.pop()
	node.outstanding = node.outstanding.Add(q.predicted)
	q.estimated[node.id] = q.estimated[node.id].Add(q.predicted)
	q.pending[node.id] = append(q.pending[node.id], pendingDispatch{reqID: req.ID, predicted: q.predicted, spare: spare})
	s.dispatched++
	q.dispatched++
	if s.rec != nil {
		if spare {
			q.cycSpare++
		} else {
			q.cycReserved++
		}
	}
	if n := len(s.nodeOrder); n > 0 {
		s.nodeStart = (s.nodeStart + 1) % n
	}
	return Dispatch{Req: req, Node: node.id, Predicted: q.predicted}, true
}

// pickNodeAffine prefers the affinity-designated node when it has room,
// falling back to least-loaded dispatch — content-aware request
// distribution (§3.6) that trades perfect balance for cache locality.
func (s *Scheduler) pickNodeAffine(predicted qos.Vector, affinity uint64) *nodeState {
	if affinity != 0 && len(s.nodeOrder) > 0 {
		nd := s.nodes[s.nodeOrder[affinity%uint64(len(s.nodeOrder))]]
		if nd.hasRoom(predicted) {
			return nd
		}
	}
	return s.pickNode(predicted)
}

// pickNode returns the node with the least estimated outstanding load (in
// generic units) that still has room for the predicted usage, or nil. Ties
// are broken by a rotating starting offset so identical nodes share work
// evenly instead of the lowest ID starving the rest.
func (s *Scheduler) pickNode(predicted qos.Vector) *nodeState {
	return s.pickNodeExcept(predicted, nil)
}

// pickNodeExcept is pickNode with one node ruled out — the redispatch path
// must never hand a request back to the node that just failed it.
func (s *Scheduler) pickNodeExcept(predicted qos.Vector, except *nodeState) *nodeState {
	var best *nodeState
	bestLoad := 0.0
	n := len(s.nodeOrder)
	for i := 0; i < n; i++ {
		nd := s.nodes[s.nodeOrder[(s.nodeStart+i)%n]]
		if nd == except || !nd.hasRoom(predicted) {
			continue
		}
		load := nd.effective().GenericUnits()
		if best == nil || load < bestLoad {
			best, bestLoad = nd, load
		}
	}
	return best
}

// ReportUsage ingests an accounting message: it releases the node's
// outstanding load, releases per-subscriber in-flight estimates, debits
// balances with actual usage, and refreshes the per-request predictors.
func (s *Scheduler) ReportUsage(rep UsageReport) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	nd, ok := s.nodes[rep.Node]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, rep.Node)
	}
	for id, u := range rep.BySubscriber {
		q, ok := s.subs[id]
		if !ok {
			continue // subscriber removed or unknown; skip
		}
		// Release the predictions charged at dispatch time for the
		// completed requests — exactly those, so prediction error never
		// lingers as phantom estimated load. Spare-funded dispatches are
		// refunded here, atomically with the actual-usage debit, so the
		// reservation balance pays only for reservation-round work and the
		// clamp can never eat a compensation.
		fifo := q.pending[rep.Node]
		k := u.Completed
		if k > len(fifo) {
			k = len(fifo)
		}
		var released, refund qos.Vector
		for i := 0; i < k; i++ {
			released = released.Add(fifo[i].predicted)
			if fifo[i].spare {
				refund = refund.Add(fifo[i].predicted)
			}
		}
		q.pending[rep.Node] = fifo[k:]
		q.balance = s.clampBalance(q, q.balance.Sub(u.Usage).Add(refund))
		if s.rec != nil {
			q.cycUsage = q.cycUsage.Add(u.Usage)
			q.cycCompleted += u.Completed
		}
		nd.outstanding = nd.outstanding.Sub(released).ClampNonNegative()
		// Reconcile the optimistic drain: the released work was (mostly)
		// the work we assumed was draining.
		nd.drained = nd.drained.Sub(released).ClampNonNegative().Min(nd.outstanding)
		q.estimated[rep.Node] = q.estimated[rep.Node].Sub(released).ClampNonNegative()
		if u.Completed > 0 {
			sample := u.Usage.Scale(1 / float64(u.Completed))
			a := s.cfg.PredictionAlpha
			q.predicted = sample.Scale(a).Add(q.predicted.Scale(1 - a))
		}
	}
	return nil
}

// CancelQueued removes a not-yet-dispatched request from its subscriber's
// FIFO queue, reporting whether it was found. A caller abandoning a request
// (client hang-up, wait timeout, shutdown) calls this first; a false return
// means the scheduler already dispatched the request and the caller must
// settle the charge with ReleaseDispatch instead.
func (s *Scheduler) CancelQueued(sub qos.SubscriberID, reqID uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.subs[sub]
	if !ok {
		return false
	}
	for i := q.head; i < len(q.fifo); i++ {
		if q.fifo[i].ID == reqID {
			copy(q.fifo[i:], q.fifo[i+1:])
			q.fifo[len(q.fifo)-1] = Request{} // release payload for GC
			q.fifo = q.fifo[:len(q.fifo)-1]
			return true
		}
	}
	return false
}

// ReleaseDispatch returns the charge of a dispatched-but-abandoned request:
// the prediction charged at dispatch time is removed from the node's
// outstanding load and the subscriber's in-flight estimate, atomically, as
// if an accounting message had released it — but without a usage debit,
// because the request never ran. Without this, an abandoned dispatch (the
// relay never executed, so the backend never completes it) would shrink the
// node's capacity forever. It reports whether the (subscriber, node, request)
// charge was found.
func (s *Scheduler) ReleaseDispatch(sub qos.SubscriberID, node NodeID, reqID uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.subs[sub]
	if !ok {
		return false
	}
	nd, ok := s.nodes[node]
	if !ok {
		return false
	}
	pd, ok := s.takePending(q, node, reqID)
	if !ok {
		return false
	}
	s.releaseCharge(q, nd, pd.predicted)
	return true
}

// Redispatch moves an in-flight charge off a failed node: it releases the
// request's prediction from `from` and charges the least-loaded enabled node
// other than `from` instead, atomically. It returns the new node, or false
// when no alternate has room — in which case the charge has still been
// released and the caller should fail the request. This backs the dispatcher's
// relay retry: a backend that dies between dispatch and dial costs one extra
// round trip instead of a 502.
func (s *Scheduler) Redispatch(sub qos.SubscriberID, reqID uint64, from NodeID) (NodeID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.subs[sub]
	if !ok {
		return 0, false
	}
	fromNode, ok := s.nodes[from]
	if !ok {
		return 0, false
	}
	pd, ok := s.takePending(q, from, reqID)
	if !ok {
		return 0, false
	}
	s.releaseCharge(q, fromNode, pd.predicted)
	alt := s.pickNodeExcept(pd.predicted, fromNode)
	if alt == nil {
		return 0, false
	}
	alt.outstanding = alt.outstanding.Add(pd.predicted)
	q.estimated[alt.id] = q.estimated[alt.id].Add(pd.predicted)
	q.pending[alt.id] = append(q.pending[alt.id], pendingDispatch{reqID: reqID, predicted: pd.predicted, spare: pd.spare})
	return alt.id, true
}

// takePending removes and returns the pending-prediction entry for reqID on
// node, if present. Callers hold s.mu.
func (s *Scheduler) takePending(q *queueState, node NodeID, reqID uint64) (pendingDispatch, bool) {
	fifo := q.pending[node]
	for i, pd := range fifo {
		if pd.reqID == reqID {
			q.pending[node] = append(fifo[:i], fifo[i+1:]...)
			return pd, true
		}
	}
	return pendingDispatch{}, false
}

// releaseCharge backs out one dispatch-time prediction from a node's
// outstanding load and a subscriber's estimate. Callers hold s.mu.
func (s *Scheduler) releaseCharge(q *queueState, nd *nodeState, predicted qos.Vector) {
	nd.outstanding = nd.outstanding.Sub(predicted).ClampNonNegative()
	nd.drained = nd.drained.Min(nd.outstanding)
	q.estimated[nd.id] = q.estimated[nd.id].Sub(predicted).ClampNonNegative()
}

// clampBalance bounds a balance to ±reservation×CreditWindow.
func (s *Scheduler) clampBalance(q *queueState, b qos.Vector) qos.Vector {
	lim := q.res.PerCycle(s.cfg.CreditWindow)
	return b.Min(lim).Max(lim.Neg())
}

// QueueLen returns the number of queued (undispatched) requests for a
// subscriber, or 0 for unknown subscribers.
func (s *Scheduler) QueueLen(id qos.SubscriberID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.subs[id]; ok {
		return q.qlen()
	}
	return 0
}

// Dropped returns how many requests have been dropped for a subscriber due
// to queue overflow.
func (s *Scheduler) Dropped(id qos.SubscriberID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.subs[id]; ok {
		return q.dropped
	}
	return 0
}

// Dispatched returns how many dispatch decisions a subscriber has received
// since creation, or 0 for unknown subscribers.
func (s *Scheduler) Dispatched(id qos.SubscriberID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.subs[id]; ok {
		return q.dispatched
	}
	return 0
}

// Balance returns a subscriber's current reserved-resource balance. The
// balance is clamped to ±reservation×CreditWindow; tests and monitoring use
// this to observe the credit cap.
func (s *Scheduler) Balance(id qos.SubscriberID) (qos.Vector, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.subs[id]; ok {
		return q.balance, true
	}
	return qos.Vector{}, false
}

// Predicted returns the current per-request usage estimate for a subscriber.
func (s *Scheduler) Predicted(id qos.SubscriberID) (qos.Vector, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.subs[id]; ok {
		return q.predicted, true
	}
	return qos.Vector{}, false
}

// Outstanding returns a node's estimated outstanding load.
func (s *Scheduler) Outstanding(id NodeID) (qos.Vector, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if nd, ok := s.nodes[id]; ok {
		return nd.outstanding, true
	}
	return qos.Vector{}, false
}

// TotalDispatched returns the number of dispatches since creation.
func (s *Scheduler) TotalDispatched() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dispatched
}

// SetNodeWeight scales a node's admission bound to the fraction w of its
// capacity, clamped to [0, 1]. Weight 0 disables dispatching entirely
// (health management: a node that stops answering should stop receiving
// work); fractional weights implement slow-start recovery. In-flight
// accounting on a down-weighted node still settles normally, and its
// optimistic drain still runs at full physical capacity — the weight limits
// what we offer the node, not what we believe it can finish.
func (s *Scheduler) SetNodeWeight(id NodeID, w float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	nd, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if w < 0 {
		w = 0
	} else if w > 1 {
		w = 1
	}
	nd.weight = w
	return nil
}

// NodeWeight returns a node's current admission weight.
func (s *Scheduler) NodeWeight(id NodeID) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nd, ok := s.nodes[id]
	if !ok {
		return 0, false
	}
	return nd.weight, true
}

// SetNodeEnabled enables (weight 1) or disables (weight 0) dispatching to a
// node — the pre-slow-start health interface, kept for callers that only
// need the binary form.
func (s *Scheduler) SetNodeEnabled(id NodeID, enabled bool) error {
	w := 0.0
	if enabled {
		w = 1.0
	}
	return s.SetNodeWeight(id, w)
}

// NodeEnabled reports whether a node currently receives any dispatches.
func (s *Scheduler) NodeEnabled(id NodeID) bool {
	w, ok := s.NodeWeight(id)
	return ok && w > 0
}

// AddSubscriber registers a new subscriber at runtime — hosting providers
// sign customers while the cluster is live. It fails on duplicates and
// invalid definitions. The caller must also update its classifier so the
// new subscriber's requests resolve.
func (s *Scheduler) AddSubscriber(sub qos.Subscriber) error {
	if err := sub.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.subs[sub.ID]; dup {
		return fmt.Errorf("core: subscriber %q already registered", sub.ID)
	}
	s.subs[sub.ID] = &queueState{
		id:        sub.ID,
		res:       sub.Reservation,
		limit:     sub.EffectiveQueueLimit(),
		estimated: make(map[NodeID]qos.Vector),
		pending:   make(map[NodeID][]pendingDispatch),
		predicted: qos.GenericCost(),
		vstart:    s.vtime, // join the spare round at the current virtual time
	}
	s.order = append(s.order, sub.ID)
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	return nil
}

// RemoveSubscriber unregisters a subscriber. Queued requests are dropped
// and returned so the caller can fail them; in-flight accounting state is
// discarded (its node outstanding still settles via reports of other
// subscribers' completions only — the node's remaining share drains).
func (s *Scheduler) RemoveSubscriber(id qos.SubscriberID) ([]Request, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.subs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSubscriber, id)
	}
	var orphans []Request
	for q.qlen() > 0 {
		orphans = append(orphans, q.pop())
	}
	// Release the subscriber's in-flight estimates from its nodes so the
	// capacity does not leak.
	for nodeID, est := range q.estimated {
		if nd, ok := s.nodes[nodeID]; ok {
			nd.outstanding = nd.outstanding.Sub(est).ClampNonNegative()
			nd.drained = nd.drained.Min(nd.outstanding)
		}
	}
	delete(s.subs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if s.start >= len(s.order) {
		s.start = 0
	}
	return orphans, nil
}

// Nodes returns the node IDs in deterministic order.
func (s *Scheduler) Nodes() []NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]NodeID, len(s.nodeOrder))
	copy(out, s.nodeOrder)
	return out
}
