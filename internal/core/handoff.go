package core

import (
	"fmt"
	"slices"

	"gage/internal/qos"
)

// This file is the scheduler's partition-handoff surface: the multi-RDN
// front-end tier (internal/frontier) moves whole tenant groups between
// scheduler instances — at lease-expiry takeover, at deposition of a
// front end that lost its lease, and at graceful handback after recovery.
// The contract is built around the credit loop's exactly-once settlement:
//
//   - Export captures the reservation-account state (balance, usage
//     predictor) after settling lazily accrued credit, so the snapshot is
//     exactly what eager per-tick crediting would have produced.
//   - Import registers the subscriber at the importer's CURRENT cycle:
//     credit accrual resumes at the takeover epoch, so the span during
//     which the partition had no live owner earns no retroactive credit.
//   - In-flight charges are NOT exported. A dispatch settles on the
//     scheduler that made it (completion, release, or fence); usage
//     reported after the handoff debits the new owner's balance once.

// SubscriberState is one subscriber's exportable credit-loop state: the
// definition needed to re-register it plus the reservation-account state a
// takeover restores. It is the unit of the frontier tier's accounting
// snapshots, so it marshals to JSON for the live lease channel.
type SubscriberState struct {
	ID          qos.SubscriberID `json:"id"`
	Reservation qos.GRPS         `json:"res"`
	QueueLimit  int              `json:"limit"`
	Group       string           `json:"group"`
	// Balance is the reserved-resource account at export time, credit
	// settled. Import clamps it to the importer's credit band.
	Balance qos.Vector `json:"balance"`
	// Predicted is the EWMA per-request usage estimate; a zero vector means
	// "never materialized" and the importer keeps its generic-cost prior.
	Predicted qos.Vector `json:"predicted"`
}

// ExportGroup snapshots every registered member of a group in subscriber-ID
// order. Materialized members settle credit first; never-materialized ones
// export their accrued-credit balance exactly as Balance() reports it. The
// scheduler is not modified beyond credit settlement.
func (s *Scheduler) ExportGroup(group string) ([]SubscriberState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[group]
	if !ok {
		return nil, fmt.Errorf("core: unknown group %q", group)
	}
	ids := make([]qos.SubscriberID, 0, g.members)
	for id, def := range s.defs {
		if def.grp == g {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	out := make([]SubscriberState, 0, len(ids))
	for _, id := range ids {
		def := s.defs[id]
		st := SubscriberState{
			ID:          id,
			Reservation: def.res,
			QueueLimit:  def.limit,
			Group:       group,
		}
		if q, ok := s.subs[id]; ok {
			s.settleCredit(q)
			st.Balance = q.balance
			st.Predicted = q.predicted
		} else {
			// Never materialized: pure accrued credit, same math Balance()
			// uses; the predictor is still the prior (zero ⇒ keep prior).
			k := s.cycleNum - def.regCycle
			if k > 0 {
				credit := def.res.PerCycle(s.cfg.Cycle)
				if k > 1 {
					credit = credit.Scale(float64(k))
				}
				lim := def.res.PerCycle(s.cfg.CreditWindow)
				st.Balance = credit.Min(lim).Max(lim.Neg())
			}
		}
		out = append(out, st)
	}
	return out, nil
}

// ImportSubscriberState registers a subscriber from an exported snapshot and
// restores its reservation-account state. Registration happens at the
// importer's current cycle, so credit accrual resumes at the takeover epoch —
// the ownerless span between snapshot and import earns nothing. The restored
// balance is clamped to the importer's credit band. It fails on duplicates
// and invalid definitions; the caller updates its classifier/ownership map.
func (s *Scheduler) ImportSubscriberState(st SubscriberState) error {
	sub := qos.Subscriber{
		ID:          st.ID,
		Reservation: st.Reservation,
		QueueLimit:  st.QueueLimit,
		Group:       st.Group,
	}
	if err := sub.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.defs[st.ID]; dup {
		return fmt.Errorf("core: subscriber %q already registered", st.ID)
	}
	s.register(sub)
	if st.Balance.IsZero() && st.Predicted.IsZero() {
		// Definition-only import: stay lazy, materialize on first traffic.
		return nil
	}
	q := s.materialize(st.ID, s.defs[st.ID])
	q.balance = s.clampBalance(q, st.Balance)
	if !st.Predicted.IsZero() {
		q.predicted = st.Predicted
	}
	return nil
}

// RemoveGroup unregisters every member of a group and returns their queued
// (undispatched) requests in subscriber-ID order, FIFO within each — the
// redispatchable backlog a deposed front end hands to the partition's new
// owner. Members' in-flight estimates are released from the nodes exactly as
// RemoveSubscriber does, so a front end that keeps serving its remaining
// partitions leaks no phantom node load.
func (s *Scheduler) RemoveGroup(group string) ([]Request, error) {
	s.mu.Lock()
	g, ok := s.groups[group]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: unknown group %q", group)
	}
	ids := make([]qos.SubscriberID, 0, g.members)
	for id, def := range s.defs {
		if def.grp == g {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	s.mu.Unlock()
	var orphans []Request
	for _, id := range ids {
		reqs, err := s.RemoveSubscriber(id)
		if err != nil {
			return orphans, err
		}
		orphans = append(orphans, reqs...)
	}
	return orphans, nil
}

// SetNodeCapacity rescales a node's believed capacity — the frontier tier's
// rebalancing hook: each front end admits against its share of the physical
// node, and shares move when partition ownership does. The admission bound,
// optimistic per-cycle drain, and weighted bound are rederived; the node's
// health weight and in-flight accounting are untouched.
func (s *Scheduler) SetNodeCapacity(id NodeID, capacity qos.Vector) error {
	if capacity.AnyNegative() || capacity.IsZero() {
		return fmt.Errorf("core: node %d: capacity must be positive, got %v", id, capacity)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	nd, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	nd.capacity = capacity
	nd.bound = capacity.Scale(s.cfg.OutstandingWindow.Seconds())
	nd.perCycle = capacity.Scale(s.cfg.Cycle.Seconds())
	nd.weightedBound = nd.bound.Scale(nd.weight)
	return nil
}
