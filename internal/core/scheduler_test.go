package core

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"gage/internal/qos"
)

// fakeNode emulates one RPN for feedback-loop tests: it holds dispatched
// requests in FIFO order and, once per tick, completes as much work as its
// per-second capacity allows, returning the accounting message.
type fakeNode struct {
	id       NodeID
	capacity qos.Vector // per second
	inflight []fakeWork
}

type fakeWork struct {
	sub  qos.SubscriberID
	cost qos.Vector
}

func newFakeNode(id NodeID, capacity qos.Vector) *fakeNode {
	return &fakeNode{id: id, capacity: capacity}
}

// accept records a dispatch; cost is the request's true resource usage.
func (f *fakeNode) accept(sub qos.SubscriberID, cost qos.Vector) {
	f.inflight = append(f.inflight, fakeWork{sub: sub, cost: cost})
}

// tick completes up to cycle×capacity worth of work and returns the
// accounting message for the elapsed cycle.
func (f *fakeNode) tick(cycle time.Duration) UsageReport {
	budget := f.capacity.Scale(cycle.Seconds())
	rep := UsageReport{Node: f.id, BySubscriber: make(map[qos.SubscriberID]SubscriberUsage)}
	var done int
	for _, w := range f.inflight {
		if !budget.Dominates(w.cost) {
			break
		}
		budget = budget.Sub(w.cost)
		u := rep.BySubscriber[w.sub]
		u.Usage = u.Usage.Add(w.cost)
		u.Completed++
		rep.BySubscriber[w.sub] = u
		rep.Total = rep.Total.Add(w.cost)
		done++
	}
	f.inflight = f.inflight[done:]
	return rep
}

// nodeCap is a one-generic-request-per-10ms node: 100 GRPS.
func nodeCap() qos.Vector {
	return qos.Vector{CPUTime: time.Second, DiskTime: time.Second, NetBytes: 200_000}
}

func mustDirectory(t *testing.T, subs []qos.Subscriber) *qos.Directory {
	t.Helper()
	d, err := qos.NewDirectory(subs)
	if err != nil {
		t.Fatalf("NewDirectory: %v", err)
	}
	return d
}

func mustScheduler(t *testing.T, subs []qos.Subscriber, nodes []NodeConfig, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(mustDirectory(t, subs), nodes, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// arrivalAcc turns a fractional per-tick rate into integer arrivals.
type arrivalAcc struct {
	perTick float64
	carry   float64
	nextID  uint64
}

func (a *arrivalAcc) arrive() int {
	a.carry += a.perTick
	n := int(a.carry)
	a.carry -= float64(n)
	return n
}

// runLoop drives the scheduler with constant per-subscriber arrival rates
// against fake nodes for the given number of ticks, returning served
// generic-unit counts per subscriber (each request costs exactly one generic
// unit unless costs overrides it).
type loopResult struct {
	served  map[qos.SubscriberID]int
	dropped map[qos.SubscriberID]int
}

func runLoop(t *testing.T, s *Scheduler, nodes []*fakeNode, rates map[qos.SubscriberID]float64,
	costs map[qos.SubscriberID]qos.Vector, ticks, warmup int) loopResult {
	t.Helper()
	byID := make(map[NodeID]*fakeNode, len(nodes))
	for _, n := range nodes {
		byID[n.id] = n
	}
	accs := make(map[qos.SubscriberID]*arrivalAcc, len(rates))
	var id uint64
	for sub, r := range rates {
		accs[sub] = &arrivalAcc{perTick: r * s.Cycle().Seconds()}
	}
	res := loopResult{
		served:  make(map[qos.SubscriberID]int),
		dropped: make(map[qos.SubscriberID]int),
	}
	costOf := func(sub qos.SubscriberID) qos.Vector {
		if c, ok := costs[sub]; ok {
			return c
		}
		return qos.GenericCost()
	}
	subIDs := make([]qos.SubscriberID, 0, len(rates))
	for sub := range rates {
		subIDs = append(subIDs, sub)
	}
	// Deterministic order.
	for i := 0; i < len(subIDs); i++ {
		for j := i + 1; j < len(subIDs); j++ {
			if subIDs[j] < subIDs[i] {
				subIDs[i], subIDs[j] = subIDs[j], subIDs[i]
			}
		}
	}
	for tick := 0; tick < ticks; tick++ {
		for _, sub := range subIDs {
			arrivals := accs[sub].arrive()
			for i := 0; i < arrivals; i++ {
				id++
				err := s.Enqueue(Request{ID: id, Subscriber: sub})
				if errors.Is(err, ErrQueueFull) {
					if tick >= warmup {
						res.dropped[sub]++
					}
				} else if err != nil {
					t.Fatalf("Enqueue: %v", err)
				}
			}
		}
		for _, d := range s.Tick() {
			byID[d.Node].accept(d.Req.Subscriber, costOf(d.Req.Subscriber))
		}
		for _, n := range nodes {
			rep := n.tick(s.Cycle())
			if tick >= warmup {
				for sub, u := range rep.BySubscriber {
					res.served[sub] += u.Completed
				}
			}
			if err := s.ReportUsage(rep); err != nil {
				t.Fatalf("ReportUsage: %v", err)
			}
		}
	}
	return res
}

func TestNewValidation(t *testing.T) {
	dir := mustDirectory(t, []qos.Subscriber{{ID: "a", Reservation: 10}})
	if _, err := New(nil, []NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{}); err == nil {
		t.Error("nil directory must be rejected")
	}
	if _, err := New(dir, nil, Config{}); err != nil {
		t.Errorf("empty node pool must be accepted (grown later via AddNode): %v", err)
	}
	if _, err := New(dir, []NodeConfig{{ID: 1, Capacity: nodeCap()}, {ID: 1, Capacity: nodeCap()}}, Config{}); err == nil {
		t.Error("duplicate node IDs must be rejected")
	}
	if _, err := New(dir, []NodeConfig{{ID: 1}}, Config{}); err == nil {
		t.Error("zero node capacity must be rejected")
	}
	if _, err := New(dir, []NodeConfig{{ID: 1, Capacity: qos.Vector{CPUTime: -1}}}, Config{}); err == nil {
		t.Error("negative node capacity must be rejected")
	}
}

func TestConfigDefaults(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 10}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	if s.Cycle() != DefaultCycle {
		t.Errorf("default cycle = %v, want %v", s.Cycle(), DefaultCycle)
	}
}

func TestEnqueueUnknownSubscriber(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 10}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	err := s.Enqueue(Request{ID: 1, Subscriber: "ghost"})
	if !errors.Is(err, ErrUnknownSubscriber) {
		t.Errorf("err = %v, want ErrUnknownSubscriber", err)
	}
}

func TestEnqueueDropsAtQueueLimit(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 10, QueueLimit: 3}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	for i := uint64(1); i <= 3; i++ {
		if err := s.Enqueue(Request{ID: i, Subscriber: "a"}); err != nil {
			t.Fatalf("Enqueue %d: %v", i, err)
		}
	}
	err := s.Enqueue(Request{ID: 4, Subscriber: "a"})
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
	if got := s.Dropped("a"); got != 1 {
		t.Errorf("Dropped = %d, want 1", got)
	}
	if got := s.QueueLen("a"); got != 3 {
		t.Errorf("QueueLen = %d, want 3", got)
	}
}

func TestUnderloadedSubscriberFullyServed(t *testing.T) {
	// One subscriber at 40 GRPS offered against a 100 GRPS reservation on a
	// 100 GRPS node: everything must be served, nothing dropped.
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 100}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	node := newFakeNode(1, nodeCap())
	res := runLoop(t, s, []*fakeNode{node},
		map[qos.SubscriberID]float64{"a": 40}, nil, 1000, 200)
	// 800 post-warmup ticks = 8 s at 40/s = 320 requests.
	served := res.served["a"]
	if served < 310 || served > 330 {
		t.Errorf("served = %d, want ≈320", served)
	}
	if res.dropped["a"] != 0 {
		t.Errorf("dropped = %d, want 0", res.dropped["a"])
	}
}

func TestWorkConservationBeyondReservation(t *testing.T) {
	// A single subscriber with a tiny reservation but an idle cluster gets
	// the spare capacity: offered 80 GRPS, reservation 10, node 100 GRPS.
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 10}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	node := newFakeNode(1, nodeCap())
	res := runLoop(t, s, []*fakeNode{node},
		map[qos.SubscriberID]float64{"a": 80}, nil, 1000, 200)
	served := float64(res.served["a"]) / 8.0 // per second
	if served < 75 || served > 85 {
		t.Errorf("served rate = %.1f GRPS, want ≈80 (work conservation)", served)
	}
}

func TestPerformanceIsolationUnderOverload(t *testing.T) {
	// Miniature Table 1: two subscribers on a 100 GRPS node. "vip" reserves
	// 70 and offers 70; "hog" reserves 10 and offers 200. vip must still see
	// ≈70 served; hog absorbs the ≈30 spare and drops the rest.
	s := mustScheduler(t,
		[]qos.Subscriber{
			{ID: "hog", Reservation: 10, QueueLimit: 64},
			{ID: "vip", Reservation: 70, QueueLimit: 64},
		},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	node := newFakeNode(1, nodeCap())
	res := runLoop(t, s, []*fakeNode{node},
		map[qos.SubscriberID]float64{"vip": 70, "hog": 200}, nil, 2000, 500)
	const sec = 15.0 // 1500 post-warmup ticks
	vip := float64(res.served["vip"]) / sec
	hog := float64(res.served["hog"]) / sec
	if vip < 66 || vip > 74 {
		t.Errorf("vip served = %.1f GRPS, want ≈70 despite hog overload", vip)
	}
	if hog < 24 || hog > 36 {
		t.Errorf("hog served = %.1f GRPS, want ≈30 (the spare)", hog)
	}
	if res.dropped["hog"] == 0 {
		t.Error("hog must drop its excess load")
	}
	if res.dropped["vip"] != 0 {
		t.Errorf("vip dropped = %d, want 0", res.dropped["vip"])
	}
}

func TestSpareSharedProportionallyToReservations(t *testing.T) {
	// Miniature Table 2: both subscribers overloaded; spare must split in
	// proportion to reservations (25:20), not input loads.
	s := mustScheduler(t,
		[]qos.Subscriber{
			{ID: "s1", Reservation: 25, QueueLimit: 64},
			{ID: "s2", Reservation: 20, QueueLimit: 64},
		},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	node := newFakeNode(1, nodeCap())
	res := runLoop(t, s, []*fakeNode{node},
		map[qos.SubscriberID]float64{"s1": 80, "s2": 90}, nil, 3000, 500)
	const sec = 25.0
	s1 := float64(res.served["s1"]) / sec
	s2 := float64(res.served["s2"]) / sec
	spare1, spare2 := s1-25, s2-20
	if spare1 <= 0 || spare2 <= 0 {
		t.Fatalf("both must receive spare; got %.1f and %.1f", spare1, spare2)
	}
	ratio := spare1 / spare2
	if math.Abs(ratio-1.25) > 0.15 {
		t.Errorf("spare ratio = %.3f, want ≈1.25 (reservation-proportional, not load-proportional)", ratio)
	}
	total := s1 + s2
	if total < 95 || total > 105 {
		t.Errorf("total served = %.1f GRPS, want ≈100 (full capacity)", total)
	}
}

func TestNodeLoadBalancing(t *testing.T) {
	// Four identical nodes: dispatches must spread nearly evenly.
	nodes := []NodeConfig{
		{ID: 1, Capacity: nodeCap()},
		{ID: 2, Capacity: nodeCap()},
		{ID: 3, Capacity: nodeCap()},
		{ID: 4, Capacity: nodeCap()},
	}
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 300}},
		nodes, Config{})
	fakes := []*fakeNode{
		newFakeNode(1, nodeCap()), newFakeNode(2, nodeCap()),
		newFakeNode(3, nodeCap()), newFakeNode(4, nodeCap()),
	}
	counts := make(map[NodeID]int)
	acc := arrivalAcc{perTick: 300 * s.Cycle().Seconds()}
	var id uint64
	byID := map[NodeID]*fakeNode{1: fakes[0], 2: fakes[1], 3: fakes[2], 4: fakes[3]}
	for tick := 0; tick < 1000; tick++ {
		arrivals := acc.arrive()
		for i := 0; i < arrivals; i++ {
			id++
			if err := s.Enqueue(Request{ID: id, Subscriber: "a"}); err != nil {
				t.Fatalf("Enqueue: %v", err)
			}
		}
		for _, d := range s.Tick() {
			counts[d.Node]++
			byID[d.Node].accept(d.Req.Subscriber, qos.GenericCost())
		}
		for _, n := range fakes {
			if err := s.ReportUsage(n.tick(s.Cycle())); err != nil {
				t.Fatalf("ReportUsage: %v", err)
			}
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no dispatches")
	}
	for id, c := range counts {
		share := float64(c) / float64(total)
		if math.Abs(share-0.25) > 0.05 {
			t.Errorf("node %d share = %.3f, want ≈0.25", id, share)
		}
	}
}

func twoNodes() []NodeConfig {
	return []NodeConfig{
		{ID: 1, Capacity: nodeCap()},
		{ID: 2, Capacity: nodeCap()},
	}
}

func TestAffinityDispatchesToSameNode(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 1000}},
		twoNodes(), Config{})
	// Few enough requests to fit the preferred node's outstanding bound.
	for i := uint64(1); i <= 4; i++ {
		if err := s.Enqueue(Request{ID: i, Subscriber: "a", Affinity: 42}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	nodes := make(map[NodeID]int)
	for _, d := range s.Tick() {
		nodes[d.Node]++
	}
	if len(nodes) != 1 {
		t.Errorf("affine requests spread across %d nodes, want 1 (%v)", len(nodes), nodes)
	}
}

func TestAffinityFallsBackWhenNodeFull(t *testing.T) {
	// A tiny outstanding window: the preferred node fills after a few
	// requests; the rest must overflow to the other node, not stall.
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 10000, QueueLimit: 4096}},
		twoNodes(), Config{OutstandingWindow: 50 * time.Millisecond})
	for i := uint64(1); i <= 10; i++ {
		if err := s.Enqueue(Request{ID: i, Subscriber: "a", Affinity: 7}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	nodes := make(map[NodeID]int)
	for _, d := range s.Tick() {
		nodes[d.Node]++
	}
	if len(nodes) != 2 {
		t.Errorf("overflow must spill to the second node; got %v", nodes)
	}
	// The preferred node (7 % 2 = 1 → second in sorted order = node 2)
	// takes its bound's worth (5 units) before spilling.
	total := nodes[1] + nodes[2]
	if total != 10 {
		t.Errorf("dispatched %d, want 10", total)
	}
}

func TestDisabledNodeReceivesNoDispatches(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 1000}},
		twoNodes(), Config{})
	if err := s.SetNodeEnabled(1, false); err != nil {
		t.Fatalf("SetNodeEnabled: %v", err)
	}
	if s.NodeEnabled(1) {
		t.Error("node 1 must report disabled")
	}
	for i := uint64(1); i <= 4; i++ {
		if err := s.Enqueue(Request{ID: i, Subscriber: "a"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	for _, d := range s.Tick() {
		if d.Node == 1 {
			t.Fatalf("request %d dispatched to disabled node 1", d.Req.ID)
		}
	}
	// Re-enabled nodes participate again.
	if err := s.SetNodeEnabled(1, true); err != nil {
		t.Fatalf("re-enable: %v", err)
	}
	if !s.NodeEnabled(1) {
		t.Error("node 1 must report enabled")
	}
	if err := s.SetNodeEnabled(99, false); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node = %v, want ErrUnknownNode", err)
	}
}

func TestAllNodesDisabledLeavesRequestsQueued(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 1000}},
		twoNodes(), Config{})
	_ = s.SetNodeEnabled(1, false)
	_ = s.SetNodeEnabled(2, false)
	if err := s.Enqueue(Request{ID: 1, Subscriber: "a"}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	if got := len(s.Tick()); got != 0 {
		t.Errorf("dispatches with all nodes down = %d, want 0", got)
	}
	if got := s.QueueLen("a"); got != 1 {
		t.Errorf("queue length = %d, want 1 (request preserved)", got)
	}
}

func TestAddSubscriberAtRuntime(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 50}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	if err := s.AddSubscriber(qos.Subscriber{ID: "b", Reservation: 30}); err != nil {
		t.Fatalf("AddSubscriber: %v", err)
	}
	if err := s.AddSubscriber(qos.Subscriber{ID: "b", Reservation: 30}); err == nil {
		t.Error("duplicate AddSubscriber must fail")
	}
	if err := s.AddSubscriber(qos.Subscriber{Reservation: 1}); err == nil {
		t.Error("invalid subscriber must be rejected")
	}
	if err := s.Enqueue(Request{ID: 1, Subscriber: "b"}); err != nil {
		t.Fatalf("Enqueue for new subscriber: %v", err)
	}
	ds := s.Tick()
	if len(ds) != 1 || ds[0].Req.Subscriber != "b" {
		t.Errorf("dispatches = %+v, want b's request", ds)
	}
}

func TestRemoveSubscriberReturnsOrphans(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{
			{ID: "a", Reservation: 50},
			{ID: "b", Reservation: 50},
		},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	for i := uint64(1); i <= 3; i++ {
		if err := s.Enqueue(Request{ID: i, Subscriber: "b"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	orphans, err := s.RemoveSubscriber("b")
	if err != nil {
		t.Fatalf("RemoveSubscriber: %v", err)
	}
	if len(orphans) != 3 {
		t.Errorf("orphans = %d, want 3", len(orphans))
	}
	if err := s.Enqueue(Request{ID: 9, Subscriber: "b"}); !errors.Is(err, ErrUnknownSubscriber) {
		t.Errorf("enqueue after removal = %v, want ErrUnknownSubscriber", err)
	}
	if _, err := s.RemoveSubscriber("b"); !errors.Is(err, ErrUnknownSubscriber) {
		t.Errorf("double removal = %v, want ErrUnknownSubscriber", err)
	}
	// The surviving subscriber still schedules normally.
	if err := s.Enqueue(Request{ID: 10, Subscriber: "a"}); err != nil {
		t.Fatalf("Enqueue a: %v", err)
	}
	if got := len(s.Tick()); got != 1 {
		t.Errorf("dispatches after removal = %d, want 1", got)
	}
}

func TestRemoveSubscriberReleasesNodeCapacity(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{
			{ID: "a", Reservation: 1000},
			{ID: "b", Reservation: 1000},
		},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	// Fill the node's outstanding bound with b's in-flight work.
	for i := uint64(1); i <= 8; i++ {
		if err := s.Enqueue(Request{ID: i, Subscriber: "b"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	dispatched := len(s.Tick())
	if dispatched == 0 {
		t.Fatal("expected some dispatches")
	}
	before, _ := s.Outstanding(1)
	if before.IsZero() {
		t.Fatal("outstanding must be non-zero with in-flight work")
	}
	if _, err := s.RemoveSubscriber("b"); err != nil {
		t.Fatalf("RemoveSubscriber: %v", err)
	}
	after, _ := s.Outstanding(1)
	if !after.IsZero() {
		t.Errorf("outstanding after removing its only user = %v, want zero", after)
	}
}

func TestReportUsageUnknownNode(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 10}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	err := s.ReportUsage(UsageReport{Node: 99})
	if !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v, want ErrUnknownNode", err)
	}
}

func TestReportUsageIgnoresUnknownSubscriber(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 10}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	err := s.ReportUsage(UsageReport{
		Node: 1,
		BySubscriber: map[qos.SubscriberID]SubscriberUsage{
			"ghost": {Usage: qos.GenericCost(), Completed: 1},
		},
	})
	if err != nil {
		t.Errorf("unknown subscriber in report must be skipped, got %v", err)
	}
}

func TestPredictorConvergesToActualUsage(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 50}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	actual := qos.Vector{CPUTime: 4 * time.Millisecond, DiskTime: 6 * time.Millisecond, NetBytes: 9000}
	for i := 0; i < 50; i++ {
		err := s.ReportUsage(UsageReport{
			Node:  1,
			Total: actual,
			BySubscriber: map[qos.SubscriberID]SubscriberUsage{
				"a": {Usage: actual, Completed: 1},
			},
		})
		if err != nil {
			t.Fatalf("ReportUsage: %v", err)
		}
	}
	got, ok := s.Predicted("a")
	if !ok {
		t.Fatal("Predicted must find subscriber a")
	}
	if math.Abs(float64(got.CPUTime-actual.CPUTime)) > float64(100*time.Microsecond) ||
		math.Abs(float64(got.DiskTime-actual.DiskTime)) > float64(100*time.Microsecond) ||
		math.Abs(float64(got.NetBytes-actual.NetBytes)) > 200 {
		t.Errorf("predicted = %v, want ≈%v", got, actual)
	}
}

func TestIdleCreditCappedAtWindow(t *testing.T) {
	// After a long idle period, the banked balance must be clamped to
	// reservation × CreditWindow — not the whole idle period's credit.
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 50, QueueLimit: 4096}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}},
		Config{CreditWindow: time.Second})
	// 20 s idle: only credit accrues.
	for i := 0; i < 2000; i++ {
		s.Tick()
	}
	got, ok := s.Balance("a")
	if !ok {
		t.Fatal("Balance must find subscriber a")
	}
	want := qos.GRPS(50).PerCycle(time.Second) // 500ms CPU, 500ms disk, 100KB
	if got != want {
		t.Errorf("banked balance after long idle = %v, want clamp %v", got, want)
	}
}

func TestBalanceFloorBoundsDebt(t *testing.T) {
	// Heavy spare usage must not drive the balance arbitrarily negative:
	// the floor is −reservation×CreditWindow so the guarantee recovers
	// within one window after overload ends.
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 50}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}},
		Config{CreditWindow: time.Second})
	huge := qos.GenericCost().Scale(1000)
	for i := 0; i < 20; i++ {
		err := s.ReportUsage(UsageReport{
			Node:  1,
			Total: huge,
			BySubscriber: map[qos.SubscriberID]SubscriberUsage{
				"a": {Usage: huge, Completed: 1000},
			},
		})
		if err != nil {
			t.Fatalf("ReportUsage: %v", err)
		}
	}
	got, _ := s.Balance("a")
	floor := qos.GRPS(50).PerCycle(time.Second).Neg()
	if got != floor {
		t.Errorf("balance after massive usage = %v, want floor %v", got, floor)
	}
}

func TestGateReportedDispatchesWholeQueueWhileBalanceNonNegative(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 1, QueueLimit: 4096}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap().Scale(100)}},
		Config{Gate: GateReported, OutstandingWindow: 10 * time.Second})
	for i := uint64(1); i <= 500; i++ {
		if err := s.Enqueue(Request{ID: i, Subscriber: "a"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	// Balance starts at zero and one cycle's credit arrives: the reported
	// gate sees a non-negative balance and drains the whole queue at once.
	got := len(s.Tick())
	if got != 500 {
		t.Errorf("reported-gate dispatch = %d, want 500 (whole queue)", got)
	}
	// Now a report lands the debt; the gate must slam shut.
	err := s.ReportUsage(UsageReport{
		Node:  1,
		Total: qos.GenericCost().Scale(500),
		BySubscriber: map[qos.SubscriberID]SubscriberUsage{
			"a": {Usage: qos.GenericCost().Scale(500), Completed: 500},
		},
	})
	if err != nil {
		t.Fatalf("ReportUsage: %v", err)
	}
	for i := uint64(501); i <= 600; i++ {
		if err := s.Enqueue(Request{ID: i, Subscriber: "a"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	// With a deep debt, the reservation round dispatches nothing; only the
	// spare round (idle cluster) keeps serving — so exclude it by loading
	// the node bound? Here the cluster is idle, so spare will serve; what
	// must hold is that the *reservation* gate is shut, i.e. the balance is
	// negative.
	bal, _ := s.Balance("a")
	if !bal.AnyNegative() {
		t.Errorf("balance after debt = %v, want negative", bal)
	}
}

func TestDeterministicDispatchSequence(t *testing.T) {
	run := func() []uint64 {
		s := mustScheduler(t,
			[]qos.Subscriber{
				{ID: "a", Reservation: 30},
				{ID: "b", Reservation: 60},
			},
			[]NodeConfig{{ID: 1, Capacity: nodeCap()}, {ID: 2, Capacity: nodeCap()}}, Config{})
		nodes := []*fakeNode{newFakeNode(1, nodeCap()), newFakeNode(2, nodeCap())}
		byID := map[NodeID]*fakeNode{1: nodes[0], 2: nodes[1]}
		var ids []uint64
		var id uint64
		for tick := 0; tick < 200; tick++ {
			for i := 0; i < 2; i++ {
				id++
				sub := qos.SubscriberID("a")
				if id%3 == 0 {
					sub = "b"
				}
				_ = s.Enqueue(Request{ID: id, Subscriber: sub})
			}
			for _, d := range s.Tick() {
				ids = append(ids, d.Req.ID)
				byID[d.Node].accept(d.Req.Subscriber, qos.GenericCost())
			}
			for _, nd := range nodes {
				_ = s.ReportUsage(nd.tick(s.Cycle()))
			}
		}
		return ids
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("same inputs must produce identical dispatch sequences")
	}
}

func TestFIFOWithinSubscriber(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 1000}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap().Scale(10)}}, Config{})
	for i := uint64(1); i <= 50; i++ {
		if err := s.Enqueue(Request{ID: i, Subscriber: "a"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	var got []uint64
	for _, d := range s.Tick() {
		got = append(got, d.Req.ID)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("dispatch order not FIFO: %v", got)
		}
	}
}

func TestDispatchNeverExceedsEnqueued(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir, err := qos.NewDirectory([]qos.Subscriber{
			{ID: "a", Reservation: qos.GRPS(1 + rng.Intn(100)), QueueLimit: 32},
			{ID: "b", Reservation: qos.GRPS(1 + rng.Intn(100)), QueueLimit: 32},
		})
		if err != nil {
			return false
		}
		s, err := New(dir, []NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
		if err != nil {
			return false
		}
		node := newFakeNode(1, nodeCap())
		var enq, disp uint64
		for tick := 0; tick < 100; tick++ {
			for i := 0; i < rng.Intn(4); i++ {
				enq++
				sub := qos.SubscriberID("a")
				if rng.Intn(2) == 0 {
					sub = "b"
				}
				if err := s.Enqueue(Request{ID: enq, Subscriber: sub}); err != nil &&
					!errors.Is(err, ErrQueueFull) {
					return false
				}
			}
			for _, d := range s.Tick() {
				disp++
				node.accept(d.Req.Subscriber, qos.GenericCost())
			}
			if err := s.ReportUsage(node.tick(s.Cycle())); err != nil {
				return false
			}
		}
		queued := s.QueueLen("a") + s.QueueLen("b")
		droppedA := s.Dropped("a")
		droppedB := s.Dropped("b")
		return disp+uint64(queued)+droppedA+droppedB == enq &&
			disp == s.TotalDispatched()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: with two permanently backlogged subscribers of random
// reservations on a saturated node, the spare splits in proportion to the
// reservations (the Table-2 policy), for any reservation pair.
func TestSpareProportionalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r1 := qos.GRPS(10 + rng.Intn(30))
		r2 := qos.GRPS(10 + rng.Intn(30))
		dir, err := qos.NewDirectory([]qos.Subscriber{
			{ID: "s1", Reservation: r1, QueueLimit: 64},
			{ID: "s2", Reservation: r2, QueueLimit: 64},
		})
		if err != nil {
			return false
		}
		s, err := New(dir, []NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
		if err != nil {
			return false
		}
		node := newFakeNode(1, nodeCap())
		served := map[qos.SubscriberID]int{}
		var id uint64
		for tick := 0; tick < 3000; tick++ {
			// Keep both queues saturated.
			for _, sub := range []qos.SubscriberID{"s1", "s2"} {
				for s.QueueLen(sub) < 32 {
					id++
					if err := s.Enqueue(Request{ID: id, Subscriber: sub}); err != nil {
						return false
					}
				}
			}
			for _, d := range s.Tick() {
				node.accept(d.Req.Subscriber, qos.GenericCost())
			}
			rep := node.tick(s.Cycle())
			if tick >= 500 {
				for sub, u := range rep.BySubscriber {
					served[sub] += u.Completed
				}
			}
			if err := s.ReportUsage(rep); err != nil {
				return false
			}
		}
		// Served_i = r_i + spare_i with spare ∝ r_i ⇒ served ratio = r ratio.
		gotRatio := float64(served["s1"]) / float64(served["s2"])
		wantRatio := float64(r1) / float64(r2)
		return gotRatio > wantRatio*0.9 && gotRatio < wantRatio*1.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestOutstandingReleasedByReports(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 100}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	if err := s.Enqueue(Request{ID: 1, Subscriber: "a"}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	ds := s.Tick()
	if len(ds) != 1 {
		t.Fatalf("dispatched %d, want 1", len(ds))
	}
	out, _ := s.Outstanding(1)
	if out.IsZero() {
		t.Error("outstanding must grow on dispatch")
	}
	err := s.ReportUsage(UsageReport{
		Node:  1,
		Total: ds[0].Predicted,
		BySubscriber: map[qos.SubscriberID]SubscriberUsage{
			"a": {Usage: ds[0].Predicted, Completed: 1},
		},
	})
	if err != nil {
		t.Fatalf("ReportUsage: %v", err)
	}
	out, _ = s.Outstanding(1)
	if !out.IsZero() {
		t.Errorf("outstanding after full report = %v, want zero", out)
	}
}

func TestNodesListedDeterministically(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 10}},
		[]NodeConfig{
			{ID: 3, Capacity: nodeCap()},
			{ID: 1, Capacity: nodeCap()},
			{ID: 2, Capacity: nodeCap()},
		}, Config{})
	got := s.Nodes()
	want := []NodeID{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Nodes() = %v, want %v", got, want)
	}
}

func TestQueueLenUnknownSubscriber(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 10}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	if got := s.QueueLen("ghost"); got != 0 {
		t.Errorf("QueueLen(ghost) = %d, want 0", got)
	}
	if got := s.Dropped("ghost"); got != 0 {
		t.Errorf("Dropped(ghost) = %d, want 0", got)
	}
	if _, ok := s.Predicted("ghost"); ok {
		t.Error("Predicted(ghost) must miss")
	}
	if _, ok := s.Outstanding(99); ok {
		t.Error("Outstanding(99) must miss")
	}
}

func TestCancelQueuedRemovesFromFIFO(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 100}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	for id := uint64(1); id <= 3; id++ {
		if err := s.Enqueue(Request{ID: id, Subscriber: "a"}); err != nil {
			t.Fatalf("Enqueue %d: %v", id, err)
		}
	}
	if !s.CancelQueued("a", 2) {
		t.Fatal("CancelQueued(2) = false, want true for a queued request")
	}
	if got := s.QueueLen("a"); got != 2 {
		t.Errorf("QueueLen = %d after cancel, want 2", got)
	}
	if s.CancelQueued("a", 2) {
		t.Error("second CancelQueued(2) must miss")
	}
	if s.CancelQueued("ghost", 1) {
		t.Error("CancelQueued on unknown subscriber must miss")
	}
	// The canceled request must never dispatch; the others keep FIFO order.
	ds := s.Tick()
	var ids []uint64
	for _, d := range ds {
		ids = append(ids, d.Req.ID)
	}
	if !reflect.DeepEqual(ids, []uint64{1, 3}) {
		t.Errorf("dispatched IDs = %v, want [1 3]", ids)
	}
}

func TestReleaseDispatchReclaimsCharge(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 100}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	if err := s.Enqueue(Request{ID: 7, Subscriber: "a"}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	ds := s.Tick()
	if len(ds) != 1 {
		t.Fatalf("dispatched %d, want 1", len(ds))
	}
	if out, _ := s.Outstanding(1); out.IsZero() {
		t.Fatal("outstanding must grow on dispatch")
	}
	if s.ReleaseDispatch("a", 1, 99) {
		t.Error("ReleaseDispatch with wrong request ID must miss")
	}
	if s.ReleaseDispatch("a", 2, 7) {
		t.Error("ReleaseDispatch with unknown node must miss")
	}
	if !s.ReleaseDispatch("a", 1, 7) {
		t.Fatal("ReleaseDispatch = false, want true for an in-flight charge")
	}
	if out, _ := s.Outstanding(1); !out.IsZero() {
		t.Errorf("outstanding after release = %v, want zero", out)
	}
	if s.ReleaseDispatch("a", 1, 7) {
		t.Error("double ReleaseDispatch must miss")
	}
	// A later (empty) accounting report must not go negative or panic.
	if err := s.ReportUsage(UsageReport{Node: 1}); err != nil {
		t.Fatalf("ReportUsage: %v", err)
	}
}

func TestRedispatchMovesChargeToAlternateNode(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 100}},
		[]NodeConfig{
			{ID: 1, Capacity: nodeCap()},
			{ID: 2, Capacity: nodeCap()},
		}, Config{})
	if err := s.Enqueue(Request{ID: 5, Subscriber: "a"}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	ds := s.Tick()
	if len(ds) != 1 {
		t.Fatalf("dispatched %d, want 1", len(ds))
	}
	from := ds[0].Node
	alt, ok := s.Redispatch("a", 5, from)
	if !ok {
		t.Fatal("Redispatch = false, want an alternate node")
	}
	if alt == from {
		t.Fatalf("Redispatch returned the failed node %d", from)
	}
	if out, _ := s.Outstanding(from); !out.IsZero() {
		t.Errorf("failed node outstanding = %v, want zero after redispatch", out)
	}
	if out, _ := s.Outstanding(alt); out.IsZero() {
		t.Error("alternate node must carry the moved charge")
	}
	// The moved charge settles via a normal accounting report on the
	// alternate node.
	err := s.ReportUsage(UsageReport{
		Node: alt,
		BySubscriber: map[qos.SubscriberID]SubscriberUsage{
			"a": {Usage: ds[0].Predicted, Completed: 1},
		},
	})
	if err != nil {
		t.Fatalf("ReportUsage: %v", err)
	}
	if out, _ := s.Outstanding(alt); !out.IsZero() {
		t.Errorf("alternate outstanding after report = %v, want zero", out)
	}
}

func TestRedispatchWithoutAlternateReleasesCharge(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 100}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	if err := s.Enqueue(Request{ID: 5, Subscriber: "a"}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	if got := len(s.Tick()); got != 1 {
		t.Fatalf("dispatched %d, want 1", got)
	}
	if _, ok := s.Redispatch("a", 5, 1); ok {
		t.Fatal("Redispatch with a single node must fail (no alternate)")
	}
	// Even a failed redispatch must reclaim the charge: the caller is
	// about to 502 the request, so nothing will ever complete it.
	if out, _ := s.Outstanding(1); !out.IsZero() {
		t.Errorf("outstanding after failed redispatch = %v, want zero", out)
	}
	if _, ok := s.Redispatch("a", 5, 1); ok {
		t.Error("second Redispatch must miss (charge already gone)")
	}
}

func TestNodeWeightScalesAdmissionBound(t *testing.T) {
	// One node, default 50 ms outstanding window over a 100 GRPS capacity:
	// the full-weight bound admits exactly 5 generic requests per tick.
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 1000}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	for i := uint64(1); i <= 10; i++ {
		if err := s.Enqueue(Request{ID: i, Subscriber: "a"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	if err := s.SetNodeWeight(1, 0.4); err != nil {
		t.Fatalf("SetNodeWeight: %v", err)
	}
	if got := len(s.Tick()); got != 2 {
		t.Errorf("dispatches at weight 0.4 = %d, want 2 (bound scaled 5 -> 2)", got)
	}
	// Restoring full weight opens the rest of the bound; the outstanding
	// charge from the first tick still counts against it.
	if err := s.SetNodeWeight(1, 1); err != nil {
		t.Fatalf("SetNodeWeight: %v", err)
	}
	// 5-unit bound minus 2 outstanding, plus one unit the optimistic drain
	// assumes finished during the first cycle.
	if got := len(s.Tick()); got != 4 {
		t.Errorf("dispatches after restoring weight = %d, want 4", got)
	}
}

func TestNodeWeightZeroBehavesLikeDisabled(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 1000}},
		twoNodes(), Config{})
	if err := s.SetNodeWeight(1, 0); err != nil {
		t.Fatalf("SetNodeWeight: %v", err)
	}
	if s.NodeEnabled(1) {
		t.Error("weight-0 node must report disabled")
	}
	for i := uint64(1); i <= 4; i++ {
		if err := s.Enqueue(Request{ID: i, Subscriber: "a"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	for _, d := range s.Tick() {
		if d.Node == 1 {
			t.Fatalf("request %d dispatched to weight-0 node", d.Req.ID)
		}
	}
	// The binary wrapper restores full weight.
	if err := s.SetNodeEnabled(1, true); err != nil {
		t.Fatalf("SetNodeEnabled: %v", err)
	}
	if w, ok := s.NodeWeight(1); !ok || w != 1 {
		t.Errorf("weight after SetNodeEnabled(true) = %v/%v, want 1", w, ok)
	}
}

func TestSetNodeWeightClampsAndRejectsUnknown(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 100}},
		twoNodes(), Config{})
	if err := s.SetNodeWeight(1, -0.5); err != nil {
		t.Fatalf("SetNodeWeight(-0.5): %v", err)
	}
	if w, _ := s.NodeWeight(1); w != 0 {
		t.Errorf("weight after -0.5 = %v, want clamped 0", w)
	}
	if err := s.SetNodeWeight(1, 7); err != nil {
		t.Fatalf("SetNodeWeight(7): %v", err)
	}
	if w, _ := s.NodeWeight(1); w != 1 {
		t.Errorf("weight after 7 = %v, want clamped 1", w)
	}
	if err := s.SetNodeWeight(99, 1); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node = %v, want ErrUnknownNode", err)
	}
	if _, ok := s.NodeWeight(99); ok {
		t.Error("NodeWeight(99) must report not-found")
	}
}

func TestAffinityRespectsNodeWeight(t *testing.T) {
	s := mustScheduler(t,
		[]qos.Subscriber{{ID: "a", Reservation: 1000}},
		twoNodes(), Config{})
	// Affinity 7 prefers node 2 (7 % 2 = 1 -> second in sorted order).
	if err := s.SetNodeWeight(2, 0); err != nil {
		t.Fatalf("SetNodeWeight: %v", err)
	}
	for i := uint64(1); i <= 4; i++ {
		if err := s.Enqueue(Request{ID: i, Subscriber: "a", Affinity: 7}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	ds := s.Tick()
	if len(ds) == 0 {
		t.Fatal("no dispatches with a healthy fallback node")
	}
	for _, d := range ds {
		if d.Node == 2 {
			t.Fatalf("request %d followed affinity onto a weight-0 node", d.Req.ID)
		}
	}
}
