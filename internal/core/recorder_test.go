package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gage/internal/flightrec"
	"gage/internal/qos"
)

// recorderSched builds a scheduler with a recorder attached, three
// subscribers and two nodes.
func recorderSched(t *testing.T) (*Scheduler, *flightrec.Recorder) {
	t.Helper()
	dir, err := qos.NewDirectory([]qos.Subscriber{
		{ID: "a", Hosts: []string{"a.example"}, Reservation: 100},
		{ID: "b", Hosts: []string{"b.example"}, Reservation: 50},
		{ID: "c", Hosts: []string{"c.example"}, Reservation: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := New(dir, []NodeConfig{
		{ID: 1, Capacity: qos.GenericCost().Scale(500)},
		{ID: 2, Capacity: qos.GenericCost().Scale(500)},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := flightrec.NewRecorder(flightrec.Config{RingSize: 256})
	sched.SetRecorder(rec)
	return sched, rec
}

func TestRecordCycleContents(t *testing.T) {
	sched, rec := recorderSched(t)
	for i := uint64(1); i <= 5; i++ {
		if err := sched.Enqueue(Request{ID: i, Subscriber: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	disp := sched.Tick()
	if len(disp) == 0 {
		t.Fatal("no dispatches from a funded backlog")
	}
	recs := rec.Recent(1)
	if len(recs) != 1 {
		t.Fatalf("expected 1 record after 1 tick, got %d", len(recs))
	}
	// Records hold only subscribers with activity this cycle — idle b and c
	// are omitted so recording stays O(active).
	cr := recs[0]
	if len(cr.Subs) != 1 || len(cr.Nodes) != 2 {
		t.Fatalf("record shape = %d subs / %d nodes, want 1 / 2", len(cr.Subs), len(cr.Nodes))
	}
	var a *flightrec.SubRecord
	for i := range cr.Subs {
		if cr.Subs[i].ID == "a" {
			a = &cr.Subs[i]
		}
	}
	if a == nil {
		t.Fatal("no SubRecord for subscriber a")
	}
	if a.Reservation != 100 {
		t.Errorf("recorded reservation = %v, want 100", a.Reservation)
	}
	if got := a.Reserved + a.Spare; got != len(disp) {
		t.Errorf("recorded dispatch count = %d (reserved %d + spare %d), want %d",
			got, a.Reserved, a.Spare, len(disp))
	}
	if a.QueueLen != 5-len(disp) {
		t.Errorf("recorded queue length = %d, want %d", a.QueueLen, 5-len(disp))
	}
	if a.Credited.IsZero() {
		t.Error("recorded credit is zero after a credit-granting tick")
	}

	// Usage reported between ticks lands in the next cycle record, and the
	// per-cycle accumulators reset after each commit.
	use := qos.GenericCost().Scale(float64(len(disp)))
	err := sched.ReportUsage(UsageReport{
		Node:  disp[0].Node,
		Total: use,
		BySubscriber: map[qos.SubscriberID]SubscriberUsage{
			"a": {Usage: use, Completed: len(disp)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sched.Tick()
	cr = rec.Recent(1)[0]
	aa, _ := subOf(cr, "a")
	if aa.Usage != use {
		t.Errorf("recorded usage = %v, want %v", aa.Usage, use)
	}
	if aa.Completed != len(disp) {
		t.Errorf("recorded completions = %d, want %d", aa.Completed, len(disp))
	}
	sched.Tick()
	cr = rec.Recent(1)[0]
	if _, ok := subOf(cr, "a"); ok {
		t.Error("subscriber with no activity this cycle must drop out of the record")
	}
}

func subOf(cr flightrec.CycleRecord, id qos.SubscriberID) (flightrec.SubRecord, bool) {
	for _, s := range cr.Subs {
		if s.ID == id {
			return s, true
		}
	}
	return flightrec.SubRecord{}, false
}

// TestRecorderConcurrentMembership races the recording tick against runtime
// subscriber add/remove, the monitoring accessors, usage reports, and an
// auditor syncing off the same ring — the full concurrent surface the live
// dispatcher exercises. Run under -race this is the satellite's contract.
func TestRecorderConcurrentMembership(t *testing.T) {
	sched, rec := recorderSched(t)
	auditor := flightrec.NewAuditor(rec, flightrec.AuditorConfig{Window: time.Second})
	done := make(chan struct{})
	var wg sync.WaitGroup

	spin := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
					f(i)
				}
			}
		}()
	}

	spin(func(i int) { // the scheduler's ticker goroutine
		sched.Tick()
	})
	spin(func(i int) { // hosting churn: sign and drop a subscriber
		id := qos.SubscriberID(fmt.Sprintf("churn%d", i%4))
		host := fmt.Sprintf("churn%d.example", i%4)
		if err := sched.AddSubscriber(qos.Subscriber{ID: id, Hosts: []string{host}, Reservation: 10}); err == nil {
			sched.Enqueue(Request{ID: uint64(1000 + i), Subscriber: id})
			sched.RemoveSubscriber(id)
		}
	})
	spin(func(i int) { // connection goroutines enqueueing
		sched.Enqueue(Request{ID: uint64(i), Subscriber: "a"})
	})
	spin(func(i int) { // accounting messages
		u := qos.GenericCost().Scale(0.5)
		sched.ReportUsage(UsageReport{
			Node:  NodeID(1 + i%2),
			Total: u,
			BySubscriber: map[qos.SubscriberID]SubscriberUsage{
				"a": {Usage: u, Completed: 1},
			},
		})
	})
	spin(func(i int) { // monitoring accessors
		sched.Dispatched("a")
		sched.Balance("b")
		sched.QueueLen("c")
	})
	spin(func(i int) { // scrape handler: auditor pull + report + ring read
		auditor.Sync()
		auditor.Report()
		rec.Recent(8)
	})

	time.Sleep(200 * time.Millisecond)
	close(done)
	wg.Wait()

	if rec.Seq() == 0 {
		t.Fatal("no cycles recorded during the race")
	}
	if err := rec.SpillErr(); err != nil {
		t.Fatal(err)
	}
	// Membership varies per record (only subscribers with activity that
	// cycle appear — under bursty goroutine scheduling long runs of idle
	// cycles are legitimately empty); every record is internally
	// consistent: sorted by ID with no duplicates.
	for _, cr := range rec.Recent(0) {
		for i, sr := range cr.Subs {
			if i > 0 && !(cr.Subs[i-1].ID < sr.ID) {
				t.Fatalf("record %d: subscribers out of order or duplicated: %q !< %q",
					cr.Seq, cr.Subs[i-1].ID, sr.ID)
			}
		}
	}
	// Recording still works end to end after the churn: a deterministic
	// enqueue + tick lands the subscriber in the newest record.
	if err := sched.Enqueue(Request{ID: 1 << 40, Subscriber: "a"}); err != nil {
		t.Fatalf("post-race Enqueue: %v", err)
	}
	sched.Tick()
	if _, ok := subOf(rec.Recent(1)[0], "a"); !ok {
		t.Fatal("post-race cycle record missing the active subscriber")
	}
}

// TestSetRecorderDetach verifies detaching stops recording and ticks keep
// working.
func TestSetRecorderDetach(t *testing.T) {
	sched, rec := recorderSched(t)
	sched.Tick()
	if rec.Seq() != 1 {
		t.Fatalf("Seq = %d after one tick, want 1", rec.Seq())
	}
	if got := sched.Recorder(); got != rec {
		t.Fatal("Recorder() did not return the attached recorder")
	}
	sched.SetRecorder(nil)
	sched.Tick()
	if rec.Seq() != 1 {
		t.Fatalf("Seq = %d after detach, want still 1", rec.Seq())
	}
	if sched.Recorder() != nil {
		t.Fatal("Recorder() non-nil after detach")
	}
}
