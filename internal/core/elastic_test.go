package core

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"gage/internal/flightrec"
	"gage/internal/qos"
)

// elasticWorkload drives a fixed, fully deterministic script against a
// scheduler: bursty enqueues across two tenant groups, ticks, prefix
// completions with varied usage, and a few cancellations. Both schedulers in
// the golden equivalence test run exactly this script.
func elasticWorkload(t *testing.T, s *Scheduler) {
	t.Helper()
	subIDs := []qos.SubscriberID{"gold", "silver", "bronze"}
	inflight := make(map[NodeID][]propEntry)
	var nextID uint64
	for cycle := 0; cycle < 40; cycle++ {
		// Deterministic burst shape: each subscriber enqueues a small,
		// cycle-dependent count.
		for si, sub := range subIDs {
			n := (cycle + si) % 4
			for i := 0; i < n; i++ {
				nextID++
				if err := s.Enqueue(Request{ID: nextID, Subscriber: sub}); err != nil {
					if errors.Is(err, ErrQueueFull) {
						nextID--
						break
					}
					t.Fatalf("cycle %d: Enqueue: %v", cycle, err)
				}
			}
		}
		for _, d := range s.Tick() {
			inflight[d.Node] = append(inflight[d.Node], propEntry{id: d.Req.ID, sub: d.Req.Subscriber})
		}
		// Every third cycle, complete a prefix of each node's in-flight work
		// at a usage that alternates under- and over-prediction.
		if cycle%3 == 2 {
			cost := qos.GenericCost().Scale(0.5 + float64(cycle%5)*0.5)
			for _, n := range s.Nodes() {
				work := inflight[n]
				if len(work) == 0 {
					continue
				}
				c := 1 + len(work)/2
				rep := UsageReport{Node: n, BySubscriber: make(map[qos.SubscriberID]SubscriberUsage)}
				for _, e := range work[:c] {
					u := rep.BySubscriber[e.sub]
					u.Usage = u.Usage.Add(cost)
					u.Completed++
					rep.BySubscriber[e.sub] = u
					rep.Total = rep.Total.Add(cost)
				}
				inflight[n] = work[c:]
				if err := s.ReportUsage(rep); err != nil {
					t.Fatalf("cycle %d: ReportUsage: %v", cycle, err)
				}
			}
		}
	}
}

// TestEmptyStartEquivalence is the golden equivalence satellite: a scheduler
// born with an empty directory and an empty node pool, populated entirely
// through AddNode/AddSubscriber, must produce cycle records bit-identical to
// one seeded at construction. This is the property the admin control plane
// rests on — elastic population is not a different scheduler, just a
// different construction order.
func TestEmptyStartEquivalence(t *testing.T) {
	subs := []qos.Subscriber{
		{ID: "gold", Hosts: []string{"gold.example"}, Reservation: 100, QueueLimit: 32, Group: "acme"},
		{ID: "silver", Hosts: []string{"silver.example"}, Reservation: 50, QueueLimit: 32, Group: "acme"},
		{ID: "bronze", Hosts: []string{"bronze.example"}, Reservation: 25, QueueLimit: 32},
	}
	nodes := []NodeConfig{
		{ID: 1, Capacity: nodeCap()},
		{ID: 2, Capacity: nodeCap()},
		{ID: 3, Capacity: nodeCap()},
	}

	attach := func(s *Scheduler) *flightrec.Recorder {
		rec := flightrec.NewRecorder(flightrec.Config{RingSize: 256})
		var ticks time.Duration
		rec.SetClock(func() time.Duration {
			ticks += 10 * time.Millisecond
			return ticks
		})
		s.SetRecorder(rec)
		return s.Recorder()
	}

	seeded := mustScheduler(t, subs, nodes, Config{})
	seededRec := attach(seeded)

	empty, err := New(mustDirectory(t, nil), nil, Config{})
	if err != nil {
		t.Fatalf("New with empty directory and empty node pool: %v", err)
	}
	for _, nc := range nodes {
		if err := empty.AddNode(nc, 1); err != nil {
			t.Fatalf("AddNode(%d): %v", nc.ID, err)
		}
	}
	for _, sub := range subs {
		if err := empty.AddSubscriber(sub); err != nil {
			t.Fatalf("AddSubscriber(%s): %v", sub.ID, err)
		}
	}
	emptyRec := attach(empty)

	elasticWorkload(t, seeded)
	elasticWorkload(t, empty)

	want := seededRec.Recent(0)
	got := emptyRec.Recent(0)
	if len(want) == 0 {
		t.Fatal("seeded run produced no cycle records")
	}
	if len(got) != len(want) {
		t.Fatalf("record counts differ: seeded %d, empty-start %d", len(want), len(got))
	}
	for i := range want {
		w, err := json.Marshal(want[i])
		if err != nil {
			t.Fatal(err)
		}
		g, err := json.Marshal(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(w) != string(g) {
			t.Fatalf("cycle record %d diverges:\nseeded:      %s\nempty-start: %s", i, w, g)
		}
	}
}

// TestEmptyNodePoolDispatchesNothing pins the empty-pool semantics the doc
// comment on New promises: no nodes means an empty smooth-WRR table, so a
// funded backlog sits queued (not dropped, not dispatched) until AddNode
// grows the pool.
func TestEmptyNodePoolDispatchesNothing(t *testing.T) {
	s, err := New(mustDirectory(t, []qos.Subscriber{{ID: "a", Hosts: []string{"a.example"}, Reservation: 50}}), nil, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := s.Enqueue(Request{ID: i, Subscriber: "a"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	for i := 0; i < 10; i++ {
		if d := s.Tick(); len(d) != 0 {
			t.Fatalf("dispatched %d requests with an empty node pool", len(d))
		}
	}
	if l := s.QueueLen("a"); l != 5 {
		t.Fatalf("queue length = %d with no nodes, want 5 (nothing dropped)", l)
	}
	if err := s.AddNode(NodeConfig{ID: 7, Capacity: nodeCap()}, 1); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	var dispatched int
	for i := 0; i < 10 && dispatched < 5; i++ {
		dispatched += len(s.Tick())
	}
	if dispatched != 5 {
		t.Fatalf("dispatched %d of 5 after AddNode", dispatched)
	}
	checkSchedulerInvariants(t, s, "after first node joined")
}

// TestResizeReservationMaterialized checks the settle-at-the-old-rate
// contract: credit accrued before the resize reflects the old reservation
// exactly; credit after reflects the new one; and the clamp band switches to
// ±new×CreditWindow immediately.
func TestResizeReservationMaterialized(t *testing.T) {
	s := mustScheduler(t, []qos.Subscriber{
		{ID: "a", Hosts: []string{"a.example"}, Reservation: 10},
		{ID: "peer", Hosts: []string{"peer.example"}, Reservation: 5},
	}, []NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})

	// Materialize "a" without leaving residue: enqueue then cancel.
	if err := s.Enqueue(Request{ID: 1, Subscriber: "a"}); err != nil {
		t.Fatal(err)
	}
	if !s.CancelQueued("a", 1) {
		t.Fatal("CancelQueued failed")
	}

	const k = 7
	for i := 0; i < k; i++ {
		s.Tick()
	}
	oldRate := qos.GRPS(10).PerCycle(s.cfg.Cycle)
	wantOld := oldRate.Scale(k)
	if b, _ := s.Balance("a"); b != wantOld {
		t.Fatalf("pre-resize balance = %+v, want %d cycles at the old rate = %+v", b, k, wantOld)
	}

	if err := s.ResizeReservation("a", 40); err != nil {
		t.Fatalf("ResizeReservation: %v", err)
	}
	// The settled old-rate balance survives the resize untouched (the new
	// clamp band is wider, so no re-clamp applies here).
	if b, _ := s.Balance("a"); b != wantOld {
		t.Fatalf("balance changed across resize: %+v, want %+v", b, wantOld)
	}
	if res, ok := s.Reservation("a"); !ok || res != 40 {
		t.Fatalf("Reservation = %v, %v; want 40, true", res, ok)
	}
	// Group aggregate moved by the delta: default group held 10+5, now 40+5.
	if agg, ok := s.GroupReservation(""); !ok || agg != 45 {
		t.Fatalf("group aggregate = %v, %v; want 45, true", agg, ok)
	}

	const m = 3
	for i := 0; i < m; i++ {
		s.Tick()
	}
	newRate := qos.GRPS(40).PerCycle(s.cfg.Cycle)
	want := wantOld.Add(newRate.Scale(m))
	if b, _ := s.Balance("a"); b != want {
		t.Fatalf("post-resize balance = %+v, want old-rate span + %d cycles at the new rate = %+v", b, m, want)
	}
	checkSchedulerInvariants(t, s, "after grow")

	// Shrinking re-clamps immediately: the banked balance cannot exceed the
	// new ±res×CreditWindow band.
	if err := s.ResizeReservation("a", 1); err != nil {
		t.Fatalf("ResizeReservation shrink: %v", err)
	}
	lim := qos.GRPS(1).PerCycle(s.cfg.CreditWindow)
	if b, _ := s.Balance("a"); b != lim {
		t.Fatalf("post-shrink balance = %+v, want re-clamped to the new ceiling %+v", b, lim)
	}
	if agg, _ := s.GroupReservation(""); agg != 6 {
		t.Fatalf("group aggregate after shrink = %v, want 6", agg)
	}
	checkSchedulerInvariants(t, s, "after shrink")
}

// TestResizeReservationLazy resizes a subscriber that has never carried
// traffic: the idle span before the resize must settle at the old rate (lazy
// settlement cannot split a span across two rates, so the resize
// materializes the subscriber), and accrual after runs at the new rate.
func TestResizeReservationLazy(t *testing.T) {
	s := mustScheduler(t, []qos.Subscriber{
		{ID: "idle", Hosts: []string{"idle.example"}, Reservation: 100},
	}, []NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	if s.Materialized() != 0 {
		t.Fatalf("Materialized = %d before any traffic, want 0", s.Materialized())
	}

	const k = 4
	for i := 0; i < k; i++ {
		s.Tick()
	}
	if err := s.ResizeReservation("idle", 10); err != nil {
		t.Fatalf("ResizeReservation: %v", err)
	}
	if s.Materialized() != 1 {
		t.Fatal("resize of a lazy subscriber must materialize it")
	}
	// Old-rate accrual for k cycles, re-clamped into the new ±10×window band.
	oldAccrued := qos.GRPS(100).PerCycle(s.cfg.Cycle).Scale(k)
	lim := qos.GRPS(10).PerCycle(s.cfg.CreditWindow)
	wantNow := oldAccrued.Min(lim).Max(lim.Neg())
	if b, _ := s.Balance("idle"); b != wantNow {
		t.Fatalf("post-resize balance = %+v, want old-rate accrual clamped to the new band = %+v", b, wantNow)
	}

	const m = 6
	for i := 0; i < m; i++ {
		s.Tick()
	}
	want := wantNow.Add(qos.GRPS(10).PerCycle(s.cfg.Cycle).Scale(m)).Min(lim)
	if b, _ := s.Balance("idle"); b != want {
		t.Fatalf("balance after %d new-rate cycles = %+v, want %+v", m, b, want)
	}
	checkSchedulerInvariants(t, s, "lazy resize settled")
}

func TestResizeReservationErrors(t *testing.T) {
	s := mustScheduler(t, []qos.Subscriber{
		{ID: "a", Hosts: []string{"a.example"}, Reservation: 10},
	}, []NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	if err := s.ResizeReservation("a", -1); err == nil {
		t.Error("negative reservation accepted")
	}
	if err := s.ResizeReservation("ghost", 5); !errors.Is(err, ErrUnknownSubscriber) {
		t.Errorf("unknown subscriber: got %v, want ErrUnknownSubscriber", err)
	}
	// A no-op resize must not materialize a lazy subscriber.
	if err := s.ResizeReservation("a", 10); err != nil {
		t.Fatalf("no-op resize: %v", err)
	}
	if s.Materialized() != 0 {
		t.Error("no-op resize materialized a lazy subscriber")
	}
}

// TestAddNodeSplicesDenseIndex grows the pool while charges are in flight on
// nodes whose dense indices shift: node 2 lands between existing nodes 1 and
// 3, so every materialized subscriber's estimated/pending arrays must gain a
// zero slot at index 1 in lockstep with the reindex, or per-node accounting
// silently crosses wires.
func TestAddNodeSplicesDenseIndex(t *testing.T) {
	s := mustScheduler(t, []qos.Subscriber{
		{ID: "a", Hosts: []string{"a.example"}, Reservation: 100, QueueLimit: 64},
	}, []NodeConfig{
		{ID: 1, Capacity: nodeCap()},
		{ID: 3, Capacity: nodeCap()},
	}, Config{})

	inflight := make(map[NodeID][]propEntry)
	var nextID uint64
	for burst := 0; burst < 4; burst++ {
		for i := 0; i < 4; i++ {
			nextID++
			if err := s.Enqueue(Request{ID: nextID, Subscriber: "a"}); err != nil {
				t.Fatal(err)
			}
		}
		for _, d := range s.Tick() {
			inflight[d.Node] = append(inflight[d.Node], propEntry{id: d.Req.ID, sub: d.Req.Subscriber})
		}
	}
	if len(inflight[1]) == 0 || len(inflight[3]) == 0 {
		t.Fatalf("want in-flight work on both nodes before the splice, got %d/%d",
			len(inflight[1]), len(inflight[3]))
	}

	if err := s.AddNode(NodeConfig{ID: 2, Capacity: nodeCap()}, 1); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	checkSchedulerInvariants(t, s, "after mid-flight AddNode")
	wantNodes := []NodeID{1, 2, 3}
	got := s.Nodes()
	for i, id := range wantNodes {
		if got[i] != id {
			t.Fatalf("Nodes() = %v, want %v", got, wantNodes)
		}
	}

	// Settle the pre-splice charges by exact completion on their original
	// nodes: if the splice misaligned the dense index, these releases would
	// hit the wrong slots and the invariant check below would catch it.
	for _, n := range []NodeID{1, 3} {
		rep := UsageReport{Node: n, BySubscriber: make(map[qos.SubscriberID]SubscriberUsage)}
		for range inflight[n] {
			u := rep.BySubscriber["a"]
			u.Usage = u.Usage.Add(qos.GenericCost())
			u.Completed++
			rep.BySubscriber["a"] = u
		}
		if err := s.ReportUsage(rep); err != nil {
			t.Fatalf("ReportUsage(%d): %v", n, err)
		}
	}
	checkSchedulerInvariants(t, s, "pre-splice charges settled")
	for _, n := range wantNodes {
		if out, _ := s.Outstanding(n); !out.IsZero() {
			t.Errorf("node %d outstanding %+v after settlement, want zero", n, out)
		}
	}

	// The new node takes work: drive more traffic and require node 2 to
	// appear in the dispatch mix.
	sawNew := false
	for burst := 0; burst < 8 && !sawNew; burst++ {
		for i := 0; i < 4; i++ {
			nextID++
			if err := s.Enqueue(Request{ID: nextID, Subscriber: "a"}); err != nil {
				t.Fatal(err)
			}
		}
		for _, d := range s.Tick() {
			if d.Node == 2 {
				sawNew = true
			}
		}
	}
	if !sawNew {
		t.Error("added node never received a dispatch at weight 1")
	}
}

func TestAddNodeValidation(t *testing.T) {
	s := mustScheduler(t, []qos.Subscriber{
		{ID: "a", Hosts: []string{"a.example"}, Reservation: 10},
	}, []NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	if err := s.AddNode(NodeConfig{ID: 1, Capacity: nodeCap()}, 1); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := s.AddNode(NodeConfig{ID: 2}, 1); err == nil {
		t.Error("zero capacity accepted")
	}
	// Admission weight clamps to [0, 1]; a ramp-bottom join holds weight 0
	// until the caller ramps it.
	if err := s.AddNode(NodeConfig{ID: 3, Capacity: nodeCap()}, 2.5); err != nil {
		t.Fatal(err)
	}
	if w, _ := s.NodeWeight(3); w != 1 {
		t.Errorf("weight = %v after clamp, want 1", w)
	}
	if err := s.AddNode(NodeConfig{ID: 4, Capacity: nodeCap()}, -0.5); err != nil {
		t.Fatal(err)
	}
	if w, _ := s.NodeWeight(4); w != 0 {
		t.Errorf("weight = %v after clamp, want 0", w)
	}
	if s.NodeEnabled(4) {
		t.Error("weight-0 join must not receive dispatches")
	}
}

// TestDrainNode verifies graceful scale-in: a drained node stops receiving
// new work immediately, its in-flight accounting settles normally, and
// RemoveNode afterwards leaves no residue.
func TestDrainNode(t *testing.T) {
	s := mustScheduler(t, []qos.Subscriber{
		{ID: "a", Hosts: []string{"a.example"}, Reservation: 100, QueueLimit: 64},
	}, []NodeConfig{
		{ID: 1, Capacity: nodeCap()},
		{ID: 2, Capacity: nodeCap()},
	}, Config{})

	inflight := make(map[NodeID][]propEntry)
	var nextID uint64
	for burst := 0; burst < 4; burst++ {
		for i := 0; i < 4; i++ {
			nextID++
			if err := s.Enqueue(Request{ID: nextID, Subscriber: "a"}); err != nil {
				t.Fatal(err)
			}
		}
		for _, d := range s.Tick() {
			inflight[d.Node] = append(inflight[d.Node], propEntry{id: d.Req.ID, sub: d.Req.Subscriber})
		}
	}
	if len(inflight[2]) == 0 {
		t.Fatal("want in-flight work on node 2 before the drain")
	}

	out, err := s.DrainNode(2)
	if err != nil {
		t.Fatalf("DrainNode: %v", err)
	}
	if want, _ := s.Outstanding(2); out != want {
		t.Fatalf("DrainNode returned outstanding %+v, node reports %+v", out, want)
	}
	if out.IsZero() {
		t.Fatal("drain-time outstanding is zero with work in flight")
	}
	if s.NodeEnabled(2) {
		t.Fatal("drained node still enabled")
	}

	// No new dispatches land on the drained node.
	for burst := 0; burst < 4; burst++ {
		for i := 0; i < 2; i++ {
			nextID++
			if err := s.Enqueue(Request{ID: nextID, Subscriber: "a"}); err != nil {
				t.Fatal(err)
			}
		}
		for _, d := range s.Tick() {
			if d.Node == 2 {
				t.Fatal("dispatch landed on a drained node")
			}
			inflight[d.Node] = append(inflight[d.Node], propEntry{id: d.Req.ID, sub: d.Req.Subscriber})
		}
	}

	// In-flight work on the drained node settles normally.
	rep := UsageReport{Node: 2, BySubscriber: make(map[qos.SubscriberID]SubscriberUsage)}
	for range inflight[2] {
		u := rep.BySubscriber["a"]
		u.Usage = u.Usage.Add(qos.GenericCost())
		u.Completed++
		rep.BySubscriber["a"] = u
	}
	if err := s.ReportUsage(rep); err != nil {
		t.Fatalf("ReportUsage on drained node: %v", err)
	}
	if out, _ := s.Outstanding(2); !out.IsZero() {
		t.Fatalf("drained node outstanding %+v after settlement, want zero", out)
	}
	checkSchedulerInvariants(t, s, "drain settled")

	// Drain complete: retire it.
	if err := s.RemoveNode(2); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if got := s.Nodes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Nodes() = %v after removal, want [1]", got)
	}
	checkSchedulerInvariants(t, s, "node retired")

	if _, err := s.DrainNode(99); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("DrainNode(unknown): got %v, want ErrUnknownNode", err)
	}
}

// TestRemoveNodeReleasesCharges retires a node with charges still estimated
// against it (the ungraceful path — e.g. the hardware is simply gone): the
// owning subscribers' in-flight totals must shrink by exactly those
// estimates, and the remaining pool's accounting must stay coherent.
func TestRemoveNodeReleasesCharges(t *testing.T) {
	s := mustScheduler(t, []qos.Subscriber{
		{ID: "a", Hosts: []string{"a.example"}, Reservation: 100, QueueLimit: 64},
	}, []NodeConfig{
		{ID: 1, Capacity: nodeCap()},
		{ID: 2, Capacity: nodeCap()},
		{ID: 3, Capacity: nodeCap()},
	}, Config{})

	inflight := make(map[NodeID][]propEntry)
	var nextID uint64
	for burst := 0; burst < 4; burst++ {
		for i := 0; i < 6; i++ {
			nextID++
			if err := s.Enqueue(Request{ID: nextID, Subscriber: "a"}); err != nil {
				t.Fatal(err)
			}
		}
		for _, d := range s.Tick() {
			inflight[d.Node] = append(inflight[d.Node], propEntry{id: d.Req.ID, sub: d.Req.Subscriber})
		}
	}
	if len(inflight[2]) == 0 {
		t.Fatal("want in-flight work on node 2 before removal")
	}

	if err := s.RemoveNode(2); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	checkSchedulerInvariants(t, s, "mid-flight removal")
	if err := s.RemoveNode(2); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("second RemoveNode: got %v, want ErrUnknownNode", err)
	}

	// Settle the survivors' charges; everything must drain to zero — the
	// removed node's charges were released at removal, not leaked.
	for _, n := range []NodeID{1, 3} {
		if len(inflight[n]) == 0 {
			continue
		}
		rep := UsageReport{Node: n, BySubscriber: make(map[qos.SubscriberID]SubscriberUsage)}
		for range inflight[n] {
			u := rep.BySubscriber["a"]
			u.Usage = u.Usage.Add(qos.GenericCost())
			u.Completed++
			rep.BySubscriber["a"] = u
		}
		if err := s.ReportUsage(rep); err != nil {
			t.Fatalf("ReportUsage(%d): %v", n, err)
		}
	}
	checkSchedulerInvariants(t, s, "survivors settled")
	for _, n := range []NodeID{1, 3} {
		if out, _ := s.Outstanding(n); !out.IsZero() {
			t.Errorf("node %d outstanding %+v after settlement, want zero", n, out)
		}
	}
}

// TestTotalReservationAndEnabledCapacity pins the two feasibility inputs the
// admission policy reads: committed guarantees track resize/add/remove, and
// enabled capacity excludes drained nodes.
func TestTotalReservationAndEnabledCapacity(t *testing.T) {
	s := mustScheduler(t, []qos.Subscriber{
		{ID: "a", Hosts: []string{"a.example"}, Reservation: 100, Group: "t1"},
		{ID: "b", Hosts: []string{"b.example"}, Reservation: 50},
	}, []NodeConfig{
		{ID: 1, Capacity: nodeCap()},
		{ID: 2, Capacity: nodeCap()},
	}, Config{})

	if got := s.TotalReservation(); got != 150 {
		t.Fatalf("TotalReservation = %v, want 150", got)
	}
	if err := s.ResizeReservation("b", 80); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalReservation(); got != 180 {
		t.Fatalf("TotalReservation after resize = %v, want 180", got)
	}
	if err := s.AddSubscriber(qos.Subscriber{ID: "c", Hosts: []string{"c.example"}, Reservation: 20}); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalReservation(); got != 200 {
		t.Fatalf("TotalReservation after add = %v, want 200", got)
	}
	if _, err := s.RemoveSubscriber("a"); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalReservation(); got != 100 {
		t.Fatalf("TotalReservation after remove = %v, want 100", got)
	}

	if got, want := s.EnabledCapacity(), nodeCap().Scale(2); got != want {
		t.Fatalf("EnabledCapacity = %+v, want %+v", got, want)
	}
	if _, err := s.DrainNode(2); err != nil {
		t.Fatal(err)
	}
	if got, want := s.EnabledCapacity(), nodeCap(); got != want {
		t.Fatalf("EnabledCapacity with one node drained = %+v, want %+v", got, want)
	}
	if err := s.SetNodeWeight(2, 0.25); err != nil {
		t.Fatal(err)
	}
	if got, want := s.EnabledCapacity(), nodeCap().Scale(2); got != want {
		t.Fatalf("EnabledCapacity counts any node with weight > 0 at full capacity: got %+v, want %+v", got, want)
	}
}
