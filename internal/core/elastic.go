package core

import (
	"cmp"
	"fmt"
	"slices"

	"gage/internal/qos"
)

// This file is the scheduler's elasticity surface: the control-plane
// mutations an online admission plane performs against a live scheduler —
// resizing a subscriber's reservation, growing the node pool, and draining
// or retiring a node. Subscriber registration itself is AddSubscriber /
// RemoveSubscriber in scheduler.go; everything here preserves the same
// invariants those maintain:
//
//   - Lazy materialization: a resize of a never-enqueued subscriber touches
//     only its definition record; the balance it would have accrued is
//     settled at the OLD rate up to the resize cycle and at the new rate
//     after, exactly as eager per-tick crediting would have produced.
//   - Group aggregates: a resize moves the delta through its group's
//     aggregate reservation, the unit the reservation round's top level
//     schedules by.
//   - Dense node indexing: nodes live in nodeList sorted by ID and every
//     materialized subscriber's estimated/pending arrays are indexed by that
//     dense position, so growing or shrinking the pool splices a slot into
//     every such array at the same index, atomically with the reindex.

// ResizeReservation changes a registered subscriber's reservation at
// runtime. Credit accrued before the resize is settled at the old rate
// first, so the balance to this cycle is exactly what the old reservation
// earned; from the next cycle the new rate (and the new ±res×CreditWindow
// clamp band) applies. The group's aggregate reservation moves by the delta.
// Queued requests, in-flight charges, and the usage predictor are untouched.
func (s *Scheduler) ResizeReservation(id qos.SubscriberID, res qos.GRPS) error {
	if res < 0 {
		return fmt.Errorf("core: subscriber %q: reservation must not be negative, got %v", id, res)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	def, ok := s.defs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSubscriber, id)
	}
	if def.res == res {
		return nil
	}
	if q, ok := s.subs[id]; ok {
		// Settle at the old rate up to this cycle, then swap the cached
		// per-cycle credit and clamp band and re-clamp the balance into the
		// new ±res×CreditWindow band.
		s.settleCredit(q)
		q.res = res
		q.creditPerCycle = res.PerCycle(s.cfg.Cycle)
		q.clampLim = res.PerCycle(s.cfg.CreditWindow)
		q.balance = s.clampBalance(q, q.balance)
	} else {
		// Never materialized: materializing later must settle the old-rate
		// span at the old rate, which lazy settlement cannot split. Pay the
		// accrued credit into a real queueState now; the subscriber stops
		// being lazy, which is fine — a resize is a control-plane event.
		q := s.materialize(id, def)
		s.settleCredit(q)
		q.res = res
		q.creditPerCycle = res.PerCycle(s.cfg.Cycle)
		q.clampLim = res.PerCycle(s.cfg.CreditWindow)
		q.balance = s.clampBalance(q, q.balance)
	}
	g := def.grp
	g.aggRes += res - def.res
	if g.aggRes < 0 {
		g.aggRes = 0 // float cancellation floor
	}
	def.res = res
	return nil
}

// AddNode grows the node pool at runtime. The node joins at the given
// admission weight (clamped to [0, 1]) so a scale-out can start it at the
// bottom of a slow-start ramp instead of handing it a thundering herd; the
// caller ramps it to full weight via SetNodeWeight as its breaker climbs.
// Every materialized subscriber's per-node arrays gain a zero slot at the
// node's dense index, atomically with the pool reindex and the smooth-WRR
// recompile, so in-flight accounting on the existing nodes is undisturbed.
func (s *Scheduler) AddNode(nc NodeConfig, weight float64) error {
	if nc.Capacity.AnyNegative() || nc.Capacity.IsZero() {
		return fmt.Errorf("core: node %d: capacity must be positive, got %v", nc.ID, nc.Capacity)
	}
	if weight < 0 {
		weight = 0
	} else if weight > 1 {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.nodes[nc.ID]; dup {
		return fmt.Errorf("core: duplicate node %d", nc.ID)
	}
	nd := &nodeState{
		id:       nc.ID,
		capacity: nc.Capacity,
		bound:    nc.Capacity.Scale(s.cfg.OutstandingWindow.Seconds()),
		perCycle: nc.Capacity.Scale(s.cfg.Cycle.Seconds()),
		weight:   weight,
	}
	nd.weightedBound = nd.bound.Scale(weight)
	i, _ := slices.BinarySearchFunc(s.nodeList, nd, func(a, b *nodeState) int {
		return cmp.Compare(a.id, b.id)
	})
	s.nodes[nc.ID] = nd
	s.nodeList = append(s.nodeList, nil)
	copy(s.nodeList[i+1:], s.nodeList[i:])
	s.nodeList[i] = nd
	for j := i; j < len(s.nodeList); j++ {
		s.nodeList[j].idx = j
	}
	// Splice a zero slot into every materialized subscriber's per-node
	// arrays at the same dense index, keeping estimated[idx]/pending[idx]
	// aligned with the reindexed pool.
	for _, q := range s.subs {
		if q.estimated == nil {
			continue
		}
		q.estimated = append(q.estimated, qos.Vector{})
		copy(q.estimated[i+1:], q.estimated[i:])
		q.estimated[i] = qos.Vector{}
		q.pending = append(q.pending, pendQ{})
		copy(q.pending[i+1:], q.pending[i:])
		q.pending[i] = pendQ{}
	}
	s.compileWRR()
	return nil
}

// DrainNode stops offering new work to a node (weight 0) while its in-flight
// accounting keeps settling normally — graceful scale-in, as opposed to the
// crash-path weight drop the breakers drive. It returns the node's estimated
// outstanding load at drain time so the caller can poll for the drain to
// complete before retiring the node with RemoveNode.
func (s *Scheduler) DrainNode(id NodeID) (qos.Vector, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nd, ok := s.nodes[id]
	if !ok {
		return qos.Vector{}, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if nd.weight != 0 {
		nd.weight = 0
		nd.weightedBound = qos.Vector{}
		s.compileWRR()
	}
	return nd.outstanding, nil
}

// RemoveNode retires a node from the pool. Any charge still estimated
// against it is released from the owning subscribers (their in-flight totals
// shrink accordingly — requests genuinely still running there will never be
// reported, so holding the charge would leak it forever), every materialized
// subscriber's per-node arrays drop the node's dense slot, and the pool is
// reindexed and the smooth-WRR table recompiled. Drain first for a graceful
// retirement.
func (s *Scheduler) RemoveNode(id NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	nd, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	i := nd.idx
	for _, q := range s.subs {
		if q.estimated == nil {
			continue
		}
		if est := q.estimated[i]; !est.IsZero() {
			q.estTotal = q.estTotal.Sub(est)
		}
		copy(q.estimated[i:], q.estimated[i+1:])
		q.estimated = q.estimated[:len(q.estimated)-1]
		copy(q.pending[i:], q.pending[i+1:])
		q.pending[len(q.pending)-1] = pendQ{}
		q.pending = q.pending[:len(q.pending)-1]
	}
	delete(s.nodes, id)
	copy(s.nodeList[i:], s.nodeList[i+1:])
	s.nodeList[len(s.nodeList)-1] = nil
	s.nodeList = s.nodeList[:len(s.nodeList)-1]
	for j := i; j < len(s.nodeList); j++ {
		s.nodeList[j].idx = j
	}
	s.compileWRR()
	return nil
}

// TotalReservation returns the sum of every registered subscriber's
// reservation — the cluster's committed guarantee, the number an admission
// policy holds against capacity. O(groups), off the aggregates the
// reservation round already maintains.
func (s *Scheduler) TotalReservation() qos.GRPS {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total qos.GRPS
	for _, g := range s.groups {
		total += g.aggRes
	}
	return total
}

// EnabledCapacity returns the summed per-second capacity of the nodes
// currently accepting work (weight > 0). Draining and breaker-disabled
// nodes contribute nothing: capacity that takes no new work cannot back a
// new guarantee.
func (s *Scheduler) EnabledCapacity() qos.Vector {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total qos.Vector
	for _, nd := range s.nodeList {
		if nd.weight > 0 {
			total = total.Add(nd.capacity)
		}
	}
	return total
}

// NodeCapacity returns a node's configured per-second capacity.
func (s *Scheduler) NodeCapacity(id NodeID) (qos.Vector, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nd, ok := s.nodes[id]
	if !ok {
		return qos.Vector{}, false
	}
	return nd.capacity, true
}

// Reservation returns a subscriber's current reservation.
func (s *Scheduler) Reservation(id qos.SubscriberID) (qos.GRPS, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	def, ok := s.defs[id]
	if !ok {
		return 0, false
	}
	return def.res, true
}
