package core

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"gage/internal/qos"
)

// checkSchedulerInvariants asserts the scheduler's internal accounting
// identities, which every interleaving of Enqueue/Tick/ReportUsage/
// CancelQueued/ReleaseDispatch/Redispatch/MigrateSubscriber/MergeGroups/
// AddSubscriber/ResizeReservation/RemoveSubscriber/AddNode/DrainNode/
// RemoveNode must preserve:
//
//  1. every balance sits inside its clamp band ±reservation×CreditWindow;
//  2. each subscriber's per-node estimate equals the sum of its pending
//     dispatch-time predictions on that node (credits are conserved — no
//     charge is ever lost or double-released);
//  3. each node's outstanding load equals the sum of all subscribers'
//     estimates on it, is never negative, and bounds the optimistic drain;
//  4. the group layer reconciles: every group's member count and aggregate
//     reservation match the registered definitions, active member lists are
//     sorted and consistent with per-queue flags, every backlogged queue is
//     on its group's list, and the active-group list holds exactly the
//     groups with a non-empty active list, sorted by name.
func checkSchedulerInvariants(t *testing.T, s *Scheduler, step string) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, q := range s.subs {
		lim := q.res.PerCycle(s.cfg.CreditWindow)
		if !lim.Dominates(q.balance) || !q.balance.Dominates(lim.Neg()) {
			t.Fatalf("%s: subscriber %s balance %+v outside clamp band ±%+v", step, id, q.balance, lim)
		}
		var estSum qos.Vector
		for idx, est := range q.estimated {
			n := s.nodeList[idx].id
			var sum qos.Vector
			pq := &q.pending[idx]
			for i := 0; i < pq.size(); i++ {
				sum = sum.Add(pq.at(i).predicted)
			}
			if est != sum {
				t.Fatalf("%s: subscriber %s node %d estimate %+v != pending sum %+v",
					step, id, n, est, sum)
			}
			if est.AnyNegative() {
				t.Fatalf("%s: subscriber %s node %d estimate went negative: %+v", step, id, n, est)
			}
			estSum = estSum.Add(est)
		}
		if q.estTotal != estSum {
			t.Fatalf("%s: subscriber %s cached estTotal %+v != Σ per-node estimates %+v",
				step, id, q.estTotal, estSum)
		}
	}
	// Group-layer reconciliation against the registered definitions.
	wantMembers := make(map[*groupState]int, len(s.groups))
	wantAgg := make(map[*groupState]qos.GRPS, len(s.groups))
	for id, def := range s.defs {
		if def.grp == nil {
			t.Fatalf("%s: subscriber %s registered without a group", step, id)
		}
		if s.groups[def.grp.name] != def.grp {
			t.Fatalf("%s: subscriber %s points at a group %q not in the index", step, id, def.grp.name)
		}
		wantMembers[def.grp]++
		wantAgg[def.grp] += def.res
	}
	for name, g := range s.groups {
		if g.name != name {
			t.Fatalf("%s: group indexed as %q names itself %q", step, name, g.name)
		}
		if g.members != wantMembers[g] {
			t.Fatalf("%s: group %q counts %d members, definitions say %d", step, name, g.members, wantMembers[g])
		}
		if d := float64(g.aggRes - wantAgg[g]); d > 1e-6 || d < -1e-6 {
			t.Fatalf("%s: group %q aggregate reservation %v, Σ member reservations %v (credit leaked across migrations)",
				step, name, g.aggRes, wantAgg[g])
		}
		if g.aggRes < 0 {
			t.Fatalf("%s: group %q aggregate reservation negative: %v", step, name, g.aggRes)
		}
		if len(g.active) > 0 && (g.astart < 0 || g.astart >= len(g.active)) {
			t.Fatalf("%s: group %q rotation pointer %d outside active list of %d", step, name, g.astart, len(g.active))
		}
		for i, q := range g.active {
			if q.grp != g {
				t.Fatalf("%s: group %q active list holds %s, which belongs to %q", step, name, q.id, q.grp.name)
			}
			if !q.inActive {
				t.Fatalf("%s: group %q active list holds %s with inActive=false", step, name, q.id)
			}
			if i > 0 && g.active[i-1].id >= q.id {
				t.Fatalf("%s: group %q active list unsorted at %d: %s !< %s", step, name, i, g.active[i-1].id, q.id)
			}
		}
		if g.inActive != (len(g.active) > 0) {
			t.Fatalf("%s: group %q inActive=%v with %d active members", step, name, g.inActive, len(g.active))
		}
	}
	for id, q := range s.subs {
		if q.qlen() > 0 && !q.inActive {
			t.Fatalf("%s: subscriber %s has %d queued requests but is off its group's active list", step, id, q.qlen())
		}
	}
	for i, g := range s.activeGroups {
		if !g.inActive {
			t.Fatalf("%s: active-group list holds parked group %q", step, g.name)
		}
		if i > 0 && s.activeGroups[i-1].name >= g.name {
			t.Fatalf("%s: active-group list unsorted at %d: %q !< %q", step, i, s.activeGroups[i-1].name, g.name)
		}
	}
	activeCount := 0
	for _, g := range s.groups {
		if g.inActive {
			activeCount++
		}
	}
	if activeCount != len(s.activeGroups) {
		t.Fatalf("%s: %d groups flagged active but the list holds %d", step, activeCount, len(s.activeGroups))
	}
	for nid, nd := range s.nodes {
		var sum qos.Vector
		for _, q := range s.subs {
			if q.estimated != nil {
				sum = sum.Add(q.estimated[nd.idx])
			}
		}
		if nd.outstanding != sum {
			t.Fatalf("%s: node %d outstanding %+v != Σ subscriber estimates %+v",
				step, nid, nd.outstanding, sum)
		}
		if nd.outstanding.AnyNegative() {
			t.Fatalf("%s: node %d outstanding went negative: %+v", step, nid, nd.outstanding)
		}
		if !nd.outstanding.Dominates(nd.drained) {
			t.Fatalf("%s: node %d drained %+v exceeds outstanding %+v",
				step, nid, nd.drained, nd.outstanding)
		}
	}
}

// propEntry is one harness-tracked in-flight dispatch.
type propEntry struct {
	id  uint64
	sub qos.SubscriberID
}

func TestSchedulerOpInterleavingsPreserveInvariants(t *testing.T) {
	subs := []qos.Subscriber{
		{ID: "hi", Reservation: 100, QueueLimit: 16},
		{ID: "lo", Reservation: 10, QueueLimit: 16},
		{ID: "zero", Reservation: 0, QueueLimit: 16},
	}
	baseSubs := []qos.SubscriberID{"hi", "lo", "zero"}

	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nodeIDs := []NodeID{1, 2, 3} // live pool; elasticity ops mutate it
			var nodes []NodeConfig
			for _, id := range nodeIDs {
				nodes = append(nodes, NodeConfig{ID: id, Capacity: nodeCap()})
			}
			s := mustScheduler(t, subs, nodes, Config{})

			// Hosting churn pool: dynamic subscribers signed and dropped
			// mid-run. subIDs always holds the currently registered set (the
			// base three are never removed).
			subIDs := append([]qos.SubscriberID(nil), baseSubs...)
			dynPresent := make(map[qos.SubscriberID]bool)

			queued := make(map[qos.SubscriberID][]uint64) // per-sub FIFO of queued IDs
			inflight := make(map[NodeID][]propEntry)      // per-node dispatch order
			var nextID uint64

			nodesWithWork := func() []NodeID {
				var out []NodeID
				for _, n := range nodeIDs {
					if len(inflight[n]) > 0 {
						out = append(out, n)
					}
				}
				return out
			}
			// purgeSub forgets a removed subscriber's harness tracking: its
			// queued requests were orphaned and its in-flight charges released
			// by RemoveSubscriber.
			purgeSub := func(sub qos.SubscriberID) {
				delete(queued, sub)
				for n, fl := range inflight {
					kept := fl[:0]
					for _, e := range fl {
						if e.sub != sub {
							kept = append(kept, e)
						}
					}
					inflight[n] = kept
				}
			}

			for op := 0; op < 400; op++ {
				step := fmt.Sprintf("op %d", op)
				switch k := rng.Intn(100); {
				case k < 35: // enqueue a burst
					sub := subIDs[rng.Intn(len(subIDs))]
					for i := 0; i < 1+rng.Intn(4); i++ {
						nextID++
						err := s.Enqueue(Request{ID: nextID, Subscriber: sub})
						if errors.Is(err, ErrQueueFull) {
							nextID-- // not admitted; harness forgets it
							break
						} else if err != nil {
							t.Fatalf("%s: Enqueue: %v", step, err)
						}
						queued[sub] = append(queued[sub], nextID)
					}
				case k < 55: // scheduling tick
					for _, d := range s.Tick() {
						fifo := queued[d.Req.Subscriber]
						if len(fifo) == 0 || fifo[0] != d.Req.ID {
							t.Fatalf("%s: dispatch %d for %s violates FIFO (queue %v)",
								step, d.Req.ID, d.Req.Subscriber, fifo)
						}
						queued[d.Req.Subscriber] = fifo[1:]
						inflight[d.Node] = append(inflight[d.Node], propEntry{id: d.Req.ID, sub: d.Req.Subscriber})
					}
				case k < 70: // accounting message completing a prefix of a node's work
					ns := nodesWithWork()
					if len(ns) == 0 {
						continue
					}
					n := ns[rng.Intn(len(ns))]
					c := 1 + rng.Intn(len(inflight[n]))
					rep := UsageReport{Node: n, BySubscriber: make(map[qos.SubscriberID]SubscriberUsage)}
					// Per-request usage between 0.25× and 4× the generic cost:
					// under- and over-prediction both exercise the clamp.
					cost := qos.GenericCost().Scale(0.25 + 3.75*rng.Float64())
					for _, e := range inflight[n][:c] {
						u := rep.BySubscriber[e.sub]
						u.Usage = u.Usage.Add(cost)
						u.Completed++
						rep.BySubscriber[e.sub] = u
						rep.Total = rep.Total.Add(cost)
					}
					inflight[n] = inflight[n][c:]
					if err := s.ReportUsage(rep); err != nil {
						t.Fatalf("%s: ReportUsage: %v", step, err)
					}
				case k < 78: // abandon a queued request (any position, not just head)
					sub := subIDs[rng.Intn(len(subIDs))]
					if len(queued[sub]) == 0 {
						continue
					}
					i := rng.Intn(len(queued[sub]))
					id := queued[sub][i]
					if !s.CancelQueued(sub, id) {
						t.Fatalf("%s: CancelQueued(%s, %d) = false for a queued request", step, sub, id)
					}
					queued[sub] = append(queued[sub][:i], queued[sub][i+1:]...)
				case k < 84: // abandon an in-flight dispatch
					ns := nodesWithWork()
					if len(ns) == 0 {
						continue
					}
					n := ns[rng.Intn(len(ns))]
					i := rng.Intn(len(inflight[n]))
					e := inflight[n][i]
					if !s.ReleaseDispatch(e.sub, n, e.id) {
						t.Fatalf("%s: ReleaseDispatch(%s, %d, %d) = false for an in-flight charge", step, e.sub, n, e.id)
					}
					inflight[n] = append(inflight[n][:i], inflight[n][i+1:]...)
				case k < 87: // move an in-flight charge off its node
					ns := nodesWithWork()
					if len(ns) == 0 {
						continue
					}
					n := ns[rng.Intn(len(ns))]
					i := rng.Intn(len(inflight[n]))
					e := inflight[n][i]
					inflight[n] = append(inflight[n][:i], inflight[n][i+1:]...)
					if alt, ok := s.Redispatch(e.sub, e.id, n); ok {
						inflight[alt] = append(inflight[alt], e)
					} // else: no alternate had room; the charge is released
				case k < 90: // reshape the group hierarchy mid-flight
					if rng.Intn(2) == 0 {
						// Migrate to one of a few tenant names (created on
						// demand) or back to the default group; a subscriber's
						// backlog and in-flight charges ride along untouched.
						sub := subIDs[rng.Intn(len(subIDs))]
						grp := ""
						if g := rng.Intn(4); g > 0 {
							grp = fmt.Sprintf("t%d", g)
						}
						if err := s.MigrateSubscriber(sub, grp); err != nil {
							t.Fatalf("%s: MigrateSubscriber(%s, %q): %v", step, sub, grp, err)
						}
					} else {
						gs := s.Groups()
						src := gs[rng.Intn(len(gs))]
						dst := gs[rng.Intn(len(gs))]
						if err := s.MergeGroups(src, dst); err != nil {
							t.Fatalf("%s: MergeGroups(%q, %q): %v", step, src, dst, err)
						}
					}
				case k < 95: // hosting churn: sign, resize, or drop a subscriber
					switch rng.Intn(3) {
					case 0: // sign a dynamic subscriber (if a slot is free)
						id := qos.SubscriberID(fmt.Sprintf("dyn%d", rng.Intn(4)))
						if dynPresent[id] {
							continue
						}
						sub := qos.Subscriber{
							ID:          id,
							Reservation: qos.GRPS(rng.Intn(60)),
							QueueLimit:  16,
						}
						if g := rng.Intn(3); g > 0 {
							sub.Group = fmt.Sprintf("t%d", g)
						}
						if err := s.AddSubscriber(sub); err != nil {
							t.Fatalf("%s: AddSubscriber(%s): %v", step, id, err)
						}
						dynPresent[id] = true
						subIDs = append(subIDs, id)
					case 1: // resize any registered reservation
						sub := subIDs[rng.Intn(len(subIDs))]
						if err := s.ResizeReservation(sub, qos.GRPS(rng.Intn(150))); err != nil {
							t.Fatalf("%s: ResizeReservation(%s): %v", step, sub, err)
						}
					default: // drop a dynamic subscriber
						var dyn []qos.SubscriberID
						for id, ok := range dynPresent {
							if ok {
								dyn = append(dyn, id)
							}
						}
						if len(dyn) == 0 {
							continue
						}
						slices.Sort(dyn) // map order is random; keep the seed deterministic
						id := dyn[rng.Intn(len(dyn))]
						orphans, err := s.RemoveSubscriber(id)
						if err != nil {
							t.Fatalf("%s: RemoveSubscriber(%s): %v", step, id, err)
						}
						if len(orphans) != len(queued[id]) {
							t.Fatalf("%s: RemoveSubscriber(%s) orphaned %d requests, harness tracked %d queued",
								step, id, len(orphans), len(queued[id]))
						}
						delete(dynPresent, id)
						subIDs = slices.Delete(subIDs, slices.Index(subIDs, id), slices.Index(subIDs, id)+1)
						purgeSub(id)
					}
				default: // pool elasticity: add, drain, retire, or flap a node
					switch rng.Intn(4) {
					case 0: // scale out (bounded pool; joins at a random ramp weight)
						if len(nodeIDs) >= 6 {
							continue
						}
						var id NodeID
						for id = 1; slices.Contains(nodeIDs, id); id++ {
						}
						if err := s.AddNode(NodeConfig{ID: id, Capacity: nodeCap()}, rng.Float64()); err != nil {
							t.Fatalf("%s: AddNode(%d): %v", step, id, err)
						}
						nodeIDs = append(nodeIDs, id)
						slices.Sort(nodeIDs)
					case 1: // graceful drain
						n := nodeIDs[rng.Intn(len(nodeIDs))]
						if _, err := s.DrainNode(n); err != nil {
							t.Fatalf("%s: DrainNode(%d): %v", step, n, err)
						}
					case 2: // retire a node; its in-flight charges are released
						if len(nodeIDs) <= 1 {
							continue
						}
						n := nodeIDs[rng.Intn(len(nodeIDs))]
						if err := s.RemoveNode(n); err != nil {
							t.Fatalf("%s: RemoveNode(%d): %v", step, n, err)
						}
						nodeIDs = slices.Delete(nodeIDs, slices.Index(nodeIDs, n), slices.Index(nodeIDs, n)+1)
						delete(inflight, n) // charges released, requests never settle
					default: // flap health
						n := nodeIDs[rng.Intn(len(nodeIDs))]
						if err := s.SetNodeEnabled(n, rng.Intn(2) == 0); err != nil {
							t.Fatalf("%s: SetNodeEnabled: %v", step, err)
						}
					}
				}
				checkSchedulerInvariants(t, s, step)
			}

			// Settle everything: complete all in-flight work, withdraw all
			// queued requests, and confirm no charge is left anywhere.
			for _, n := range nodeIDs {
				if len(inflight[n]) == 0 {
					continue
				}
				rep := UsageReport{Node: n, BySubscriber: make(map[qos.SubscriberID]SubscriberUsage)}
				for _, e := range inflight[n] {
					u := rep.BySubscriber[e.sub]
					u.Usage = u.Usage.Add(qos.GenericCost())
					u.Completed++
					rep.BySubscriber[e.sub] = u
				}
				inflight[n] = nil
				if err := s.ReportUsage(rep); err != nil {
					t.Fatalf("final ReportUsage: %v", err)
				}
			}
			for sub, ids := range queued {
				for _, id := range ids {
					if !s.CancelQueued(sub, id) {
						t.Fatalf("final CancelQueued(%s, %d) = false", sub, id)
					}
				}
			}
			checkSchedulerInvariants(t, s, "settled")
			for _, n := range nodeIDs {
				if out, _ := s.Outstanding(n); !out.IsZero() {
					t.Errorf("node %d outstanding %+v after full settlement, want zero", n, out)
				}
			}
			for _, sub := range subIDs {
				if l := s.QueueLen(sub); l != 0 {
					t.Errorf("subscriber %s queue length %d after settlement, want 0", sub, l)
				}
			}
		})
	}
}

// TestSchedulerBalanceNeverBelowFloorUnderHostileUsage drives one subscriber
// with usage reports far above its reservation and prediction: the balance
// must pin at the clamp floor, never below, and recover once the overuse
// stops — the property the harness's per-tick balance audit enforces in
// every chaos run.
func TestSchedulerBalanceNeverBelowFloorUnderHostileUsage(t *testing.T) {
	subs := []qos.Subscriber{{ID: "a", Reservation: 10}}
	s := mustScheduler(t, subs, []NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	floor := qos.GRPS(10).PerCycle(s.cfg.CreditWindow).Neg()
	var id uint64
	for round := 0; round < 50; round++ {
		id++
		if err := s.Enqueue(Request{ID: id, Subscriber: "a"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
		n := 0
		for _, d := range s.Tick() {
			n++
			_ = d
		}
		if n > 0 {
			// Report 20× the generic cost per completion: hostile overuse.
			if err := s.ReportUsage(UsageReport{Node: 1, BySubscriber: map[qos.SubscriberID]SubscriberUsage{
				"a": {Usage: qos.GenericCost().Scale(20 * float64(n)), Completed: n},
			}}); err != nil {
				t.Fatalf("ReportUsage: %v", err)
			}
		}
		b, ok := s.Balance("a")
		if !ok {
			t.Fatal("Balance lookup failed")
		}
		if !b.Dominates(floor) {
			t.Fatalf("round %d: balance %+v fell below clamp floor %+v", round, b, floor)
		}
	}
	// Idle recovery: with no further usage, per-tick credits walk the
	// balance back up to the ceiling.
	for i := 0; i < 1000; i++ {
		s.Tick()
	}
	b, _ := s.Balance("a")
	ceiling := qos.GRPS(10).PerCycle(s.cfg.CreditWindow)
	if b != ceiling {
		t.Errorf("idle balance = %+v, want clamp ceiling %+v", b, ceiling)
	}
}
