package core_test

import (
	"fmt"
	"time"

	"gage/internal/core"
	"gage/internal/qos"
)

// A complete scheduling round trip: enqueue a classified request, run one
// scheduling cycle, deliver the work, and feed the accounting message back.
func ExampleScheduler() {
	dir, err := qos.NewDirectory([]qos.Subscriber{
		{ID: "gold", Hosts: []string{"gold.example"}, Reservation: 100},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	sched, err := core.New(dir, []core.NodeConfig{{
		ID: 1,
		Capacity: qos.Vector{
			CPUTime:  time.Second,
			DiskTime: time.Second,
			NetBytes: 12_500_000,
		},
	}}, core.Config{})
	if err != nil {
		fmt.Println(err)
		return
	}

	if err := sched.Enqueue(core.Request{ID: 1, Subscriber: "gold"}); err != nil {
		fmt.Println(err)
		return
	}
	for _, d := range sched.Tick() {
		fmt.Printf("request %d -> node %d\n", d.Req.ID, d.Node)
		// The node serves the request and, one accounting cycle later,
		// reports what it actually consumed.
		err := sched.ReportUsage(core.UsageReport{
			Node:  d.Node,
			Total: qos.GenericCost(),
			BySubscriber: map[qos.SubscriberID]core.SubscriberUsage{
				"gold": {Usage: qos.GenericCost(), Completed: 1},
			},
		})
		if err != nil {
			fmt.Println(err)
			return
		}
	}
	out, _ := sched.Outstanding(1)
	fmt.Println("outstanding after feedback:", out.IsZero())
	// Output:
	// request 1 -> node 1
	// outstanding after feedback: true
}
