package core

import (
	"testing"
	"time"

	"gage/internal/qos"
)

// handoffSubs is a two-group cast: tierA holds a1 (traffic) and a2 (idle,
// never materialized), tierB holds b1.
func handoffSubs() []qos.Subscriber {
	return []qos.Subscriber{
		{ID: "a1", Reservation: 50, QueueLimit: 64, Group: "tierA"},
		{ID: "a2", Reservation: 20, QueueLimit: 32, Group: "tierA"},
		{ID: "b1", Reservation: 30, QueueLimit: 16, Group: "tierB"},
	}
}

func TestExportGroupSnapshotsCreditState(t *testing.T) {
	s := mustScheduler(t, handoffSubs(), []NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	// Materialize a1 and run a few cycles so credit accrues and dispatches
	// charge the balance.
	for i := 0; i < 5; i++ {
		if err := s.Enqueue(Request{ID: uint64(i + 1), Subscriber: "a1"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	for i := 0; i < 20; i++ {
		s.Tick()
	}

	snap, err := s.ExportGroup("tierA")
	if err != nil {
		t.Fatalf("ExportGroup: %v", err)
	}
	if len(snap) != 2 || snap[0].ID != "a1" || snap[1].ID != "a2" {
		t.Fatalf("export = %+v, want [a1 a2]", snap)
	}
	for _, st := range snap {
		if st.Group != "tierA" {
			t.Fatalf("subscriber %s exported group %q", st.ID, st.Group)
		}
		want, _ := s.Balance(st.ID)
		if st.Balance != want {
			t.Fatalf("subscriber %s: exported balance %v, Balance() %v", st.ID, st.Balance, want)
		}
	}
	// a2 never carried traffic: its balance is pure accrued credit, positive
	// after 20 cycles.
	if snap[1].Balance.IsZero() {
		t.Fatalf("idle subscriber exported a zero balance; want accrued credit")
	}
	if _, err := s.ExportGroup("nope"); err == nil {
		t.Fatalf("ExportGroup(unknown) succeeded")
	}
}

func TestImportSubscriberStateResumesCreditAtImportCycle(t *testing.T) {
	src := mustScheduler(t, handoffSubs(), []NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	if err := src.Enqueue(Request{ID: 1, Subscriber: "a1"}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	for i := 0; i < 10; i++ {
		src.Tick()
	}
	snap, err := src.ExportGroup("tierA")
	if err != nil {
		t.Fatalf("ExportGroup: %v", err)
	}

	dst := mustScheduler(t, []qos.Subscriber{{ID: "seed", Reservation: 1}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	// Let the importer's clock run ahead: an import must NOT backfill credit
	// for cycles before it happened.
	for i := 0; i < 50; i++ {
		dst.Tick()
	}
	for _, st := range snap {
		if err := dst.ImportSubscriberState(st); err != nil {
			t.Fatalf("ImportSubscriberState(%s): %v", st.ID, err)
		}
	}
	for _, st := range snap {
		got, ok := dst.Balance(st.ID)
		if !ok {
			t.Fatalf("imported subscriber %s unknown", st.ID)
		}
		if got != st.Balance {
			t.Fatalf("subscriber %s: balance right after import = %v, want snapshot %v", st.ID, got, st.Balance)
		}
	}
	// a1 was materialized at import (it carried state); its predictor rode
	// along.
	wantPred := snap[0].Predicted
	if got, _ := dst.Predicted("a1"); got != wantPred {
		t.Fatalf("imported predictor = %v, want %v", got, wantPred)
	}
	// Credit accrual resumes from the import cycle: k more ticks add exactly
	// k cycles of credit (within the clamp).
	before, _ := dst.Balance("a1")
	for i := 0; i < 5; i++ {
		dst.Tick()
	}
	after, _ := dst.Balance("a1")
	sub := handoffSubs()[0]
	wantDelta := sub.Reservation.PerCycle(dst.Cycle()).Scale(5)
	if got := after.Sub(before); got != wantDelta {
		t.Fatalf("credit after import = %v over 5 cycles, want %v", got, wantDelta)
	}
	// Duplicate import fails.
	if err := dst.ImportSubscriberState(snap[0]); err == nil {
		t.Fatalf("duplicate import succeeded")
	}
}

func TestImportSubscriberStateDefinitionOnlyStaysLazy(t *testing.T) {
	dst := mustScheduler(t, []qos.Subscriber{{ID: "seed", Reservation: 1}},
		[]NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	st := SubscriberState{ID: "cold", Reservation: 5, QueueLimit: 8, Group: "tierC"}
	if err := dst.ImportSubscriberState(st); err != nil {
		t.Fatalf("ImportSubscriberState: %v", err)
	}
	if got := dst.Materialized(); got != 0 {
		t.Fatalf("definition-only import materialized %d subscribers, want 0", got)
	}
	if got := dst.Registered(); got != 2 {
		t.Fatalf("registered = %d, want 2", got)
	}
	if g, _ := dst.GroupOf("cold"); g != "tierC" {
		t.Fatalf("imported group = %q, want tierC", g)
	}
}

func TestRemoveGroupReturnsOrphansAndDeletesGroup(t *testing.T) {
	s := mustScheduler(t, handoffSubs(), []NodeConfig{{ID: 1, Capacity: nodeCap()}}, Config{})
	for i := 0; i < 3; i++ {
		if err := s.Enqueue(Request{ID: uint64(100 + i), Subscriber: "a1"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	orphans, err := s.RemoveGroup("tierA")
	if err != nil {
		t.Fatalf("RemoveGroup: %v", err)
	}
	if len(orphans) != 3 {
		t.Fatalf("orphans = %d, want 3", len(orphans))
	}
	for i, r := range orphans {
		if want := uint64(100 + i); r.ID != want {
			t.Fatalf("orphan %d = request %d, want %d (FIFO order)", i, r.ID, want)
		}
	}
	if _, ok := s.GroupOf("a1"); ok {
		t.Fatalf("a1 still registered after RemoveGroup")
	}
	for _, g := range s.Groups() {
		if g == "tierA" {
			t.Fatalf("group tierA still present after RemoveGroup")
		}
	}
	if _, err := s.RemoveGroup("tierA"); err == nil {
		t.Fatalf("RemoveGroup(removed) succeeded")
	}
	// tierB untouched.
	if _, ok := s.GroupOf("b1"); !ok {
		t.Fatalf("b1 lost by RemoveGroup(tierA)")
	}
}

func TestSetNodeCapacityRescalesAdmissionBound(t *testing.T) {
	// One node, one subscriber with a huge reservation: dispatch volume per
	// tick is limited only by the node's outstanding bound.
	subs := []qos.Subscriber{{ID: "s1", Reservation: 1000, QueueLimit: 4096}}
	cfg := Config{OutstandingWindow: 100 * time.Millisecond}
	s := mustScheduler(t, subs, []NodeConfig{{ID: 1, Capacity: nodeCap()}}, cfg)
	for i := 0; i < 1000; i++ {
		if err := s.Enqueue(Request{ID: uint64(i + 1), Subscriber: "s1"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	full := len(s.Tick())
	if full == 0 {
		t.Fatalf("no dispatches at full capacity")
	}

	// A second scheduler believing the node is half as big must dispatch
	// roughly half as much into the empty node.
	s2 := mustScheduler(t, subs, []NodeConfig{{ID: 1, Capacity: nodeCap()}}, cfg)
	if err := s2.SetNodeCapacity(1, nodeCap().Scale(0.5)); err != nil {
		t.Fatalf("SetNodeCapacity: %v", err)
	}
	for i := 0; i < 1000; i++ {
		if err := s2.Enqueue(Request{ID: uint64(i + 1), Subscriber: "s1"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	half := len(s2.Tick())
	if half >= full {
		t.Fatalf("half-capacity node dispatched %d, full %d; want fewer", half, full)
	}
	if half == 0 {
		t.Fatalf("half-capacity node dispatched nothing")
	}

	if err := s.SetNodeCapacity(99, nodeCap()); err == nil {
		t.Fatalf("SetNodeCapacity(unknown node) succeeded")
	}
	if err := s.SetNodeCapacity(1, qos.Vector{}); err == nil {
		t.Fatalf("SetNodeCapacity(zero) succeeded")
	}
	if err := s.SetNodeCapacity(1, qos.Vector{CPUTime: -time.Second}); err == nil {
		t.Fatalf("SetNodeCapacity(negative) succeeded")
	}
}
