// Package backend implements a real-TCP simulated RPN: a small origin
// server that answers synthetic page requests with configurable modeled
// resource costs, attributes usage to subscribers with the accounting
// module, and exposes the per-cycle accounting report the dispatcher polls —
// the live-network counterpart of the simulator's RPN, suitable for
// loopback clusters.
package backend

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"gage/internal/accounting"
	"gage/internal/core"
	"gage/internal/httpwire"
	"gage/internal/obs"
	"gage/internal/qos"
	"gage/internal/workload"
)

// SubscriberHeader carries the classified subscriber on dispatched requests.
const SubscriberHeader = "X-Gage-Subscriber"

// UsageHeader reports a request's modeled resource usage on responses, as
// "cpuNanos,diskNanos,netBytes".
const UsageHeader = "X-Gage-Usage"

// ReportPath serves the accounting message for the last cycle as JSON.
const ReportPath = "/_gage/report"

// Config tunes a backend server.
type Config struct {
	// Node is this backend's identity in accounting reports.
	Node core.NodeID
	// Costs models per-page resource usage (default workload.DefaultCostModel).
	Costs workload.CostModel
	// Delay, when positive, makes the backend hold each response for the
	// request's modeled CPU+disk time scaled by Delay — 1.0 approximates
	// real service time, 0 serves at memory speed (default).
	Delay float64
}

// Server is one backend instance.
type Server struct {
	cfg  Config
	acct *accounting.Accountant

	mu    sync.Mutex
	procs map[qos.SubscriberID]accounting.ProcessID

	wg     sync.WaitGroup
	closed chan struct{}

	// lnMu guards ln: Serve publishes it while Close may run concurrently.
	lnMu sync.Mutex
	ln   net.Listener
}

// New creates a backend server.
func New(cfg Config) *Server {
	if cfg.Costs == (workload.CostModel{}) {
		cfg.Costs = workload.DefaultCostModel()
	}
	return &Server{
		cfg:    cfg,
		acct:   accounting.NewAccountant(cfg.Node),
		procs:  make(map[qos.SubscriberID]accounting.ProcessID),
		closed: make(chan struct{}),
	}
}

// Serve accepts connections until the listener closes. One request is
// served per connection (HTTP/1.0 style) — the dispatcher splices one
// request per backend connection.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	select {
	case <-s.closed:
		// Close already ran: do not start accepting on a listener it will
		// never see again.
		s.lnMu.Unlock()
		return ln.Close()
	default:
	}
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return fmt.Errorf("backend: accept: %w", err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight requests.
func (s *Server) Close() error {
	close(s.closed)
	s.lnMu.Lock()
	ln := s.ln
	s.lnMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Report returns and resets the accounting message for the elapsed cycle.
func (s *Server) Report() core.UsageReport {
	return s.acct.Cycle()
}

// handle serves one request on conn.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	// Misbehaving peers must not pin the handler forever.
	// Deadline errors surface through the read below.
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	req, err := httpwire.ReadRequest(bufio.NewReader(conn))
	if err != nil {
		writeError(conn, 400)
		return
	}
	if req.Path() == ReportPath {
		s.serveReport(conn)
		return
	}
	resp, cost := s.render(req)
	// Echo the trace ID so the front end (and any log scraper watching the
	// backend side) can attribute the exchange to its end-to-end trace.
	if tid := req.Header[obs.TraceHeader]; tid != "" {
		resp.Header[obs.TraceHeader] = tid
	}
	if s.cfg.Delay > 0 {
		time.Sleep(time.Duration(float64(cost.CPUTime+cost.DiskTime) * s.cfg.Delay))
	}
	// A failed response write means the client went away; usage is still
	// charged — the work was done.
	_ = resp.Write(conn)
	s.charge(req, cost)
}

// render builds the synthetic page and its modeled cost.
func (s *Server) render(req *httpwire.Request) (*httpwire.Response, qos.Vector) {
	size := pageSize(req.Path())
	body := make([]byte, size)
	for i := range body {
		body[i] = 'a' + byte(i%26)
	}
	cost := s.cfg.Costs.Cost(int64(size))
	resp := &httpwire.Response{
		StatusCode: 200,
		Header: map[string]string{
			"Content-Type": "text/html",
			UsageHeader: fmt.Sprintf("%d,%d,%d",
				cost.CPUTime.Nanoseconds(), cost.DiskTime.Nanoseconds(), cost.NetBytes),
		},
		Body: body,
	}
	return resp, cost
}

// charge attributes the request's usage to its subscriber's process tree.
func (s *Server) charge(req *httpwire.Request, cost qos.Vector) {
	sub := qos.SubscriberID(req.Header[SubscriberHeader])
	if sub == "" {
		sub = "unclassified"
	}
	s.mu.Lock()
	pid, ok := s.procs[sub]
	if !ok {
		pid = s.acct.Launch(sub)
		s.procs[sub] = pid
	}
	s.mu.Unlock()
	// Charging a live, tracked process cannot fail.
	_ = s.acct.Charge(pid, cost)
	_ = s.acct.CompleteRequest(pid)
}

// reportJSON is the wire form of a usage report.
type reportJSON struct {
	Node         int                      `json:"node"`
	TotalCPU     int64                    `json:"totalCpuNanos"`
	TotalDisk    int64                    `json:"totalDiskNanos"`
	TotalNet     int64                    `json:"totalNetBytes"`
	BySubscriber map[string]subscriberUse `json:"bySubscriber"`
}

type subscriberUse struct {
	CPU       int64 `json:"cpuNanos"`
	Disk      int64 `json:"diskNanos"`
	Net       int64 `json:"netBytes"`
	Completed int   `json:"completed"`
}

// serveReport answers the dispatcher's accounting poll with *cumulative*
// totals, so a lost poll response loses no usage: the poller diffs against
// its last-seen snapshot.
func (s *Server) serveReport(conn net.Conn) {
	rep := s.acct.CumulativeReport()
	body, err := json.Marshal(encodeReport(rep))
	if err != nil {
		writeError(conn, 500)
		return
	}
	resp := &httpwire.Response{
		StatusCode: 200,
		Header:     map[string]string{"Content-Type": "application/json"},
		Body:       body,
	}
	// Failed writes mean the poller disconnected; the usage in this report
	// is lost, exactly as a dropped accounting message would be.
	_ = resp.Write(conn)
}

// encodeReport converts a usage report to its JSON wire form.
func encodeReport(rep core.UsageReport) reportJSON {
	by := make(map[string]subscriberUse, len(rep.BySubscriber))
	for id, u := range rep.BySubscriber {
		by[string(id)] = subscriberUse{
			CPU:       u.Usage.CPUTime.Nanoseconds(),
			Disk:      u.Usage.DiskTime.Nanoseconds(),
			Net:       u.Usage.NetBytes,
			Completed: u.Completed,
		}
	}
	return reportJSON{
		Node:         int(rep.Node),
		TotalCPU:     rep.Total.CPUTime.Nanoseconds(),
		TotalDisk:    rep.Total.DiskTime.Nanoseconds(),
		TotalNet:     rep.Total.NetBytes,
		BySubscriber: by,
	}
}

// DecodeReport parses the JSON form back into a usage report.
func DecodeReport(body []byte) (core.UsageReport, error) {
	return DecodeReportInto(body, nil)
}

// DecodeReportInto is DecodeReport with a caller-supplied subscriber map to
// reuse (cleared first); nil allocates fresh. The accounting poller cycles a
// retired report's map back in here so steady-state polling does not grow
// the heap with every cycle.
func DecodeReportInto(body []byte, reuse map[qos.SubscriberID]core.SubscriberUsage) (core.UsageReport, error) {
	var r reportJSON
	if err := json.Unmarshal(body, &r); err != nil {
		return core.UsageReport{}, fmt.Errorf("backend: decode report: %w", err)
	}
	if reuse == nil {
		reuse = make(map[qos.SubscriberID]core.SubscriberUsage, len(r.BySubscriber))
	} else {
		clear(reuse)
	}
	rep := core.UsageReport{
		Node: core.NodeID(r.Node),
		Total: qos.Vector{
			CPUTime:  time.Duration(r.TotalCPU),
			DiskTime: time.Duration(r.TotalDisk),
			NetBytes: r.TotalNet,
		},
		BySubscriber: reuse,
	}
	for id, u := range r.BySubscriber {
		rep.BySubscriber[qos.SubscriberID(id)] = core.SubscriberUsage{
			Usage: qos.Vector{
				CPUTime:  time.Duration(u.CPU),
				DiskTime: time.Duration(u.Disk),
				NetBytes: u.Net,
			},
			Completed: u.Completed,
		}
	}
	return rep, nil
}

// ParseUsageHeader parses an X-Gage-Usage response header.
func ParseUsageHeader(v string) (qos.Vector, error) {
	parts := strings.Split(v, ",")
	if len(parts) != 3 {
		return qos.Vector{}, errors.New("backend: malformed usage header")
	}
	cpu, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	disk, err2 := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
	nb, err3 := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return qos.Vector{}, errors.New("backend: malformed usage header")
	}
	return qos.Vector{CPUTime: time.Duration(cpu), DiskTime: time.Duration(disk), NetBytes: nb}, nil
}

// pageSize derives the synthetic page size from a path. Paths of the form
// /static/<n>.html (or any path containing a "<n>" numeric segment before
// the extension) get n bytes; /cgi-bin/ paths get 3 KB; everything else 6 KB.
func pageSize(path string) int {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.IndexByte(base, '.'); i >= 0 {
		base = base[:i]
	}
	if n, err := strconv.Atoi(base); err == nil && n >= 0 && n <= 8<<20 {
		return n
	}
	if strings.HasPrefix(path, "/cgi-bin/") {
		return 3 * 1024
	}
	return workload.SixKBPage
}

func writeError(conn net.Conn, code int) {
	resp := &httpwire.Response{StatusCode: code, Header: map[string]string{}}
	// The peer may already be gone; nothing else to do.
	_ = resp.Write(conn)
}
