package backend

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"gage/internal/httpwire"
	"gage/internal/qos"
)

// startBackend runs a backend on a loopback listener.
func startBackend(t *testing.T, cfg Config) (addr string, srv *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv = New(cfg)
	go func() {
		// Serve exits cleanly on Close.
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return ln.Addr().String(), srv
}

// get performs one HTTP request against addr.
func get(t *testing.T, addr, host, path string, header map[string]string) *httpwire.Response {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	req := &httpwire.Request{Method: "GET", Target: path, Proto: "HTTP/1.0", Host: host, Header: header}
	if err := req.Write(conn); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err := httpwire.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp
}

func TestServesSyntheticPage(t *testing.T) {
	addr, _ := startBackend(t, Config{Node: 1})
	resp := get(t, addr, "h.example", "/static/4096.html", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(resp.Body) != 4096 {
		t.Errorf("body = %d bytes, want 4096", len(resp.Body))
	}
	usage, err := ParseUsageHeader(resp.Header[UsageHeader])
	if err != nil {
		t.Fatalf("usage header %q: %v", resp.Header[UsageHeader], err)
	}
	if usage.CPUTime <= 0 || usage.NetBytes != 4096+400 {
		t.Errorf("usage = %v", usage)
	}
}

func TestDefaultAndCGISizes(t *testing.T) {
	addr, _ := startBackend(t, Config{Node: 1})
	if got := len(get(t, addr, "h", "/index.html", nil).Body); got != 6144 {
		t.Errorf("default page = %d bytes, want 6144", got)
	}
	if got := len(get(t, addr, "h", "/cgi-bin/app", nil).Body); got != 3072 {
		t.Errorf("cgi page = %d bytes, want 3072", got)
	}
}

func TestAccountingPerSubscriber(t *testing.T) {
	addr, srv := startBackend(t, Config{Node: 3})
	get(t, addr, "h", "/static/1000.html", map[string]string{SubscriberHeader: "site1"})
	get(t, addr, "h", "/static/1000.html", map[string]string{SubscriberHeader: "site1"})
	get(t, addr, "h", "/static/2000.html", map[string]string{SubscriberHeader: "site2"})

	rep := srv.Report()
	if rep.Node != 3 {
		t.Errorf("node = %d, want 3", rep.Node)
	}
	if got := rep.BySubscriber["site1"].Completed; got != 2 {
		t.Errorf("site1 completed = %d, want 2", got)
	}
	if got := rep.BySubscriber["site2"].Completed; got != 1 {
		t.Errorf("site2 completed = %d, want 1", got)
	}
	if rep.Total.NetBytes != (1000+400)*2+(2000+400) {
		t.Errorf("total net = %d", rep.Total.NetBytes)
	}
	// The cycle reset: a second report is empty.
	if rep := srv.Report(); len(rep.BySubscriber) != 0 {
		t.Errorf("second report = %+v, want empty", rep.BySubscriber)
	}
}

func TestReportEndpoint(t *testing.T) {
	addr, _ := startBackend(t, Config{Node: 7})
	get(t, addr, "h", "/static/500.html", map[string]string{SubscriberHeader: "a"})
	resp := get(t, addr, "", ReportPath, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("report status = %d", resp.StatusCode)
	}
	rep, err := DecodeReport(resp.Body)
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if rep.Node != 7 {
		t.Errorf("node = %d, want 7", rep.Node)
	}
	if rep.BySubscriber["a"].Completed != 1 {
		t.Errorf("a completed = %d, want 1", rep.BySubscriber["a"].Completed)
	}
}

func TestMalformedRequestGets400(t *testing.T) {
	addr, _ := startBackend(t, Config{Node: 1})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("NONSENSE\r\n\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err := httpwire.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if resp.StatusCode != 400 {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestParseUsageHeaderErrors(t *testing.T) {
	for _, bad := range []string{"", "1,2", "a,b,c", "1,2,3,4"} {
		if _, err := ParseUsageHeader(bad); err == nil {
			t.Errorf("ParseUsageHeader(%q) must fail", bad)
		}
	}
	v, err := ParseUsageHeader(" 100 , 200 , 300 ")
	if err != nil {
		t.Fatalf("spaced header: %v", err)
	}
	want := qos.Vector{CPUTime: 100, DiskTime: 200, NetBytes: 300}
	if v != want {
		t.Errorf("parsed = %v, want %v", v, want)
	}
}

func TestDecodeReportRejectsGarbage(t *testing.T) {
	if _, err := DecodeReport([]byte("{broken")); err == nil {
		t.Error("garbage report must fail")
	}
}

func TestPageSize(t *testing.T) {
	tests := []struct {
		path string
		want int
	}{
		{"/static/1234.html", 1234},
		{"/deep/path/42.html", 42},
		{"/cgi-bin/app", 3 * 1024},
		{"/index.html", 6 * 1024},
		{"/static/notanumber.html", 6 * 1024},
		{"/static/0.html", 0},
	}
	for _, tt := range tests {
		if got := pageSize(tt.path); got != tt.want {
			t.Errorf("pageSize(%q) = %d, want %d", tt.path, got, tt.want)
		}
	}
}

func TestDelayHoldsResponse(t *testing.T) {
	addr, _ := startBackend(t, Config{Node: 1, Delay: 1.0})
	start := time.Now()
	resp := get(t, addr, "h", "/static/6144.html", nil)
	elapsed := time.Since(start)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// 6 KB page: ≈1.85 ms CPU + ≈0.8 ms disk modeled time.
	if elapsed < 2*time.Millisecond {
		t.Errorf("elapsed = %v, want ≥ ≈2.6ms of simulated service time", elapsed)
	}
	if !strings.Contains(resp.Header["Content-Type"], "text/html") {
		t.Errorf("content type = %q", resp.Header["Content-Type"])
	}
}
