// Package benchkit prepares the micro-benchmark scenarios behind Table 3 —
// the per-connection and per-packet costs of Gage's splicing path — so the
// root benchmark suite and the gagebench CLI measure exactly the same
// operations: first-leg connection setup at the RDN, second-leg setup at an
// RPN's local service manager, URL-packet classification, connection-table
// forwarding, and inbound/outbound sequence-address remapping.
package benchkit

import (
	"fmt"
	"testing"
	"time"

	"gage/internal/classify"
	"gage/internal/httpwire"
	"gage/internal/netsim"
	"gage/internal/qos"
	"gage/internal/splice"
	"gage/internal/vclock"
)

// Scenario is a prepared splicing micro-benchmark world.
type Scenario struct {
	Engine *vclock.Engine
	Net    *netsim.Network
	RDN    *splice.RDN
	LSM    *splice.LSM

	// URLPayload is a representative HTTP request head.
	URLPayload []byte

	// Mute suppresses the scenario web server's response, so setup-path
	// benchmarks do not time response generation and delivery.
	Mute bool

	classifier classify.Classifier
	last       *splice.PendingRequest
}

// clusterIP and addresses used by the scenario.
var (
	scenClusterIP = netsim.IPAddr{10, 0, 0, 1}
	scenRPNIP     = netsim.IPAddr{10, 0, 1, 1}
	scenClientIP  = netsim.IPAddr{10, 0, 2, 1}
)

// NewScenario builds an RDN and one LSM (with a trivially-responding web
// server) on a fresh zero-latency network.
func NewScenario() (*Scenario, error) {
	engine := vclock.NewEngine(time.Time{})
	netw := netsim.NewNetwork(engine, 0)
	dir, err := qos.NewDirectory([]qos.Subscriber{
		{ID: "site1", Hosts: []string{"www.site1.example"}, Reservation: 100},
		{ID: "site2", Hosts: []string{"www.site2.example"}, Reservation: 100},
	})
	if err != nil {
		return nil, err
	}
	sc := &Scenario{
		Engine:     engine,
		Net:        netw,
		classifier: classify.NewHostClassifier(dir),
	}
	sc.RDN, err = splice.NewRDN(netw, 1, scenClusterIP, sc.classifier, func(pr *splice.PendingRequest) { sc.last = pr })
	if err != nil {
		return nil, err
	}
	sc.LSM, err = splice.NewLSM(netw, 100, scenRPNIP, scenClusterIP)
	if err != nil {
		return nil, err
	}
	err = sc.LSM.Stack().Listen(splice.WebPort, func(c *netsim.Conn) {
		c.OnData = func(conn *netsim.Conn, _ []byte) {
			if sc.Mute {
				return
			}
			conn.Send([]byte("HTTP/1.0 200 OK\r\nContent-Length: 0\r\n\r\n"))
		}
	})
	if err != nil {
		return nil, err
	}
	// A client NIC so response frames resolve and deliver.
	if _, err := netsim.NewStack(netw, 1000, scenClientIP); err != nil {
		return nil, err
	}
	req := &httpwire.Request{Method: "GET", Target: "/index.html", Proto: "HTTP/1.0", Host: "www.site1.example"}
	var buf []byte
	{
		w := &sliceWriter{}
		if err := req.Write(w); err != nil {
			return nil, err
		}
		buf = w.b
	}
	sc.URLPayload = buf
	return sc, nil
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// SYNPacket returns a first-leg SYN for a distinct client port per i.
func (sc *Scenario) SYNPacket(i int) netsim.Packet {
	return netsim.Packet{
		SrcMAC:  1000,
		DstMAC:  1,
		SrcIP:   scenClientIP,
		DstIP:   scenClusterIP,
		SrcPort: uint16(i%60000) + 1024,
		DstPort: splice.WebPort,
		Seq:     uint32(i),
		Flags:   netsim.SYN,
	}
}

// URLPacket returns the first payload packet matching SYNPacket(i).
func (sc *Scenario) URLPacket(i int) netsim.Packet {
	pkt := sc.SYNPacket(i)
	pkt.Flags = netsim.ACK | netsim.PSH
	pkt.Seq++
	pkt.Payload = sc.URLPayload
	return pkt
}

// Establish drives a first-leg handshake and URL classification through the
// RDN, returning the resulting pending request.
func (sc *Scenario) Establish(i int) (*splice.PendingRequest, error) {
	sc.last = nil
	sc.RDN.Receive(sc.SYNPacket(i))
	sc.RDN.Receive(sc.URLPacket(i))
	if sc.last == nil {
		return nil, fmt.Errorf("benchkit: request %d did not classify", i)
	}
	return sc.last, nil
}

// DrainIfNeeded empties the pending event queue when it grows large; call
// it with the benchmark timer stopped.
func (sc *Scenario) DrainIfNeeded() {
	if sc.Engine.Len() > 8192 {
		// Draining cannot fail while the engine is running.
		_ = sc.Engine.Drain()
	}
}

// ClassifyOnce performs one URL-packet classification: parse the HTTP head
// and resolve the subscriber.
func (sc *Scenario) ClassifyOnce() (qos.SubscriberID, error) {
	req, err := httpwire.ParseRequest(sc.URLPayload)
	if err != nil {
		return "", err
	}
	id, ok := sc.classifier.Classify(req.Host, req.Path())
	if !ok {
		return "", fmt.Errorf("benchkit: unclassified host %q", req.Host)
	}
	return id, nil
}

// OpCost is one measured Table-3 operation.
type OpCost struct {
	// Name matches the paper's Table 3 column.
	Name string
	// Measured is this implementation's cost per operation.
	Measured time.Duration
	// Paper is the cost the paper reports on its 2002 testbed.
	Paper time.Duration
}

// MeasureTable3 runs every Table-3 micro-benchmark via testing.Benchmark
// and returns the measured costs in the paper's column order.
func MeasureTable3() ([]OpCost, error) {
	var out []OpCost
	add := func(name string, paper time.Duration, bench func(b *testing.B)) {
		r := testing.Benchmark(bench)
		out = append(out, OpCost{
			Name:     name,
			Measured: time.Duration(r.NsPerOp()),
			Paper:    paper,
		})
	}

	sc, err := NewScenario()
	if err != nil {
		return nil, err
	}
	add("connection setup (RDN)", 29300*time.Nanosecond, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc.RDN.Receive(sc.SYNPacket(i))
			if i%4096 == 4095 {
				b.StopTimer()
				sc.DrainIfNeeded()
				b.StartTimer()
			}
		}
	})

	add("connection setup (RPN)", 27200*time.Nanosecond, func(b *testing.B) {
		s2, err := NewScenario()
		if err != nil {
			b.Fatalf("scenario: %v", err)
		}
		s2.Mute = true // time the second-leg setup, not response service
		// Pre-build the first-leg and classified request per iteration
		// outside the timer; measure the dispatch handling plus the LSM's
		// second-leg synthesis (delivered by stepping the engine).
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			pending, err := s2.Establish(i)
			if err != nil {
				b.Fatal(err)
			}
			// Drop queued SYNACK deliveries so the timed section below
			// steps only the dispatch-driven events.
			if err := s2.Engine.Drain(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := s2.RDN.Dispatch(pending, 100); err != nil {
				b.Fatalf("dispatch: %v", err)
			}
			for s2.Engine.Len() > 0 {
				s2.Engine.Step()
			}
		}
	})

	add("packet classification", 3000*time.Nanosecond, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sc.ClassifyOnce(); err != nil {
				b.Fatalf("classify: %v", err)
			}
		}
	})

	fsc, err := NewScenario()
	if err != nil {
		return nil, err
	}
	fwd, err := fsc.PrepareForwarding()
	if err != nil {
		return nil, err
	}
	add("packet forwarding", 7000*time.Nanosecond, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fsc.RDN.Receive(fwd)
			if i%4096 == 4095 {
				b.StopTimer()
				fsc.DrainIfNeeded()
				b.StartTimer()
			}
		}
	})

	add("remapping incoming", 1300*time.Nanosecond, func(b *testing.B) {
		pkt := netsim.Packet{DstIP: scenClusterIP, Flags: netsim.ACK, Ack: 100}
		for i := 0; i < b.N; i++ {
			splice.RemapInbound(&pkt, scenRPNIP, 12345)
			Sink += pkt.Ack
		}
	})

	add("remapping outgoing", 4600*time.Nanosecond, func(b *testing.B) {
		pkt := netsim.Packet{SrcIP: scenRPNIP, Seq: 100}
		for i := 0; i < b.N; i++ {
			splice.RemapOutbound(&pkt, scenClusterIP, 100, 1000, 12345)
			Sink += pkt.Seq
		}
	})
	return out, nil
}

// Sink defeats dead-code elimination in the per-packet micro-benchmarks.
var Sink uint32

// PrepareForwarding sets up one spliced connection and returns a bridged
// client packet whose flow is in the RDN's connection table.
func (sc *Scenario) PrepareForwarding() (netsim.Packet, error) {
	syn := sc.SYNPacket(1)
	pending, err := sc.Establish(1)
	if err != nil {
		return netsim.Packet{}, err
	}
	if err := sc.RDN.Dispatch(pending, 100); err != nil {
		return netsim.Packet{}, err
	}
	if err := sc.Engine.Drain(); err != nil {
		return netsim.Packet{}, err
	}
	return netsim.Packet{
		SrcMAC:  syn.SrcMAC,
		DstMAC:  1,
		SrcIP:   syn.SrcIP,
		DstIP:   syn.DstIP,
		SrcPort: syn.SrcPort,
		DstPort: syn.DstPort,
		Seq:     syn.Seq + uint32(len(sc.URLPayload)) + 1,
		Ack:     1,
		Flags:   netsim.ACK,
	}, nil
}
