package benchkit

import (
	"fmt"
	"testing"

	"gage/internal/core"
	"gage/internal/flightrec"
	"gage/internal/qos"
)

// schedNodes is the cluster width of the scheduler-scale scenario.
const schedNodes = 8

// schedHot is how many subscribers are actively loaded each cycle. The
// point of the scenario is that per-cycle cost tracks this number — the
// working set — and not the directory size, so it stays fixed while the
// total subscriber count sweeps 1k→100k.
const schedHot = 64

// schedPerCycle is how many requests arrive per scheduling cycle: matched to
// the fixture's aggregate drain (8 nodes × 1 generic unit per cycle) so
// queues neither grow nor empty in steady state.
const schedPerCycle = 8

// SchedScale is a prepared scheduler hot-path scenario: a directory of
// Total subscribers of which a fixed small set is continuously loaded, over
// an 8-node cluster, with accounting fed back every cycle from the
// scheduler's own dispatch decisions. One Cycle() is one steady-state
// scheduling cycle; after Warm() it performs no heap allocation, so both
// the per-cycle cost benchmark and the allocs-per-Tick regression gate can
// drive the identical loop.
type SchedScale struct {
	Sched *core.Scheduler
	Total int

	hot    []qos.SubscriberID
	reps   []core.UsageReport // one per node; maps reused across cycles
	nextID uint64
	next   int
}

// NewSchedScale builds the scenario with the given directory size,
// optionally with a flight recorder attached (the recorder's active-only
// cycle records are part of the hot path when enabled).
func NewSchedScale(total int, record bool) (*SchedScale, error) {
	if total < schedHot {
		return nil, fmt.Errorf("benchkit: need at least %d subscribers, got %d", schedHot, total)
	}
	subs := make([]qos.Subscriber, total)
	for i := range subs {
		subs[i] = qos.Subscriber{
			ID:          qos.SubscriberID(fmt.Sprintf("s%06d", i)),
			Reservation: 10,
			QueueLimit:  1024,
		}
	}
	dir, err := qos.NewDirectory(subs)
	if err != nil {
		return nil, err
	}
	nodes := make([]core.NodeConfig, schedNodes)
	for i := range nodes {
		nodes[i] = core.NodeConfig{ID: core.NodeID(i), Capacity: schedNodeCap()}
	}
	sched, err := core.New(dir, nodes, core.Config{})
	if err != nil {
		return nil, err
	}
	if record {
		sched.SetRecorder(flightrec.NewRecorder(flightrec.Config{}))
	}
	sc := &SchedScale{Sched: sched, Total: total}
	sc.hot = make([]qos.SubscriberID, schedHot)
	for i := range sc.hot {
		sc.hot[i] = subs[i].ID
	}
	sc.reps = make([]core.UsageReport, schedNodes)
	for i := range sc.reps {
		sc.reps[i] = core.UsageReport{
			Node:         core.NodeID(i),
			BySubscriber: make(map[qos.SubscriberID]core.SubscriberUsage, schedHot),
		}
	}
	return sc, nil
}

// Cycle runs one scheduling cycle: the cycle's arrivals spread round-robin
// over the hot set, one Tick, and a per-node accounting message completing
// everything dispatched (actual usage = predicted, so the feedback loop is
// in equilibrium and pending charges never accumulate).
func (sc *SchedScale) Cycle() {
	for i := 0; i < schedPerCycle; i++ {
		sc.nextID++
		// The hot queues never reach their limit in equilibrium.
		_ = sc.Sched.Enqueue(core.Request{ID: sc.nextID, Subscriber: sc.hot[sc.next]})
		sc.next++
		if sc.next == len(sc.hot) {
			sc.next = 0
		}
	}
	disp := sc.Sched.Tick()
	for i := range sc.reps {
		rep := &sc.reps[i]
		rep.Total = qos.Vector{}
		clear(rep.BySubscriber)
	}
	for i := range disp {
		d := &disp[i]
		rep := &sc.reps[int(d.Node)]
		u := rep.BySubscriber[d.Req.Subscriber]
		u.Usage = u.Usage.Add(d.Predicted)
		u.Completed++
		rep.BySubscriber[d.Req.Subscriber] = u
		rep.Total = rep.Total.Add(d.Predicted)
	}
	for i := range sc.reps {
		// Every node is registered; empty reports are valid (idle node).
		_ = sc.Sched.ReportUsage(sc.reps[i])
	}
}

// Warm runs enough cycles to reach the allocation-free steady state: queue
// and heap capacities grown, prediction EWMAs settled, and — when a
// recorder is attached — the ring fully populated so record slices are
// recycled rather than first-use allocated.
func (sc *SchedScale) Warm() {
	laps := 2 * flightrec.DefaultRingSize
	for i := 0; i < laps; i++ {
		sc.Cycle()
	}
}

// schedNodeCap is one generic request per 10 ms cycle: 100 GRPS.
func schedNodeCap() qos.Vector {
	return qos.GenericCost().Scale(100)
}

// SchedCost is one measured scheduler-scale configuration.
type SchedCost struct {
	Subs     int
	Recorder bool
	NsPerOp  int64
	Allocs   int64
}

// MeasureSchedScale measures the steady-state per-cycle scheduler cost at
// 1k/10k/100k registered subscribers, recorder off and on — the numbers the
// gagebench CLI prints and make bench-sched pins in BENCH_sched.json. Flat
// cost across the sweep is the O(1)-per-decision claim.
func MeasureSchedScale() ([]SchedCost, error) {
	var out []SchedCost
	for _, total := range []int{1_000, 10_000, 100_000} {
		for _, rec := range []bool{false, true} {
			sc, err := NewSchedScale(total, rec)
			if err != nil {
				return nil, err
			}
			sc.Warm()
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sc.Cycle()
				}
			})
			out = append(out, SchedCost{
				Subs:     total,
				Recorder: rec,
				NsPerOp:  r.NsPerOp(),
				Allocs:   r.AllocsPerOp(),
			})
		}
	}
	return out, nil
}
