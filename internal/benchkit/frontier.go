package benchkit

import (
	"fmt"
	"runtime"
	"testing"

	"gage/internal/core"
	"gage/internal/frontier"
	"gage/internal/qos"
)

// frontierGroups matches the tier's golden partition population: 32 tenant
// groups named tier00..tier31.
const frontierGroups = 32

// frontierPerGroup subscribers per group; all carry traffic, so the whole
// tier is active and every instance's cycle does real scheduling work.
const frontierPerGroup = 4

// frontierNodes is the back-end width shared by every instance.
const frontierNodes = 8

// frontierPerCycle arrivals per scheduling cycle across the whole tier: 4
// generic units against the tier-wide 8-unit drain, so every partition runs
// at 50% utilization and queues drain each cycle.
const frontierPerCycle = 4

// FrontierScale is a prepared N-instance front-end tier: the fixed
// 32-group population rendezvous-partitioned across N schedulers, each
// holding its reservation share of every node's capacity. One Cycle() is
// one tier-wide scheduling cycle — arrivals routed to their partition
// owner, every instance ticked, same-cycle accounting fed back per
// instance. After Warm() it performs no heap allocation, so the measured
// number is pure scheduling cost.
//
// The scale-out claim the sweep pins: tier-wide per-cycle cost stays flat
// as RDNs grow (partitioning adds no per-instance overhead), so each
// instance does ~1/N of the single-RDN baseline's work per cycle.
type FrontierScale struct {
	RDNs   int
	Scheds []*core.Scheduler

	subs    []qos.SubscriberID
	ownerOf []int // parallel to subs: owning scheduler index
	reps    [][]core.UsageReport
	nextID  uint64
	pos     int
}

// NewFrontierScale builds the tier with the given instance count.
func NewFrontierScale(rdns int) (*FrontierScale, error) {
	part, err := frontier.NewPartitioner(rdns)
	if err != nil {
		return nil, err
	}
	total := frontierGroups * frontierPerGroup
	subs := make([]qos.Subscriber, 0, total)
	for g := 0; g < frontierGroups; g++ {
		group := fmt.Sprintf("tier%02d", g)
		for s := 0; s < frontierPerGroup; s++ {
			subs = append(subs, qos.Subscriber{
				ID: qos.SubscriberID(fmt.Sprintf("%s-s%d", group, s)),
				// Uniform arrivals: each subscriber's share of the tier's
				// frontierPerCycle×100 GRPS, sized 1.5× so queues drain.
				Reservation: qos.GRPS(1.5*frontierPerCycle*100/float64(total)) + 1,
				QueueLimit:  1024,
				Group:       group,
			})
		}
	}
	sc := &FrontierScale{RDNs: rdns}
	byRDN := make([][]qos.Subscriber, rdns)
	owner := make(map[qos.SubscriberID]int, total)
	var totalRes qos.GRPS
	partRes := make([]qos.GRPS, rdns)
	for _, sub := range subs {
		r := part.Owner(sub.Group) - 1
		byRDN[r] = append(byRDN[r], sub)
		owner[sub.ID] = r
		partRes[r] += sub.Reservation
		totalRes += sub.Reservation
	}
	for r := 0; r < rdns; r++ {
		rdir, err := qos.NewDirectory(byRDN[r])
		if err != nil {
			return nil, err
		}
		share := float64(partRes[r] / totalRes)
		if share <= 0 {
			share = 1.0 / float64(rdns)
		}
		nodes := make([]core.NodeConfig, frontierNodes)
		for i := range nodes {
			c := schedNodeCap()
			if rdns > 1 {
				c = c.Scale(share)
			}
			nodes[i] = core.NodeConfig{ID: core.NodeID(i), Capacity: c}
		}
		s, err := core.New(rdir, nodes, core.Config{})
		if err != nil {
			return nil, err
		}
		sc.Scheds = append(sc.Scheds, s)
	}
	sc.subs = make([]qos.SubscriberID, total)
	sc.ownerOf = make([]int, total)
	for i, sub := range subs {
		sc.subs[i] = sub.ID
		sc.ownerOf[i] = owner[sub.ID]
	}
	sc.reps = make([][]core.UsageReport, rdns)
	for r := range sc.reps {
		sc.reps[r] = make([]core.UsageReport, frontierNodes)
		for i := range sc.reps[r] {
			sc.reps[r][i] = core.UsageReport{
				Node:         core.NodeID(i),
				BySubscriber: make(map[qos.SubscriberID]core.SubscriberUsage, total),
			}
		}
	}
	return sc, nil
}

// Cycle runs one tier-wide scheduling cycle.
func (sc *FrontierScale) Cycle() {
	for i := 0; i < frontierPerCycle; i++ {
		sc.nextID++
		// Reservations cover the uniform arrival rate; queues never fill.
		_ = sc.Scheds[sc.ownerOf[sc.pos]].Enqueue(core.Request{ID: sc.nextID, Subscriber: sc.subs[sc.pos]})
		sc.pos++
		if sc.pos == len(sc.subs) {
			sc.pos = 0
		}
	}
	for r, s := range sc.Scheds {
		disp := s.Tick()
		reps := sc.reps[r]
		for i := range reps {
			reps[i].Total = qos.Vector{}
			clear(reps[i].BySubscriber)
		}
		for i := range disp {
			d := &disp[i]
			rep := &reps[int(d.Node)]
			u := rep.BySubscriber[d.Req.Subscriber]
			u.Usage = u.Usage.Add(d.Predicted)
			u.Completed++
			rep.BySubscriber[d.Req.Subscriber] = u
			rep.Total = rep.Total.Add(d.Predicted)
		}
		for i := range reps {
			_ = s.ReportUsage(reps[i])
		}
	}
}

// Warm reaches the allocation-free steady state: every subscriber
// materialized, queue rings and heap capacities grown to their peak
// occupancy, maps sized.
func (sc *FrontierScale) Warm() {
	// Each subscriber sees one arrival every len(subs)/perCycle cycles, and
	// its queue ring only stops growing after ~130 arrivals (the pop-side
	// compaction threshold), so warm long enough for every ring to get there.
	laps := 160 * len(sc.subs) / frontierPerCycle
	for i := 0; i < laps; i++ {
		sc.Cycle()
	}
	runtime.GC()
}

// FrontierCost is one measured tier width.
type FrontierCost struct {
	RDNs    int
	NsPerOp int64
	// NsPerRDN is NsPerOp/RDNs — each instance's share of the tier cycle.
	NsPerRDN int64
	Allocs   int64
}

// MeasureFrontierScale measures the steady-state tier-wide cycle cost at
// 1, 2 and 3 instances over the same population — the numbers gagebench
// prints and make bench-frontier pins in BENCH_frontier.json.
func MeasureFrontierScale() ([]FrontierCost, error) {
	var out []FrontierCost
	for _, rdns := range []int{1, 2, 3} {
		sc, err := NewFrontierScale(rdns)
		if err != nil {
			return nil, err
		}
		sc.Warm()
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sc.Cycle()
			}
		})
		out = append(out, FrontierCost{
			RDNs:     rdns,
			NsPerOp:  r.NsPerOp(),
			NsPerRDN: r.NsPerOp() / int64(rdns),
			Allocs:   r.AllocsPerOp(),
		})
	}
	return out, nil
}
