package benchkit

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"gage/internal/core"
	"gage/internal/flightrec"
	"gage/internal/qos"
)

// hierNodes is the cluster width of the hierarchical-scale scenario.
const hierNodes = 8

// hierGroups is how many subscriber groups (tenant tiers) the registered
// population spreads across, round-robin by index.
const hierGroups = 32

// hierHot is the fixed active-set size: how many distinct subscribers carry
// traffic. The point of the scenario is that per-cycle cost tracks this
// number and the active group count — never the registered population — so
// it stays fixed while the total sweeps 1k→1M.
const hierHot = 100

// hierPerCycle is how many requests arrive per scheduling cycle: 4 generic
// units against the fixture's 8-unit aggregate drain, so the cluster runs at
// 50% utilization and every hot queue drains within its reservation.
const hierPerCycle = 4

// hierSchedLen is the length of the precomputed arrival schedule replayed
// cyclically; a power of two a few laps long keeps the Zipf mix stationary.
const hierSchedLen = 4096

// hierSeed makes the Zipf draws reproducible across runs and machines.
const hierSeed = 20030519

// HierScale is a prepared hierarchical-scheduler scenario: Total registered
// subscribers spread over hierGroups groups, of which a fixed
// Zipf(1.1)-skewed hot set of hierHot subscribers carries all traffic. Hot
// reservations are sized 1.5× each subscriber's arrival share, so queues
// drain every cycle and the steady state neither drops nor grows queues.
// One Cycle() is one scheduling cycle with same-cycle accounting feedback;
// after Warm() it performs no heap allocation.
type HierScale struct {
	Sched *core.Scheduler
	Total int

	hot      []qos.SubscriberID
	schedule []int32 // Zipf-skewed indices into hot, replayed cyclically
	reps     []core.UsageReport
	nextID   uint64
	pos      int
}

// NewHierScale builds the scenario with the given registered population,
// optionally with a flight recorder attached.
func NewHierScale(total int, record bool) (*HierScale, error) {
	if total < hierHot {
		return nil, fmt.Errorf("benchkit: need at least %d subscribers, got %d", hierHot, total)
	}
	// Draw the hot set with Zipf(1.1) skew over the whole population, then
	// the arrival schedule with the same skew over the hot set, all from
	// one seeded source so every run schedules identically.
	r := rand.New(rand.NewSource(hierSeed))
	zpop := rand.NewZipf(r, 1.1, 1, uint64(total-1))
	hotIdx := make([]int, 0, hierHot)
	seen := make(map[int]bool, hierHot)
	for len(hotIdx) < hierHot {
		i := int(zpop.Uint64())
		if !seen[i] {
			seen[i] = true
			hotIdx = append(hotIdx, i)
		}
	}
	zhot := rand.NewZipf(r, 1.1, 1, uint64(hierHot-1))
	schedule := make([]int32, hierSchedLen)
	counts := make([]int, hierHot)
	for i := range schedule {
		k := int32(zhot.Uint64())
		schedule[i] = k
		counts[k]++
	}
	// Reservation sizing: the schedule delivers hierPerCycle generic units
	// per 10 ms cycle, i.e. hierPerCycle×100 GRPS in aggregate. Each hot
	// subscriber reserves 1.5× its share (plus a floor), so the reservation
	// round alone covers its arrivals and short Zipf bursts ride the spare
	// round. Σ reservations ≈ 600 GRPS against 800 GRPS capacity.
	hotRes := make(map[int]qos.GRPS, hierHot)
	for j, i := range hotIdx {
		share := float64(counts[j]) / float64(hierSchedLen)
		res := qos.GRPS(share*float64(hierPerCycle*100)*1.5) + 1
		hotRes[i] = res
	}
	subs := make([]qos.Subscriber, total)
	groupNames := make([]string, hierGroups)
	for g := range groupNames {
		groupNames[g] = fmt.Sprintf("tier%02d", g)
	}
	for i := range subs {
		res, hot := hotRes[i]
		if !hot {
			res = 10
		}
		subs[i] = qos.Subscriber{
			ID:          qos.SubscriberID(fmt.Sprintf("s%07d", i)),
			Reservation: res,
			QueueLimit:  1024,
			Group:       groupNames[i%hierGroups],
		}
	}
	dir, err := qos.NewDirectory(subs)
	if err != nil {
		return nil, err
	}
	nodes := make([]core.NodeConfig, hierNodes)
	for i := range nodes {
		nodes[i] = core.NodeConfig{ID: core.NodeID(i), Capacity: schedNodeCap()}
	}
	sched, err := core.New(dir, nodes, core.Config{})
	if err != nil {
		return nil, err
	}
	if record {
		sched.SetRecorder(flightrec.NewRecorder(flightrec.Config{}))
	}
	sc := &HierScale{Sched: sched, Total: total, schedule: schedule}
	sc.hot = make([]qos.SubscriberID, hierHot)
	for j, i := range hotIdx {
		sc.hot[j] = subs[i].ID
	}
	sc.reps = make([]core.UsageReport, hierNodes)
	for i := range sc.reps {
		sc.reps[i] = core.UsageReport{
			Node:         core.NodeID(i),
			BySubscriber: make(map[qos.SubscriberID]core.SubscriberUsage, hierHot),
		}
	}
	return sc, nil
}

// Cycle runs one scheduling cycle: the schedule's next arrivals, one Tick,
// and per-node accounting completing everything dispatched (actual usage =
// predicted, so the feedback loop is in equilibrium).
func (sc *HierScale) Cycle() {
	for i := 0; i < hierPerCycle; i++ {
		sc.nextID++
		// Reservations cover the schedule's rates, so queues never reach
		// their limit.
		_ = sc.Sched.Enqueue(core.Request{ID: sc.nextID, Subscriber: sc.hot[sc.schedule[sc.pos]]})
		sc.pos++
		if sc.pos == len(sc.schedule) {
			sc.pos = 0
		}
	}
	disp := sc.Sched.Tick()
	for i := range sc.reps {
		rep := &sc.reps[i]
		rep.Total = qos.Vector{}
		clear(rep.BySubscriber)
	}
	for i := range disp {
		d := &disp[i]
		rep := &sc.reps[int(d.Node)]
		u := rep.BySubscriber[d.Req.Subscriber]
		u.Usage = u.Usage.Add(d.Predicted)
		u.Completed++
		rep.BySubscriber[d.Req.Subscriber] = u
		rep.Total = rep.Total.Add(d.Predicted)
	}
	for i := range sc.reps {
		_ = sc.Sched.ReportUsage(sc.reps[i])
	}
}

// Warm runs enough cycles to reach the allocation-free steady state: queue,
// heap, and active-list capacities grown, every hot subscriber materialized
// and seen at its peak burst, and — with a recorder — the ring lapped so
// record slices recycle.
func (sc *HierScale) Warm() {
	laps := 2 * flightrec.DefaultRingSize
	if laps < 2*hierSchedLen/hierPerCycle {
		// At least two full schedule replays, so every arrival pattern the
		// measured loop will see has already happened once.
		laps = 2 * hierSchedLen / hierPerCycle
	}
	for i := 0; i < laps; i++ {
		sc.Cycle()
	}
	// Settle the heap: construction of a million-entry directory leaves the
	// collector one cycle behind, and since the steady state allocates
	// nothing, forcing that collection here keeps it out of the measured
	// loop — what remains is scheduling cost, not construction debt.
	runtime.GC()
}

// HierCost is one measured hierarchical-scale configuration.
type HierCost struct {
	Subs     int
	Recorder bool
	NsPerOp  int64
	Allocs   int64
}

// MeasureHierScale measures the steady-state per-cycle cost at 1k/10k/100k/1M
// registered subscribers across 32 groups, recorder off and on — the numbers
// the gagebench CLI prints and make bench-hier pins in BENCH_hier.json. Flat
// cost across the sweep is the O(active)-per-cycle claim: the hot set is
// pinned at 100 subscribers while the registered population grows 1000×.
func MeasureHierScale() ([]HierCost, error) {
	var out []HierCost
	for _, total := range []int{1_000, 10_000, 100_000, 1_000_000} {
		for _, rec := range []bool{false, true} {
			sc, err := NewHierScale(total, rec)
			if err != nil {
				return nil, err
			}
			sc.Warm()
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sc.Cycle()
				}
			})
			out = append(out, HierCost{
				Subs:     total,
				Recorder: rec,
				NsPerOp:  r.NsPerOp(),
				Allocs:   r.AllocsPerOp(),
			})
		}
	}
	return out, nil
}
