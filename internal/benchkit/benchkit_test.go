package benchkit

import (
	"testing"
)

func TestScenarioEstablish(t *testing.T) {
	sc, err := NewScenario()
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	pr, err := sc.Establish(1)
	if err != nil {
		t.Fatalf("Establish: %v", err)
	}
	if pr.Subscriber != "site1" {
		t.Errorf("subscriber = %q, want site1", pr.Subscriber)
	}
	if pr.Host != "www.site1.example" || pr.Path != "/index.html" {
		t.Errorf("host/path = %q %q", pr.Host, pr.Path)
	}
}

func TestClassifyOnce(t *testing.T) {
	sc, err := NewScenario()
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	id, err := sc.ClassifyOnce()
	if err != nil {
		t.Fatalf("ClassifyOnce: %v", err)
	}
	if id != "site1" {
		t.Errorf("classified = %q, want site1", id)
	}
}

func TestPrepareForwarding(t *testing.T) {
	sc, err := NewScenario()
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	pkt, err := sc.PrepareForwarding()
	if err != nil {
		t.Fatalf("PrepareForwarding: %v", err)
	}
	before := sc.RDN.Stats().Forwarded
	sc.RDN.Receive(pkt)
	if got := sc.RDN.Stats().Forwarded; got != before+1 {
		t.Errorf("forwarded = %d, want %d (table hit)", got, before+1)
	}
}

func TestMeasureTable3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("table 3 measurement is slow in -short mode")
	}
	rows, err := MeasureTable3()
	if err != nil {
		t.Fatalf("MeasureTable3: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byName := make(map[string]OpCost, len(rows))
	for _, r := range rows {
		if r.Measured <= 0 {
			t.Errorf("%s measured %v, want > 0", r.Name, r.Measured)
		}
		byName[r.Name] = r
	}
	// The load-bearing shape claims: connection setup costs dominate the
	// per-packet operations, and outgoing remapping costs at least as much
	// as incoming (it touches more header fields).
	setup := byName["connection setup (RPN)"].Measured
	remapIn := byName["remapping incoming"].Measured
	remapOut := byName["remapping outgoing"].Measured
	if setup < 10*remapIn {
		t.Errorf("RPN setup (%v) must dwarf per-packet remapping (%v)", setup, remapIn)
	}
	if remapOut < remapIn/2 {
		t.Errorf("remap out (%v) unexpectedly far below remap in (%v)", remapOut, remapIn)
	}
}
