package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestExpositionRoundTrip(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	e := NewExposition()
	e.Family("gage_requests_served_total", "counter", "Requests relayed successfully.")
	e.Add("gage_requests_served_total", nil, 42)
	e.Family("gage_subscriber_queue_length", "gauge", "Queued requests per subscriber.")
	e.Add("gage_subscriber_queue_length", []Label{{"subscriber", "site1"}}, 3)
	e.Add("gage_subscriber_queue_length", []Label{{"subscriber", `we"ird\sub`}}, 0)
	e.Family("gage_request_latency_seconds", "summary", "End-to-end latency.")
	e.Summary("gage_request_latency_seconds", []Label{{"subscriber", "site1"}}, h.Snapshot(), []float64{0.5, 0.99})
	b, err := e.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	series, err := Parse(b)
	if err != nil {
		t.Fatalf("own exposition fails own lint: %v\n%s", err, b)
	}
	if got := series["gage_requests_served_total"].Value; got != 42 {
		t.Errorf("served = %v, want 42", got)
	}
	weird := `gage_subscriber_queue_length{subscriber="we\"ird\\sub"}`
	if _, ok := series[weird]; !ok {
		t.Errorf("escaped label series missing; have %v", keys(series))
	}
	if got := series[`gage_request_latency_seconds_count{subscriber="site1"}`].Value; got != 100 {
		t.Errorf("summary count = %v, want 100", got)
	}
	p50 := series[`gage_request_latency_seconds{quantile="0.5",subscriber="site1"}`].Value
	if p50 < 0.045 || p50 > 0.055 {
		t.Errorf("p50 = %v, want ≈0.050", p50)
	}
}

func keys(m map[string]Series) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestExpositionBuilderRejectsMisuse(t *testing.T) {
	// Duplicate series.
	e := NewExposition()
	e.Family("x_total", "counter", "h")
	e.Add("x_total", []Label{{"a", "1"}}, 1)
	e.Add("x_total", []Label{{"a", "1"}}, 2)
	if _, err := e.Bytes(); err == nil {
		t.Error("duplicate series accepted")
	}
	// Counter not ending in _total.
	e = NewExposition()
	e.Family("x_count_of_things", "counter", "h")
	if _, err := e.Bytes(); err == nil {
		t.Error("counter without _total accepted")
	}
	// Negative counter value.
	e = NewExposition()
	e.Family("x_total", "counter", "h")
	e.Add("x_total", nil, -1)
	if _, err := e.Bytes(); err == nil {
		t.Error("negative counter accepted")
	}
	// Sample outside its family block.
	e = NewExposition()
	e.Family("a_total", "counter", "h")
	e.Family("b_total", "counter", "h")
	e.Add("a_total", nil, 1)
	if _, err := e.Bytes(); err == nil {
		t.Error("sample outside family block accepted")
	}
	// Reopened family.
	e = NewExposition()
	e.Family("a_total", "counter", "h")
	e.Add("a_total", nil, 1)
	e.Family("b_total", "counter", "h")
	e.Add("b_total", nil, 1)
	e.Family("a_total", "counter", "h")
	if _, err := e.Bytes(); err == nil {
		t.Error("reopened family accepted")
	}
	// Invalid metric name.
	e = NewExposition()
	e.Family("2bad", "gauge", "h")
	if _, err := e.Bytes(); err == nil {
		t.Error("invalid metric name accepted")
	}
}

func TestLintRejectsMalformedText(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"series without TYPE", "x 1\n"},
		{"TYPE without HELP", "# TYPE x gauge\nx 1\n"},
		{"unknown type", "# HELP x h\n# TYPE x widget\nx 1\n"},
		{"duplicate series", "# HELP x h\n# TYPE x gauge\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n"},
		{"duplicate series reordered labels", "# HELP x h\n# TYPE x gauge\nx{a=\"1\",b=\"2\"} 1\nx{b=\"2\",a=\"1\"} 2\n"},
		{"interleaved families", "# HELP x h\n# TYPE x gauge\n# HELP y h\n# TYPE y gauge\nx 1\ny 2\n"},
		{"reopened family", "# HELP x h\n# TYPE x gauge\nx 1\n# HELP y h\n# TYPE y gauge\ny 1\nx 2\n"},
		{"counter without _total", "# HELP x h\n# TYPE x counter\nx 1\n"},
		{"negative counter", "# HELP x_total h\n# TYPE x_total counter\nx_total -4\n"},
		{"bad value", "# HELP x h\n# TYPE x gauge\nx one\n"},
		{"bad label name", "# HELP x h\n# TYPE x gauge\nx{9a=\"1\"} 1\n"},
		{"unterminated label", "# HELP x h\n# TYPE x gauge\nx{a=\"1 1\n"},
		{"duplicate label", "# HELP x h\n# TYPE x gauge\nx{a=\"1\",a=\"2\"} 1\n"},
		{"family with no samples", "# HELP x h\n# TYPE x gauge\n"},
		{"blank line inside", "# HELP x h\n# TYPE x gauge\n\nx 1\n"},
		{"stray comment", "# HELP x h\n# TYPE x gauge\n# comment\nx 1\n"},
	}
	for _, c := range cases {
		if err := Lint([]byte(c.text)); err == nil {
			t.Errorf("%s: lint accepted:\n%s", c.name, c.text)
		}
	}

	good := strings.Join([]string{
		"# HELP up h",
		"# TYPE up gauge",
		"up 1",
		"# HELP lat seconds",
		"# TYPE lat summary",
		`lat{quantile="0.5"} 0.01`,
		"lat_sum 12.5",
		"lat_count 100",
		"# HELP req_total h",
		"# TYPE req_total counter",
		`req_total{code="200"} 10`,
		`req_total{code="503"} 2`,
		"",
	}, "\n")
	if err := Lint([]byte(good)); err != nil {
		t.Errorf("lint rejected well-formed text: %v", err)
	}
}
