package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gage/internal/obs"
)

// Stage identifies one step of a request's lifecycle through the
// dispatcher. Stages are ordered: a valid trace's spans carry strictly
// increasing stages and end with exactly one StageSettle.
type Stage uint8

const (
	// StageClassify is the virtual-host classification decision.
	StageClassify Stage = iota
	// StageQueue marks the request entering its subscriber's FIFO.
	StageQueue
	// StageDispatch marks the scheduler's dispatch decision reaching the
	// waiting connection goroutine, with the chosen node.
	StageDispatch
	// StageRelay marks the relay attempt against the dispatched node.
	StageRelay
	// StageRetry marks the single re-dispatch to an alternate node after
	// the first relay attempt failed at dial time.
	StageRetry
	// StageSettle is the terminal span; its note is the Outcome.
	StageSettle
)

// String names the stage for dumps and logs.
func (st Stage) String() string {
	switch st {
	case StageClassify:
		return "classify"
	case StageQueue:
		return "queue"
	case StageDispatch:
		return "dispatch"
	case StageRelay:
		return "relay"
	case StageRetry:
		return "retry"
	case StageSettle:
		return "settle"
	default:
		return "unknown"
	}
}

// MarshalText serializes the stage name into JSON dumps.
func (st Stage) MarshalText() ([]byte, error) { return []byte(st.String()), nil }

// UnmarshalText parses a stage name, so JSON trace dumps round-trip.
func (st *Stage) UnmarshalText(b []byte) error {
	for s := StageClassify; s <= StageSettle; s++ {
		if string(b) == s.String() {
			*st = s
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown stage %q", b)
}

// Outcome is the terminal disposition carried by a trace's settle span.
// Every sampled request ends in exactly one of these.
type Outcome string

const (
	// OutcomeServed is a complete, successful relay.
	OutcomeServed Outcome = "served"
	// OutcomeError is a relay failure answered 502.
	OutcomeError Outcome = "error"
	// OutcomeRejected is a queue-limit overflow answered 503.
	OutcomeRejected Outcome = "rejected"
	// OutcomeQueueTimeout is a request abandoned after waiting QueueTimeout
	// for a dispatch decision, its scheduler charge reclaimed.
	OutcomeQueueTimeout Outcome = "queue-timeout"
	// OutcomeShed is an admission-control refusal (reserved-first in-flight
	// quotas) answered 503.
	OutcomeShed Outcome = "shed"
	// OutcomeUnclassified is a request with no matching subscriber (404).
	OutcomeUnclassified Outcome = "unclassified"
	// OutcomeDrainAbort is a request cut short by shutdown after the drain
	// window closed.
	OutcomeDrainAbort Outcome = "drain-abort"
	// OutcomeClientGone is a relayed response the client hung up on.
	OutcomeClientGone Outcome = "client-gone"
	// OutcomeNotOwned is a request for a tenant group this front end does
	// not own in the multi-RDN tier (503; the client should retry against
	// the group's owner).
	OutcomeNotOwned Outcome = "not-owned"
	// OutcomeFenced is a dispatch refused at relay because the front end
	// was deposed (lost the group's lease epoch) between the scheduling
	// decision and the splice; the charge was reclaimed.
	OutcomeFenced Outcome = "fenced"
	// OutcomeHandedOff is a queued request withdrawn during shutdown because
	// its tenant group migrated to another front end; it is redispatchable
	// there, not lost.
	OutcomeHandedOff Outcome = "handed-off"
)

// Span is one timestamped lifecycle step.
type Span struct {
	Stage Stage     `json:"stage"`
	At    time.Time `json:"at"`
	// Node is the back-end node involved (dispatch/relay/retry spans).
	Node int64 `json:"node,omitempty"`
	// Note carries stage detail: the subscriber for classify spans, the
	// outcome for settle spans.
	Note string `json:"note,omitempty"`
}

// Trace is one sampled request's span sequence. A Trace is built by a
// single goroutine (the connection handler that owns the request) and
// published to the tracer's ring exactly once, by Settle. All methods are
// nil-receiver safe, so unsampled requests pay a single pointer test per
// call site and never allocate.
type Trace struct {
	ReqID uint64 `json:"reqId"`
	// ID is the tier-wide trace identity (obs.Mint); zero when the owner
	// predates trace propagation or minted none.
	ID         obs.TraceID `json:"id,omitempty"`
	Subscriber string      `json:"subscriber,omitempty"`
	Spans      []Span      `json:"spans"`

	t *Tracer
}

// SetSubscriber labels the trace once classification resolves.
func (tr *Trace) SetSubscriber(sub string) {
	if tr == nil {
		return
	}
	tr.Subscriber = sub
}

// SetID attaches the tier-wide trace identity minted at classify time.
func (tr *Trace) SetID(id obs.TraceID) {
	if tr == nil {
		return
	}
	tr.ID = id
}

// Add appends one span at the tracer's current time.
func (tr *Trace) Add(stage Stage, node int64, note string) {
	if tr == nil {
		return
	}
	tr.Spans = append(tr.Spans, Span{Stage: stage, At: tr.t.now(), Node: node, Note: note})
	tr.t.publishSpan(tr, stage, node, note)
}

// Settle appends the terminal span and publishes the trace into the ring.
// Calling Settle more than once publishes only the first time.
func (tr *Trace) Settle(outcome Outcome) {
	if tr == nil {
		return
	}
	if len(tr.Spans) > 0 && tr.Spans[len(tr.Spans)-1].Stage == StageSettle {
		return
	}
	tr.Spans = append(tr.Spans, Span{Stage: StageSettle, At: tr.t.now(), Note: string(outcome)})
	tr.t.publishSpan(tr, StageSettle, 0, string(outcome))
	tr.t.push(*tr)
}

// TracerConfig tunes a Tracer.
type TracerConfig struct {
	// SampleEvery samples every Nth request deterministically (request IDs
	// divisible by N): 1 traces everything, 0 disables tracing entirely.
	SampleEvery int
	// Buffer is the completed-trace ring capacity (default 256).
	Buffer int
}

// Tracer samples request lifecycles deterministically and retains the most
// recent completed traces in a ring buffer.
type Tracer struct {
	every   uint64
	seen    atomic.Uint64
	sampled atomic.Uint64
	settled atomic.Uint64
	// dropped counts settled traces overwritten in the ring before any
	// reader saw them (satellite counter gage_trace_dropped_total).
	dropped atomic.Uint64

	now func() time.Time
	// bus, when set, receives every span of every sampled trace as a
	// KindSpan event, tying the lifecycle into the unified timeline.
	bus atomic.Pointer[obs.Bus]

	mu   sync.Mutex
	ring []Trace
	next int
	full bool
}

// NewTracer builds a tracer. A SampleEvery of 0 (or negative) returns a
// disabled tracer: Sample always answers nil and records nothing.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	t := &Tracer{now: time.Now}
	if cfg.SampleEvery > 0 {
		t.every = uint64(cfg.SampleEvery)
		t.ring = make([]Trace, 0, cfg.Buffer)
	}
	return t
}

// SetClock overrides the tracer's time source (deterministic tests).
func (t *Tracer) SetClock(now func() time.Time) { t.now = now }

// SetBus mirrors sampled lifecycle spans onto the unified event bus.
func (t *Tracer) SetBus(b *obs.Bus) {
	if t == nil {
		return
	}
	t.bus.Store(b)
}

// publishSpan forwards one span to the attached bus, if any. Untraced
// requests never reach here; traces without a tier-wide ID stay local.
func (t *Tracer) publishSpan(tr *Trace, stage Stage, node int64, note string) {
	b := t.bus.Load()
	if b == nil || tr.ID == 0 {
		return
	}
	b.Publish(obs.Event{
		Kind:   obs.KindSpan,
		Trace:  tr.ID,
		Sub:    tr.Subscriber,
		Node:   int(node),
		Stage:  stage.String(),
		Detail: note,
	})
}

// Enabled reports whether the tracer samples at all.
func (t *Tracer) Enabled() bool { return t != nil && t.every > 0 }

// Sample decides whether request reqID is traced. The decision is
// deterministic — request IDs divisible by SampleEvery are traced — so a
// replayed run samples the same requests. Unsampled requests cost one
// modulo and allocate nothing.
func (t *Tracer) Sample(reqID uint64) *Trace {
	if t == nil || t.every == 0 {
		return nil
	}
	t.seen.Add(1)
	if reqID%t.every != 0 {
		return nil
	}
	t.sampled.Add(1)
	return &Trace{ReqID: reqID, t: t}
}

// push retains one completed trace, overwriting the oldest past capacity.
func (t *Tracer) push(tr Trace) {
	t.settled.Add(1)
	t.mu.Lock()
	if !t.full && len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
		if len(t.ring) == cap(t.ring) {
			t.next = 0
			t.full = true
		}
	} else {
		// The slot's previous occupant is lost to readers: ring-lap drop.
		t.dropped.Add(1)
		t.ring[t.next] = tr
		t.next = (t.next + 1) % len(t.ring)
	}
	t.mu.Unlock()
}

// Dropped returns how many settled traces were overwritten in the ring
// before being read (gage_trace_dropped_total).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Traces returns the retained traces, oldest first.
func (t *Tracer) Traces() []Trace {
	if t == nil || t.every == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.ring))
	if t.full {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Counts reports how many requests the tracer has seen, sampled, and
// settled since creation.
func (t *Tracer) Counts() (seen, sampled, settled uint64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.seen.Load(), t.sampled.Load(), t.settled.Load()
}

// SampleEvery reports the sampling period (0 when disabled).
func (t *Tracer) SampleEvery() uint64 {
	if t == nil {
		return 0
	}
	return t.every
}

// Validate checks a trace's structural invariants: it is non-empty, its
// spans carry strictly increasing stages and non-decreasing timestamps, and
// it ends with exactly one settle span carrying a non-empty outcome. The
// trace-completeness suite runs every request outcome through this.
func Validate(tr Trace) error {
	if len(tr.Spans) == 0 {
		return fmt.Errorf("telemetry: trace %d has no spans", tr.ReqID)
	}
	for i := 1; i < len(tr.Spans); i++ {
		prev, cur := tr.Spans[i-1], tr.Spans[i]
		if cur.Stage <= prev.Stage {
			return fmt.Errorf("telemetry: trace %d: span %d stage %v does not advance past %v",
				tr.ReqID, i, cur.Stage, prev.Stage)
		}
		if cur.At.Before(prev.At) {
			return fmt.Errorf("telemetry: trace %d: span %d time %v precedes %v",
				tr.ReqID, i, cur.At, prev.At)
		}
	}
	last := tr.Spans[len(tr.Spans)-1]
	if last.Stage != StageSettle {
		return fmt.Errorf("telemetry: trace %d ends in %v, not settle", tr.ReqID, last.Stage)
	}
	if last.Note == "" {
		return fmt.Errorf("telemetry: trace %d settle span has no outcome", tr.ReqID)
	}
	for _, sp := range tr.Spans[:len(tr.Spans)-1] {
		if sp.Stage == StageSettle {
			return fmt.Errorf("telemetry: trace %d has more than one settle span", tr.ReqID)
		}
	}
	return nil
}

// Stages lists a trace's stage sequence — the compact form the completeness
// tests compare against expectations.
func Stages(tr Trace) []Stage {
	out := make([]Stage, len(tr.Spans))
	for i, sp := range tr.Spans {
		out[i] = sp.Stage
	}
	return out
}

// SettledOutcome returns the trace's terminal outcome, or "" if the trace
// has not settled.
func SettledOutcome(tr Trace) Outcome {
	if len(tr.Spans) == 0 {
		return ""
	}
	last := tr.Spans[len(tr.Spans)-1]
	if last.Stage != StageSettle {
		return ""
	}
	return Outcome(last.Note)
}
