package telemetry

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentRecordingAndScrapes hammers one histogram and one tracer
// from many goroutines while scrapers snapshot, merge and dump concurrently
// — the -race gate for the whole telemetry surface. It also asserts the
// monotonicity contract scrapes rely on: successive snapshot counts never
// go backwards, even when taken mid-recording.
func TestConcurrentRecordingAndScrapes(t *testing.T) {
	h := NewHistogram()
	tr := NewTracer(TracerConfig{SampleEvery: 2, Buffer: 64})
	const (
		writers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Scrapers: snapshots, quantiles, merges, trace dumps.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastCount uint64
			agg := NewHistogram()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				if s.Count < lastCount {
					t.Errorf("snapshot count went backwards: %d after %d", s.Count, lastCount)
					return
				}
				lastCount = s.Count
				_ = s.Quantile(0.99)
				agg.Merge(h)
				for _, dump := range tr.Traces() {
					if err := Validate(dump); err != nil {
						t.Errorf("scraped trace invalid: %v", err)
						return
					}
				}
			}
		}()
	}

	var ids struct {
		sync.Mutex
		next uint64
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(time.Duration(g*perG+i) * time.Microsecond)
				ids.Lock()
				ids.next++
				id := ids.next
				ids.Unlock()
				a := tr.Sample(id)
				a.Add(StageClassify, 0, "s")
				a.Add(StageQueue, 0, "")
				a.Add(StageDispatch, 1, "")
				a.Settle(OutcomeServed)
			}
		}(g)
	}

	// Wait for the writers, then release the scrapers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Writers finish first; snapshot sanity-check, then stop scrapers.
	for {
		s := h.Snapshot()
		if s.Count >= writers*perG {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	s := h.Snapshot()
	if s.Count != writers*perG {
		t.Errorf("final count = %d, want %d", s.Count, writers*perG)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	seen, sampled, settled := tr.Counts()
	if seen != writers*perG {
		t.Errorf("tracer saw %d requests, want %d", seen, writers*perG)
	}
	if sampled != settled {
		t.Errorf("sampled %d != settled %d (every sampled trace settles exactly once)", sampled, settled)
	}
	if want := uint64(writers * perG / 2); sampled != want {
		t.Errorf("sampled = %d, want %d (every 2nd of sequential IDs)", sampled, want)
	}
}
