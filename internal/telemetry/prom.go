package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), built strictly enough
// that the lint in this file — and any real Prometheus scraper — accepts
// every byte: one HELP+TYPE block per family, samples grouped under their
// family, no duplicate series, counters named *_total.

// ContentType is the HTTP Content-Type for the exposition format.
const ContentType = "text/plain; version=0.0.4"

// Label is one name="value" pair on a series.
type Label struct {
	Name, Value string
}

// Exposition accumulates one scrape's worth of families and samples.
type Exposition struct {
	buf    bytes.Buffer
	opened map[string]string // family → type
	closed map[string]bool   // families whose block has ended
	series map[string]bool   // full series keys emitted
	cur    string            // family currently open
	err    error
}

// NewExposition returns an empty builder.
func NewExposition() *Exposition {
	return &Exposition{
		opened: make(map[string]string),
		closed: make(map[string]bool),
		series: make(map[string]bool),
	}
}

// Family opens a new metric family, emitting its HELP and TYPE lines. All
// of the family's samples must be added before the next Family call.
func (e *Exposition) Family(name, typ, help string) {
	if e.err != nil {
		return
	}
	if !validMetricName(name) {
		e.err = fmt.Errorf("telemetry: invalid metric name %q", name)
		return
	}
	if _, dup := e.opened[name]; dup {
		e.err = fmt.Errorf("telemetry: family %q reopened", name)
		return
	}
	if typ == "counter" && !strings.HasSuffix(name, "_total") {
		e.err = fmt.Errorf("telemetry: counter family %q must end in _total", name)
		return
	}
	if e.cur != "" {
		e.closed[e.cur] = true
	}
	e.opened[name] = typ
	e.cur = name
	fmt.Fprintf(&e.buf, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&e.buf, "# TYPE %s %s\n", name, typ)
}

// Add emits one sample of the open family. The sample name must be the
// family name, or the family name suffixed _sum/_count for summaries.
func (e *Exposition) Add(name string, labels []Label, value float64) {
	if e.err != nil {
		return
	}
	if e.cur == "" || baseFamily(name, e.opened) != e.cur {
		e.err = fmt.Errorf("telemetry: sample %q outside its family block (open: %q)", name, e.cur)
		return
	}
	if e.opened[e.cur] == "counter" && (value < 0 || math.IsNaN(value)) {
		e.err = fmt.Errorf("telemetry: counter %q has invalid value %v", name, value)
		return
	}
	key := seriesKey(name, labels)
	if e.series[key] {
		e.err = fmt.Errorf("telemetry: duplicate series %s", key)
		return
	}
	e.series[key] = true
	e.buf.WriteString(key)
	e.buf.WriteByte(' ')
	e.buf.WriteString(formatValue(value))
	e.buf.WriteByte('\n')
}

// Summary emits a full summary family — quantile samples plus _sum and
// _count — from a histogram snapshot, with durations scaled to seconds.
func (e *Exposition) Summary(name string, labels []Label, s Snapshot, quantiles []float64) {
	for _, q := range quantiles {
		ql := append(append([]Label(nil), labels...), Label{"quantile", trimFloat(q)})
		e.Add(name, ql, s.Quantile(q).Seconds())
	}
	e.Add(name+"_sum", labels, float64(s.Sum)/1e9)
	e.Add(name+"_count", labels, float64(s.Count))
}

// Bytes finishes the exposition and returns the text, or the first error
// any call recorded.
func (e *Exposition) Bytes() ([]byte, error) {
	if e.err != nil {
		return nil, e.err
	}
	return e.buf.Bytes(), nil
}

// seriesKey renders name{label="value",...} with labels in given order.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// baseFamily strips the summary/histogram sample suffixes so _sum/_count
// samples resolve to their family.
func baseFamily(name string, families map[string]string) string {
	if _, ok := families[name]; ok {
		return name
	}
	for _, suf := range []string{"_sum", "_count", "_bucket"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t, ok := families[base]; ok && (t == "summary" || t == "histogram") {
				return base
			}
		}
	}
	return name
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// trimFloat renders a quantile label value without exponent noise.
func trimFloat(q float64) string {
	return strconv.FormatFloat(q, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validMetricName(s)
}

// Series is one parsed sample line.
type Series struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the series identity with labels sorted, for comparisons.
func (s Series) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	names := make([]string, 0, len(s.Labels))
	for n := range s.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	labels := make([]Label, len(names))
	for i, n := range names {
		labels[i] = Label{n, s.Labels[n]}
	}
	return seriesKey(s.Name, labels)
}

// Lint checks that b is well-formed Prometheus text by this package's
// strict rules: every sample belongs to a family announced with HELP and
// TYPE lines immediately above its block, families are contiguous (never
// reopened), series are unique, label and metric names are legal, counter
// families end in _total and carry finite non-negative values. It returns
// the first violation.
func Lint(b []byte) error {
	_, err := Parse(b)
	return err
}

// Parse lints b and returns every sample keyed by its sorted-label series
// identity — the form the monotone-counter and stats-consistency tests
// compare across scrapes.
func Parse(b []byte) (map[string]Series, error) {
	type family struct {
		typ      string
		help     bool
		closed   bool
		anything bool
	}
	families := make(map[string]*family)
	out := make(map[string]Series)
	var cur string
	lines := strings.Split(string(b), "\n")
	for no, line := range lines {
		ln := no + 1
		if line == "" {
			if no != len(lines)-1 {
				return nil, fmt.Errorf("line %d: blank line inside exposition", ln)
			}
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				return nil, fmt.Errorf("line %d: malformed HELP line %q", ln, line)
			}
			f := families[name]
			if f == nil {
				f = &family{}
				families[name] = f
			}
			if f.help {
				return nil, fmt.Errorf("line %d: duplicate HELP for %q", ln, name)
			}
			f.help = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !validMetricName(parts[0]) {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", ln, line)
			}
			name, typ := parts[0], parts[1]
			switch typ {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q for %q", ln, typ, name)
			}
			f := families[name]
			if f == nil {
				f = &family{}
				families[name] = f
			}
			if f.typ != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", ln, name)
			}
			if !f.help {
				return nil, fmt.Errorf("line %d: TYPE for %q precedes its HELP", ln, name)
			}
			f.typ = typ
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				return nil, fmt.Errorf("line %d: counter %q must end in _total", ln, name)
			}
			if cur != "" && cur != name {
				families[cur].closed = true
			}
			cur = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("line %d: unexpected comment %q", ln, line)
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln, err)
		}
		fam := s.Name
		f := families[fam]
		if f == nil || f.typ == "" {
			// Try the summary/histogram suffixes.
			fams := make(map[string]string, len(families))
			for n, ff := range families {
				fams[n] = ff.typ
			}
			fam = baseFamily(s.Name, fams)
			f = families[fam]
		}
		if f == nil || f.typ == "" || !f.help {
			return nil, fmt.Errorf("line %d: series %q has no HELP/TYPE", ln, s.Name)
		}
		if fam != cur {
			return nil, fmt.Errorf("line %d: series %q outside its family block (open: %q)", ln, s.Name, cur)
		}
		if f.closed {
			return nil, fmt.Errorf("line %d: family %q reopened", ln, fam)
		}
		if f.typ == "counter" && (s.Value < 0 || math.IsNaN(s.Value)) {
			return nil, fmt.Errorf("line %d: counter %q has invalid value %v", ln, s.Name, s.Value)
		}
		key := s.Key()
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", ln, key)
		}
		f.anything = true
		out[key] = s
	}
	for name, f := range families {
		if !f.anything {
			return nil, fmt.Errorf("family %q has HELP/TYPE but no samples", name)
		}
	}
	return out, nil
}

// parseSample parses `name{l1="v1",...} value` (no timestamp support — this
// exposition never emits them).
func parseSample(line string) (Series, error) {
	s := Series{Labels: map[string]string{}}
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	hasLabels := rest[i] == '{'
	rest = rest[i+1:]
	if hasLabels {
		for {
			eq := strings.Index(rest, "=\"")
			if eq < 0 {
				return s, fmt.Errorf("malformed labels in %q", line)
			}
			name := rest[:eq]
			if !validLabelName(name) {
				return s, fmt.Errorf("invalid label name %q", name)
			}
			rest = rest[eq+2:]
			var val strings.Builder
			for {
				j := strings.IndexAny(rest, `\"`)
				if j < 0 {
					return s, fmt.Errorf("unterminated label value in %q", line)
				}
				if rest[j] == '\\' {
					if len(rest) < j+2 {
						return s, fmt.Errorf("dangling escape in %q", line)
					}
					val.WriteString(rest[:j])
					switch rest[j+1] {
					case 'n':
						val.WriteByte('\n')
					default:
						val.WriteByte(rest[j+1])
					}
					rest = rest[j+2:]
					continue
				}
				val.WriteString(rest[:j])
				rest = rest[j+1:]
				break
			}
			if _, dup := s.Labels[name]; dup {
				return s, fmt.Errorf("duplicate label %q in %q", name, line)
			}
			s.Labels[name] = val.String()
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return s, fmt.Errorf("malformed labels in %q", line)
		}
		if !strings.HasPrefix(rest, " ") {
			return s, fmt.Errorf("missing value in %q", line)
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsRune(rest, ' ') {
		return s, fmt.Errorf("malformed value in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		switch rest {
		case "+Inf":
			v = math.Inf(1)
		case "-Inf":
			v = math.Inf(-1)
		case "NaN":
			v = math.NaN()
		default:
			return s, fmt.Errorf("bad value %q", rest)
		}
	}
	s.Value = v
	return s, nil
}
