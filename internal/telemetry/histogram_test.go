package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"gage/internal/metrics"
)

// TestBucketBoundaries pins the bucket layout: every value lands in a
// bucket whose bounds contain it, indices are monotone in the value, and
// the documented edge cases (zero, linear/log seam, powers of two, the
// clamp at 2^maxPow) map where the layout says they must.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0},
		{1, 1},
		{subCount - 1, subCount - 1},             // last exact bucket
		{subCount, subCount},                     // first log bucket [16,17)
		{subCount + 1, subCount + 1},             // still width 1 at k=4
		{31, 31},                                 // top of k=4 range
		{32, 32},                                 // k=5 starts, width 2
		{33, 32},                                 // same bucket as 32
		{1 << 20, (20 - subBits + 1) * subCount}, // power of two → first sub-bucket
		{1<<20 + 1<<16 - 1, (20 - subBits + 1) * subCount},
		{1<<20 + 1<<16, (20-subBits+1)*subCount + 1},
		{1<<maxPow - 1, numBuckets - 1}, // top of range
		{1 << maxPow, numBuckets - 1},   // clamp
		{math.MaxInt64, numBuckets - 1}, // clamp
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}

	// Bounds invert the index and contain the value (below the clamp).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := rng.Int63n(1 << maxPow)
		idx := bucketIndex(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v >= hi {
			t.Fatalf("value %d in bucket %d with bounds [%d, %d)", v, idx, lo, hi)
		}
	}

	// Buckets partition [0, 2^maxPow): each bucket's hi is the next one's lo.
	for i := 0; i < numBuckets-1; i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between bucket %d (hi %d) and %d (lo %d)", i, hi, i+1, lo)
		}
	}
	if lo, _ := bucketBounds(0); lo != 0 {
		t.Errorf("first bucket starts at %d, want 0", lo)
	}
	if _, hi := bucketBounds(numBuckets - 1); hi != 1<<maxPow {
		t.Errorf("last bucket ends at %d, want 2^%d", hi, maxPow)
	}
}

func TestRecordNegativeAndExtremes(t *testing.T) {
	h := NewHistogram()
	h.Record(-5 * time.Second) // clamps to 0
	h.Record(0)
	h.Record(time.Duration(math.MaxInt64)) // clamps into the last bucket
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.Min != 0 {
		t.Errorf("min = %v, want 0", s.Min)
	}
	if s.Max != time.Duration(math.MaxInt64) {
		t.Errorf("max = %v, want MaxInt64 (min/max stay exact past the clamp)", s.Max)
	}
}

// TestMergeAssociativity: merging is associative and commutative up to
// Snapshot equality — (a⊕b)⊕c equals a⊕(b⊕c) regardless of which stripes
// absorbed which samples.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	build := func() *Histogram {
		h := NewHistogram()
		for i := 0; i < 500; i++ {
			h.Record(time.Duration(rng.Int63n(int64(10 * time.Second))))
		}
		return h
	}
	a1, b1, c1 := build(), build(), build()
	// Rebuild identical histograms for the second association order.
	rng = rand.New(rand.NewSource(7))
	a2, b2, c2 := build(), build(), build()

	left := NewHistogram() // (a ⊕ b) ⊕ c
	left.Merge(a1)
	left.Merge(b1)
	left.Merge(c1)

	bc := NewHistogram() // a ⊕ (b ⊕ c)
	bc.Merge(b2)
	bc.Merge(c2)
	right := NewHistogram()
	right.Merge(a2)
	right.Merge(bc)

	ls, rs := left.Snapshot(), right.Snapshot()
	if ls != rs {
		t.Fatalf("association order changed the snapshot:\nleft  count=%d sum=%d min=%v max=%v\nright count=%d sum=%d min=%v max=%v",
			ls.Count, ls.Sum, ls.Min, ls.Max, rs.Count, rs.Sum, rs.Min, rs.Max)
	}
	if ls.Count != 1500 {
		t.Errorf("merged count = %d, want 1500", ls.Count)
	}
	// Merging must not disturb the sources.
	if a1.Snapshot().Count != 500 {
		t.Errorf("merge mutated its source")
	}
}

// TestQuantilePropertyBound is the statistical contract: for arbitrary
// sample sets, every estimated quantile stays within the documented
// RelativeError of the true nearest-rank sample, and within the documented
// bound of metrics.Percentile on the raw samples once the discretization
// between the two quantile definitions (at most one order statistic apart)
// is accounted for.
func TestQuantilePropertyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	quantiles := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}
	distributions := []struct {
		name string
		gen  func() int64
	}{
		{"log-uniform", func() int64 { return int64(math.Exp(rng.Float64()*20) + 1) }},
		{"uniform", func() int64 { return rng.Int63n(int64(time.Second)) }},
		{"bimodal", func() int64 {
			if rng.Intn(2) == 0 {
				return int64(time.Millisecond) + rng.Int63n(int64(time.Millisecond))
			}
			return int64(time.Second) + rng.Int63n(int64(time.Second))
		}},
		{"tiny", func() int64 { return rng.Int63n(subCount) }}, // exact linear region
	}
	for _, dist := range distributions {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(2000)
			h := NewHistogram()
			raw := make([]float64, n)
			sorted := make([]int64, n)
			for i := 0; i < n; i++ {
				v := dist.gen()
				h.Record(time.Duration(v))
				raw[i] = float64(v)
				sorted[i] = v
			}
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			snap := h.Snapshot()
			for _, q := range quantiles {
				est := float64(snap.Quantile(q))
				// Nearest-rank truth: the sample of rank ⌈q·n⌉.
				rank := int(math.Ceil(q * float64(n)))
				if rank < 1 {
					rank = 1
				}
				truth := float64(sorted[rank-1])
				bound := truth*RelativeError + 1 // +1 ns for the linear region
				if math.Abs(est-truth) > bound {
					t.Fatalf("%s n=%d q=%v: estimate %v vs nearest-rank %v exceeds bound %v",
						dist.name, n, q, est, truth, bound)
				}
				// metrics.Percentile interpolates between the order
				// statistics bracketing q·(n−1); the histogram estimate must
				// stay within RelativeError of that bracket.
				p := metrics.Percentile(raw, q*100)
				loIdx := int(math.Floor(q * float64(n-1)))
				hiIdx := int(math.Ceil(q * float64(n-1)))
				if rank-1 < loIdx {
					loIdx = rank - 1
				}
				if rank-1 > hiIdx {
					hiIdx = rank - 1
				}
				bracketLo := float64(sorted[loIdx])*(1-RelativeError) - 1
				bracketHi := float64(sorted[hiIdx])*(1+RelativeError) + 1
				if est < bracketLo || est > bracketHi {
					t.Fatalf("%s n=%d q=%v: estimate %v outside bracket [%v, %v] around Percentile %v",
						dist.name, n, q, est, bracketLo, bracketHi, p)
				}
			}
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	h := NewHistogram()
	empty := h.Snapshot()
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty mean = %v, want 0", got)
	}
	h.Record(3 * time.Millisecond)
	h.Record(5 * time.Millisecond)
	h.Record(40 * time.Millisecond)
	s := h.Snapshot()
	if got := s.Quantile(0); got != 3*time.Millisecond {
		t.Errorf("q0 = %v, want exact min", got)
	}
	if got := s.Quantile(1); got != 40*time.Millisecond {
		t.Errorf("q1 = %v, want exact max", got)
	}
	mean := s.Mean()
	if mean != 16*time.Millisecond {
		t.Errorf("mean = %v, want 16ms", mean)
	}
}

// TestRecordNoAllocs is the hot-path gate: recording must never allocate,
// with or without concurrent snapshots.
func TestRecordNoAllocs(t *testing.T) {
	h := NewHistogram()
	var d time.Duration
	n := testing.AllocsPerRun(1000, func() {
		h.Record(d)
		d += 37 * time.Microsecond
	})
	if n != 0 {
		t.Fatalf("Record allocates %v per op, want 0", n)
	}
}

// TestTracerOffNoAllocs: with sampling disabled (and for unsampled
// requests), the whole trace call surface is allocation-free.
func TestTracerOffNoAllocs(t *testing.T) {
	off := NewTracer(TracerConfig{})
	var id uint64
	n := testing.AllocsPerRun(1000, func() {
		id++
		tr := off.Sample(id)
		tr.SetSubscriber("s")
		tr.Add(StageClassify, 0, "s")
		tr.Add(StageQueue, 0, "")
		tr.Settle(OutcomeServed)
	})
	if n != 0 {
		t.Fatalf("disabled tracer allocates %v per op, want 0", n)
	}

	sparse := NewTracer(TracerConfig{SampleEvery: 1 << 30})
	id = 0
	n = testing.AllocsPerRun(1000, func() {
		id++
		tr := sparse.Sample(id)
		tr.Add(StageClassify, 0, "s")
		tr.Settle(OutcomeServed)
	})
	if n != 0 {
		t.Fatalf("unsampled requests allocate %v per op, want 0", n)
	}
}

// BenchmarkHistogramRecord measures the telemetry hot path: one histogram
// record. Compare ns/op against the dispatcher's per-request work (network
// round trips, ≥ tens of microseconds) for the ≤5% overhead claim.
func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
}

func BenchmarkHistogramRecordParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var d time.Duration
		for pb.Next() {
			h.Record(d)
			d += 13 * time.Microsecond
		}
	})
}

// BenchmarkTracerUnsampled measures the per-request tracing cost when the
// request is not sampled — the common case on the hot path.
func BenchmarkTracerUnsampled(b *testing.B) {
	tr := NewTracer(TracerConfig{SampleEvery: 1 << 30})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := tr.Sample(uint64(i)*2 + 1)
		a.Add(StageClassify, 0, "")
		a.Add(StageQueue, 0, "")
		a.Settle(OutcomeServed)
	}
}

// BenchmarkTracerSampled measures a fully traced request lifecycle.
func BenchmarkTracerSampled(b *testing.B) {
	tr := NewTracer(TracerConfig{SampleEvery: 1, Buffer: 1024})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := tr.Sample(uint64(i))
		a.SetSubscriber("site1")
		a.Add(StageClassify, 0, "site1")
		a.Add(StageQueue, 0, "")
		a.Add(StageDispatch, 1, "")
		a.Add(StageRelay, 1, "")
		a.Settle(OutcomeServed)
	}
}
