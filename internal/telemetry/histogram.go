// Package telemetry is the observability layer shared by the live
// dispatcher and the cluster simulator: latency histograms with bounded
// quantile error, per-request lifecycle traces with deterministic sampling,
// and Prometheus text exposition. The paper's feedback loop is only as
// trustworthy as the monitoring that feeds it — this package makes the
// guarantees proved in the simulator (deviation bands, shed ordering,
// slow-start ramps) observable on the real serving path, with both runs
// recording into the same histogram type so their quantiles are comparable.
package telemetry

import (
	"math"
	"math/bits"
	"sync"
	"time"
)

// Histogram layout: a short linear region of 1 ns buckets for values below
// 2^subBits, then log-bucketed — each power-of-two range [2^k, 2^(k+1)) is
// split into 2^subBits equal sub-buckets. Quantile estimates return the
// midpoint of the target bucket, so the estimate is within RelativeError of
// the true sample in the log region and within ±0.5 ns in the linear region.
const (
	// subBits is the number of sub-bucket bits per power-of-two range.
	subBits = 4
	// subCount is the sub-buckets per power-of-two range (and the size of
	// the exact linear region).
	subCount = 1 << subBits
	// maxPow caps the histogram range: values at or above 2^maxPow ns
	// (≈ 18.3 minutes) clamp into the last bucket.
	maxPow = 40
	// numBuckets covers the linear region plus (maxPow−subBits) split
	// power-of-two ranges.
	numBuckets = (maxPow-subBits)*subCount + subCount
	// numStripes is the lock-stripe count; recording locks one stripe,
	// snapshots fold all of them.
	numStripes = 8
)

// RelativeError is the documented quantile error bound: for any recorded
// value v ≥ subCount ns, the bucket midpoint differs from v by at most
// v × RelativeError (bucket width is 2^(k−subBits) over [2^k, 2^(k+1)), so
// the midpoint is within half a width, 2^(k−subBits−1) ≤ v/2^(subBits+1)).
// Values below subCount ns land in exact 1 ns buckets (±0.5 ns).
const RelativeError = 1.0 / (1 << (subBits + 1))

// histStripe is one lock stripe's share of the counts. Stripes exist so
// concurrent recorders contend on different mutexes; any single snapshot or
// merge folds them back together.
type histStripe struct {
	mu       sync.Mutex
	counts   [numBuckets]uint64
	count    uint64
	sum      int64
	min, max int64
}

// Histogram is a mergeable, lock-striped, log-bucketed latency histogram.
// The zero value is NOT ready to use; call NewHistogram.
type Histogram struct {
	stripes [numStripes]histStripe
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	for i := range h.stripes {
		h.stripes[i].min = math.MaxInt64
	}
	return h
}

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	uv := uint64(v)
	if uv < subCount {
		return int(uv)
	}
	k := bits.Len64(uv) - 1
	if k >= maxPow {
		return numBuckets - 1
	}
	sub := (uv - 1<<uint(k)) >> uint(k-subBits)
	return (k-subBits+1)<<subBits + int(sub)
}

// bucketBounds returns bucket i's half-open nanosecond range [lo, hi).
func bucketBounds(i int) (lo, hi int64) {
	if i < subCount {
		return int64(i), int64(i) + 1
	}
	k := subBits + i>>subBits - 1
	sub := int64(i & (subCount - 1))
	w := int64(1) << uint(k-subBits)
	lo = int64(1)<<uint(k) + sub*w
	return lo, lo + w
}

// splitmix64 is the stripe selector: a cheap avalanche mix of the recorded
// value, so concurrent recorders of different latencies spread across
// stripes without any shared state of their own.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Record adds one duration sample. Negative durations clamp to zero. It
// never allocates.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	st := &h.stripes[splitmix64(uint64(v))&(numStripes-1)]
	st.mu.Lock()
	st.counts[bucketIndex(v)]++
	st.count++
	st.sum += v
	if v < st.min {
		st.min = v
	}
	if v > st.max {
		st.max = v
	}
	st.mu.Unlock()
}

// Merge folds o's counts into h. Both histograms remain usable; o is not
// modified. Merging is commutative and associative up to Snapshot equality.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	s := o.Snapshot()
	st := &h.stripes[0]
	st.mu.Lock()
	for i, c := range s.Counts {
		st.counts[i] += c
	}
	st.count += s.Count
	st.sum += s.Sum
	if s.Count > 0 {
		if int64(s.Min) < st.min {
			st.min = int64(s.Min)
		}
		if int64(s.Max) > st.max {
			st.max = int64(s.Max)
		}
	}
	st.mu.Unlock()
}

// Snapshot is a point-in-time fold of a histogram: cumulative totals plus
// the per-bucket counts, enough to answer quantiles offline and to feed the
// exposition endpoint. Stripes are folded one at a time, so a snapshot taken
// during concurrent recording is a valid histogram whose totals are bounded
// by the true before/after counts — every total is monotone across
// successive snapshots.
type Snapshot struct {
	// Count is the number of recorded samples.
	Count uint64
	// Sum is the total of all samples.
	Sum int64
	// Min and Max are the exact extreme samples (0 when Count is 0).
	Min, Max time.Duration
	// Counts holds the per-bucket sample counts.
	Counts [numBuckets]uint64
}

// Snapshot folds every stripe into one view.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{}
	min := int64(math.MaxInt64)
	var max int64
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.Lock()
		for b, c := range st.counts {
			s.Counts[b] += c
		}
		s.Count += st.count
		s.Sum += st.sum
		if st.count > 0 {
			if st.min < min {
				min = st.min
			}
			if st.max > max {
				max = st.max
			}
		}
		st.mu.Unlock()
	}
	if s.Count > 0 {
		s.Min = time.Duration(min)
		s.Max = time.Duration(max)
	}
	return s
}

// Quantile estimates the q-th quantile (0..1) by nearest rank: the returned
// value is the midpoint of the bucket holding the sample of rank ⌈q·Count⌉,
// clamped into [Min, Max] — so it differs from that sample by at most
// RelativeError of its value (±0.5 ns in the sub-16 ns linear region).
// Quantile(0) is the exact minimum, Quantile(1) the exact maximum; an empty
// snapshot answers 0.
func (s *Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			lo, hi := bucketBounds(i)
			est := time.Duration(lo + (hi-lo)/2)
			if est < s.Min {
				est = s.Min
			}
			if est > s.Max {
				est = s.Max
			}
			return est
		}
	}
	return s.Max
}

// Mean returns the exact average sample, or 0 when empty.
func (s *Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / int64(s.Count))
}

// Quantile is shorthand for Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) time.Duration {
	s := h.Snapshot()
	return s.Quantile(q)
}
