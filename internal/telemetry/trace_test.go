package telemetry

import (
	"testing"
	"time"
)

// fakeClock hands out strictly increasing times.
func fakeClock() func() time.Time {
	t0 := time.Unix(1000, 0)
	var n int64
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestSamplingDeterministic(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 3, Buffer: 16})
	var sampled []uint64
	for id := uint64(1); id <= 12; id++ {
		if a := tr.Sample(id); a != nil {
			sampled = append(sampled, id)
			a.Settle(OutcomeServed)
		}
	}
	want := []uint64{3, 6, 9, 12}
	if len(sampled) != len(want) {
		t.Fatalf("sampled %v, want %v", sampled, want)
	}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("sampled %v, want %v", sampled, want)
		}
	}
	seen, smp, settled := tr.Counts()
	if seen != 12 || smp != 4 || settled != 4 {
		t.Errorf("counts = %d/%d/%d, want 12/4/4", seen, smp, settled)
	}

	// A disabled tracer samples nothing and counts nothing.
	off := NewTracer(TracerConfig{})
	if off.Sample(3) != nil {
		t.Error("disabled tracer sampled a request")
	}
	if off.Enabled() {
		t.Error("disabled tracer claims Enabled")
	}
	if got := off.Traces(); got != nil {
		t.Errorf("disabled tracer returned traces: %v", got)
	}
}

func TestRingWraparound(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1, Buffer: 4})
	tr.SetClock(fakeClock())
	for id := uint64(1); id <= 10; id++ {
		a := tr.Sample(id)
		a.Add(StageClassify, 0, "s")
		a.Settle(OutcomeServed)
	}
	got := tr.Traces()
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(got))
	}
	for i, want := range []uint64{7, 8, 9, 10} {
		if got[i].ReqID != want {
			t.Errorf("ring[%d] = req %d, want %d (oldest first)", i, got[i].ReqID, want)
		}
	}
}

func TestSettleIdempotent(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1, Buffer: 8})
	tr.SetClock(fakeClock())
	a := tr.Sample(1)
	a.Add(StageClassify, 0, "s")
	a.Settle(OutcomeServed)
	a.Settle(OutcomeError) // must be a no-op
	got := tr.Traces()
	if len(got) != 1 {
		t.Fatalf("ring holds %d traces, want 1 (double settle must not re-publish)", len(got))
	}
	if out := SettledOutcome(got[0]); out != OutcomeServed {
		t.Errorf("outcome = %q, want first settle %q", out, OutcomeServed)
	}
	if err := Validate(got[0]); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejectsMalformedTraces(t *testing.T) {
	t0 := time.Unix(1000, 0)
	at := func(ms int) time.Time { return t0.Add(time.Duration(ms) * time.Millisecond) }
	cases := []struct {
		name string
		tr   Trace
	}{
		{"empty", Trace{ReqID: 1}},
		{"no settle", Trace{ReqID: 2, Spans: []Span{
			{Stage: StageClassify, At: at(1)},
			{Stage: StageQueue, At: at(2)},
		}}},
		{"stage regression", Trace{ReqID: 3, Spans: []Span{
			{Stage: StageQueue, At: at(1)},
			{Stage: StageClassify, At: at(2)},
			{Stage: StageSettle, At: at(3), Note: "served"},
		}}},
		{"duplicate stage", Trace{ReqID: 4, Spans: []Span{
			{Stage: StageRelay, At: at(1)},
			{Stage: StageRelay, At: at(2)},
			{Stage: StageSettle, At: at(3), Note: "served"},
		}}},
		{"time regression", Trace{ReqID: 5, Spans: []Span{
			{Stage: StageClassify, At: at(5)},
			{Stage: StageSettle, At: at(1), Note: "served"},
		}}},
		{"settle without outcome", Trace{ReqID: 6, Spans: []Span{
			{Stage: StageSettle, At: at(1)},
		}}},
	}
	for _, c := range cases {
		if err := Validate(c.tr); err == nil {
			t.Errorf("%s: Validate accepted a malformed trace", c.name)
		}
	}

	good := Trace{ReqID: 7, Spans: []Span{
		{Stage: StageClassify, At: at(1), Note: "site1"},
		{Stage: StageQueue, At: at(2)},
		{Stage: StageDispatch, At: at(3), Node: 1},
		{Stage: StageRelay, At: at(4), Node: 1},
		{Stage: StageRetry, At: at(5), Node: 2},
		{Stage: StageSettle, At: at(6), Note: "served"},
	}}
	if err := Validate(good); err != nil {
		t.Errorf("Validate rejected a complete trace: %v", err)
	}
	stages := Stages(good)
	want := []Stage{StageClassify, StageQueue, StageDispatch, StageRelay, StageRetry, StageSettle}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("Stages = %v, want %v", stages, want)
		}
	}
}
