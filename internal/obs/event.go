package obs

import (
	"fmt"
	"time"
)

// Kind classifies a bus event by the layer that published it.
type Kind uint8

const (
	// KindSpan is one lifecycle stage of a sampled request (telemetry).
	KindSpan Kind = iota + 1
	// KindCycle marks one committed scheduler cycle record (flightrec).
	KindCycle
	// KindTier is a topology/tenancy change recorded in the cycle stream:
	// takeover, handback, crash, recover, fence, sub-admit, node-drain, ….
	KindTier
	// KindFault is an injected fault-plan action (faults/cluster).
	KindFault
	// KindBreaker is a circuit-breaker state transition on a back-end node.
	KindBreaker
	// KindAdmin is an admission control-plane decision (accept or refusal).
	KindAdmin
	// KindViolation marks a conformance violation span opening or closing,
	// carrying the exemplar trace IDs sampled for attribution.
	KindViolation
)

// kindNames is the wire form of each Kind.
var kindNames = [...]string{
	KindSpan:      "span",
	KindCycle:     "cycle",
	KindTier:      "tier",
	KindFault:     "fault",
	KindBreaker:   "breaker",
	KindAdmin:     "admin",
	KindViolation: "violation",
}

// String names the kind for logs and the JSONL wire form.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalText emits the wire name.
func (k Kind) MarshalText() ([]byte, error) {
	if int(k) >= len(kindNames) || kindNames[k] == "" {
		return nil, fmt.Errorf("obs: unknown event kind %d", int(k))
	}
	return []byte(kindNames[k]), nil
}

// UnmarshalText parses the wire name.
func (k *Kind) UnmarshalText(b []byte) error {
	s := string(b)
	for i, name := range kindNames {
		if name == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one entry on the unified bus. The key fields (Trace,
// Sub, Cycle) tie the layers together: a span names its trace and
// subscriber, a cycle record names its cycle, a violation names its
// subscriber and exemplar traces — so one merged log answers "what
// happened to this request / this subscriber / this cycle".
type Event struct {
	// Schema is the event-record schema version (SchemaVersion).
	Schema int `json:"schema"`
	// Seq is the publishing bus's strictly-increasing sequence number;
	// (RDN, Seq) is unique across a merged multi-RDN log.
	Seq uint64 `json:"seq"`
	// At is the offset on the publisher's clock — virtual time in the
	// simulator, time since bus creation on a live dispatcher.
	At time.Duration `json:"at"`
	// RDN is the publishing front-end instance.
	RDN int `json:"rdn"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`

	// Trace is the request identity for span events (0 elsewhere).
	Trace TraceID `json:"trace,omitempty"`
	// Sub is the subscriber (or tenant group, for tier events) concerned.
	Sub string `json:"sub,omitempty"`
	// Cycle is the scheduler cycle sequence for cycle events.
	Cycle uint64 `json:"cycle,omitempty"`
	// Node is the back-end node concerned (0 = none; node IDs are 1-based
	// everywhere in this repo).
	Node int `json:"node,omitempty"`
	// Stage is the lifecycle stage for span events and the resulting
	// breaker state for breaker events.
	Stage string `json:"stage,omitempty"`
	// Detail is kind-specific: the settle outcome or span note, the tier
	// event kind, the fault action, the breaker source, or the admin
	// "op:decision" pair.
	Detail string `json:"detail,omitempty"`
	// From and To are RDN instances for tier handoff events.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Epoch is the lease epoch for tier/fencing events.
	Epoch uint64 `json:"epoch,omitempty"`
	// Exemplars are the sampled trace IDs attached to a violation event.
	Exemplars []string `json:"exemplars,omitempty"`
}
