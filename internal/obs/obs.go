// Package obs is the tier-wide observability spine: a compact request
// trace identity minted once at classify time and carried through
// admission, queueing, dispatch, relay, retry, RDN handoff and settlement,
// plus a unified, schema-versioned event bus into which every layer
// (telemetry lifecycle spans, flight-recorder cycles and tier events,
// fault injections, breaker transitions, admin-plane decisions,
// conformance violations) publishes causally-ordered events.
//
// The package is a leaf — it imports only the standard library — so any
// layer may publish without dependency cycles. Events are keyed by
// (trace | subscriber | cycle) and mergeable across RDNs: each bus stamps
// its own (RDN, Seq) pair, and MergeLogs restores one causal timeline by
// (At, RDN, Seq) exactly like the flight recorder's multi-log audit.
package obs

import (
	"fmt"
	"strconv"
)

// SchemaVersion is stamped on every published event. Readers (gagetrace
// explain/lint) refuse logs from a future schema instead of misparsing.
const SchemaVersion = 1

// TraceHeader carries the trace ID on relayed backend requests; backends
// echo it on their responses so the relay can confirm the identity made
// the round trip (and the client sees it on the final response).
const TraceHeader = "X-Gage-Trace"

// TraceID is the compact request identity: the minting RDN (+1, so the ID
// is never zero) in the top 16 bits and the RDN-local request sequence
// number in the low 48. One request keeps one TraceID across admission,
// queueing, dispatch, relay, retries and settlement; zero means "untraced".
type TraceID uint64

// reqMask selects the request-sequence bits of a TraceID.
const reqMask = 1<<48 - 1

// Mint builds the trace ID for request req classified by rdn. IDs are
// deterministic — the same (rdn, req) pair always mints the same ID — so
// replayed drills produce byte-identical event logs.
func Mint(rdn int, req uint64) TraceID {
	return TraceID((uint64(rdn)+1)<<48 | (req & reqMask))
}

// RDN returns the ID's minting RDN.
func (t TraceID) RDN() int { return int(uint64(t)>>48) - 1 }

// Req returns the ID's RDN-local request sequence number.
func (t TraceID) Req() uint64 { return uint64(t) & reqMask }

// String renders the ID as fixed-width hex, the wire form used in the
// X-Gage-Trace header, event logs and gagetrace output.
func (t TraceID) String() string {
	var buf [16]byte
	const hexdigits = "0123456789abcdef"
	v := uint64(t)
	for i := 15; i >= 0; i-- {
		buf[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(buf[:])
}

// MarshalText renders the hex wire form (JSON encodes TraceID as a string).
func (t TraceID) MarshalText() ([]byte, error) {
	return []byte(t.String()), nil
}

// UnmarshalText parses the hex wire form.
func (t *TraceID) UnmarshalText(b []byte) error {
	id, err := ParseTraceID(string(b))
	if err != nil {
		return err
	}
	*t = id
	return nil
}

// ParseTraceID parses the hex wire form back into a TraceID.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace ID %q: %w", s, err)
	}
	return TraceID(v), nil
}
