package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultRingSize is the ring capacity when BusConfig.RingSize is zero.
const DefaultRingSize = 4096

// BusConfig assembles a Bus.
type BusConfig struct {
	// RingSize is the number of retained events (DefaultRingSize when zero
	// or negative).
	RingSize int
	// Spill, when non-nil, receives every published event as one JSON line,
	// synchronously inside Publish. Spilling costs encoding allocations —
	// use it for drills and offline analysis; the ring alone is the
	// allocation-free steady-state path.
	Spill io.Writer
	// RDN stamps events that do not carry their own RDN.
	RDN int
	// Now is the event clock; nil defaults to wall time since bus creation.
	// The simulator points it at the virtual engine so simulated and live
	// streams are directly comparable.
	Now func() time.Duration
}

// Bus is the unified event ring. All methods are nil-receiver safe, so a
// layer without a bus attached pays one nil check per publish. Safe for
// concurrent use.
type Bus struct {
	mu   sync.Mutex
	ring []Event
	// seq counts published events; the ring slot for event n is (n-1) %
	// len(ring).
	seq uint64
	// dropped counts ring-lap losses: events overwritten before any durable
	// copy existed (no spill, or the spill had already failed).
	dropped  uint64
	rdn      int
	now      func() time.Duration
	enc      *json.Encoder
	spillErr error
}

// NewBus builds a bus.
func NewBus(cfg BusConfig) *Bus {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	b := &Bus{
		ring: make([]Event, cfg.RingSize),
		rdn:  cfg.RDN,
		now:  cfg.Now,
	}
	if b.now == nil {
		start := time.Now()
		b.now = func() time.Duration { return time.Since(start) }
	}
	if cfg.Spill != nil {
		b.enc = json.NewEncoder(cfg.Spill)
	}
	return b
}

// SetClock replaces the event clock (the simulator installs virtual time).
func (b *Bus) SetClock(now func() time.Duration) {
	if b == nil || now == nil {
		return
	}
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// SetRDN replaces the default RDN stamp.
func (b *Bus) SetRDN(rdn int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.rdn = rdn
	b.mu.Unlock()
}

// Publish stamps and records one event: Schema and Seq always, At and RDN
// only when the publisher left them zero (the flight recorder stamps its
// own — its records carry their commit time and owning RDN). In steady
// state with no spill attached, Publish performs no allocation: the event
// value lands in a preallocated ring slot.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	ev.Schema = SchemaVersion
	if ev.At == 0 {
		ev.At = b.now()
	}
	if ev.RDN == 0 {
		ev.RDN = b.rdn
	}
	b.seq++
	ev.Seq = b.seq
	spilled := false
	if b.enc != nil && b.spillErr == nil {
		if err := b.enc.Encode(ev); err != nil {
			// Keep recording in the ring; the first failure is retained
			// for SpillErr.
			b.spillErr = err
		} else {
			spilled = true
		}
	}
	if b.seq > uint64(len(b.ring)) && !spilled {
		// The slot being reused held an event with no durable copy: that
		// history is gone. Satellite counter gage_event_dropped_total.
		b.dropped++
	}
	b.ring[(b.seq-1)%uint64(len(b.ring))] = ev
	b.mu.Unlock()
}

// Events returns the retained events, oldest first. The returned slice is
// the caller's; Exemplars slices are shared with the publisher and must be
// treated as read-only.
func (b *Bus) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.seq
	if n > uint64(len(b.ring)) {
		n = uint64(len(b.ring))
	}
	out := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, b.ring[(b.seq-n+i)%uint64(len(b.ring))])
	}
	return out
}

// Seq returns the number of events published so far.
func (b *Bus) Seq() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Dropped returns the ring-lap loss count.
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// RingSize returns the ring capacity.
func (b *Bus) RingSize() int {
	if b == nil {
		return 0
	}
	return len(b.ring)
}

// SpillErr returns the first JSONL spill failure, if any.
func (b *Bus) SpillErr() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spillErr
}
